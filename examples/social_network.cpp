// Example: the DeathStarBench social-network application (the suite's
// larger call graph — 18 services, two-stage compose-post fan-out) on the
// three-cluster mesh, comparing load-balancing algorithms.
//
// Demonstrates: building applications from the generic StagedBehavior /
// MixBehavior blocks, and that L3 operates unchanged on an arbitrary
// black-box application (§7: "can be used for arbitrary black-box
// microservices without fine-tuning").
#include "l3/common/table.h"
#include "l3/dsb/runner.h"

#include <iostream>

int main() {
  using namespace l3;

  std::cout << "DeathStarBench social-network: 18 services x 3 clusters,\n"
               "mix: 60% read-home-timeline, 25% read-user-timeline, 15%\n"
               "compose-post (two parallel fan-out stages).\n\n";

  dsb::DsbRunnerConfig config;
  config.duration = 300.0;
  config.rps = 150.0;

  Table table({"algorithm", "P50 (ms)", "P99 (ms)", "requests"});
  for (const auto kind :
       {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
        workload::PolicyKind::kL3}) {
    const auto r = dsb::run_social_network(kind, config);
    table.add_row({r.policy, fmt_ms(r.summary.latency.p50),
                   fmt_ms(r.summary.latency.p99),
                   std::to_string(r.requests)});
  }
  table.print(std::cout);
  std::cout << "\nThe same controller, metrics pipeline and algorithms run "
               "unmodified on a\ncompletely different application — L3 treats "
               "services as black boxes.\n";
  return 0;
}
