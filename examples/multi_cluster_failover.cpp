// Example: failure handling across clusters — an outage and a partial
// brown-out — comparing L3's proactive steering (§6: it reacts to latency /
// success-rate symptoms before a health check trips) with health-check-only
// failover, plus a lease-based HA controller pair (§4).
//
// Demonstrates: failure injection (set_down, success-rate drop), the
// HealthChecker, success-rate-aware weighting, and LeaderElection.
#include "l3/common/table.h"
#include "l3/core/controller.h"
#include "l3/core/leader_election.h"
#include "l3/lb/l3_policy.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/workload/client.h"

#include <iostream>
#include <memory>

int main() {
  using namespace l3;
  using namespace l3::time_literals;

  sim::Simulator sim;
  SplitRng rng(2024);

  mesh::Mesh mesh(sim, rng.split("mesh"));
  const auto c1 = mesh.add_cluster("cluster-1", "eu-central-1");
  const auto c2 = mesh.add_cluster("cluster-2", "eu-west-3");
  const auto c3 = mesh.add_cluster("cluster-3", "eu-south-1");
  mesh::WanModel::Link wan{.base = 5_ms, .jitter_frac = 0.1};
  mesh.wan().set_symmetric(c1, c2, wan);
  mesh.wan().set_symmetric(c1, c3, wan);
  mesh.wan().set_symmetric(c2, c3, wan);

  // cluster-2's replica will brown out (70 % success) mid-run; cluster-3
  // will go fully down later.
  auto& healthy = mesh.deploy(
      "checkout", c1, {},
      std::make_unique<mesh::FixedLatencyBehavior>(30_ms, 120_ms));
  (void)healthy;
  auto& brownout = mesh.deploy(
      "checkout", c2, {},
      std::make_unique<mesh::FixedLatencyBehavior>(30_ms, 120_ms, 1.0));
  auto& outage = mesh.deploy(
      "checkout", c3, {},
      std::make_unique<mesh::FixedLatencyBehavior>(30_ms, 120_ms));
  mesh.proxy(c1, "checkout");

  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("cluster-1", mesh.registry(c1));
  scraper.start(5.0);

  // HA pair: two controller replicas, one lease. Only the leader applies
  // weights; on leader crash the follower takes over after lease expiry.
  core::L3Controller primary(mesh, tsdb, c1, std::make_unique<lb::L3Policy>());
  core::L3Controller standby(mesh, tsdb, c1, std::make_unique<lb::L3Policy>());
  for (auto* controller : {&primary, &standby}) {
    controller->manage_all();
    controller->set_active(false);
    controller->start();
  }
  core::LeaderElection election(sim, /*lease=*/15.0, /*renew=*/5.0);
  const auto id_primary = election.add_candidate(
      "l3-0", {.on_elected = [&] { primary.set_active(true); },
               .on_deposed = [&] { primary.set_active(false); }});
  election.add_candidate(
      "l3-1", {.on_elected = [&] { standby.set_active(true); },
               .on_deposed = [&] { standby.set_active(false); }});
  election.start();

  workload::OpenLoopClient client(mesh, c1, "checkout",
                                  [](SimTime) { return 150.0; },
                                  rng.split("client"));
  client.start(0.0, 600.0);

  // Timeline of injected trouble. The brown-out is emulated with short
  // repeated outages (3 s down every 10 s) between t=120 and t=300 — a
  // replica that intermittently fails ~30 % of requests.
  sim.schedule_at(120.0, [&] {
    std::cout << "t=120s  cluster-2 browns out (intermittent failures)\n";
  });
  auto pulse = sim.schedule_every(10.0, [&] {
    if (sim.now() < 120.0 || sim.now() > 300.0) return;
    brownout.set_down(true);
    sim.schedule_after(3.0, [&] { brownout.set_down(false); });
  });
  sim.schedule_at(360.0, [&] {
    std::cout << "t=360s  cluster-3 goes down completely\n";
    outage.set_down(true);
  });
  sim.schedule_at(420.0, [&] {
    std::cout << "t=420s  primary L3 controller crashes (leader failover)\n";
    election.set_alive(id_primary, false);
  });

  sim.run_until(630.0);
  pulse.cancel();

  // Report per-2-minute success rate and P99.
  const auto timeline =
      workload::aggregate_timeline(client.records(), 0.0, 600.0, 120.0);
  std::cout << "\nwindow   requests  success%  P99(ms)\n";
  for (const auto& bucket : timeline) {
    std::cout << fmt_double(bucket.start, 0) << "-"
              << fmt_double(bucket.start + 120.0, 0) << "s  "
              << bucket.count << "      "
              << fmt_percent(bucket.success_rate, 2) << "    "
              << fmt_ms(bucket.p99, 1) << "\n";
  }
  const auto summary = workload::summarize_records(client.records());
  std::cout << "\noverall success rate: "
            << fmt_percent(summary.success_rate, 2) << " %, leader is now "
            << (election.is_leader(id_primary) ? "l3-0" : "l3-1") << "\n"
            << "L3 steered traffic away from the brown-out before health "
               "checks tripped, and the standby controller took over after "
               "the lease expired.\n";
  return 0;
}
