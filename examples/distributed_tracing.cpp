// Example: distributed request tracing + the controller decision journal on
// the DeathStarBench hotel-reservation application.
//
// Three clusters, the full application in each, an L3 controller per
// cluster, and a Tracer in tail-triggered mode: every request is traced,
// but only the slow ones (root latency >= 20 ms) are kept. The run writes
//
//   distributed_tracing.trace.json    Chrome trace-event JSON — open it in
//                                     Perfetto (ui.perfetto.dev) or
//                                     chrome://tracing to see the
//                                     client → proxy → WAN → server span
//                                     trees of the tail requests, plus an
//                                     "obs" process with rt.counter.* /
//                                     rt.gauge.* counter tracks and the
//                                     flight-recorder ring lanes;
//   distributed_tracing.journal.json  the cluster-1 controller's decision
//                                     journal (filtered signals + raw /
//                                     rate-controlled / applied weights per
//                                     backend per tick);
//
// and prints the critical-path latency breakdown (WAN vs queue vs service)
// plus the last journal decision.
#include "l3/common/table.h"
#include "l3/core/controller.h"
#include "l3/dsb/hotel_app.h"
#include "l3/lb/l3_policy.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/obs/recorder.h"
#include "l3/sim/simulator.h"
#include "l3/trace/breakdown.h"
#include "l3/trace/export.h"
#include "l3/trace/journal.h"
#include "l3/trace/tracer.h"
#include "l3/workload/client.h"

#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

int main() {
  using namespace l3;
  using namespace l3::time_literals;

  sim::Simulator sim;
  SplitRng root(42);

  // Flight recorder: engine counters/gauges and ring events for the same
  // run, exported as counter tracks alongside the span trees below.
  obs::Recorder recorder;
  obs::ScopedRecorderBind recorder_bind(recorder);

  mesh::MeshConfig mesh_config;
  mesh_config.local_delay = 0.0005;
  mesh::Mesh mesh(sim, root.split("mesh"), mesh_config);
  const auto c1 = mesh.add_cluster("cluster-1", "eu-central-1");
  const auto c2 = mesh.add_cluster("cluster-2", "eu-west-3");
  const auto c3 = mesh.add_cluster("cluster-3", "eu-south-1");
  mesh::WanModel::Link link{.base = 5_ms, .jitter_frac = 0.1};
  mesh.wan().set_symmetric(c1, c2, link);
  mesh.wan().set_symmetric(c1, c3, link);
  mesh.wan().set_symmetric(c2, c3, link);

  dsb::HotelAppConfig app_config;
  dsb::HotelReservationApp app(mesh, {c1, c2, c3}, app_config,
                               root.split("app"));
  app.deploy();
  app.warm_routes();

  // Tail-triggered tracing: keep only traces slower than 20 ms.
  trace::TracerConfig tracer_config;
  tracer_config.sampling = trace::SamplingMode::kTail;
  tracer_config.tail_threshold = 20_ms;
  tracer_config.max_traces = 256;
  trace::Tracer tracer(sim, tracer_config, /*seed=*/7);
  mesh.set_tracer(&tracer);

  // Make cluster-2 slow so the controllers have something to react to and
  // the tail traces show cross-cluster WAN + queue time.
  app.load_model().set_factors(c2, {.median = 3.0, .tail = 4.0});

  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  for (mesh::ClusterId c : {c1, c2, c3}) {
    scraper.add_target(mesh.cluster_names()[c], mesh.registry(c));
  }
  scraper.start(5.0);

  std::vector<std::unique_ptr<core::L3Controller>> controllers;
  for (mesh::ClusterId c : {c1, c2, c3}) {
    auto controller = std::make_unique<core::L3Controller>(
        mesh, tsdb, c, std::make_unique<lb::L3Policy>());
    controller->manage_all();
    controller->start();
    controllers.push_back(std::move(controller));
  }

  workload::OpenLoopClient::Config client_config;
  client_config.mode = workload::CallMode::kLocalDirect;
  workload::OpenLoopClient client(
      mesh, c1, dsb::HotelReservationApp::kFrontend,
      [](SimTime) { return 100.0; }, root.split("client"), client_config);
  client.start(0.0, 120.0);
  auto track_task = sim.schedule_every(
      5.0, [&sim, &recorder] { recorder.sample_tracks(sim.now()); });
  sim.run_until(150.0);
  track_task.cancel();

  std::cout << "Traced " << tracer.started() << " requests, kept "
            << tracer.kept() << " tail traces (>= 20 ms), dropped "
            << tracer.dropped_fast() << " fast ones.\n\n";

  // 1. Chrome trace-event JSON for Perfetto / chrome://tracing: span trees
  // plus the obs process (rt.counter.*/rt.gauge.* tracks, ring lanes).
  {
    const obs::Snapshot snapshot = recorder.snapshot();
    std::ofstream out("distributed_tracing.trace.json");
    trace::write_chrome_trace(tracer.traces(), {}, &snapshot, out);
    std::cout << "Wrote distributed_tracing.trace.json ("
              << tracer.traces().size() << " traces, "
              << snapshot.tracks.size() << " obs track samples)\n";
  }

  // 2. Where did the tail latency come from? Critical-path attribution.
  std::cout << "\nCritical-path latency breakdown of the kept traces:\n";
  trace::print_breakdown(trace::summarize_breakdown(tracer.traces()),
                         std::cout);

  // 3. The cluster-1 controller's decision journal.
  const trace::DecisionJournal& journal = controllers.front()->journal();
  {
    std::ofstream out("distributed_tracing.journal.json");
    journal.write_json(out);
    std::cout << "\nWrote distributed_tracing.journal.json ("
              << journal.events().size() << " decisions)\n";
  }
  // The frontend itself is called locally; the managed TrafficSplits are
  // the inter-service edges — show the busiest one (frontend → search).
  if (const trace::DecisionEvent* last = journal.latest("search")) {
    std::cout << "\nLast cluster-1 'search' decision (t=" << last->time
              << "s, policy " << last->policy << "):\n";
    for (const auto& b : last->backends) {
      std::cout << "  " << b.dst_cluster << ": p99=" << fmt_ms(b.latency_p99)
                << "ms rps=" << b.rps << " raw=" << b.raw_weight
                << " rate-controlled=" << b.rate_controlled_weight
                << " applied=" << b.applied_weight << "\n";
    }
  }
  return 0;
}
