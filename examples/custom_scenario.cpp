// Example: author a custom workload scenario from the command line, run it
// under all algorithms, and export it as CSV for external analysis or
// replaying real production captures.
//
// Usage:
//   custom_scenario [--rps R] [--median MS] [--tail-ratio X]
//                   [--slow-mult X] [--duration S] [--export PATH]
//                   [--import PATH]
//
// Demonstrates: the scenario generator's parameter surface, CSV trace I/O,
// and the runner as a library entry point.
#include "l3/common/table.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"
#include "l3/workload/trace_io.h"

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

int main(int argc, char** argv) {
  using namespace l3;

  double rps = 150.0;
  double median_ms = 50.0;
  double tail_ratio = 5.0;
  double slow_mult = 2.5;
  double duration = 300.0;
  std::optional<std::string> export_path;
  std::optional<std::string> import_path;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](double& out) {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << argv[i] << "\n";
        std::exit(2);
      }
      out = std::atof(argv[++i]);
    };
    if (std::strcmp(argv[i], "--rps") == 0) {
      next(rps);
    } else if (std::strcmp(argv[i], "--median") == 0) {
      next(median_ms);
    } else if (std::strcmp(argv[i], "--tail-ratio") == 0) {
      next(tail_ratio);
    } else if (std::strcmp(argv[i], "--slow-mult") == 0) {
      next(slow_mult);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      next(duration);
    } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_path = argv[++i];
    } else if (std::strcmp(argv[i], "--import") == 0 && i + 1 < argc) {
      import_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--rps R] [--median MS] [--tail-ratio X]"
                   " [--slow-mult X] [--duration S] [--export PATH]"
                   " [--import PATH]\n";
      return 2;
    }
  }

  workload::ScenarioTrace trace = [&] {
    if (import_path) {
      std::cout << "importing trace from " << *import_path << "\n";
      return workload::load_trace_csv(*import_path);
    }
    workload::ScenarioShape shape;
    shape.name = "custom";
    shape.duration = duration;
    shape.rps_base = shape.rps_lo = shape.rps_hi = rps;
    shape.med_lo = from_ms(median_ms) * 0.8;
    shape.med_hi = from_ms(median_ms) * 1.2;
    shape.med_sigma = from_ms(median_ms) * 0.02;
    shape.ratio_lo = tail_ratio * 0.6;
    shape.ratio_hi = tail_ratio * 1.4;
    shape.ratio_sigma = tail_ratio * 0.04;
    shape.slow_period = 100.0;
    shape.slow_duration = 40.0;
    shape.slow_med_mult = slow_mult;
    shape.slow_ratio_mult = slow_mult;
    return workload::generate_scenario(shape, 12345);
  }();

  if (export_path) {
    workload::save_trace_csv(trace, *export_path);
    std::cout << "trace written to " << *export_path << "\n";
  }

  std::cout << "scenario '" << trace.name() << "': " << trace.duration()
            << " s, mean " << fmt_double(trace.mean_rps(), 0) << " RPS\n\n";

  workload::RunnerConfig config;
  Table table({"algorithm", "P50 (ms)", "P99 (ms)", "success (%)"});
  for (const auto kind :
       {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
        workload::PolicyKind::kL3}) {
    const auto r = workload::run_scenario(trace, kind, config);
    table.add_row({r.policy, fmt_ms(r.summary.latency.p50),
                   fmt_ms(r.summary.latency.p99),
                   fmt_percent(r.summary.success_rate, 2)});
  }
  table.print(std::cout);
  return 0;
}
