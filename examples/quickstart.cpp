// Quickstart: build a three-cluster mesh, deploy a replicated service with
// different latency characteristics per cluster, run L3 against round-robin,
// and print what the load balancer did.
//
// This is the smallest end-to-end use of the public API:
//   Simulator → Mesh (clusters, WAN, deployments) → Scraper/TSDB →
//   L3Controller(policy) → OpenLoopClient → summary.
#include "l3/core/controller.h"
#include "l3/lb/l3_policy.h"
#include "l3/lb/policy.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/simulator.h"
#include "l3/workload/client.h"

#include <iostream>
#include <memory>

namespace {

/// Runs a 5-minute experiment and reports client-side latency.
l3::workload::ClientSummary run(std::unique_ptr<l3::lb::LoadBalancingPolicy> policy,
                                std::uint64_t seed,
                                std::vector<double>* traffic_share) {
  using namespace l3;
  using namespace l3::time_literals;

  sim::Simulator sim;
  SplitRng rng(seed);

  // 1. Three clusters, ~10 ms RTT apart.
  mesh::Mesh mesh(sim, rng.split("mesh"));
  const auto frankfurt = mesh.add_cluster("frankfurt", "eu-central-1");
  const auto paris = mesh.add_cluster("paris", "eu-west-3");
  const auto milan = mesh.add_cluster("milan", "eu-south-1");
  mesh::WanModel::Link wan{.base = 5_ms, .jitter_frac = 0.1};
  mesh.wan().set_symmetric(frankfurt, paris, wan);
  mesh.wan().set_symmetric(frankfurt, milan, wan);
  mesh.wan().set_symmetric(paris, milan, wan);

  // 2. One service, replicated everywhere — but Paris is fast (20 ms
  //    median) while Frankfurt and Milan are slow (60/45 ms).
  mesh::DeploymentConfig dc;  // 3 replicas per cluster by default
  mesh.deploy("api", frankfurt, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(60_ms, 250_ms));
  mesh.deploy("api", paris, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(20_ms, 80_ms));
  mesh.deploy("api", milan, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(45_ms, 180_ms));
  mesh.proxy(frankfurt, "api");  // materialise the TrafficSplit

  // 3. Metrics pipeline: Prometheus-style scrape every 5 s.
  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("frankfurt", mesh.registry(frankfurt));
  scraper.start(5.0);

  // 4. The controller applying the chosen policy every 5 s.
  core::L3Controller controller(mesh, tsdb, frankfurt, std::move(policy));
  controller.manage_all();
  controller.start();

  // 5. An open-loop client in Frankfurt at 100 RPS for 5 minutes.
  workload::OpenLoopClient client(
      mesh, frankfurt, "api", [](l3::SimTime) { return 100.0; },
      rng.split("client"));
  client.start(0.0, 300.0);
  sim.run_until(330.0);

  // Report: drop the first 60 s as warm-up.
  const auto records = client.records_after(60.0);
  if (traffic_share) {
    traffic_share->assign(3, 0.0);
    for (const auto& r : records) (*traffic_share)[r.backend_cluster] += 1.0;
    for (auto& s : *traffic_share) s /= static_cast<double>(records.size());
  }
  return workload::summarize_records(records);
}

}  // namespace

int main() {
  using namespace l3;

  std::cout << "L3 quickstart: one fast cluster (paris), two slow ones\n\n";
  for (const bool use_l3 : {false, true}) {
    std::unique_ptr<lb::LoadBalancingPolicy> policy;
    if (use_l3) {
      policy = std::make_unique<lb::L3Policy>();
    } else {
      policy = std::make_unique<lb::RoundRobinPolicy>();
    }
    const std::string name(policy->name());
    std::vector<double> share;
    const auto summary = run(std::move(policy), 7, &share);
    std::cout << name << ":\n"
              << "  p50 = " << to_ms(summary.latency.p50) << " ms"
              << ", p99 = " << to_ms(summary.latency.p99) << " ms"
              << ", requests = " << summary.count << "\n"
              << "  traffic share: frankfurt=" << share[0]
              << " paris=" << share[1] << " milan=" << share[2] << "\n\n";
  }
  std::cout << "L3 should shift most traffic to paris and cut the tail.\n";
  return 0;
}
