// Example: replay a TIER-Mobility-style production scenario against all
// three load-balancing algorithms and watch L3's traffic distribution react
// to the rotating slow cluster.
//
// Demonstrates: the scenario library, the benchmark coordinator
// (run_scenario), timelines, and controller introspection-style output.
#include "l3/common/table.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main() {
  using namespace l3;

  // Generate the scenario the paper's Figure 1a describes: medians between
  // 50 and 100 ms, cluster-2 spiking higher, stable ~300 RPS.
  const auto trace = workload::make_scenario1();
  std::cout << "scenario: " << trace.name() << ", duration "
            << trace.duration() << " s, mean RPS "
            << fmt_double(trace.mean_rps(), 0) << "\n\n";

  workload::RunnerConfig config;
  config.duration = 300.0;  // first half is enough for a demo

  Table table({"algorithm", "P50 (ms)", "P99 (ms)", "share c1", "share c2",
               "share c3"});
  for (const auto kind :
       {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
        workload::PolicyKind::kL3}) {
    const auto r = workload::run_scenario(trace, kind, config);
    table.add_row({r.policy, fmt_ms(r.summary.latency.p50),
                   fmt_ms(r.summary.latency.p99),
                   fmt_double(r.traffic_share[0], 2),
                   fmt_double(r.traffic_share[1], 2),
                   fmt_double(r.traffic_share[2], 2)});
  }
  table.print(std::cout);

  // Show L3's per-minute P99 timeline — the signal it is optimising.
  const auto l3_run =
      workload::run_scenario(trace, workload::PolicyKind::kL3, config);
  std::cout << "\nL3 per-minute client P99 (ms):";
  for (std::size_t i = 0; i < l3_run.timeline.size(); i += 60) {
    double worst = 0.0;
    for (std::size_t j = i; j < std::min(i + 60, l3_run.timeline.size()); ++j) {
      worst = std::max(worst, l3_run.timeline[j].p99);
    }
    std::cout << " " << fmt_ms(worst, 0);
  }
  std::cout << "\n\nround-robin pins 1/3 everywhere; L3 keeps shifting toward"
               " whichever cluster is currently fast.\n";
  return 0;
}
