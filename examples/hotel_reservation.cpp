// Example: the DeathStarBench hotel-reservation application on a
// three-cluster mesh, with one L3 controller per cluster (the production
// layout of §3) and rotating per-cluster performance disturbances.
//
// Demonstrates: the dsb application model, multi-controller operation,
// per-service TrafficSplits, and the end-to-end latency impact of L3.
#include "l3/common/table.h"
#include "l3/dsb/runner.h"

#include <iostream>

int main() {
  using namespace l3;

  std::cout << "DeathStarBench hotel-reservation: 17 services x 3 clusters,\n"
               "client at the cluster-1 frontend, 200 RPS, rotating cluster\n"
               "disturbances (tail-heavy slowdowns).\n\n";

  dsb::DsbRunnerConfig config;
  config.duration = 300.0;  // 5-minute demo

  Table table({"algorithm", "P50 (ms)", "P99 (ms)", "requests",
               "weight updates"});
  for (const auto kind :
       {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
        workload::PolicyKind::kL3}) {
    const auto r = dsb::run_hotel_reservation(kind, config);
    table.add_row({r.policy, fmt_ms(r.summary.latency.p50),
                   fmt_ms(r.summary.latency.p99), std::to_string(r.requests),
                   std::to_string(r.weight_updates)});
  }
  table.print(std::cout);

  std::cout << "\nEvery inter-service hop (frontend->search, search->geo, "
               "...) is a TrafficSplit\nacross the three clusters; the "
               "stateful memcached/mongodb tiers stay local.\nL3 re-weights "
               "all of them every 5 s from the scraped proxy metrics.\n";
  return 0;
}
