#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer and UndefinedBehaviorSanitizer
# and runs ctest for each, runs the concurrency-sensitive tests (experiment
# runner, simulator, logging, obs shard merge, shard engine + mailboxes)
# under ThreadSanitizer, then the plain RelWithDebInfo build,
# jobs-invariance smoke diffs on figure benches (plain, chaos, --profile,
# and --no-batch), a --proxy-cost=0 zero-cost identity diff,
# shard-invariance smoke diffs (--shards=2/4 vs the serial
# run, plain and chaos), an L3_OBS=OFF byte-identical golden, a
# Release-mode bench/sim_core smoke run (writes BENCH_sim_core.json), the
# flight-recorder overhead gate, the batched pick-path gate (batched
# >= 1.5x scalar picks/s), the sharded-mega throughput gate, the serial-mega
# columnar control-plane gate (shards=1 req/s >= 2/3 of recorded baseline),
# the control_plane section gate, the proxy_cost saturation gate, and a
# per-kernel micro-bench smoke.
# Intended as the pre-merge gate; any failure aborts immediately.
#
# Usage: scripts/check.sh [preset...]
#   With no arguments, runs: asan ubsan tsan default.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(asan ubsan tsan default)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> [$preset] test"
  if [[ "$preset" == tsan ]]; then
    # TSan is ~10x slower; cover the code that actually runs threads —
    # the parallel experiment runner, the simulator's context binding and
    # the concurrent-logging tests — plus the pooled call-state lifecycle
    # tests (SlotPool/ProxyCallPool), whose handle-staleness races are the
    # invariant the request-path overhaul leans on, and the chaos crash /
    # injector tests, which recycle those handles mid-flight.
    # ...and the obs recorder's multi-thread shard merge.
    # ...plus the batched dispatch and pick-kernel suites: the batch path
    # shares the EventQueue slot pool and the picker caches the overhaul
    # leans on, so their invariants get the same TSan coverage.
    # ...plus the shard engine and mailbox suites: the conservative-barrier
    # handshake and the staging/inbox handoff are the only cross-thread
    # channels in the sharded simulator, so they run under TSan in full
    # (including the 10k-backend mega scenario at --shards=4).
    # ...plus the control-plane fast-path suites (WindowCursor, ColumnBlock):
    # single-threaded by design, but their cursor/plan caches are mutable
    # state the sharded runners touch per tick, so they get TSan coverage.
    # ...plus the proxy cost-model suites (ProxyCost, ConnectionPool): the
    # pool/CPU-stage state rides inside every proxy the parallel experiment
    # runner and the sharded mega scenario instantiate per worker.
    ctest --preset "$preset" \
      -R 'Experiment|ResultGrid|CellSeed|Simulator|LogContext|SlotPool|ProxyCallPool|Chaos|Crash|ObsRecorder|DispatchBatch|BatchedTraceIdentity|PickKernels|Shard|Mailbox|Mega|WindowCursor|ColumnBlock|ProxyCost|ConnectionPool'
  else
    ctest --preset "$preset"
  fi
done

# Jobs-invariance smoke: a parallel sweep must produce byte-identical
# stdout and JSON to the serial one (the harness's core guarantee).
if [[ " ${presets[*]} " == *" default "* ]]; then
  echo "==> [default] jobs-invariance smoke (fig10_scenarios)"
  smoke_dir=$(mktemp -d)
  trap 'rm -rf "$smoke_dir"' EXIT
  ./build/bench/fig10_scenarios --fast --reps 1 --jobs 1 \
      --json "$smoke_dir/j1.json" > "$smoke_dir/j1.out"
  ./build/bench/fig10_scenarios --fast --reps 1 --jobs 2 \
      --json "$smoke_dir/j2.json" > "$smoke_dir/j2.out"
  diff "$smoke_dir/j1.out" "$smoke_dir/j2.out"
  diff "$smoke_dir/j1.json" "$smoke_dir/j2.json"
  echo "    byte-identical at --jobs 1 and --jobs 2"

  # Same guarantee under fault injection: fig11 arms a FaultPlan per cell,
  # so this also proves chaos timelines are jobs-invariant.
  echo "==> [default] chaos jobs-invariance smoke (fig11_failure_latency)"
  ./build/bench/fig11_failure_latency --fast --reps 1 --jobs 1 \
      --json "$smoke_dir/c1.json" > "$smoke_dir/c1.out"
  ./build/bench/fig11_failure_latency --fast --reps 1 --jobs 2 \
      --json "$smoke_dir/c2.json" > "$smoke_dir/c2.out"
  diff "$smoke_dir/c1.out" "$smoke_dir/c2.out"
  diff "$smoke_dir/c1.json" "$smoke_dir/c2.json"
  echo "    byte-identical at --jobs 1 and --jobs 2"

  # --profile jobs-invariance: the JSON `profile` block is merged in grid
  # order from deterministic counts, so a profiled run must stay
  # byte-identical across --jobs too (wall-clock goes to stderr only).
  echo "==> [default] --profile jobs-invariance smoke (fig10_scenarios)"
  ./build/bench/fig10_scenarios --fast --reps 1 --jobs 1 --profile \
      --json "$smoke_dir/p1.json" > "$smoke_dir/p1.out" 2>/dev/null
  ./build/bench/fig10_scenarios --fast --reps 1 --jobs 2 --profile \
      --json "$smoke_dir/p2.json" > "$smoke_dir/p2.out" 2>/dev/null
  diff "$smoke_dir/p1.out" "$smoke_dir/p2.out"
  diff "$smoke_dir/p1.json" "$smoke_dir/p2.json"
  grep -q '"profile"' "$smoke_dir/p1.json" \
    || { echo "FAIL: --profile produced no profile block"; exit 1; }
  # The control-plane scopes (columnar scrape plan, fused controller
  # gather) must appear in the profile block — and, being inside the
  # byte-identical p1/p2 diff above, be jobs-invariant themselves.
  for scope in 'scraper.plan' 'controller.gather'; do
    grep -q "\"$scope\"" "$smoke_dir/p1.json" \
      || { echo "FAIL: profile block lacks control-plane scope $scope"; exit 1; }
  done
  echo "    profiled output byte-identical at --jobs 1 and --jobs 2"

  # Batch-identity smoke: --no-batch restores the strictly per-event loop,
  # which must produce byte-identical stdout and JSON to the batched
  # default (batching is a pure dispatch-overhead optimization).
  echo "==> [default] --no-batch identity smoke (fig10_scenarios)"
  ./build/bench/fig10_scenarios --fast --reps 1 --jobs 1 --no-batch \
      --json "$smoke_dir/nb.json" > "$smoke_dir/nb.out"
  diff "$smoke_dir/j1.out" "$smoke_dir/nb.out"
  diff "$smoke_dir/j1.json" "$smoke_dir/nb.json"
  echo "    byte-identical with --no-batch"

  # Zero-cost proxy identity: an explicit --proxy-cost=0 arms the whole
  # ProxyCostConfig plumbing (runner -> mesh -> proxy) with zero-valued
  # knobs, which must not move a single byte of stdout or JSON relative
  # to the untouched default run (DESIGN.md §16's zero-cost guarantee).
  echo "==> [default] --proxy-cost=0 identity smoke (fig10_scenarios)"
  ./build/bench/fig10_scenarios --fast --reps 1 --jobs 1 --proxy-cost=0 \
      --json "$smoke_dir/pc0.json" > "$smoke_dir/pc0.out"
  diff "$smoke_dir/j1.out" "$smoke_dir/pc0.out"
  diff "$smoke_dir/j1.json" "$smoke_dir/pc0.json"
  echo "    byte-identical with --proxy-cost=0"

  # Shard-invariance smoke: running the bench grid through the sharded
  # engine must produce byte-identical stdout and JSON to the serial run
  # at every shard count (the conservative barrier + keyed mailbox drain
  # guarantee). Reuses the --jobs 1 goldens from above.
  echo "==> [default] shard-invariance smoke (fig10_scenarios)"
  for n in 2 4; do
    ./build/bench/fig10_scenarios --fast --reps 1 --jobs 1 --shards="$n" \
        --json "$smoke_dir/s$n.json" > "$smoke_dir/s$n.out"
    diff "$smoke_dir/j1.out" "$smoke_dir/s$n.out"
    diff "$smoke_dir/j1.json" "$smoke_dir/s$n.json"
  done
  echo "    byte-identical at --shards=1, 2 and 4"

  # Same guarantee with fault injection armed: chaos timelines ride the
  # same keyed event order, so fig11 must be shard-count invariant too.
  echo "==> [default] chaos shard-invariance smoke (fig11_failure_latency)"
  ./build/bench/fig11_failure_latency --fast --reps 1 --jobs 1 --shards=2 \
      --json "$smoke_dir/cs2.json" > "$smoke_dir/cs2.out"
  diff "$smoke_dir/c1.out" "$smoke_dir/cs2.out"
  diff "$smoke_dir/c1.json" "$smoke_dir/cs2.json"
  echo "    byte-identical at --shards=1 and --shards=2 under chaos"

  # L3_OBS=OFF zero-cost check: compiling the instrumentation out must not
  # change a single byte of bench stdout or report JSON (the macros carry no
  # behavior). Reuses the unprofiled fig10 golden from the default build.
  echo "==> [obsoff] L3_OBS=OFF byte-identical golden (fig10_scenarios)"
  cmake --preset obsoff >/dev/null
  cmake --build --preset obsoff -j "$(nproc)" --target fig10_scenarios
  ./build-obsoff/bench/fig10_scenarios --fast --reps 1 --jobs 1 \
      --json "$smoke_dir/off1.json" > "$smoke_dir/off1.out"
  diff "$smoke_dir/j1.out" "$smoke_dir/off1.out"
  diff "$smoke_dir/j1.json" "$smoke_dir/off1.json"
  # --profile still parses with obs compiled out; the report just carries
  # an all-zero-count profile block (recorder runs, macros are no-ops).
  ./build-obsoff/bench/fig10_scenarios --fast --reps 1 --jobs 2 --profile \
      --json "$smoke_dir/off2.json" > "$smoke_dir/off2.out" 2>/dev/null
  diff "$smoke_dir/j1.out" "$smoke_dir/off2.out"
  echo "    L3_OBS=OFF output byte-identical to the instrumented build"
fi

# Hot-path perf smoke: build the sim_core bench in Release and refresh
# BENCH_sim_core.json so regressions in events/s or TSDB throughput show
# up in the diff. --fast keeps it to a few seconds.
echo "==> [release-bench] sim_core perf smoke"
cmake --preset release-bench >/dev/null
cmake --build --preset release-bench -j "$(nproc)" --target sim_core
cmake --build --preset release-bench -j "$(nproc)" --target trace_overhead

# Flight-recorder overhead gate: a full scenario with the recorder bound
# must finish within 5% of the unrecorded run, produce identical simulation
# results, and cover >= 6 instrumented subsystems (exits non-zero on any
# violation; see bench/trace_overhead.cpp --obs-gate).
echo "==> [release-bench] obs recorder overhead gate"
./build-release/bench/trace_overhead --obs-gate 5 --obs-gate-reps 3
baseline=$(git show HEAD:BENCH_sim_core.json 2>/dev/null \
  | awk -F': ' '/"weighted_picks_per_sec"/ {gsub(/,/,"",$2); print $2}' || true)
./build-release/bench/sim_core --fast --out BENCH_sim_core.json

# request_path regression gate: weighted picks/s must stay within 30% of
# the committed baseline (noise on a shared box is well under that; a
# cache-invalidation bug that rebuilds the picker per pick is ~10x under).
current=$(awk -F': ' '/"weighted_picks_per_sec"/ {gsub(/,/,"",$2); print $2}' \
  BENCH_sim_core.json)
if [[ -n "${baseline:-}" && -n "${current:-}" ]]; then
  awk -v b="$baseline" -v c="$current" 'BEGIN {
    if (c + 0.0 < 0.7 * b) {
      printf "FAIL: weighted picks/s %.4g < 70%% of committed baseline %.4g\n", c, b
      exit 1
    }
    printf "    request_path ok: weighted picks/s %.4g (baseline %.4g)\n", c, b
  }'
else
  echo "    no committed request_path baseline yet; comparison skipped"
fi

# Batch-path gate: the batched pick kernels must beat the scalar loop by a
# clear margin on the same proxies in the same process. The ratio is
# clock-drift-immune (both sides run in one process back to back), so the
# bar can be tight: < 1.5x means the batch path lost its fused table loads.
awk -F': ' '/"batch_pick_speedup"/ {gsub(/,/,"",$2); speedup = $2}
  END {
    if (speedup == "") { print "FAIL: no batch_pick_speedup in BENCH_sim_core.json"; exit 1 }
    if (speedup + 0.0 < 1.5) {
      printf "FAIL: batched picks only %.3gx scalar (gate: 1.5x)\n", speedup
      exit 1
    }
    printf "    batch path ok: batched picks %.3gx scalar\n", speedup
  }' BENCH_sim_core.json

# Sharded-mega throughput gate: the 10k-backend scenario through the
# sharded engine must keep its aggregate req/s within 50% of the committed
# baseline. Wall-clock based, so the tolerance is loose — it catches a
# barrier that starts spinning per event (~10x under), not scheduler noise.
shard_baseline=$(git show HEAD:BENCH_sim_core.json 2>/dev/null \
  | awk -F': ' '/"shards4_reqs_per_sec"/ {gsub(/,/,"",$2); print $2}' || true)
shard_current=$(awk -F': ' '/"shards4_reqs_per_sec"/ {gsub(/,/,"",$2); print $2}' \
  BENCH_sim_core.json)
if [[ -z "${shard_current:-}" ]]; then
  echo "FAIL: no shards4_reqs_per_sec in BENCH_sim_core.json"
  exit 1
fi
if [[ -n "${shard_baseline:-}" ]]; then
  awk -v b="$shard_baseline" -v c="$shard_current" 'BEGIN {
    if (c + 0.0 < 0.5 * b) {
      printf "FAIL: sharded mega %.4g req/s < 50%% of committed baseline %.4g\n", c, b
      exit 1
    }
    printf "    sharded mega ok: %.4g req/s at --shards=4 (baseline %.4g)\n", c, b
  }'
else
  echo "    no committed sharded-mega baseline yet; comparison skipped"
fi

# Serial-mega gate for the columnar control plane: the 24x420 mega scenario
# at --shards=1 must hold >= 2/3 of the committed baseline. The committed
# BENCH_sim_core.json already carries the columnar-era number (~3x the
# pre-columnar tree), so a plain regression bound keeps the win: losing a
# third of it (a cursor that stops hitting, a plan rebuilt per scrape)
# trips this well before scheduler noise can. (The old form compared
# against 1.5x the committed value, which became unsatisfiable the moment
# the columnar baseline itself was committed.)
serial_baseline=$(git show HEAD:BENCH_sim_core.json 2>/dev/null \
  | awk -F': ' '/"shards1_reqs_per_sec"/ {gsub(/,/,"",$2); print $2}' || true)
serial_current=$(awk -F': ' '/"shards1_reqs_per_sec"/ {gsub(/,/,"",$2); print $2}' \
  BENCH_sim_core.json)
if [[ -z "${serial_current:-}" ]]; then
  echo "FAIL: no shards1_reqs_per_sec in BENCH_sim_core.json"
  exit 1
fi
if [[ -n "${serial_baseline:-}" ]]; then
  awk -v b="$serial_baseline" -v c="$serial_current" 'BEGIN {
    if (c + 0.0 < b * 2.0 / 3.0) {
      printf "FAIL: serial mega %.4g req/s < 2/3 of committed baseline %.4g\n", c, b
      exit 1
    }
    printf "    serial mega ok: %.4g req/s at --shards=1 (baseline %.4g)\n", c, b
  }'
else
  echo "    no committed serial-mega baseline yet; comparison skipped"
fi

# Control-plane gate: BENCH_sim_core.json must carry the control_plane
# section (24-region scrape+manage at mega scale), and its two throughput
# numbers must stay within 50% of the committed baseline when one exists.
grep -q '"control_plane"' BENCH_sim_core.json \
  || { echo "FAIL: no control_plane section in BENCH_sim_core.json"; exit 1; }
for field in scrape_series_per_sec manage_backends_per_sec; do
  cp_baseline=$(git show HEAD:BENCH_sim_core.json 2>/dev/null \
    | awk -F': ' -v f="\"$field\"" '$0 ~ f {gsub(/,/,"",$2); print $2}' || true)
  cp_current=$(awk -F': ' -v f="\"$field\"" '$0 ~ f {gsub(/,/,"",$2); print $2}' \
    BENCH_sim_core.json)
  if [[ -z "${cp_current:-}" ]]; then
    echo "FAIL: no $field in BENCH_sim_core.json control_plane section"
    exit 1
  fi
  if [[ -n "${cp_baseline:-}" ]]; then
    awk -v b="$cp_baseline" -v c="$cp_current" -v f="$field" 'BEGIN {
      if (c + 0.0 < 0.5 * b) {
        printf "FAIL: control_plane %s %.4g < 50%% of committed baseline %.4g\n", f, c, b
        exit 1
      }
      printf "    control_plane ok: %s %.4g (baseline %.4g)\n", f, c, b
    }'
  else
    echo "    no committed control_plane baseline for $field yet; comparison skipped"
  fi
done

# Proxy-cost gate: BENCH_sim_core.json must carry the proxy_cost section
# (the DESIGN.md §16 cost sweep), the costed run must have actually paid
# handshakes, and proxy saturation must compress the L3 traffic-share skew
# by a clear margin: skew_compression = (zero_skew-1)/(costed_skew-1) >= 1.5.
# The committed baseline measures ~4.3x, so 1.5x trips on a cost model that
# stopped feeding the EWMA signal well before run-to-run noise can.
grep -q '"proxy_cost"' BENCH_sim_core.json \
  || { echo "FAIL: no proxy_cost section in BENCH_sim_core.json"; exit 1; }
awk -F': ' '
  /"skew_compression"/ {gsub(/,/,"",$2); compression = $2}
  /"handshakes"/ {gsub(/,/,"",$2); handshakes = $2}
  END {
    if (compression == "") {
      print "FAIL: no skew_compression in proxy_cost section"; exit 1
    }
    if (handshakes + 0 < 1) {
      print "FAIL: costed proxy run paid no handshakes"; exit 1
    }
    if (compression + 0.0 < 1.5) {
      printf "FAIL: proxy saturation compressed share skew only %.3gx (gate: 1.5x)\n", compression
      exit 1
    }
    printf "    proxy_cost ok: skew compression %.3gx, %d handshakes\n", compression, handshakes
  }' BENCH_sim_core.json

# Pick-kernel micro bench smoke: every (kernel, table size) pair runs and
# the selector itself stays cheap. Output is informational; failure to run
# (bad kernel id, out-of-bounds table) aborts the script.
echo "==> [release-bench] pick-kernel micro bench"
cmake --build --preset release-bench -j "$(nproc)" --target micro_algorithms \
  >/dev/null
./build-release/bench/micro_algorithms \
  --benchmark_filter='BM_WeightedPickKernel|BM_KernelSelection' \
  --benchmark_min_time=0.05 2>/dev/null | grep -E 'BM_|items_per_second' \
  | head -20

echo "All checks passed: ${presets[*]} + sim_core smoke + obs gate + batch gate + shard gate + serial-mega gate + control-plane gate + proxy-cost gate"
