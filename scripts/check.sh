#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer and UndefinedBehaviorSanitizer
# and runs ctest for each, then the plain RelWithDebInfo build. Intended as
# the pre-merge gate; any failure aborts immediately.
#
# Usage: scripts/check.sh [preset...]
#   With no arguments, runs: asan ubsan default.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(asan ubsan default)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> [$preset] test"
  ctest --preset "$preset"
done

echo "All checks passed: ${presets[*]}"
