#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer and UndefinedBehaviorSanitizer
# and runs ctest for each, then the plain RelWithDebInfo build, then a
# Release-mode bench/sim_core smoke run (writes BENCH_sim_core.json).
# Intended as the pre-merge gate; any failure aborts immediately.
#
# Usage: scripts/check.sh [preset...]
#   With no arguments, runs: asan ubsan default.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(asan ubsan default)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> [$preset] test"
  ctest --preset "$preset"
done

# Hot-path perf smoke: build the sim_core bench in Release and refresh
# BENCH_sim_core.json so regressions in events/s or TSDB throughput show
# up in the diff. --fast keeps it to a few seconds.
echo "==> [release-bench] sim_core perf smoke"
cmake --preset release-bench >/dev/null
cmake --build --preset release-bench -j "$(nproc)" --target sim_core
./build-release/bench/sim_core --fast --out BENCH_sim_core.json

echo "All checks passed: ${presets[*]} + sim_core smoke"
