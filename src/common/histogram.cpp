#include "l3/common/histogram.h"

#include <algorithm>
#include <cmath>

namespace l3 {

LogHistogram::LogHistogram(double min_value, double max_value,
                           double precision)
    : min_value_(min_value),
      log_min_(std::log(min_value)),
      log_ratio_(std::log1p(precision)) {
  L3_EXPECTS(min_value > 0.0);
  L3_EXPECTS(max_value > min_value);
  L3_EXPECTS(precision > 0.0 && precision < 1.0);
  const auto n = static_cast<std::size_t>(
                     std::ceil((std::log(max_value) - log_min_) / log_ratio_)) +
                 1;
  buckets_.assign(n, 0);
}

std::size_t LogHistogram::index_of(double value) const {
  if (value <= min_value_) return 0;
  const auto idx =
      static_cast<std::size_t>((std::log(value) - log_min_) / log_ratio_);
  return std::min(idx, buckets_.size() - 1);
}

double LogHistogram::midpoint_of(std::size_t index) const {
  // Geometric midpoint of bucket [min * r^i, min * r^(i+1)).
  return std::exp(log_min_ + (static_cast<double>(index) + 0.5) * log_ratio_);
}

void LogHistogram::record(double value) { record_n(value, 1); }

void LogHistogram::record_n(double value, std::uint64_t n) {
  if (n == 0) return;
  L3_EXPECTS(std::isfinite(value));
  buckets_[index_of(value)] += n;
  count_ += n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += value * static_cast<double>(n);
}

void LogHistogram::merge(const LogHistogram& other) {
  L3_EXPECTS(buckets_.size() == other.buckets_.size());
  L3_EXPECTS(log_ratio_ == other.log_ratio_ && log_min_ == other.log_min_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LogHistogram::quantile(double q) const {
  L3_EXPECTS(q > 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp the estimate by the exact observed extrema so that e.g. the
      // P100 of a single sample is the sample itself.
      return std::clamp(midpoint_of(i), min_, max_);
    }
  }
  return max_;
}

double LogHistogram::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

void LogHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

const std::vector<double>& FixedBucketHistogram::default_latency_bounds() {
  // Linkerd proxy response_latency_ms bucket bounds, converted to seconds.
  static const std::vector<double> kBounds = {
      0.001, 0.002, 0.003, 0.004, 0.005, 0.010, 0.020, 0.030,
      0.040, 0.050, 0.100, 0.200, 0.300, 0.400, 0.500, 1.000,
      2.000, 3.000, 4.000, 5.000, 10.00, 30.00, 60.00};
  return kBounds;
}

FixedBucketHistogram::FixedBucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  L3_EXPECTS(!bounds_.empty());
  L3_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void FixedBucketHistogram::record(double value) {
  L3_EXPECTS(std::isfinite(value));
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  total_ += 1;
}

void FixedBucketHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double histogram_quantile(std::span<const double> bounds,
                          std::span<const double> cumulative, double q) {
  L3_EXPECTS(q > 0.0 && q <= 1.0);
  L3_EXPECTS(cumulative.size() == bounds.size() + 1);
  const double total = cumulative.back();
  if (total <= 0.0) return 0.0;
  const double rank = q * total;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (cumulative[i] >= rank) {
      if (i == cumulative.size() - 1) {
        // +Inf bucket: Prometheus returns the highest finite bound.
        return bounds.back();
      }
      const double bucket_end = bounds[i];
      const double bucket_start = (i == 0) ? 0.0 : bounds[i - 1];
      const double prev_cum = (i == 0) ? 0.0 : cumulative[i - 1];
      const double in_bucket = cumulative[i] - prev_cum;
      if (in_bucket <= 0.0) return bucket_end;
      return bucket_start +
             (bucket_end - bucket_start) * ((rank - prev_cum) / in_bucket);
    }
  }
  return bounds.back();
}

}  // namespace l3
