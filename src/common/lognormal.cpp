#include "l3/common/lognormal.h"

#include <cmath>

namespace l3 {

double normal_quantile(double q) {
  L3_EXPECTS(q > 0.0 && q < 1.0);
  // Peter Acklam's inverse normal CDF approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (q < p_low) {
    const double r = std::sqrt(-2.0 * std::log(q));
    return (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
            c[5]) /
           ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
  }
  if (q <= p_high) {
    const double r = q - 0.5;
    const double s = r * r;
    return (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s +
            a[5]) *
           r /
           (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s + 1.0);
  }
  const double r = std::sqrt(-2.0 * std::log(1.0 - q));
  return -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
           c[5]) /
         ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
}

LogNormalParams fit_lognormal(double median, double value_at_q, double q) {
  L3_EXPECTS(median > 0.0);
  L3_EXPECTS(value_at_q > median);
  L3_EXPECTS(q > 0.5 && q < 1.0);
  LogNormalParams p;
  p.mu = std::log(median);
  p.sigma = (std::log(value_at_q) - p.mu) / normal_quantile(q);
  L3_ENSURES(p.sigma > 0.0);
  return p;
}

}  // namespace l3
