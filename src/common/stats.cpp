#include "l3/common/stats.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <cmath>

namespace l3 {

double percentile(std::span<const double> values, double q) {
  L3_EXPECTS(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

LatencySummary summarize(std::span<const double> values) {
  LatencySummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.mean = mean(values);
  s.p50 = at(0.50);
  s.p90 = at(0.90);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  s.p999 = at(0.999);
  s.max = sorted.back();
  return s;
}

}  // namespace l3
