#include "l3/common/stats.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace l3 {
namespace {

/// Maps a double's IEEE-754 bits to an unsigned key whose order matches
/// operator< on the doubles (NaNs excluded): negatives get all bits
/// flipped, non-negatives just the sign bit.
std::uint64_t order_key(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  const std::uint64_t mask =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(b) >> 63) |
      0x8000000000000000ull;
  return b ^ mask;
}

double key_to_double(std::uint64_t k) {
  const std::uint64_t b = (k & 0x8000000000000000ull) != 0
                              ? k ^ 0x8000000000000000ull
                              : ~k;
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

/// The sample's order keys, radix-sorted ascending. Individual order
/// statistics convert back through key_to_double on demand — quantile
/// readers only touch a handful of positions, so the full convert-back
/// pass a sorted double vector would need is never paid.
class SortedKeys {
 public:
  /// Byte-wise LSD radix sort. Produces exactly the order std::sort would
  /// on the doubles (the key mapping is a strictly monotone bijection),
  /// but in O(n) passes of sequential traffic instead of n·log n branchy
  /// comparisons — the comparison sort was the dominant cost of
  /// summarizing a full scenario's ~67k latencies. Uniform digit
  /// positions (common in the exponent bytes of same-scale samples) are
  /// skipped outright. Scratch is raw arrays, not vectors: every element
  /// is overwritten before it is read, so value-initialization would be
  /// two pure-overhead memsets.
  explicit SortedKeys(std::span<const double> values)
      : n_(values.size()),
        a_(new std::uint64_t[n_]),
        b_(new std::uint64_t[n_]) {
    std::uint64_t* src = a_.get();
    std::uint64_t* dst = b_.get();
    for (std::size_t i = 0; i < n_; ++i) src[i] = order_key(values[i]);
    std::array<std::array<std::uint32_t, 256>, 8> hist{};
    for (std::size_t i = 0; i < n_; ++i) {
      const std::uint64_t k = src[i];
      for (std::size_t d = 0; d < 8; ++d) ++hist[d][(k >> (8 * d)) & 255];
    }
    for (std::size_t d = 0; d < 8; ++d) {
      const auto& h = hist[d];
      const std::size_t shift = 8 * d;
      // A digit position where every key agrees changes nothing.
      if (h[(src[0] >> shift) & 255] == n_) continue;
      std::array<std::uint32_t, 256> offset;
      std::uint32_t sum = 0;
      for (std::size_t j = 0; j < 256; ++j) {
        offset[j] = sum;
        sum += h[j];
      }
      for (std::size_t i = 0; i < n_; ++i) {
        dst[offset[(src[i] >> shift) & 255]++] = src[i];
      }
      std::swap(src, dst);
    }
    sorted_ = src;
  }

  /// The i-th smallest sample value.
  double at(std::size_t i) const { return key_to_double(sorted_[i]); }

  /// Same interpolation as percentile_sorted on the sorted doubles; the
  /// key mapping round-trips exactly, so the result is bit-identical.
  double quantile(double q) const {
    const double pos = q * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, n_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return at(lo) * (1.0 - frac) + at(hi) * frac;
  }

 private:
  std::size_t n_;
  std::unique_ptr<std::uint64_t[]> a_;
  std::unique_ptr<std::uint64_t[]> b_;
  std::uint64_t* sorted_;
};

/// Below this the comparison sort wins on cache residency and the radix
/// machinery's fixed costs dominate (measured crossover ~2k).
constexpr std::size_t kRadixThreshold = 2048;

}  // namespace

double percentile(std::span<const double> values, double q) {
  L3_EXPECTS(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  if (values.size() >= kRadixThreshold) return SortedKeys(values).quantile(q);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  L3_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

LatencySummary summarize(std::span<const double> values) {
  LatencySummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  if (values.size() >= kRadixThreshold) {
    const SortedKeys keys(values);
    s.p50 = keys.quantile(0.50);
    s.p90 = keys.quantile(0.90);
    s.p95 = keys.quantile(0.95);
    s.p99 = keys.quantile(0.99);
    s.p999 = keys.quantile(0.999);
    s.max = keys.at(values.size() - 1);
    return s;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  s.p999 = percentile_sorted(sorted, 0.999);
  s.max = sorted.back();
  return s;
}

}  // namespace l3
