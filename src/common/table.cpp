#include "l3/common/table.h"

#include "l3/common/assert.h"
#include "l3/common/time.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace l3 {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  L3_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  L3_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double value, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  return ss.str();
}

std::string fmt_ms(double seconds, int decimals) {
  return fmt_double(to_ms(seconds), decimals);
}

std::string fmt_percent(double ratio, int decimals) {
  return fmt_double(ratio * 100.0, decimals);
}

}  // namespace l3
