#include "l3/common/logging.h"

#include <iostream>

namespace l3 {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (level < level_ || level_ == LogLevel::kOff) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << component
            << ": " << msg << '\n';
}

}  // namespace l3
