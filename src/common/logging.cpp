#include "l3/common/logging.h"

#include <cstdio>

namespace l3 {

namespace {
thread_local LogContext* tls_bound = nullptr;
}  // namespace

LogContext& LogContext::current() {
  return tls_bound != nullptr ? *tls_bound : process_default();
}

LogContext& LogContext::process_default() {
  static LogContext context;
  return context;
}

ScopedLogBind::ScopedLogBind(LogContext& context) : previous_(tls_bound) {
  tls_bound = &context;
}

ScopedLogBind::~ScopedLogBind() { tls_bound = previous_; }

void LogContext::log(LogLevel level, std::string_view component,
                     std::string_view msg) {
  if (!enabled(level)) return;
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = msg;
  if (time_provider_) {
    record.time = time_provider_();
    record.has_time = true;
  }
  if (sink_) {
    sink_(record);
    return;
  }
  // Format the whole line first and emit it with one write, so lines from
  // contexts on other threads never interleave mid-line.
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::string line;
  line.reserve(component.size() + msg.size() + 32);
  line += '[';
  line += kNames[static_cast<int>(level)];
  line += "] ";
  if (record.has_time) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[t=%.6fs] ", record.time);
    line += buf;
  }
  line += component;
  line += ": ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace l3
