#include "l3/common/logging.h"

#include <cstdio>
#include <iostream>

namespace l3 {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (level < level_ || level_ == LogLevel::kOff) return;
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = msg;
  if (time_provider_) {
    record.time = time_provider_();
    record.has_time = true;
  }
  if (sink_) {
    sink_(record);
    return;
  }
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] ";
  if (record.has_time) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[t=%.6fs] ", record.time);
    std::cerr << buf;
  }
  std::cerr << component << ": " << msg << '\n';
}

}  // namespace l3
