#include "l3/trace/export.h"

#include "l3/obs/export.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace l3::trace {
namespace {

/// Microseconds, the unit of the Chrome trace-event `ts`/`dur` fields.
double to_us(SimTime seconds) { return seconds * 1e6; }

/// Prints a double without locale surprises and without exponent notation
/// blowing up trace viewers (3 decimals of a microsecond = nanoseconds).
std::string fmt_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

void write_event_prefix(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(const std::deque<TraceRecord>& traces,
                        std::ostream& os) {
  write_chrome_trace(traces, std::span<const FaultMarker>{}, os);
}

void write_chrome_trace(const std::deque<TraceRecord>& traces,
                        std::span<const FaultMarker> markers,
                        std::ostream& os) {
  write_chrome_trace(traces, markers, nullptr, os);
}

void write_chrome_trace(const std::deque<TraceRecord>& traces,
                        std::span<const FaultMarker> markers,
                        const obs::Snapshot* snapshot, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  std::size_t pid = 0;
  for (const TraceRecord& trace : traces) {
    // Process metadata: one process per trace, named after the root.
    write_event_prefix(os, first);
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"trace " << trace.trace_id << ": "
       << json_escape(trace.root_name) << " ("
       << fmt_us(to_us(trace.latency) / 1000.0) << " ms, "
       << to_string(trace.status) << ")\"}}";
    std::size_t tid = 0;
    for (const Span& span : trace.spans) {
      write_event_prefix(os, first);
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << json_escape(span.name) << "\"}}";
      write_event_prefix(os, first);
      os << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
         << to_string(span.kind) << "\",\"ph\":\"X\",\"ts\":"
         << fmt_us(to_us(span.start)) << ",\"dur\":"
         << fmt_us(to_us(span.duration())) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"trace_id\":" << trace.trace_id
         << ",\"span_id\":" << span.span_id << ",\"parent_id\":"
         << span.parent_id << ",\"cluster\":\"" << json_escape(span.cluster)
         << "\",\"service\":\"" << json_escape(span.service)
         << "\",\"status\":\"" << to_string(span.status) << "\""
         << (span.truncated ? ",\"truncated\":true" : "") << "}}";
      ++tid;
    }
    ++pid;
  }
  if (!markers.empty()) {
    // Fault transitions as instant events with global scope ("s":"g"), so
    // viewers draw a full-height line at each fault boundary.
    write_event_prefix(os, first);
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"faults\"}}";
    for (const FaultMarker& marker : markers) {
      write_event_prefix(os, first);
      os << "{\"name\":\"" << json_escape(marker.name) << "\",\"cat\":\""
         << "fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":"
         << fmt_us(to_us(marker.time)) << ",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"phase\":\"" << json_escape(marker.phase)
         << "\"}}";
    }
    ++pid;
  }
  if (snapshot != nullptr) {
    obs::write_chrome_fragment(*snapshot, pid, first, os);
  }
  os << "\n]}\n";
}

std::string chrome_trace_json(const Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(tracer.traces(), os);
  return os.str();
}

}  // namespace l3::trace
