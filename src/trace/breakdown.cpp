#include "l3/trace/breakdown.h"

#include "l3/common/stats.h"
#include "l3/common/table.h"

#include <algorithm>
#include <ostream>

namespace l3::trace {
namespace {

constexpr double kEps = 1e-12;

/// Children indices per span index, each list sorted by span end descending
/// (the order the critical-path walk consumes them in).
std::vector<std::vector<std::size_t>> children_of(const TraceRecord& trace) {
  std::vector<std::vector<std::size_t>> children(trace.spans.size());
  for (std::size_t i = 1; i < trace.spans.size(); ++i) {
    const std::uint64_t parent = trace.spans[i].parent_id;
    for (std::size_t j = 0; j < trace.spans.size(); ++j) {
      if (trace.spans[j].span_id == parent) {
        children[j].push_back(i);
        break;
      }
    }
  }
  for (auto& list : children) {
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      return trace.spans[a].end > trace.spans[b].end;
    });
  }
  return children;
}

SimDuration& bucket_of(TraceAttribution& attribution, SpanKind kind) {
  switch (kind) {
    case SpanKind::kWan: return attribution.wan;
    case SpanKind::kQueue: return attribution.queue;
    case SpanKind::kService: return attribution.service;
    case SpanKind::kProxy: return attribution.proxy;
    case SpanKind::kClient: return attribution.client;
    case SpanKind::kInternal: break;
  }
  return attribution.other;
}

/// Walks the critical path under span `idx`: repeatedly yields to the child
/// that finishes last before the current cursor, attributing the uncovered
/// gaps to the span itself. Appends visited indices to `path` (root first)
/// and self-times to `attribution` (when non-null).
void walk(const TraceRecord& trace,
          const std::vector<std::vector<std::size_t>>& children,
          std::size_t idx, std::vector<std::size_t>* path,
          TraceAttribution* attribution) {
  const Span& span = trace.spans[idx];
  if (path != nullptr) path->push_back(idx);
  SimTime cursor = span.end;
  SimDuration self = 0.0;
  for (const std::size_t child_idx : children[idx]) {
    const Span& child = trace.spans[child_idx];
    // A child ending past the cursor overlaps a later (already critical)
    // sibling; a child entirely before the span start is out of window.
    if (child.end > cursor + kEps || child.end <= span.start + kEps) continue;
    self += std::max(0.0, cursor - child.end);
    walk(trace, children, child_idx, path, attribution);
    cursor = std::min(cursor, std::max(span.start, child.start));
    if (cursor <= span.start + kEps) break;
  }
  self += std::max(0.0, cursor - span.start);
  if (attribution != nullptr) bucket_of(*attribution, span.kind) += self;
}

}  // namespace

std::vector<std::size_t> critical_path(const TraceRecord& trace) {
  std::vector<std::size_t> path;
  if (trace.spans.empty()) return path;
  const auto children = children_of(trace);
  walk(trace, children, 0, &path, nullptr);
  return path;
}

TraceAttribution attribute_critical_path(const TraceRecord& trace) {
  TraceAttribution attribution;
  if (trace.spans.empty()) return attribution;
  attribution.total = trace.latency;
  const auto children = children_of(trace);
  walk(trace, children, 0, nullptr, &attribution);
  return attribution;
}

BreakdownSummary summarize_breakdown(const std::deque<TraceRecord>& traces) {
  BreakdownSummary summary;
  summary.trace_count = traces.size();
  const char* names[] = {"wan",   "queue",  "service", "proxy",
                         "client", "other", "total"};
  std::vector<std::vector<double>> samples(7);
  for (auto& s : samples) s.reserve(traces.size());
  for (const TraceRecord& trace : traces) {
    const TraceAttribution a = attribute_critical_path(trace);
    const double values[] = {a.wan,   a.queue,  a.service, a.proxy,
                             a.client, a.other, a.total};
    for (std::size_t i = 0; i < 7; ++i) samples[i].push_back(values[i]);
  }
  double grand_total = 0.0;
  for (const double v : samples[6]) grand_total += v;
  for (std::size_t i = 0; i < 7; ++i) {
    BreakdownRow row;
    row.category = names[i];
    row.mean = mean(samples[i]);
    row.p50 = percentile(samples[i], 0.50);
    row.p90 = percentile(samples[i], 0.90);
    row.p99 = percentile(samples[i], 0.99);
    double category_total = 0.0;
    for (const double v : samples[i]) category_total += v;
    row.share = grand_total > 0.0 ? category_total / grand_total : 0.0;
    summary.rows.push_back(std::move(row));
  }
  return summary;
}

void print_breakdown(const BreakdownSummary& summary, std::ostream& os) {
  os << "latency breakdown over " << summary.trace_count
     << " trace(s), critical-path self-time per category:\n";
  Table table({"category", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "share"});
  for (const BreakdownRow& row : summary.rows) {
    table.add_row({row.category, fmt_ms(row.mean, 3), fmt_ms(row.p50, 3),
                   fmt_ms(row.p90, 3), fmt_ms(row.p99, 3),
                   fmt_percent(row.share)});
  }
  table.print(os);
}

}  // namespace l3::trace
