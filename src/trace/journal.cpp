#include "l3/trace/journal.h"

#include "l3/common/assert.h"
#include "l3/trace/export.h"

#include <cstdio>
#include <ostream>
#include <utility>

namespace l3::trace {
namespace {

/// Fixed-notation double for JSON (no locale, no exponent surprises).
std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

DecisionJournal::DecisionJournal(std::size_t capacity) : capacity_(capacity) {
  L3_EXPECTS(capacity >= 1);
}

void DecisionJournal::record(DecisionEvent event) {
  ++recorded_;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++evicted_;
  }
}

const DecisionEvent* DecisionJournal::latest(const std::string& service) const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->service == service) return &*it;
  }
  return nullptr;
}

void DecisionJournal::write_json(std::ostream& os) const {
  os << "[\n";
  bool first_event = true;
  for (const DecisionEvent& event : events_) {
    if (!first_event) os << ",\n";
    first_event = false;
    os << "{\"time\":" << fmt_num(event.time) << ",\"tick\":" << event.tick
       << ",\"source\":\"" << json_escape(event.source_cluster)
       << "\",\"service\":\"" << json_escape(event.service)
       << "\",\"policy\":\"" << json_escape(event.policy)
       << "\",\"applied\":" << (event.applied ? "true" : "false")
       << ",\"total_rps_ewma\":" << fmt_num(event.total_rps_ewma)
       << ",\"total_rps_last\":" << fmt_num(event.total_rps_last)
       << ",\"backends\":[";
    bool first_backend = true;
    for (const BackendDecision& backend : event.backends) {
      if (!first_backend) os << ",";
      first_backend = false;
      os << "{\"dst\":\"" << json_escape(backend.dst_cluster)
         << "\",\"latency_p99\":" << fmt_num(backend.latency_p99)
         << ",\"success_rate\":" << fmt_num(backend.success_rate)
         << ",\"rps\":" << fmt_num(backend.rps)
         << ",\"inflight\":" << fmt_num(backend.inflight)
         << ",\"raw_weight\":" << fmt_num(backend.raw_weight)
         << ",\"rate_controlled_weight\":"
         << fmt_num(backend.rate_controlled_weight)
         << ",\"applied_weight\":" << backend.applied_weight << "}";
    }
    os << "]}";
  }
  os << "\n]\n";
}

}  // namespace l3::trace
