#include "l3/trace/tracer.h"

#include "l3/common/assert.h"

#include <utility>

namespace l3::trace {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClient: return "client";
    case SpanKind::kProxy: return "proxy";
    case SpanKind::kWan: return "wan";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kService: return "service";
    case SpanKind::kInternal: return "internal";
  }
  return "unknown";
}

const char* to_string(SpanStatus status) {
  switch (status) {
    case SpanStatus::kUnset: return "unset";
    case SpanStatus::kOk: return "ok";
    case SpanStatus::kError: return "error";
    case SpanStatus::kTimeout: return "timeout";
  }
  return "unknown";
}

Tracer::Tracer(sim::Simulator& sim, TracerConfig config, std::uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {
  L3_EXPECTS(config.ratio > 0.0 && config.ratio <= 1.0);
  L3_EXPECTS(config.max_traces >= 1);
  L3_EXPECTS(config.max_spans_per_trace >= 1);
}

Tracer::Pending* Tracer::find_pending(std::uint64_t trace_id) {
  const auto it = pending_.find(trace_id);
  return it == pending_.end() ? nullptr : &it->second;
}

Span* Tracer::append_span(Pending& pending, SpanContext parent, SpanKind kind,
                          std::string_view name, std::string_view cluster,
                          std::string_view service, SimTime start) {
  if (pending.record.spans.size() >= config_.max_spans_per_trace) {
    ++dropped_spans_;
    return nullptr;
  }
  Span span;
  span.span_id = next_span_id_++;
  span.parent_id = parent.span_id;
  span.kind = kind;
  span.name.assign(name);
  span.cluster.assign(cluster);
  span.service.assign(service);
  span.start = start;
  pending.record.spans.push_back(std::move(span));
  return &pending.record.spans.back();
}

SpanContext Tracer::start_trace(std::string_view name,
                                std::string_view cluster,
                                std::string_view service) {
  if (config_.sampling == SamplingMode::kOff) return SpanContext{};
  ++started_;
  if (config_.sampling == SamplingMode::kRatio && config_.ratio < 1.0 &&
      rng_.uniform() >= config_.ratio) {
    ++sampled_out_;
    return SpanContext{};
  }
  const std::uint64_t trace_id = next_trace_id_++;
  Pending& pending = pending_[trace_id];
  pending.record.trace_id = trace_id;
  pending.record.root_name.assign(name);
  pending.record.start = sim_.now();
  Span* root = append_span(pending, SpanContext{}, SpanKind::kClient, name,
                           cluster, service, sim_.now());
  L3_ASSERT(root != nullptr);  // max_spans_per_trace >= 1
  pending.open = 1;
  return SpanContext{trace_id, root->span_id};
}

SpanContext Tracer::start_span(SpanContext parent, SpanKind kind,
                               std::string_view name, std::string_view cluster,
                               std::string_view service) {
  if (!parent.sampled()) return SpanContext{};
  Pending* pending = find_pending(parent.trace_id);
  if (pending == nullptr) return SpanContext{};  // trace already finalised
  Span* span = append_span(*pending, parent, kind, name, cluster, service,
                           sim_.now());
  if (span == nullptr) return SpanContext{};
  ++pending->open;
  return SpanContext{parent.trace_id, span->span_id};
}

void Tracer::add_span(SpanContext parent, SpanKind kind, std::string_view name,
                      std::string_view cluster, std::string_view service,
                      SimTime start, SimTime end, SpanStatus status) {
  if (!parent.sampled()) return;
  Pending* pending = find_pending(parent.trace_id);
  if (pending == nullptr) return;
  Span* span = append_span(*pending, parent, kind, name, cluster, service,
                           start);
  if (span == nullptr) return;
  span->end = end;
  span->status = status;
}

void Tracer::end_span(SpanContext ctx, SpanStatus status) {
  if (!ctx.sampled()) return;
  Pending* pending = find_pending(ctx.trace_id);
  if (pending == nullptr) return;  // finalised while this span was open
  // Recently opened spans live near the back; traces are small.
  auto& spans = pending->record.spans;
  for (std::size_t i = spans.size(); i-- > 0;) {
    if (spans[i].span_id != ctx.span_id) continue;
    if (spans[i].status != SpanStatus::kUnset || spans[i].end != 0.0) return;
    spans[i].end = sim_.now();
    spans[i].status = status;
    L3_ASSERT(pending->open > 0);
    --pending->open;
    return;
  }
}

void Tracer::end_trace(SpanContext root, SpanStatus status) {
  if (!root.sampled()) return;
  const auto it = pending_.find(root.trace_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  TraceRecord& record = pending.record;

  Span& root_span = record.spans.front();
  L3_ASSERT(root_span.span_id == root.span_id);
  root_span.end = sim_.now();
  root_span.status = status;

  record.end = root_span.end;
  record.latency = root_span.end - root_span.start;
  record.status = status;

  // Force-close whatever is still open (server work outliving a client
  // timeout): truncated at the trace end so span trees stay well-formed.
  if (pending.open > 1) {
    for (Span& span : record.spans) {
      if (span.status == SpanStatus::kUnset && span.end == 0.0 &&
          span.span_id != root_span.span_id) {
        span.end = record.end;
        span.truncated = true;
      }
    }
  }

  const bool keep = config_.sampling != SamplingMode::kTail ||
                    record.latency >= config_.tail_threshold;
  if (keep) {
    ++kept_;
    completed_.push_back(std::move(record));
    while (completed_.size() > config_.max_traces) {
      completed_.pop_front();
      ++evicted_;
    }
  } else {
    ++dropped_fast_;
  }
  pending_.erase(it);
}

}  // namespace l3::trace
