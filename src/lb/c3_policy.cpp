#include "l3/lb/c3_policy.h"

#include "l3/common/assert.h"
#include "l3/lb/weighting.h"

#include <algorithm>
#include <cmath>

namespace l3::lb {

std::vector<std::uint64_t> C3Policy::compute(const PolicyInput& input) {
  L3_EXPECTS(config_.queue_exponent >= 1.0);
  std::vector<double> weights;
  weights.reserve(input.signals.size());
  for (const BackendSignals& s : input.signals) {
    // C3 ranks on the EWMA of MEAN response time (its R̄); tail-percentile
    // awareness is L3's contribution. Fall back to P99 while no mean
    // samples exist.
    const double latency = std::max(
        s.latency_mean > 0.0 ? s.latency_mean : s.latency_p99,
        config_.min_latency);
    const double q_hat = 1.0 + std::max(0.0, s.inflight);
    const double score = std::pow(q_hat, config_.queue_exponent) * latency;
    weights.push_back(config_.scale / score);
  }
  return finalize_weights(weights, config_.min_share);
}

}  // namespace l3::lb
