#include "l3/lb/cost_aware.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <cmath>

namespace l3::lb {

void TransferCostMatrix::set(mesh::ClusterId from, mesh::ClusterId to,
                             double cost) {
  L3_EXPECTS(from < n_ && to < n_);
  L3_EXPECTS(cost >= 0.0);
  costs_[from * n_ + to] = cost;
}

double TransferCostMatrix::get(mesh::ClusterId from, mesh::ClusterId to) const {
  L3_EXPECTS(from < n_ && to < n_);
  return costs_[from * n_ + to];
}

CostAwareAdjuster::CostAwareAdjuster(
    std::unique_ptr<LoadBalancingPolicy> inner, TransferCostMatrix costs,
    CostAwareConfig config)
    : inner_(std::move(inner)), costs_(std::move(costs)), config_(config) {
  L3_EXPECTS(inner_ != nullptr);
  L3_EXPECTS(config.lambda >= 0.0);
}

std::vector<std::uint64_t> CostAwareAdjuster::compute(
    const PolicyInput& input) {
  std::vector<std::uint64_t> weights = inner_->compute(input);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double cost =
        costs_.get(input.source, input.backends[i].cluster);
    const double adjusted = static_cast<double>(weights[i]) /
                            (1.0 + config_.lambda * cost);
    weights[i] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(adjusted)));
  }
  return weights;
}

}  // namespace l3::lb
