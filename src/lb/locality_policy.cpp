#include "l3/lb/locality_policy.h"

namespace l3::lb {

std::vector<std::uint64_t> LocalityFailoverPolicy::compute(
    const PolicyInput& input) {
  std::vector<std::uint64_t> weights(input.backends.size(),
                                     config_.standby_weight);
  // Find the local backend and check its health.
  std::size_t local = input.backends.size();
  for (std::size_t i = 0; i < input.backends.size(); ++i) {
    if (input.backends[i].cluster == input.source) {
      local = i;
      break;
    }
  }
  const bool local_healthy =
      local < input.backends.size() &&
      input.signals[local].success_rate >= config_.failover_success_threshold;
  if (local_healthy) {
    weights[local] = config_.active_weight;
    return weights;
  }
  // Failover: spread across the healthy remote backends (equal weights);
  // if none is healthy, spread across everything.
  bool any = false;
  for (std::size_t i = 0; i < input.backends.size(); ++i) {
    if (i == local) continue;
    if (input.signals[i].success_rate >= config_.failover_success_threshold) {
      weights[i] = config_.active_weight;
      any = true;
    }
  }
  if (!any) {
    for (auto& w : weights) w = config_.active_weight;
  }
  return weights;
}

}  // namespace l3::lb
