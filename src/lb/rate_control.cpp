#include "l3/lb/rate_control.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <cmath>

namespace l3::lb {

double relative_change(double rps_ewma, double rps_last) {
  if (rps_ewma <= 0.0) return 0.0;
  return (rps_last - rps_ewma) / rps_ewma;
}

double rate_control_weight(double w_b, double w_mu, double c) {
  L3_EXPECTS(std::isfinite(w_b) && std::isfinite(w_mu) && std::isfinite(c));
  double w = w_b;
  if (c > 0.0) {
    // Eq. 5: converge toward w_µ as c grows.
    const double damp = std::pow(1.0 + c * c, 1.5);
    w = w_mu - w_mu / damp + w_b / damp;
  } else if (c < 0.0) {
    if (w_b <= w_mu) {
      w = w_b / std::pow(1.0 + 2.0 * c * c, 1.5);
    } else {
      w = 2.0 * w_b - w_mu - (w_b - w_mu) / std::pow(1.0 + 3.0 * c * c, 1.5);
    }
  }
  return std::max(w, 1.0);  // Algorithm 2 lines 13–15
}

std::vector<double> rate_control(std::span<const double> weights,
                                 double rps_ewma, double rps_last) {
  const double c = relative_change(rps_ewma, rps_last);
  double w_mu = 0.0;
  for (double w : weights) w_mu += w;
  if (!weights.empty()) w_mu /= static_cast<double>(weights.size());

  std::vector<double> out;
  out.reserve(weights.size());
  for (double w_b : weights) {
    out.push_back(rate_control_weight(w_b, w_mu, c));
  }
  return out;
}

}  // namespace l3::lb
