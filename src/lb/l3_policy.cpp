#include "l3/lb/l3_policy.h"

#include "l3/lb/rate_control.h"

namespace l3::lb {

std::vector<std::uint64_t> L3Policy::compute(const PolicyInput& input) {
  PolicyExplain explain;
  return compute_explained(input, explain);
}

std::vector<std::uint64_t> L3Policy::compute_explained(const PolicyInput& input,
                                                       PolicyExplain& explain) {
  std::vector<double> weights = assign_weights(input.signals, config_.weighting);
  explain.raw_weights = weights;
  if (config_.rate_control_enabled) {
    weights = rate_control(weights, input.total_rps_ewma, input.total_rps_last);
  }
  explain.rate_controlled = weights;
  return finalize_weights(weights, config_.min_share);
}

}  // namespace l3::lb
