#include "l3/lb/l3_policy.h"

#include "l3/lb/rate_control.h"

namespace l3::lb {

std::vector<std::uint64_t> L3Policy::compute(const PolicyInput& input) {
  std::vector<double> weights = assign_weights(input.signals, config_.weighting);
  if (config_.rate_control_enabled) {
    weights = rate_control(weights, input.total_rps_ewma, input.total_rps_last);
  }
  return finalize_weights(weights, config_.min_share);
}

}  // namespace l3::lb
