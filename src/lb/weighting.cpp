#include "l3/lb/weighting.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <cmath>

namespace l3::lb {

double estimated_latency(double latency_success, double success_rate,
                         double penalty) {
  L3_EXPECTS(success_rate >= 0.0 && success_rate <= 1.0);
  L3_EXPECTS(penalty >= 0.0);
  if (success_rate == 0.0) {
    // Algorithm 1 line 11: prevent division by zero; the backend is failing
    // everything, so the success latency alone already makes it last choice
    // (combined with the min-weight floor it still gets probe traffic).
    return latency_success;
  }
  // Eq. 3: 1/R_s is the expected number of tries until a success
  // (geometric distribution); each extra try costs the client P.
  return latency_success + penalty * (1.0 / success_rate - 1.0);
}

std::vector<double> assign_weights(std::span<const BackendSignals> signals,
                                   const WeightingConfig& config) {
  L3_EXPECTS(config.penalty >= 0.0);
  L3_EXPECTS(config.scale > 0.0);
  L3_EXPECTS(config.min_weight >= 0.0);
  L3_EXPECTS(config.min_latency > 0.0);
  std::vector<double> weights;
  weights.reserve(signals.size());
  for (const BackendSignals& s : signals) {
    // R_i — normalised in-flight requests (Algorithm 1 lines 6–9).
    const double r_i = s.rps > 0.0 ? std::max(0.0, s.inflight) / s.rps : 0.0;
    const double l_s = std::max(s.latency_p99, config.min_latency);
    const double l_est =
        std::max(estimated_latency(l_s, s.success_rate, config.penalty),
                 config.min_latency);
    // Eq. 4 with configurable exponent (paper: 2).
    double w = config.scale /
               (std::pow(r_i + 1.0, config.inflight_exponent) * l_est);
    w = std::max(w, config.min_weight);  // Algorithm 1 lines 16–18
    weights.push_back(w);
  }
  return weights;
}

std::vector<std::uint64_t> finalize_weights(std::span<const double> weights,
                                            double min_share) {
  L3_EXPECTS(min_share >= 0.0 && min_share < 1.0);
  double total = 0.0;
  for (double w : weights) {
    L3_EXPECTS(std::isfinite(w) && w >= 0.0);
    total += w;
  }
  std::vector<std::uint64_t> out;
  out.reserve(weights.size());
  const double floor_value = std::max(1.0, total * min_share);
  for (double w : weights) {
    out.push_back(static_cast<std::uint64_t>(
        std::llround(std::max(w, floor_value))));
  }
  return out;
}

double weight_skew(std::span<const double> weights) {
  if (weights.empty()) return 1.0;
  double total = 0.0;
  double max_w = 0.0;
  for (const double w : weights) {
    L3_EXPECTS(std::isfinite(w) && w >= 0.0);
    total += w;
    max_w = std::max(max_w, w);
  }
  if (total <= 0.0) return 1.0;
  return max_w * static_cast<double>(weights.size()) / total;
}

}  // namespace l3::lb
