#include "l3/mesh/outlier.h"

#include <cmath>
#include <limits>

namespace l3::mesh {

OutlierDetector::OutlierDetector(std::size_t backend_count,
                                 OutlierDetectionConfig config)
    : config_(config), backends_(backend_count) {
  L3_EXPECTS(backend_count >= 1);
  L3_EXPECTS(config.failure_threshold > 0.0 && config.failure_threshold <= 1.0);
  L3_EXPECTS(config.window > 0.0);
  L3_EXPECTS(config.ejection_duration > 0.0);
  L3_EXPECTS(config.max_ejected_fraction >= 0.0 &&
             config.max_ejected_fraction < 1.0 + 1e-9);
}

void OutlierDetector::roll_window(BackendState& state, SimTime now) const {
  if (now - state.window_start >= config_.window) {
    state.window_start = now;
    state.successes = 0;
    state.failures = 0;
  }
}

void OutlierDetector::record(std::size_t backend, bool success, SimTime now) {
  L3_EXPECTS(backend < backends_.size());
  if (!config_.enabled) return;
  BackendState& state = backends_[backend];
  roll_window(state, now);
  if (success) {
    state.successes += 1;
  } else {
    state.failures += 1;
    maybe_eject(backend, now);
  }
}

void OutlierDetector::maybe_eject(std::size_t backend, SimTime now) {
  BackendState& state = backends_[backend];
  if (state.ejected_until > now) return;  // already out
  const std::uint32_t total = state.successes + state.failures;
  if (total < config_.min_requests) return;
  const double ratio =
      static_cast<double>(state.failures) / static_cast<double>(total);
  if (ratio < config_.failure_threshold) return;
  // Respect the ejection budget: never isolate more than the configured
  // fraction of the backend set. A positive fraction always admits at least
  // one ejection — flooring alone silently disables the detector on small
  // sets (5 backends × 0.15 → 0, so nothing could ever be ejected).
  auto budget = static_cast<std::size_t>(std::floor(
      config_.max_ejected_fraction * static_cast<double>(backends_.size())));
  if (budget == 0 && config_.max_ejected_fraction > 0.0) budget = 1;
  if (ejected_count(now) >= budget) return;
  state.ejected_until = now + config_.ejection_duration;
  state.window_start = now;
  state.successes = 0;
  state.failures = 0;
  ++ejections_;
  ++version_;
}

SimTime OutlierDetector::next_transition(SimTime now) const {
  SimTime next = std::numeric_limits<SimTime>::infinity();
  if (!config_.enabled) return next;
  for (const auto& state : backends_) {
    if (state.ejected_until > now && state.ejected_until < next) {
      next = state.ejected_until;
    }
  }
  return next;
}

bool OutlierDetector::is_ejected(std::size_t backend, SimTime now) const {
  L3_EXPECTS(backend < backends_.size());
  return config_.enabled && backends_[backend].ejected_until > now;
}

std::size_t OutlierDetector::ejected_count(SimTime now) const {
  std::size_t count = 0;
  for (const auto& state : backends_) {
    if (state.ejected_until > now) ++count;
  }
  return count;
}

}  // namespace l3::mesh
