#include "l3/mesh/wan.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace l3::mesh {

void WanModel::resize(std::size_t n) {
  std::vector<Link> next(n * n);
  std::vector<SimDuration> next_floors(
      n * n, std::numeric_limits<SimDuration>::infinity());
  for (std::size_t i = 0; i < std::min(n_, n); ++i) {
    for (std::size_t j = 0; j < std::min(n_, n); ++j) {
      next[i * n + j] = links_[i * n_ + j];
      next_floors[i * n + j] = floors_[i * n_ + j];
    }
  }
  links_ = std::move(next);
  floors_ = std::move(next_floors);
  n_ = n;
}

void WanModel::set_link(ClusterId from, ClusterId to, Link link) {
  L3_EXPECTS(from < n_ && to < n_);
  L3_EXPECTS(!frozen_);
  L3_EXPECTS(link.base >= 0.0 && link.jitter_frac >= 0.0);
  L3_EXPECTS(link.flap_amp >= 0.0 && link.flap_period > 0.0);
  links_[from * n_ + to] = link;
  floors_[from * n_ + to] = link.base;
}

void WanModel::update_link(ClusterId from, ClusterId to, Link link) {
  L3_EXPECTS(from < n_ && to < n_);
  L3_EXPECTS(link.base >= 0.0 && link.jitter_frac >= 0.0);
  L3_EXPECTS(link.flap_amp >= 0.0 && link.flap_period > 0.0);
  // The conservative-lookahead invariant: a mid-run mutation may add delay
  // but never undercut the floor registered at topology-setup time.
  L3_EXPECTS(link.base >= floors_[from * n_ + to]);
  links_[from * n_ + to] = link;
  ++version_;
}

void WanModel::set_local_delay(SimDuration base, double jitter_frac) {
  L3_EXPECTS(!frozen_);
  for (std::size_t i = 0; i < n_; ++i) {
    Link l;
    l.base = base;
    l.jitter_frac = jitter_frac;
    links_[i * n_ + i] = l;
    floors_[i * n_ + i] = base;
  }
}

const WanModel::Link& WanModel::link(ClusterId from, ClusterId to) const {
  L3_EXPECTS(from < n_ && to < n_);
  return links_[from * n_ + to];
}

void WanModel::add_disturbance(Disturbance d) {
  L3_EXPECTS(d.from < n_ && d.to < n_);
  L3_EXPECTS(d.end > d.start && d.extra >= 0.0);
  disturbances_.push_back(d);
  ++version_;
}

void WanModel::add_partition(Partition p) {
  L3_EXPECTS(p.a < n_ && p.b < n_);
  L3_EXPECTS(p.end > p.start);
  partitions_.push_back(p);
  ++version_;
}

bool WanModel::is_partitioned(ClusterId from, ClusterId to,
                              SimTime now) const {
  for (const auto& p : partitions_) {
    const bool matches = (p.a == from && p.b == to) ||
                         (p.a == to && p.b == from);
    if (matches && now >= p.start && now < p.end) return true;
  }
  return false;
}

SimTime WanModel::next_partition_transition(SimTime now) const {
  SimTime next = std::numeric_limits<SimTime>::infinity();
  for (const auto& p : partitions_) {
    if (p.start > now) next = std::min(next, p.start);
    if (p.end > now) next = std::min(next, p.end);
  }
  return next;
}

double WanModel::flap_unit(ClusterId from, ClusterId to, std::uint64_t epoch) {
  // splitmix64-style hash of (from, to, epoch) → uniform in [0, 1].
  std::uint64_t x = (static_cast<std::uint64_t>(from) << 40) ^
                    (static_cast<std::uint64_t>(to) << 20) ^ epoch;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

SimDuration WanModel::sample(ClusterId from, ClusterId to, SimTime now,
                             SplitRng& rng) const {
  const Link& l = link(from, to);
  double delay = l.base;
  if (l.jitter_frac > 0.0 && l.base > 0.0) {
    delay += l.base * l.jitter_frac * std::abs(rng.normal(0.0, 1.0));
  }
  if (l.flap_amp > 0.0) {
    const auto epoch = static_cast<std::uint64_t>(now / l.flap_period);
    delay += l.flap_amp * flap_unit(from, to, epoch);
  }
  for (const auto& d : disturbances_) {
    if (d.from == from && d.to == to && now >= d.start && now < d.end) {
      delay += d.extra;
    }
  }
  return delay;
}

}  // namespace l3::mesh
