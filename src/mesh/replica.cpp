#include "l3/mesh/replica.h"

#include <utility>

namespace l3::mesh {

bool Replica::submit(ReplicaJob job) {
  L3_EXPECTS(job != nullptr);
  if (active_ < concurrency_) {
    run(std::move(job));
    return true;
  }
  if (queue_.size() < queue_capacity_) {
    queue_.push_back(std::move(job));
    return true;
  }
  ++rejected_;
  return false;
}

void Replica::run(ReplicaJob job) {
  ++active_;
  job(ReleaseToken(this));
}

void Replica::release_one() {
  L3_ASSERT(active_ > 0);
  --active_;
  ++completed_;
  if (!queue_.empty() && active_ < concurrency_) {
    ReplicaJob next = std::move(queue_.front());
    queue_.pop_front();
    run(std::move(next));
  }
}

}  // namespace l3::mesh
