#include "l3/mesh/replica.h"

#include <utility>

namespace l3::mesh {

bool Replica::submit(ReplicaJob job) {
  L3_EXPECTS(job != nullptr);
  if (crashed_) {
    ++rejected_;
    return false;
  }
  if (active_ < concurrency_) {
    run(std::move(job));
    return true;
  }
  if (queue_.size() < queue_capacity_) {
    queue_.push_back(std::move(job));
    return true;
  }
  ++rejected_;
  return false;
}

void Replica::run(ReplicaJob job) {
  ++active_;
  job(ReleaseToken(this));
}

void Replica::release_one() {
  L3_ASSERT(active_ > 0);
  --active_;
  // Tokens released while crashed come from the crash path failing the
  // in-flight calls: those are not completions, and the (already emptied)
  // queue must not be pumped.
  if (crashed_) return;
  ++completed_;
  if (!queue_.empty() && active_ < concurrency_) {
    ReplicaJob next = std::move(queue_.front());
    queue_.pop_front();
    run(std::move(next));
  }
}

std::size_t Replica::crash() {
  crashed_ = true;
  const std::size_t dropped = queue_.size();
  queue_.clear();
  return dropped;
}

}  // namespace l3::mesh
