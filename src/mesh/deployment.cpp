#include "l3/mesh/deployment.h"

#include "l3/common/assert.h"
#include "l3/common/lognormal.h"
#include "l3/mesh/mesh.h"
#include "l3/trace/tracer.h"

#include <limits>
#include <utility>

namespace l3::mesh {

FixedLatencyBehavior::FixedLatencyBehavior(SimDuration median, SimDuration p99,
                                           double success)
    : success_(success) {
  L3_EXPECTS(median > 0.0 && p99 > median);
  L3_EXPECTS(success >= 0.0 && success <= 1.0);
  const LogNormalParams p = fit_lognormal(median, p99, 0.99);
  mu_ = p.mu;
  sigma_ = p.sigma;
}

void FixedLatencyBehavior::invoke(const BehaviorContext& ctx, OutcomeFn done) {
  const SimDuration exec = ctx.rng.lognormal(mu_, sigma_);
  const bool ok = ctx.rng.bernoulli(success_);
  ctx.sim.schedule_after(
      exec, [done = std::move(done), ok]() mutable { done(Outcome{ok}); });
}

ServiceDeployment::ServiceDeployment(std::string service, ClusterId cluster,
                                     DeploymentConfig config,
                                     std::unique_ptr<ServiceBehavior> behavior,
                                     sim::Simulator& sim, Mesh& mesh,
                                     SplitRng rng)
    : service_(std::move(service)),
      cluster_(cluster),
      cluster_name_(mesh.cluster_names().at(cluster)),
      server_span_name_("server:" + service_),
      config_(config),
      behavior_(std::move(behavior)),
      sim_(sim),
      mesh_(mesh),
      rng_(rng),
      tracer_(mesh.tracer()) {
  L3_EXPECTS(config.replicas >= 1);
  L3_EXPECTS(behavior_ != nullptr);
  replicas_.reserve(config.replicas);
  for (std::size_t i = 0; i < config.replicas; ++i) {
    replicas_.push_back(
        std::make_unique<Replica>(config.concurrency, config.queue_capacity));
  }
}

void ServiceDeployment::handle(int depth, trace::SpanContext parent,
                               OutcomeFn done) {
  L3_EXPECTS(done != nullptr);
  // Server-side span covering queue wait + behavior execution (including
  // downstream calls). Opened only for sampled requests.
  trace::SpanContext server{};
  if (tracer_ != nullptr && parent.sampled()) {
    server = tracer_->start_span(parent, trace::SpanKind::kService,
                                 server_span_name_, cluster_name_,
                                 service_);
  }
  // A deployment whose replicas all crashed rejects like a down one: the
  // request reached the cluster but nothing can serve it. The crashed
  // count is maintained by crash/restart_replica, so this check is two
  // loads rather than a walk over the replica set.
  const std::size_t n = replicas_.size();
  if (down_ || crashed_count_ == n) {
    ++rejected_;
    if (server.sampled()) {
      tracer_->end_span(server, trace::SpanStatus::kError);
    }
    done(Outcome{.success = false, .rejected = true});
    return;
  }
  // Least-loaded live replica, rotating tie-break so equal replicas share
  // evenly. Crashed replicas are skipped — in-cluster balancing notices a
  // dead pod immediately, unlike the cross-cluster health probe. The
  // wrap-around is a compare, not a modulo: integer division twice per
  // request was measurable at millions of requests per second.
  std::size_t best = 0;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  std::size_t idx = rr_cursor_;
  for (std::size_t i = 0; i < n; ++i) {
    if (!replicas_[idx]->crashed()) {
      const std::size_t load = replicas_[idx]->load();
      if (load < best_load) {
        best_load = load;
        best = idx;
        // An idle replica cannot be beaten (later equal loads lose the
        // tie-break, nothing is below zero), so stop scanning. At mega
        // scale — hundreds of mostly-idle replicas per region — this turns
        // the selection from O(replicas) loads into a couple of probes.
        if (load == 0) break;
      }
    }
    ++idx;
    if (idx == n) idx = 0;
  }
  rr_cursor_ = best + 1 == n ? 0 : best + 1;

  // `done` parks in the pool before submit: if the replica rejects the job
  // (the job is destroyed unrun) the callback is still reachable for the
  // rejection path below — no defensive copy needed.
  const CallHandle handle = calls_.acquire();
  PendingCall& call = *calls_.get(handle);
  call.done = std::move(done);
  call.server = server;
  call.enqueued = sim_.now();
  call.depth = depth;
  call.replica = static_cast<std::uint32_t>(best);
  const bool accepted = replicas_[best]->submit(
      [this, handle](ReleaseToken release) {
        run_call(handle, std::move(release));
      });
  if (!accepted) {
    ++rejected_;
    if (server.sampled()) {
      tracer_->end_span(server, trace::SpanStatus::kError);
    }
    PendingCall* call2 = calls_.get(handle);
    OutcomeFn parked = std::move(call2->done);
    calls_.release(handle);
    parked(Outcome{.success = false, .rejected = true});
  }
}

void ServiceDeployment::run_call(CallHandle handle, ReleaseToken release) {
  PendingCall* call = calls_.get(handle);
  L3_ASSERT(call != nullptr);  // the slot is held until complete_call
  call->release = std::move(release);
  if (call->server.sampled() && sim_.now() > call->enqueued) {
    // The job waited for a concurrency slot: the queueing component of the
    // paper's tail-latency story, recorded as its own span.
    tracer_->add_span(call->server, trace::SpanKind::kQueue, "queue",
                      cluster_name_, service_, call->enqueued, sim_.now());
  }
  const BehaviorContext ctx{sim_,  mesh_,       cluster_,
                            rng_,  call->depth, call->server};
  behavior_->invoke(ctx, [this, handle](const Outcome& outcome) {
    complete_call(handle, outcome);
  });
}

void ServiceDeployment::complete_call(CallHandle handle,
                                      const Outcome& outcome) {
  PendingCall* call = calls_.get(handle);
  if (call == nullptr) {
    // The call was failed by crash_replica while its behavior was still
    // running: the caller already got its failure and the slot is gone, so
    // the behavior's late done-callback is absorbed here. Any OTHER stale
    // handle means a behavior double-fired its done callback — still
    // caught loudly.
    L3_EXPECTS(crash_zombies_ > 0);
    --crash_zombies_;
    return;
  }
  // Releasing the replica slot pumps its queue, which may re-enter
  // run_call for the next waiting request; the chunked pool keeps `call`
  // stable through that.
  call->release();
  if (call->server.sampled()) {
    tracer_->end_span(call->server, outcome.success
                                        ? trace::SpanStatus::kOk
                                        : trace::SpanStatus::kError);
  }
  OutcomeFn done = std::move(call->done);
  calls_.release(handle);
  done(outcome);
}

void ServiceDeployment::crash_replica(std::size_t i) {
  L3_EXPECTS(i < replicas_.size());
  Replica& replica = *replicas_[i];
  if (replica.crashed()) return;
  // Phase 1: stop the replica. Queued jobs (closures over {this, handle})
  // are destroyed unrun; their pool entries are failed below.
  replica.crash();
  ++crashed_count_;
  // Phase 2: collect this replica's pending calls, then fail them in index
  // order. Two phases because failing a call fires its done callback, which
  // may re-enter handle() and mutate the pool mid-iteration.
  std::vector<CallHandle> victims;
  calls_.for_each_live([&](CallHandle h, PendingCall& call) {
    if (call.replica == i) victims.push_back(h);
  });
  for (const CallHandle h : victims) {
    PendingCall* call = calls_.get(h);
    L3_ASSERT(call != nullptr);  // collected above; only we release them
    const bool running = static_cast<bool>(call->release);
    if (running) {
      // In flight: release the concurrency slot through the one ReleaseToken
      // (exactly-once is structural), and remember that the behavior's done
      // callback is still going to fire against the now-stale handle.
      call->release();
      ++crash_zombies_;
    }
    ++crash_failed_;
    if (call->server.sampled()) {
      tracer_->end_span(call->server, trace::SpanStatus::kError);
    }
    OutcomeFn done = std::move(call->done);
    calls_.release(h);
    // Same shape as any other failure: the caller (the proxy's response
    // chain) sees a non-success Outcome — requests fail, they don't vanish.
    done(Outcome{.success = false, .rejected = !running});
  }
}

void ServiceDeployment::restart_replica(std::size_t i) {
  L3_EXPECTS(i < replicas_.size());
  Replica& replica = *replicas_[i];
  if (!replica.crashed()) return;
  L3_ASSERT(replica.active() == 0);  // crash_replica released every slot
  replica.restart();
  L3_ASSERT(crashed_count_ > 0);
  --crashed_count_;
}

std::size_t ServiceDeployment::alive_replicas() const {
  return replicas_.size() - crashed_count_;
}

void ServiceDeployment::add_replica() {
  replicas_.push_back(
      std::make_unique<Replica>(config_.concurrency, config_.queue_capacity));
}

bool ServiceDeployment::remove_idle_replica() {
  if (replicas_.size() <= 1) return false;
  for (auto it = replicas_.begin(); it != replicas_.end(); ++it) {
    // A crashed replica idles at load 0 but is awaiting restart, not
    // scale-down; removing it would also shift the indices fault plans
    // reference.
    if ((*it)->crashed()) continue;
    if ((*it)->load() == 0) {
      replicas_.erase(it);
      if (rr_cursor_ >= replicas_.size()) rr_cursor_ = 0;
      return true;
    }
  }
  return false;
}

std::size_t ServiceDeployment::total_concurrency() const {
  std::size_t total = 0;
  for (const auto& r : replicas_) total += r->concurrency();
  return total;
}

std::size_t ServiceDeployment::load() const {
  std::size_t total = 0;
  for (const auto& r : replicas_) total += r->load();
  return total;
}

std::uint64_t ServiceDeployment::completed() const {
  std::uint64_t total = 0;
  for (const auto& r : replicas_) total += r->completed();
  return total;
}

}  // namespace l3::mesh
