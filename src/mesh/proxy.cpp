#include "l3/mesh/proxy.h"

#include "l3/common/assert.h"
#include "l3/mesh/mesh.h"
#include "l3/mesh/metric_names.h"
#include "l3/obs/recorder.h"
#include "l3/sim/shard_engine.h"
#include "l3/trace/tracer.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace l3::mesh {

Proxy::Proxy(sim::Simulator& sim, const WanModel& wan, ClusterId source,
             TrafficSplit& split, std::vector<ServiceDeployment*> deployments,
             metrics::Registry& registry, const HealthChecker* health,
             SplitRng rng, ProxyConfig config,
             const std::vector<std::string>& cluster_names)
    : sim_(sim),
      wan_(wan),
      source_(source),
      src_name_(cluster_names.at(source)),
      proxy_span_name_("proxy:" + split.service()),
      split_(split),
      health_(health),
      rng_(rng),
      config_(config),
      outlier_(deployments.size(), config.outlier) {
  L3_EXPECTS(deployments.size() == split.backend_count());
  // The availability cache is a 64-bit mask; far above any realistic
  // per-service cluster count (the paper runs 3).
  L3_EXPECTS(deployments.size() <= 64);
  L3_EXPECTS(source < cluster_names.size());
  backends_.reserve(deployments.size());
  p2c_scratch_.reserve(deployments.size());
  const std::string& src_name = cluster_names[source];
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    ServiceDeployment* d = deployments[i];
    L3_EXPECTS(d != nullptr);
    L3_EXPECTS(d->cluster() < cluster_names.size());
    const std::string& dst_name = cluster_names[d->cluster()];
    const auto labels =
        metric_names::backend_labels(split.service(), src_name, dst_name);
    BackendSlot slot{
        d,
        dst_name,
        "wan:" + src_name + "->" + dst_name,
        "wan:" + dst_name + "->" + src_name,
        &registry.counter(metric_names::kRequestTotal, labels),
        &registry.counter(metric_names::kSuccessTotal, labels),
        &registry.counter(metric_names::kFailureTotal, labels),
        &registry.histogram(metric_names::kLatencySuccess, labels),
        &registry.histogram(metric_names::kLatencyFailure, labels),
        &registry.counter(metric_names::kLatencySuccessSum, labels),
        &registry.counter(metric_names::kLatencyFailureSum, labels),
        &registry.gauge(metric_names::kInflight, labels),
        metrics::PeakEwma(config.p2c_default_latency, config.p2c_half_life,
                          sim.now()),
        0,
    };
    backends_.push_back(std::move(slot));
  }
  if (config_.cost.enabled()) {
    cost_enabled_ = true;
    cpu_stage_.configure(config_.cost.concurrency);
    pools_.resize(backends_.size());
    // Audit families (per-proxy, {split, src}): registered only here so a
    // zero-cost run's registry — and everything scraped from it — stays
    // byte-identical to a build without the model.
    const auto audit_labels =
        metric_names::proxy_labels(split.service(), src_name);
    audit_handshakes_ =
        &registry.counter(metric_names::kHandshakeTotal, audit_labels);
    audit_pool_hits_ =
        &registry.counter(metric_names::kPoolHitTotal, audit_labels);
    audit_conn_closed_ =
        &registry.counter(metric_names::kConnCloseTotal, audit_labels);
  }
}

SimDuration Proxy::admit_cost(std::size_t idx) {
  L3_OBS_SCOPE_SAMPLED(obs_cost, kProxyCost);
  const SimTime now = sim_.now();
  const EdgeConnectionPool::Checkout checkout = pools_[idx].checkout(now);
  SimDuration service = config_.cost.cpu_per_request;
  if (checkout.handshake) {
    service += config_.cost.handshake_cost;
    ++cost_stats_.handshakes;
    audit_handshakes_->increment();
    L3_OBS_COUNT(kMeshHandshakes, 1);
    L3_OBS_EVENT(kMesh, kHandshake, now, static_cast<std::uint32_t>(idx),
                 config_.cost.handshake_cost);
  } else {
    ++cost_stats_.pool_hits;
    audit_pool_hits_->increment();
    L3_OBS_COUNT(kMeshPoolHits, 1);
  }
  if (checkout.expired > 0) {
    cost_stats_.expired += checkout.expired;
    L3_OBS_COUNT_DYN(obs::CounterId::kMeshConnExpired, checkout.expired);
  }
  const SimTime done_at = cpu_stage_.admit(now, service);
  const SimDuration wait = done_at - now - service;
  cost_stats_.cpu_busy_total += service;
  if (wait > 0.0) {
    ++cost_stats_.queued;
    cost_stats_.queue_delay_total += wait;
    if (wait > cost_stats_.queue_delay_max) cost_stats_.queue_delay_max = wait;
    // Saturation signal: sampled on the queueing path only, so an idle
    // proxy records nothing.
    L3_OBS_GAUGE(kMeshProxyQueueDelay, wait);
  }
  return done_at - now;
}

void Proxy::refresh_availability() {
  const SimTime now = sim_.now();
  const std::uint64_t health_version =
      health_ == nullptr ? 0 : health_->version();
  const std::uint64_t outlier_version = outlier_.version();
  if (avail_valid_ && health_version == health_version_seen_ &&
      outlier_version == outlier_version_seen_ && now < avail_valid_until_) {
    return;
  }
  const std::size_t n = backends_.size();
  const bool check_partitions = wan_.has_partitions();
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool healthy =
        health_ == nullptr || health_->is_available(*backends_[i].deployment);
    const bool reachable =
        !check_partitions ||
        !wan_.is_partitioned(source_, backends_[i].deployment->cluster(), now);
    if (healthy && reachable && !outlier_.is_ejected(i, now)) {
      mask |= 1ull << i;
    }
  }
  if (mask == 0) {
    // Nothing available: fall back to trying everything so requests fail at
    // the backend rather than vanish.
    mask = n == 64 ? ~0ull : (1ull << n) - 1;
  }
  avail_mask_ = mask;
  // Slow path only (version change / cache expiry), so the flight-recorder
  // entry and inflight gauge cost nothing per request.
  L3_OBS_EVENT(kMesh, kAvailabilityRefresh, now,
               static_cast<std::uint32_t>(mask),
               static_cast<double>(std::popcount(mask)));
  L3_OBS_GAUGE(kMeshInflight, static_cast<double>(inflight_total_));
  health_version_seen_ = health_version;
  outlier_version_seen_ = outlier_version;
  avail_valid_until_ = outlier_.next_transition(now);
  if (check_partitions) {
    avail_valid_until_ =
        std::min(avail_valid_until_, wan_.next_partition_transition(now));
  }
  avail_valid_ = true;
}

void Proxy::refresh_picker() {
  if (picker_valid_ && split_.generation() == picker_generation_ &&
      avail_mask_ == picker_mask_) {
    return;
  }
  L3_OBS_SCOPE(obs_rebuild, kPickerRebuild);
  const auto backends = split_.backends();
  cum_weights_.clear();
  cum_index_.clear();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < backends.size(); ++i) {
    if ((avail_mask_ >> i & 1) == 0) continue;
    total += backends[i].weight;
    cum_weights_.push_back(total);
    cum_index_.push_back(static_cast<std::uint32_t>(i));
  }
  cum_total_ = total;
  picker_generation_ = split_.generation();
  picker_mask_ = avail_mask_;
  picker_valid_ = true;
  L3_OBS_EVENT(kMesh, kPickerRebuild, sim_.now(),
               static_cast<std::uint32_t>(avail_mask_),
               static_cast<double>(cum_index_.size()));
}

namespace {
// WeightedKernel -> per-kernel pick counter, indexed by the enum value.
constexpr std::array<obs::CounterId, pick::kWeightedKernelCount>
    kKernelCounters = {
        obs::CounterId::kPickKernelLinear,
        obs::CounterId::kPickKernelMultiLane,
        obs::CounterId::kPickKernelBinary,
};
}  // namespace

std::size_t Proxy::pick_weighted() {
  L3_OBS_SCOPE_SAMPLED(obs_pick, kWeightedPick);
  const std::size_t count = cum_index_.size();
  L3_ASSERT(count > 0);
  // Kernel selection is two compares on the table size (or the test-only
  // override); every kernel computes the identical upper_bound, so the
  // choice can never perturb a pick.
  const pick::WeightedKernel kernel = pick::select_weighted_kernel(count);
  L3_OBS_COUNT_DYN(kKernelCounters[static_cast<std::size_t>(kernel)], 1);
  if (cum_total_ == 0) {
    // All available weights are zero: ignore weights among the available
    // set (uniform pick). uniform() < 1 keeps the index below count; the
    // clamp guards the floating-point edge so it can never reach count.
    auto nth = static_cast<std::size_t>(rng_.uniform() *
                                        static_cast<double>(count));
    if (nth >= count) nth = count - 1;
    return cum_index_[nth];
  }
  auto r = static_cast<std::uint64_t>(rng_.uniform() *
                                      static_cast<double>(cum_total_));
  if (r >= cum_total_) r = cum_total_ - 1;  // fp edge: clamp into the table
  // First entry whose cumulative weight exceeds r. Zero-weight backends
  // repeat the previous cumulative value and are skipped. The table covers
  // available backends only, so the result is always one of them (the old
  // open-coded walk could fall back to an unavailable last backend).
  return cum_index_[pick::search(kernel, cum_weights_.data(), count, r)];
}

double Proxy::p2c_cost(const BackendSlot& slot) const {
  return slot.p2c_latency.value() *
         static_cast<double>(slot.outstanding + 1);
}

std::size_t Proxy::pick_p2c() {
  L3_OBS_SCOPE_SAMPLED(obs_pick, kP2cPick);
  L3_OBS_COUNT(kPickKernelP2c, 1);
  // The candidate set is a pure function of the availability mask, so it is
  // rebuilt only when the mask changes instead of on every pick (the
  // rebuild loop used to be the P2C hot path's dominant cost). A live mask
  // is never 0 (all-true fallback), so 0 doubles as "never built".
  if (avail_mask_ != p2c_mask_) {
    p2c_scratch_.clear();
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (avail_mask_ >> i & 1) {
        p2c_scratch_.push_back(static_cast<std::uint32_t>(i));
      }
    }
    p2c_mask_ = avail_mask_;
  }
  const std::vector<std::uint32_t>& candidates = p2c_scratch_;
  L3_ASSERT(!candidates.empty());
  if (candidates.size() == 1) return candidates.front();
  const double n = static_cast<double>(candidates.size());
  auto first = static_cast<std::size_t>(rng_.uniform() * n);
  if (first >= candidates.size()) first = candidates.size() - 1;
  const std::uint32_t a = candidates[first];
  std::uint32_t b = a;
  while (b == a) {
    auto second = static_cast<std::size_t>(rng_.uniform() * n);
    if (second >= candidates.size()) second = candidates.size() - 1;
    b = candidates[second];
  }
  return p2c_cost(backends_[a]) <= p2c_cost(backends_[b]) ? a : b;
}

std::size_t Proxy::pick() {
  refresh_availability();
  if (config_.routing == RoutingMode::kPeakEwmaP2C) return pick_p2c();
  refresh_picker();
  return pick_weighted();
}

void Proxy::pick_backend_batch(std::uint32_t* out, std::size_t m) {
  if (m == 0) return;
  // One refresh covers the whole batch: all picks happen at the current sim
  // time, and within one timestamp nothing the refresh reads can change —
  // the scalar loop's per-pick refreshes would all early-return anyway.
  refresh_availability();
  if (config_.routing == RoutingMode::kPeakEwmaP2C) {
    // P2C draws interleave with the rejection loop, so the batch form is
    // the scalar kernel per element (the candidate cache and availability
    // load are still amortized across the batch).
    for (std::size_t j = 0; j < m; ++j) {
      out[j] = static_cast<std::uint32_t>(pick_p2c());
    }
    return;
  }
  refresh_picker();
  const std::size_t count = cum_index_.size();
  L3_ASSERT(count > 0);
  L3_OBS_SCOPE_SAMPLED(obs_pick, kWeightedPick);
  const pick::WeightedKernel kernel = pick::select_weighted_kernel(count);
  L3_OBS_COUNT_DYN(kKernelCounters[static_cast<std::size_t>(kernel)], m);
  if (cum_total_ == 0) {
    for (std::size_t j = 0; j < m; ++j) {
      auto nth = static_cast<std::size_t>(rng_.uniform() *
                                          static_cast<double>(count));
      if (nth >= count) nth = count - 1;
      out[j] = cum_index_[nth];
    }
    return;
  }
  // The RNG draws happen in exactly the scalar order in both shapes below
  // (searches never draw), so the stream is identical to m scalar picks.
  if (kernel == pick::WeightedKernel::kLinear) {
    // Small tables: the whole table lives in one or two cache lines, so a
    // fused draw+search+map loop beats staging draws through memory. The
    // search is a branch-free rank count over the first count-1 entries
    // (the last entry equals the clamped total, so its compare is always
    // false) — the forward scan's data-dependent exit mispredicts on
    // skewed weights, and `out` (uint32_t*) may alias cum_index_'s
    // elements, so both tables are hoisted into locals the stores
    // provably cannot touch.
    const std::uint64_t* cum = cum_weights_.data();
    const std::uint32_t* idx = cum_index_.data();
    const std::uint64_t cap = cum_total_;
    const double total = static_cast<double>(cap);
    const std::size_t inner = count - 1;
    for (std::size_t j = 0; j < m; ++j) {
      auto r = static_cast<std::uint64_t>(rng_.uniform() * total);
      if (r >= cap) r = cap - 1;
      std::size_t rank = 0;
      for (std::size_t i = 0; i < inner; ++i) {
        rank += static_cast<std::size_t>(cum[i] <= r);
      }
      out[j] = idx[rank];
    }
    return;
  }
  // Wide tables: stage the draws, then resolve them all against one load of
  // the table through the batch kernel (multilane/binary vectorize better
  // without the RNG's serial dependency in the loop).
  batch_draws_.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    auto r = static_cast<std::uint64_t>(rng_.uniform() *
                                        static_cast<double>(cum_total_));
    if (r >= cum_total_) r = cum_total_ - 1;
    batch_draws_[j] = r;
  }
  pick::search_batch(kernel, cum_weights_.data(), count, batch_draws_.data(),
                     m, out);
  for (std::size_t j = 0; j < m; ++j) out[j] = cum_index_[out[j]];
}

void Proxy::send(int depth, trace::SpanContext parent, ResponseFn done) {
  L3_EXPECTS(done != nullptr);
  constexpr int kMaxDepth = 32;  // guards against call-graph cycles
  if (depth > kMaxDepth) {
    done(Response{.success = false, .latency = 0.0, .backend_cluster = source_,
                  .timed_out = false});
    return;
  }
  const std::size_t idx = pick();
  BackendSlot& slot = backends_[idx];
  ++sent_;
  L3_OBS_COUNT(kMeshRequests, 1);
  slot.requests->increment();
  slot.inflight->add(1.0);
  slot.outstanding += 1;
  ++inflight_total_;

  const bool with_timeout = config_.timeout > 0.0;
  const CallHandle handle = calls_.acquire();
  CallState& state = *calls_.get(handle);
  state.start = sim_.now();
  state.backend = static_cast<std::uint32_t>(idx);
  // Visitors that must settle before the slot recycles: the response chain,
  // plus the timeout event when one is armed.
  state.pending = with_timeout ? 2 : 1;
  state.finished = false;
  state.span = trace::SpanContext{};
  state.done = std::move(done);
  if (tracer_ != nullptr && parent.sampled()) {
    state.span = tracer_->start_span(parent, trace::SpanKind::kProxy,
                                     proxy_span_name_, src_name_,
                                     split_.service());
  }

  if (with_timeout) {
    const SimTime deadline = sim_.now() + config_.timeout;
    push_timeout(deadline, handle);
    if (!timeout_timer_armed_) arm_timeout_timer(deadline);
  }

  // The cost model's delay (connection handshake + CPU-stage queueing +
  // service) rides the outbound leg: the request leaves the proxy only once
  // its sidecar work is done. No extra event, no RNG draw — with the model
  // disabled cost_delay is exactly 0.0 and every event time below is
  // bit-identical to a build without it.
  const SimDuration cost_delay = cost_enabled_ ? admit_cost(idx) : 0.0;
  const SimDuration outbound =
      wan_.sample(source_, slot.deployment->cluster(), sim_.now(), rng_);
  if (presampled_) {
    send_presampled(handle, depth, slot, cost_delay + outbound);
    return;
  }
  if (state.span.sampled()) {
    tracer_->add_span(state.span, trace::SpanKind::kWan, slot.wan_out_name,
                      src_name_, split_.service(), sim_.now() + cost_delay,
                      sim_.now() + cost_delay + outbound);
  }
  sim_.schedule_after(cost_delay + outbound, [this, handle, depth] {
    CallState* st = calls_.get(handle);
    L3_ASSERT(st != nullptr);  // the response chain holds the slot
    BackendSlot& s = backends_[st->backend];
    if (wan_.has_partitions() &&
        wan_.is_partitioned(source_, s.deployment->cluster(), sim_.now())) {
      // The link died while the request was in transit (or the partitioned
      // backend was the all-unavailable fallback): the request is dropped
      // on the floor and the connection resets — a fast failure, not a
      // full client-timeout wait.
      on_response(handle, Outcome{.success = false, .rejected = true});
      return;
    }
    s.deployment->handle(
        depth + 1, st->span, [this, handle](const Outcome& outcome) {
          CallState* st2 = calls_.get(handle);
          L3_ASSERT(st2 != nullptr);
          const BackendSlot& s2 = backends_[st2->backend];
          // Sampled even when a timeout already answered the caller: the
          // draw sequence of the proxy's RNG stream must not depend on
          // response/timeout ordering (determinism contract).
          const SimDuration inbound =
              wan_.sample(s2.deployment->cluster(), source_, sim_.now(), rng_);
          if (st2->span.sampled()) {
            tracer_->add_span(st2->span, trace::SpanKind::kWan,
                              s2.wan_in_name, src_name_, split_.service(),
                              sim_.now(), sim_.now() + inbound);
          }
          // A partition racing the response direction loses the response:
          // the backend did the work but the client sees a failure.
          Outcome delivered = outcome;
          if (wan_.has_partitions() &&
              wan_.is_partitioned(s2.deployment->cluster(), source_,
                                  sim_.now())) {
            delivered = Outcome{.success = false, .rejected = false};
          }
          sim_.schedule_after(inbound, [this, handle, delivered] {
            on_response(handle, delivered);
          });
        });
  });
}

void Proxy::enable_presampled(sim::ShardRouter* router) {
  L3_EXPECTS(router != nullptr);
  // The dest-side leg executes on another shard, where this proxy's tracer
  // and RNG must never be touched; tracing is therefore incompatible, and
  // the discipline must be fixed before traffic flows.
  L3_EXPECTS(tracer_ == nullptr);
  L3_EXPECTS(sent_ == 0);
  router_ = router;
  presampled_ = true;
}

void Proxy::send_presampled(CallHandle handle, int depth, BackendSlot& slot,
                            SimDuration outbound) {
  ServiceDeployment* const dep = slot.deployment;
  const ClusterId dst = dep->cluster();
  // Both transit legs are drawn here, source-side, back to back — the dest
  // shard's streams are never touched, so the proxy's draw sequence (and
  // with it every downstream result) is invariant to how clusters map onto
  // shards. This differs from the legacy discipline, which draws the
  // return leg dest-side at completion time; presampled runs have their
  // own goldens.
  const SimDuration inbound = wan_.sample(dst, source_, sim_.now(), rng_);
  const SimTime arrive = sim_.now() + outbound;
  if (wan_.has_partitions() && wan_.is_partitioned(source_, dst, arrive)) {
    // Same fast-failure semantics as the legacy arrival-time check:
    // partitions are registered up front, so the verdict at `arrive` is
    // already computable here on the source shard.
    sim_.schedule_after(outbound, [this, handle] {
      on_response(handle, Outcome{.success = false, .rejected = true});
    });
    return;
  }
  // Posted under the (source cluster, seq) key; runs at `arrive` on the
  // shard owning `dst`. From there until the response lands back home only
  // `dep`, the shared engine and this proxy's immutable fields may be
  // touched.
  router_->post(source_, dst, arrive, [this, dep, handle, depth, inbound] {
    dep->handle(
        depth + 1, [this, dep, handle, inbound](const Outcome& outcome) {
          sim::Simulator& dest_sim = dep->sim();
          const ClusterId dest = dep->cluster();
          Outcome delivered = outcome;
          // The dest shard's WAN copy is configured identically to the
          // source's, so the return-partition verdict matches what the
          // legacy dest-side check would conclude.
          const WanModel& dest_wan = dep->mesh().wan();
          if (dest_wan.has_partitions() &&
              dest_wan.is_partitioned(dest, source_, dest_sim.now())) {
            delivered = Outcome{.success = false, .rejected = false};
          }
          router_->engine().router_for_cluster(dest).post(
              dest, source_, dest_sim.now() + inbound,
              [this, handle, delivered] { on_response(handle, delivered); });
        });
  });
}

void Proxy::on_response(CallHandle handle, const Outcome& outcome) {
  CallState* state = calls_.get(handle);
  L3_ASSERT(state != nullptr);  // the chain's visitor still holds the slot
  if (!state->finished) {
    finish(*state, outcome.success, sim_.now() - state->start, false);
  }
  settle(handle, *state);
  drain_finished_timeouts();
}

void Proxy::push_timeout(SimTime deadline, CallHandle handle) {
  const TimeoutEntry entry{deadline, handle};
  push_timeout_batch(&entry, 1);
}

void Proxy::push_timeout_batch(const TimeoutEntry* entries, std::size_t m) {
  std::size_t j = 0;
  while (j < m) {
    if (timeout_buckets_.empty() ||
        timeout_buckets_.back()->tail == kTimeoutBucketSize) {
      // Open a fresh tail bucket — recycled when possible, so steady state
      // admission allocates nothing and (unlike the old power-of-two ring)
      // growth never copies a live entry.
      if (timeout_free_.empty()) {
        timeout_buckets_.push_back(std::make_unique<TimeoutBucket>());
      } else {
        timeout_buckets_.push_back(std::move(timeout_free_.back()));
        timeout_free_.pop_back();
        timeout_buckets_.back()->head = 0;
        timeout_buckets_.back()->tail = 0;
      }
    }
    TimeoutBucket& bucket = *timeout_buckets_.back();
    const std::size_t space =
        std::min(m - j, kTimeoutBucketSize - bucket.tail);
    for (std::size_t k = 0; k < space; ++k) {
      bucket.slots[bucket.tail + k] = entries[j + k];
    }
    bucket.tail += space;
    bucket.last_deadline = entries[j + space - 1].deadline;
    j += space;
  }
  timeout_count_ += m;
}

void Proxy::pop_timeout() {
  TimeoutBucket& bucket = *timeout_buckets_.front();
  ++bucket.head;
  --timeout_count_;
  if (bucket.head == bucket.tail && bucket.tail == kTimeoutBucketSize) {
    // Fully written and fully drained: park the bucket for reuse. (A
    // partially filled front bucket is also the tail bucket and keeps
    // accepting pushes.)
    timeout_free_.push_back(std::move(timeout_buckets_.front()));
    timeout_buckets_.erase(timeout_buckets_.begin());
  } else if (bucket.head == bucket.tail) {
    // Front == tail bucket drained: reset in place so the slots recycle.
    bucket.head = 0;
    bucket.tail = 0;
  }
}

void Proxy::arm_timeout_timer(SimTime deadline) {
  timeout_timer_armed_ = true;
  sim_.schedule_at(deadline, [this] { on_timeout_timer(); });
}

void Proxy::drain_finished_timeouts() {
  while (timeout_count_ > 0) {
    const TimeoutEntry& front = front_timeout();
    CallState* state = calls_.get(front.handle);
    if (state != nullptr) {
      if (!state->finished || state->pending != 1) break;  // still in flight
      settle(front.handle, *state);
    }
    pop_timeout();
  }
}

void Proxy::on_timeout_timer() {
  L3_OBS_SCOPE(obs_sweep, kTimeoutSweep);
  timeout_timer_armed_ = false;
  const SimTime now = sim_.now();
  while (timeout_count_ > 0) {
    // Radix fast path: when the whole front bucket's deadline bound is due,
    // entries inside need no per-entry deadline compare — only their
    // finished/pending state decides what happens.
    const bool bucket_due = timeout_buckets_.front()->last_deadline <= now;
    const TimeoutEntry front = front_timeout();
    CallState* state = calls_.get(front.handle);
    if (state == nullptr) {  // already recycled; nothing to settle
      pop_timeout();
      continue;
    }
    if (state->finished && state->pending == 1) {
      // Response already answered the caller; the store entry was the last
      // visitor, so this settle recycles the slot.
      settle(front.handle, *state);
      pop_timeout();
      continue;
    }
    if (!bucket_due && front.deadline > now) break;
    // Genuinely due: the caller gets the timeout response at exactly
    // start + timeout. The response chain (still in flight) keeps its
    // visitor and settles the slot when it lands.
    if (!state->finished) {
      L3_OBS_COUNT(kMeshTimeouts, 1);
      L3_OBS_EVENT(kMesh, kTimeoutFired, now, state->backend,
                   config_.timeout);
      finish(*state, false, config_.timeout, true);
    }
    settle(front.handle, *state);
    pop_timeout();
  }
  if (timeout_count_ > 0) {
    arm_timeout_timer(front_timeout().deadline);
  }
}

void Proxy::settle(CallHandle handle, CallState& state) {
  L3_ASSERT(state.pending > 0);
  if (--state.pending == 0) calls_.release(handle);
}

void Proxy::finish(CallState& state, bool success, SimDuration latency,
                   bool timed_out) {
  state.finished = true;
  if (cost_enabled_) {
    // Exactly once per call (finish is guarded by state.finished): a client
    // timeout tears the connection down mid-flight (churn); otherwise it
    // parks in the edge pool unless the idle list is already full.
    if (pools_[state.backend].release(sim_.now(), timed_out, config_.cost)) {
      ++cost_stats_.closed;
      audit_conn_closed_->increment();
    }
  }
  BackendSlot& slot = backends_[state.backend];
  slot.inflight->add(-1.0);
  L3_ASSERT(slot.outstanding > 0);
  slot.outstanding -= 1;
  L3_ASSERT(inflight_total_ > 0);
  --inflight_total_;
  if (success) {
    slot.success->increment();
    slot.latency_success->record(latency);
    slot.latency_success_sum->add(latency);
  } else {
    slot.failure->increment();
    slot.latency_failure->record(latency);
    slot.latency_failure_sum->add(latency);
  }
  if (config_.routing == RoutingMode::kPeakEwmaP2C) {
    // The PeakEWMA is only ever read by pick_p2c(); skipping the update in
    // weighted mode saves an exp() per response on the hot path.
    slot.p2c_latency.observe(latency, sim_.now());
  }
  outlier_.record(state.backend, success, sim_.now());
  if (state.span.sampled()) {
    tracer_->end_span(state.span,
                      timed_out ? trace::SpanStatus::kTimeout
                                : (success ? trace::SpanStatus::kOk
                                           : trace::SpanStatus::kError));
  }
  Response response;
  response.success = success;
  response.latency = latency;
  response.backend_cluster = slot.deployment->cluster();
  response.timed_out = timed_out;
  // Moved out before invoking: the callback may re-enter send() and touch
  // the pool; the slot itself stays put (chunked storage) until settled.
  ResponseFn done = std::move(state.done);
  done(response);
}

}  // namespace l3::mesh
