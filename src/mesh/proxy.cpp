#include "l3/mesh/proxy.h"

#include "l3/common/assert.h"
#include "l3/mesh/metric_names.h"
#include "l3/trace/tracer.h"

#include <limits>
#include <utility>

namespace l3::mesh {

struct Proxy::CallState {
  SimTime start = 0.0;
  std::size_t backend = 0;
  ResponseFn done;
  trace::SpanContext span;  ///< the proxy span (unsampled when not traced)
  bool finished = false;
};

Proxy::Proxy(sim::Simulator& sim, const WanModel& wan, ClusterId source,
             TrafficSplit& split, std::vector<ServiceDeployment*> deployments,
             metrics::Registry& registry, const HealthChecker* health,
             SplitRng rng, ProxyConfig config,
             const std::vector<std::string>& cluster_names)
    : sim_(sim),
      wan_(wan),
      source_(source),
      src_name_(cluster_names.at(source)),
      split_(split),
      health_(health),
      rng_(rng),
      config_(config),
      outlier_(deployments.size(), config.outlier) {
  L3_EXPECTS(deployments.size() == split.backend_count());
  L3_EXPECTS(source < cluster_names.size());
  backends_.reserve(deployments.size());
  const std::string& src_name = cluster_names[source];
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    ServiceDeployment* d = deployments[i];
    L3_EXPECTS(d != nullptr);
    L3_EXPECTS(d->cluster() < cluster_names.size());
    const std::string& dst_name = cluster_names[d->cluster()];
    const auto labels =
        metric_names::backend_labels(split.service(), src_name, dst_name);
    BackendSlot slot{
        d,
        dst_name,
        &registry.counter(metric_names::kRequestTotal, labels),
        &registry.counter(metric_names::kSuccessTotal, labels),
        &registry.counter(metric_names::kFailureTotal, labels),
        &registry.histogram(metric_names::kLatencySuccess, labels),
        &registry.histogram(metric_names::kLatencyFailure, labels),
        &registry.counter(metric_names::kLatencySuccessSum, labels),
        &registry.counter(metric_names::kLatencyFailureSum, labels),
        &registry.gauge(metric_names::kInflight, labels),
        std::make_unique<metrics::PeakEwma>(config.p2c_default_latency,
                                            config.p2c_half_life, sim.now()),
        0,
    };
    backends_.push_back(std::move(slot));
  }
}

std::vector<bool> Proxy::availability() const {
  const SimTime now = sim_.now();
  std::vector<bool> available(backends_.size());
  bool any = false;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const bool healthy =
        health_ == nullptr || health_->is_available(*backends_[i].deployment);
    available[i] = healthy && !outlier_.is_ejected(i, now);
    any = any || available[i];
  }
  if (!any) {
    // Nothing available: fall back to trying everything so requests fail at
    // the backend rather than vanish.
    std::fill(available.begin(), available.end(), true);
  }
  return available;
}

std::size_t Proxy::pick_weighted(const std::vector<bool>& available) {
  const auto backends = split_.backends();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < backends.size(); ++i) {
    if (available[i]) total += backends[i].weight;
  }
  if (total == 0) {
    // All available weights are zero: ignore weights among the available
    // set (uniform pick).
    std::size_t count = 0;
    for (bool a : available) count += a ? 1 : 0;
    auto nth = static_cast<std::size_t>(rng_.uniform() *
                                        static_cast<double>(count));
    for (std::size_t i = 0; i < backends.size(); ++i) {
      if (!available[i]) continue;
      if (nth == 0) return i;
      --nth;
    }
    return backends.size() - 1;
  }
  std::uint64_t r =
      static_cast<std::uint64_t>(rng_.uniform() * static_cast<double>(total));
  for (std::size_t i = 0; i < backends.size(); ++i) {
    if (!available[i]) continue;
    if (r < backends[i].weight) return i;
    r -= backends[i].weight;
  }
  return backends.size() - 1;
}

double Proxy::p2c_cost(const BackendSlot& slot) const {
  return slot.p2c_latency->value() *
         static_cast<double>(slot.outstanding + 1);
}

std::size_t Proxy::pick_p2c(const std::vector<bool>& available) {
  // Collect the candidate set, then power-of-two-choices by cost.
  std::vector<std::size_t> candidates;
  candidates.reserve(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (available[i]) candidates.push_back(i);
  }
  L3_ASSERT(!candidates.empty());
  if (candidates.size() == 1) return candidates.front();
  const auto a = candidates[static_cast<std::size_t>(
      rng_.uniform() * static_cast<double>(candidates.size()))];
  std::size_t b = a;
  while (b == a) {
    b = candidates[static_cast<std::size_t>(
        rng_.uniform() * static_cast<double>(candidates.size()))];
  }
  return p2c_cost(backends_[a]) <= p2c_cost(backends_[b]) ? a : b;
}

std::size_t Proxy::pick() {
  const auto available = availability();
  return config_.routing == RoutingMode::kPeakEwmaP2C
             ? pick_p2c(available)
             : pick_weighted(available);
}

void Proxy::send(int depth, trace::SpanContext parent, ResponseFn done) {
  L3_EXPECTS(done != nullptr);
  constexpr int kMaxDepth = 32;  // guards against call-graph cycles
  if (depth > kMaxDepth) {
    done(Response{.success = false, .latency = 0.0, .backend_cluster = source_,
                  .timed_out = false});
    return;
  }
  const std::size_t idx = pick();
  BackendSlot& slot = backends_[idx];
  ++sent_;
  slot.requests->increment();
  slot.inflight->add(1.0);
  slot.outstanding += 1;
  ++inflight_total_;

  auto state = std::make_shared<CallState>();
  state->start = sim_.now();
  state->backend = idx;
  state->done = std::move(done);
  if (tracer_ != nullptr && parent.sampled()) {
    state->span =
        tracer_->start_span(parent, trace::SpanKind::kProxy,
                            "proxy:" + split_.service(), src_name_,
                            split_.service());
  }

  if (config_.timeout > 0.0) {
    sim_.schedule_after(config_.timeout,
                        [this, state] { on_timeout(state); });
  }

  const SimDuration outbound =
      wan_.sample(source_, slot.deployment->cluster(), sim_.now(), rng_);
  if (state->span.sampled()) {
    tracer_->add_span(state->span, trace::SpanKind::kWan,
                      "wan:" + src_name_ + "->" + slot.dst_name, src_name_,
                      split_.service(), sim_.now(), sim_.now() + outbound);
  }
  sim_.schedule_after(outbound, [this, state, depth] {
    BackendSlot& s = backends_[state->backend];
    s.deployment->handle(
        depth + 1, state->span, [this, state](const Outcome& outcome) {
          const BackendSlot& s2 = backends_[state->backend];
          const SimDuration inbound =
              wan_.sample(s2.deployment->cluster(), source_, sim_.now(), rng_);
          if (state->span.sampled()) {
            tracer_->add_span(state->span, trace::SpanKind::kWan,
                              "wan:" + s2.dst_name + "->" + src_name_,
                              src_name_, split_.service(), sim_.now(),
                              sim_.now() + inbound);
          }
          sim_.schedule_after(inbound, [this, state, outcome] {
            on_response(state, outcome);
          });
        });
  });
}

void Proxy::on_response(const std::shared_ptr<CallState>& state,
                        const Outcome& outcome) {
  if (state->finished) return;  // a timeout already answered the caller
  finish(state, outcome.success, sim_.now() - state->start, false);
}

void Proxy::on_timeout(const std::shared_ptr<CallState>& state) {
  if (state->finished) return;
  finish(state, false, config_.timeout, true);
}

void Proxy::finish(const std::shared_ptr<CallState>& state, bool success,
                   SimDuration latency, bool timed_out) {
  state->finished = true;
  BackendSlot& slot = backends_[state->backend];
  slot.inflight->add(-1.0);
  L3_ASSERT(slot.outstanding > 0);
  slot.outstanding -= 1;
  L3_ASSERT(inflight_total_ > 0);
  --inflight_total_;
  if (success) {
    slot.success->increment();
    slot.latency_success->record(latency);
    slot.latency_success_sum->add(latency);
  } else {
    slot.failure->increment();
    slot.latency_failure->record(latency);
    slot.latency_failure_sum->add(latency);
  }
  slot.p2c_latency->observe(latency, sim_.now());
  outlier_.record(state->backend, success, sim_.now());
  if (state->span.sampled()) {
    tracer_->end_span(state->span,
                      timed_out ? trace::SpanStatus::kTimeout
                                : (success ? trace::SpanStatus::kOk
                                           : trace::SpanStatus::kError));
  }
  Response response;
  response.success = success;
  response.latency = latency;
  response.backend_cluster = slot.deployment->cluster();
  response.timed_out = timed_out;
  state->done(response);
}

}  // namespace l3::mesh
