#include "l3/mesh/traffic_split.h"

#include <utility>

namespace l3::mesh {

TrafficSplit::TrafficSplit(std::string service, ClusterId source,
                           std::vector<BackendRef> backends,
                           std::uint64_t initial_weight)
    : service_(std::move(service)), source_(source) {
  L3_EXPECTS(!backends.empty());
  L3_EXPECTS(initial_weight >= 1);
  backends_.reserve(backends.size());
  for (auto& ref : backends) {
    backends_.push_back(SplitBackend{std::move(ref), initial_weight});
  }
}

std::vector<std::uint64_t> TrafficSplit::weights() const {
  std::vector<std::uint64_t> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.weight);
  return out;
}

void TrafficSplit::set_weights(std::span<const std::uint64_t> weights) {
  L3_EXPECTS(weights.size() == backends_.size());
  bool changed = false;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (backends_[i].weight != weights[i]) {
      backends_[i].weight = weights[i];
      changed = true;
    }
  }
  // A no-op push keeps the generation stable so proxies' cached pickers
  // survive the controller's periodic re-publication of unchanged weights.
  if (changed) ++generation_;
}

void ControlPlane::apply(TrafficSplit& split,
                         std::vector<std::uint64_t> weights) {
  L3_EXPECTS(weights.size() == split.backend_count());
  ++updates_;
  if (propagation_delay_ <= 0.0) {
    split.set_weights(weights);
    return;
  }
  sim_.schedule_after(propagation_delay_,
                      [&split, weights = std::move(weights)] {
                        split.set_weights(weights);
                      });
}

}  // namespace l3::mesh
