#include "l3/mesh/autoscaler.h"

namespace l3::mesh {

void Autoscaler::watch(ServiceDeployment& deployment) {
  watched_.push_back(Watched{&deployment});
}

void Autoscaler::start() {
  stop();
  task_ = sim_.schedule_every(config_.interval, [this] { evaluate(); },
                              config_.interval);
}

Autoscaler::Watched* Autoscaler::find(const ServiceDeployment* deployment) {
  for (auto& w : watched_) {
    if (w.deployment == deployment) return &w;
  }
  return nullptr;
}

void Autoscaler::evaluate() {
  const SimTime now = sim_.now();
  for (auto& w : watched_) {
    if (now - w.last_action < config_.cooldown) continue;
    ServiceDeployment& d = *w.deployment;
    const std::size_t replicas = d.replica_count();
    if (replicas == 0) continue;  // no capacity basis to extrapolate from
    const double capacity =
        static_cast<double>(d.total_concurrency()) +
        static_cast<double>(w.pending_up) *
            static_cast<double>(d.total_concurrency()) /
            static_cast<double>(replicas);
    if (capacity <= 0.0) continue;
    const double utilisation = static_cast<double>(d.load()) / capacity;

    if (utilisation > config_.scale_up_utilisation &&
        d.replica_count() + w.pending_up < config_.max_replicas) {
      w.last_action = now;
      w.pending_up += 1;
      ++scale_ups_;
      // The callback must not hold `&w`: watched_ reallocates on watch()
      // and the event can outlive the autoscaler itself (schedule_after is
      // uncancellable). It re-resolves the entry by deployment pointer and
      // abandons the provisioning when the autoscaler is gone.
      ServiceDeployment* dep = w.deployment;
      sim_.schedule_after(
          config_.provisioning_delay,
          [this, dep, alive = std::weak_ptr<const bool>(alive_)] {
            if (alive.expired()) return;
            dep->add_replica();
            Watched* entry = find(dep);
            if (entry != nullptr && entry->pending_up > 0) {
              entry->pending_up -= 1;
            }
          });
    } else if (utilisation < config_.scale_down_utilisation &&
               d.replica_count() > config_.min_replicas &&
               w.pending_up == 0) {
      if (d.remove_idle_replica()) {
        w.last_action = now;
        ++scale_downs_;
      }
    }
  }
}

}  // namespace l3::mesh
