#include "l3/mesh/autoscaler.h"

namespace l3::mesh {

void Autoscaler::watch(ServiceDeployment& deployment) {
  watched_.push_back(Watched{&deployment});
}

void Autoscaler::start() {
  stop();
  task_ = sim_.schedule_every(config_.interval, [this] { evaluate(); },
                              config_.interval);
}

void Autoscaler::evaluate() {
  const SimTime now = sim_.now();
  for (auto& w : watched_) {
    if (now - w.last_action < config_.cooldown) continue;
    ServiceDeployment& d = *w.deployment;
    const double capacity =
        static_cast<double>(d.total_concurrency()) +
        static_cast<double>(w.pending_up) *
            static_cast<double>(d.total_concurrency()) /
            static_cast<double>(d.replica_count());
    if (capacity <= 0.0) continue;
    const double utilisation = static_cast<double>(d.load()) / capacity;

    if (utilisation > config_.scale_up_utilisation &&
        d.replica_count() + w.pending_up < config_.max_replicas) {
      w.last_action = now;
      w.pending_up += 1;
      ++scale_ups_;
      sim_.schedule_after(config_.provisioning_delay, [this, &w] {
        w.deployment->add_replica();
        if (w.pending_up > 0) w.pending_up -= 1;
      });
    } else if (utilisation < config_.scale_down_utilisation &&
               d.replica_count() > config_.min_replicas &&
               w.pending_up == 0) {
      if (d.remove_idle_replica()) {
        w.last_action = now;
        ++scale_downs_;
      }
    }
  }
}

}  // namespace l3::mesh
