#include "l3/mesh/health.h"

#include "l3/common/assert.h"

namespace l3::mesh {

void HealthChecker::watch(const ServiceDeployment& deployment) {
  view_.emplace(&deployment, true);
  ++version_;
}

void HealthChecker::start(SimDuration interval) {
  L3_EXPECTS(interval > 0.0);
  stop();
  task_ = sim_.schedule_every(interval, [this] { probe_once(); }, interval);
}

void HealthChecker::probe_once() {
  for (auto& [deployment, healthy] : view_) {
    // Down (administratively) or with every replica crashed, the deployment
    // cannot serve — either way the next probe marks it unavailable.
    const bool up = !deployment->is_down() && deployment->alive_replicas() > 0;
    if (up != healthy) {
      healthy = up;
      ++version_;
    }
  }
}

bool HealthChecker::is_available(const ServiceDeployment& deployment) const {
  const auto it = view_.find(&deployment);
  return it == view_.end() ? true : it->second;
}

}  // namespace l3::mesh
