#include "l3/mesh/mesh.h"

#include "l3/common/assert.h"

namespace l3::mesh {

Mesh::Mesh(sim::Simulator& sim, SplitRng rng, MeshConfig config)
    : sim_(sim),
      rng_(rng),
      config_(config),
      control_plane_(sim, config.propagation_delay),
      health_(sim) {
  if (config_.health_probe_interval > 0.0) {
    health_.start(config_.health_probe_interval);
  }
}

ClusterId Mesh::add_cluster(std::string name, std::string region) {
  const auto id = static_cast<ClusterId>(clusters_.size());
  clusters_.push_back(Cluster{id, name, std::move(region)});
  names_.push_back(std::move(name));
  registries_.push_back(std::make_unique<metrics::Registry>());
  wan_.resize(clusters_.size());
  wan_.set_local_delay(config_.local_delay, config_.local_jitter_frac);
  return id;
}

ServiceDeployment& Mesh::deploy(const std::string& service, ClusterId cluster,
                                DeploymentConfig config,
                                std::unique_ptr<ServiceBehavior> behavior) {
  L3_EXPECTS(cluster < clusters_.size());
  auto& per_cluster = deployments_[service];
  L3_EXPECTS(per_cluster.find(cluster) == per_cluster.end());
  auto deployment = std::make_unique<ServiceDeployment>(
      service, cluster, config, std::move(behavior), sim_, *this,
      rng_.split(service + "@" + names_[cluster]));
  ServiceDeployment& ref = *deployment;
  per_cluster.emplace(cluster, std::move(deployment));
  health_.watch(ref);
  return ref;
}

void Mesh::declare_remote(const std::string& service, ClusterId cluster,
                          ServiceDeployment* deployment) {
  L3_EXPECTS(cluster < clusters_.size());
  L3_EXPECTS(deployment != nullptr && deployment->cluster() == cluster);
  // A remote declaration only makes sense on a sharded mesh: without a
  // router the proxy would have to schedule onto a foreign simulator.
  L3_EXPECTS(config_.shard_router != nullptr);
  L3_EXPECTS(find_deployment(service, cluster) == nullptr);
  auto& per_cluster = remote_deployments_[service];
  L3_EXPECTS(per_cluster.find(cluster) == per_cluster.end());
  per_cluster.emplace(cluster, deployment);
}

ServiceDeployment* Mesh::find_deployment(const std::string& service,
                                         ClusterId cluster) {
  const auto it = deployments_.find(service);
  if (it == deployments_.end()) return nullptr;
  const auto jt = it->second.find(cluster);
  return jt == it->second.end() ? nullptr : jt->second.get();
}

std::vector<ServiceDeployment*> Mesh::deployments_of(
    const std::string& service) {
  std::vector<ServiceDeployment*> out;
  const auto it = deployments_.find(service);
  const auto rt = remote_deployments_.find(service);
  if (it != deployments_.end()) {
    out.reserve(it->second.size());
    for (auto& [cluster, deployment] : it->second) {
      out.push_back(deployment.get());  // std::map iterates in cluster order
    }
  }
  if (rt != remote_deployments_.end()) {
    // Merge the two cluster-ordered runs so the combined list is ordered by
    // cluster id exactly as a single-shard mesh (with every deployment
    // local) would produce it.
    std::vector<ServiceDeployment*> merged;
    merged.reserve(out.size() + rt->second.size());
    auto local = out.begin();
    for (auto& [cluster, deployment] : rt->second) {
      while (local != out.end() && (*local)->cluster() < cluster) {
        merged.push_back(*local++);
      }
      merged.push_back(deployment);
    }
    merged.insert(merged.end(), local, out.end());
    out = std::move(merged);
  }
  return out;
}

Proxy& Mesh::proxy(ClusterId source, const std::string& service) {
  L3_EXPECTS(source < clusters_.size());
  const auto key = std::make_pair(source, service);
  const auto it = proxies_.find(key);
  if (it != proxies_.end()) return *it->second;

  auto deployments = deployments_of(service);
  L3_EXPECTS(!deployments.empty());  // deploy before first call

  std::vector<BackendRef> refs;
  refs.reserve(deployments.size());
  for (const auto* d : deployments) {
    refs.push_back(BackendRef{service, d->cluster()});
  }
  auto split = std::make_unique<TrafficSplit>(service, source, std::move(refs),
                                              config_.initial_weight);
  TrafficSplit& split_ref = *split;
  splits_.emplace(key, std::move(split));
  split_order_.emplace_back(source, &split_ref);

  ProxyConfig pc;
  pc.timeout = config_.request_timeout;
  pc.routing = config_.routing;
  pc.outlier = config_.outlier_detection;
  pc.cost = config_.proxy_cost;
  auto proxy = std::make_unique<Proxy>(
      sim_, wan_, source, split_ref, std::move(deployments),
      *registries_[source],
      config_.health_probe_interval > 0.0 ? &health_ : nullptr,
      rng_.split("proxy/" + names_[source] + "/" + service), pc, names_);
  if (config_.shard_router != nullptr) {
    proxy->enable_presampled(config_.shard_router);
  }
  proxy->set_tracer(tracer_);
  Proxy& ref = *proxy;
  proxies_.emplace(key, std::move(proxy));
  return ref;
}

void Mesh::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& [key, proxy] : proxies_) proxy->set_tracer(tracer);
  for (auto& [service, per_cluster] : deployments_) {
    for (auto& [cluster, deployment] : per_cluster) {
      deployment->set_tracer(tracer);
    }
  }
}

TrafficSplit* Mesh::find_split(ClusterId source, const std::string& service) {
  const auto it = splits_.find(std::make_pair(source, service));
  return it == splits_.end() ? nullptr : it->second.get();
}

std::vector<TrafficSplit*> Mesh::splits_of_source(ClusterId source) {
  std::vector<TrafficSplit*> out;
  for (const auto& [src, split] : split_order_) {
    if (src == source) out.push_back(split);
  }
  return out;
}

metrics::Registry& Mesh::registry(ClusterId cluster) {
  L3_EXPECTS(cluster < registries_.size());
  return *registries_[cluster];
}

}  // namespace l3::mesh
