#include "l3/core/controller.h"

#include "l3/common/assert.h"
#include "l3/mesh/metric_names.h"
#include "l3/obs/recorder.h"

#include <utility>

namespace l3::core {

namespace mn = mesh::metric_names;

/// Per-backend filter bank (one row of Table 1's EWMAs).
struct L3Controller::BackendFilters {
  BackendFilters(const ControllerConfig& cfg, SimTime t)
      : latency(cfg.latency_filter, cfg.default_latency, cfg.latency_half_life,
                t),
        success(cfg.default_success_rate, cfg.success_half_life, t),
        rps(cfg.default_rps, cfg.rps_half_life, t),
        inflight(cfg.default_inflight, cfg.inflight_half_life, t),
        mean_latency(cfg.default_latency, cfg.latency_half_life, t),
        failure_latency(cfg.default_latency, cfg.penalty_half_life, t),
        // The staleness clock starts when the backend comes under
        // management, not at simulated time 0: a never-scraped backend
        // begins converging `staleness` after manage(), not instantly
        // (last_data == 0 used to make `now - last_data` overshoot the
        // threshold on the very first tick).
        last_data(t) {}

  metrics::LatencyFilter latency;
  metrics::Ewma success;
  metrics::Ewma rps;
  metrics::Ewma inflight;
  /// Filtered MEAN success latency (C3's R̄ signal).
  metrics::Ewma mean_latency;
  /// Filtered latency of FAILED requests — input to dynamic penalty (§7).
  metrics::Ewma failure_latency;
  SimTime last_data = 0.0;
};

struct L3Controller::ManagedSplit {
  mesh::TrafficSplit* split = nullptr;
  std::vector<BackendFilters> filters;
  /// Interned TSDB handles, resolved once in manage() so the 5 s control
  /// tick queries the store with zero string work. One column per signal
  /// (SoA): the gather phase walks each column in a tight loop, which also
  /// keeps each series' window cursor advancing with consecutive accesses.
  struct KeyColumns {
    std::vector<metrics::SeriesId> requests;
    std::vector<metrics::SeriesId> success;
    std::vector<metrics::SeriesId> failure;
    std::vector<metrics::HistogramId> latency_success;
    std::vector<metrics::HistogramId> latency_failure;
    std::vector<metrics::SeriesId> latency_success_sum;
    std::vector<metrics::SeriesId> inflight;
  };
  KeyColumns keys;
  /// Raw per-backend query results of one tick, one column per signal.
  /// Persistent scratch: resized once, overwritten every tick.
  struct GatherColumns {
    std::vector<std::optional<double>> rps;
    std::vector<std::optional<double>> succ_rate;
    std::vector<std::optional<double>> fail_rate;
    std::vector<std::optional<double>> p99;
    std::vector<std::optional<double>> inflight;
    std::vector<std::optional<double>> latency_sum_rate;
    std::vector<std::optional<double>> fail_p50;
    void resize(std::size_t n) {
      rps.resize(n);
      succ_rate.resize(n);
      fail_rate.resize(n);
      p99.resize(n);
      inflight.resize(n);
      latency_sum_rate.resize(n);
      fail_p50.resize(n);
    }
  };
  GatherColumns gather;
  /// Per-tick scratch reused across ticks (PolicyInput takes spans).
  std::vector<lb::BackendSignals> signals_scratch;
  std::vector<mesh::BackendRef> refs_scratch;
  /// Introspection gauges per backend, resolved once in manage() (Registry
  /// guarantees pointer stability) instead of per tick via series_key().
  struct IntrospectionGauges {
    metrics::Gauge* weight = nullptr;
    metrics::Gauge* latency_p99 = nullptr;
    metrics::Gauge* success_rate = nullptr;
    metrics::Gauge* rps = nullptr;
    metrics::Gauge* inflight = nullptr;
  };
  std::vector<IntrospectionGauges> introspection;
  metrics::Ewma total_rps{0.0, 10.0};  // re-initialised in manage()
  double last_rps_sample = 0.0;
  std::vector<std::uint64_t> last_weights;
};

L3Controller::L3Controller(mesh::Mesh& mesh, metrics::TimeSeriesDb& tsdb,
                           mesh::ClusterId source,
                           std::unique_ptr<lb::LoadBalancingPolicy> policy,
                           ControllerConfig config)
    : mesh_(mesh),
      tsdb_(tsdb),
      source_(source),
      policy_(std::move(policy)),
      config_(config),
      // capacity 0 means "journaling disabled" (nothing is recorded); the
      // journal itself still needs a positive capacity.
      journal_(config.journal_capacity > 0 ? config.journal_capacity : 1) {
  L3_EXPECTS(policy_ != nullptr);
  L3_EXPECTS(config.control_interval > 0.0);
  L3_EXPECTS(config.query_window > 0.0);
  L3_EXPECTS(config.quantile > 0.0 && config.quantile < 1.0);
  L3_EXPECTS(source < mesh.clusters().size());
}

L3Controller::~L3Controller() { stop(); }

void L3Controller::manage(mesh::TrafficSplit& split) {
  L3_EXPECTS(split.source() == source_);
  const SimTime now = mesh_.simulator().now();
  auto managed = std::make_unique<ManagedSplit>();
  managed->split = &split;
  managed->total_rps = metrics::Ewma(config_.default_rps,
                                     config_.rps_half_life, now);
  const std::string& src_name = mesh_.cluster_names()[source_];
  for (const auto& backend : split.backends()) {
    managed->filters.emplace_back(config_, now);
    const std::string& dst_name = mesh_.cluster_names()[backend.ref.cluster];
    auto& keys = managed->keys;
    keys.requests.push_back(tsdb_.series(
        mn::backend_series(mn::kRequestTotal, split.service(), src_name,
                           dst_name)));
    keys.success.push_back(tsdb_.series(mn::backend_series(
        mn::kSuccessTotal, split.service(), src_name, dst_name)));
    keys.failure.push_back(tsdb_.series(mn::backend_series(
        mn::kFailureTotal, split.service(), src_name, dst_name)));
    keys.latency_success.push_back(tsdb_.histogram_series(mn::backend_series(
        mn::kLatencySuccess, split.service(), src_name, dst_name)));
    keys.latency_failure.push_back(tsdb_.histogram_series(mn::backend_series(
        mn::kLatencyFailure, split.service(), src_name, dst_name)));
    keys.latency_success_sum.push_back(tsdb_.series(mn::backend_series(
        mn::kLatencySuccessSum, split.service(), src_name, dst_name)));
    keys.inflight.push_back(tsdb_.series(mn::backend_series(
        mn::kInflight, split.service(), src_name, dst_name)));

    if (config_.export_introspection) {
      auto& registry = mesh_.registry(source_);
      const auto labels =
          mn::backend_labels(split.service(), src_name, dst_name);
      ManagedSplit::IntrospectionGauges gauges;
      gauges.weight = &registry.gauge("l3_backend_weight", labels);
      gauges.latency_p99 =
          &registry.gauge("l3_backend_latency_p99_ewma", labels);
      gauges.success_rate =
          &registry.gauge("l3_backend_success_rate_ewma", labels);
      gauges.rps = &registry.gauge("l3_backend_rps_ewma", labels);
      gauges.inflight = &registry.gauge("l3_backend_inflight_ewma", labels);
      managed->introspection.push_back(gauges);
    }
  }
  managed->last_weights = split.weights();
  managed_.push_back(std::move(managed));
}

void L3Controller::manage_all() {
  for (mesh::TrafficSplit* split : mesh_.splits_of_source(source_)) {
    bool already = false;
    for (const auto& m : managed_) {
      if (m->split == split) {
        already = true;
        break;
      }
    }
    if (!already) manage(*split);
  }
}

void L3Controller::start() {
  stop();
  task_ = mesh_.simulator().schedule_every(
      config_.control_interval, [this] { tick(); }, config_.control_interval);
}

void L3Controller::stop() { task_.cancel(); }

void L3Controller::tick() {
  ++ticks_;
  L3_OBS_COUNT(kControllerTicks, 1);
  double total_rps = 0.0;
  for (auto& managed : managed_) {
    {
      L3_OBS_SCOPE(obs_manage, kControllerManage);
      tick_split(*managed);
    }
    total_rps += managed->last_rps_sample;
  }
  L3_OBS_EVENT(kController, kControllerTick, mesh_.simulator().now(),
               static_cast<std::uint32_t>(managed_.size()), total_rps);
}

void L3Controller::tick_split(ManagedSplit& managed) {
  const SimTime now = mesh_.simulator().now();
  const SimDuration window = config_.query_window;
  const std::size_t n = managed.filters.size();

  // Phase 1 — fused gather: all TSDB reads for the split, one signal column
  // at a time. Every query is independent (per-series cursors, identical
  // results in any order), so walking column-wise is free to reorder them
  // relative to the old per-backend interleaving while producing the same
  // values; the filter arithmetic below still runs per backend in the
  // original order, keeping the outputs byte-identical.
  auto& g = managed.gather;
  g.resize(n);
  {
    L3_OBS_SCOPE(obs_gather, kControllerGather);
    const auto& keys = managed.keys;
    for (std::size_t i = 0; i < n; ++i) {
      g.rps[i] = tsdb_.rate(keys.requests[i], window, now);
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.succ_rate[i] = tsdb_.rate(keys.success[i], window, now);
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.fail_rate[i] = tsdb_.rate(keys.failure[i], window, now);
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.p99[i] =
          tsdb_.quantile(keys.latency_success[i], config_.quantile, window,
                         now);
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.inflight[i] = tsdb_.avg(keys.inflight[i], window, now);
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.latency_sum_rate[i] =
          tsdb_.rate(keys.latency_success_sum[i], window, now);
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.fail_p50[i] = tsdb_.quantile(keys.latency_failure[i], 0.50, window,
                                     now);
    }
  }

  // Phase 2 — per-backend filter updates from the gathered columns.
  managed.signals_scratch.assign(n, lb::BackendSignals{});
  std::vector<lb::BackendSignals>& signals = managed.signals_scratch;
  double total_rps_sample = 0.0;
  bool any_rps = false;
  double failure_latency_acc = 0.0;
  int failure_latency_n = 0;

  for (std::size_t i = 0; i < n; ++i) {
    BackendFilters& f = managed.filters[i];

    const auto& rps = g.rps[i];
    const auto& succ_rate = g.succ_rate[i];
    const auto& fail_rate = g.fail_rate[i];
    const auto& p99 = g.p99[i];
    const auto& inflight = g.inflight[i];
    const auto& latency_sum_rate = g.latency_sum_rate[i];
    const auto& fail_p50 = g.fail_p50[i];

    const bool have_data = rps.has_value() && *rps > 0.0;
    if (have_data) {
      f.last_data = now;
      f.rps.observe(*rps, now);
      total_rps_sample += *rps;
      any_rps = true;
      if (succ_rate && fail_rate) {
        const double total = *succ_rate + *fail_rate;
        if (total > 0.0) f.success.observe(*succ_rate / total, now);
      } else if (succ_rate) {
        f.success.observe(1.0, now);
      }
      if (p99) f.latency.observe(*p99, now);
      if (succ_rate && latency_sum_rate && *succ_rate > 0.0) {
        // mean = rate(latency_sum) / rate(success), Prometheus-style.
        f.mean_latency.observe(*latency_sum_rate / *succ_rate, now);
      }
      if (inflight) f.inflight.observe(std::max(0.0, *inflight), now);
      if (fail_p50) {
        f.failure_latency.observe(*fail_p50, now);
        failure_latency_acc += f.failure_latency.value();
        ++failure_latency_n;
      }
    } else if (now - f.last_data >= config_.staleness) {
      // §4 degraded-metrics semantics: for gaps SHORTER than the staleness
      // threshold, signals freeze at their last filtered value (a scrape
      // may legitimately lag by one interval and the last measurement is
      // the best guess); from the threshold onward — inclusive, so a 10 s
      // gap on a 5 s tick starts converging at 10 s, not 15 s — every tick
      // blends the defaults in until samples return.
      f.latency.converge_to_default(now);
      f.mean_latency.converge_to_default(now);
      f.success.converge_to_default(now);
      f.rps.converge_to_default(now);
      f.inflight.converge_to_default(now);
    }

    signals[i].latency_p99 = f.latency.value();
    signals[i].latency_mean = f.mean_latency.value();
    signals[i].success_rate = f.success.value();
    signals[i].rps = f.rps.value();
    signals[i].inflight = f.inflight.value();
  }

  if (any_rps) {
    managed.total_rps.observe(total_rps_sample, now);
    managed.last_rps_sample = total_rps_sample;
  }

  if (config_.dynamic_penalty && penalty_hook_ && failure_latency_n > 0) {
    penalty_hook_(failure_latency_acc / failure_latency_n);
  }

  lb::PolicyInput input;
  input.source = source_;
  std::vector<mesh::BackendRef>& refs = managed.refs_scratch;
  refs.clear();
  refs.reserve(managed.split->backend_count());
  for (const auto& b : managed.split->backends()) refs.push_back(b.ref);
  input.backends = refs;
  input.signals = signals;
  input.total_rps_ewma = managed.total_rps.value();
  input.total_rps_last = managed.last_rps_sample;

  lb::PolicyExplain explain;
  std::vector<std::uint64_t> weights = policy_->compute_explained(input, explain);
  L3_ASSERT(weights.size() == managed.split->backend_count());
  managed.last_weights = weights;

  if (active_) {
    mesh_.control_plane().apply(*managed.split, weights);
    L3_OBS_COUNT(kWeightUpdates, 1);
  }

  if (config_.journal_capacity > 0) {
    trace::DecisionEvent event;
    event.time = now;
    event.tick = ticks_;
    event.source_cluster = mesh_.cluster_names()[source_];
    event.service = managed.split->service();
    event.policy = std::string(policy_->name());
    event.applied = active_;
    event.total_rps_ewma = input.total_rps_ewma;
    event.total_rps_last = input.total_rps_last;
    event.backends.reserve(refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      trace::BackendDecision b;
      b.dst_cluster = mesh_.cluster_names()[refs[i].cluster];
      b.latency_p99 = signals[i].latency_p99;
      b.success_rate = signals[i].success_rate;
      b.rps = signals[i].rps;
      b.inflight = signals[i].inflight;
      b.raw_weight = i < explain.raw_weights.size() ? explain.raw_weights[i]
                                                    : 0.0;
      b.rate_controlled_weight =
          i < explain.rate_controlled.size() ? explain.rate_controlled[i] : 0.0;
      b.applied_weight = weights[i];
      event.backends.push_back(std::move(b));
    }
    journal_.record(std::move(event));
  }

  if (config_.export_introspection) {
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const auto& gauges = managed.introspection[i];
      gauges.weight->set(static_cast<double>(weights[i]));
      gauges.latency_p99->set(signals[i].latency_p99);
      gauges.success_rate->set(signals[i].success_rate);
      gauges.rps->set(signals[i].rps);
      gauges.inflight->set(signals[i].inflight);
    }
  }
}

std::vector<SplitStateView> L3Controller::snapshot() const {
  std::vector<SplitStateView> out;
  out.reserve(managed_.size());
  for (const auto& managed : managed_) {
    SplitStateView view;
    view.service = managed->split->service();
    view.total_rps_ewma = managed->total_rps.value();
    view.total_rps_last = managed->last_rps_sample;
    const auto backends = managed->split->backends();
    for (std::size_t i = 0; i < managed->filters.size(); ++i) {
      const BackendFilters& f = managed->filters[i];
      BackendStateView b;
      b.dst_cluster = mesh_.cluster_names()[backends[i].ref.cluster];
      b.latency_p99 = f.latency.value();
      b.success_rate = f.success.value();
      b.rps = f.rps.value();
      b.inflight = f.inflight.value();
      b.weight = i < managed->last_weights.size() ? managed->last_weights[i]
                                                  : backends[i].weight;
      view.backends.push_back(std::move(b));
    }
    out.push_back(std::move(view));
  }
  return out;
}

}  // namespace l3::core
