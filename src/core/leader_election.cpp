#include "l3/core/leader_election.h"

namespace l3::core {

LeaderElection::LeaderElection(sim::Simulator& sim, SimDuration lease_duration,
                               SimDuration renew_interval)
    : sim_(sim),
      lease_duration_(lease_duration),
      renew_interval_(renew_interval) {
  L3_EXPECTS(lease_duration > 0.0);
  L3_EXPECTS(renew_interval > 0.0);
  L3_EXPECTS(renew_interval <= lease_duration);
}

std::size_t LeaderElection::add_candidate(std::string name,
                                          Callbacks callbacks) {
  candidates_.push_back(Candidate{std::move(name), std::move(callbacks), true});
  return candidates_.size() - 1;
}

void LeaderElection::start() {
  stop();
  task_ = sim_.schedule_every(renew_interval_, [this] { election_round(); });
}

void LeaderElection::set_alive(std::size_t candidate, bool alive) {
  L3_EXPECTS(candidate < candidates_.size());
  candidates_[candidate].alive = alive;
}

void LeaderElection::depose_current() {
  if (leader_ == npos) return;
  const std::size_t old = leader_;
  leader_ = npos;
  if (candidates_[old].callbacks.on_deposed) {
    candidates_[old].callbacks.on_deposed();
  }
}

void LeaderElection::election_round() {
  const SimTime now = sim_.now();

  // Current leader renews its lease if still alive.
  if (leader_ != npos) {
    if (candidates_[leader_].alive) {
      lease_expiry_ = now + lease_duration_;
      return;
    }
    // Dead leader: the lease must expire before anyone else may acquire.
    if (now < lease_expiry_) return;
    depose_current();
  }

  // Vacant (or just expired) lease: first alive candidate acquires it.
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (!candidates_[i].alive) continue;
    leader_ = i;
    lease_expiry_ = now + lease_duration_;
    ++transitions_;
    if (candidates_[i].callbacks.on_elected) {
      candidates_[i].callbacks.on_elected();
    }
    return;
  }
}

}  // namespace l3::core
