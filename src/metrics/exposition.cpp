#include "l3/metrics/exposition.h"

#include <ostream>
#include <sstream>

namespace l3::metrics {
namespace {

/// Splits a stored series key `name{a=1,b=2}` into name and label body.
std::pair<std::string, std::string> split_key(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  std::string labels = key.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {key.substr(0, brace), labels};
}

/// Re-renders stored labels (`a=1,b=2`) with Prometheus quoting, optionally
/// appending one extra label.
std::string render_labels(const std::string& body, const std::string& extra) {
  std::ostringstream out;
  bool first = true;
  auto emit = [&](const std::string& kv) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) return;
    out << (first ? "" : ",") << kv.substr(0, eq) << "=\""
        << kv.substr(eq + 1) << "\"";
    first = false;
  };
  std::string field;
  std::istringstream ss(body);
  while (std::getline(ss, field, ',')) {
    if (!field.empty()) emit(field);
  }
  if (!extra.empty()) {
    out << (first ? "" : ",") << extra;
    first = false;
  }
  return first ? "" : "{" + out.str() + "}";
}

}  // namespace

void write_exposition(const Registry& registry, std::ostream& os) {
  registry.for_each(
      [&](const std::string& key, double value) {
        const auto [name, labels] = split_key(key);
        os << name << render_labels(labels, "") << ' ' << value << '\n';
      },
      [&](const std::string& key, double value) {
        const auto [name, labels] = split_key(key);
        os << name << render_labels(labels, "") << ' ' << value << '\n';
      },
      [&](const std::string& key, const HistogramSeries& histogram) {
        const auto [name, labels] = split_key(key);
        const auto cumulative = histogram.cumulative_counts();
        const auto& bounds = histogram.bounds();
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          std::ostringstream le;
          le << "le=\"" << bounds[i] << "\"";
          os << name << "_bucket" << render_labels(labels, le.str()) << ' '
             << cumulative[i] << '\n';
        }
        os << name << "_bucket" << render_labels(labels, "le=\"+Inf\"") << ' '
           << cumulative.back() << '\n';
        os << name << "_count" << render_labels(labels, "") << ' '
           << histogram.total_count() << '\n';
      });
}

std::string exposition_text(const Registry& registry) {
  std::ostringstream os;
  write_exposition(registry, os);
  return os.str();
}

}  // namespace l3::metrics
