#include "l3/metrics/exposition.h"

#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace l3::metrics {
namespace {

/// Splits a stored series key `name{a=1,b=2}` into name and label body.
std::pair<std::string, std::string> split_key(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  std::string labels = key.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {key.substr(0, brace), labels};
}

/// Escapes a label VALUE per the Prometheus text exposition format 0.0.4:
/// backslash, double-quote, and line feed must be backslash-escaped inside
/// the quoted value (the spec escapes nothing else).
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Re-renders stored labels (`a=1,b=2`) with Prometheus quoting, optionally
/// appending one extra label.
std::string render_labels(const std::string& body, const std::string& extra) {
  std::ostringstream out;
  bool first = true;
  auto emit = [&](const std::string& kv) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) return;
    out << (first ? "" : ",") << kv.substr(0, eq) << "=\""
        << escape_label_value(std::string_view(kv).substr(eq + 1)) << "\"";
    first = false;
  };
  std::string field;
  std::istringstream ss(body);
  while (std::getline(ss, field, ',')) {
    if (!field.empty()) emit(field);
  }
  if (!extra.empty()) {
    out << (first ? "" : ",") << extra;
    first = false;
  }
  return first ? "" : "{" + out.str() + "}";
}

/// Emits a `# TYPE` comment the first time a metric family appears.
void emit_type(std::ostream& os, std::set<std::string>& seen,
               const std::string& family, const char* type) {
  if (seen.insert(family).second) {
    os << "# TYPE " << family << ' ' << type << '\n';
  }
}

constexpr std::string_view kSumSuffix = "_sum";

}  // namespace

void write_exposition(const Registry& registry, std::ostream& os) {
  // Pass 1: index histogram keys so `<name>_sum` counters can be folded
  // into their histogram family instead of appearing as standalone
  // counters, and collect counter values for the sum lookup.
  std::set<std::string> histogram_keys;
  std::map<std::string, double> counter_values;
  registry.for_each([&](const std::string& key,
                        double value) { counter_values.emplace(key, value); },
                    [](const std::string&, double) {},
                    [&](const std::string& key, const HistogramSeries&) {
                      histogram_keys.insert(key);
                    });

  /// The histogram key a `<name>_sum` counter belongs to, or "" when it is
  /// an ordinary counter.
  const auto histogram_of_sum = [&](const std::string& key) -> std::string {
    const auto [name, labels] = split_key(key);
    if (name.size() <= kSumSuffix.size() ||
        name.compare(name.size() - kSumSuffix.size(), kSumSuffix.size(),
                     kSumSuffix) != 0) {
      return "";
    }
    const std::string base = name.substr(0, name.size() - kSumSuffix.size());
    const std::string histogram_key =
        labels.empty() ? base : base + "{" + labels + "}";
    return histogram_keys.count(histogram_key) > 0 ? histogram_key : "";
  };

  std::set<std::string> typed;
  registry.for_each(
      [&](const std::string& key, double value) {
        if (!histogram_of_sum(key).empty()) return;  // folded into histogram
        const auto [name, labels] = split_key(key);
        emit_type(os, typed, name, "counter");
        os << name << render_labels(labels, "") << ' ' << value << '\n';
      },
      [&](const std::string& key, double value) {
        const auto [name, labels] = split_key(key);
        emit_type(os, typed, name, "gauge");
        os << name << render_labels(labels, "") << ' ' << value << '\n';
      },
      [&](const std::string& key, const HistogramSeries& histogram) {
        const auto [name, labels] = split_key(key);
        emit_type(os, typed, name, "histogram");
        const auto cumulative = histogram.cumulative_counts();
        const auto& bounds = histogram.bounds();
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          std::ostringstream le;
          le << "le=\"" << bounds[i] << "\"";
          os << name << "_bucket" << render_labels(labels, le.str()) << ' '
             << cumulative[i] << '\n';
        }
        os << name << "_bucket" << render_labels(labels, "le=\"+Inf\"") << ' '
           << cumulative.back() << '\n';
        const std::string sum_key = labels.empty()
                                        ? name + std::string(kSumSuffix)
                                        : name + std::string(kSumSuffix) +
                                              "{" + labels + "}";
        const auto sum_it = counter_values.find(sum_key);
        if (sum_it != counter_values.end()) {
          os << name << "_sum" << render_labels(labels, "") << ' '
             << sum_it->second << '\n';
        }
        os << name << "_count" << render_labels(labels, "") << ' '
           << histogram.total_count() << '\n';
      });
}

std::string exposition_text(const Registry& registry) {
  std::ostringstream os;
  write_exposition(registry, os);
  return os.str();
}

}  // namespace l3::metrics
