#include "l3/metrics/obs_audit.h"

#include <string>

namespace l3::metrics {
namespace {

Labels with_context(std::string_view key, std::string_view value,
                    std::string_view cluster, std::string_view policy) {
  Labels labels;
  labels.emplace_back(std::string(key), std::string(value));
  labels.emplace_back("cluster", std::string(cluster));
  labels.emplace_back("policy", std::string(policy));
  return labels;
}

}  // namespace

void publish_audit(const obs::Snapshot& snapshot, Registry& registry,
                   std::string_view cluster, std::string_view policy) {
  for (const auto& scope : snapshot.scopes) {
    if (scope.count == 0) continue;
    const auto labels = with_context("subsystem", scope.name, cluster, policy);
    registry.counter("l3_obs_scope_invocations_total", labels)
        .add(static_cast<double>(scope.count));
    registry.counter("l3_obs_scope_wall_seconds_total", labels)
        .add(scope.wall_ns_total * 1e-9);
    registry.gauge("l3_obs_scope_wall_p99_seconds", labels)
        .set(scope.wall_ns.p99 * 1e-9);
  }
  for (const auto& counter : snapshot.counters) {
    if (counter.value == 0) continue;
    registry.counter("l3_obs_rt_counter_total",
                     with_context("name", counter.name, cluster, policy))
        .add(static_cast<double>(counter.value));
  }
  for (const auto& gauge : snapshot.gauges) {
    registry.gauge("l3_obs_rt_gauge",
                   with_context("name", gauge.name, cluster, policy))
        .set(gauge.value);
  }
  for (const auto& ring : snapshot.rings) {
    if (ring.recorded == 0) continue;
    const auto labels = with_context("domain", ring.domain, cluster, policy);
    registry.counter("l3_obs_ring_events_total", labels)
        .add(static_cast<double>(ring.recorded));
    registry.counter("l3_obs_ring_dropped_total", labels)
        .add(static_cast<double>(ring.dropped));
  }
}

}  // namespace l3::metrics
