#include "l3/metrics/tsdb.h"

#include "l3/common/assert.h"
#include "l3/common/histogram.h"

#include <algorithm>
#include <iterator>

namespace l3::metrics {
namespace {

/// First and last sample index within [now - window, now], or nullopt if
/// fewer than `min_samples` fall inside.
template <typename Deque>
std::optional<std::pair<std::size_t, std::size_t>> window_span(
    const Deque& samples, SimDuration window, SimTime now,
    std::size_t min_samples) {
  const SimTime start = now - window;
  std::size_t first = samples.size();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].t >= start && samples[i].t <= now) {
      first = i;
      break;
    }
  }
  if (first == samples.size()) return std::nullopt;
  std::size_t last = first;
  for (std::size_t i = samples.size(); i-- > first;) {
    if (samples[i].t <= now) {
      last = i;
      break;
    }
  }
  if (last - first + 1 < min_samples) return std::nullopt;
  return std::make_pair(first, last);
}

}  // namespace

void TimeSeriesDb::append(const std::string& key, SimTime t, double value) {
  auto& series = scalars_[key];
  L3_EXPECTS(series.empty() || t >= series.back().t);
  series.push_back({t, value});
  while (!series.empty() && series.front().t < t - retention_) {
    series.pop_front();
  }
}

void TimeSeriesDb::append_histogram(const std::string& key, SimTime t,
                                    const std::vector<double>& bounds,
                                    std::vector<double> cumulative_counts) {
  auto& series = histograms_[key];
  if (series.bounds.empty()) {
    series.bounds = bounds;
  } else {
    L3_EXPECTS(series.bounds == bounds);
  }
  L3_EXPECTS(cumulative_counts.size() == bounds.size() + 1);
  L3_EXPECTS(series.samples.empty() || t >= series.samples.back().t);
  series.samples.push_back({t, std::move(cumulative_counts)});
  while (!series.samples.empty() &&
         series.samples.front().t < t - retention_) {
    series.samples.pop_front();
  }
}

void TimeSeriesDb::compact(SimTime now) {
  const SimTime cutoff = now - retention_;
  for (auto it = scalars_.begin(); it != scalars_.end();) {
    auto& series = it->second;
    while (!series.empty() && series.front().t < cutoff) {
      series.pop_front();
    }
    it = series.empty() ? scalars_.erase(it) : std::next(it);
  }
  for (auto it = histograms_.begin(); it != histograms_.end();) {
    auto& series = it->second.samples;
    while (!series.empty() && series.front().t < cutoff) {
      series.pop_front();
    }
    it = series.empty() ? histograms_.erase(it) : std::next(it);
  }
}

std::size_t TimeSeriesDb::sample_count(const std::string& key) const {
  const auto it = scalars_.find(key);
  return it == scalars_.end() ? 0 : it->second.size();
}

std::size_t TimeSeriesDb::histogram_sample_count(const std::string& key) const {
  const auto it = histograms_.find(key);
  return it == histograms_.end() ? 0 : it->second.samples.size();
}

std::optional<double> TimeSeriesDb::rate(const std::string& key,
                                         SimDuration window,
                                         SimTime now) const {
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return std::nullopt;
  const auto span = window_span(it->second, window, now, 2);
  if (!span) return std::nullopt;
  const auto& first = it->second[span->first];
  const auto& last = it->second[span->second];
  const double elapsed = last.t - first.t;
  if (elapsed <= 0.0) return std::nullopt;
  return (last.v - first.v) / elapsed;
}

std::optional<double> TimeSeriesDb::increase(const std::string& key,
                                             SimDuration window,
                                             SimTime now) const {
  const auto r = rate(key, window, now);
  if (!r) return std::nullopt;
  return *r * window;
}

std::optional<double> TimeSeriesDb::avg(const std::string& key,
                                        SimDuration window,
                                        SimTime now) const {
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return std::nullopt;
  const auto span = window_span(it->second, window, now, 1);
  if (!span) return std::nullopt;
  double sum = 0.0;
  for (std::size_t i = span->first; i <= span->second; ++i) {
    sum += it->second[i].v;
  }
  return sum / static_cast<double>(span->second - span->first + 1);
}

std::optional<double> TimeSeriesDb::last(const std::string& key,
                                         SimDuration window,
                                         SimTime now) const {
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return std::nullopt;
  const auto span = window_span(it->second, window, now, 1);
  if (!span) return std::nullopt;
  return it->second[span->second].v;
}

std::optional<double> TimeSeriesDb::quantile(const std::string& key, double q,
                                             SimDuration window,
                                             SimTime now) const {
  const auto it = histograms_.find(key);
  if (it == histograms_.end()) return std::nullopt;
  const auto& series = it->second;
  const auto span = window_span(series.samples, window, now, 2);
  if (!span) return std::nullopt;
  const auto& first = series.samples[span->first];
  const auto& last = series.samples[span->second];
  std::vector<double> delta(last.cumulative.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = last.cumulative[i] - first.cumulative[i];
  }
  if (delta.back() <= 0.0) return std::nullopt;  // no requests in window
  return histogram_quantile(series.bounds, delta, q);
}

}  // namespace l3::metrics
