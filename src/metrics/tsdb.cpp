#include "l3/metrics/tsdb.h"

#include "l3/common/assert.h"
#include "l3/common/histogram.h"
#include "l3/obs/recorder.h"

#include <algorithm>

namespace l3::metrics {
namespace {

/// First logical index in [0, count) with time_at(i) >= start (times are
/// ordered, so this is a lower bound by binary search).
template <typename GetTime>
std::size_t lower_bound_time(std::size_t count, GetTime time_at,
                             SimTime start) {
  std::size_t lo = 0;
  std::size_t hi = count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (time_at(mid) < start) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First logical index with time_at(i) > now (one past the window end).
template <typename GetTime>
std::size_t upper_bound_time(std::size_t count, GetTime time_at, SimTime now) {
  std::size_t lo = 0;
  std::size_t hi = count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (time_at(mid) <= now) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

template <typename GetTime>
std::optional<std::pair<std::size_t, std::size_t>> TimeSeriesDb::fold_window(
    WindowCursor& cursor, std::size_t count, std::uint64_t base,
    GetTime time_at, SimDuration window, SimTime now,
    std::size_t min_samples) const {
  const SimTime start = now - window;
  std::uint64_t first;
  std::uint64_t end;
  if (cursor.window == window && now >= cursor.last_now) {
    // Same window, time moving forward: the cached span can only grow at
    // the back (new appends) and shrink at the front (samples aging past
    // `start`) — advance, don't search. Retention may have popped samples
    // the cursor still points at; clamping to `base` keeps the sequences
    // inside the ring (the popped samples were older, i.e. before `first`).
    first = std::max(cursor.first, base);
    end = std::max(cursor.end, first);
    ++cursor_hits_;
  } else {
    first = base + lower_bound_time(count, time_at, start);
    end = base + upper_bound_time(count, time_at, now);
    ++cursor_rebuilds_;
  }
  while (first - base < count && time_at(first - base) < start) ++first;
  if (end < first) end = first;
  while (end - base < count && time_at(end - base) <= now) ++end;
  cursor.window = window;
  cursor.last_now = now;
  cursor.first = first;
  cursor.end = end;
  if (end - first < min_samples) return std::nullopt;
  return std::make_pair(static_cast<std::size_t>(first - base),
                        static_cast<std::size_t>(end - base - 1));
}

SeriesId TimeSeriesDb::series(std::string_view name) {
  const auto it = scalar_index_.find(name);
  if (it != scalar_index_.end()) return SeriesId(it->second);
  const auto index = static_cast<std::uint32_t>(scalars_.size());
  L3_EXPECTS(index != SeriesId::kInvalid);
  scalars_.push_back(ScalarSeries{std::string(name), {}, {}});
  scalar_index_.emplace(std::string(name), index);
  return SeriesId(index);
}

HistogramId TimeSeriesDb::histogram_series(std::string_view name) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return HistogramId(it->second);
  const auto index = static_cast<std::uint32_t>(histograms_.size());
  L3_EXPECTS(index != HistogramId::kInvalid);
  histograms_.push_back(HistoSeries{std::string(name), {}, false, {}, {}, {}});
  histogram_index_.emplace(std::string(name), index);
  return HistogramId(index);
}

SeriesId TimeSeriesDb::find_series(std::string_view name) const {
  const auto it = scalar_index_.find(name);
  return it == scalar_index_.end() ? SeriesId() : SeriesId(it->second);
}

HistogramId TimeSeriesDb::find_histogram_series(std::string_view name) const {
  const auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? HistogramId()
                                      : HistogramId(it->second);
}

void TimeSeriesDb::append(SeriesId id, SimTime t, double value) {
  L3_OBS_SCOPE_SAMPLED(obs_append, kTsdbAppend);
  L3_OBS_COUNT(kTsdbSamples, 1);
  L3_EXPECTS(id.valid() && id.index_ < scalars_.size());
  auto& samples = scalars_[id.index_].samples;
  L3_EXPECTS(samples.empty() || t >= samples.back().t);
  if (samples.empty()) {
    ++nonempty_scalars_;
    note_new_front(t);
  }
  samples.push_back({t, value});
  // Trim-on-append: the just-pushed sample (t >= t - retention) survives,
  // so this can never empty the series.
  while (samples.front().t < t - retention_) samples.pop_front();
}

void TimeSeriesDb::set_histogram_bounds(HistogramId id,
                                        std::span<const double> bounds) {
  L3_EXPECTS(id.valid() && id.index_ < histograms_.size());
  auto& series = histograms_[id.index_];
  if (!series.bounds_set) {
    series.bounds.assign(bounds.begin(), bounds.end());
    series.bounds_set = true;
    return;
  }
  L3_EXPECTS(std::equal(series.bounds.begin(), series.bounds.end(),
                        bounds.begin(), bounds.end()));
}

std::span<const double> TimeSeriesDb::histogram_bounds(HistogramId id) const {
  L3_EXPECTS(id.valid() && id.index_ < histograms_.size());
  return histograms_[id.index_].bounds;
}

void TimeSeriesDb::append_histogram(HistogramId id, SimTime t,
                                    std::span<const double> cumulative_counts) {
  L3_OBS_SCOPE_SAMPLED(obs_append, kTsdbAppend);
  L3_OBS_COUNT(kTsdbSamples, 1);
  L3_EXPECTS(id.valid() && id.index_ < histograms_.size());
  auto& series = histograms_[id.index_];
  L3_EXPECTS(series.bounds_set);
  L3_EXPECTS(cumulative_counts.size() == series.bounds.size() + 1);
  L3_EXPECTS(series.times.empty() || t >= series.times.back());
  if (series.times.empty()) {
    ++nonempty_histograms_;
    note_new_front(t);
  }
  series.times.push_back(t);
  series.rows.push_back(cumulative_counts);
  while (series.times.front() < t - retention_) {
    series.times.pop_front();
    series.rows.pop_front();
  }
}

void TimeSeriesDb::compact(SimTime now) {
  const SimTime cutoff = now - retention_;
  // Fast path: nothing in the store can be older than the cutoff. The obs
  // scope covers the slow path only, so the profile reports real compaction
  // work rather than no-op calls.
  if (oldest_sample_ >= cutoff) return;
  L3_OBS_SCOPE(obs_compact, kTsdbCompact);

  SimTime oldest = kNoSamples;
  for (auto& series : scalars_) {
    auto& samples = series.samples;
    if (samples.empty()) continue;
    if (samples.front().t < cutoff) {  // already-fresh series skip here
      while (!samples.empty() && samples.front().t < cutoff) {
        samples.pop_front();
      }
      if (samples.empty()) {
        --nonempty_scalars_;
        continue;
      }
    }
    oldest = std::min(oldest, samples.front().t);
  }
  for (auto& series : histograms_) {
    auto& times = series.times;
    if (times.empty()) continue;
    if (times.front() < cutoff) {
      while (!times.empty() && times.front() < cutoff) {
        times.pop_front();
        series.rows.pop_front();
      }
      if (times.empty()) {
        --nonempty_histograms_;
        continue;
      }
    }
    oldest = std::min(oldest, times.front());
  }
  oldest_sample_ = oldest;
  L3_OBS_EVENT(kMetrics, kCompact, now, 0,
               static_cast<double>(nonempty_scalars_ + nonempty_histograms_));
}

std::size_t TimeSeriesDb::sample_count(SeriesId id) const {
  if (!id.valid()) return 0;
  L3_EXPECTS(id.index_ < scalars_.size());
  return scalars_[id.index_].samples.size();
}

std::size_t TimeSeriesDb::histogram_sample_count(HistogramId id) const {
  if (!id.valid()) return 0;
  L3_EXPECTS(id.index_ < histograms_.size());
  return histograms_[id.index_].times.size();
}

std::optional<double> TimeSeriesDb::rate(SeriesId id, SimDuration window,
                                         SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < scalars_.size());
  const auto& series = scalars_[id.index_];
  const auto& samples = series.samples;
  const auto span = fold_window(
      series.cursor, samples.size(), samples.popped(),
      [&](std::size_t i) { return samples[i].t; }, window, now, 2);
  if (!span) return std::nullopt;
  const auto& first = samples[span->first];
  const auto& last = samples[span->second];
  const double elapsed = last.t - first.t;
  if (elapsed <= 0.0) return std::nullopt;
  return (last.v - first.v) / elapsed;
}

std::optional<double> TimeSeriesDb::increase(SeriesId id, SimDuration window,
                                             SimTime now) const {
  const auto r = rate(id, window, now);
  if (!r) return std::nullopt;
  return *r * window;
}

std::optional<double> TimeSeriesDb::avg(SeriesId id, SimDuration window,
                                        SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < scalars_.size());
  const auto& series = scalars_[id.index_];
  const auto& samples = series.samples;
  const auto span = fold_window(
      series.cursor, samples.size(), samples.popped(),
      [&](std::size_t i) { return samples[i].t; }, window, now, 1);
  if (!span) return std::nullopt;
  // Summed over the in-window samples in time order, NOT kept as a running
  // total updated on append: incremental add/subtract would change the
  // floating-point rounding and break byte-identical outputs. The window
  // holds a handful of samples (10 s / 5 s scrape), so the loop is short.
  double sum = 0.0;
  for (std::size_t i = span->first; i <= span->second; ++i) {
    sum += samples[i].v;
  }
  return sum / static_cast<double>(span->second - span->first + 1);
}

std::optional<double> TimeSeriesDb::last(SeriesId id, SimDuration window,
                                         SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < scalars_.size());
  const auto& series = scalars_[id.index_];
  const auto& samples = series.samples;
  const auto span = fold_window(
      series.cursor, samples.size(), samples.popped(),
      [&](std::size_t i) { return samples[i].t; }, window, now, 1);
  if (!span) return std::nullopt;
  return samples[span->second].v;
}

std::optional<double> TimeSeriesDb::quantile(HistogramId id, double q,
                                             SimDuration window,
                                             SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < histograms_.size());
  const auto& series = histograms_[id.index_];
  const auto& times = series.times;
  const auto span = fold_window(
      series.cursor, times.size(), times.popped(),
      [&](std::size_t i) { return times[i]; }, window, now, 2);
  if (!span) return std::nullopt;
  const std::span<const double> first = series.rows[span->first];
  const std::span<const double> last = series.rows[span->second];
  // Element-wise delta of the window's endpoint rows, exactly as before —
  // only the destination changed from a fresh vector to reused scratch.
  delta_scratch_.resize(last.size());
  for (std::size_t i = 0; i < last.size(); ++i) {
    delta_scratch_[i] = last[i] - first[i];
  }
  if (delta_scratch_.back() <= 0.0) return std::nullopt;  // no requests
  return histogram_quantile(series.bounds, delta_scratch_, q);
}

}  // namespace l3::metrics
