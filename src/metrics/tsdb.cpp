#include "l3/metrics/tsdb.h"

#include "l3/common/assert.h"
#include "l3/common/histogram.h"
#include "l3/obs/recorder.h"

#include <algorithm>

namespace l3::metrics {
namespace {

/// First logical index in `samples` with t >= start (samples are
/// time-ordered, so this is a lower bound by binary search).
template <typename Ring>
std::size_t lower_bound_time(const Ring& samples, SimTime start) {
  std::size_t lo = 0;
  std::size_t hi = samples.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (samples[mid].t < start) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First logical index with t > now (i.e. one past the window end).
template <typename Ring>
std::size_t upper_bound_time(const Ring& samples, SimTime now) {
  std::size_t lo = 0;
  std::size_t hi = samples.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (samples[mid].t <= now) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First and last sample index within [now - window, now], or nullopt if
/// fewer than `min_samples` fall inside.
template <typename Ring>
std::optional<std::pair<std::size_t, std::size_t>> window_span(
    const Ring& samples, SimDuration window, SimTime now,
    std::size_t min_samples) {
  const std::size_t first = lower_bound_time(samples, now - window);
  const std::size_t end = upper_bound_time(samples, now);
  if (end <= first || end - first < min_samples) return std::nullopt;
  return std::make_pair(first, end - 1);
}

}  // namespace

SeriesId TimeSeriesDb::series(std::string_view name) {
  const auto it = scalar_index_.find(name);
  if (it != scalar_index_.end()) return SeriesId(it->second);
  const auto index = static_cast<std::uint32_t>(scalars_.size());
  L3_EXPECTS(index != SeriesId::kInvalid);
  scalars_.push_back(ScalarSeries{std::string(name), {}});
  scalar_index_.emplace(std::string(name), index);
  return SeriesId(index);
}

HistogramId TimeSeriesDb::histogram_series(std::string_view name) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return HistogramId(it->second);
  const auto index = static_cast<std::uint32_t>(histograms_.size());
  L3_EXPECTS(index != HistogramId::kInvalid);
  histograms_.push_back(HistoSeries{std::string(name), {}, {}});
  histogram_index_.emplace(std::string(name), index);
  return HistogramId(index);
}

SeriesId TimeSeriesDb::find_series(std::string_view name) const {
  const auto it = scalar_index_.find(name);
  return it == scalar_index_.end() ? SeriesId() : SeriesId(it->second);
}

HistogramId TimeSeriesDb::find_histogram_series(std::string_view name) const {
  const auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? HistogramId()
                                      : HistogramId(it->second);
}

void TimeSeriesDb::append(SeriesId id, SimTime t, double value) {
  L3_OBS_SCOPE_SAMPLED(obs_append, kTsdbAppend);
  L3_OBS_COUNT(kTsdbSamples, 1);
  L3_EXPECTS(id.valid() && id.index_ < scalars_.size());
  auto& samples = scalars_[id.index_].samples;
  L3_EXPECTS(samples.empty() || t >= samples.back().t);
  if (samples.empty()) {
    ++nonempty_scalars_;
    note_new_front(t);
  }
  samples.push_back({t, value});
  // Trim-on-append: the just-pushed sample (t >= t - retention) survives,
  // so this can never empty the series.
  while (samples.front().t < t - retention_) samples.pop_front();
}

void TimeSeriesDb::append_histogram(HistogramId id, SimTime t,
                                    const std::vector<double>& bounds,
                                    std::vector<double> cumulative_counts) {
  L3_OBS_SCOPE_SAMPLED(obs_append, kTsdbAppend);
  L3_OBS_COUNT(kTsdbSamples, 1);
  L3_EXPECTS(id.valid() && id.index_ < histograms_.size());
  auto& series = histograms_[id.index_];
  if (series.bounds.empty()) {
    series.bounds = bounds;
  } else {
    L3_EXPECTS(series.bounds == bounds);
  }
  L3_EXPECTS(cumulative_counts.size() == bounds.size() + 1);
  L3_EXPECTS(series.samples.empty() || t >= series.samples.back().t);
  if (series.samples.empty()) {
    ++nonempty_histograms_;
    note_new_front(t);
  }
  series.samples.push_back({t, std::move(cumulative_counts)});
  while (series.samples.front().t < t - retention_) {
    series.samples.pop_front();
  }
}

void TimeSeriesDb::compact(SimTime now) {
  const SimTime cutoff = now - retention_;
  // Fast path: nothing in the store can be older than the cutoff. The obs
  // scope covers the slow path only, so the profile reports real compaction
  // work rather than no-op calls.
  if (oldest_sample_ >= cutoff) return;
  L3_OBS_SCOPE(obs_compact, kTsdbCompact);

  SimTime oldest = kNoSamples;
  for (auto& series : scalars_) {
    auto& samples = series.samples;
    if (samples.empty()) continue;
    if (samples.front().t < cutoff) {  // already-fresh series skip here
      while (!samples.empty() && samples.front().t < cutoff) {
        samples.pop_front();
      }
      if (samples.empty()) {
        --nonempty_scalars_;
        continue;
      }
    }
    oldest = std::min(oldest, samples.front().t);
  }
  for (auto& series : histograms_) {
    auto& samples = series.samples;
    if (samples.empty()) continue;
    if (samples.front().t < cutoff) {
      while (!samples.empty() && samples.front().t < cutoff) {
        samples.pop_front();
      }
      if (samples.empty()) {
        --nonempty_histograms_;
        continue;
      }
    }
    oldest = std::min(oldest, samples.front().t);
  }
  oldest_sample_ = oldest;
  L3_OBS_EVENT(kMetrics, kCompact, now, 0,
               static_cast<double>(nonempty_scalars_ + nonempty_histograms_));
}

std::size_t TimeSeriesDb::sample_count(SeriesId id) const {
  if (!id.valid()) return 0;
  L3_EXPECTS(id.index_ < scalars_.size());
  return scalars_[id.index_].samples.size();
}

std::size_t TimeSeriesDb::histogram_sample_count(HistogramId id) const {
  if (!id.valid()) return 0;
  L3_EXPECTS(id.index_ < histograms_.size());
  return histograms_[id.index_].samples.size();
}

std::optional<double> TimeSeriesDb::rate(SeriesId id, SimDuration window,
                                         SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < scalars_.size());
  const auto& samples = scalars_[id.index_].samples;
  const auto span = window_span(samples, window, now, 2);
  if (!span) return std::nullopt;
  const auto& first = samples[span->first];
  const auto& last = samples[span->second];
  const double elapsed = last.t - first.t;
  if (elapsed <= 0.0) return std::nullopt;
  return (last.v - first.v) / elapsed;
}

std::optional<double> TimeSeriesDb::increase(SeriesId id, SimDuration window,
                                             SimTime now) const {
  const auto r = rate(id, window, now);
  if (!r) return std::nullopt;
  return *r * window;
}

std::optional<double> TimeSeriesDb::avg(SeriesId id, SimDuration window,
                                        SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < scalars_.size());
  const auto& samples = scalars_[id.index_].samples;
  const auto span = window_span(samples, window, now, 1);
  if (!span) return std::nullopt;
  double sum = 0.0;
  for (std::size_t i = span->first; i <= span->second; ++i) {
    sum += samples[i].v;
  }
  return sum / static_cast<double>(span->second - span->first + 1);
}

std::optional<double> TimeSeriesDb::last(SeriesId id, SimDuration window,
                                         SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < scalars_.size());
  const auto& samples = scalars_[id.index_].samples;
  const auto span = window_span(samples, window, now, 1);
  if (!span) return std::nullopt;
  return samples[span->second].v;
}

std::optional<double> TimeSeriesDb::quantile(HistogramId id, double q,
                                             SimDuration window,
                                             SimTime now) const {
  if (!id.valid()) return std::nullopt;
  L3_EXPECTS(id.index_ < histograms_.size());
  const auto& series = histograms_[id.index_];
  const auto span = window_span(series.samples, window, now, 2);
  if (!span) return std::nullopt;
  const auto& first = series.samples[span->first];
  const auto& last = series.samples[span->second];
  std::vector<double> delta(last.cumulative.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = last.cumulative[i] - first.cumulative[i];
  }
  if (delta.back() <= 0.0) return std::nullopt;  // no requests in window
  return histogram_quantile(series.bounds, delta, q);
}

}  // namespace l3::metrics
