#include "l3/metrics/registry.h"

#include <algorithm>

namespace l3::metrics {

std::string series_key(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

Counter& Registry::counter(const std::string& name, Labels labels) {
  auto key = series_key(name, std::move(labels));
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(std::move(key), std::make_unique<Counter>()).first;
    ++version_;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  auto key = series_key(name, std::move(labels));
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::move(key), std::make_unique<Gauge>()).first;
    ++version_;
  }
  return *it->second;
}

HistogramSeries& Registry::histogram(const std::string& name, Labels labels,
                                     const std::vector<double>* bounds) {
  auto key = series_key(name, std::move(labels));
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    auto series = std::make_unique<HistogramSeries>(
        bounds ? *bounds : FixedBucketHistogram::default_latency_bounds());
    it = histograms_.emplace(std::move(key), std::move(series)).first;
    ++version_;
  }
  return *it->second;
}

}  // namespace l3::metrics
