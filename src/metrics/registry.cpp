#include "l3/metrics/registry.h"

#include <algorithm>

namespace l3::metrics {

std::string series_key(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::size_t len = name.size() + 2;
  for (const auto& [k, v] : labels) len += k.size() + v.size() + 2;
  std::string key;
  key.reserve(len);
  key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

Counter& Registry::counter(const std::string& name, Labels labels) {
  auto key = series_key(name, std::move(labels));
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    counter_store_.emplace_back();
    it = counters_.emplace(std::move(key), &counter_store_.back()).first;
    ++version_;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  auto key = series_key(name, std::move(labels));
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    gauge_store_.emplace_back();
    it = gauges_.emplace(std::move(key), &gauge_store_.back()).first;
    ++version_;
  }
  return *it->second;
}

HistogramSeries& Registry::histogram(const std::string& name, Labels labels,
                                     const std::vector<double>* bounds) {
  auto key = series_key(name, std::move(labels));
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    histogram_store_.emplace_back(
        bounds ? *bounds : FixedBucketHistogram::default_latency_bounds());
    it = histograms_.emplace(std::move(key), &histogram_store_.back()).first;
    ++version_;
  }
  return *it->second;
}

}  // namespace l3::metrics
