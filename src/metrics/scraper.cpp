#include "l3/metrics/scraper.h"

#include "l3/common/assert.h"
#include "l3/obs/recorder.h"

#include <algorithm>
#include <span>

namespace l3::metrics {

void Scraper::add_target(std::string name, const Registry& registry) {
  Target target;
  target.name = std::move(name);
  target.registry = &registry;
  // emplace keeps the first entry on duplicate names, preserving the old
  // first-match lookup semantics.
  target_index_.emplace(target.name, targets_.size());
  targets_.push_back(std::move(target));
}

bool Scraper::set_target_enabled(const std::string& name, bool enabled) {
  const auto it = target_index_.find(name);
  if (it == target_index_.end()) return false;
  targets_[it->second].enabled = enabled;
  return true;
}

void Scraper::set_all_targets_enabled(bool enabled) {
  for (auto& target : targets_) target.enabled = enabled;
}

void Scraper::start(SimDuration interval) {
  L3_EXPECTS(interval > 0.0);
  stop();
  interval_ = interval;
  task_ = sim_.schedule_every(interval, [this] { scrape_once(); }, interval);
}

void Scraper::build_plan(Target& target) {
  L3_OBS_SCOPE(obs_plan, kScraperPlan);
  ColumnBlock& plan = target.plan;
  plan.counters.clear();
  plan.counter_ids.clear();
  plan.gauges.clear();
  plan.gauge_ids.clear();
  plan.histograms.clear();
  plan.histogram_ids.clear();
  plan.histogram_widths.clear();
  target.registry->for_each_entry(
      [&](const std::string& key, const Counter* c) {
        plan.counters.push_back(c);
        plan.counter_ids.push_back(tsdb_.series(key));
      },
      [&](const std::string& key, const Gauge* g) {
        plan.gauges.push_back(g);
        plan.gauge_ids.push_back(tsdb_.series(key));
      },
      [&](const std::string& key, const HistogramSeries* h) {
        const HistogramId id = tsdb_.histogram_series(key);
        plan.histograms.push_back(h);
        plan.histogram_ids.push_back(id);
        plan.histogram_widths.push_back(
            static_cast<std::uint32_t>(h->bucket_count()));
        // Declared once here; steady-state appends carry only the row.
        tsdb_.set_histogram_bounds(id, h->bounds());
        if (h->bucket_count() > row_scratch_.size()) {
          row_scratch_.resize(h->bucket_count());
        }
      });
  target.planned_version = target.registry->version();
  ++plan_rebuilds_;
}

void Scraper::scrape_once() {
  L3_OBS_SCOPE(obs_scrape, kScraperScrape);
  const SimTime now = sim_.now();
  std::size_t series_copied = 0;
  std::size_t targets_scraped = 0;
  for (auto& target : targets_) {
    if (!target.enabled) continue;
    ++targets_scraped;
    if (target.planned_version != target.registry->version()) {
      build_plan(target);
    }
    const ColumnBlock& plan = target.plan;
    {
      const Counter* const* counters = plan.counters.data();
      const SeriesId* ids = plan.counter_ids.data();
      const std::size_t n = plan.counters.size();
      for (std::size_t i = 0; i < n; ++i) {
        tsdb_.append(ids[i], now, counters[i]->value());
      }
    }
    {
      const Gauge* const* gauges = plan.gauges.data();
      const SeriesId* ids = plan.gauge_ids.data();
      const std::size_t n = plan.gauges.size();
      for (std::size_t i = 0; i < n; ++i) {
        tsdb_.append(ids[i], now, gauges[i]->value());
      }
    }
    {
      const std::size_t n = plan.histograms.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::span<double> row(row_scratch_.data(),
                                    plan.histogram_widths[i]);
        plan.histograms[i]->write_cumulative(row);
        tsdb_.append_histogram(plan.histogram_ids[i], now, row);
      }
    }
    series_copied += plan.counters.size() + plan.gauges.size() +
                     plan.histograms.size();
  }
  // Series belonging to disabled targets receive no appends (which is where
  // per-series trimming happens); the compact call reaps them. It is O(1)
  // while nothing in the store has aged past the retention horizon.
  tsdb_.compact(now);
  ++scrapes_;
  L3_OBS_COUNT(kScraperSeries, series_copied);
  L3_OBS_GAUGE(kTsdbSeries, static_cast<double>(tsdb_.series_count() +
                                                tsdb_.histogram_series_count()));
  L3_OBS_EVENT(kMetrics, kScrape, now,
               static_cast<std::uint32_t>(targets_scraped),
               static_cast<double>(series_copied));
}

}  // namespace l3::metrics
