#include "l3/metrics/scraper.h"

#include "l3/common/assert.h"
#include "l3/obs/recorder.h"

namespace l3::metrics {

void Scraper::add_target(std::string name, const Registry& registry) {
  Target target;
  target.name = std::move(name);
  target.registry = &registry;
  targets_.push_back(std::move(target));
}

bool Scraper::set_target_enabled(const std::string& name, bool enabled) {
  for (auto& target : targets_) {
    if (target.name == name) {
      target.enabled = enabled;
      return true;
    }
  }
  return false;
}

void Scraper::set_all_targets_enabled(bool enabled) {
  for (auto& target : targets_) target.enabled = enabled;
}

void Scraper::start(SimDuration interval) {
  L3_EXPECTS(interval > 0.0);
  stop();
  interval_ = interval;
  task_ = sim_.schedule_every(interval, [this] { scrape_once(); }, interval);
}

void Scraper::build_plan(Target& target) {
  target.counters.clear();
  target.gauges.clear();
  target.histograms.clear();
  target.registry->for_each_entry(
      [&](const std::string& key, const Counter* c) {
        target.counters.emplace_back(c, tsdb_.series(key));
      },
      [&](const std::string& key, const Gauge* g) {
        target.gauges.emplace_back(g, tsdb_.series(key));
      },
      [&](const std::string& key, const HistogramSeries* h) {
        target.histograms.emplace_back(h, tsdb_.histogram_series(key));
      });
  target.planned_version = target.registry->version();
}

void Scraper::scrape_once() {
  L3_OBS_SCOPE(obs_scrape, kScraperScrape);
  const SimTime now = sim_.now();
  std::size_t series_copied = 0;
  std::size_t targets_scraped = 0;
  for (auto& target : targets_) {
    if (!target.enabled) continue;
    ++targets_scraped;
    if (target.planned_version != target.registry->version()) {
      build_plan(target);
    }
    for (const auto& [counter, id] : target.counters) {
      tsdb_.append(id, now, counter->value());
    }
    for (const auto& [gauge, id] : target.gauges) {
      tsdb_.append(id, now, gauge->value());
    }
    for (const auto& [histogram, id] : target.histograms) {
      tsdb_.append_histogram(id, now, histogram->bounds(),
                             histogram->cumulative_counts());
    }
    series_copied += target.counters.size() + target.gauges.size() +
                     target.histograms.size();
  }
  // Series belonging to disabled targets receive no appends (which is where
  // per-series trimming happens); the compact call reaps them. It is O(1)
  // while nothing in the store has aged past the retention horizon.
  tsdb_.compact(now);
  ++scrapes_;
  L3_OBS_COUNT(kScraperSeries, series_copied);
  L3_OBS_GAUGE(kTsdbSeries, static_cast<double>(tsdb_.series_count() +
                                                tsdb_.histogram_series_count()));
  L3_OBS_EVENT(kMetrics, kScrape, now,
               static_cast<std::uint32_t>(targets_scraped),
               static_cast<double>(series_copied));
}

}  // namespace l3::metrics
