#include "l3/metrics/scraper.h"

#include "l3/common/assert.h"

namespace l3::metrics {

void Scraper::add_target(std::string name, const Registry& registry) {
  targets_.push_back(Target{std::move(name), &registry, true});
}

bool Scraper::set_target_enabled(const std::string& name, bool enabled) {
  for (auto& target : targets_) {
    if (target.name == name) {
      target.enabled = enabled;
      return true;
    }
  }
  return false;
}

void Scraper::start(SimDuration interval) {
  L3_EXPECTS(interval > 0.0);
  stop();
  interval_ = interval;
  task_ = sim_.schedule_every(interval, [this] { scrape_once(); }, interval);
}

void Scraper::scrape_once() {
  const SimTime now = sim_.now();
  for (const auto& target : targets_) {
    if (!target.enabled) continue;
    target.registry->for_each(
        [&](const std::string& key, double value) {
          tsdb_.append(key, now, value);
        },
        [&](const std::string& key, double value) {
          tsdb_.append(key, now, value);
        },
        [&](const std::string& key, const HistogramSeries& h) {
          tsdb_.append_histogram(key, now, h.bounds(), h.cumulative_counts());
        });
  }
  // Series belonging to disabled targets receive no appends (which is where
  // per-series trimming happens), so sweep the whole store each scrape.
  tsdb_.compact(now);
  ++scrapes_;
}

}  // namespace l3::metrics
