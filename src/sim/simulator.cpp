#include "l3/sim/simulator.h"

#include "l3/obs/recorder.h"

#include <algorithm>
#include <utility>

namespace l3::sim {

Simulator::Simulator() : log_bind_(log_context_) {
  log_context_.set_time_provider([this] { return now_; });
}

void Simulator::schedule_at(SimTime t, EventFn fn) {
  L3_EXPECTS(t >= now_);
  L3_EXPECTS(static_cast<bool>(fn));
  // Local seqs must stay below the delivered-seq band so cross-shard
  // deliveries order after local events at equal timestamps (~5.5e11
  // locally scheduled events before this would trip).
  L3_EXPECTS(next_seq_ < kDeliveredSeqBase);
  queue_.push(t, next_seq_++, std::move(fn));
}

void Simulator::schedule_delivered(SimTime t, std::uint32_t origin_cluster,
                                   std::uint32_t origin_seq, EventFn fn) {
  L3_EXPECTS(t >= now_);
  L3_EXPECTS(static_cast<bool>(fn));
  L3_EXPECTS(origin_cluster < (1u << kDeliveredClusterBits));
  L3_EXPECTS(origin_seq < (1u << kDeliveredSeqBits));
  const std::uint64_t seq = kDeliveredSeqBase |
                            (static_cast<std::uint64_t>(origin_cluster)
                             << kDeliveredSeqBits) |
                            origin_seq;
  queue_.push(t, seq, std::move(fn));
}

PeriodicHandle Simulator::schedule_every(SimDuration interval, EventFn fn,
                                         SimDuration initial_delay) {
  L3_EXPECTS(interval > 0.0);
  L3_EXPECTS(initial_delay >= 0.0);
  auto task = std::make_shared<detail::PeriodicTask>();
  task->fn = std::move(fn);
  task->interval = interval;
  task->first = now_ + initial_delay;
  PeriodicHandle handle(task);
  schedule_periodic_firing(std::move(task), handle.task_->first);
  return handle;
}

void Simulator::schedule_periodic_firing(
    std::shared_ptr<detail::PeriodicTask> task, SimTime at) {
  // The event captures only the shared control block (16 bytes + `this`),
  // so every firing of every periodic task stays within EventFn's inline
  // buffer regardless of what the user callback captured.
  schedule_at(at, [this, task = std::move(task)] { fire_periodic(task); });
}

void Simulator::fire_periodic(
    const std::shared_ptr<detail::PeriodicTask>& task) {
  if (task->cancelled) {
    // Release the user callback (and whatever it captured) as soon as the
    // cancellation is observed; outstanding handles only read the flag.
    task->fn.reset();
    return;
  }
  task->fn();
  if (task->cancelled) {
    task->fn.reset();
    return;
  }
  ++task->fired;
  // Drift-free: the nth firing is first + n*interval, NOT an accumulated
  // `time += interval` (which lets rounding error build up and 5 s control
  // ticks float away from 5 s scrape ticks over 20-minute runs). The
  // max() guards the pathological case where n*interval rounds below now.
  const SimTime next =
      task->first + static_cast<double>(task->fired) * task->interval;
  schedule_periodic_firing(task, std::max(next, now_));
}

std::size_t Simulator::run_until(SimTime end) {
  L3_EXPECTS(end >= now_);
  stop_requested_ = false;
  std::size_t processed = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.min_time() > end) break;
    std::size_t batch = 0;
    {
      L3_OBS_SCOPE_SAMPLED(obs_dispatch, kSimDispatch);
      // Drain a batch with each callable invoked in place; the queue's
      // chunked slot pool keeps slots stable across re-entrant scheduling,
      // so no move-out is needed. Order is identical to the per-event loop;
      // the empty/min_time probes and obs records amortize over the batch.
      batch = queue_.dispatch_batch(
          end, dispatch_batch_, [this](SimTime t, EventFn& fn) {
            now_ = t;
            fn();
            return !stop_requested_;
          });
    }
    processed += batch;
    executed_ += batch;
    L3_OBS_COUNT(kSimEvents, batch);
    L3_OBS_BATCH(batch);
    // Queue-depth gauge once per batch: cheap enough to leave on, detailed
    // enough to draw a useful counter track.
    L3_OBS_GAUGE(kSimPendingEvents, static_cast<double>(queue_.size()));
  }
  if (now_ < end) now_ = end;
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  {
    L3_OBS_SCOPE_SAMPLED(obs_dispatch, kSimDispatch);
    queue_.dispatch_min([this](SimTime t, EventFn& fn) {
      now_ = t;
      fn();
    });
  }
  ++executed_;
  L3_OBS_COUNT(kSimEvents, 1);
  return true;
}

}  // namespace l3::sim
