#include "l3/sim/simulator.h"

#include <utility>

namespace l3::sim {

void Simulator::schedule_at(SimTime t, EventFn fn) {
  L3_EXPECTS(t >= now_);
  L3_EXPECTS(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

PeriodicHandle Simulator::schedule_every(SimDuration interval, EventFn fn,
                                         SimDuration initial_delay) {
  L3_EXPECTS(interval > 0.0);
  L3_EXPECTS(initial_delay >= 0.0);
  auto cancelled = std::make_shared<bool>(false);
  schedule_periodic(interval, std::move(fn), cancelled, now_ + initial_delay);
  return PeriodicHandle(cancelled);
}

void Simulator::schedule_periodic(SimDuration interval, EventFn fn,
                                  std::shared_ptr<bool> cancelled,
                                  SimTime first) {
  schedule_at(first, [this, interval, fn = std::move(fn), cancelled,
                      first]() mutable {
    if (*cancelled) return;
    fn();
    if (*cancelled) return;
    schedule_periodic(interval, std::move(fn), std::move(cancelled),
                      first + interval);
  });
}

std::size_t Simulator::run_until(SimTime end) {
  L3_EXPECTS(end >= now_);
  stop_requested_ = false;
  std::size_t processed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.time > end) break;
    // Move the event out before popping so re-entrant scheduling is safe.
    Event ev{top.time, top.seq, std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++processed;
    ++executed_;
  }
  if (now_ < end) now_ = end;
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const Event& top = queue_.top();
  Event ev{top.time, top.seq, std::move(const_cast<Event&>(top).fn)};
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  ++executed_;
  return true;
}

}  // namespace l3::sim
