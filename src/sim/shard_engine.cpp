#include "l3/sim/shard_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace l3::sim {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

void pin_to_cpu(std::thread& t, std::size_t cpu) {
#if defined(__linux__)
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % hw), &set);
  // Best effort: a failed pin (restricted affinity mask) degrades the bench
  // numbers, not correctness.
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)cpu;
#endif
}
}  // namespace

// ---------------------------------------------------------------------------
// ShardRouter

void ShardRouter::post(std::uint32_t origin, std::uint32_t target,
                       SimTime time, EventFn fn) {
  L3_EXPECTS(sim_ != nullptr);
  L3_EXPECTS(static_cast<bool>(fn));
  L3_EXPECTS(engine_->owner(origin) == shard_);
  L3_EXPECTS(origin < next_seq_.size());
  const SimDuration la = engine_->cluster_lookahead(origin, target);
  const std::size_t target_shard = engine_->owner(target);
  if (std::isfinite(la)) {
    // The conservative bound: the barrier promised peers nothing from this
    // pair arrives earlier than now + floor. Callers derive `time` from a
    // WAN sample, and sample >= floor makes this exact in floating point
    // (addition is monotonic per operand).
    L3_EXPECTS(time >= sim_->now() + la);
  } else {
    L3_EXPECTS(target_shard == shard_);
    L3_EXPECTS(time >= sim_->now());
  }
  const std::uint32_t seq = next_seq_[origin]++;
  if (target_shard == shard_) {
    sim_->schedule_delivered(time, origin, seq, std::move(fn));
  } else {
    staging_[target_shard].post(ShardMessage{time, origin, seq,
                                             std::move(fn)});
  }
}

void ShardRouter::drain_commit() {
  drain_buf_.clear();
  engine_->inbox(shard_).drain(drain_buf_);
  for (ShardMessage& m : drain_buf_) {
    sim_->schedule_delivered(m.time, m.origin_cluster, m.origin_seq,
                             std::move(m.fn));
  }
  drain_buf_.clear();
}

void ShardRouter::flush_all() {
  for (std::size_t s = 0; s < staging_.size(); ++s) {
    if (s != shard_) staging_[s].flush();
  }
}

void ShardRouter::run_until(SimTime end) {
  L3_EXPECTS(sim_ != nullptr);
  L3_EXPECTS(end >= sim_->now());
  for (;;) {
    const SimTime safe = engine_->acquire(shard_, committed_);
    drain_commit();
    if (safe > end) {
      // Final window: every message still in flight toward this shard
      // arrives strictly after `end`. Run inclusively, exactly like the
      // legacy loop, and release the peers for good.
      sim_->run_until(end);
      flush_all();
      engine_->publish(shard_, kInf);
      committed_ = kInf;
      return;
    }
    // Execute strictly below `safe`: t < safe  <=>  t <= pred(safe), so the
    // legacy inclusive run_until needs no new entry point.
    sim_->run_until(std::nextafter(safe, -kInf));
    flush_all();
    engine_->publish(shard_, safe);
    committed_ = safe;
  }
}

MailboxStats ShardRouter::mailbox_stats() const {
  MailboxStats total;
  for (const MailboxStaging& s : staging_) total += s.stats();
  return total;
}

// ---------------------------------------------------------------------------
// ShardEngine

ShardEngine::ShardEngine(Config config)
    : config_(config), shard_count_(config.shards) {
  L3_EXPECTS(shard_count_ >= 1);
  L3_EXPECTS(config_.mailbox_capacity >= 1);
  inboxes_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    inboxes_.push_back(std::make_unique<MailboxInbox>());
  }
  routers_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    auto router = std::make_unique<ShardRouter>();
    router->engine_ = this;
    router->shard_ = s;
    router->staging_.resize(shard_count_);
    for (std::size_t t = 0; t < shard_count_; ++t) {
      if (t == s) continue;
      router->staging_[t].bind(inboxes_[t].get(), config_.mailbox_capacity);
    }
    routers_.push_back(std::move(router));
  }
  horizons_.assign(shard_count_, 0.0);
}

void ShardEngine::set_cluster_owners(std::vector<std::size_t> owners) {
  for (const std::size_t s : owners) L3_EXPECTS(s < shard_count_);
  owners_ = std::move(owners);
  cluster_la_.assign(owners_.size() * owners_.size(), kInf);
  for (auto& r : routers_) {
    r->next_seq_.assign(owners_.size(), 0);
  }
}

void ShardEngine::set_cluster_lookahead(std::uint32_t from, std::uint32_t to,
                                        SimDuration lookahead) {
  L3_EXPECTS(from < owners_.size() && to < owners_.size());
  L3_EXPECTS(lookahead >= 0.0);
  cluster_la_[from * owners_.size() + to] = lookahead;
}

SimDuration ShardEngine::cluster_lookahead(std::uint32_t from,
                                           std::uint32_t to) const {
  L3_EXPECTS(from < owners_.size() && to < owners_.size());
  return cluster_la_[from * owners_.size() + to];
}

SimDuration ShardEngine::shard_lookahead(std::size_t from,
                                         std::size_t to) const {
  L3_EXPECTS(from < shard_count_ && to < shard_count_);
  SimDuration la = kInf;
  const std::size_t n = owners_.size();
  for (std::size_t a = 0; a < n; ++a) {
    if (owners_[a] != from) continue;
    for (std::size_t b = 0; b < n; ++b) {
      if (owners_[b] != to) continue;
      la = std::min(la, cluster_la_[a * n + b]);
    }
  }
  return la;
}

void ShardEngine::prepare() {
  shard_la_.assign(shard_count_ * shard_count_, kInf);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    for (std::size_t j = 0; j < shard_count_; ++j) {
      if (i == j) continue;
      const SimDuration la = shard_lookahead(i, j);
      // Zero cross-shard lookahead deadlocks the barrier: neither side
      // could ever advance past the other's horizon.
      L3_EXPECTS(!(std::isfinite(la) && la <= 0.0));
      shard_la_[i * shard_count_ + j] = la;
    }
  }
  horizons_.assign(shard_count_, 0.0);
  aborted_ = false;
  first_error_ = nullptr;
}

void ShardEngine::run(const std::function<void(std::size_t)>& body) {
  prepare();
  std::vector<std::thread> threads;
  const std::size_t first_spawned = config_.pin_threads ? 0 : 1;
  threads.reserve(shard_count_ - first_spawned);
  for (std::size_t s = first_spawned; s < shard_count_; ++s) {
    threads.emplace_back([this, s, &body] { run_shard(s, body); });
    if (config_.pin_threads) pin_to_cpu(threads.back(), s);
  }
  if (!config_.pin_threads) run_shard(0, body);
  for (auto& t : threads) t.join();
  if (first_error_) std::rethrow_exception(first_error_);
}

void ShardEngine::run_shard(std::size_t shard,
                            const std::function<void(std::size_t)>& body) {
  try {
    body(shard);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      aborted_ = true;
    }
    cv_.notify_all();
  }
  // Idle, finished or failed alike: this shard owes nothing more, so peers
  // must never wait on it again.
  publish(shard, kInf);
}

void ShardEngine::sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (aborted_) throw ContractViolation("barrier", "peer shard failed",
                                        __FILE__, __LINE__);
  const std::uint64_t generation = sync_generation_;
  if (++sync_waiting_ == shard_count_) {
    sync_waiting_ = 0;
    ++sync_generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return sync_generation_ != generation || aborted_; });
  if (aborted_ && sync_generation_ == generation) {
    throw ContractViolation("barrier", "peer shard failed", __FILE__,
                            __LINE__);
  }
}

SimTime ShardEngine::acquire(std::size_t shard, SimTime committed) {
  L3_EXPECTS(shard < shard_count_);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    SimTime safe = kInf;
    for (std::size_t j = 0; j < shard_count_; ++j) {
      if (j == shard) continue;
      const SimDuration la = shard_la_[j * shard_count_ + shard];
      if (!std::isfinite(la)) continue;
      safe = std::min(safe, horizons_[j] + la);
    }
    if (safe > committed) return safe;
    cv_.wait(lock);
  }
}

void ShardEngine::publish(std::size_t shard, SimTime horizon) {
  L3_EXPECTS(shard < shard_count_);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    L3_EXPECTS(horizon >= horizons_[shard]);
    horizons_[shard] = horizon;
  }
  cv_.notify_all();
}

MailboxStats ShardEngine::mailbox_stats() const {
  MailboxStats total;
  for (const auto& r : routers_) total += r->mailbox_stats();
  return total;
}

}  // namespace l3::sim
