#include "l3/exp/report.h"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace l3::exp {

namespace {

void write_escaped(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Shortest round-trip decimal representation: deterministic for a given
/// value, locale-independent.
void write_number(std::ostream& os, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  double parsed = 0.0;
  for (int precision = 1; precision <= 16; ++precision) {
    char candidate[40];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) {
      os << candidate;
      return;
    }
  }
  os << buf;
}

void write_labels(std::ostream& os, const std::vector<std::string>& labels) {
  os << '[';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ", ";
    write_escaped(os, labels[i]);
  }
  os << ']';
}

void write_cell(std::ostream& os, const ExperimentSpec& spec,
                const CellResult& cell, const char* indent) {
  const auto& run = cell.data.run;
  os << indent << "{\n";
  os << indent << "  \"scenario\": ";
  write_escaped(os, spec.scenarios[cell.cell.scenario]);
  os << ",\n" << indent << "  \"policy\": ";
  write_escaped(os, spec.policies[cell.cell.policy]);
  os << ",\n" << indent << "  \"variant\": ";
  write_escaped(os, spec.variants[cell.cell.variant]);
  os << ",\n"
     << indent << "  \"rep\": " << cell.cell.rep << ",\n"
     << indent << "  \"seed\": " << cell.seed << ",\n"
     << indent << "  \"requests\": " << run.requests << ",\n"
     << indent << "  \"success_rate\": ";
  write_number(os, run.summary.success_rate);
  os << ",\n" << indent << "  \"latency\": {";
  const auto& latency = run.summary.latency;
  os << "\"mean\": ";
  write_number(os, latency.mean);
  os << ", \"p50\": ";
  write_number(os, latency.p50);
  os << ", \"p90\": ";
  write_number(os, latency.p90);
  os << ", \"p99\": ";
  write_number(os, latency.p99);
  os << ", \"max\": ";
  write_number(os, latency.max);
  os << "},\n" << indent << "  \"mean_attempts\": ";
  write_number(os, run.mean_attempts);
  os << ",\n"
     << indent << "  \"weight_updates\": " << run.weight_updates << ",\n"
     << indent << "  \"traffic_share\": [";
  for (std::size_t i = 0; i < run.traffic_share.size(); ++i) {
    if (i > 0) os << ", ";
    write_number(os, run.traffic_share[i]);
  }
  os << ']';
  if (!cell.data.metrics.empty()) {
    os << ",\n" << indent << "  \"metrics\": {";
    for (std::size_t i = 0; i < cell.data.metrics.size(); ++i) {
      if (i > 0) os << ", ";
      write_escaped(os, cell.data.metrics[i].first);
      os << ": ";
      write_number(os, cell.data.metrics[i].second);
    }
    os << '}';
  }
  os << '\n' << indent << '}';
}

/// The deterministic self-profile section: ProfileBlocks merged across every
/// cell of every grid in grid order (merge is element-wise summation, so the
/// result is identical for any cell execution order — the jobs-invariance
/// contract). Only counts are serialized; wall-clock timing never enters the
/// report (it goes to stderr and the audit exposition instead).
void write_profile(std::ostream& os, const obs::ProfileBlock& profile) {
  os << ",\n  \"profile\": {\n    \"cells\": " << profile.cells
     << ",\n    \"subsystems\": [";
  bool first = true;
  for (std::size_t i = 0; i < obs::kScopeCount; ++i) {
    if (profile.scope_count[i] == 0) continue;
    os << (first ? "" : ",") << "\n      {\"name\": ";
    write_escaped(os, obs::scope_name(static_cast<obs::ScopeId>(i)));
    os << ", \"count\": " << profile.scope_count[i]
       << ", \"timed\": " << profile.scope_timed[i] << '}';
    first = false;
  }
  os << (first ? "]" : "\n    ]") << ",\n    \"counters\": [";
  first = true;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    if (profile.counters[i] == 0) continue;
    os << (first ? "" : ",") << "\n      {\"name\": ";
    write_escaped(os, obs::counter_name(static_cast<obs::CounterId>(i)));
    os << ", \"value\": " << profile.counters[i] << '}';
    first = false;
  }
  os << (first ? "]" : "\n    ]") << ",\n    \"rings\": [";
  first = true;
  for (std::size_t i = 0; i < obs::kDomainCount; ++i) {
    if (profile.ring_recorded[i] == 0) continue;
    os << (first ? "" : ",") << "\n      {\"domain\": ";
    write_escaped(os, obs::domain_name(static_cast<obs::Domain>(i)));
    os << ", \"recorded\": " << profile.ring_recorded[i]
       << ", \"dropped\": " << profile.ring_dropped[i] << '}';
    first = false;
  }
  os << (first ? "]" : "\n    ]") << ",\n    \"weighted_kernel\": ";
  write_escaped(os, profile.weighted_kernel_name());
  os << ",\n    \"batch_hist\": [";
  first = true;
  for (std::size_t i = 0; i < obs::kBatchBucketCount; ++i) {
    if (profile.batch_hist[i] == 0) continue;
    os << (first ? "" : ",") << "\n      {\"events\": ";
    write_escaped(os, obs::batch_bucket_label(i));
    os << ", \"batches\": " << profile.batch_hist[i] << '}';
    first = false;
  }
  os << (first ? "]" : "\n    ]") << "\n  }";
}

}  // namespace

void Report::add_grid(const ExperimentSpec& spec,
                      const std::vector<CellResult>& results) {
  Grid grid;
  grid.spec = spec;
  grid.spec.cell = nullptr;  // labels + seed are all serialization needs
  grid.results = results;
  grids_.push_back(std::move(grid));
}

void Report::add_table(std::string title, const Table& table) {
  tables_.push_back({std::move(title), table.headers(), table.rows()});
}

void Report::write(std::ostream& os) const {
  os << "{\n  \"experiment\": ";
  write_escaped(os, experiment_);
  os << ",\n  \"grids\": [";
  for (std::size_t g = 0; g < grids_.size(); ++g) {
    const auto& grid = grids_[g];
    os << (g > 0 ? "," : "") << "\n    {\n      \"name\": ";
    write_escaped(os, grid.spec.name);
    os << ",\n      \"seed\": " << grid.spec.seed
       << ",\n      \"repetitions\": " << grid.spec.repetitions
       << ",\n      \"scenarios\": ";
    write_labels(os, grid.spec.scenarios);
    os << ",\n      \"policies\": ";
    write_labels(os, grid.spec.policies);
    os << ",\n      \"variants\": ";
    write_labels(os, grid.spec.variants);
    os << ",\n      \"cells\": [";
    for (std::size_t i = 0; i < grid.results.size(); ++i) {
      os << (i > 0 ? "," : "") << '\n';
      write_cell(os, grid.spec, grid.results[i], "        ");
    }
    os << (grid.results.empty() ? "]" : "\n      ]") << "\n    }";
  }
  os << (grids_.empty() ? "]" : "\n  ]") << ",\n  \"tables\": [";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& table = tables_[t];
    os << (t > 0 ? "," : "") << "\n    {\n      \"title\": ";
    write_escaped(os, table.title);
    os << ",\n      \"headers\": ";
    write_labels(os, table.headers);
    os << ",\n      \"rows\": [";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      os << (r > 0 ? "," : "") << "\n        ";
      write_labels(os, table.rows[r]);
    }
    os << (table.rows.empty() ? "]" : "\n      ]") << "\n    }";
  }
  os << (tables_.empty() ? "]" : "\n  ]");
  const obs::ProfileBlock profile = merged_profile();
  if (!profile.empty()) write_profile(os, profile);
  os << "\n}\n";
}

obs::ProfileBlock Report::merged_profile() const {
  obs::ProfileBlock merged;
  for (const auto& grid : grids_) {
    for (const auto& cell : grid.results) {
      if (!cell.data.run.profile.empty()) {
        merged.merge(cell.data.run.profile);
      }
    }
  }
  return merged;
}

bool Report::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace l3::exp
