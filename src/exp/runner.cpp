#include "l3/exp/runner.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace l3::exp {

namespace {

CellResult run_cell(const ExperimentSpec& spec, std::size_t index) {
  CellResult result;
  result.cell = spec.cell_at(index);
  result.seed = cell_seed(spec.seed, result.cell);
  result.data = spec.cell(result.cell, result.seed);
  return result;
}

/// Work-stealing cell scheduler: every worker owns a deque of cell indices
/// (dealt round-robin up front) and pops from its own front; a worker that
/// runs dry steals from the back of a sibling's deque. Cells are coarse
/// (whole simulations), so the per-pop mutex is noise.
class CellScheduler {
 public:
  CellScheduler(std::size_t cells, int workers) : queues_(workers) {
    for (std::size_t i = 0; i < cells; ++i) {
      queues_[i % queues_.size()].indices.push_back(i);
    }
  }

  std::optional<std::size_t> next(int worker) {
    if (auto index = pop_front(worker)) return index;
    // Steal from the busiest sibling's back.
    for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
      const auto victim =
          (static_cast<std::size_t>(worker) + offset) % queues_.size();
      if (auto index = pop_back(static_cast<int>(victim))) return index;
    }
    return std::nullopt;
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> indices;
  };

  std::optional<std::size_t> pop_front(int worker) {
    auto& queue = queues_[static_cast<std::size_t>(worker)];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.indices.empty()) return std::nullopt;
    const std::size_t index = queue.indices.front();
    queue.indices.pop_front();
    return index;
  }

  std::optional<std::size_t> pop_back(int worker) {
    auto& queue = queues_[static_cast<std::size_t>(worker)];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.indices.empty()) return std::nullopt;
    const std::size_t index = queue.indices.back();
    queue.indices.pop_back();
    return index;
  }

  std::deque<Queue> queues_;
};

}  // namespace

int effective_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<CellResult> run_experiment(const ExperimentSpec& spec,
                                       const RunnerOptions& opts) {
  L3_EXPECTS(static_cast<bool>(spec.cell));
  L3_EXPECTS(spec.repetitions >= 1);
  const std::size_t cells = spec.cell_count();
  std::vector<CellResult> results(cells);
  const int jobs = std::min<int>(effective_jobs(opts.jobs),
                                 static_cast<int>(std::max<std::size_t>(
                                     cells, 1)));
  if (cells == 0) return results;

  if (jobs <= 1) {
    for (std::size_t i = 0; i < cells; ++i) results[i] = run_cell(spec, i);
    return results;
  }

  CellScheduler scheduler(cells, jobs);
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto worker = [&](int id) {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error) return;  // abandon remaining cells on failure
      }
      const auto index = scheduler.next(id);
      if (!index) return;
      try {
        results[*index] = run_cell(spec, *index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(jobs));
  for (int id = 0; id < jobs; ++id) threads.emplace_back(worker, id);
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

double mean_of(std::span<const CellResult> cells,
               double (*accessor)(const workload::RunResult&)) {
  if (cells.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& cell : cells) sum += accessor(cell.data.run);
  return sum / static_cast<double>(cells.size());
}

double mean_p50(std::span<const CellResult> cells) {
  return mean_of(cells, +[](const workload::RunResult& r) {
    return r.summary.latency.p50;
  });
}

double mean_p90(std::span<const CellResult> cells) {
  return mean_of(cells, +[](const workload::RunResult& r) {
    return r.summary.latency.p90;
  });
}

double mean_p99(std::span<const CellResult> cells) {
  return mean_of(cells, +[](const workload::RunResult& r) {
    return r.summary.latency.p99;
  });
}

double mean_latency(std::span<const CellResult> cells) {
  return mean_of(cells, +[](const workload::RunResult& r) {
    return r.summary.latency.mean;
  });
}

double mean_success_rate(std::span<const CellResult> cells) {
  return mean_of(cells, +[](const workload::RunResult& r) {
    return r.summary.success_rate;
  });
}

double mean_attempts(std::span<const CellResult> cells) {
  return mean_of(cells, +[](const workload::RunResult& r) {
    return r.mean_attempts;
  });
}

double mean_traffic_share(std::span<const CellResult> cells,
                          std::size_t cluster) {
  if (cells.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& cell : cells) {
    const auto& share = cell.data.run.traffic_share;
    if (cluster < share.size()) sum += share[cluster];
  }
  return sum / static_cast<double>(cells.size());
}

double mean_metric(std::span<const CellResult> cells, std::string_view name) {
  if (cells.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& cell : cells) {
    for (const auto& [key, value] : cell.data.metrics) {
      if (key == name) {
        sum += value;
        break;
      }
    }
  }
  return sum / static_cast<double>(cells.size());
}

}  // namespace l3::exp
