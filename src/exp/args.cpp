#include "l3/exp/args.h"

#include <cstdlib>
#include <iostream>
#include <limits>

namespace l3::exp {

std::optional<long long> parse_uint(std::string_view text) {
  if (text.empty()) return std::nullopt;
  long long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    if (value > (std::numeric_limits<long long>::max() - (c - '0')) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

namespace {

/// Consumes the value of a flag at argv[i]; advances i past it.
std::optional<long long> take_int_value(int argc, char** argv, int& i,
                                        std::string_view flag,
                                        long long min_value,
                                        std::string* error) {
  if (i + 1 >= argc) {
    *error = std::string(flag) + " requires a value";
    return std::nullopt;
  }
  const std::string_view text = argv[++i];
  const auto value = parse_uint(text);
  if (!value || *value < min_value) {
    *error = std::string(flag) + " expects an integer >= " +
             std::to_string(min_value) + ", got '" + std::string(text) + "'";
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<BenchArgs> try_parse_bench_args(int argc, char** argv,
                                              std::string* error) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--fast") {
      args.fast = true;
    } else if (arg == "--profile") {
      args.profile = true;
    } else if (arg == "--no-batch") {
      args.batch = 1;
    } else if (arg.rfind("--batch=", 0) == 0) {
      const auto value = parse_uint(arg.substr(8));
      if (!value || *value < 1 ||
          *value > std::numeric_limits<int>::max()) {
        *error = "--batch expects an integer >= 1, got '" +
                 std::string(arg.substr(8)) + "'";
        return std::nullopt;
      }
      args.batch = static_cast<int>(*value);
    } else if (arg == "--batch") {
      // The value is attached (--batch=N), matching --no-batch's shape; a
      // detached value would make `--batch --fast` ambiguous.
      *error = "--batch requires an attached value: --batch=N";
      return std::nullopt;
    } else if (arg.rfind("--shards=", 0) == 0) {
      const auto value = parse_uint(arg.substr(9));
      if (!value || *value < 1 ||
          *value > std::numeric_limits<int>::max()) {
        *error = "--shards expects an integer >= 1, got '" +
                 std::string(arg.substr(9)) + "'";
        return std::nullopt;
      }
      args.shards = static_cast<int>(*value);
    } else if (arg == "--shards") {
      *error = "--shards requires an attached value: --shards=N";
      return std::nullopt;
    } else if (arg.rfind("--proxy-cost=", 0) == 0) {
      const auto value = parse_uint(arg.substr(13));
      if (!value || *value > std::numeric_limits<int>::max()) {
        *error = "--proxy-cost expects an integer >= 0 (microseconds), got '" +
                 std::string(arg.substr(13)) + "'";
        return std::nullopt;
      }
      args.proxy_cost_us = static_cast<int>(*value);
    } else if (arg == "--proxy-cost") {
      *error = "--proxy-cost requires an attached value: --proxy-cost=US";
      return std::nullopt;
    } else if (arg == "--reps") {
      const auto value = take_int_value(argc, argv, i, arg, 1, error);
      if (!value) return std::nullopt;
      args.reps = static_cast<int>(*value);
    } else if (arg == "--jobs") {
      const auto value = take_int_value(argc, argv, i, arg, 1, error);
      if (!value) return std::nullopt;
      args.jobs = static_cast<int>(*value);
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        *error = "--json requires a path";
        return std::nullopt;
      }
      args.json = argv[++i];
      if (args.json.empty()) {
        *error = "--json requires a non-empty path";
        return std::nullopt;
      }
    } else {
      *error = "unknown argument '" + std::string(arg) + "'";
      return std::nullopt;
    }
  }
  return args;
}

std::string bench_usage(std::string_view argv0) {
  std::string usage = "usage: ";
  usage += argv0;
  usage +=
      " [--reps N] [--fast] [--jobs N] [--json PATH] [--profile]\n"
      "       [--batch=N] [--no-batch] [--shards=N] [--proxy-cost=US]\n"
      "  --reps N     repetitions per configuration (default: the paper's "
      "count)\n"
      "  --fast       shrink durations/repetitions for smoke runs\n"
      "  --jobs N     parallel simulation cells (default: hardware "
      "concurrency);\n"
      "               results are byte-identical for every N\n"
      "  --json PATH  also write the unified machine-readable report\n"
      "  --profile    self-profile every cell (flight recorder + timers);\n"
      "               adds a deterministic `profile` block to the JSON and\n"
      "               a wall-time table on stderr; results are unchanged\n"
      "  --batch=N    events per dispatch batch / arrivals per client block\n"
      "               (default 64); results are byte-identical for every N\n"
      "  --no-batch   per-event dispatch (equivalent to --batch=1)\n"
      "  --shards=N   simulator shards for the conservative-lookahead\n"
      "               parallel engine (default 1); results are\n"
      "               byte-identical for every N\n"
      "  --proxy-cost=US\n"
      "               per-request sidecar CPU in microseconds for the\n"
      "               data-plane cost model (default 0 = model off;\n"
      "               0 is byte-identical to a cost-free run)\n";
  return usage;
}

BenchArgs parse_bench_args(int argc, char** argv) {
  std::string error;
  if (auto args = try_parse_bench_args(argc, argv, &error)) return *args;
  std::cerr << "error: " << error << '\n'
            << bench_usage(argc > 0 ? argv[0] : "bench");
  std::exit(2);
}

}  // namespace l3::exp
