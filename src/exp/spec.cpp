#include "l3/exp/spec.h"

#include "l3/common/assert.h"
#include "l3/common/rng.h"

#include <memory>

namespace l3::exp {

Cell ExperimentSpec::cell_at(std::size_t index) const {
  L3_EXPECTS(index < cell_count());
  const auto reps = static_cast<std::size_t>(repetitions);
  Cell cell;
  cell.rep = static_cast<int>(index % reps);
  index /= reps;
  cell.variant = index % variants.size();
  index /= variants.size();
  cell.policy = index % policies.size();
  cell.scenario = index / policies.size();
  return cell;
}

std::uint64_t cell_seed(std::uint64_t experiment_seed, const Cell& cell) {
  // One string tag encoding all coordinates: SplitRng's tag split hashes it
  // sequentially (FNV-1a), so distinct coordinates can't collide the way
  // chained commutative index-splits could.
  std::string tag = "cell/s";
  tag += std::to_string(cell.scenario);
  tag += "/p";
  tag += std::to_string(cell.policy);
  tag += "/v";
  tag += std::to_string(cell.variant);
  tag += "/r";
  tag += std::to_string(cell.rep);
  return SplitRng(experiment_seed).split(tag).seed();
}

ExperimentSpec scenario_grid(std::string name,
                             std::vector<workload::ScenarioTrace> scenarios,
                             std::vector<workload::PolicyKind> policies,
                             workload::RunnerConfig base, int repetitions,
                             std::vector<ConfigVariant> variants,
                             PerScenarioFn per_scenario) {
  L3_EXPECTS(!scenarios.empty());
  L3_EXPECTS(!policies.empty());
  L3_EXPECTS(repetitions >= 1);
  if (variants.empty()) variants.push_back({"", nullptr});

  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.repetitions = repetitions;
  spec.seed = base.seed;
  spec.scenarios.clear();
  for (const auto& trace : scenarios) spec.scenarios.push_back(trace.name());
  spec.policies.clear();
  for (const auto kind : policies) {
    spec.policies.emplace_back(workload::policy_name(kind));
  }
  spec.variants.clear();
  for (const auto& variant : variants) spec.variants.push_back(variant.label);

  // The cell closure shares the immutable inputs across worker threads.
  auto traces = std::make_shared<const std::vector<workload::ScenarioTrace>>(
      std::move(scenarios));
  auto kinds = std::make_shared<const std::vector<workload::PolicyKind>>(
      std::move(policies));
  auto vars = std::make_shared<const std::vector<ConfigVariant>>(
      std::move(variants));
  spec.cell = [traces, kinds, vars, base, per_scenario](
                  const Cell& cell, std::uint64_t seed) -> CellData {
    workload::RunnerConfig config = base;
    config.seed = seed;
    const auto& variant = (*vars)[cell.variant];
    if (variant.apply) variant.apply(config);
    if (per_scenario) per_scenario(cell.scenario, config);
    return workload::run_scenario((*traces)[cell.scenario],
                                  (*kinds)[cell.policy], config);
  };
  return spec;
}

}  // namespace l3::exp
