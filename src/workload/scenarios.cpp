#include "l3/workload/scenarios.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <cmath>

namespace l3::workload {
namespace {

/// Bounded random walk: reflects at the bounds.
class Walk {
 public:
  Walk(double start, double lo, double hi, double sigma)
      : value_(std::clamp(start, lo, hi)), lo_(lo), hi_(hi), sigma_(sigma) {
    L3_EXPECTS(hi >= lo);
  }

  double advance(SplitRng& rng) {
    if (sigma_ > 0.0) {
      value_ += rng.normal(0.0, sigma_);
      if (value_ < lo_) value_ = lo_ + (lo_ - value_);
      if (value_ > hi_) value_ = hi_ - (value_ - hi_);
      value_ = std::clamp(value_, lo_, hi_);
    }
    return value_;
  }

  double value() const { return value_; }

 private:
  double value_;
  double lo_, hi_, sigma_;
};

/// Transient multiplicative disturbance with linear decay.
struct Spike {
  double remaining = 0.0;  // seconds left
  double duration = 1.0;
  double mult = 1.0;

  double factor() const {
    if (remaining <= 0.0) return 1.0;
    // Linear decay from `mult` back to 1.
    return 1.0 + (mult - 1.0) * (remaining / duration);
  }

  void step(SimDuration dt) { remaining = std::max(0.0, remaining - dt); }
  bool active() const { return remaining > 0.0; }
};

}  // namespace

ScenarioTrace generate_scenario(const ScenarioShape& shape,
                                std::uint64_t seed) {
  L3_EXPECTS(shape.clusters >= 1);
  L3_EXPECTS(shape.cluster_med_mult.empty() ||
             shape.cluster_med_mult.size() == shape.clusters);
  L3_EXPECTS(shape.cluster_succ_bonus.empty() ||
             shape.cluster_succ_bonus.size() == shape.clusters);
  ScenarioTrace trace(shape.name, shape.clusters, shape.duration);
  SplitRng root(seed);

  // Request volume.
  {
    SplitRng rng = root.split("rps");
    Walk rps(shape.rps_base, shape.rps_lo, shape.rps_hi, shape.rps_sigma);
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      trace.set_rps(s, std::max(1.0, rps.advance(rng)));
    }
  }

  const SimDuration dt = trace.dt();
  for (std::size_t c = 0; c < shape.clusters; ++c) {
    SplitRng rng = root.split("cluster").split(c);
    const double med_mult =
        shape.cluster_med_mult.empty() ? 1.0 : shape.cluster_med_mult[c];
    const double succ_bonus =
        shape.cluster_succ_bonus.empty() ? 0.0 : shape.cluster_succ_bonus[c];

    Walk median(rng.uniform(shape.med_lo, shape.med_hi), shape.med_lo,
                shape.med_hi, shape.med_sigma);
    Walk ratio(rng.uniform(shape.ratio_lo, shape.ratio_hi), shape.ratio_lo,
               shape.ratio_hi, shape.ratio_sigma);
    Walk success(shape.succ_hi, shape.succ_lo, shape.succ_hi,
                 shape.succ_sigma);
    Spike spike;
    Spike drop;  // success-rate drop; `mult` reused as the drop target
    double drop_target = 1.0;

    for (std::size_t s = 0; s < trace.steps(); ++s) {
      const SimTime t = static_cast<double>(s) * dt;

      // Rotating slow window.
      double slow_med = 1.0;
      double slow_ratio = 1.0;
      if (shape.slow_period > 0.0) {
        const auto epoch = static_cast<std::size_t>(t / shape.slow_period);
        const SimTime within = t - static_cast<double>(epoch) *
                                       shape.slow_period;
        if (epoch % shape.clusters == c && within < shape.slow_duration) {
          slow_med = shape.slow_med_mult;
          slow_ratio = shape.slow_ratio_mult;
        }
      }

      // Transient P99 spikes.
      if (!spike.active() && rng.bernoulli(shape.spike_prob)) {
        spike.duration = shape.spike_duration;
        spike.remaining = shape.spike_duration;
        spike.mult = rng.uniform(shape.spike_mult_lo, shape.spike_mult_hi);
      }

      // Transient success-rate drops.
      if (!drop.active() && rng.bernoulli(shape.drop_prob)) {
        drop.duration = rng.uniform(shape.drop_dur_lo, shape.drop_dur_hi);
        drop.remaining = drop.duration;
        drop_target = rng.uniform(shape.drop_lo, shape.drop_hi);
      }

      TracePoint& p = trace.at(c, s);
      const double med = median.advance(rng) * med_mult * slow_med;
      const double tail_ratio =
          std::max(1.05, ratio.advance(rng) * slow_ratio * spike.factor());
      p.median = med;
      p.p99 = std::min(med * tail_ratio, std::max(shape.max_p99, med * 1.05));
      double sr = std::clamp(success.advance(rng) + succ_bonus, 0.0, 1.0);
      if (drop.active()) sr = std::min(sr, drop_target);
      p.success_rate = sr;

      spike.step(dt);
      drop.step(dt);
    }
  }
  return trace;
}

ScenarioTrace make_scenario1(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "scenario-1";
  s.rps_base = 300.0;
  s.rps_lo = 270.0;
  s.rps_hi = 330.0;
  s.rps_sigma = 3.0;
  s.med_lo = 0.050;
  s.med_hi = 0.115;
  s.med_sigma = 0.002;
  s.ratio_lo = 2.0;
  s.ratio_hi = 7.0;
  s.ratio_sigma = 0.20;
  s.spike_prob = 0.006;
  s.spike_mult_lo = 2.0;
  s.spike_mult_hi = 4.0;
  s.spike_duration = 25.0;
  s.slow_period = 150.0;
  s.slow_duration = 40.0;
  s.slow_med_mult = 1.7;
  s.slow_ratio_mult = 2.0;
  // Fig 1a: cluster-2 is PERSISTENTLY the worst backend (its median often
  // above the others' P99), cluster-1 the best — persistent asymmetry is
  // what lets a latency-aware balancer escape the slow cluster's tail.
  s.cluster_med_mult = {0.75, 2.3, 1.05};
  s.max_p99 = 1.0;  // Fig 1a tops out near ~950 ms
  return generate_scenario(s, seed);
}

ScenarioTrace make_scenario2(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "scenario-2";
  s.rps_base = 120.0;
  s.rps_lo = 45.0;
  s.rps_hi = 200.0;
  s.rps_sigma = 6.0;
  s.med_lo = 0.003;
  s.med_hi = 0.009;
  s.med_sigma = 0.0004;
  s.ratio_lo = 3.0;
  s.ratio_hi = 11.0;
  s.ratio_sigma = 0.25;
  s.spike_prob = 0.012;
  s.spike_mult_lo = 10.0;
  s.spike_mult_hi = 28.0;  // up to ~2400 ms on a 9 ms median (Fig 1b)
  s.spike_duration = 35.0;
  // §5.3.1: in scenarios 1–2 "the median latency of one backend [is] more
  // often worse than the 99th percentile latency of the other backends" —
  // the rotating slow cluster runs an order of magnitude above its peers.
  s.slow_period = 90.0;
  s.slow_duration = 55.0;
  s.slow_med_mult = 10.0;
  s.slow_ratio_mult = 1.0;
  s.max_p99 = 2.4;  // Fig 1b: spikes up to ~2400 ms
  return generate_scenario(s, seed);
}

ScenarioTrace make_scenario3(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "scenario-3";
  s.rps_base = 150.0;
  s.rps_lo = 130.0;
  s.rps_hi = 170.0;
  s.rps_sigma = 2.0;
  s.med_lo = 0.035;
  s.med_hi = 0.065;
  s.med_sigma = 0.001;
  s.ratio_lo = 3.0;
  s.ratio_hi = 10.0;
  s.ratio_sigma = 0.25;
  s.spike_prob = 0.008;
  s.spike_mult_lo = 3.0;
  s.spike_mult_hi = 8.0;  // irregular peaks to ~2000 ms (Fig 6a)
  s.spike_duration = 30.0;
  s.slow_period = 120.0;
  s.slow_duration = 40.0;
  s.slow_med_mult = 2.0;
  s.slow_ratio_mult = 2.5;
  s.max_p99 = 2.0;  // Fig 6a: peaks ~2000 ms
  return generate_scenario(s, seed);
}

ScenarioTrace make_scenario4(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "scenario-4";
  s.rps_base = 120.0;
  s.rps_lo = 80.0;
  s.rps_hi = 160.0;
  s.rps_sigma = 4.0;
  s.med_lo = 0.040;
  s.med_hi = 0.070;
  s.med_sigma = 0.001;
  s.ratio_lo = 3.0;
  s.ratio_hi = 10.0;
  s.ratio_sigma = 0.40;  // highest tail fluctuation of the five (§5.2.2)
  s.spike_prob = 0.010;
  s.spike_mult_lo = 4.0;
  s.spike_mult_hi = 12.0;  // peaks to ~5000 ms (Fig 6b)
  s.spike_duration = 30.0;
  s.slow_period = 100.0;
  s.slow_duration = 35.0;
  s.slow_med_mult = 1.5;
  s.slow_ratio_mult = 2.0;
  s.max_p99 = 5.0;  // Fig 6b: peaks ~5000 ms
  return generate_scenario(s, seed);
}

ScenarioTrace make_scenario5(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "scenario-5";
  s.rps_base = 200.0;
  s.rps_lo = 185.0;
  s.rps_hi = 215.0;
  s.rps_sigma = 1.5;
  s.med_lo = 0.040;
  s.med_hi = 0.056;  // σ of the median ≈ 6.3 ms (§5.3.1)
  s.med_sigma = 0.0015;
  s.ratio_lo = 1.8;
  s.ratio_hi = 3.2;
  s.ratio_sigma = 0.08;
  s.spike_prob = 0.003;
  s.spike_mult_lo = 1.4;
  s.spike_mult_hi = 2.2;  // P99 stays ~100–300 ms (Fig 6c)
  s.spike_duration = 25.0;
  s.slow_period = 140.0;
  s.slow_duration = 45.0;
  s.slow_med_mult = 1.45;
  s.slow_ratio_mult = 2.4;
  s.max_p99 = 0.35;  // Fig 6c: P99 stays ~100–300 ms
  return generate_scenario(s, seed);
}

ScenarioTrace make_failure1(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "failure-1";
  // Latency profile of scenario-1 (the paper converts existing scenarios).
  s.rps_base = 300.0;
  s.rps_lo = 270.0;
  s.rps_hi = 330.0;
  s.rps_sigma = 3.0;
  s.med_lo = 0.050;
  s.med_hi = 0.115;
  s.med_sigma = 0.002;
  s.ratio_lo = 2.0;
  s.ratio_hi = 7.0;
  s.ratio_sigma = 0.20;
  s.spike_prob = 0.006;
  s.spike_mult_lo = 2.0;
  s.spike_mult_hi = 4.0;
  s.spike_duration = 25.0;
  s.slow_period = 150.0;
  s.slow_duration = 40.0;
  s.slow_med_mult = 1.7;
  s.slow_ratio_mult = 2.0;
  s.cluster_med_mult = {0.75, 2.3, 1.05};
  s.max_p99 = 1.0;
  // Heavy failure injection: average ≈ 91.4 %, drops down to ~30 % (§5.3.2).
  s.succ_lo = 0.955;
  s.succ_hi = 0.995;
  s.succ_sigma = 0.003;
  s.drop_prob = 0.005;
  s.drop_lo = 0.30;
  s.drop_hi = 0.70;
  s.drop_dur_lo = 20.0;
  s.drop_dur_hi = 45.0;
  return generate_scenario(s, seed);
}

ScenarioTrace make_failure2(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "failure-2";
  // Latency profile of scenario-2.
  s.rps_base = 120.0;
  s.rps_lo = 45.0;
  s.rps_hi = 200.0;
  s.rps_sigma = 6.0;
  s.med_lo = 0.003;
  s.med_hi = 0.009;
  s.med_sigma = 0.0004;
  s.ratio_lo = 3.0;
  s.ratio_hi = 11.0;
  s.ratio_sigma = 0.25;
  s.spike_prob = 0.012;
  s.spike_mult_lo = 10.0;
  s.spike_mult_hi = 28.0;
  s.spike_duration = 35.0;
  s.slow_period = 90.0;
  s.slow_duration = 55.0;
  s.slow_med_mult = 10.0;
  s.slow_ratio_mult = 1.0;
  // Light failure injection: ~99 % with short ≤5 % dips; cluster-3 is the
  // consistently best backend (≈99.8 %, the §5.2.1 success-rate ceiling).
  s.succ_lo = 0.985;
  s.succ_hi = 0.996;
  s.succ_sigma = 0.001;
  s.drop_prob = 0.004;
  s.drop_lo = 0.90;
  s.drop_hi = 0.95;
  s.drop_dur_lo = 25.0;
  s.drop_dur_hi = 50.0;
  s.cluster_succ_bonus = {0.0, -0.004, 0.010};
  s.max_p99 = 2.4;
  return generate_scenario(s, seed);
}

ScenarioTrace make_failure1_chaos(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "failure-1-chaos";
  // Latency profile of scenario-1, like make_failure1 — but the success
  // channel carries only light background noise; the real failures come
  // from failure1_faults() as injected mesh events.
  s.rps_base = 300.0;
  s.rps_lo = 270.0;
  s.rps_hi = 330.0;
  s.rps_sigma = 3.0;
  s.med_lo = 0.050;
  s.med_hi = 0.115;
  s.med_sigma = 0.002;
  s.ratio_lo = 2.0;
  s.ratio_hi = 7.0;
  s.ratio_sigma = 0.20;
  s.spike_prob = 0.006;
  s.spike_mult_lo = 2.0;
  s.spike_mult_hi = 4.0;
  s.spike_duration = 25.0;
  s.slow_period = 150.0;
  s.slow_duration = 40.0;
  s.slow_med_mult = 1.7;
  s.slow_ratio_mult = 2.0;
  s.cluster_med_mult = {0.75, 2.3, 1.05};
  s.max_p99 = 1.0;
  s.succ_lo = 0.985;
  s.succ_hi = 0.998;
  s.succ_sigma = 0.001;
  return generate_scenario(s, seed);
}

ScenarioTrace make_failure2_chaos(std::uint64_t seed) {
  ScenarioShape s;
  s.name = "failure-2-chaos";
  // Latency profile of scenario-2; near-perfect success channel with
  // cluster-3 the slightly-best backend (the §5.2.1 ceiling), failures
  // injected by failure2_faults().
  s.rps_base = 120.0;
  s.rps_lo = 45.0;
  s.rps_hi = 200.0;
  s.rps_sigma = 6.0;
  s.med_lo = 0.003;
  s.med_hi = 0.009;
  s.med_sigma = 0.0004;
  s.ratio_lo = 3.0;
  s.ratio_hi = 11.0;
  s.ratio_sigma = 0.25;
  s.spike_prob = 0.012;
  s.spike_mult_lo = 10.0;
  s.spike_mult_hi = 28.0;
  s.spike_duration = 35.0;
  s.slow_period = 90.0;
  s.slow_duration = 55.0;
  s.slow_med_mult = 10.0;
  s.slow_ratio_mult = 1.0;
  s.succ_lo = 0.992;
  s.succ_hi = 0.998;
  s.succ_sigma = 0.0005;
  s.cluster_succ_bonus = {0.0, -0.002, 0.002};
  s.max_p99 = 2.4;
  return generate_scenario(s, seed);
}

chaos::FaultPlan failure1_faults() {
  // Heavy timeline over the 600 s run: every backend cluster loses all
  // replicas at least once, the WAN degrades twice, metrics and control
  // each go away once. Average success lands near failure-1's ≈91 % for a
  // success-blind balancer; a success-aware one can dodge most of it.
  chaos::FaultPlan plan;
  plan.crash("api", 1, 30.0, 45.0)
      .brownout(0, 2, 95.0, 40.0, 0.080)
      .crash("api", 2, 150.0, 40.0)
      .scrape_outage(210.0, 30.0)
      .partition(0, 1, 260.0, 35.0)
      .controller_pause(320.0, 25.0)
      .crash("api", 1, 370.0, 50.0)
      .brownout(0, 1, 450.0, 40.0, 0.060)
      .crash("api", 2, 510.0, 40.0);
  return plan;
}

chaos::FaultPlan failure2_faults() {
  // Light timeline: short partial crashes (single replica or brief full
  // outage) and brief WAN / control-plane disturbances — the ~99 % regime
  // with short dips.
  chaos::FaultPlan plan;
  plan.crash("api", 1, 40.0, 30.0, /*replica=*/0)
      .crash("api", 1, 90.0, 15.0)
      .brownout(0, 2, 140.0, 25.0, 0.040)
      .partition(0, 1, 200.0, 20.0)
      .scrape_outage(300.0, 20.0)
      .crash("api", 2, 380.0, 15.0)
      .controller_pause(460.0, 20.0);
  return plan;
}

std::vector<ScenarioTrace> all_latency_scenarios(std::uint64_t seed_base) {
  std::vector<ScenarioTrace> out;
  out.push_back(make_scenario1(seed_base + 0));
  out.push_back(make_scenario2(seed_base + 1));
  out.push_back(make_scenario3(seed_base + 2));
  out.push_back(make_scenario4(seed_base + 3));
  out.push_back(make_scenario5(seed_base + 4));
  return out;
}

}  // namespace l3::workload
