#include "l3/workload/trace_behavior.h"

#include "l3/common/assert.h"
#include "l3/common/lognormal.h"

#include <algorithm>
#include <utility>

namespace l3::workload {

TraceReplayBehavior::TraceReplayBehavior(
    std::shared_ptr<const ScenarioTrace> trace, std::size_t trace_cluster,
    SimTime start_offset, double failure_latency_factor)
    : trace_(std::move(trace)),
      trace_cluster_(trace_cluster),
      start_offset_(start_offset),
      failure_latency_factor_(failure_latency_factor) {
  L3_EXPECTS(trace_ != nullptr);
  L3_EXPECTS(trace_cluster < trace_->cluster_count());
  L3_EXPECTS(failure_latency_factor > 0.0);
}

SimDuration TraceReplayBehavior::sample_latency(const TracePoint& point,
                                                SplitRng& rng) {
  const double tail_level = std::max(point.p99, point.median);
  if (rng.bernoulli(kTailWeight)) {
    return tail_level * rng.lognormal(0.0, kComponentSigma);
  }
  return point.median * rng.lognormal(0.0, kComponentSigma);
}

void TraceReplayBehavior::invoke(const mesh::BehaviorContext& ctx,
                                 mesh::OutcomeFn done) {
  const SimTime scenario_time =
      std::max(0.0, ctx.sim.now() - start_offset_);
  const TracePoint& point = trace_->point(trace_cluster_, scenario_time);

  const SimDuration exec = sample_latency(point, ctx.rng);
  const bool ok = ctx.rng.bernoulli(point.success_rate);
  const SimDuration delay = ok ? exec : exec * failure_latency_factor_;
  ctx.sim.schedule_after(delay, [done = std::move(done), ok]() mutable {
    done(mesh::Outcome{ok});
  });
}

}  // namespace l3::workload
