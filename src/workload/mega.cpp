#include "l3/workload/mega.h"

#include "l3/chaos/fault_plan.h"
#include "l3/chaos/injector.h"
#include "l3/common/assert.h"
#include "l3/common/rng.h"
#include "l3/core/controller.h"
#include "l3/lb/l3_policy.h"
#include "l3/mesh/deployment.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/shard_engine.h"
#include "l3/sim/simulator.h"
#include "l3/workload/client.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace l3::workload {
namespace {

/// Contiguous block partitioning: region r belongs to shard r·S/R.
std::size_t region_owner(std::size_t region, std::size_t regions,
                         std::size_t shards) {
  return region * shards / regions;
}

mesh::MeshConfig make_mesh_config(const MegaConfig& config,
                                  sim::ShardRouter& router) {
  mesh::MeshConfig mc;
  mc.local_delay = config.local_delay;
  // Health probes would read remote replica state across shard boundaries;
  // mega keeps failure visibility metrics-only (like the chaos benches).
  mc.health_probe_interval = 0.0;
  mc.proxy_cost = config.proxy_cost;
  mc.shard_router = &router;
  return mc;
}

/// Everything one shard owns. Constructed, run and destroyed on the shard's
/// own thread (the Simulator thread-affinity contract).
struct ShardState {
  const MegaConfig& config;
  sim::ShardEngine& engine;
  sim::ShardRouter& router;
  std::vector<mesh::ClusterId> owned;
  sim::Simulator sim;
  SplitRng root;
  mesh::Mesh mesh;
  // Production layout scaled out: one TSDB + scraper + controller + client
  // per owned region (parallel to `owned`).
  std::vector<std::unique_ptr<metrics::TimeSeriesDb>> tsdbs;
  std::vector<std::unique_ptr<metrics::Scraper>> scrapers;
  std::vector<std::unique_ptr<core::L3Controller>> controllers;
  std::vector<std::unique_ptr<OpenLoopClient>> clients;
  std::unique_ptr<chaos::FaultInjector> injector;
  sim::PeriodicHandle audit_task;

  /// Phase A: topology + owned deployments. Every shard builds the same
  /// clusters and the same frozen WAN table (cross-region samples are drawn
  /// source-side, so each copy only ever serves its own regions — but the
  /// partition checks on the return leg read the dest copy, which is why
  /// the copies must be identical, chaos faults included).
  ShardState(const MegaConfig& cfg, sim::ShardEngine& eng, std::size_t shard,
             std::vector<mesh::ServiceDeployment*>& dep_of_region)
      : config(cfg),
        engine(eng),
        router(eng.router(shard)),
        root(cfg.seed),
        mesh(sim, root.split("mesh"), make_mesh_config(cfg, eng.router(shard))) {
    router.attach(sim);
    sim.set_dispatch_batch(cfg.dispatch_batch);
    for (std::size_t r = 0; r < cfg.regions; ++r) {
      mesh.add_cluster("region-" + std::to_string(r));
    }
    mesh::WanModel::Link link;
    link.base = cfg.wan_base;
    link.jitter_frac = cfg.wan_jitter_frac;
    link.flap_amp = 0.0;  // flap-free: the base is the effective floor
    for (std::uint32_t i = 0; i < cfg.regions; ++i) {
      for (std::uint32_t j = 0; j < cfg.regions; ++j) {
        if (i != j) mesh.wan().set_link(i, j, link);
      }
    }
    mesh.wan().freeze();
    if (cfg.chaos) arm_wan_faults();

    mesh::DeploymentConfig dc;
    dc.replicas = cfg.replicas_per_region;
    for (std::size_t r = 0; r < cfg.regions; ++r) {
      if (region_owner(r, cfg.regions, cfg.shards) != shard) continue;
      const auto region = static_cast<mesh::ClusterId>(r);
      owned.push_back(region);
      auto& dep = mesh.deploy(
          "api", region, dc,
          std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.060));
      dep_of_region[r] = &dep;
    }
  }

  /// WAN fault timeline, installed identically into every shard's copy
  /// (disturbances and partitions are pure functions of time — no events,
  /// so the executed-event count stays shard-count-invariant).
  void arm_wan_faults() {
    const SimTime d = config.duration;
    mesh.wan().add_disturbance({.from = 0, .to = 1, .start = 0.3 * d,
                                .end = 0.5 * d, .extra = 0.010});
    mesh.wan().add_disturbance({.from = 1, .to = 0, .start = 0.3 * d,
                                .end = 0.5 * d, .extra = 0.010});
    mesh.wan().add_partition({.a = 1, .b = 2, .start = 0.5 * d,
                              .end = 0.6 * d});
  }

  /// Phase B: remote declarations + per-region control planes + load. Runs
  /// after the cross-shard barrier, so every dep_of_region slot is filled.
  void wire(const std::vector<mesh::ServiceDeployment*>& dep_of_region) {
    for (std::size_t r = 0; r < config.regions; ++r) {
      if (region_owner(r, config.regions, config.shards) == router.shard()) {
        continue;
      }
      mesh.declare_remote("api", static_cast<mesh::ClusterId>(r),
                          dep_of_region[r]);
    }
    chaos::FaultPlan plan;
    for (const mesh::ClusterId region : owned) {
      mesh.proxy(region, "api");  // materialise proxy + TrafficSplit
      const std::string& name = mesh.cluster_names()[region];

      auto tsdb = std::make_unique<metrics::TimeSeriesDb>();
      auto scraper = std::make_unique<metrics::Scraper>(sim, *tsdb);
      scraper->add_target(name, mesh.registry(region));
      scraper->start(config.scrape_interval);

      auto controller = std::make_unique<core::L3Controller>(
          mesh, *tsdb, region, std::make_unique<lb::L3Policy>());
      controller->manage(*mesh.find_split(region, "api"));
      controller->start();

      OpenLoopClient::Config cc;
      cc.arrival_batch = config.dispatch_batch;
      auto client = std::make_unique<OpenLoopClient>(
          mesh, region, "api",
          [rps = config.rps_per_region](SimTime) { return rps; },
          root.split("client@" + name), cc);
      client->start(0.0, config.duration);

      if (config.chaos && region % 7 == 3) {
        plan.crash("api", region, 0.3 * config.duration,
                   0.2 * config.duration);
      }
      tsdbs.push_back(std::move(tsdb));
      scrapers.push_back(std::move(scraper));
      controllers.push_back(std::move(controller));
      clients.push_back(std::move(client));
    }
    if (!plan.empty()) {
      // Crash events land on this (owning) shard's simulator — the fault
      // epoch is the owner's, exactly as in the single-queue run.
      injector = std::make_unique<chaos::FaultInjector>(sim, mesh);
      injector->arm(plan);
    }
  }

  /// Shard-0 audit coordinator: each tick posts a keyed probe to every
  /// region; the owner replies with its deployment's handled count, and the
  /// replies merge on shard 0 into one cross-shard snapshot stream. Both
  /// legs ride the mailbox keys, so the log is shard-count-invariant.
  void start_audit(const std::vector<mesh::ServiceDeployment*>& dep_of_region,
                   std::vector<MegaAuditEntry>& audit) {
    if (config.audit_interval <= 0.0) return;
    sim::ShardEngine* const eng = &engine;
    const mesh::ServiceDeployment* const* const deps = dep_of_region.data();
    std::vector<MegaAuditEntry>* const log = &audit;
    const SimDuration la = config.wan_base;
    const auto regions = static_cast<std::uint32_t>(config.regions);
    audit_task = sim.schedule_every(
        config.audit_interval, [this, eng, deps, log, la, regions] {
          const SimTime now = sim.now();
          for (std::uint32_t r = 0; r < regions; ++r) {
            const mesh::ServiceDeployment* const dep = deps[r];
            router.post(0, r, now + la, [dep, eng, log, r, la] {
              const std::uint64_t handled = dep->completed();
              sim::ShardRouter& rt = eng->router_for_cluster(r);
              rt.post(r, 0, rt.sim().now() + la, [eng, log, r, handled] {
                log->push_back(MegaAuditEntry{
                    eng->router(0).sim().now(), r, handled});
              });
            });
          }
        });
  }

  /// Post-run harvest into plain-data slots (this shard's rows only).
  void collect(const std::vector<mesh::ServiceDeployment*>& dep_of_region,
               std::vector<MegaRegionResult>& slots, std::uint64_t& events) {
    audit_task.cancel();
    for (std::size_t i = 0; i < owned.size(); ++i) {
      const mesh::ClusterId region = owned[i];
      const ClientSummary summary = summarize_records(clients[i]->records());
      MegaRegionResult& out = slots[region];
      out.requests = clients[i]->completed();
      out.success_rate = summary.success_rate;
      out.p50 = summary.latency.p50;
      out.p99 = summary.latency.p99;
      out.handled = dep_of_region[region]->completed();
    }
    events = sim.executed();
  }
};

}  // namespace

MegaResult run_mega(const MegaConfig& config) {
  L3_EXPECTS(config.regions >= 1);
  L3_EXPECTS(config.regions <= 256);  // delivered-key origin-cluster field
  L3_EXPECTS(config.shards >= 1);
  L3_EXPECTS(config.shards <= config.regions);
  L3_EXPECTS(config.replicas_per_region >= 1);
  L3_EXPECTS(config.wan_base > 0.0);
  L3_EXPECTS(config.duration > 0.0);
  L3_EXPECTS(!config.chaos || config.regions >= 3);

  const std::size_t regions = config.regions;
  const std::size_t shards = config.shards;

  sim::ShardEngine::Config ecfg;
  ecfg.shards = shards;
  ecfg.pin_threads = config.pin_threads;
  ecfg.mailbox_capacity = config.mailbox_capacity;
  sim::ShardEngine engine(ecfg);
  std::vector<std::size_t> owners(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    owners[r] = region_owner(r, regions, shards);
  }
  engine.set_cluster_owners(std::move(owners));
  for (std::uint32_t i = 0; i < regions; ++i) {
    for (std::uint32_t j = 0; j < regions; ++j) {
      if (i != j) engine.set_cluster_lookahead(i, j, config.wan_base);
    }
  }

  std::vector<mesh::ServiceDeployment*> dep_of_region(regions, nullptr);
  std::vector<MegaRegionResult> region_slots(regions);
  std::vector<std::uint64_t> shard_events(shards, 0);
  std::vector<MegaAuditEntry> audit;

  const auto wall_start = std::chrono::steady_clock::now();
  engine.run([&](std::size_t shard) {
    auto state =
        std::make_unique<ShardState>(config, engine, shard, dep_of_region);
    engine.sync();  // every dep_of_region slot is filled
    state->wire(dep_of_region);
    if (shard == 0) state->start_audit(dep_of_region, audit);
    engine.sync();  // remote declarations done, load armed everywhere
    state->router.run_until(config.duration + 5.0);
    state->collect(dep_of_region, region_slots, shard_events[shard]);
    engine.sync();  // peers may still execute events referencing our state
    state.reset();  // destroy on the shard's own thread
  });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  MegaResult result;
  result.regions = std::move(region_slots);
  result.audit = std::move(audit);
  result.shards = shards;
  for (const MegaRegionResult& r : result.regions) {
    result.total_requests += r.requests;
  }
  for (const std::uint64_t e : shard_events) result.total_events += e;
  result.mailbox = engine.mailbox_stats();
  result.wall_seconds = wall.count();
  return result;
}

std::string MegaResult::digest() const {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "mega regions=%zu total_requests=%llu total_events=%llu\n",
                regions.size(),
                static_cast<unsigned long long>(total_requests),
                static_cast<unsigned long long>(total_events));
  out += buf;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const MegaRegionResult& row = regions[r];
    std::snprintf(buf, sizeof buf,
                  "region=%zu requests=%llu ok=%.17g p50=%.17g p99=%.17g "
                  "handled=%llu\n",
                  r, static_cast<unsigned long long>(row.requests),
                  row.success_rate, row.p50, row.p99,
                  static_cast<unsigned long long>(row.handled));
    out += buf;
  }
  for (const MegaAuditEntry& a : audit) {
    std::snprintf(buf, sizeof buf, "audit t=%.17g region=%u handled=%llu\n",
                  a.time, a.region,
                  static_cast<unsigned long long>(a.handled));
    out += buf;
  }
  return out;
}

}  // namespace l3::workload
