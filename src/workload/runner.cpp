#include "l3/workload/runner.h"

#include "l3/chaos/injector.h"
#include "l3/common/assert.h"
#include "l3/lb/l3_policy.h"
#include "l3/lb/locality_policy.h"
#include "l3/lb/policy.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/obs_audit.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/obs/recorder.h"
#include "l3/sim/shard_engine.h"
#include "l3/sim/simulator.h"
#include "l3/workload/trace_behavior.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

namespace l3::workload {

std::string_view policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin:
      return "round-robin";
    case PolicyKind::kC3:
      return "C3";
    case PolicyKind::kL3:
      return "L3";
    case PolicyKind::kLocalityFailover:
      return "locality-failover";
  }
  return "unknown";
}

std::unique_ptr<lb::LoadBalancingPolicy> make_policy(
    PolicyKind kind, const lb::L3PolicyConfig& l3_config,
    const lb::C3PolicyConfig& c3_config) {
  switch (kind) {
    case PolicyKind::kRoundRobin:
      return std::make_unique<lb::RoundRobinPolicy>();
    case PolicyKind::kC3:
      return std::make_unique<lb::C3Policy>(c3_config);
    case PolicyKind::kL3:
      return std::make_unique<lb::L3Policy>(l3_config);
    case PolicyKind::kLocalityFailover:
      return std::make_unique<lb::LocalityFailoverPolicy>();
  }
  return nullptr;
}

RunResult run_scenario(const ScenarioTrace& trace, PolicyKind kind,
                       const RunnerConfig& config) {
  return run_scenario_with(trace, make_policy(kind, config.l3, config.c3),
                           config);
}

RunResult run_scenario_with(const ScenarioTrace& trace,
                            std::unique_ptr<lb::LoadBalancingPolicy> policy,
                            const RunnerConfig& config) {
  L3_EXPECTS(trace.cluster_count() == 3);  // the paper's test environment
  L3_EXPECTS(policy != nullptr);
  const SimDuration measured =
      config.duration > 0.0 ? std::min(config.duration, trace.duration())
                            : trace.duration();

  sim::Simulator sim;
  sim.set_dispatch_batch(config.dispatch_batch);

  // Self-observation: bind a flight recorder to this (simulation) thread for
  // the lifetime of the run. The instrumentation macros only read thread-
  // local state — no RNG draws, no event scheduling — so enabling the
  // recorder cannot change simulation results.
  std::optional<obs::Recorder> recorder;
  std::optional<obs::ScopedRecorderBind> recorder_bind;
  if (config.profile) {
    recorder.emplace();
    recorder_bind.emplace(*recorder);
  }

  SplitRng root(config.seed);

  mesh::MeshConfig mesh_config;
  mesh_config.local_delay = config.local_one_way;
  mesh_config.propagation_delay = config.propagation_delay;
  mesh_config.routing = config.routing;
  mesh_config.outlier_detection = config.outlier;
  mesh_config.proxy_cost = config.proxy_cost;
  mesh_config.request_timeout = config.request_timeout;
  mesh_config.health_probe_interval = config.health_probe_interval;
  mesh::Mesh mesh(sim, root.split("mesh"), mesh_config);

  const auto c1 = mesh.add_cluster("cluster-1", "eu-central-1");
  const auto c2 = mesh.add_cluster("cluster-2", "eu-west-3");
  const auto c3 = mesh.add_cluster("cluster-3", "eu-south-1");
  mesh::WanModel::Link wan_link;
  wan_link.base = config.wan_one_way;
  wan_link.jitter_frac = config.wan_jitter_frac;
  wan_link.flap_amp = config.wan_flap_amp;
  mesh.wan().set_symmetric(c1, c2, wan_link);
  mesh.wan().set_symmetric(c1, c3, wan_link);
  mesh.wan().set_symmetric(c2, c3, wan_link);

  // Deploy the trace-replay API workload in every cluster.
  auto shared_trace = std::make_shared<const ScenarioTrace>(trace);
  mesh::DeploymentConfig dc;
  dc.replicas = config.replicas_per_cluster;
  dc.concurrency = config.replica_concurrency;
  dc.queue_capacity = config.replica_queue_capacity;
  const std::string service = "api";
  for (mesh::ClusterId c : {c1, c2, c3}) {
    mesh.deploy(service, c, dc,
                std::make_unique<TraceReplayBehavior>(shared_trace, c,
                                                      config.warmup));
  }

  // Materialise the cluster-1 proxy + TrafficSplit before managing it.
  mesh.proxy(c1, service);

  // Prometheus + L3 controller (in cluster-1, like the paper's setup).
  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("cluster-1", mesh.registry(c1));
  scraper.start(config.scrape_interval);

  const std::string policy_label(policy->name());
  core::L3Controller controller(mesh, tsdb, c1, std::move(policy),
                                config.controller);
  if (config.controller.dynamic_penalty) {
    if (auto* l3_policy = dynamic_cast<lb::L3Policy*>(&controller.policy())) {
      // §7: derive P from the observed round-trip latency of failed
      // requests instead of the static constant.
      controller.set_penalty_hook([l3_policy](double failure_latency) {
        l3_policy->config().weighting.penalty =
            std::clamp(failure_latency, 0.05, 2.0);
      });
    }
  }
  controller.manage_all();
  controller.start();

  // Fault injection: plan times are relative to measurement start.
  chaos::FaultInjector injector(sim, mesh);
  injector.set_scraper(&scraper);
  injector.add_controller(&controller);
  if (!config.faults.empty()) injector.arm(config.faults, config.warmup);

  // Load generator in cluster-1 driving the scenario's request volume.
  const SimTime t0 = config.warmup;
  const SimTime t1 = config.warmup + measured;
  OpenLoopClient::Config client_config;
  client_config.mode = CallMode::kViaSplit;
  client_config.poisson = config.poisson_arrivals;
  client_config.max_retries = config.client_retries;
  client_config.retry_backoff = config.retry_backoff;
  client_config.arrival_batch = config.dispatch_batch;
  OpenLoopClient client(
      mesh, c1, service,
      [&trace, t0](SimTime t) { return trace.rps_at(std::max(0.0, t - t0)); },
      root.split("client"), client_config);
  client.start(0.0, t1);

  // Counter-track sampling at the scrape cadence. The sampler mutates only
  // recorder state, so the extra periodic events leave the simulation's
  // behaviour (RNG streams, request outcomes) untouched.
  sim::PeriodicHandle track_task;
  if (recorder) {
    track_task = sim.schedule_every(
        std::max(config.scrape_interval, 1.0),
        [&sim, &recorder] { recorder->sample_tracks(sim.now()); });
  }

  // Run, then drain outstanding responses. With --shards=N > 1 the run goes
  // through the shard engine: the fig topologies are RNG-coupled through
  // the legacy WAN discipline (the return delay is drawn dest-side on the
  // proxy's stream), so every cluster stays on shard 0 and the extra shards
  // idle at a +inf horizon — shard 0 then sees no coupled peer and executes
  // the whole run in a single window, byte-identical to the plain loop.
  if (config.shards <= 1) {
    sim.run_until(t1 + 30.0);
  } else {
    sim::ShardEngine engine(config.shards);
    engine.set_cluster_owners(
        std::vector<std::size_t>(mesh.clusters().size(), 0));
    engine.run([&](std::size_t shard) {
      if (shard != 0) return;
      sim::ShardRouter& router = engine.router(0);
      router.attach(sim);
      router.run_until(t1 + 30.0);
    });
  }
  track_task.cancel();

  RunResult result;
  result.policy = policy_label;
  result.scenario = trace.name();
  const auto records = client.records_after(t0);
  result.summary = summarize_records(records);
  result.timeline = aggregate_timeline(records, t0, t1);
  result.requests = records.size();
  result.weight_updates = mesh.control_plane().updates_applied();
  result.proxy_cost_stats = mesh.proxy(c1, service).cost_stats();
  result.traffic_share.assign(mesh.clusters().size(), 0.0);
  if (!records.empty()) {
    double attempts = 0.0;
    for (const auto& r : records) {
      result.traffic_share[r.backend_cluster] += 1.0;
      attempts += static_cast<double>(r.attempts);
    }
    for (auto& share : result.traffic_share) {
      share /= static_cast<double>(records.size());
    }
    result.mean_attempts = attempts / static_cast<double>(records.size());
  }
  if (recorder) {
    recorder->sample_tracks(sim.now());  // close the counter tracks
    result.profile = recorder->profile();
    // Audit tier: the final exposition of the controller cluster's registry
    // carries the low-cardinality l3_obs_* families.
    metrics::publish_audit(recorder->snapshot(), mesh.registry(c1),
                           "cluster-1", result.policy);
  }
  return result;
}

std::vector<RunResult> run_scenario_repeated(const ScenarioTrace& trace,
                                             PolicyKind kind,
                                             const RunnerConfig& config,
                                             int repetitions) {
  L3_EXPECTS(repetitions >= 1);
  std::vector<RunResult> results;
  results.reserve(static_cast<std::size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    RunnerConfig rep = config;
    rep.seed = config.seed + static_cast<std::uint64_t>(i) * 1000003ULL;
    results.push_back(run_scenario(trace, kind, rep));
  }
  return results;
}

double mean_p99(const std::vector<RunResult>& results) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += r.summary.latency.p99;
  return sum / static_cast<double>(results.size());
}

double mean_success_rate(const std::vector<RunResult>& results) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += r.summary.success_rate;
  return sum / static_cast<double>(results.size());
}

double mean_of(const std::vector<RunResult>& results,
               double (*accessor)(const RunResult&)) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += accessor(r);
  return sum / static_cast<double>(results.size());
}

}  // namespace l3::workload
