#include "l3/workload/trace_io.h"

#include "l3/common/assert.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

namespace l3::workload {
namespace {

std::vector<std::string> split_line(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, sep)) out.push_back(field);
  return out;
}

double parse_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  L3_EXPECTS(pos == s.size());
  return v;
}

}  // namespace

void save_trace_csv(const ScenarioTrace& trace, std::ostream& os) {
  os << "# scenario " << trace.name() << " clusters=" << trace.cluster_count()
     << " duration=" << trace.duration() << " dt=" << trace.dt() << '\n';
  os << "t,rps";
  for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
    os << ",c" << c << "_median,c" << c << "_p99,c" << c << "_success";
  }
  os << '\n';
  os << std::setprecision(10);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    const double t = static_cast<double>(s) * trace.dt();
    os << t << ',' << trace.rps_at(t);
    for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
      const TracePoint& p = trace.at(c, s);
      os << ',' << p.median << ',' << p.p99 << ',' << p.success_rate;
    }
    os << '\n';
  }
}

void save_trace_csv(const ScenarioTrace& trace, const std::string& path) {
  std::ofstream file(path);
  L3_EXPECTS(file.good());
  save_trace_csv(trace, file);
  L3_ENSURES(file.good());
}

ScenarioTrace load_trace_csv(std::istream& is) {
  std::string header;
  L3_EXPECTS(static_cast<bool>(std::getline(is, header)));
  L3_EXPECTS(header.rfind("# scenario ", 0) == 0);

  // Parse "# scenario <name> clusters=<C> duration=<D> dt=<dt>".
  std::istringstream hs(header);
  std::string hash, kw, name, clusters_kv, duration_kv, dt_kv;
  hs >> hash >> kw >> name >> clusters_kv >> duration_kv >> dt_kv;
  auto kv_value = [](const std::string& kv, const char* key) {
    const std::string prefix = std::string(key) + "=";
    L3_EXPECTS(kv.rfind(prefix, 0) == 0);
    return kv.substr(prefix.size());
  };
  const auto clusters =
      static_cast<std::size_t>(std::stoul(kv_value(clusters_kv, "clusters")));
  const double duration = parse_double(kv_value(duration_kv, "duration"));
  const double dt = parse_double(kv_value(dt_kv, "dt"));

  ScenarioTrace trace(name, clusters, duration, dt);

  std::string columns;
  L3_EXPECTS(static_cast<bool>(std::getline(is, columns)));  // column header

  std::string line;
  std::size_t step = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    L3_EXPECTS(step < trace.steps());
    const auto fields = split_line(line, ',');
    L3_EXPECTS(fields.size() == 2 + 3 * clusters);
    trace.set_rps(step, parse_double(fields[1]));
    for (std::size_t c = 0; c < clusters; ++c) {
      TracePoint& p = trace.at(c, step);
      p.median = parse_double(fields[2 + 3 * c]);
      p.p99 = parse_double(fields[3 + 3 * c]);
      p.success_rate = parse_double(fields[4 + 3 * c]);
    }
    ++step;
  }
  L3_ENSURES(step == trace.steps());
  return trace;
}

ScenarioTrace load_trace_csv(const std::string& path) {
  std::ifstream file(path);
  L3_EXPECTS(file.good());
  return load_trace_csv(file);
}

}  // namespace l3::workload
