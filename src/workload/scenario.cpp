#include "l3/workload/scenario.h"

#include <algorithm>

namespace l3::workload {

ScenarioTrace::ScenarioTrace(std::string name, std::size_t clusters,
                             SimDuration duration, SimDuration dt)
    : name_(std::move(name)),
      clusters_(clusters),
      duration_(duration),
      dt_(dt),
      steps_(static_cast<std::size_t>(duration / dt)) {
  L3_EXPECTS(clusters >= 1);
  L3_EXPECTS(duration > 0.0 && dt > 0.0 && duration >= dt);
  points_.assign(clusters_, std::vector<TracePoint>(steps_));
  rps_.assign(steps_, 100.0);
}

TracePoint& ScenarioTrace::at(std::size_t cluster, std::size_t step) {
  L3_EXPECTS(cluster < clusters_ && step < steps_);
  return points_[cluster][step];
}

const TracePoint& ScenarioTrace::at(std::size_t cluster,
                                    std::size_t step) const {
  L3_EXPECTS(cluster < clusters_ && step < steps_);
  return points_[cluster][step];
}

std::size_t ScenarioTrace::index(SimTime t) const {
  if (t <= 0.0) return 0;
  const auto idx = static_cast<std::size_t>(t / dt_);
  return std::min(idx, steps_ - 1);
}

const TracePoint& ScenarioTrace::point(std::size_t cluster, SimTime t) const {
  L3_EXPECTS(cluster < clusters_);
  return points_[cluster][index(t)];
}

void ScenarioTrace::set_rps(std::size_t step, double rps) {
  L3_EXPECTS(step < steps_);
  L3_EXPECTS(rps > 0.0);
  rps_[step] = rps;
}

double ScenarioTrace::rps_at(SimTime t) const { return rps_[index(t)]; }

double ScenarioTrace::mean_rps() const {
  double sum = 0.0;
  for (double r : rps_) sum += r;
  return sum / static_cast<double>(rps_.size());
}

}  // namespace l3::workload
