#include "l3/workload/client.h"

#include "l3/common/assert.h"
#include "l3/trace/tracer.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace l3::workload {

OpenLoopClient::OpenLoopClient(mesh::Mesh& mesh, mesh::ClusterId source,
                               std::string service, RpsFn rps, SplitRng rng,
                               Config config)
    : mesh_(mesh),
      source_(source),
      service_(std::move(service)),
      rps_(std::move(rps)),
      rng_(rng),
      config_(config) {
  L3_EXPECTS(rps_ != nullptr);
}

void OpenLoopClient::start(SimTime begin, SimTime end) {
  L3_EXPECTS(end > begin);
  L3_EXPECTS(begin >= mesh_.simulator().now());
  end_ = end;
  records_.reserve(static_cast<std::size_t>(
      std::min(5e6, (end - begin) * std::max(1.0, rps_(begin)) * 1.5)));
  mesh_.simulator().schedule_at(begin, [this] {
    fire();
    schedule_next();
  });
}

void OpenLoopClient::schedule_next() {
  auto& sim = mesh_.simulator();
  if (arrival_next_ >= arrival_block_.size()) {
    refill_arrivals(sim.now());
    if (arrival_block_.empty()) return;  // recurrence crossed end_
  }
  sim.schedule_at(arrival_block_[arrival_next_++], [this] {
    fire();
    schedule_next();
  });
}

void OpenLoopClient::refill_arrivals(SimTime from) {
  arrival_block_.clear();
  arrival_next_ = 0;
  // Once a drawn arrival crosses end_, the recurrence is over for good.
  // Without this latch a partial block would end with the crossing draw
  // discarded and the NEXT refill would re-sample it — one extra stream
  // draw per block boundary, and occasionally an extra arrival that the
  // per-event recurrence (which stops at its first crossing draw) never
  // produces.
  if (arrivals_done_) return;
  // Pre-generating a block is draw-order-legal exactly when the recurrence
  // below is the only consumer of this client's stream between arrivals:
  // always true without poisson (no draws at all), and true in kViaSplit
  // mode (the proxy picks and WAN transits draw from their own streams).
  // In poisson + kLocalDirect mode fire() draws WAN samples from rng_
  // between gap draws, so the block degenerates to a single arrival and
  // the draw interleaving stays exactly as the per-event loop produced it.
  const bool interleaved_draws =
      config_.poisson && config_.mode == CallMode::kLocalDirect;
  const std::size_t block =
      interleaved_draws ? 1 : std::max<std::size_t>(1, config_.arrival_batch);
  SimTime t = from;
  for (std::size_t i = 0; i < block; ++i) {
    // Identical arithmetic to the old per-event step: `t` is exactly the
    // value schedule_at stored, so rate lookups and gap sums reproduce the
    // per-event FP results bit for bit.
    const double rate = std::max(0.1, rps_(t));
    const SimDuration gap =
        config_.poisson ? rng_.exponential(rate) : 1.0 / rate;
    t += gap;
    if (t >= end_) {
      arrivals_done_ = true;
      break;
    }
    arrival_block_.push_back(t);
  }
}

void OpenLoopClient::fire() {
  ++sent_;
  const SimTime sent_at = mesh_.simulator().now();
  if (config_.mode == CallMode::kLocalDirect) {
    fire_local_direct();
    return;
  }
  // Root span for the whole request including retries (the client's view).
  // Unsampled (zero) context when no tracer is attached or sampling says no.
  trace::SpanContext root{};
  if (trace::Tracer* tracer = mesh_.tracer()) {
    root = tracer->start_trace(service_, mesh_.cluster_names()[source_],
                               service_);
  }
  send_attempt(sent_at, 1, root);
}

void OpenLoopClient::end_trace(trace::SpanContext root, bool success,
                               bool timed_out) {
  if (!root.sampled()) return;
  trace::Tracer* tracer = mesh_.tracer();
  if (tracer == nullptr) return;
  tracer->end_trace(root, timed_out  ? trace::SpanStatus::kTimeout
                          : success ? trace::SpanStatus::kOk
                                    : trace::SpanStatus::kError);
}

void OpenLoopClient::send_attempt(SimTime first_sent, int attempt,
                                  trace::SpanContext root) {
  // The proxy is resolved once; every attempt goes to the same
  // (source, service) pair, so the per-request map lookup is pure overhead.
  if (proxy_ == nullptr) proxy_ = &mesh_.proxy(source_, service_);
  proxy_->send(/*depth=*/0, root,
               [this, first_sent, attempt, root](const mesh::Response& response) {
                 if (!response.success && attempt <= config_.max_retries) {
                   mesh_.simulator().schedule_after(
                       config_.retry_backoff, [this, first_sent, attempt, root] {
                         send_attempt(first_sent, attempt + 1, root);
                       });
                   return;
                 }
                 end_trace(root, response.success, response.timed_out);
                 records_.push_back(RequestRecord{
                     first_sent, mesh_.simulator().now() - first_sent,
                     response.success, response.timed_out,
                     response.backend_cluster, attempt});
               });
}

void OpenLoopClient::fire_local_direct() {
  // Straight to the local deployment: local network hop out and back, no
  // TrafficSplit, no proxy metrics (the client is not part of the mesh's
  // east-west traffic).
  auto& sim = mesh_.simulator();
  const SimTime sent_at = sim.now();
  if (local_deployment_ == nullptr) {
    local_deployment_ = mesh_.find_deployment(service_, source_);
    L3_EXPECTS(local_deployment_ != nullptr);
  }
  mesh::ServiceDeployment* deployment = local_deployment_;
  trace::SpanContext root{};
  if (trace::Tracer* tracer = mesh_.tracer()) {
    root = tracer->start_trace(service_, mesh_.cluster_names()[source_],
                               service_);
  }
  const SimDuration out = mesh_.wan().sample(source_, source_, sim.now(), rng_);
  sim.schedule_after(out, [this, deployment, sent_at, root] {
    deployment->handle(/*depth=*/1, root, [this, sent_at, root](
                                              const mesh::Outcome& outcome) {
      auto& sim2 = mesh_.simulator();
      const SimDuration back =
          mesh_.wan().sample(source_, source_, sim2.now(), rng_);
      sim2.schedule_after(back, [this, sent_at, root, outcome] {
        end_trace(root, outcome.success, false);
        records_.push_back(RequestRecord{sent_at,
                                         mesh_.simulator().now() - sent_at,
                                         outcome.success, false, source_});
      });
    });
  });
}

std::vector<RequestRecord> OpenLoopClient::records_after(SimTime t) const {
  std::vector<RequestRecord> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (r.sent >= t) out.push_back(r);
  }
  return out;
}

std::vector<TimelineBucket> aggregate_timeline(
    std::span<const RequestRecord> records, SimTime t0, SimTime t1,
    SimDuration bucket) {
  L3_EXPECTS(t1 > t0 && bucket > 0.0);
  const auto n = static_cast<std::size_t>(std::ceil((t1 - t0) / bucket));
  // Two passes: count first so each bucket's latency vector is allocated
  // exactly once, then fill. Records arrive roughly in bucket order, so
  // both passes stream sequentially.
  std::vector<std::vector<double>> latencies(n);
  std::vector<std::size_t> successes(n, 0);
  std::vector<std::size_t> counts(n, 0);
  for (const auto& r : records) {
    if (r.sent < t0 || r.sent >= t1) continue;
    const auto i = static_cast<std::size_t>((r.sent - t0) / bucket);
    if (i >= n) continue;
    counts[i] += 1;
    if (r.success) successes[i] += 1;
  }
  for (std::size_t i = 0; i < n; ++i) latencies[i].reserve(counts[i]);
  for (const auto& r : records) {
    if (r.sent < t0 || r.sent >= t1) continue;
    const auto i = static_cast<std::size_t>((r.sent - t0) / bucket);
    if (i >= n) continue;
    latencies[i].push_back(r.latency);
  }
  std::vector<TimelineBucket> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].start = t0 + static_cast<double>(i) * bucket;
    out[i].count = counts[i];
    out[i].rps = static_cast<double>(counts[i]) / bucket;
    if (counts[i] > 0) {
      // Sort each bucket once and read both quantiles off the sorted run —
      // percentile() would copy + sort per quantile. Same sort, same
      // interpolation, bit-identical values (the golden traces hash these).
      std::sort(latencies[i].begin(), latencies[i].end());
      out[i].p50 = percentile_sorted(latencies[i], 0.50);
      out[i].p99 = percentile_sorted(latencies[i], 0.99);
      out[i].success_rate =
          static_cast<double>(successes[i]) / static_cast<double>(counts[i]);
    }
  }
  return out;
}

ClientSummary summarize_records(std::span<const RequestRecord> records) {
  ClientSummary s;
  s.count = records.size();
  if (records.empty()) return s;
  std::vector<double> all;
  std::vector<double> ok;
  all.reserve(records.size());
  ok.reserve(records.size());
  std::size_t successes = 0;
  for (const auto& r : records) {
    all.push_back(r.latency);
    if (r.success) {
      ok.push_back(r.latency);
      ++successes;
    }
  }
  s.latency = summarize(all);
  s.success_latency = summarize(ok);
  s.success_rate =
      static_cast<double>(successes) / static_cast<double>(records.size());
  return s;
}

}  // namespace l3::workload
