#include "l3/obs/recorder.h"

#include "l3/common/assert.h"

#include <algorithm>
#include <chrono>

namespace l3::obs {

namespace {

constexpr std::array<std::string_view, kScopeCount> kScopeNames = {
    "sim.dispatch",        "mesh.picker_rebuild", "mesh.pick_weighted",
    "mesh.pick_p2c",       "mesh.timeout_sweep",  "mesh.proxy_cost",
    "tsdb.append",         "tsdb.compact",        "scraper.scrape",
    "scraper.plan",        "controller.manage",   "controller.gather",
    "chaos.transition",
};

constexpr std::array<std::string_view, kCounterCount> kCounterNames = {
    "rt.counter.sim.events",
    "rt.counter.sim.batches",
    "rt.counter.mesh.requests",
    "rt.counter.mesh.timeouts",
    "rt.counter.mesh.handshakes",
    "rt.counter.mesh.pool_hits",
    "rt.counter.mesh.conn_expired",
    "rt.counter.mesh.pick_kernel.linear",
    "rt.counter.mesh.pick_kernel.multilane",
    "rt.counter.mesh.pick_kernel.binary",
    "rt.counter.mesh.pick_kernel.p2c",
    "rt.counter.tsdb.samples",
    "rt.counter.scraper.series",
    "rt.counter.controller.ticks",
    "rt.counter.controller.weight_updates",
    "rt.counter.chaos.transitions",
};

constexpr std::array<std::string_view, kBatchBucketCount> kBatchBucketLabels = {
    "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
};

constexpr std::array<std::string_view, kGaugeCount> kGaugeNames = {
    "rt.gauge.sim.pending_events",
    "rt.gauge.mesh.inflight",
    "rt.gauge.mesh.proxy_queue_delay",
    "rt.gauge.tsdb.series",
};

constexpr std::array<std::string_view, kDomainCount> kDomainNames = {
    "sim", "mesh", "metrics", "controller", "chaos",
};

}  // namespace

std::string_view scope_name(ScopeId id) {
  const auto i = static_cast<std::size_t>(id);
  L3_EXPECTS(i < kScopeCount);
  return kScopeNames[i];
}

std::string_view counter_name(CounterId id) {
  const auto i = static_cast<std::size_t>(id);
  L3_EXPECTS(i < kCounterCount);
  return kCounterNames[i];
}

std::string_view gauge_name(GaugeId id) {
  const auto i = static_cast<std::size_t>(id);
  L3_EXPECTS(i < kGaugeCount);
  return kGaugeNames[i];
}

std::string_view domain_name(Domain d) {
  const auto i = static_cast<std::size_t>(d);
  L3_EXPECTS(i < kDomainCount);
  return kDomainNames[i];
}

std::string_view event_code_name(EventCode code) {
  switch (code) {
    case EventCode::kPickerRebuild:
      return "rt.event.mesh.picker_rebuild";
    case EventCode::kAvailabilityRefresh:
      return "rt.event.mesh.availability_refresh";
    case EventCode::kTimeoutFired:
      return "rt.event.mesh.timeout_fired";
    case EventCode::kHandshake:
      return "rt.event.mesh.handshake";
    case EventCode::kScrape:
      return "rt.event.metrics.scrape";
    case EventCode::kCompact:
      return "rt.event.metrics.compact";
    case EventCode::kControllerTick:
      return "rt.event.controller.tick";
    case EventCode::kFaultBegin:
      return "rt.event.chaos.fault_begin";
    case EventCode::kFaultEnd:
      return "rt.event.chaos.fault_end";
  }
  return "rt.event.unknown";
}

std::string_view batch_bucket_label(std::size_t bucket) {
  L3_EXPECTS(bucket < kBatchBucketCount);
  return kBatchBucketLabels[bucket];
}

// ---------------------------------------------------------------------------
// ProfileBlock

std::string_view ProfileBlock::weighted_kernel_name() const {
  struct Entry {
    CounterId id;
    std::string_view name;
  };
  // Ties break toward the first listed (selection order); in practice one
  // kernel serves every pick of a run unless a test flips the override.
  constexpr Entry kEntries[] = {
      {CounterId::kPickKernelLinear, "linear"},
      {CounterId::kPickKernelMultiLane, "multilane"},
      {CounterId::kPickKernelBinary, "binary"},
  };
  std::string_view best = "none";
  std::uint64_t best_count = 0;
  for (const Entry& e : kEntries) {
    const std::uint64_t c = counters[static_cast<std::size_t>(e.id)];
    if (c > best_count) {
      best_count = c;
      best = e.name;
    }
  }
  return best;
}

std::size_t ProfileBlock::active_subsystems() const {
  std::size_t n = 0;
  for (const std::uint64_t c : scope_count) n += (c > 0) ? 1 : 0;
  return n;
}

void ProfileBlock::merge(const ProfileBlock& other) {
  cells += other.cells;
  for (std::size_t i = 0; i < kScopeCount; ++i) {
    scope_count[i] += other.scope_count[i];
    scope_timed[i] += other.scope_timed[i];
    scope_wall_ns[i] += other.scope_wall_ns[i];
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < kDomainCount; ++i) {
    ring_recorded[i] += other.ring_recorded[i];
    ring_dropped[i] += other.ring_dropped[i];
  }
  for (std::size_t i = 0; i < kBatchBucketCount; ++i) {
    batch_hist[i] += other.batch_hist[i];
  }
}

// ---------------------------------------------------------------------------
// Shard

Shard::Shard(const RecorderConfig& config, Recorder* owner)
    : owner_(owner), max_wall_samples_(std::max<std::size_t>(config.max_wall_samples, 2)) {
  for (auto& ring : rings_) {
    ring.buf.resize(config.ring_capacity);
  }
}

void Shard::set_gauge(GaugeId id, double value) {
  GaugeCell& cell = gauges_[static_cast<std::size_t>(id)];
  cell.value = value;
  // 1-based so seq==0 means "never set"; the relaxed global order is only
  // used to pick a last-writer-wins value at merge time.
  cell.seq =
      owner_->gauge_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Shard::record_scope_ns(ScopeId id, double ns) {
  ScopeStats& s = scopes_[static_cast<std::size_t>(id)];
  ++s.timed;
  s.total_ns += ns;
  s.max_ns = std::max(s.max_ns, ns);
  // Bounded reservoir with deterministic stride decimation: when full, keep
  // every other kept sample and double the stride. Coverage stays uniform
  // over the run, memory stays O(max_wall_samples).
  if (s.stride_phase++ % s.stride != 0) return;
  if (s.samples.size() >= max_wall_samples_) {
    std::vector<double> kept;
    kept.reserve(s.samples.size() / 2 + 1);
    for (std::size_t i = 0; i < s.samples.size(); i += 2) {
      kept.push_back(s.samples[i]);
    }
    s.samples = std::move(kept);
    s.stride *= 2;
    s.stride_phase = 1;  // this sample counts as the first of the new stride
  }
  s.samples.push_back(ns);
}

// ---------------------------------------------------------------------------
// Recorder

Recorder::Recorder(RecorderConfig config) : config_(config) {
  tracks_.reserve(std::min<std::size_t>(config_.max_track_samples, 4096));
}

Shard& Recorder::make_shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::unique_ptr<Shard>(new Shard(config_, this)));
  return *shards_.back();
}

void Recorder::sample_tracks(SimTime now) {
  // Merge counters/gauges across shards, then delta-suppress against the
  // previous sample so unchanged series add no track points. The first call
  // emits only nonzero values (keeps traces and goldens small).
  std::array<double, kCounterCount> counter_now{};
  std::array<GaugeId, kGaugeCount> gauge_ids{};
  std::array<double, kGaugeCount> gauge_now{};
  std::array<std::uint64_t, kGaugeCount> gauge_seq{};
  (void)gauge_ids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      for (std::size_t i = 0; i < kCounterCount; ++i) {
        counter_now[i] += static_cast<double>(shard->counters_[i]);
      }
      for (std::size_t i = 0; i < kGaugeCount; ++i) {
        const Shard::GaugeCell& cell = shard->gauges_[i];
        if (cell.seq > gauge_seq[i]) {
          gauge_seq[i] = cell.seq;
          gauge_now[i] = cell.value;
        }
      }
    }
  }
  auto push = [&](bool is_gauge, std::size_t id, double value) {
    if (tracks_.size() >= config_.max_track_samples) {
      ++tracks_dropped_;
      return;
    }
    tracks_.push_back(
        TrackSample{now, is_gauge, static_cast<std::uint16_t>(id), value});
  };
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const bool changed = tracks_sampled_once_
                             ? counter_now[i] != last_track_counter_[i]
                             : counter_now[i] != 0.0;
    if (changed) push(false, i, counter_now[i]);
    last_track_counter_[i] = counter_now[i];
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    const bool changed = tracks_sampled_once_
                             ? gauge_now[i] != last_track_gauge_[i]
                             : gauge_seq[i] > 0;
    if (changed) push(true, i, gauge_now[i]);
    last_track_gauge_[i] = gauge_now[i];
  }
  tracks_sampled_once_ = true;
}

Snapshot Recorder::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kScopeCount; ++i) {
    snap.scopes[i].name = kScopeNames[i];
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    snap.counters[i].name = kCounterNames[i];
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    snap.gauges[i].name = kGaugeNames[i];
  }
  for (std::size_t i = 0; i < kDomainCount; ++i) {
    snap.rings[i].domain = kDomainNames[i];
  }

  std::array<std::vector<double>, kScopeCount> wall_samples;
  std::array<std::uint64_t, kGaugeCount> gauge_seq{};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      for (std::size_t i = 0; i < kCounterCount; ++i) {
        snap.counters[i].value += shard->counters_[i];
      }
      for (std::size_t i = 0; i < kGaugeCount; ++i) {
        const Shard::GaugeCell& cell = shard->gauges_[i];
        if (cell.seq > gauge_seq[i]) {
          gauge_seq[i] = cell.seq;
          snap.gauges[i].value = cell.value;
        }
      }
      for (std::size_t i = 0; i < kScopeCount; ++i) {
        const Shard::ScopeStats& s = shard->scopes_[i];
        Snapshot::Scope& out = snap.scopes[i];
        out.count += s.count;
        out.timed += s.timed;
        out.wall_ns_total += s.total_ns;
        out.wall_ns_max = std::max(out.wall_ns_max, s.max_ns);
        wall_samples[i].insert(wall_samples[i].end(), s.samples.begin(),
                               s.samples.end());
      }
      for (std::size_t i = 0; i < kDomainCount; ++i) {
        const Shard::EventRing& ring = shard->rings_[i];
        Snapshot::Ring& out = snap.rings[i];
        out.recorded += ring.total;
        const std::size_t cap = ring.buf.size();
        const std::size_t kept =
            cap == 0 ? 0
                     : static_cast<std::size_t>(
                           std::min<std::uint64_t>(ring.total, cap));
        out.dropped += ring.total - kept;
        // Oldest-to-newest: when wrapped, the oldest entry sits at
        // total % cap (the next overwrite position).
        const std::size_t start =
            (ring.total > cap && cap > 0)
                ? static_cast<std::size_t>(ring.total % cap)
                : 0;
        for (std::size_t k = 0; k < kept; ++k) {
          out.events.push_back(ring.buf[(start + k) % cap]);
        }
      }
    }
    snap.tracks = tracks_;
    snap.tracks_dropped = tracks_dropped_;
  }
  // Multi-shard rings interleave arbitrarily; order by sim time for export
  // (stable sort keeps intra-shard order for equal timestamps).
  for (auto& ring : snap.rings) {
    std::stable_sort(ring.events.begin(), ring.events.end(),
                     [](const RtEvent& a, const RtEvent& b) {
                       return a.time < b.time;
                     });
  }
  for (std::size_t i = 0; i < kScopeCount; ++i) {
    if (!wall_samples[i].empty()) {
      snap.scopes[i].wall_ns = summarize(wall_samples[i]);
    }
  }
  return snap;
}

ProfileBlock Recorder::profile() const {
  ProfileBlock block;
  block.cells = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kScopeCount; ++i) {
      const Shard::ScopeStats& s = shard->scopes_[i];
      block.scope_count[i] += s.count;
      block.scope_timed[i] += s.timed;
      block.scope_wall_ns[i] += s.total_ns;
    }
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      block.counters[i] += shard->counters_[i];
    }
    for (std::size_t i = 0; i < kDomainCount; ++i) {
      const Shard::EventRing& ring = shard->rings_[i];
      block.ring_recorded[i] += ring.total;
      const std::uint64_t cap = ring.buf.size();
      block.ring_dropped[i] += ring.total > cap ? ring.total - cap : 0;
    }
    for (std::size_t i = 0; i < kBatchBucketCount; ++i) {
      block.batch_hist[i] += shard->batch_hist_[i];
    }
  }
  return block;
}

// ---------------------------------------------------------------------------
// Thread binding (the TLS slot itself is header-inline; see recorder.h)

ScopedRecorderBind::ScopedRecorderBind(Recorder& recorder) {
  Shard*& slot = detail::tl_shard_slot();
  prev_ = slot;
  slot = &recorder.make_shard();
}

ScopedRecorderBind::~ScopedRecorderBind() {
  detail::tl_shard_slot() = prev_;
}

double ScopedTimer::now_ns() noexcept {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace l3::obs
