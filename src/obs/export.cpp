#include "l3/obs/export.h"

#include <cstdio>
#include <ostream>
#include <string>

namespace l3::obs {
namespace {

/// Microseconds, the unit of the Chrome trace-event `ts` field; fixed-point
/// so trace viewers never see exponent notation.
std::string fmt_us(SimTime seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

/// Counter values are exact event counts (u64-derived doubles) and gauge
/// samples are small integers; %.17g round-trips them without noise.
std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_event_prefix(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
}

// All obs names are compile-time constants drawn from [a-z0-9._] — no JSON
// escaping required (checked by the naming conventions in DESIGN.md §12).

}  // namespace

void write_chrome_fragment(const Snapshot& snapshot, std::size_t pid,
                           bool& first, std::ostream& os) {
  write_event_prefix(os, first);
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"obs\"}}";

  // Counter tracks: one "C" event per sample; Chrome groups them by name
  // into per-series tracks within the obs process.
  for (const TrackSample& sample : snapshot.tracks) {
    const std::string_view name =
        sample.is_gauge ? gauge_name(static_cast<GaugeId>(sample.id))
                        : counter_name(static_cast<CounterId>(sample.id));
    write_event_prefix(os, first);
    os << "{\"name\":\"" << name << "\",\"ph\":\"C\",\"ts\":"
       << fmt_us(sample.time) << ",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"value\":" << fmt_value(sample.value)
       << "}}";
  }

  // Flight-recorder rings: one thread lane per domain, events as thread-
  // scoped instants carrying the structured payload in args.
  std::size_t tid = 0;
  for (const Snapshot::Ring& ring : snapshot.rings) {
    ++tid;  // tid 0 is the counter-track lane
    if (ring.events.empty()) continue;
    write_event_prefix(os, first);
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"ring:" << ring.domain
       << "\"}}";
    for (const RtEvent& event : ring.events) {
      write_event_prefix(os, first);
      os << "{\"name\":\"" << event_code_name(event.code)
         << "\",\"cat\":\"obs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
         << fmt_us(event.time) << ",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"args\":{\"arg\":" << event.arg
         << ",\"value\":" << fmt_value(event.value) << "}}";
    }
  }
}

void write_chrome_trace(const Snapshot& snapshot, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  write_chrome_fragment(snapshot, 0, first, os);
  os << "\n]}\n";
}

}  // namespace l3::obs
