#include "l3/dsb/disturbance.h"

namespace l3::dsb {

PerformanceDisturber::PerformanceDisturber(sim::Simulator& sim,
                                           ClusterLoadModel& model,
                                           Config config, SplitRng rng)
    : sim_(sim), model_(model), config_(config), rng_(rng) {
  L3_EXPECTS(config.period > 0.0);
  L3_EXPECTS(config.duration > 0.0 && config.duration <= config.period);
  L3_EXPECTS(config.med_mult_hi >= config.med_mult_lo);
  L3_EXPECTS(config.med_mult_lo >= 1.0);
  L3_EXPECTS(config.tail_mult_hi >= config.tail_mult_lo);
  L3_EXPECTS(config.tail_mult_lo >= 1.0);
}

void PerformanceDisturber::start() {
  stop();
  task_ = sim_.schedule_every(config_.period, [this] { window(); });
}

void PerformanceDisturber::window() {
  const std::size_t cluster = next_cluster_;
  next_cluster_ = (next_cluster_ + 1) % model_.cluster_count();
  if (rng_.bernoulli(config_.skip_prob)) return;
  ClusterLoadModel::Factors f;
  f.median = rng_.uniform(config_.med_mult_lo, config_.med_mult_hi);
  f.tail = rng_.uniform(config_.tail_mult_lo, config_.tail_mult_hi);
  model_.set_factors(static_cast<mesh::ClusterId>(cluster), f);
  ++started_;
  sim_.schedule_after(config_.duration, [this, cluster] {
    model_.set_factors(static_cast<mesh::ClusterId>(cluster), {});
  });
}

}  // namespace l3::dsb
