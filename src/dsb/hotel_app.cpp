#include "l3/dsb/hotel_app.h"

#include "l3/common/assert.h"

#include <memory>
#include <utility>

namespace l3::dsb {

HotelReservationApp::HotelReservationApp(mesh::Mesh& mesh,
                                         std::vector<mesh::ClusterId> clusters,
                                         HotelAppConfig config, SplitRng rng)
    : mesh_(mesh),
      clusters_(std::move(clusters)),
      config_(config),
      rng_(rng),
      load_model_(mesh.clusters().size()) {
  L3_EXPECTS(!clusters_.empty());
}

const std::vector<std::string>& HotelReservationApp::service_names() {
  static const std::vector<std::string> kNames = {
      "mongodb-geo",     "mongodb-rate",           "mongodb-profile",
      "mongodb-recommendation", "mongodb-user",    "mongodb-reservation",
      "memcached-rate",  "memcached-profile",      "memcached-reserve",
      "geo",             "rate",                   "profile",
      "recommendation",  "user",                   "reservation",
      "search",          "frontend"};
  return kNames;
}

const std::vector<std::string>& HotelReservationApp::callee_names() {
  // Only the stateless gRPC services are mesh-routed (and therefore
  // TrafficSplit targets); the stateful memcached/mongodb tiers are called
  // cluster-locally.
  static const std::vector<std::string> kCallees = {
      "search", "profile", "recommendation", "user", "reservation",
      "geo",    "rate"};
  return kCallees;
}

void HotelReservationApp::deploy() {
  L3_EXPECTS(!deployed_);
  deployed_ = true;
  mesh::DeploymentConfig dc;
  dc.replicas = config_.replicas;
  dc.concurrency = config_.concurrency;
  dc.queue_capacity = config_.queue_capacity;

  const double sr = config_.success_rate;
  const double miss = config_.cache_miss_rate;
  const auto& load = load_model_;

  // Shorthand for mesh-routed and cluster-local calls.
  auto m = [](std::string service) {
    return Call{std::move(service), /*local=*/false, 1.0};
  };
  auto local = [](std::string service, double probability = 1.0) {
    return Call{std::move(service), /*local=*/true, probability};
  };

  auto make = [&](const std::string& service)
      -> std::unique_ptr<mesh::ServiceBehavior> {
    if (service == "frontend") {
      // The wrk2 mixed workload: one operation per request.
      std::vector<Operation> ops;
      ops.push_back({config_.search_ratio, {{m("search")}, {m("profile")}}});
      ops.push_back(
          {config_.recommend_ratio, {{m("recommendation")}, {m("profile")}}});
      ops.push_back({config_.login_ratio, {{m("user")}}});
      ops.push_back({config_.reserve_ratio, {{m("user")}, {m("reservation")}}});
      return std::make_unique<MixBehavior>(config_.frontend, load, sr,
                                           std::move(ops));
    }
    if (service == "search") {
      return std::make_unique<StagedBehavior>(
          config_.search, load, sr,
          std::vector<Stage>{{m("geo"), m("rate")}});
    }
    if (service == "geo") {
      return std::make_unique<StagedBehavior>(
          config_.geo, load, sr, std::vector<Stage>{{local("mongodb-geo")}});
    }
    if (service == "rate") {
      return std::make_unique<StagedBehavior>(
          config_.rate, load, sr,
          std::vector<Stage>{{local("memcached-rate")},
                             {local("mongodb-rate", miss)}});
    }
    if (service == "profile") {
      return std::make_unique<StagedBehavior>(
          config_.profile, load, sr,
          std::vector<Stage>{{local("memcached-profile")},
                             {local("mongodb-profile", miss)}});
    }
    if (service == "recommendation") {
      return std::make_unique<StagedBehavior>(
          config_.recommendation, load, sr,
          std::vector<Stage>{{local("mongodb-recommendation")}});
    }
    if (service == "user") {
      return std::make_unique<StagedBehavior>(
          config_.user, load, sr,
          std::vector<Stage>{{local("mongodb-user")}});
    }
    if (service == "reservation") {
      // Writes go to both the cache and the database.
      return std::make_unique<StagedBehavior>(
          config_.reservation, load, sr,
          std::vector<Stage>{
              {local("memcached-reserve"), local("mongodb-reservation")}});
    }
    if (service.rfind("memcached-", 0) == 0) {
      return std::make_unique<StagedBehavior>(config_.memcached, load, sr,
                                              std::vector<Stage>{});
    }
    L3_ASSERT(service.rfind("mongodb-", 0) == 0);
    return std::make_unique<StagedBehavior>(config_.mongodb, load, sr,
                                            std::vector<Stage>{});
  };

  for (const auto& service : service_names()) {
    for (mesh::ClusterId cluster : clusters_) {
      mesh_.deploy(service, cluster, dc, make(service));
    }
  }
}

void HotelReservationApp::warm_routes() {
  L3_EXPECTS(deployed_);
  for (mesh::ClusterId cluster : clusters_) {
    for (const auto& callee : callee_names()) {
      mesh_.proxy(cluster, callee);
    }
  }
}

}  // namespace l3::dsb
