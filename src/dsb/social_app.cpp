#include "l3/dsb/social_app.h"

#include "l3/common/assert.h"

#include <memory>
#include <utility>

namespace l3::dsb {

SocialNetworkApp::SocialNetworkApp(mesh::Mesh& mesh,
                                   std::vector<mesh::ClusterId> clusters,
                                   SocialAppConfig config, SplitRng rng)
    : mesh_(mesh),
      clusters_(std::move(clusters)),
      config_(config),
      rng_(rng),
      load_model_(mesh.clusters().size()) {
  L3_EXPECTS(!clusters_.empty());
}

const std::vector<std::string>& SocialNetworkApp::service_names() {
  static const std::vector<std::string> kNames = {
      // stateful tiers first (they are called by the tiers above)
      "redis-home-timeline", "redis-user-timeline", "memcached-post",
      "mongodb-post", "mongodb-user-timeline", "mongodb-social-graph",
      // stateless services
      "url-shorten", "user-mention", "unique-id", "media", "user",
      "social-graph", "post-storage", "text", "user-timeline",
      "home-timeline", "compose-post", "frontend"};
  return kNames;
}

const std::vector<std::string>& SocialNetworkApp::callee_names() {
  static const std::vector<std::string> kCallees = {
      "home-timeline", "user-timeline", "compose-post", "post-storage",
      "social-graph",  "text",          "url-shorten",  "user-mention",
      "unique-id",     "media",         "user"};
  return kCallees;
}

void SocialNetworkApp::deploy() {
  L3_EXPECTS(!deployed_);
  deployed_ = true;
  mesh::DeploymentConfig dc;
  dc.replicas = config_.replicas;
  dc.concurrency = config_.concurrency;
  dc.queue_capacity = config_.queue_capacity;

  const double sr = config_.success_rate;
  const double miss = config_.cache_miss_rate;
  const auto& load = load_model_;

  auto m = [](std::string service) {
    return Call{std::move(service), /*local=*/false, 1.0};
  };
  auto local = [](std::string service, double probability = 1.0) {
    return Call{std::move(service), /*local=*/true, probability};
  };

  auto make = [&](const std::string& service)
      -> std::unique_ptr<mesh::ServiceBehavior> {
    if (service == "frontend") {
      std::vector<Operation> ops;
      ops.push_back({config_.read_home_ratio, {{m("home-timeline")}}});
      ops.push_back({config_.read_user_ratio, {{m("user-timeline")}}});
      ops.push_back({config_.compose_ratio, {{m("compose-post")}}});
      return std::make_unique<MixBehavior>(config_.frontend, load, sr,
                                           std::move(ops));
    }
    if (service == "compose-post") {
      return std::make_unique<StagedBehavior>(
          config_.midtier, load, sr,
          std::vector<Stage>{
              {m("text"), m("unique-id"), m("media"), m("user")},
              {m("post-storage"), m("user-timeline"), m("home-timeline")}});
    }
    if (service == "text") {
      return std::make_unique<StagedBehavior>(
          config_.textsvc, load, sr,
          std::vector<Stage>{{m("url-shorten"), m("user-mention")}});
    }
    if (service == "home-timeline") {
      // Read path: timeline ids from redis, then posts from post-storage;
      // the social graph is consulted on the (rarer) write/fan-out path.
      return std::make_unique<StagedBehavior>(
          config_.midtier, load, sr,
          std::vector<Stage>{{local("redis-home-timeline")},
                             {Call{"post-storage", false, 0.8},
                              Call{"social-graph", false, 0.3}}});
    }
    if (service == "user-timeline") {
      return std::make_unique<StagedBehavior>(
          config_.midtier, load, sr,
          std::vector<Stage>{{local("redis-user-timeline")},
                             {local("mongodb-user-timeline", miss)},
                             {m("post-storage")}});
    }
    if (service == "post-storage") {
      return std::make_unique<StagedBehavior>(
          config_.midtier, load, sr,
          std::vector<Stage>{{local("memcached-post")},
                             {local("mongodb-post", miss)}});
    }
    if (service == "social-graph") {
      return std::make_unique<StagedBehavior>(
          config_.midtier, load, sr,
          std::vector<Stage>{{local("mongodb-social-graph")}});
    }
    if (service == "redis-home-timeline" || service == "redis-user-timeline") {
      return std::make_unique<StagedBehavior>(config_.redis, load, sr,
                                              std::vector<Stage>{});
    }
    if (service == "memcached-post") {
      return std::make_unique<StagedBehavior>(config_.memcached, load, sr,
                                              std::vector<Stage>{});
    }
    if (service.rfind("mongodb-", 0) == 0) {
      return std::make_unique<StagedBehavior>(config_.mongodb, load, sr,
                                              std::vector<Stage>{});
    }
    // url-shorten, user-mention, unique-id, media, user: pure compute.
    return std::make_unique<StagedBehavior>(config_.leaf, load, sr,
                                            std::vector<Stage>{});
  };

  for (const auto& service : service_names()) {
    for (mesh::ClusterId cluster : clusters_) {
      mesh_.deploy(service, cluster, dc, make(service));
    }
  }
}

void SocialNetworkApp::warm_routes() {
  L3_EXPECTS(deployed_);
  for (mesh::ClusterId cluster : clusters_) {
    for (const auto& callee : callee_names()) {
      mesh_.proxy(cluster, callee);
    }
  }
}

}  // namespace l3::dsb
