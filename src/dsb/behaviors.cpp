#include "l3/dsb/behaviors.h"

#include "l3/common/assert.h"
#include "l3/common/function.h"
#include "l3/mesh/mesh.h"

#include <cmath>
#include <utility>

namespace l3::dsb {
namespace {

/// Per-call completion callback. Every caller passes a lambda holding one
/// shared_ptr (16 bytes), so 24 keeps it inline while the wrapper lambdas
/// that re-capture it still fit the ResponseFn/EventFn budgets.
using CallDoneFn = common::SmallFn<void(bool), 24>;

/// Issues one call (mesh or local); `cb(ok)` fires exactly once.
void issue_call(const mesh::BehaviorContext& ctx, const Call& call,
                CallDoneFn cb) {
  if (call.probability < 1.0 && !ctx.rng.bernoulli(call.probability)) {
    cb(true);  // gated off: counts as trivially successful
    return;
  }
  if (!call.local) {
    ctx.mesh.call(ctx.cluster, call.service, ctx.depth, ctx.trace,
                  [cb = std::move(cb)](const mesh::Response& response) mutable {
                    cb(response.success);
                  });
    return;
  }
  // Cluster-local dependency: a local network hop to the co-located
  // deployment, no TrafficSplit involved. The trace context still
  // propagates so fan-out spans attach under the calling server span.
  mesh::ServiceDeployment* deployment =
      ctx.mesh.find_deployment(call.service, ctx.cluster);
  L3_ASSERT(deployment != nullptr);
  const SimDuration out =
      ctx.mesh.wan().sample(ctx.cluster, ctx.cluster, ctx.sim.now(), ctx.rng);
  ctx.sim.schedule_after(out, [ctx, deployment, cb = std::move(cb)]() mutable {
    deployment->handle(
        ctx.depth + 1, ctx.trace,
        [ctx, cb = std::move(cb)](const mesh::Outcome& outcome) mutable {
          const SimDuration back = ctx.mesh.wan().sample(
              ctx.cluster, ctx.cluster, ctx.sim.now(), ctx.rng);
          ctx.sim.schedule_after(
              back, [cb = std::move(cb), ok = outcome.success]() mutable {
                cb(ok);
              });
        });
  });
}

}  // namespace

DsbBehavior::DsbBehavior(const ServiceProfile& profile,
                         const ClusterLoadModel& load, double success_rate)
    : load_(load),
      median_(profile.median),
      tail_level_(std::max(profile.p99, profile.median)),
      sensitivity_(profile.load_sensitivity),
      success_rate_(success_rate) {
  L3_EXPECTS(profile.median > 0.0);
  L3_EXPECTS(success_rate >= 0.0 && success_rate <= 1.0);
}

SimDuration DsbBehavior::sample_exec(const mesh::BehaviorContext& ctx) const {
  const auto& factors = load_.factors(ctx.cluster);
  if (ctx.rng.bernoulli(kTailWeight)) {
    return tail_level_ * std::pow(factors.tail, sensitivity_) *
           ctx.rng.lognormal(0.0, kComponentSigma);
  }
  return median_ * std::pow(factors.median, sensitivity_) *
         ctx.rng.lognormal(0.0, kComponentSigma);
}

bool DsbBehavior::sample_success(const mesh::BehaviorContext& ctx) const {
  return ctx.rng.bernoulli(success_rate_);
}

void DsbBehavior::run_stages(const mesh::BehaviorContext& ctx,
                             std::shared_ptr<const std::vector<Stage>> stages,
                             std::size_t index, bool ok_so_far,
                             mesh::OutcomeFn done) {
  if (index >= stages->size()) {
    done(mesh::Outcome{ok_so_far});
    return;
  }
  const Stage& stage = (*stages)[index];
  if (stage.empty()) {
    run_stages(ctx, std::move(stages), index + 1, ok_so_far, std::move(done));
    return;
  }
  struct Join {
    std::size_t remaining;
    bool ok;
    mesh::BehaviorContext ctx;
    std::shared_ptr<const std::vector<Stage>> stages;
    std::size_t index;
    mesh::OutcomeFn done;
  };
  auto join = std::make_shared<Join>(Join{stage.size(), ok_so_far, ctx,
                                          std::move(stages), index,
                                          std::move(done)});
  for (const Call& call : stage) {
    issue_call(ctx, call, [join](bool ok) {
      if (!ok) join->ok = false;
      if (--join->remaining == 0) {
        run_stages(join->ctx, std::move(join->stages), join->index + 1,
                   join->ok, std::move(join->done));
      }
    });
  }
}

StagedBehavior::StagedBehavior(const ServiceProfile& profile,
                               const ClusterLoadModel& load,
                               double success_rate, std::vector<Stage> stages)
    : DsbBehavior(profile, load, success_rate),
      stages_(std::make_shared<const std::vector<Stage>>(std::move(stages))) {}

void StagedBehavior::invoke(const mesh::BehaviorContext& ctx,
                            mesh::OutcomeFn done) {
  const bool ok = sample_success(ctx);
  ctx.sim.schedule_after(
      sample_exec(ctx),
      [ctx, ok, stages = stages_, done = std::move(done)]() mutable {
        run_stages(ctx, std::move(stages), 0, ok, std::move(done));
      });
}

MixBehavior::MixBehavior(const ServiceProfile& profile,
                         const ClusterLoadModel& load, double success_rate,
                         std::vector<Operation> operations)
    : DsbBehavior(profile, load, success_rate) {
  L3_EXPECTS(!operations.empty());
  double total = 0.0;
  for (const auto& op : operations) {
    L3_EXPECTS(op.weight > 0.0);
    total += op.weight;
  }
  double running = 0.0;
  for (auto& op : operations) {
    running += op.weight / total;
    cumulative_.push_back(running);
    stages_.push_back(
        std::make_shared<const std::vector<Stage>>(std::move(op.stages)));
  }
}

void MixBehavior::invoke(const mesh::BehaviorContext& ctx,
                         mesh::OutcomeFn done) {
  const double draw = ctx.rng.uniform();
  std::size_t op = stages_.size() - 1;
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (draw < cumulative_[i]) {
      op = i;
      break;
    }
  }
  const bool ok = sample_success(ctx);
  ctx.sim.schedule_after(
      sample_exec(ctx),
      [ctx, ok, stages = stages_[op], done = std::move(done)]() mutable {
        run_stages(ctx, std::move(stages), 0, ok, std::move(done));
      });
}

}  // namespace l3::dsb
