#include "l3/dsb/runner.h"

#include "l3/common/assert.h"
#include "l3/metrics/obs_audit.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/obs/recorder.h"
#include "l3/sim/shard_engine.h"
#include "l3/sim/simulator.h"
#include "l3/workload/client.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

namespace l3::dsb {
namespace {

/// Shared harness for both DSB applications: builds the three-cluster
/// environment, deploys the app via `make_app`, wires the disturber, one
/// scraper and one controller per cluster, drives the local frontend client
/// and summarises the run. `AppT` must provide deploy(), warm_routes(),
/// load_model() and a kFrontend service name.
template <typename AppT, typename MakeApp>
workload::RunResult run_app(workload::PolicyKind kind,
                            const DsbRunnerConfig& config,
                            const char* scenario_label, MakeApp make_app) {
  sim::Simulator sim;
  sim.set_dispatch_batch(config.dispatch_batch);

  std::optional<obs::Recorder> recorder;
  std::optional<obs::ScopedRecorderBind> recorder_bind;
  if (config.profile) {
    recorder.emplace();
    recorder_bind.emplace(*recorder);
  }

  SplitRng root(config.seed);

  mesh::MeshConfig mesh_config;
  mesh_config.local_delay = config.local_one_way;
  mesh_config.propagation_delay = config.propagation_delay;
  mesh::Mesh mesh(sim, root.split("mesh"), mesh_config);

  const auto c1 = mesh.add_cluster("cluster-1", "eu-central-1");
  const auto c2 = mesh.add_cluster("cluster-2", "eu-west-3");
  const auto c3 = mesh.add_cluster("cluster-3", "eu-south-1");
  mesh::WanModel::Link link;
  link.base = config.wan_one_way;
  link.jitter_frac = config.wan_jitter_frac;
  link.flap_amp = config.wan_flap_amp;
  mesh.wan().set_symmetric(c1, c2, link);
  mesh.wan().set_symmetric(c1, c3, link);
  mesh.wan().set_symmetric(c2, c3, link);

  std::unique_ptr<AppT> app =
      make_app(mesh, std::vector<mesh::ClusterId>{c1, c2, c3},
               root.split("app"));
  app->deploy();
  app->warm_routes();

  PerformanceDisturber disturber(sim, app->load_model(), config.disturbance,
                                 root.split("disturber"));
  disturber.start();

  // One Prometheus + one controller per cluster (production layout).
  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  for (mesh::ClusterId c : {c1, c2, c3}) {
    scraper.add_target(mesh.cluster_names()[c], mesh.registry(c));
  }
  scraper.start(config.scrape_interval);

  std::vector<std::unique_ptr<core::L3Controller>> controllers;
  for (mesh::ClusterId c : {c1, c2, c3}) {
    auto controller = std::make_unique<core::L3Controller>(
        mesh, tsdb, c, workload::make_policy(kind, config.l3, config.c3),
        config.controller);
    controller->manage_all();
    controller->start();
    controllers.push_back(std::move(controller));
  }

  // Constant-throughput client at the cluster-1 frontend (local, §5.1).
  const SimTime t0 = config.warmup;
  const SimTime t1 = config.warmup + config.duration;
  workload::OpenLoopClient::Config client_config;
  client_config.mode = workload::CallMode::kLocalDirect;
  client_config.arrival_batch = config.dispatch_batch;
  workload::OpenLoopClient client(
      mesh, c1, AppT::kFrontend, [rps = config.rps](SimTime) { return rps; },
      root.split("client"), client_config);
  client.start(0.0, t1);

  sim::PeriodicHandle track_task;
  if (recorder) {
    track_task = sim.schedule_every(
        std::max(config.scrape_interval, 1.0),
        [&sim, &recorder] { recorder->sample_tracks(sim.now()); });
  }

  // Same sharded-run shape as the trace runner: the topology is RNG-coupled
  // through the legacy WAN discipline, so every cluster stays on shard 0
  // and extra shards idle — byte-identical for every shard count.
  if (config.shards <= 1) {
    sim.run_until(t1 + 30.0);
  } else {
    sim::ShardEngine engine(config.shards);
    engine.set_cluster_owners(
        std::vector<std::size_t>(mesh.clusters().size(), 0));
    engine.run([&](std::size_t shard) {
      if (shard != 0) return;
      sim::ShardRouter& router = engine.router(0);
      router.attach(sim);
      router.run_until(t1 + 30.0);
    });
  }
  track_task.cancel();

  workload::RunResult result;
  result.policy = std::string(workload::policy_name(kind));
  result.scenario = scenario_label;
  const auto records = client.records_after(t0);
  result.summary = workload::summarize_records(records);
  result.timeline = workload::aggregate_timeline(records, t0, t1);
  result.requests = records.size();
  result.weight_updates = mesh.control_plane().updates_applied();
  result.traffic_share.assign(mesh.clusters().size(), 0.0);
  if (recorder) {
    recorder->sample_tracks(sim.now());
    result.profile = recorder->profile();
    metrics::publish_audit(recorder->snapshot(), mesh.registry(c1),
                           "cluster-1", result.policy);
  }
  return result;
}

}  // namespace

workload::RunResult run_hotel_reservation(workload::PolicyKind kind,
                                          const DsbRunnerConfig& config) {
  return run_app<HotelReservationApp>(
      kind, config, "hotel-reservation",
      [&config](mesh::Mesh& mesh, std::vector<mesh::ClusterId> clusters,
                SplitRng rng) {
        return std::make_unique<HotelReservationApp>(mesh, std::move(clusters),
                                                     config.app, rng);
      });
}

std::vector<workload::RunResult> run_hotel_reservation_repeated(
    workload::PolicyKind kind, const DsbRunnerConfig& config,
    int repetitions) {
  L3_EXPECTS(repetitions >= 1);
  std::vector<workload::RunResult> results;
  results.reserve(static_cast<std::size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    DsbRunnerConfig rep = config;
    rep.seed = config.seed + static_cast<std::uint64_t>(i) * 7919ULL;
    results.push_back(run_hotel_reservation(kind, rep));
  }
  return results;
}

workload::RunResult run_social_network(workload::PolicyKind kind,
                                       const DsbRunnerConfig& config,
                                       const SocialAppConfig& social) {
  return run_app<SocialNetworkApp>(
      kind, config, "social-network",
      [&social](mesh::Mesh& mesh, std::vector<mesh::ClusterId> clusters,
                SplitRng rng) {
        return std::make_unique<SocialNetworkApp>(mesh, std::move(clusters),
                                                  social, rng);
      });
}

}  // namespace l3::dsb
