#include "l3/chaos/fault_plan.h"

#include "l3/common/assert.h"
#include "l3/common/rng.h"

#include <cmath>
#include <utility>

namespace l3::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kReplicaCrash:
      return "crash";
    case FaultKind::kWanPartition:
      return "partition";
    case FaultKind::kWanBrownout:
      return "brownout";
    case FaultKind::kScrapeOutage:
      return "scrape-outage";
    case FaultKind::kControllerPause:
      return "controller-pause";
  }
  return "unknown";
}

FaultPlan& FaultPlan::crash(std::string service, mesh::ClusterId cluster,
                            SimTime start, SimDuration duration,
                            std::size_t replica) {
  L3_EXPECTS(start >= 0.0 && duration >= 0.0);
  L3_EXPECTS(!service.empty());
  Fault f;
  f.kind = FaultKind::kReplicaCrash;
  f.start = start;
  f.duration = duration;
  f.service = std::move(service);
  f.cluster = cluster;
  f.replica = replica;
  faults_.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::partition(mesh::ClusterId a, mesh::ClusterId b,
                                SimTime start, SimDuration duration) {
  L3_EXPECTS(start >= 0.0 && duration >= 0.0);
  Fault f;
  f.kind = FaultKind::kWanPartition;
  f.start = start;
  f.duration = duration;
  f.a = a;
  f.b = b;
  faults_.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::brownout(mesh::ClusterId a, mesh::ClusterId b,
                               SimTime start, SimDuration duration,
                               SimDuration extra_delay) {
  L3_EXPECTS(start >= 0.0 && duration >= 0.0);
  L3_EXPECTS(extra_delay >= 0.0);
  Fault f;
  f.kind = FaultKind::kWanBrownout;
  f.start = start;
  f.duration = duration;
  f.a = a;
  f.b = b;
  f.extra_delay = extra_delay;
  faults_.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::scrape_outage(SimTime start, SimDuration duration,
                                    std::string target) {
  L3_EXPECTS(start >= 0.0 && duration >= 0.0);
  Fault f;
  f.kind = FaultKind::kScrapeOutage;
  f.start = start;
  f.duration = duration;
  f.scrape_target = std::move(target);
  faults_.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::controller_pause(SimTime start, SimDuration duration) {
  L3_EXPECTS(start >= 0.0 && duration >= 0.0);
  Fault f;
  f.kind = FaultKind::kControllerPause;
  f.start = start;
  f.duration = duration;
  faults_.push_back(std::move(f));
  return *this;
}

FaultPlan make_random_plan(const RandomPlanConfig& config,
                           std::uint64_t seed) {
  L3_EXPECTS(config.horizon > 0.0);
  L3_EXPECTS(config.intensity >= 0.0);
  L3_EXPECTS(config.clusters >= 2);
  L3_EXPECTS(config.source < config.clusters);
  FaultPlan plan;
  SplitRng root(seed);
  // Expected windows per kind at intensity 1 over a 600 s horizon; scaled
  // linearly by both intensity and horizon.
  const double scale =
      config.intensity * (config.horizon / 600.0);
  const auto count = [&](double per_600s) {
    return static_cast<int>(std::lround(per_600s * scale));
  };
  // Fault windows start in the first 80 % of the horizon so their effect
  // (and recovery) lands inside the measured run.
  const double start_hi = config.horizon * 0.8;
  const auto remote = [&](SplitRng& rng) -> mesh::ClusterId {
    // A cluster other than the source, uniform.
    auto pick = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(config.clusters - 1));
    if (pick >= config.clusters - 1) pick = config.clusters - 2;
    return static_cast<mesh::ClusterId>(pick >= config.source ? pick + 1
                                                              : pick);
  };

  {
    SplitRng rng = root.split("crash");
    for (int i = 0; i < count(3.0); ++i) {
      const auto cluster = static_cast<mesh::ClusterId>(
          rng.uniform() * static_cast<double>(config.clusters));
      plan.crash(config.service,
                 std::min<mesh::ClusterId>(
                     cluster, static_cast<mesh::ClusterId>(config.clusters - 1)),
                 rng.uniform(0.0, start_hi), rng.uniform(15.0, 40.0));
    }
  }
  {
    SplitRng rng = root.split("brownout");
    for (int i = 0; i < count(2.0); ++i) {
      plan.brownout(config.source, remote(rng), rng.uniform(0.0, start_hi),
                    rng.uniform(20.0, 50.0), rng.uniform(0.030, 0.080));
    }
  }
  {
    SplitRng rng = root.split("partition");
    for (int i = 0; i < count(1.0); ++i) {
      plan.partition(config.source, remote(rng), rng.uniform(0.0, start_hi),
                     rng.uniform(10.0, 30.0));
    }
  }
  {
    SplitRng rng = root.split("scrape");
    for (int i = 0; i < count(1.0); ++i) {
      plan.scrape_outage(rng.uniform(0.0, start_hi), rng.uniform(10.0, 25.0));
    }
  }
  {
    SplitRng rng = root.split("pause");
    for (int i = 0; i < count(1.0); ++i) {
      plan.controller_pause(rng.uniform(0.0, start_hi),
                            rng.uniform(10.0, 25.0));
    }
  }
  return plan;
}

}  // namespace l3::chaos
