#include "l3/chaos/injector.h"

#include "l3/common/assert.h"
#include "l3/mesh/deployment.h"
#include "l3/mesh/wan.h"
#include "l3/obs/recorder.h"

#include <algorithm>
#include <limits>
#include <string>

namespace l3::chaos {

void FaultInjector::add_controller(core::L3Controller* controller) {
  L3_EXPECTS(controller != nullptr);
  controllers_.push_back(controller);
}

void FaultInjector::arm(const FaultPlan& plan, SimTime time_offset) {
  L3_EXPECTS(time_offset >= 0.0);
  for (const Fault& original : plan.faults()) {
    Fault fault = original;
    fault.start += time_offset;
    const bool bounded = fault.duration > 0.0;
    const SimTime end = fault.start + fault.duration;

    markers_.push_back({fault.start, marker_name(fault), "begin"});
    if (bounded) markers_.push_back({end, marker_name(fault), "end"});

    switch (fault.kind) {
      case FaultKind::kWanPartition:
        // Time-windowed inside the model; no events needed.
        mesh_.wan().add_partition(
            {fault.a, fault.b, fault.start,
             bounded ? end : std::numeric_limits<SimTime>::infinity()});
        break;
      case FaultKind::kWanBrownout: {
        const SimTime d_end =
            bounded ? end : std::numeric_limits<SimTime>::infinity();
        mesh_.wan().add_disturbance(
            {fault.a, fault.b, fault.start, d_end, fault.extra_delay});
        mesh_.wan().add_disturbance(
            {fault.b, fault.a, fault.start, d_end, fault.extra_delay});
        break;
      }
      case FaultKind::kReplicaCrash:
      case FaultKind::kScrapeOutage:
      case FaultKind::kControllerPause: {
        const std::size_t idx = faults_.size();
        sim_.schedule_at(fault.start,
                         [this, idx] { begin_fault(faults_[idx]); });
        if (bounded) {
          sim_.schedule_at(end, [this, idx] { end_fault(faults_[idx]); });
        }
        break;
      }
    }
    faults_.push_back(std::move(fault));
  }
  std::stable_sort(markers_.begin(), markers_.end(),
                   [](const trace::FaultMarker& lhs,
                      const trace::FaultMarker& rhs) {
                     return lhs.time < rhs.time;
                   });
}

void FaultInjector::begin_fault(const Fault& fault) {
  ++transitions_;
  L3_OBS_SCOPE(obs_transition, kChaosTransition);
  L3_OBS_COUNT(kChaosTransitions, 1);
  L3_OBS_EVENT(kChaos, kFaultBegin, sim_.now(),
               static_cast<std::uint32_t>(fault.kind), fault.start);
  switch (fault.kind) {
    case FaultKind::kReplicaCrash:
      set_crashed(fault, true);
      break;
    case FaultKind::kScrapeOutage:
      if (scraper_ == nullptr) break;
      if (fault.scrape_target.empty()) {
        scraper_->set_all_targets_enabled(false);
      } else {
        scraper_->set_target_enabled(fault.scrape_target, false);
      }
      break;
    case FaultKind::kControllerPause:
      for (core::L3Controller* controller : controllers_) {
        controller->set_active(false);
      }
      break;
    case FaultKind::kWanPartition:
    case FaultKind::kWanBrownout:
      L3_ASSERT(false && "WAN faults are modelled inside WanModel");
      break;
  }
}

void FaultInjector::end_fault(const Fault& fault) {
  ++transitions_;
  L3_OBS_SCOPE(obs_transition, kChaosTransition);
  L3_OBS_COUNT(kChaosTransitions, 1);
  L3_OBS_EVENT(kChaos, kFaultEnd, sim_.now(),
               static_cast<std::uint32_t>(fault.kind),
               fault.start + fault.duration);
  switch (fault.kind) {
    case FaultKind::kReplicaCrash:
      set_crashed(fault, false);
      break;
    case FaultKind::kScrapeOutage:
      if (scraper_ == nullptr) break;
      if (fault.scrape_target.empty()) {
        scraper_->set_all_targets_enabled(true);
      } else {
        scraper_->set_target_enabled(fault.scrape_target, true);
      }
      break;
    case FaultKind::kControllerPause:
      for (core::L3Controller* controller : controllers_) {
        controller->set_active(true);
      }
      break;
    case FaultKind::kWanPartition:
    case FaultKind::kWanBrownout:
      L3_ASSERT(false && "WAN faults are modelled inside WanModel");
      break;
  }
}

void FaultInjector::set_crashed(const Fault& fault, bool crashed) {
  mesh::ServiceDeployment* deployment =
      mesh_.find_deployment(fault.service, fault.cluster);
  // A plan may target a service/cluster the topology doesn't have (shared
  // plans over sweep variants); that's a no-op, not an error.
  if (deployment == nullptr) return;
  const auto apply = [&](std::size_t i) {
    if (crashed) {
      deployment->crash_replica(i);
    } else {
      deployment->restart_replica(i);
    }
  };
  if (fault.replica == kAllReplicas) {
    for (std::size_t i = 0; i < deployment->replica_count(); ++i) apply(i);
  } else if (fault.replica < deployment->replica_count()) {
    apply(fault.replica);
  }
}

std::string FaultInjector::marker_name(const Fault& fault) const {
  std::string name = to_string(fault.kind);
  switch (fault.kind) {
    case FaultKind::kReplicaCrash: {
      name += ':';
      name += fault.service;
      name += '@';
      const auto& names = mesh_.cluster_names();
      name += fault.cluster < names.size()
                  ? names[fault.cluster]
                  : "cluster#" + std::to_string(fault.cluster);
      if (fault.replica != kAllReplicas) {
        name += "/r" + std::to_string(fault.replica);
      }
      break;
    }
    case FaultKind::kWanPartition:
    case FaultKind::kWanBrownout: {
      const auto& names = mesh_.cluster_names();
      const auto cluster = [&](mesh::ClusterId id) {
        return id < names.size() ? names[id]
                                 : "cluster#" + std::to_string(id);
      };
      name += ':';
      name += cluster(fault.a);
      name += "<->";
      name += cluster(fault.b);
      break;
    }
    case FaultKind::kScrapeOutage:
      name += ':';
      name += fault.scrape_target.empty() ? "all" : fault.scrape_target;
      break;
    case FaultKind::kControllerPause:
      break;
  }
  return name;
}

}  // namespace l3::chaos
