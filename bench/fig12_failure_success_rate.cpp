// Reproduces Figure 12: success rate under the failure scenarios.
//
// Chaos-based (see fig11): the scenario traces are nearly failure-free and
// the per-scenario l3::chaos FaultPlans inject the actual failures into the
// mesh. With health probing off, a policy keeps its success rate up during
// a fault window only by reading the scraped success-rate signal — which is
// exactly the axis the paper contrasts: L3 ranks on success rate, C3 does
// not, round-robin reads nothing.
//
// Paper values: failure-1 — RR 91.4 %, C3 91.1 %, L3 92.4 % (L3 best; C3
// worst because its ranking has no success-rate term); failure-2 — all
// around 98.5–98.6 % (too little headroom to differ).
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/scenarios.h"

#include <array>
#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 12", "success rate on failure-1 / failure-2");

  workload::RunnerConfig config;
  config.profile = args.profile;
  config.dispatch_batch = static_cast<std::size_t>(args.batch);
  config.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) config.duration = 180.0;
  config.health_probe_interval = 0.0;  // failures visible via metrics only

  const std::array<chaos::FaultPlan, 2> plans = {
      workload::failure1_faults(), workload::failure2_faults()};
  auto spec = exp::scenario_grid(
      "fig12",
      {workload::make_failure1_chaos(), workload::make_failure2_chaos()},
      {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
       workload::PolicyKind::kL3},
      config, reps, {},
      [plans](std::size_t scenario, workload::RunnerConfig& c) {
        c.faults = plans[scenario];
      });
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"scenario", "round-robin (%)", "C3 (%)", "L3 (%)"});
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    double sr[3];
    for (std::size_t k = 0; k < 3; ++k) {
      sr[k] = exp::mean_success_rate(grid.at(s, k));
    }
    table.add_row({spec.scenarios[s], fmt_percent(sr[0], 2),
                   fmt_percent(sr[1], 2), fmt_percent(sr[2], 2)});
  }
  table.print(std::cout);
  std::cout << "\npaper: f1 91.4/91.1/92.4 % (L3 highest, C3 lowest); "
               "f2 ~98.6/98.5/98.6 %\n";

  exp::Report report("Figure 12");
  report.add_grid(spec, results);
  report.add_table("success rate per failure scenario and policy", table);
  bench::finish_report(args, report);
  return 0;
}
