// Reproduces Figure 4: the rate-control transfer curves of Algorithm 2.
//
//  (a) w_b = 2000 > w_µ = 1000: on RPS decrease (c < 0) the weight grows
//      opportunistically (c = −0.5 lifts 2000 to >2800); on increase it
//      converges asymptotically down toward w_µ.
//  (b) w_b = 500 < w_µ = 1000: decreases shrink the weight, increases pull
//      it up toward w_µ.
//
// No simulation grid: the curves are a pure function of Algorithm 2, so
// --jobs has nothing to parallelise here.
#include "bench_util.h"

#include "l3/lb/rate_control.h"

#include <iostream>

namespace {

void print_curve(double w_b, double w_mu, l3::exp::Report& report) {
  using namespace l3;
  std::cout << "\n--- w_b = " << w_b << ", w_mu = " << w_mu << " ---\n";
  Table table({"relative change c", "output weight"});
  for (double c = -1.0; c <= 3.0 + 1e-9; c += 0.25) {
    table.add_row({fmt_double(c, 2),
                   fmt_double(lb::rate_control_weight(w_b, w_mu, c), 1)});
  }
  table.print(std::cout);
  report.add_table("w_b=" + fmt_double(w_b, 0) + " w_mu=" + fmt_double(w_mu, 0),
                   table);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header("Figure 4", "rate-control weight-adjustment curves");
  exp::Report report("Figure 4");
  print_curve(2000.0, 1000.0, report);  // Fig. 4a
  print_curve(500.0, 1000.0, report);   // Fig. 4b
  std::cout << "\nanchors from the paper: c = -0.5 lifts w_b = 2000 to >2800; "
               "c -> +inf converges every weight to w_mu; c = 0 is identity\n";
  bench::finish_report(args, report);
  return 0;
}
