// Micro-benchmarks (google-benchmark) of the controller's hot paths — the
// §4 "Resource usage" stand-in: the paper reports the L3 operator uses
// <1.5 % of a vCPU; these show the per-tick algorithm costs are trivially
// small (nanoseconds-to-microseconds), consistent with that.
#include "l3/common/histogram.h"
#include "l3/common/rng.h"
#include "l3/lb/c3_policy.h"
#include "l3/lb/l3_policy.h"
#include "l3/lb/rate_control.h"
#include "l3/lb/weighting.h"
#include "l3/mesh/pick_kernels.h"
#include "l3/metrics/ewma.h"
#include "l3/workload/scenarios.h"
#include "l3/workload/trace_behavior.h"

#include <benchmark/benchmark.h>

namespace {

using namespace l3;

void BM_EwmaObserve(benchmark::State& state) {
  metrics::Ewma ewma(5.0, 5.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.005;
    ewma.observe(0.1, t);
    benchmark::DoNotOptimize(ewma.value());
  }
}
BENCHMARK(BM_EwmaObserve);

void BM_PeakEwmaObserve(benchmark::State& state) {
  metrics::PeakEwma ewma(5.0, 5.0);
  SplitRng rng(1);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.005;
    ewma.observe(rng.uniform(0.05, 0.5), t);
    benchmark::DoNotOptimize(ewma.value());
  }
}
BENCHMARK(BM_PeakEwmaObserve);

void BM_WeightingAlgorithm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<lb::BackendSignals> signals(n);
  for (std::size_t i = 0; i < n; ++i) {
    signals[i].latency_p99 = 0.050 + 0.01 * static_cast<double>(i);
    signals[i].success_rate = 0.99;
    signals[i].rps = 100.0;
    signals[i].inflight = 5.0;
  }
  for (auto _ : state) {
    auto weights = lb::assign_weights(signals);
    benchmark::DoNotOptimize(weights);
  }
}
BENCHMARK(BM_WeightingAlgorithm)->Arg(3)->Arg(16)->Arg(128);

void BM_RateControl(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(n, 1000.0);
  weights.front() = 2000.0;
  for (auto _ : state) {
    auto out = lb::rate_control(weights, 100.0, 130.0);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RateControl)->Arg(3)->Arg(128);

void BM_L3PolicyCompute(benchmark::State& state) {
  lb::L3Policy policy;
  std::vector<mesh::BackendRef> backends(3);
  std::vector<lb::BackendSignals> signals(3);
  for (std::size_t i = 0; i < 3; ++i) {
    backends[i].cluster = static_cast<mesh::ClusterId>(i);
    signals[i].latency_p99 = 0.05 * static_cast<double>(i + 1);
    signals[i].rps = 100.0;
    signals[i].inflight = 4.0;
  }
  lb::PolicyInput input;
  input.backends = backends;
  input.signals = signals;
  input.total_rps_ewma = 300.0;
  input.total_rps_last = 320.0;
  for (auto _ : state) {
    auto weights = policy.compute(input);
    benchmark::DoNotOptimize(weights);
  }
}
BENCHMARK(BM_L3PolicyCompute);

void BM_HistogramRecord(benchmark::State& state) {
  FixedBucketHistogram histo;
  SplitRng rng(2);
  for (auto _ : state) {
    histo.record(rng.lognormal(-3.0, 0.8));
  }
  benchmark::DoNotOptimize(histo.total_count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  FixedBucketHistogram histo;
  SplitRng rng(3);
  for (int i = 0; i < 100000; ++i) histo.record(rng.lognormal(-3.0, 0.8));
  std::vector<double> cumulative(histo.counts().size());
  double running = 0.0;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    running += static_cast<double>(histo.counts()[i]);
    cumulative[i] = running;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        histogram_quantile(histo.bounds(), cumulative, 0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_TraceSample(benchmark::State& state) {
  workload::TracePoint point{0.050, 0.400, 1.0};
  SplitRng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::TraceReplayBehavior::sample_latency(point, rng));
  }
}
BENCHMARK(BM_TraceSample);

void BM_ScenarioGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto trace = workload::make_scenario1(42);
    benchmark::DoNotOptimize(trace.steps());
  }
}
BENCHMARK(BM_ScenarioGeneration);

/// Cumulative-weight search kernels head-to-head at the table sizes the
/// runtime selector switches on (<=8 linear, <=32 multilane, else binary).
/// Arg pair: (kernel, n). The draws are pre-generated so the loop times the
/// search alone.
void BM_WeightedPickKernel(benchmark::State& state) {
  const auto kernel =
      static_cast<mesh::pick::WeightedKernel>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint64_t> cum(n);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 100 + 37 * (i % 11);
    cum[i] = total;
  }
  SplitRng rng(7);
  constexpr std::size_t kDraws = 1024;
  std::vector<std::uint64_t> draws(kDraws);
  for (auto& d : draws) {
    d = static_cast<std::uint64_t>(rng.uniform() *
                                   static_cast<double>(total));
  }
  std::vector<std::uint32_t> out(kDraws);
  for (auto _ : state) {
    mesh::pick::search_batch(kernel, cum.data(), n, draws.data(), kDraws,
                             out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDraws));
}
BENCHMARK(BM_WeightedPickKernel)
    ->ArgsProduct({{0, 1, 2}, {3, 8, 32, 128}});

/// The runtime selector itself (override unset): a branch ladder over n,
/// then the dispatch switch — this is the per-batch cost pick_weighted pays.
void BM_KernelSelection(benchmark::State& state) {
  const std::size_t sizes[] = {3, 8, 17, 32, 64, 200};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto k = mesh::pick::select_weighted_kernel(sizes[i]);
    benchmark::DoNotOptimize(k);
    i = i + 1 == std::size(sizes) ? 0 : i + 1;
  }
}
BENCHMARK(BM_KernelSelection);

}  // namespace

BENCHMARK_MAIN();
