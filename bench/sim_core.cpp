// Hot-path benchmark for the event core and the TSDB, tracking the perf
// trajectory of the allocation-free rewrite from this PR onward.
//
// Three microbenches plus one end-to-end run:
//   * event core  — a schedule-heavy request-hop workload (every simulated
//     request crosses the queue 5+ times) on the real Simulator vs an
//     in-binary replica of the legacy core (std::function events in a
//     std::priority_queue) — the ratio is the headline events/sec speedup;
//   * periodic    — schedule_every churn (scrape/control-tick shape);
//   * tsdb        — scrape-shaped appends + controller-shaped window
//     queries through interned SeriesIds vs a replica of the legacy
//     string-keyed map-of-deques store with linear window scans;
//   * scenario    — wall-clock of a full run_scenario() (scenario 1, L3);
//   * sweep       — a fig10-shaped experiment grid through the parallel
//     harness at --jobs 1 vs --jobs 4 (cells/sec and the parallel speedup;
//     on a single-core host the speedup is honestly ~1x);
//   * shards      — the 10k-backend mega scenario through the sharded
//     simulator at --shards 1 vs --shards 4 with pinned shard threads
//     (aggregate req/s; the speedup ratio is suppressed, not faked, on
//     boxes with fewer than 4 hardware threads);
//   * control_plane — the mega-shaped scrape→TSDB→manage pipeline in
//     isolation (24 regions × 24-backend splits): columnar scrape series/s
//     and fused-gather manage backends/s, plus the window-cursor hit rate.
//   * proxy_cost  — the data-plane cost model (DESIGN.md §16): the same
//     heterogeneous-latency scenario at zero cost vs a near-saturated
//     1-worker proxy CPU stage. The saturated proxy tier adds a common
//     queueing delay to every backend, compressing L3's weight ratios —
//     reported as the traffic-share skew (max/mean) dropping toward 1.
//
// Results print as a table and are written to BENCH_sim_core.json
// (machine-readable) for longitudinal tracking.
//
// Usage: sim_core [--fast] [--reps N] [--out PATH]
#include "l3/common/rng.h"
#include "l3/core/controller.h"
#include "l3/exp/runner.h"
#include "l3/lb/l3_policy.h"
#include "l3/lb/weighting.h"
#include "l3/mesh/deployment.h"
#include "l3/mesh/mesh.h"
#include "l3/mesh/metric_names.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/simulator.h"
#include "l3/workload/mega.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Replica of the pre-refactor event core (std::function + priority_queue
// with the const_cast move-out pop), kept verbatim so the speedup is
// measured against the real thing rather than guessed.
class LegacySimulator {
 public:
  using EventFn = std::function<void()>;

  l3::SimTime now() const { return now_; }

  void schedule_at(l3::SimTime t, EventFn fn) {
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }
  void schedule_after(l3::SimDuration delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  std::size_t run_until(l3::SimTime end) {
    std::size_t processed = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.time > end) break;
      Event ev{top.time, top.seq, std::move(const_cast<Event&>(top).fn)};
      queue_.pop();
      now_ = ev.time;
      ev.fn();
      ++processed;
    }
    if (now_ < end) now_ = end;
    return processed;
  }

 private:
  struct Event {
    l3::SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  l3::SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

// The request-hop workload: `chains` requests, each crossing the queue
// `hops` times with a capture shape matching the proxy/WAN/client lambdas
// (a couple of pointers plus a small state struct — beyond std::function's
// 16-byte inline buffer, within EventFn's 48).
template <typename Sim>
struct Hop {
  Sim* sim;
  std::uint64_t* fired;
  std::uint64_t id;
  std::int32_t remaining;
  double latency_acc;

  void operator()() {
    ++*fired;
    latency_acc += 0.001;
    if (--remaining > 0) {
      sim->schedule_after(0.0005 + 1e-7 * static_cast<double>(id % 97),
                          Hop(*this));
    }
  }
};

template <typename Sim>
std::uint64_t run_hop_workload(Sim& sim, int chains, int hops) {
  std::uint64_t fired = 0;
  for (int c = 0; c < chains; ++c) {
    const Hop<Sim> hop{&sim, &fired, static_cast<std::uint64_t>(c), hops,
                       0.0};
    sim.schedule_after(1e-9 * static_cast<double>(c), hop);
  }
  sim.run_until(1e9);
  return fired;
}

struct EventCoreResult {
  double new_events_per_sec = 0.0;
  double legacy_events_per_sec = 0.0;
  double speedup = 0.0;
};

EventCoreResult bench_event_core(int chains, int hops, int reps) {
  EventCoreResult result;
  double best_new = 0.0;
  double best_legacy = 0.0;
  for (int r = 0; r < reps; ++r) {
    {
      l3::sim::Simulator sim;
      const auto start = Clock::now();
      const std::uint64_t fired = run_hop_workload(sim, chains, hops);
      const double rate = static_cast<double>(fired) / seconds_since(start);
      if (rate > best_new) best_new = rate;
    }
    {
      LegacySimulator sim;
      const auto start = Clock::now();
      const std::uint64_t fired = run_hop_workload(sim, chains, hops);
      const double rate = static_cast<double>(fired) / seconds_since(start);
      if (rate > best_legacy) best_legacy = rate;
    }
  }
  result.new_events_per_sec = best_new;
  result.legacy_events_per_sec = best_legacy;
  result.speedup = best_new / best_legacy;
  return result;
}

double bench_periodic(int tasks, double sim_seconds) {
  l3::sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<l3::sim::PeriodicHandle> handles;
  handles.reserve(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    handles.push_back(sim.schedule_every(
        0.5 + 0.01 * static_cast<double>(i % 13), [&fired] { ++fired; }));
  }
  const auto start = Clock::now();
  sim.run_until(sim_seconds);
  return static_cast<double>(fired) / seconds_since(start);
}

// ---------------------------------------------------------------------------
// Replica of the pre-refactor TSDB storage/query shape: string-keyed
// std::map of deques with linear window scans.
class LegacyTsdb {
 public:
  void append(const std::string& key, l3::SimTime t, double v) {
    auto& series = scalars_[key];
    series.push_back({t, v});
    while (!series.empty() && series.front().t < t - retention_) {
      series.pop_front();
    }
  }

  std::optional<double> rate(const std::string& key, l3::SimDuration window,
                             l3::SimTime now) const {
    const auto it = scalars_.find(key);
    if (it == scalars_.end()) return std::nullopt;
    const auto& s = it->second;
    const l3::SimTime start = now - window;
    std::size_t first = s.size();
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i].t >= start && s[i].t <= now) {
        first = i;
        break;
      }
    }
    if (first == s.size()) return std::nullopt;
    std::size_t last = first;
    for (std::size_t i = s.size(); i-- > first;) {
      if (s[i].t <= now) {
        last = i;
        break;
      }
    }
    if (last - first + 1 < 2) return std::nullopt;
    const double elapsed = s[last].t - s[first].t;
    if (elapsed <= 0.0) return std::nullopt;
    return (s[last].v - s[first].v) / elapsed;
  }

 private:
  struct Sample {
    l3::SimTime t;
    double v;
  };
  std::map<std::string, std::deque<Sample>> scalars_;
  l3::SimDuration retention_ = 120.0;
};

std::vector<std::string> make_series_names(int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    names.push_back("request_total{split=api,src=cluster-1,dst=cluster-" +
                    std::to_string(i) + "}");
  }
  return names;
}

struct TsdbResult {
  double new_ops_per_sec = 0.0;
  double legacy_ops_per_sec = 0.0;
  double speedup = 0.0;
};

/// Scrape-shaped workload: `series` counters appended every 5 s of sim
/// time, `queries_per_append` controller reads of a 10 s window per cycle.
TsdbResult bench_tsdb(int series, int cycles, int queries_per_append) {
  const auto names = make_series_names(series);
  TsdbResult result;
  std::uint64_t ops = 0;
  double sink = 0.0;

  {
    l3::metrics::TimeSeriesDb db;
    std::vector<l3::metrics::SeriesId> ids;
    ids.reserve(names.size());
    for (const auto& name : names) ids.push_back(db.series(name));
    const auto start = Clock::now();
    ops = 0;
    for (int c = 0; c < cycles; ++c) {
      const double now = 5.0 * static_cast<double>(c);
      for (std::size_t s = 0; s < ids.size(); ++s) {
        db.append(ids[s], now, static_cast<double>(c * 100 + s));
        ++ops;
      }
      for (int q = 0; q < queries_per_append; ++q) {
        for (const auto id : ids) {
          if (const auto r = db.rate(id, 10.0, now)) sink += *r;
          ++ops;
        }
      }
      db.compact(now);
    }
    result.new_ops_per_sec = static_cast<double>(ops) / seconds_since(start);
  }
  {
    LegacyTsdb db;
    const auto start = Clock::now();
    ops = 0;
    for (int c = 0; c < cycles; ++c) {
      const double now = 5.0 * static_cast<double>(c);
      for (std::size_t s = 0; s < names.size(); ++s) {
        db.append(names[s], now, static_cast<double>(c * 100 + s));
        ++ops;
      }
      for (int q = 0; q < queries_per_append; ++q) {
        for (const auto& name : names) {
          if (const auto r = db.rate(name, 10.0, now)) sink += *r;
          ++ops;
        }
      }
    }
    result.legacy_ops_per_sec =
        static_cast<double>(ops) / seconds_since(start);
  }
  if (sink == 42.0) std::cerr << "";  // keep the reads observable
  result.speedup = result.new_ops_per_sec / result.legacy_ops_per_sec;
  return result;
}

struct ScenarioResult {
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t requests = 0;
  /// Same scenario with the flight recorder + self-profiler bound.
  double profiled_wall_seconds = 0.0;
  /// (profiled - plain) / plain, best-of-reps both sides, clamped at 0:
  /// when the recorder's true cost is below run-to-run noise the raw
  /// difference can come out slightly negative, which is not a speedup —
  /// it's noise, and a negative "overhead" in the JSON reads as a bug.
  /// The raw value is kept alongside for honesty. The obs overhead gate in
  /// scripts/check.sh asserts the clamped value stays within 5%.
  double obs_overhead_frac = 0.0;
  double obs_overhead_frac_raw = 0.0;
  std::size_t profile_subsystems = 0;
};

ScenarioResult bench_scenario(double duration, int reps) {
  const auto trace = l3::workload::make_scenario1(1);
  l3::workload::RunnerConfig config;
  config.seed = 42;
  config.warmup = 30.0;
  config.duration = duration;
  ScenarioResult best;
  best.wall_seconds = 1e300;
  best.profiled_wall_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const auto result =
        l3::workload::run_scenario(trace, l3::workload::PolicyKind::kL3,
                                   config);
    const double wall = seconds_since(start);
    if (wall < best.wall_seconds) {
      best.wall_seconds = wall;
      best.sim_seconds = config.warmup + duration + 30.0;  // incl. drain
      best.requests = result.requests;
    }
  }
  l3::workload::RunnerConfig profiled_config = config;
  profiled_config.profile = true;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const auto result = l3::workload::run_scenario(
        trace, l3::workload::PolicyKind::kL3, profiled_config);
    const double wall = seconds_since(start);
    if (wall < best.profiled_wall_seconds) {
      best.profiled_wall_seconds = wall;
      best.profile_subsystems = result.profile.active_subsystems();
    }
  }
  best.obs_overhead_frac_raw =
      (best.profiled_wall_seconds - best.wall_seconds) / best.wall_seconds;
  best.obs_overhead_frac = std::max(0.0, best.obs_overhead_frac_raw);
  return best;
}

struct RequestPathResult {
  int picks = 0;
  double weighted_picks_per_sec = 0.0;
  double p2c_picks_per_sec = 0.0;
  /// pick_backend_batch() throughput on the same proxies — the batch
  /// kernels with per-pick plumbing (scope, counter, state refresh)
  /// amortised over the whole block. check.sh gates batched >= 1.5x scalar.
  double batched_weighted_picks_per_sec = 0.0;
  double batched_p2c_picks_per_sec = 0.0;
  double batch_pick_speedup = 0.0;  // batched weighted / scalar weighted
  double requests_per_sec = 0.0;    // end-to-end, from the scenario bench
};

/// Backend-selection throughput on a realistic 3-backend proxy: weighted
/// picks exercise the cached cumulative-weight table, P2C picks the cached
/// availability mask + scratch candidate buffer. Pure pick loop — no
/// events, no WAN — so this isolates the picker from the rest of the path.
double bench_picks(l3::mesh::RoutingMode mode, int picks) {
  l3::sim::Simulator sim;
  l3::mesh::MeshConfig config;
  config.local_delay = 0.0;
  config.local_jitter_frac = 0.0;
  config.health_probe_interval = 0.0;
  config.routing = mode;
  l3::mesh::Mesh mesh(sim, l3::SplitRng(42), config);
  const auto c0 = mesh.add_cluster("c0");
  const auto c1 = mesh.add_cluster("c1");
  const auto c2 = mesh.add_cluster("c2");
  for (auto c : {c0, c1, c2}) {
    mesh.deploy("svc", c, {},
                std::make_unique<l3::mesh::FixedLatencyBehavior>(0.010,
                                                                 0.030));
  }
  l3::mesh::Proxy& proxy = mesh.proxy(c0, "svc");
  mesh.find_split(c0, "svc")
      ->set_weights(std::vector<std::uint64_t>{6000, 3000, 1000});
  std::uint64_t sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < picks; ++i) sink += proxy.pick_backend();
  const double rate = static_cast<double>(picks) / seconds_since(start);
  if (sink == 1u) std::cerr << "";  // keep the picks observable
  return rate;
}

/// Same proxy setup as bench_picks, driven through pick_backend_batch()
/// in blocks of 64 (the default dispatch batch).
double bench_picks_batched(l3::mesh::RoutingMode mode, int picks) {
  l3::sim::Simulator sim;
  l3::mesh::MeshConfig config;
  config.local_delay = 0.0;
  config.local_jitter_frac = 0.0;
  config.health_probe_interval = 0.0;
  config.routing = mode;
  l3::mesh::Mesh mesh(sim, l3::SplitRng(42), config);
  const auto c0 = mesh.add_cluster("c0");
  const auto c1 = mesh.add_cluster("c1");
  const auto c2 = mesh.add_cluster("c2");
  for (auto c : {c0, c1, c2}) {
    mesh.deploy("svc", c, {},
                std::make_unique<l3::mesh::FixedLatencyBehavior>(0.010,
                                                                 0.030));
  }
  l3::mesh::Proxy& proxy = mesh.proxy(c0, "svc");
  mesh.find_split(c0, "svc")
      ->set_weights(std::vector<std::uint64_t>{6000, 3000, 1000});
  constexpr int kBlock = 64;
  std::uint32_t block[kBlock];
  std::uint64_t sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i + kBlock <= picks; i += kBlock) {
    proxy.pick_backend_batch(block, kBlock);
    sink += block[0] + block[kBlock - 1];
  }
  const double rate = static_cast<double>(picks) / seconds_since(start);
  if (sink == 1u) std::cerr << "";  // keep the picks observable
  return rate;
}

RequestPathResult bench_request_path(int picks, int reps) {
  RequestPathResult result;
  result.picks = picks;
  for (int r = 0; r < reps; ++r) {
    const double weighted =
        bench_picks(l3::mesh::RoutingMode::kWeighted, picks);
    if (weighted > result.weighted_picks_per_sec) {
      result.weighted_picks_per_sec = weighted;
    }
    const double p2c = bench_picks(l3::mesh::RoutingMode::kPeakEwmaP2C, picks);
    if (p2c > result.p2c_picks_per_sec) result.p2c_picks_per_sec = p2c;
    const double batched_weighted =
        bench_picks_batched(l3::mesh::RoutingMode::kWeighted, picks);
    if (batched_weighted > result.batched_weighted_picks_per_sec) {
      result.batched_weighted_picks_per_sec = batched_weighted;
    }
    const double batched_p2c =
        bench_picks_batched(l3::mesh::RoutingMode::kPeakEwmaP2C, picks);
    if (batched_p2c > result.batched_p2c_picks_per_sec) {
      result.batched_p2c_picks_per_sec = batched_p2c;
    }
  }
  result.batch_pick_speedup =
      result.batched_weighted_picks_per_sec / result.weighted_picks_per_sec;
  return result;
}

struct SweepResult {
  std::size_t cells = 0;
  double serial_wall = 0.0;    // --jobs 1
  double parallel_wall = 0.0;  // --jobs 4
  double serial_cells_per_sec = 0.0;
  double parallel_cells_per_sec = 0.0;
  double speedup = 0.0;
  int hardware_jobs = 0;
};

/// Times the fig10-shaped grid (scenarios × RR/C3/L3 × reps) through the
/// experiment harness at jobs=1 and jobs=4. The byte-identity of the two
/// runs' results is covered by exp_runner_test; here we record throughput.
SweepResult bench_sweep(double duration, int grid_reps) {
  auto scenarios = l3::workload::all_latency_scenarios();
  l3::workload::RunnerConfig config;
  config.duration = duration;
  const auto spec = l3::exp::scenario_grid(
      "sweep", std::move(scenarios),
      {l3::workload::PolicyKind::kRoundRobin, l3::workload::PolicyKind::kC3,
       l3::workload::PolicyKind::kL3},
      config, grid_reps);

  SweepResult result;
  result.cells = spec.cell_count();
  result.hardware_jobs = l3::exp::effective_jobs(0);
  {
    const auto start = Clock::now();
    const auto cells = l3::exp::run_experiment(spec, {.jobs = 1});
    result.serial_wall = seconds_since(start);
    if (cells.size() != result.cells) std::cerr << "sweep: short run\n";
  }
  {
    const auto start = Clock::now();
    const auto cells = l3::exp::run_experiment(spec, {.jobs = 4});
    result.parallel_wall = seconds_since(start);
    if (cells.size() != result.cells) std::cerr << "sweep: short run\n";
  }
  result.serial_cells_per_sec =
      static_cast<double>(result.cells) / result.serial_wall;
  result.parallel_cells_per_sec =
      static_cast<double>(result.cells) / result.parallel_wall;
  result.speedup = result.serial_wall / result.parallel_wall;
  return result;
}

struct ShardResult {
  std::size_t regions = 0;
  std::size_t backends = 0;
  std::uint64_t requests = 0;
  double serial_wall = 0.0;   // --shards 1
  double sharded_wall = 0.0;  // --shards 4, pinned
  double serial_reqs_per_sec = 0.0;
  double sharded_reqs_per_sec = 0.0;
  double speedup = 0.0;
  int hardware_jobs = 0;
};

/// Times the 10k-backend mega scenario (l3/workload/mega.h) at shards=1 vs
/// shards=4 with shard threads pinned to CPUs. Digest byte-identity across
/// shard counts is covered by workload_mega_test; here we record aggregate
/// request throughput. Wall time is the engine run only (setup excluded),
/// best of 3 reps per shard count — the same methodology as the README
/// table, and necessary here because the first pinned run on a shared box
/// pays one-off affinity/page-fault costs the later reps don't.
ShardResult bench_shards(double duration) {
  l3::workload::MegaConfig config;
  config.duration = duration;
  config.pin_threads = true;
  ShardResult result;
  result.regions = config.regions;
  result.backends = config.regions * config.replicas_per_region;
  result.hardware_jobs = l3::exp::effective_jobs(0);
  constexpr int kReps = 3;
  config.shards = 1;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto serial = l3::workload::run_mega(config);
    result.requests = serial.total_requests;
    result.serial_wall = rep == 0
                             ? serial.wall_seconds
                             : std::min(result.serial_wall, serial.wall_seconds);
  }
  config.shards = 4;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto sharded = l3::workload::run_mega(config);
    if (sharded.total_requests != result.requests) {
      std::cerr << "shards: request counts diverged\n";
    }
    result.sharded_wall =
        rep == 0 ? sharded.wall_seconds
                 : std::min(result.sharded_wall, sharded.wall_seconds);
  }
  result.serial_reqs_per_sec =
      static_cast<double>(result.requests) / result.serial_wall;
  result.sharded_reqs_per_sec =
      static_cast<double>(result.requests) / result.sharded_wall;
  result.speedup = result.serial_wall / result.sharded_wall;
  return result;
}

struct ControlPlaneResult {
  std::size_t regions = 0;
  std::size_t backends_per_split = 0;
  std::size_t series_per_round = 0;  // series copied by one full scrape round
  int rounds = 0;
  double scrape_wall = 0.0;
  double manage_wall = 0.0;
  double scrape_series_per_sec = 0.0;
  double manage_backends_per_sec = 0.0;
  double cursor_hit_frac = 0.0;
  std::uint64_t plan_rebuilds = 0;
};

/// Times the mega-shaped control plane in isolation (the scrape→TSDB→manage
/// pipeline of the 24×420 scenario, whose per-region metric surface depends
/// on regions × backends, not on replica count): 24 regions, each with its
/// own TSDB + Scraper (one target = the region's registry, carrying the full
/// 24-backend proxy series plus controller introspection gauges) and its own
/// L3Controller managing a 24-backend split. Synthetic per-backend traffic
/// mutates the proxy series between rounds; the timed sections are exactly
/// Scraper::scrape_once (columnar copy) and L3Controller::tick (fused
/// gather + incremental window folds + weighting).
ControlPlaneResult bench_control_plane(int rounds) {
  namespace mn = l3::mesh::metric_names;
  constexpr std::size_t kRegions = 24;
  l3::sim::Simulator sim;
  l3::SplitRng root(20260808);
  l3::mesh::MeshConfig mc;
  mc.health_probe_interval = 0.0;  // no data plane traffic, no probes
  l3::mesh::Mesh mesh(sim, root.split("mesh"), mc);
  for (std::size_t r = 0; r < kRegions; ++r) {
    mesh.add_cluster("region-" + std::to_string(r));
  }
  l3::mesh::DeploymentConfig dc;
  dc.replicas = 1;
  for (std::size_t r = 0; r < kRegions; ++r) {
    mesh.deploy(
        "api", static_cast<l3::mesh::ClusterId>(r), dc,
        std::make_unique<l3::mesh::FixedLatencyBehavior>(0.020, 0.060));
  }

  // Per-region control planes, exactly the mega wiring (minus traffic).
  // Declaration order matters: controllers/scrapers must be destroyed
  // before the TSDBs they reference.
  std::vector<std::unique_ptr<l3::metrics::TimeSeriesDb>> tsdbs;
  std::vector<std::unique_ptr<l3::metrics::Scraper>> scrapers;
  std::vector<std::unique_ptr<l3::core::L3Controller>> controllers;
  for (std::size_t r = 0; r < kRegions; ++r) {
    const auto region = static_cast<l3::mesh::ClusterId>(r);
    mesh.proxy(region, "api");  // materialise proxy + TrafficSplit
    auto tsdb = std::make_unique<l3::metrics::TimeSeriesDb>();
    auto scraper = std::make_unique<l3::metrics::Scraper>(sim, *tsdb);
    scraper->add_target(mesh.cluster_names()[region], mesh.registry(region));
    auto controller = std::make_unique<l3::core::L3Controller>(
        mesh, *tsdb, region, std::make_unique<l3::lb::L3Policy>());
    controller->manage(*mesh.find_split(region, "api"));
    tsdbs.push_back(std::move(tsdb));
    scrapers.push_back(std::move(scraper));
    controllers.push_back(std::move(controller));
  }

  // Synthetic traffic handles: the same registry objects the proxies write
  // (Registry::counter et al. return existing series), one bundle per
  // (source region, backend) pair.
  struct BackendSeries {
    l3::metrics::Counter* requests;
    l3::metrics::Counter* success;
    l3::metrics::Counter* failure;
    l3::metrics::HistogramSeries* latency_success;
    l3::metrics::HistogramSeries* latency_failure;
    l3::metrics::Counter* latency_success_sum;
    l3::metrics::Gauge* inflight;
  };
  std::vector<BackendSeries> handles;
  handles.reserve(kRegions * kRegions);
  const auto& names = mesh.cluster_names();
  for (std::size_t src = 0; src < kRegions; ++src) {
    auto& registry = mesh.registry(static_cast<l3::mesh::ClusterId>(src));
    for (std::size_t dst = 0; dst < kRegions; ++dst) {
      const auto labels = mn::backend_labels("api", names[src], names[dst]);
      BackendSeries h;
      h.requests = &registry.counter(mn::kRequestTotal, labels);
      h.success = &registry.counter(mn::kSuccessTotal, labels);
      h.failure = &registry.counter(mn::kFailureTotal, labels);
      h.latency_success = &registry.histogram(mn::kLatencySuccess, labels);
      h.latency_failure = &registry.histogram(mn::kLatencyFailure, labels);
      h.latency_success_sum =
          &registry.counter(mn::kLatencySuccessSum, labels);
      h.inflight = &registry.gauge(mn::kInflight, labels);
      handles.push_back(h);
    }
  }
  const auto mutate = [&](int k) {
    for (std::size_t i = 0; i < handles.size(); ++i) {
      BackendSeries& h = handles[i];
      const double succ = 9.0 + static_cast<double>(i % 5);
      const double lat =
          0.015 + 0.00125 * static_cast<double>((i + static_cast<std::size_t>(k)) % 8);
      h.requests->add(succ + 1.0);
      h.success->add(succ);
      h.failure->add(1.0);
      h.latency_success->record(lat);
      h.latency_failure->record(2.0 * lat);
      h.latency_success_sum->add(lat * succ);
      h.inflight->set(1.0 + static_cast<double>(k % 7));
    }
  };

  // Warmup rounds build the scrape plans and fill the 10 s query windows so
  // the timed region measures the steady state, not first-touch interning.
  double now = 0.0;
  for (int k = 0; k < 4; ++k) {
    now += 2.5;
    sim.run_until(now);
    mutate(k);
    for (auto& scraper : scrapers) scraper->scrape_once();
    for (auto& controller : controllers) controller->tick();
  }

  ControlPlaneResult result;
  result.regions = kRegions;
  result.backends_per_split = kRegions;
  result.rounds = rounds;
  for (std::size_t r = 0; r < kRegions; ++r) {
    result.series_per_round +=
        mesh.registry(static_cast<l3::mesh::ClusterId>(r)).series_count();
  }
  const std::uint64_t rebuilds_before = [&] {
    std::uint64_t total = 0;
    for (const auto& scraper : scrapers) total += scraper->plan_rebuilds();
    return total;
  }();

  for (int k = 0; k < rounds; ++k) {
    now += 2.5;
    sim.run_until(now);
    mutate(k + 4);
    {
      const auto start = Clock::now();
      for (auto& scraper : scrapers) scraper->scrape_once();
      result.scrape_wall += seconds_since(start);
    }
    {
      const auto start = Clock::now();
      for (auto& controller : controllers) controller->tick();
      result.manage_wall += seconds_since(start);
    }
  }

  for (const auto& scraper : scrapers) {
    result.plan_rebuilds += scraper->plan_rebuilds();
  }
  result.plan_rebuilds -= rebuilds_before;  // rebuilds DURING timed rounds
  std::uint64_t hits = 0;
  std::uint64_t rebuilds = 0;
  for (const auto& tsdb : tsdbs) {
    hits += tsdb->cursor_hits();
    rebuilds += tsdb->cursor_rebuilds();
  }
  result.cursor_hit_frac =
      hits + rebuilds == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + rebuilds);
  result.scrape_series_per_sec =
      static_cast<double>(result.series_per_round) *
      static_cast<double>(rounds) / result.scrape_wall;
  result.manage_backends_per_sec =
      static_cast<double>(kRegions * kRegions) * static_cast<double>(rounds) /
      result.manage_wall;
  return result;
}

struct ProxyCostResult {
  std::uint64_t requests = 0;
  double zero_wall = 0.0;
  double costed_wall = 0.0;
  /// Traffic-share skew (lb::weight_skew: max/mean, 1.0 = uniform) of the
  /// cluster-1 client's post-warm-up traffic.
  double zero_skew = 0.0;
  double costed_skew = 0.0;
  /// (zero_skew - 1) / (costed_skew - 1): how much of the excess over
  /// uniform the saturated proxy tier erased. > 1 = weights flattened.
  double skew_compression = 0.0;
  double zero_p99 = 0.0;
  double costed_p99 = 0.0;
  std::uint64_t handshakes = 0;
  std::uint64_t cpu_queued = 0;
  double pool_hit_rate = 0.0;
};

/// The DESIGN.md §16 cost-sweep: a fixed heterogeneous scenario (cluster
/// medians 90/30/10 ms, 200 rps Poisson) under L3, once with the cost model
/// off and once with a 1-worker 4.8 ms/req proxy CPU stage (ρ ≈ 0.96). The
/// saturated stage queues; its delay lands on every backend alike, so the
/// per-backend latency ratios — and with them L3's weights and the
/// resulting traffic shares — compress toward uniform.
ProxyCostResult bench_proxy_cost(double duration) {
  l3::workload::ScenarioTrace trace("proxy-cost", 3, duration);
  const double medians[3] = {0.090, 0.030, 0.010};
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      trace.at(c, s) =
          l3::workload::TracePoint{medians[c], medians[c] * 3.0, 1.0};
    }
  }
  for (std::size_t s = 0; s < trace.steps(); ++s) trace.set_rps(s, 200.0);

  l3::workload::RunnerConfig config;
  config.warmup = 30.0;
  config.poisson_arrivals = true;

  ProxyCostResult result;
  {
    const auto start = Clock::now();
    const auto run = l3::workload::run_scenario(
        trace, l3::workload::PolicyKind::kL3, config);
    result.zero_wall = seconds_since(start);
    result.requests = run.requests;
    result.zero_skew = l3::lb::weight_skew(run.traffic_share);
    result.zero_p99 = run.summary.latency.p99;
  }
  l3::workload::RunnerConfig costed = config;
  costed.proxy_cost.cpu_per_request = 0.0048;  // 208 req/s capacity
  costed.proxy_cost.concurrency = 1;
  costed.proxy_cost.handshake_cost = 0.002;
  costed.proxy_cost.pool_size = 16;
  costed.proxy_cost.idle_timeout = 30.0;
  {
    const auto start = Clock::now();
    const auto run = l3::workload::run_scenario(
        trace, l3::workload::PolicyKind::kL3, costed);
    result.costed_wall = seconds_since(start);
    result.costed_skew = l3::lb::weight_skew(run.traffic_share);
    result.costed_p99 = run.summary.latency.p99;
    result.handshakes = run.proxy_cost_stats.handshakes;
    result.cpu_queued = run.proxy_cost_stats.queued;
    result.pool_hit_rate = run.proxy_cost_stats.pool_hit_rate();
  }
  result.skew_compression = result.costed_skew > 1.0
                                ? (result.zero_skew - 1.0) /
                                      (result.costed_skew - 1.0)
                                : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  int reps = 3;
  std::string out_path = "BENCH_sim_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--fast] [--reps N] [--out PATH]\n";
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  const int chains = fast ? 200000 : 400000;
  const int hops = 6;
  const int periodic_tasks = fast ? 200 : 1000;
  const double periodic_sim_seconds = fast ? 200.0 : 1000.0;
  const int tsdb_series = 64;
  const int tsdb_cycles = fast ? 2000 : 20000;
  const double scenario_duration = fast ? 60.0 : 240.0;
  const int pick_count = fast ? 2000000 : 10000000;
  const double sweep_duration = fast ? 30.0 : 120.0;
  const int sweep_reps = fast ? 1 : 2;
  const double shard_duration = fast ? 2.0 : 5.0;

  std::cout << "== sim_core — event core + TSDB hot-path benchmark ==\n";

  const EventCoreResult ev = bench_event_core(chains, hops, reps);
  std::cout << "event core   : " << ev.new_events_per_sec / 1e6
            << " M events/s  (legacy " << ev.legacy_events_per_sec / 1e6
            << " M events/s, speedup " << ev.speedup << "x)\n";

  const double periodic = bench_periodic(periodic_tasks, periodic_sim_seconds);
  std::cout << "periodic     : " << periodic / 1e6 << " M firings/s\n";

  const TsdbResult tsdb = bench_tsdb(tsdb_series, tsdb_cycles, 4);
  std::cout << "tsdb         : " << tsdb.new_ops_per_sec / 1e6
            << " M ops/s     (legacy " << tsdb.legacy_ops_per_sec / 1e6
            << " M ops/s, speedup " << tsdb.speedup << "x)\n";

  const ScenarioResult scenario = bench_scenario(scenario_duration, reps);
  std::cout << "scenario     : " << scenario.wall_seconds << " s wall for "
            << scenario.sim_seconds << " s sim (" << scenario.requests
            << " requests, "
            << scenario.sim_seconds / scenario.wall_seconds
            << "x realtime)\n";
  std::cout << "obs overhead : " << scenario.profiled_wall_seconds
            << " s wall with recorder (" << scenario.obs_overhead_frac * 100.0
            << "% overhead, " << scenario.profile_subsystems
            << " subsystems profiled)\n";

  RequestPathResult rp = bench_request_path(pick_count, reps);
  rp.requests_per_sec =
      static_cast<double>(scenario.requests) / scenario.wall_seconds;
  std::cout << "request path : weighted " << rp.weighted_picks_per_sec / 1e6
            << " M picks/s, p2c " << rp.p2c_picks_per_sec / 1e6
            << " M picks/s, end-to-end " << rp.requests_per_sec / 1e6
            << " M req/s\n";
  std::cout << "batch picks  : weighted "
            << rp.batched_weighted_picks_per_sec / 1e6 << " M picks/s, p2c "
            << rp.batched_p2c_picks_per_sec / 1e6
            << " M picks/s (batched/scalar " << rp.batch_pick_speedup
            << "x)\n";

  const SweepResult sweep = bench_sweep(sweep_duration, sweep_reps);
  std::cout << "hardware     : " << sweep.hardware_jobs
            << " hardware thread(s)\n";
  std::cout << "sweep        : " << sweep.cells << " cells — jobs=1 "
            << sweep.serial_cells_per_sec << " cells/s, jobs=4 "
            << sweep.parallel_cells_per_sec << " cells/s";
  if (sweep.hardware_jobs >= 2) {
    std::cout << " (speedup " << sweep.speedup << "x on "
              << sweep.hardware_jobs << " hardware threads)\n";
  } else {
    // On a single hardware thread jobs=4 only measures scheduling overhead;
    // a sub-1.0 "speedup" here would misread as a parallel-scaling
    // regression, so don't report one.
    std::cout << " (speedup n/a: only " << sweep.hardware_jobs
              << " hardware thread, jobs=4 cannot scale)\n";
  }

  const ShardResult shard = bench_shards(shard_duration);
  std::cout << "mega shards  : " << shard.backends << " backends — shards=1 "
            << shard.serial_reqs_per_sec << " req/s, shards=4 "
            << shard.sharded_reqs_per_sec << " req/s";
  if (shard.hardware_jobs >= 4) {
    std::cout << " (pinned speedup " << shard.speedup << "x)\n";
  } else {
    std::cout << " (speedup n/a: only " << shard.hardware_jobs
              << " hardware thread(s), 4 shards cannot scale)\n";
  }

  const int control_rounds = fast ? 160 : 640;
  const ControlPlaneResult cp = bench_control_plane(control_rounds);
  std::cout << "control plane: " << cp.regions << " regions — scrape "
            << cp.scrape_series_per_sec << " series/s, manage "
            << cp.manage_backends_per_sec << " backends/s (cursor hits "
            << 100.0 * cp.cursor_hit_frac << "%, " << cp.plan_rebuilds
            << " plan rebuilds in " << cp.rounds << " rounds)\n";

  const double proxy_cost_duration = fast ? 60.0 : 120.0;
  const ProxyCostResult pc = bench_proxy_cost(proxy_cost_duration);
  std::cout << "proxy cost   : share skew " << pc.zero_skew
            << " (zero cost) -> " << pc.costed_skew
            << " (saturated proxy, compression " << pc.skew_compression
            << "x); p99 " << pc.zero_p99 << " s -> " << pc.costed_p99
            << " s, " << pc.handshakes << " handshakes, pool hit rate "
            << pc.pool_hit_rate << "\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"sim_core\",\n"
       << "  \"fast\": " << (fast ? "true" : "false") << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"hardware_threads\": " << sweep.hardware_jobs << ",\n"
       << "  \"event_core\": {\n"
       << "    \"chains\": " << chains << ",\n"
       << "    \"hops\": " << hops << ",\n"
       << "    \"events_per_sec\": " << ev.new_events_per_sec << ",\n"
       << "    \"legacy_events_per_sec\": " << ev.legacy_events_per_sec
       << ",\n"
       << "    \"speedup\": " << ev.speedup << "\n"
       << "  },\n"
       << "  \"periodic\": {\n"
       << "    \"tasks\": " << periodic_tasks << ",\n"
       << "    \"firings_per_sec\": " << periodic << "\n"
       << "  },\n"
       << "  \"tsdb\": {\n"
       << "    \"series\": " << tsdb_series << ",\n"
       << "    \"cycles\": " << tsdb_cycles << ",\n"
       << "    \"ops_per_sec\": " << tsdb.new_ops_per_sec << ",\n"
       << "    \"legacy_ops_per_sec\": " << tsdb.legacy_ops_per_sec << ",\n"
       << "    \"speedup\": " << tsdb.speedup << "\n"
       << "  },\n"
       << "  \"scenario\": {\n"
       << "    \"sim_seconds\": " << scenario.sim_seconds << ",\n"
       << "    \"wall_seconds\": " << scenario.wall_seconds << ",\n"
       << "    \"requests\": " << scenario.requests << ",\n"
       << "    \"realtime_factor\": "
       << scenario.sim_seconds / scenario.wall_seconds << ",\n"
       << "    \"profiled_wall_seconds\": " << scenario.profiled_wall_seconds
       << ",\n"
       << "    \"obs_overhead_frac\": " << scenario.obs_overhead_frac << ",\n"
       << "    \"obs_overhead_frac_raw\": " << scenario.obs_overhead_frac_raw
       << ",\n"
       << "    \"obs_overhead_note\": \"clamped at 0; raw negatives are "
          "run-to-run noise, not a speedup\",\n"
       << "    \"profile_subsystems\": " << scenario.profile_subsystems << "\n"
       << "  },\n"
       << "  \"request_path\": {\n"
       << "    \"picks\": " << rp.picks << ",\n"
       << "    \"weighted_picks_per_sec\": " << rp.weighted_picks_per_sec
       << ",\n"
       << "    \"p2c_picks_per_sec\": " << rp.p2c_picks_per_sec << ",\n"
       << "    \"batched_weighted_picks_per_sec\": "
       << rp.batched_weighted_picks_per_sec << ",\n"
       << "    \"batched_p2c_picks_per_sec\": "
       << rp.batched_p2c_picks_per_sec << ",\n"
       << "    \"batch_pick_speedup\": " << rp.batch_pick_speedup << ",\n"
       << "    \"requests_per_sec\": " << rp.requests_per_sec << "\n"
       << "  },\n"
       << "  \"sweep\": {\n"
       << "    \"cells\": " << sweep.cells << ",\n"
       << "    \"hardware_threads\": " << sweep.hardware_jobs << ",\n"
       << "    \"jobs1_wall_seconds\": " << sweep.serial_wall << ",\n"
       << "    \"jobs4_wall_seconds\": " << sweep.parallel_wall << ",\n"
       << "    \"jobs1_cells_per_sec\": " << sweep.serial_cells_per_sec
       << ",\n"
       << "    \"jobs4_cells_per_sec\": " << sweep.parallel_cells_per_sec
       << ",\n";
  if (sweep.hardware_jobs >= 2) {
    json << "    \"jobs4_speedup\": " << sweep.speedup << "\n";
  } else {
    // A "speedup" below 1.0 on a 1-thread box reads as a parallel-scaling
    // regression when it is really just scheduling overhead: flag it
    // instead of publishing the misleading ratio.
    json << "    \"jobs4_speedup_suppressed\": true,\n"
         << "    \"jobs4_speedup_note\": \"only " << sweep.hardware_jobs
         << " hardware thread(s); jobs=4 cannot scale, ratio omitted\"\n";
  }
  json << "  },\n"
       << "  \"shards\": {\n"
       << "    \"regions\": " << shard.regions << ",\n"
       << "    \"backends\": " << shard.backends << ",\n"
       << "    \"requests\": " << shard.requests << ",\n"
       << "    \"hardware_threads\": " << shard.hardware_jobs << ",\n"
       << "    \"shards1_wall_seconds\": " << shard.serial_wall << ",\n"
       << "    \"shards4_wall_seconds\": " << shard.sharded_wall << ",\n"
       << "    \"shards1_reqs_per_sec\": " << shard.serial_reqs_per_sec
       << ",\n"
       << "    \"shards4_reqs_per_sec\": " << shard.sharded_reqs_per_sec
       << ",\n";
  if (shard.hardware_jobs >= 4) {
    json << "    \"shards_speedup\": " << shard.speedup << "\n";
  } else {
    // Same honesty rule as jobs4_speedup: with the shard threads pinned
    // onto too few CPUs the ratio only measures barrier overhead — flag it
    // instead of publishing a misleading number.
    json << "    \"shards_speedup_suppressed\": true,\n"
         << "    \"shards_speedup_note\": \"only " << shard.hardware_jobs
         << " hardware thread(s); 4 pinned shards cannot scale, ratio "
            "omitted\"\n";
  }
  json << "  },\n"
       << "  \"control_plane\": {\n"
       << "    \"regions\": " << cp.regions << ",\n"
       << "    \"backends_per_split\": " << cp.backends_per_split << ",\n"
       << "    \"series_per_round\": " << cp.series_per_round << ",\n"
       << "    \"rounds\": " << cp.rounds << ",\n"
       << "    \"scrape_wall_seconds\": " << cp.scrape_wall << ",\n"
       << "    \"manage_wall_seconds\": " << cp.manage_wall << ",\n"
       << "    \"scrape_series_per_sec\": " << cp.scrape_series_per_sec
       << ",\n"
       << "    \"manage_backends_per_sec\": " << cp.manage_backends_per_sec
       << ",\n"
       << "    \"cursor_hit_frac\": " << cp.cursor_hit_frac << ",\n"
       << "    \"plan_rebuilds\": " << cp.plan_rebuilds << "\n"
       << "  },\n"
       << "  \"proxy_cost\": {\n"
       << "    \"requests\": " << pc.requests << ",\n"
       << "    \"zero_wall_seconds\": " << pc.zero_wall << ",\n"
       << "    \"costed_wall_seconds\": " << pc.costed_wall << ",\n"
       << "    \"zero_share_skew\": " << pc.zero_skew << ",\n"
       << "    \"costed_share_skew\": " << pc.costed_skew << ",\n"
       << "    \"skew_compression\": " << pc.skew_compression << ",\n"
       << "    \"zero_p99_seconds\": " << pc.zero_p99 << ",\n"
       << "    \"costed_p99_seconds\": " << pc.costed_p99 << ",\n"
       << "    \"handshakes\": " << pc.handshakes << ",\n"
       << "    \"cpu_queued\": " << pc.cpu_queued << ",\n"
       << "    \"pool_hit_rate\": " << pc.pool_hit_rate << "\n"
       << "  }\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
