// Extension bench contrasting the two places latency-aware balancing can
// live (§6 "Optimizing for latency"):
//
//  * in the proxy, per request — Linkerd's PeakEWMA power-of-two-choices
//    ("Beyond Round Robin"), which reacts within a round trip but, as the
//    paper notes, no mesh ships it ACROSS clusters;
//  * in the control plane, per TrafficSplit — the paper's L3, which works
//    on any SMI mesh today but reacts on the 5 s scrape+control loop.
//
// Run both (plus round-robin) on scenario-3 — stable medians, wandering
// tails — to quantify the reaction-speed gap L3 trades for deployability.
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Extension",
                      "per-request PeakEWMA-P2C vs TrafficSplit-level L3 on "
                      "scenario-3");

  const auto trace = workload::make_scenario3();
  workload::RunnerConfig base;
  if (args.fast) base.duration = 180.0;

  Table table({"strategy", "granularity", "P50 (ms)", "P99 (ms)"});
  auto add = [&](const std::string& name, const std::string& granularity,
                 workload::PolicyKind kind, mesh::RoutingMode routing) {
    workload::RunnerConfig config = base;
    config.routing = routing;
    const auto results =
        workload::run_scenario_repeated(trace, kind, config, reps);
    double p50 = 0.0;
    for (const auto& r : results) p50 += r.summary.latency.p50;
    table.add_row({name, granularity, fmt_ms(p50 / reps),
                   fmt_ms(workload::mean_p99(results))});
  };

  add("round-robin", "per split (static)", workload::PolicyKind::kRoundRobin,
      mesh::RoutingMode::kWeighted);
  add("L3", "per split / 5 s loop", workload::PolicyKind::kL3,
      mesh::RoutingMode::kWeighted);
  // Per-request mode decides in the data plane; the control-plane policy is
  // irrelevant, so pair it with round-robin weights.
  add("PeakEWMA-P2C", "per request", workload::PolicyKind::kRoundRobin,
      mesh::RoutingMode::kPeakEwmaP2C);
  table.print(std::cout);
  std::cout << "\nexpected: per-request balancing reacts within one RTT and "
               "sets the latency floor; L3 recovers most of that gap while "
               "needing only standard SMI TrafficSplits — the paper's "
               "deployability argument.\n";
  return 0;
}
