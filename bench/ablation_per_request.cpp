// Extension bench contrasting the two places latency-aware balancing can
// live (§6 "Optimizing for latency"):
//
//  * in the proxy, per request — Linkerd's PeakEWMA power-of-two-choices
//    ("Beyond Round Robin"), which reacts within a round trip but, as the
//    paper notes, no mesh ships it ACROSS clusters;
//  * in the control plane, per TrafficSplit — the paper's L3, which works
//    on any SMI mesh today but reacts on the 5 s scrape+control loop.
//
// Run both (plus round-robin) on scenario-3 — stable medians, wandering
// tails — to quantify the reaction-speed gap L3 trades for deployability.
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>
#include <memory>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Extension",
                      "per-request PeakEWMA-P2C vs TrafficSplit-level L3 on "
                      "scenario-3");

  auto trace = std::make_shared<const workload::ScenarioTrace>(
      workload::make_scenario3());
  workload::RunnerConfig base;
  base.profile = args.profile;
  base.dispatch_batch = static_cast<std::size_t>(args.batch);
  base.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) base.duration = 180.0;

  struct Strategy {
    std::string name;
    std::string granularity;
    workload::PolicyKind kind;
    mesh::RoutingMode routing;
  };
  // Per-request mode decides in the data plane; the control-plane policy is
  // irrelevant, so pair it with round-robin weights.
  auto strategies = std::make_shared<const std::vector<Strategy>>(
      std::vector<Strategy>{
          {"round-robin", "per split (static)",
           workload::PolicyKind::kRoundRobin, mesh::RoutingMode::kWeighted},
          {"L3", "per split / 5 s loop", workload::PolicyKind::kL3,
           mesh::RoutingMode::kWeighted},
          {"PeakEWMA-P2C", "per request", workload::PolicyKind::kRoundRobin,
           mesh::RoutingMode::kPeakEwmaP2C},
      });

  exp::ExperimentSpec spec;
  spec.name = "ablation-per-request";
  spec.scenarios = {trace->name()};
  spec.policies.clear();
  for (const auto& s : *strategies) spec.policies.push_back(s.name);
  spec.repetitions = reps;
  spec.seed = base.seed;
  spec.cell = [trace, base, strategies](const exp::Cell& cell,
                                        std::uint64_t seed) -> exp::CellData {
    const auto& strategy = (*strategies)[cell.policy];
    workload::RunnerConfig config = base;
    config.seed = seed;
    config.routing = strategy.routing;
    return workload::run_scenario(*trace, strategy.kind, config);
  };
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"strategy", "granularity", "P50 (ms)", "P99 (ms)"});
  for (std::size_t k = 0; k < spec.policies.size(); ++k) {
    const auto cells = grid.at(0, k);
    table.add_row({spec.policies[k], (*strategies)[k].granularity,
                   fmt_ms(exp::mean_p50(cells)),
                   fmt_ms(exp::mean_p99(cells))});
  }
  table.print(std::cout);
  std::cout << "\nexpected: per-request balancing reacts within one RTT and "
               "sets the latency floor; L3 recovers most of that gap while "
               "needing only standard SMI TrafficSplits — the paper's "
               "deployability argument.\n";

  exp::Report report("Extension: per-request balancing");
  report.add_grid(spec, results);
  report.add_table("granularity comparison on scenario-3", table);
  bench::finish_report(args, report);
  return 0;
}
