// Extension bench (§5.2.1): the paper's benchmarks did not retry failed
// requests and note that the penalty factor's latency effect "might not be
// as strong with retries". Enable client-side retries on failure-1 and
// measure how the picture changes: with retries, failures convert into
// latency (extra round trips), so L3's success-rate steering now directly
// buys tail latency.
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Extension", "client retries on failure-1");

  const auto trace = workload::make_failure1();
  workload::RunnerConfig base;
  base.profile = args.profile;
  base.dispatch_batch = static_cast<std::size_t>(args.batch);
  base.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) base.duration = 180.0;

  const std::vector<int> retry_counts = {0, 2};
  std::vector<exp::ConfigVariant> variants;
  for (const int retries : retry_counts) {
    variants.push_back({"retries=" + std::to_string(retries),
                        [retries](workload::RunnerConfig& c) {
                          c.client_retries = retries;
                          c.retry_backoff = 0.050;
                        }});
  }

  auto spec = exp::scenario_grid(
      "ablation-retries", {trace},
      {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kL3}, base,
      reps, variants);
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"retries", "algorithm", "success (%)", "P50 (ms)", "P99 (ms)",
               "mean attempts"});
  for (std::size_t v = 0; v < retry_counts.size(); ++v) {
    for (std::size_t k = 0; k < spec.policies.size(); ++k) {
      const auto cells = grid.at(0, k, v);
      table.add_row({std::to_string(retry_counts[v]), spec.policies[k],
                     fmt_percent(exp::mean_success_rate(cells), 2),
                     fmt_ms(exp::mean_p50(cells)), fmt_ms(exp::mean_p99(cells)),
                     fmt_double(exp::mean_attempts(cells), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: retries push success toward 100 % for both "
               "algorithms but convert failures into latency; L3's advantage "
               "over round-robin grows because avoiding failing backends now "
               "avoids retry round trips too.\n";

  exp::Report report("Extension: client retries");
  report.add_grid(spec, results);
  report.add_table("retries on failure-1", table);
  bench::finish_report(args, report);
  return 0;
}
