// Extension bench (§5.2.1): the paper's benchmarks did not retry failed
// requests and note that the penalty factor's latency effect "might not be
// as strong with retries". Enable client-side retries on failure-1 and
// measure how the picture changes: with retries, failures convert into
// latency (extra round trips), so L3's success-rate steering now directly
// buys tail latency.
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Extension", "client retries on failure-1");

  const auto trace = workload::make_failure1();
  workload::RunnerConfig base;
  if (args.fast) base.duration = 180.0;

  Table table({"retries", "algorithm", "success (%)", "P50 (ms)", "P99 (ms)",
               "mean attempts"});
  for (const int retries : {0, 2}) {
    for (const auto kind :
         {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kL3}) {
      workload::RunnerConfig config = base;
      config.client_retries = retries;
      config.retry_backoff = 0.050;
      const auto results =
          workload::run_scenario_repeated(trace, kind, config, reps);
      double attempts = 0.0, p50 = 0.0, p99 = 0.0;
      for (const auto& r : results) {
        p50 += r.summary.latency.p50;
        p99 += r.summary.latency.p99;
        attempts += r.mean_attempts;
      }
      const double success = workload::mean_success_rate(results);
      table.add_row({std::to_string(retries),
                     std::string(workload::policy_name(kind)),
                     fmt_percent(success, 2), fmt_ms(p50 / reps),
                     fmt_ms(p99 / reps), fmt_double(attempts / reps, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: retries push success toward 100 % for both "
               "algorithms but convert failures into latency; L3's advantage "
               "over round-robin grows because avoiding failing backends now "
               "avoids retry round trips too.\n";
  return 0;
}
