// Reproduces Figure 8: round-robin vs L3-with-PeakEWMA vs L3-with-EWMA on
// scenario-4 (the trace with the wildest tail fluctuation), three
// repetitions each.
//
// Paper values (ms): round-robin 805.7, PeakEWMA 590.4, EWMA 577.1 —
// both filters beat round-robin decisively; EWMA edges out PeakEWMA by
// ~2.3 %, which is why the paper uses EWMA everywhere else.
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 8", "EWMA vs PeakEWMA on scenario-4");

  workload::RunnerConfig config;
  config.profile = args.profile;
  config.dispatch_batch = static_cast<std::size_t>(args.batch);
  config.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) config.duration = 180.0;

  auto spec = exp::scenario_grid(
      "fig08", {workload::make_scenario4()},
      {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kL3}, config,
      reps,
      {{"PeakEWMA",
        [](workload::RunnerConfig& c) {
          c.controller.latency_filter = metrics::FilterKind::kPeakEwma;
        }},
       {"EWMA", [](workload::RunnerConfig& c) {
          c.controller.latency_filter = metrics::FilterKind::kEwma;
        }}});
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  // The filter variant is irrelevant for round-robin (no controller input);
  // report its first variant as the baseline.
  const double rr_p99 = exp::mean_p99(grid.at(0, 0, 0));

  Table table({"variant", "P99 (ms)", "vs round-robin (%)"});
  table.add_row({"round-robin", fmt_ms(rr_p99), "0.0"});
  for (std::size_t v = 0; v < spec.variants.size(); ++v) {
    const double p99 = exp::mean_p99(grid.at(0, 1, v));
    table.add_row({"L3 (" + spec.variants[v] + ")", fmt_ms(p99),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\npaper: RR 805.7 ms, PeakEWMA 590.4 ms (−26.7 %), EWMA "
               "577.1 ms (−28.4 %)\n";

  exp::Report report("Figure 8");
  report.add_grid(spec, results);
  report.add_table("latency filter comparison", table);
  bench::finish_report(args, report);
  return 0;
}
