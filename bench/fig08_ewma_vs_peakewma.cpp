// Reproduces Figure 8: round-robin vs L3-with-PeakEWMA vs L3-with-EWMA on
// scenario-4 (the trace with the wildest tail fluctuation), three
// repetitions each.
//
// Paper values (ms): round-robin 805.7, PeakEWMA 590.4, EWMA 577.1 —
// both filters beat round-robin decisively; EWMA edges out PeakEWMA by
// ~2.3 %, which is why the paper uses EWMA everywhere else.
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 8", "EWMA vs PeakEWMA on scenario-4");

  const auto trace = workload::make_scenario4();
  workload::RunnerConfig config;
  if (args.fast) config.duration = 180.0;

  Table table({"variant", "P99 (ms)", "vs round-robin (%)"});
  double rr_p99 = 0.0;

  {
    const auto rr = workload::run_scenario_repeated(
        trace, workload::PolicyKind::kRoundRobin, config, reps);
    rr_p99 = workload::mean_p99(rr);
    table.add_row({"round-robin", fmt_ms(rr_p99), "0.0"});
  }
  {
    workload::RunnerConfig cfg = config;
    cfg.controller.latency_filter = metrics::FilterKind::kPeakEwma;
    const auto results = workload::run_scenario_repeated(
        trace, workload::PolicyKind::kL3, cfg, reps);
    const double p99 = workload::mean_p99(results);
    table.add_row({"L3 (PeakEWMA)", fmt_ms(p99),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  {
    workload::RunnerConfig cfg = config;
    cfg.controller.latency_filter = metrics::FilterKind::kEwma;
    const auto results = workload::run_scenario_repeated(
        trace, workload::PolicyKind::kL3, cfg, reps);
    const double p99 = workload::mean_p99(results);
    table.add_row({"L3 (EWMA)", fmt_ms(p99),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\npaper: RR 805.7 ms, PeakEWMA 590.4 ms (−26.7 %), EWMA "
               "577.1 ms (−28.4 %)\n";
  return 0;
}
