// Tracing hot-path overhead (google-benchmark): drives a small multi-cluster
// mesh through full request lifecycles under three tracer configurations —
//
//   no_tracer   no tracer attached (the seed behaviour);
//   off         a tracer attached with SamplingMode::kOff — the ISSUE's
//               requirement: the hot path must pay only a single branch,
//               no allocations, no virtual dispatch;
//   sampled     ratio 1.0 — every request fully traced (the upper bound).
//
// no_tracer and off must be indistinguishable; sampled shows the cost of
// the spans themselves.
//
// The same split exists for the l3::obs flight recorder: no_recorder vs
// recorder-bound request benchmarks, plus `--obs-gate [MAX_PCT]` — a
// non-google-benchmark mode used by scripts/check.sh that runs a full
// scenario with and without the recorder, asserts the recorded run stays
// within MAX_PCT (default 5%) of the plain one, and asserts both runs
// produce identical simulation results (profiling must not perturb the DES).
#include "l3/mesh/mesh.h"
#include "l3/obs/recorder.h"
#include "l3/sim/simulator.h"
#include "l3/trace/tracer.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>

namespace {

using namespace l3;

enum class TracerSetup { kNone, kOff, kSampled };

/// One benchmark iteration = one request driven to completion through
/// proxy + WAN + server, on a mesh with timeouts disabled so the event
/// queue drains fully between requests.
void run_requests(benchmark::State& state, TracerSetup setup) {
  sim::Simulator sim;
  SplitRng rng(1);
  mesh::MeshConfig config;
  config.request_timeout = 0.0;        // no pending timeout events
  config.health_probe_interval = 0.0;  // no periodic events
  mesh::Mesh mesh(sim, rng.split("mesh"), config);
  const auto a = mesh.add_cluster("a");
  const auto b = mesh.add_cluster("b");
  mesh.wan().set_symmetric(a, b, {.base = 0.005, .jitter_frac = 0.1});
  mesh::DeploymentConfig dc;
  mesh.deploy("api", a, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.080));
  mesh.deploy("api", b, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.080));
  mesh.proxy(a, "api");

  std::optional<trace::Tracer> tracer;
  if (setup != TracerSetup::kNone) {
    trace::TracerConfig tc;
    tc.sampling = setup == TracerSetup::kOff ? trace::SamplingMode::kOff
                                             : trace::SamplingMode::kRatio;
    tc.ratio = 1.0;
    tc.max_traces = 64;
    tracer.emplace(sim, tc);
    mesh.set_tracer(&*tracer);
  }

  for (auto _ : state) {
    trace::SpanContext root{};
    if (tracer && tracer->enabled()) {
      root = tracer->start_trace("api", "a", "api");
    }
    bool done = false;
    mesh.call(a, "api", 0, root, [&](const mesh::Response& response) {
      benchmark::DoNotOptimize(response.success);
      done = true;
    });
    while (sim.step()) {
    }  // drain: the response is delivered before the queue empties
    if (root.sampled()) tracer->end_trace(root);
    benchmark::DoNotOptimize(done);
  }
}

void BM_RequestNoTracer(benchmark::State& state) {
  run_requests(state, TracerSetup::kNone);
}
BENCHMARK(BM_RequestNoTracer);

void BM_RequestTracerOff(benchmark::State& state) {
  run_requests(state, TracerSetup::kOff);
}
BENCHMARK(BM_RequestTracerOff);

void BM_RequestTracerSampled(benchmark::State& state) {
  run_requests(state, TracerSetup::kSampled);
}
BENCHMARK(BM_RequestTracerSampled);

/// The isolated single-branch cost: start_trace on a kOff tracer.
void BM_StartTraceOff(benchmark::State& state) {
  sim::Simulator sim;
  trace::Tracer tracer(sim, trace::TracerConfig{});  // sampling = kOff
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.start_trace("api", "a", "api"));
  }
}
BENCHMARK(BM_StartTraceOff);

/// Request path with no recorder bound: every L3_OBS_* macro pays one
/// thread-local read + null check and nothing else.
void BM_RequestNoRecorder(benchmark::State& state) {
  run_requests(state, TracerSetup::kNone);
}
BENCHMARK(BM_RequestNoRecorder);

/// Request path with the flight recorder bound: counters, rings and sampled
/// scope timers all live. The ratio to BM_RequestNoRecorder is the recorder
/// overhead the --obs-gate mode asserts on at scenario scale.
void BM_RequestRecorder(benchmark::State& state) {
  obs::Recorder recorder;
  obs::ScopedRecorderBind bind(recorder);
  run_requests(state, TracerSetup::kNone);
}
BENCHMARK(BM_RequestRecorder);

/// Isolated cost of one counter increment on a bound shard.
void BM_ObsCountBound(benchmark::State& state) {
  obs::Recorder recorder;
  obs::ScopedRecorderBind bind(recorder);
  for (auto _ : state) {
    L3_OBS_COUNT(kMeshRequests, 1);
  }
}
BENCHMARK(BM_ObsCountBound);

/// Isolated cost of one counter increment with no recorder bound (the
/// common case in production runs: TLS read + branch, nothing else).
void BM_ObsCountUnbound(benchmark::State& state) {
  for (auto _ : state) {
    L3_OBS_COUNT(kMeshRequests, 1);
  }
}
BENCHMARK(BM_ObsCountUnbound);

// ---------------------------------------------------------------------------
// --obs-gate: the check.sh overhead gate. Runs scenario-1 under the L3
// policy with the recorder off and on (best of `reps` each), fails if the
// recorder run is more than `max_pct` slower or if profiling changed the
// simulation results.

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct GateRun {
  double wall = 1e300;
  std::uint64_t requests = 0;
  double p99 = 0.0;
  std::size_t subsystems = 0;
};

GateRun best_of(const workload::ScenarioTrace& trace,
                const workload::RunnerConfig& config, int reps) {
  GateRun best;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const auto result =
        workload::run_scenario(trace, workload::PolicyKind::kL3, config);
    const double wall = seconds_since(start);
    if (wall < best.wall) best.wall = wall;
    // Deterministic outputs: identical across reps, so last-write is fine.
    best.requests = result.requests;
    best.p99 = result.summary.latency.p99;
    best.subsystems = result.profile.active_subsystems();
  }
  return best;
}

int run_obs_gate(double max_pct, int reps) {
  const auto trace = workload::make_scenario1(1);
  workload::RunnerConfig config;
  config.seed = 42;
  config.warmup = 30.0;
  config.duration = 120.0;

  const GateRun plain = best_of(trace, config, reps);
  config.profile = true;
  const GateRun recorded = best_of(trace, config, reps);

  const double overhead_pct =
      (recorded.wall - plain.wall) / plain.wall * 100.0;
  std::printf("obs-gate: plain %.3f s, recorder %.3f s, overhead %+.2f%% "
              "(limit %.1f%%), %zu subsystems profiled\n",
              plain.wall, recorded.wall, overhead_pct, max_pct,
              recorded.subsystems);

  if (plain.requests != recorded.requests || plain.p99 != recorded.p99) {
    std::printf("obs-gate FAIL: profiling perturbed the simulation "
                "(requests %llu vs %llu, p99 %.17g vs %.17g)\n",
                static_cast<unsigned long long>(plain.requests),
                static_cast<unsigned long long>(recorded.requests), plain.p99,
                recorded.p99);
    return 1;
  }
  if (recorded.subsystems < 6) {
    std::printf("obs-gate FAIL: only %zu subsystems profiled (expected >= 6 "
                "on the full scenario path)\n",
                recorded.subsystems);
    return 1;
  }
  if (overhead_pct > max_pct) {
    std::printf("obs-gate FAIL: recorder overhead %.2f%% exceeds %.1f%%\n",
                overhead_pct, max_pct);
    return 1;
  }
  std::printf("obs-gate ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double obs_gate_pct = 0.0;
  int obs_gate_reps = 3;
  bool obs_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-gate") == 0) {
      obs_gate = true;
      obs_gate_pct = 5.0;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        obs_gate_pct = std::atof(argv[++i]);
      }
    } else if (std::strcmp(argv[i], "--obs-gate-reps") == 0 && i + 1 < argc) {
      obs_gate_reps = std::atoi(argv[++i]);
    }
  }
  if (obs_gate) {
    return run_obs_gate(obs_gate_pct, obs_gate_reps < 1 ? 1 : obs_gate_reps);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
