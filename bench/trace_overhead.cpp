// Tracing hot-path overhead (google-benchmark): drives a small multi-cluster
// mesh through full request lifecycles under three tracer configurations —
//
//   no_tracer   no tracer attached (the seed behaviour);
//   off         a tracer attached with SamplingMode::kOff — the ISSUE's
//               requirement: the hot path must pay only a single branch,
//               no allocations, no virtual dispatch;
//   sampled     ratio 1.0 — every request fully traced (the upper bound).
//
// no_tracer and off must be indistinguishable; sampled shows the cost of
// the spans themselves.
#include "l3/mesh/mesh.h"
#include "l3/sim/simulator.h"
#include "l3/trace/tracer.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

namespace {

using namespace l3;

enum class TracerSetup { kNone, kOff, kSampled };

/// One benchmark iteration = one request driven to completion through
/// proxy + WAN + server, on a mesh with timeouts disabled so the event
/// queue drains fully between requests.
void run_requests(benchmark::State& state, TracerSetup setup) {
  sim::Simulator sim;
  SplitRng rng(1);
  mesh::MeshConfig config;
  config.request_timeout = 0.0;        // no pending timeout events
  config.health_probe_interval = 0.0;  // no periodic events
  mesh::Mesh mesh(sim, rng.split("mesh"), config);
  const auto a = mesh.add_cluster("a");
  const auto b = mesh.add_cluster("b");
  mesh.wan().set_symmetric(a, b, {.base = 0.005, .jitter_frac = 0.1});
  mesh::DeploymentConfig dc;
  mesh.deploy("api", a, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.080));
  mesh.deploy("api", b, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.080));
  mesh.proxy(a, "api");

  std::optional<trace::Tracer> tracer;
  if (setup != TracerSetup::kNone) {
    trace::TracerConfig tc;
    tc.sampling = setup == TracerSetup::kOff ? trace::SamplingMode::kOff
                                             : trace::SamplingMode::kRatio;
    tc.ratio = 1.0;
    tc.max_traces = 64;
    tracer.emplace(sim, tc);
    mesh.set_tracer(&*tracer);
  }

  for (auto _ : state) {
    trace::SpanContext root{};
    if (tracer && tracer->enabled()) {
      root = tracer->start_trace("api", "a", "api");
    }
    bool done = false;
    mesh.call(a, "api", 0, root, [&](const mesh::Response& response) {
      benchmark::DoNotOptimize(response.success);
      done = true;
    });
    while (sim.step()) {
    }  // drain: the response is delivered before the queue empties
    if (root.sampled()) tracer->end_trace(root);
    benchmark::DoNotOptimize(done);
  }
}

void BM_RequestNoTracer(benchmark::State& state) {
  run_requests(state, TracerSetup::kNone);
}
BENCHMARK(BM_RequestNoTracer);

void BM_RequestTracerOff(benchmark::State& state) {
  run_requests(state, TracerSetup::kOff);
}
BENCHMARK(BM_RequestTracerOff);

void BM_RequestTracerSampled(benchmark::State& state) {
  run_requests(state, TracerSetup::kSampled);
}
BENCHMARK(BM_RequestTracerSampled);

/// The isolated single-branch cost: start_trace on a kOff tracer.
void BM_StartTraceOff(benchmark::State& state) {
  sim::Simulator sim;
  trace::Tracer tracer(sim, trace::TracerConfig{});  // sampling = kOff
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.start_trace("api", "a", "api"));
  }
}
BENCHMARK(BM_StartTraceOff);

}  // namespace

BENCHMARK_MAIN();
