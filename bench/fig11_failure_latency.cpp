// Reproduces Figure 11: 99th-percentile latency under the failure scenarios.
//
// Paper values (ms): failure-1 — RR 447.5, C3 364.2, L3 364.9 (C3 and L3
// tie; L3 trades some latency for success rate); failure-2 — RR 117.2,
// C3 84.6, L3 76.2 (L3 −35 % vs RR).
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 11", "P99 latency on failure-1 / failure-2");

  workload::RunnerConfig config;
  if (args.fast) config.duration = 180.0;

  Table table({"scenario", "round-robin P99 (ms)", "C3 P99 (ms)",
               "L3 P99 (ms)", "L3 vs RR (%)"});
  for (const auto& trace :
       {workload::make_failure1(), workload::make_failure2()}) {
    double p99[3];
    const workload::PolicyKind kinds[3] = {workload::PolicyKind::kRoundRobin,
                                           workload::PolicyKind::kC3,
                                           workload::PolicyKind::kL3};
    for (int k = 0; k < 3; ++k) {
      p99[k] = workload::mean_p99(
          workload::run_scenario_repeated(trace, kinds[k], config, reps));
    }
    table.add_row({trace.name(), fmt_ms(p99[0]), fmt_ms(p99[1]),
                   fmt_ms(p99[2]),
                   fmt_double(bench::percent_decrease(p99[0], p99[2]))});
  }
  table.print(std::cout);
  std::cout << "\npaper: f1 447.5/364.2/364.9 ms (L3 −18.5 % vs RR); "
               "f2 117.2/84.6/76.2 ms (L3 −35 % vs RR)\n";
  return 0;
}
