// Reproduces Figure 11: 99th-percentile latency under the failure scenarios.
//
// The failure scenarios are chaos-based: the traces carry the failure-1/2
// latency profiles with a nearly clean success channel, and the failures
// themselves (replica crashes, WAN partitions/brownouts, scrape outages,
// controller pauses) are injected as first-class simulator events by the
// per-scenario l3::chaos FaultPlans. Health probing is disabled so only the
// scraped metrics can reveal a failed backend — the paper's setting.
//
// Paper values (ms): failure-1 — RR 447.5, C3 364.2, L3 364.9 (C3 and L3
// tie; L3 trades some latency for success rate); failure-2 — RR 117.2,
// C3 84.6, L3 76.2 (L3 −35 % vs RR).
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/scenarios.h"

#include <array>
#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 11", "P99 latency on failure-1 / failure-2");

  workload::RunnerConfig config;
  config.profile = args.profile;
  config.dispatch_batch = static_cast<std::size_t>(args.batch);
  config.shards = static_cast<std::size_t>(args.shards);
  bench::apply_proxy_cost(config, args);
  if (args.fast) config.duration = 180.0;
  config.health_probe_interval = 0.0;  // failures visible via metrics only

  const std::array<chaos::FaultPlan, 2> plans = {
      workload::failure1_faults(), workload::failure2_faults()};
  auto spec = exp::scenario_grid(
      "fig11",
      {workload::make_failure1_chaos(), workload::make_failure2_chaos()},
      {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
       workload::PolicyKind::kL3},
      config, reps, {},
      [plans](std::size_t scenario, workload::RunnerConfig& c) {
        c.faults = plans[scenario];
      });
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"scenario", "round-robin P99 (ms)", "C3 P99 (ms)",
               "L3 P99 (ms)", "L3 vs RR (%)"});
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    double p99[3];
    for (std::size_t k = 0; k < 3; ++k) p99[k] = exp::mean_p99(grid.at(s, k));
    table.add_row({spec.scenarios[s], fmt_ms(p99[0]), fmt_ms(p99[1]),
                   fmt_ms(p99[2]),
                   fmt_double(bench::percent_decrease(p99[0], p99[2]))});
  }
  table.print(std::cout);
  std::cout << "\npaper: f1 447.5/364.2/364.9 ms (L3 −18.5 % vs RR); "
               "f2 117.2/84.6/76.2 ms (L3 −35 % vs RR)\n";

  exp::Report report("Figure 11");
  report.add_grid(spec, results);
  report.add_table("P99 per failure scenario and policy", table);
  bench::finish_report(args, report);
  return 0;
}
