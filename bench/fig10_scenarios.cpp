// Reproduces Figure 10: 99th-percentile latency of round-robin, C3 and L3
// on the five TIER Mobility scenarios (three repetitions each).
//
// Paper values (ms):  scenario-1 459.4/391.2/359.6   scenario-2 115.4/82.4/74.7
//                     scenario-3 513.3/464.9/415.0   scenario-4 563.7/538.0/512.7
//                     scenario-5 116.4/109.2/105.7
// Expected shape: L3 < C3 < round-robin on every scenario, with the largest
// relative gains on scenarios 1–2 and the smallest on scenario 5.
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 10",
                      "P99 latency on scenario-1..5, RR vs C3 vs L3");

  workload::RunnerConfig config;
  config.profile = args.profile;
  config.dispatch_batch = static_cast<std::size_t>(args.batch);
  config.shards = static_cast<std::size_t>(args.shards);
  bench::apply_proxy_cost(config, args);
  if (args.fast) config.duration = 180.0;

  auto spec = exp::scenario_grid(
      "fig10", workload::all_latency_scenarios(),
      {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
       workload::PolicyKind::kL3},
      config, reps);
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"scenario", "round-robin P99 (ms)", "C3 P99 (ms)",
               "L3 P99 (ms)", "L3 vs RR (%)", "L3 vs C3 (%)"});
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    double p99[3];
    for (std::size_t k = 0; k < 3; ++k) p99[k] = exp::mean_p99(grid.at(s, k));
    table.add_row({spec.scenarios[s], fmt_ms(p99[0]), fmt_ms(p99[1]),
                   fmt_ms(p99[2]),
                   fmt_double(bench::percent_decrease(p99[0], p99[2])),
                   fmt_double(bench::percent_decrease(p99[1], p99[2]))});
  }
  table.print(std::cout);
  std::cout << "\npaper: L3 improves on RR by 21.7/35/19/9/9 % and on C3 by "
               "8/9/11/5/3 % (s1..s5)\n";

  exp::Report report("Figure 10");
  report.add_grid(spec, results);
  report.add_table("P99 per scenario and policy", table);
  bench::finish_report(args, report);
  return 0;
}
