// Ablation of Algorithm 2 in the regime it was designed for (§3.2): a
// sudden RPS surge against tightly-provisioned backends WITH an autoscaler.
// The rate controller spreads the surge across all clusters so no backend
// saturates while new replicas provision; without it, L3 keeps most traffic
// concentrated on its favourite, which queues until the autoscaler catches
// up.
//
// Setup: cluster-1 is the clear favourite (20 ms vs 100 ms) but THIN — one
// replica with 8 slots (≈400 RPS capacity) vs the slow clusters' 32 slots;
// RPS steps 150 → 650 at t = 120 s; the autoscaler needs ~20 s to provision
// a replica. Without Algorithm 2, L3's ≈70 % concentration on the thin
// favourite (≈560 RPS demand vs 400 capacity) builds a queue until the
// autoscaler lands.
#include "bench_util.h"

#include "l3/core/controller.h"
#include "l3/exp/runner.h"
#include "l3/lb/l3_policy.h"
#include "l3/mesh/autoscaler.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/sim/shard_engine.h"
#include "l3/workload/client.h"
#include "l3/workload/scenario.h"
#include "l3/workload/trace_behavior.h"

#include "l3/obs/recorder.h"

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>

namespace {

struct SurgeResult {
  double p99_surge = 0.0;   // P99 over the surge window (s)
  double p99_steady = 0.0;  // P99 before the surge
  std::uint64_t scale_ups = 0;
};

SurgeResult run(bool rate_control, std::uint64_t seed,
                l3::obs::Recorder* recorder, std::size_t dispatch_batch,
                std::size_t shards) {
  using namespace l3;
  // Inline harness (no workload::runner), so the recorder binds here.
  std::optional<obs::ScopedRecorderBind> recorder_bind;
  if (recorder != nullptr) recorder_bind.emplace(*recorder);
  const SimTime surge_at = 120.0;
  const SimTime end = 300.0;

  workload::ScenarioTrace trace("surge", 3, end);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = workload::TracePoint{0.020, 0.060, 1.0};
    trace.at(1, s) = workload::TracePoint{0.100, 0.300, 1.0};
    trace.at(2, s) = workload::TracePoint{0.100, 0.300, 1.0};
    trace.set_rps(s, static_cast<double>(s) < surge_at ? 150.0 : 650.0);
  }

  sim::Simulator sim;
  sim.set_dispatch_batch(dispatch_batch);
  SplitRng root(seed);
  mesh::Mesh mesh(sim, root.split("mesh"));
  const auto c1 = mesh.add_cluster("cluster-1");
  const auto c2 = mesh.add_cluster("cluster-2");
  const auto c3 = mesh.add_cluster("cluster-3");
  mesh::WanModel::Link wan{.base = 0.005, .jitter_frac = 0.1};
  mesh.wan().set_symmetric(c1, c2, wan);
  mesh.wan().set_symmetric(c1, c3, wan);
  mesh.wan().set_symmetric(c2, c3, wan);

  auto shared = std::make_shared<const workload::ScenarioTrace>(trace);
  mesh::DeploymentConfig thin;   // the fast favourite: ≈400 RPS capacity
  thin.replicas = 1;
  thin.concurrency = 8;
  thin.queue_capacity = 100000;
  mesh::DeploymentConfig wide;   // slow but roomy: ≈320 RPS per cluster
  wide.replicas = 1;
  wide.concurrency = 32;
  wide.queue_capacity = 100000;
  mesh.deploy("api", c1, thin,
              std::make_unique<workload::TraceReplayBehavior>(shared, c1));
  for (auto c : {c2, c3}) {
    mesh.deploy("api", c, wide,
                std::make_unique<workload::TraceReplayBehavior>(shared, c));
  }
  mesh.proxy(c1, "api");

  mesh::Autoscaler::Config as_config;
  as_config.interval = 5.0;
  as_config.provisioning_delay = 20.0;
  as_config.cooldown = 15.0;
  as_config.max_replicas = 8;
  mesh::Autoscaler autoscaler(sim, as_config);
  for (auto c : {c1, c2, c3}) {
    autoscaler.watch(*mesh.find_deployment("api", c));
  }
  autoscaler.start();

  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("cluster-1", mesh.registry(c1));
  scraper.start(5.0);

  lb::L3PolicyConfig policy_config;
  policy_config.rate_control_enabled = rate_control;
  core::L3Controller controller(mesh, tsdb, c1,
                                std::make_unique<lb::L3Policy>(policy_config));
  controller.manage_all();
  controller.start();

  workload::OpenLoopClient::Config client_config;
  client_config.arrival_batch = dispatch_batch;
  workload::OpenLoopClient client(
      mesh, c1, "api", [&trace](SimTime t) { return trace.rps_at(t); },
      root.split("client"), client_config);
  client.start(0.0, end);
  // Same sharded-run shape as workload::run_scenario_with: the topology is
  // RNG-coupled, so all clusters stay on shard 0 and results are
  // byte-identical for every shard count.
  if (shards <= 1) {
    sim.run_until(end + 60.0);
  } else {
    sim::ShardEngine engine(shards);
    engine.set_cluster_owners(
        std::vector<std::size_t>(mesh.clusters().size(), 0));
    engine.run([&](std::size_t shard) {
      if (shard != 0) return;
      sim::ShardRouter& router = engine.router(0);
      router.attach(sim);
      router.run_until(end + 60.0);
    });
  }

  const auto timeline =
      workload::aggregate_timeline(client.records(), 0.0, end, 10.0);
  SurgeResult result;
  std::vector<double> steady, surge;
  for (const auto& bucket : timeline) {
    if (bucket.count == 0) continue;
    if (bucket.start >= 60.0 && bucket.start < surge_at) {
      steady.push_back(bucket.p99);
    } else if (bucket.start >= surge_at && bucket.start < surge_at + 60.0) {
      surge.push_back(bucket.p99);
    }
  }
  result.p99_steady = steady.empty() ? 0.0
                                     : *std::max_element(steady.begin(),
                                                         steady.end());
  result.p99_surge = surge.empty() ? 0.0
                                   : *std::max_element(surge.begin(),
                                                       surge.end());
  result.scale_ups = autoscaler.scale_ups();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Ablation",
                      "rate controller + autoscaler under an RPS surge");

  exp::ExperimentSpec spec;
  spec.name = "ablation-rate-control";
  spec.scenarios = {"surge"};
  spec.policies = {"L3 with Algorithm 2", "L3 without"};
  spec.repetitions = reps;
  spec.seed = 42;
  spec.cell = [profile = args.profile,
               batch = static_cast<std::size_t>(args.batch),
               shards = static_cast<std::size_t>(args.shards)](
                  const exp::Cell& cell,
                  std::uint64_t seed) -> exp::CellData {
    std::optional<obs::Recorder> recorder;
    if (profile) recorder.emplace();
    const auto r = run(cell.policy == 0, seed,
                       recorder ? &*recorder : nullptr, batch, shards);
    exp::CellData data;
    data.metrics = {{"p99_steady", r.p99_steady},
                    {"p99_surge", r.p99_surge},
                    {"scale_ups", static_cast<double>(r.scale_ups)}};
    if (recorder) data.run.profile = recorder->profile();
    return data;
  };
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"variant", "steady P99 (ms)", "surge-window worst P99 (ms)",
               "autoscaler scale-ups"});
  for (std::size_t k = 0; k < spec.policies.size(); ++k) {
    const auto cells = grid.at(0, k);
    table.add_row({spec.policies[k],
                   fmt_ms(exp::mean_metric(cells, "p99_steady")),
                   fmt_ms(exp::mean_metric(cells, "p99_surge")),
                   fmt_double(exp::mean_metric(cells, "scale_ups"), 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: identical steady-state tails; during the surge "
               "Algorithm 2 spreads load while replicas provision, keeping "
               "the worst 10 s window far below the concentrated variant.\n";

  exp::Report report("Ablation: rate control");
  report.add_grid(spec, results);
  report.add_table("surge response with and without Algorithm 2", table);
  bench::finish_report(args, report);
  return 0;
}
