// Extension bench (§7 future work / §6 "Optimizing for network transfer
// cost"): wrap L3 in the transfer-cost-aware adjuster and sweep the
// latency-vs-cost trade-off coefficient λ. Cross-cluster traffic from
// cluster-1 costs 1 unit per request (cloud egress pricing); local traffic
// is free.
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/lb/cost_aware.h"
#include "l3/lb/l3_policy.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>
#include <memory>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : 1;

  bench::print_header("Extension",
                      "transfer-cost-aware L3 (λ sweep) on scenario-1");

  auto trace = std::make_shared<const workload::ScenarioTrace>(
      workload::make_scenario1());
  workload::RunnerConfig config;
  config.profile = args.profile;
  config.dispatch_batch = static_cast<std::size_t>(args.batch);
  config.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) config.duration = 180.0;

  const std::vector<double> lambdas = {0.5, 2.0, 8.0};

  exp::ExperimentSpec spec;
  spec.name = "ablation-cost-aware";
  spec.scenarios = {trace->name()};
  spec.policies = {"L3"};
  for (const double lambda : lambdas) {
    spec.policies.push_back("cost-aware λ=" + fmt_double(lambda, 1));
  }
  spec.repetitions = reps;
  spec.seed = config.seed;
  spec.cell = [trace, config, lambdas](const exp::Cell& cell,
                                       std::uint64_t seed) -> exp::CellData {
    workload::RunnerConfig cell_config = config;
    cell_config.seed = seed;
    if (cell.policy == 0) {
      return workload::run_scenario(*trace, workload::PolicyKind::kL3,
                                    cell_config);
    }
    lb::TransferCostMatrix costs(3);
    for (mesh::ClusterId from = 0; from < 3; ++from) {
      for (mesh::ClusterId to = 0; to < 3; ++to) {
        if (from != to) costs.set(from, to, 1.0);
      }
    }
    auto policy = std::make_unique<lb::CostAwareAdjuster>(
        std::make_unique<lb::L3Policy>(cell_config.l3), costs,
        lb::CostAwareConfig{.lambda = lambdas[cell.policy - 1]});
    return workload::run_scenario_with(*trace, std::move(policy), cell_config);
  };
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"policy", "P99 (ms)", "P50 (ms)", "cross-cluster traffic (%)",
               "egress cost (units/s)"});
  const double duration = config.duration > 0 ? config.duration : 600.0;
  for (std::size_t k = 0; k < spec.policies.size(); ++k) {
    const auto cells = grid.at(0, k);
    const double remote = exp::mean_traffic_share(cells, 1) +
                          exp::mean_traffic_share(cells, 2);
    const double rps =
        exp::mean_of(cells, +[](const workload::RunResult& r) {
          return static_cast<double>(r.requests);
        }) /
        duration;
    table.add_row({spec.policies[k], fmt_ms(exp::mean_p99(cells)),
                   fmt_ms(exp::mean_p50(cells)), fmt_percent(remote),
                   fmt_double(remote * rps, 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: λ buys egress savings with a latency price — "
               "traffic concentrates on the free local cluster even when a "
               "remote one is temporarily faster.\n";

  exp::Report report("Extension: cost-aware");
  report.add_grid(spec, results);
  report.add_table("λ sweep on scenario-1", table);
  bench::finish_report(args, report);
  return 0;
}
