// Extension bench (§7 future work / §6 "Optimizing for network transfer
// cost"): wrap L3 in the transfer-cost-aware adjuster and sweep the
// latency-vs-cost trade-off coefficient λ. Cross-cluster traffic from
// cluster-1 costs 1 unit per request (cloud egress pricing); local traffic
// is free.
#include "bench_util.h"

#include "l3/lb/cost_aware.h"
#include "l3/lb/l3_policy.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>
#include <memory>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  (void)args;

  bench::print_header("Extension",
                      "transfer-cost-aware L3 (λ sweep) on scenario-1");

  const auto trace = workload::make_scenario1();
  workload::RunnerConfig config;
  if (args.fast) config.duration = 180.0;

  auto make_cost_aware = [&](double lambda)
      -> std::unique_ptr<lb::LoadBalancingPolicy> {
    lb::TransferCostMatrix costs(3);
    for (mesh::ClusterId from = 0; from < 3; ++from) {
      for (mesh::ClusterId to = 0; to < 3; ++to) {
        if (from != to) costs.set(from, to, 1.0);
      }
    }
    return std::make_unique<lb::CostAwareAdjuster>(
        std::make_unique<lb::L3Policy>(config.l3), costs,
        lb::CostAwareConfig{.lambda = lambda});
  };

  Table table({"policy", "P99 (ms)", "P50 (ms)", "cross-cluster traffic (%)",
               "egress cost (units/s)"});
  auto report = [&](workload::RunResult r) {
    const double remote = r.traffic_share[1] + r.traffic_share[2];
    const double rps = static_cast<double>(r.requests) /
                       (config.duration > 0 ? config.duration : 600.0);
    table.add_row({r.policy + (r.policy == "cost-aware" ? "" : ""),
                   fmt_ms(r.summary.latency.p99),
                   fmt_ms(r.summary.latency.p50), fmt_percent(remote),
                   fmt_double(remote * rps, 1)});
  };

  report(workload::run_scenario(trace, workload::PolicyKind::kL3, config));
  for (const double lambda : {0.5, 2.0, 8.0}) {
    auto r = workload::run_scenario_with(trace, make_cost_aware(lambda),
                                         config);
    r.policy = "cost-aware λ=" + fmt_double(lambda, 1);
    report(std::move(r));
  }
  table.print(std::cout);
  std::cout << "\nexpected: λ buys egress savings with a latency price — "
               "traffic concentrates on the free local cluster even when a "
               "remote one is temporarily faster.\n";
  return 0;
}
