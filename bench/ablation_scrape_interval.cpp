// Ablation of the metric pipeline's freshness (§4 "Metric collection"): the
// paper scrapes every 5 s with 10 s query windows and notes that a lower
// scrape interval yields "a measurable improvement" at the cost of
// Prometheus load. Sweep the scrape interval on scenario-4 (the spikiest
// trace, where staleness hurts the most).
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <algorithm>
#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Ablation", "scrape interval / data freshness on "
                                  "scenario-4");

  const auto trace = workload::make_scenario4();
  workload::RunnerConfig base;
  base.profile = args.profile;
  base.dispatch_batch = static_cast<std::size_t>(args.batch);
  base.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) base.duration = 180.0;

  auto rr_spec =
      exp::scenario_grid("ablation-scrape-rr", {trace},
                         {workload::PolicyKind::kRoundRobin}, base, reps);
  const auto rr_results = exp::run_experiment(rr_spec, {.jobs = args.jobs});
  const exp::ResultGrid rr_grid(rr_spec, rr_results);
  const double rr_p99 = exp::mean_p99(rr_grid.at(0, 0));

  const std::vector<double> intervals = {1.0, 2.5, 5.0, 10.0, 15.0};
  std::vector<exp::ConfigVariant> variants;
  for (const double interval : intervals) {
    variants.push_back({"scrape=" + fmt_double(interval, 1) + "s",
                        [interval](workload::RunnerConfig& c) {
                          c.scrape_interval = interval;
                          // The paper's rule: the window must span at least
                          // two scrape samples.
                          c.controller.query_window = 2.0 * interval;
                          c.controller.control_interval =
                              std::max(5.0, interval);
                        }});
  }

  auto spec =
      exp::scenario_grid("ablation-scrape-interval", {trace},
                         {workload::PolicyKind::kL3}, base, reps, variants);
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"scrape interval (s)", "query window (s)", "L3 P99 (ms)",
               "vs RR (%)"});
  for (std::size_t v = 0; v < intervals.size(); ++v) {
    const double p99 = exp::mean_p99(grid.at(0, 0, v));
    table.add_row({fmt_double(intervals[v], 1),
                   fmt_double(2.0 * intervals[v], 1), fmt_ms(p99),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\nround-robin reference P99: " << fmt_ms(rr_p99)
            << " ms\nexpected: fresher data → better tail, with diminishing "
               "returns below the control interval and clear degradation at "
               "15 s (decisions on stale spikes).\n";

  exp::Report report("Ablation: scrape interval");
  report.add_grid(rr_spec, rr_results);
  report.add_grid(spec, results);
  report.add_table("scrape interval sweep on scenario-4", table);
  bench::finish_report(args, report);
  return 0;
}
