// Ablation of the metric pipeline's freshness (§4 "Metric collection"): the
// paper scrapes every 5 s with 10 s query windows and notes that a lower
// scrape interval yields "a measurable improvement" at the cost of
// Prometheus load. Sweep the scrape interval on scenario-4 (the spikiest
// trace, where staleness hurts the most).
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Ablation", "scrape interval / data freshness on "
                                  "scenario-4");

  const auto trace = workload::make_scenario4();
  workload::RunnerConfig base;
  if (args.fast) base.duration = 180.0;

  const auto rr = workload::run_scenario_repeated(
      trace, workload::PolicyKind::kRoundRobin, base, reps);
  const double rr_p99 = workload::mean_p99(rr);

  Table table({"scrape interval (s)", "query window (s)", "L3 P99 (ms)",
               "vs RR (%)"});
  for (const double interval : {1.0, 2.5, 5.0, 10.0, 15.0}) {
    workload::RunnerConfig config = base;
    config.scrape_interval = interval;
    // The paper's rule: the window must span at least two scrape samples.
    config.controller.query_window = 2.0 * interval;
    config.controller.control_interval = std::max(5.0, interval);
    const auto results = workload::run_scenario_repeated(
        trace, workload::PolicyKind::kL3, config, reps);
    const double p99 = workload::mean_p99(results);
    table.add_row({fmt_double(interval, 1),
                   fmt_double(config.controller.query_window, 1), fmt_ms(p99),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\nround-robin reference P99: " << fmt_ms(rr_p99)
            << " ms\nexpected: fresher data → better tail, with diminishing "
               "returns below the control interval and clear degradation at "
               "15 s (decisions on stale spikes).\n";
  return 0;
}
