// Reproduces Figure 6: per-cluster P99 latency over time for scenario-3,
// scenario-4 and scenario-5.
//
// Expected shape: stable medians with irregular P99 peaks — up to ~2000 ms
// (s3), ~5000 ms (s4, the wildest fluctuation), and ~100–300 ms (s5, the
// calmest).
//
// No simulation grid: the P99 series are a pure function of the scenario
// seeds, so --jobs has nothing to parallelise here.
#include "bench_util.h"

#include "l3/workload/scenarios.h"

#include <algorithm>
#include <iostream>

namespace {

void print_trace(const l3::workload::ScenarioTrace& trace,
                 l3::exp::Report& report) {
  using namespace l3;
  std::cout << "\n--- " << trace.name() << " (P99 per cluster, ms) ---\n";
  Table table({"t (min)", "cluster-1", "cluster-2", "cluster-3"});
  for (std::size_t step = 0; step < trace.steps(); step += 30) {
    std::vector<std::string> row;
    row.push_back(fmt_double(static_cast<double>(step) / 60.0, 1));
    for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
      row.push_back(fmt_ms(trace.at(c, step).p99, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  double hi = 0.0;
  for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      hi = std::max(hi, trace.at(c, s).p99);
    }
  }
  std::cout << "peak P99: " << fmt_ms(hi, 0) << " ms\n";
  report.add_table(trace.name() + " P99 per cluster (peak " + fmt_ms(hi, 0) +
                       " ms)",
                   table);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header("Figure 6", "P99 traces of scenario-3/4/5");
  exp::Report report("Figure 6");
  print_trace(workload::make_scenario3(), report);
  print_trace(workload::make_scenario4(), report);
  print_trace(workload::make_scenario5(), report);
  std::cout << "\npaper: peaks ~2000 ms (s3), ~5000 ms (s4), ~300 ms (s5)\n";
  bench::finish_report(args, report);
  return 0;
}
