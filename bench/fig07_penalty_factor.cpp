// Reproduces Figure 7: the penalty-factor study on scenario failure-2.
//
//  (a) the scenario's success rate hovers around 99 % with rare dips to 90 %;
//  (b) sweeping P from 0.1 s to 1.5 s: success rate rises with P toward a
//      ceiling (≈99 %, set by the best backend), while the percentile-
//      latency decrease relative to round-robin shrinks with P. The paper
//      picks P = 0.6 s as the compromise; each point is run twice.
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : 2;  // paper: repeated twice

  bench::print_header("Figure 7", "penalty factor P on failure-2");

  const auto trace = workload::make_failure2();
  workload::RunnerConfig config;
  if (args.fast) config.duration = 180.0;

  // (a) the scenario's success-rate profile.
  std::cout << "\n--- (a) failure-2 success rate per cluster (%, sampled every "
               "60 s) ---\n";
  {
    Table table({"t (min)", "cluster-1", "cluster-2", "cluster-3"});
    for (std::size_t step = 0; step < trace.steps(); step += 60) {
      std::vector<std::string> row{fmt_double(static_cast<double>(step) / 60.0, 0)};
      for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
        row.push_back(fmt_percent(trace.at(c, step).success_rate));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  // Round-robin baseline for the latency-decrease columns.
  const auto rr =
      workload::run_scenario_repeated(trace, workload::PolicyKind::kRoundRobin,
                                      config, reps);
  double rr_p50 = 0, rr_p90 = 0, rr_p99 = 0;
  for (const auto& r : rr) {
    rr_p50 += r.summary.latency.p50;
    rr_p90 += r.summary.latency.p90;
    rr_p99 += r.summary.latency.p99;
  }
  rr_p50 /= reps;
  rr_p90 /= reps;
  rr_p99 /= reps;
  const double rr_success = workload::mean_success_rate(rr);

  std::cout << "\n--- (b) sweep of P (round-robin success rate: "
            << fmt_percent(rr_success) << " %) ---\n";
  Table table({"P (s)", "success rate (%)", "P50 decrease (%)",
               "P90 decrease (%)", "P99 decrease (%)"});
  std::vector<double> penalties = args.fast
                                      ? std::vector<double>{0.1, 0.6, 1.5}
                                      : std::vector<double>{0.1, 0.2, 0.3, 0.4,
                                                            0.5, 0.6, 0.7, 0.8,
                                                            0.9, 1.0, 1.5};
  for (double p : penalties) {
    workload::RunnerConfig cfg = config;
    cfg.l3.weighting.penalty = p;
    const auto results = workload::run_scenario_repeated(
        trace, workload::PolicyKind::kL3, cfg, reps);
    double p50 = 0, p90 = 0, p99 = 0;
    for (const auto& r : results) {
      p50 += r.summary.latency.p50;
      p90 += r.summary.latency.p90;
      p99 += r.summary.latency.p99;
    }
    p50 /= reps;
    p90 /= reps;
    p99 /= reps;
    table.add_row({fmt_double(p, 1),
                   fmt_percent(workload::mean_success_rate(results), 2),
                   fmt_double(bench::percent_decrease(rr_p50, p50)),
                   fmt_double(bench::percent_decrease(rr_p90, p90)),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\npaper: success rate climbs toward a ~99.0 % ceiling with "
               "larger P while the latency decrease diminishes; P = 0.6 s "
               "chosen as the compromise (RR success 98.59 %)\n";
  return 0;
}
