// Reproduces Figure 7: the penalty-factor study on scenario failure-2.
//
//  (a) the scenario's success rate hovers around 99 % with rare dips to 90 %;
//  (b) sweeping P from 0.1 s to 1.5 s: success rate rises with P toward a
//      ceiling (≈99 %, set by the best backend), while the percentile-
//      latency decrease relative to round-robin shrinks with P. The paper
//      picks P = 0.6 s as the compromise; each point is run twice.
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : 2;  // paper: repeated twice

  bench::print_header("Figure 7", "penalty factor P on failure-2");

  const auto trace = workload::make_failure2();
  workload::RunnerConfig config;
  config.profile = args.profile;
  config.dispatch_batch = static_cast<std::size_t>(args.batch);
  config.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) config.duration = 180.0;

  exp::Report report("Figure 7");

  // (a) the scenario's success-rate profile.
  std::cout << "\n--- (a) failure-2 success rate per cluster (%, sampled every "
               "60 s) ---\n";
  {
    Table table({"t (min)", "cluster-1", "cluster-2", "cluster-3"});
    for (std::size_t step = 0; step < trace.steps(); step += 60) {
      std::vector<std::string> row{
          fmt_double(static_cast<double>(step) / 60.0, 0)};
      for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
        row.push_back(fmt_percent(trace.at(c, step).success_rate));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    report.add_table("(a) failure-2 success rate per cluster", table);
  }

  // (b) the P sweep, with a round-robin baseline for the decrease columns.
  const std::vector<double> penalties =
      args.fast ? std::vector<double>{0.1, 0.6, 1.5}
                : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                      0.9, 1.0, 1.5};
  std::vector<exp::ConfigVariant> variants;
  for (const double p : penalties) {
    variants.push_back({"P=" + fmt_double(p, 1), [p](workload::RunnerConfig& c) {
                          c.l3.weighting.penalty = p;
                        }});
  }

  auto rr_spec = exp::scenario_grid(
      "fig07-rr-baseline", {trace}, {workload::PolicyKind::kRoundRobin},
      config, reps);
  auto sweep_spec = exp::scenario_grid("fig07-penalty-sweep", {trace},
                                       {workload::PolicyKind::kL3}, config,
                                       reps, std::move(variants));
  const auto rr_results = exp::run_experiment(rr_spec, {.jobs = args.jobs});
  const auto sweep_results =
      exp::run_experiment(sweep_spec, {.jobs = args.jobs});
  const exp::ResultGrid rr(rr_spec, rr_results);
  const exp::ResultGrid sweep(sweep_spec, sweep_results);

  const double rr_p50 = exp::mean_p50(rr.at(0, 0));
  const double rr_p90 = exp::mean_p90(rr.at(0, 0));
  const double rr_p99 = exp::mean_p99(rr.at(0, 0));
  const double rr_success = exp::mean_success_rate(rr.at(0, 0));

  std::cout << "\n--- (b) sweep of P (round-robin success rate: "
            << fmt_percent(rr_success) << " %) ---\n";
  Table table({"P (s)", "success rate (%)", "P50 decrease (%)",
               "P90 decrease (%)", "P99 decrease (%)"});
  for (std::size_t v = 0; v < penalties.size(); ++v) {
    const auto cells = sweep.at(0, 0, v);
    table.add_row({fmt_double(penalties[v], 1),
                   fmt_percent(exp::mean_success_rate(cells), 2),
                   fmt_double(bench::percent_decrease(rr_p50,
                                                      exp::mean_p50(cells))),
                   fmt_double(bench::percent_decrease(rr_p90,
                                                      exp::mean_p90(cells))),
                   fmt_double(bench::percent_decrease(rr_p99,
                                                      exp::mean_p99(cells)))});
  }
  table.print(std::cout);
  std::cout << "\npaper: success rate climbs toward a ~99.0 % ceiling with "
               "larger P while the latency decrease diminishes; P = 0.6 s "
               "chosen as the compromise (RR success 98.59 %)\n";

  report.add_grid(rr_spec, rr_results);
  report.add_grid(sweep_spec, sweep_results);
  report.add_table("(b) penalty-factor sweep", table);
  bench::finish_report(args, report);
  return 0;
}
