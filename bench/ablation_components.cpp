// Ablation study of L3's design choices (§3.1/§3.2 and §7 future work),
// run on failure-1 — the scenario where every component matters (latency
// heterogeneity AND failures):
//
//   * full L3 (paper configuration, P = 0.6 s, squared in-flight, P99,
//     EWMA, rate controller on)
//   * without the rate controller (Algorithm 2 off)
//   * without the success-rate penalty (P = 0 — Eq. 3 collapses to L_s)
//   * linear instead of squared (R_i + 1) (§3.1 discusses the trade-off)
//   * tail percentile 0.98 / 0.999 instead of 0.99 (§3.1: configurable)
//   * dynamic penalty factor from failed-request latency (§7)
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Ablation", "L3 component study on failure-1");

  const auto trace = workload::make_failure1();
  workload::RunnerConfig base;
  if (args.fast) base.duration = 180.0;

  struct Variant {
    std::string name;
    workload::RunnerConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"L3 (paper config)", base});
  {
    auto c = base;
    c.l3.rate_control_enabled = false;
    variants.push_back({"  - rate controller", c});
  }
  {
    auto c = base;
    c.l3.weighting.penalty = 0.0;
    variants.push_back({"  - success penalty (P=0)", c});
  }
  {
    auto c = base;
    c.l3.weighting.inflight_exponent = 1.0;
    variants.push_back({"  linear (Ri+1)", c});
  }
  {
    auto c = base;
    c.controller.quantile = 0.98;
    variants.push_back({"  P98 instead of P99", c});
  }
  {
    auto c = base;
    c.controller.quantile = 0.999;
    variants.push_back({"  P99.9 instead of P99", c});
  }
  {
    auto c = base;
    c.controller.dynamic_penalty = true;
    variants.push_back({"  dynamic penalty (§7)", c});
  }

  // Round-robin reference for context.
  const auto rr = workload::run_scenario_repeated(
      trace, workload::PolicyKind::kRoundRobin, base, reps);
  const double rr_p99 = workload::mean_p99(rr);

  Table table({"variant", "P99 (ms)", "success (%)", "vs RR (%)"});
  table.add_row({"round-robin (reference)", fmt_ms(rr_p99),
                 fmt_percent(workload::mean_success_rate(rr), 2), "0.0"});
  for (const auto& variant : variants) {
    const auto results = workload::run_scenario_repeated(
        trace, workload::PolicyKind::kL3, variant.config, reps);
    const double p99 = workload::mean_p99(results);
    table.add_row({variant.name, fmt_ms(p99),
                   fmt_percent(workload::mean_success_rate(results), 2),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\nexpected: removing the success penalty costs success rate; "
               "the percentile choice trades reactivity against noise; the "
               "rate controller costs little here (no overload in this "
               "scenario) but see ablation_rate_control for its protective "
               "role.\n";
  return 0;
}
