// Ablation study of L3's design choices (§3.1/§3.2 and §7 future work),
// run on failure-1 — the scenario where every component matters (latency
// heterogeneity AND failures):
//
//   * full L3 (paper configuration, P = 0.6 s, squared in-flight, P99,
//     EWMA, rate controller on)
//   * without the rate controller (Algorithm 2 off)
//   * without the success-rate penalty (P = 0 — Eq. 3 collapses to L_s)
//   * linear instead of squared (R_i + 1) (§3.1 discusses the trade-off)
//   * tail percentile 0.98 / 0.999 instead of 0.99 (§3.1: configurable)
//   * dynamic penalty factor from failed-request latency (§7)
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Ablation", "L3 component study on failure-1");

  const auto trace = workload::make_failure1();
  workload::RunnerConfig base;
  base.profile = args.profile;
  base.dispatch_batch = static_cast<std::size_t>(args.batch);
  base.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) base.duration = 180.0;

  std::vector<exp::ConfigVariant> variants;
  variants.push_back({"L3 (paper config)", {}});
  variants.push_back({"  - rate controller", [](workload::RunnerConfig& c) {
                        c.l3.rate_control_enabled = false;
                      }});
  variants.push_back(
      {"  - success penalty (P=0)",
       [](workload::RunnerConfig& c) { c.l3.weighting.penalty = 0.0; }});
  variants.push_back({"  linear (Ri+1)", [](workload::RunnerConfig& c) {
                        c.l3.weighting.inflight_exponent = 1.0;
                      }});
  variants.push_back(
      {"  P98 instead of P99",
       [](workload::RunnerConfig& c) { c.controller.quantile = 0.98; }});
  variants.push_back(
      {"  P99.9 instead of P99",
       [](workload::RunnerConfig& c) { c.controller.quantile = 0.999; }});
  variants.push_back(
      {"  dynamic penalty (§7)",
       [](workload::RunnerConfig& c) { c.controller.dynamic_penalty = true; }});

  // Round-robin reference for context (its own grid: no point running the
  // policy-independent baseline once per L3 variant).
  auto rr_spec =
      exp::scenario_grid("ablation-components-rr", {trace},
                         {workload::PolicyKind::kRoundRobin}, base, reps);
  const auto rr_results = exp::run_experiment(rr_spec, {.jobs = args.jobs});
  const exp::ResultGrid rr_grid(rr_spec, rr_results);
  const double rr_p99 = exp::mean_p99(rr_grid.at(0, 0));

  auto spec = exp::scenario_grid("ablation-components", {trace},
                                 {workload::PolicyKind::kL3}, base, reps,
                                 variants);
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"variant", "P99 (ms)", "success (%)", "vs RR (%)"});
  table.add_row({"round-robin (reference)", fmt_ms(rr_p99),
                 fmt_percent(exp::mean_success_rate(rr_grid.at(0, 0)), 2),
                 "0.0"});
  for (std::size_t v = 0; v < spec.variants.size(); ++v) {
    const auto cells = grid.at(0, 0, v);
    const double p99 = exp::mean_p99(cells);
    table.add_row({spec.variants[v], fmt_ms(p99),
                   fmt_percent(exp::mean_success_rate(cells), 2),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\nexpected: removing the success penalty costs success rate; "
               "the percentile choice trades reactivity against noise; the "
               "rate controller costs little here (no overload in this "
               "scenario) but see ablation_rate_control for its protective "
               "role.\n";

  exp::Report report("Ablation: components");
  report.add_grid(rr_spec, rr_results);
  report.add_grid(spec, results);
  report.add_table("component study on failure-1", table);
  bench::finish_report(args, report);
  return 0;
}
