// Reproduces Figure 1: per-cluster P50/P99 latency over the 10-minute
// captures of scenario-1 and scenario-2 (30-second sampling for a readable
// table; the underlying traces are per-second).
//
// Expected shape: scenario-1 medians 50–100 ms with cluster-2 spikes toward
// ~350 ms and P99 fluctuating into the 100–950 ms band; scenario-2 medians
// 3–9 ms with P99 mostly 10–100 ms and intermittent spikes >2000 ms.
//
// No simulation grid: the trace statistics are a pure function of the
// scenario seeds, so --jobs has nothing to parallelise here.
#include "bench_util.h"

#include "l3/workload/scenarios.h"

#include <algorithm>
#include <iostream>

namespace {

void print_trace(const l3::workload::ScenarioTrace& trace,
                 l3::exp::Report& report) {
  using namespace l3;
  std::cout << "\n--- " << trace.name() << " ---\n";
  Table table({"t (min)", "c1 P50", "c1 P99", "c2 P50", "c2 P99", "c3 P50",
               "c3 P99  (ms)"});
  for (std::size_t step = 0; step < trace.steps(); step += 30) {
    std::vector<std::string> row;
    row.push_back(fmt_double(static_cast<double>(step) / 60.0, 1));
    for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
      const auto& p = trace.at(c, step);
      row.push_back(fmt_ms(p.median));
      row.push_back(fmt_ms(p.p99));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  report.add_table(trace.name() + " P50/P99 per cluster", table);

  // Range summary per cluster (the bands Fig. 1's prose quotes).
  Table ranges({"cluster", "median lo..hi (ms)", "P99 lo..hi (ms)"});
  for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
    double med_lo = 1e9, med_hi = 0, p99_lo = 1e9, p99_hi = 0;
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      const auto& p = trace.at(c, s);
      med_lo = std::min(med_lo, p.median);
      med_hi = std::max(med_hi, p.median);
      p99_lo = std::min(p99_lo, p.p99);
      p99_hi = std::max(p99_hi, p.p99);
    }
    std::cout << "cluster-" << c + 1 << ": median " << fmt_ms(med_lo) << ".."
              << fmt_ms(med_hi) << " ms, P99 " << fmt_ms(p99_lo) << ".."
              << fmt_ms(p99_hi) << " ms\n";
    ranges.add_row({"cluster-" + std::to_string(c + 1),
                    fmt_ms(med_lo) + ".." + fmt_ms(med_hi),
                    fmt_ms(p99_lo) + ".." + fmt_ms(p99_hi)});
  }
  report.add_table(trace.name() + " per-cluster bands", ranges);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header("Figure 1",
                      "latency variation of scenario-1 and scenario-2");
  exp::Report report("Figure 1");
  print_trace(workload::make_scenario1(), report);
  print_trace(workload::make_scenario2(), report);
  std::cout << "\npaper: s1 median 50–100 ms (spikes ~350 ms on cluster-2), "
               "P99 100–950 ms; s2 median 3–9 ms, P99 10–100 ms with spikes "
               ">2000 ms\n";
  bench::finish_report(args, report);
  return 0;
}
