// Ablation of fault intensity: sweep l3::chaos::make_random_plan's
// intensity knob on scenario-1 across the three policies. At intensity 0
// the plan is empty (the fault-free baseline); each step up adds more
// crash / brownout / partition / scrape-outage / controller-pause windows
// to the same seed-derived timeline, so every policy faces the identical
// fault schedule at each intensity. Health probing is off — a policy can
// only dodge a faulted backend by reading the scraped metrics.
//
// Expected: success rates degrade with intensity for everyone, but L3
// degrades the slowest (its ranking has a success-rate term); round-robin
// keeps spraying the crashed cluster until the faults end.
#include "bench_util.h"

#include "l3/chaos/fault_plan.h"
#include "l3/exp/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Ablation", "fault intensity sweep on scenario-1");

  const auto trace = workload::make_scenario1();
  workload::RunnerConfig base;
  base.profile = args.profile;
  base.dispatch_batch = static_cast<std::size_t>(args.batch);
  base.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) base.duration = 180.0;
  base.health_probe_interval = 0.0;  // failures visible via metrics only
  const double horizon = args.fast ? 180.0 : 600.0;

  const std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0};
  std::vector<exp::ConfigVariant> variants;
  for (const double intensity : intensities) {
    variants.push_back(
        {"intensity=" + fmt_double(intensity, 1),
         [intensity, horizon](workload::RunnerConfig& c) {
           c.faults = chaos::make_random_plan(
               {.horizon = horizon, .intensity = intensity}, /*seed=*/99);
         }});
  }

  auto spec = exp::scenario_grid(
      "ablation-chaos", {trace},
      {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
       workload::PolicyKind::kL3},
      base, reps, variants);
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"intensity", "policy", "success (%)", "P99 (ms)"});
  for (std::size_t v = 0; v < intensities.size(); ++v) {
    for (std::size_t k = 0; k < spec.policies.size(); ++k) {
      table.add_row({fmt_double(intensities[v], 1), spec.policies[k],
                     fmt_percent(exp::mean_success_rate(grid.at(0, k, v)), 2),
                     fmt_ms(exp::mean_p99(grid.at(0, k, v)))});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: success degrades with intensity for every "
               "policy; L3 generally degrades the slowest, except where the "
               "plan blinds it (scrape outages, controller pauses).\n";

  exp::Report report("Ablation: fault intensity");
  report.add_grid(spec, results);
  report.add_table("fault-intensity sweep on scenario-1", table);
  bench::finish_report(args, report);
  return 0;
}
