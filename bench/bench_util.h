// Shared helpers for the figure-reproduction bench binaries: repetition
// control from the command line and uniform table output.
//
// Every bench accepts:   [--reps N] [--fast]
//   --reps N   repetitions per configuration (default: the paper's count)
//   --fast     shrink durations/repetitions for smoke runs
#pragma once

#include "l3/common/table.h"
#include "l3/common/time.h"

#include <cstring>
#include <iostream>
#include <string>

namespace l3::bench {

/// Parsed command-line options.
struct BenchArgs {
  int reps = -1;     ///< -1: use the bench's default
  bool fast = false;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      args.fast = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      args.reps = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--reps N] [--fast]\n";
      std::exit(2);
    }
  }
  return args;
}

/// Prints the standard bench header naming the reproduced figure.
inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "== " << figure << " — " << description << " ==\n";
}

/// Percentage decrease of `value` relative to `baseline` (positive = better).
inline double percent_decrease(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

}  // namespace l3::bench
