// Shared helpers for the figure-reproduction bench binaries: the common
// command-line surface (strict parsing, see l3/exp/args.h) and uniform
// table output.
//
// Every bench accepts:   [--reps N] [--fast] [--jobs N] [--json PATH]
//   --reps N     repetitions per configuration (default: the paper's count)
//   --fast       shrink durations/repetitions for smoke runs
//   --jobs N     parallel simulation cells (default: hardware concurrency);
//                stdout and the JSON report are byte-identical for every N
//   --json PATH  write the unified machine-readable report
#pragma once

#include "l3/common/table.h"
#include "l3/common/time.h"
#include "l3/exp/args.h"
#include "l3/exp/report.h"

#include <iostream>
#include <string>

namespace l3::bench {

using BenchArgs = exp::BenchArgs;

inline BenchArgs parse_args(int argc, char** argv) {
  return exp::parse_bench_args(argc, argv);
}

/// Prints the standard bench header naming the reproduced figure.
inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "== " << figure << " — " << description << " ==\n";
}

/// Percentage decrease of `value` relative to `baseline` (positive = better).
inline double percent_decrease(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

/// Writes the unified JSON report if --json was given; complains on I/O
/// failure but doesn't fail the bench (the tables already printed).
inline void finish_report(const BenchArgs& args, const exp::Report& report) {
  if (args.json.empty()) return;
  if (!report.write_file(args.json)) {
    std::cerr << "warning: could not write " << args.json << "\n";
  }
}

}  // namespace l3::bench
