// Shared helpers for the figure-reproduction bench binaries: the common
// command-line surface (strict parsing, see l3/exp/args.h) and uniform
// table output.
//
// Every bench accepts:   [--reps N] [--fast] [--jobs N] [--json PATH]
//                        [--profile]
//   --reps N     repetitions per configuration (default: the paper's count)
//   --fast       shrink durations/repetitions for smoke runs
//   --jobs N     parallel simulation cells (default: hardware concurrency);
//                stdout and the JSON report are byte-identical for every N
//   --json PATH  write the unified machine-readable report
//   --profile    self-profile every cell: the JSON gains a deterministic
//                `profile` block (counts only — still jobs-invariant) and a
//                wall-time table is printed on STDERR (wall-clock data never
//                enters stdout or the JSON)
#pragma once

#include "l3/common/table.h"
#include "l3/common/time.h"
#include "l3/exp/args.h"
#include "l3/exp/report.h"
#include "l3/obs/recorder.h"

#include <cstdio>
#include <iostream>
#include <string>

namespace l3::bench {

using BenchArgs = exp::BenchArgs;

inline BenchArgs parse_args(int argc, char** argv) {
  return exp::parse_bench_args(argc, argv);
}

/// Applies --proxy-cost=US to a runner config: US microseconds of sidecar
/// CPU per request through the data-plane cost model (DESIGN.md §16). 0
/// leaves the model disabled — the run is byte-identical to one without
/// the flag (check.sh diffs this against the fig10 golden).
template <typename RunnerConfigT>
inline void apply_proxy_cost(RunnerConfigT& config, const BenchArgs& args) {
  config.proxy_cost.cpu_per_request =
      static_cast<double>(args.proxy_cost_us) * 1e-6;
}

/// Prints the standard bench header naming the reproduced figure.
inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "== " << figure << " — " << description << " ==\n";
}

/// Percentage decrease of `value` relative to `baseline` (positive = better).
inline double percent_decrease(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

/// Prints the merged self-profile as a wall-time table. Goes to stderr only:
/// wall-clock values differ between machines and runs, so they must never
/// reach the jobs-invariance-diffed surfaces (stdout, the JSON report).
inline void print_profile(std::ostream& os, const obs::ProfileBlock& profile) {
  if (profile.empty()) return;
  os << "-- self-profile (" << profile.cells << " cells, wall-clock; "
     << "deterministic counts are in the JSON `profile` block) --\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-22s %14s %12s %14s %12s\n",
                "subsystem", "count", "timed", "total ms", "mean us");
  os << line;
  for (std::size_t i = 0; i < obs::kScopeCount; ++i) {
    if (profile.scope_count[i] == 0) continue;
    const double total_ms = profile.scope_wall_ns[i] * 1e-6;
    const double mean_us =
        profile.scope_timed[i] > 0
            ? profile.scope_wall_ns[i] * 1e-3 /
                  static_cast<double>(profile.scope_timed[i])
            : 0.0;
    std::snprintf(line, sizeof(line), "%-22s %14llu %12llu %14.3f %12.3f\n",
                  std::string(obs::scope_name(static_cast<obs::ScopeId>(i)))
                      .c_str(),
                  static_cast<unsigned long long>(profile.scope_count[i]),
                  static_cast<unsigned long long>(profile.scope_timed[i]),
                  total_ms, mean_us);
    os << line;
  }
}

/// Writes the unified JSON report if --json was given; complains on I/O
/// failure but doesn't fail the bench (the tables already printed). With
/// --profile, also prints the merged wall-time table to stderr.
inline void finish_report(const BenchArgs& args, const exp::Report& report) {
  if (args.profile) print_profile(std::cerr, report.merged_profile());
  if (args.json.empty()) return;
  if (!report.write_file(args.json)) {
    std::cerr << "warning: could not write " << args.json << "\n";
  }
}

}  // namespace l3::bench
