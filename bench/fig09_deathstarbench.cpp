// Reproduces Figure 9: 99th-percentile end-to-end latency of the
// DeathStarBench hotel-reservation application under round-robin, C3 and
// L3 at 200 RPS with a 100 % success rate.
//
// Paper values (ms): round-robin 93.0, C3 88.3, L3 68.8 — L3 cuts the tail
// by 26 % vs round-robin and 22 % vs C3.
#include "bench_util.h"

#include "l3/dsb/runner.h"
#include "l3/exp/runner.h"

#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 9",
                      "DeathStarBench hotel-reservation P99, 200 RPS");

  dsb::DsbRunnerConfig config;
  config.profile = args.profile;
  config.dispatch_batch = static_cast<std::size_t>(args.batch);
  config.shards = static_cast<std::size_t>(args.shards);
  if (args.fast) config.duration = 180.0;

  const std::vector<workload::PolicyKind> kinds = {
      workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
      workload::PolicyKind::kL3};

  exp::ExperimentSpec spec;
  spec.name = "fig09";
  spec.scenarios = {"hotel-reservation"};
  spec.policies.clear();
  for (const auto kind : kinds) {
    spec.policies.emplace_back(workload::policy_name(kind));
  }
  spec.repetitions = reps;
  spec.seed = config.seed;
  spec.cell = [kinds, config](const exp::Cell& cell,
                              std::uint64_t seed) -> exp::CellData {
    dsb::DsbRunnerConfig cell_config = config;
    cell_config.seed = seed;
    return dsb::run_hotel_reservation(kinds[cell.policy], cell_config);
  };
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"algorithm", "P99 (ms)", "P50 (ms)", "mean (ms)",
               "vs round-robin (%)"});
  const double rr_p99 = exp::mean_p99(grid.at(0, 0));
  for (std::size_t k = 0; k < spec.policies.size(); ++k) {
    const auto cells = grid.at(0, k);
    const double p99 = exp::mean_p99(cells);
    table.add_row({spec.policies[k], fmt_ms(p99),
                   fmt_ms(exp::mean_p50(cells)),
                   fmt_ms(exp::mean_latency(cells)),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\npaper: RR 93.0 ms, C3 88.3 ms, L3 68.8 ms "
               "(L3 −26 % vs RR, −22 % vs C3)\n";

  exp::Report report("Figure 9");
  report.add_grid(spec, results);
  report.add_table("hotel-reservation P99 per policy", table);
  bench::finish_report(args, report);
  return 0;
}
