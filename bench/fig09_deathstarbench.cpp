// Reproduces Figure 9: 99th-percentile end-to-end latency of the
// DeathStarBench hotel-reservation application under round-robin, C3 and
// L3 at 200 RPS with a 100 % success rate.
//
// Paper values (ms): round-robin 93.0, C3 88.3, L3 68.8 — L3 cuts the tail
// by 26 % vs round-robin and 22 % vs C3.
#include "bench_util.h"

#include "l3/dsb/runner.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 3);

  bench::print_header("Figure 9",
                      "DeathStarBench hotel-reservation P99, 200 RPS");

  dsb::DsbRunnerConfig config;
  if (args.fast) config.duration = 180.0;

  Table table({"algorithm", "P99 (ms)", "P50 (ms)", "mean (ms)",
               "vs round-robin (%)"});
  double rr_p99 = 0.0;
  for (const auto kind :
       {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kC3,
        workload::PolicyKind::kL3}) {
    const auto results = dsb::run_hotel_reservation_repeated(kind, config, reps);
    double p99 = 0.0, p50 = 0.0, mean = 0.0;
    for (const auto& r : results) {
      p99 += r.summary.latency.p99;
      p50 += r.summary.latency.p50;
      mean += r.summary.latency.mean;
    }
    p99 /= reps;
    p50 /= reps;
    mean /= reps;
    if (kind == workload::PolicyKind::kRoundRobin) rr_p99 = p99;
    table.add_row({std::string(workload::policy_name(kind)), fmt_ms(p99),
                   fmt_ms(p50), fmt_ms(mean),
                   fmt_double(bench::percent_decrease(rr_p99, p99))});
  }
  table.print(std::cout);
  std::cout << "\npaper: RR 93.0 ms, C3 88.3 ms, L3 68.8 ms "
               "(L3 −26 % vs RR, −22 % vs C3)\n";
  return 0;
}
