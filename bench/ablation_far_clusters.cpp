// Extension bench for §5.1's deployment remark: the paper chose nearby EU
// regions so service-latency variability dominates the network delay, and
// notes that for FAR clusters ("locations with a large network delay, e.g.
// from different continents ... a heavy bias for the local cluster") a
// circuit-breaker-based failover triggered by outlier detection could be
// more suitable than continuous re-weighting.
//
// Reproduce that regime: 70 ms one-way inter-cluster delay (≈ transatlantic)
// with failure-1's failure injection, comparing:
//   * round-robin (ignores distance — pays WAN RTT on 2/3 of requests)
//   * L3 (latency-aware: biases local, shifts on failures)
//   * locality-failover (all local until the local backend fails)
//   * round-robin + outlier-detection circuit breaker
//   * locality-failover + outlier detection (the paper's suggestion)
#include "bench_util.h"

#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Extension",
                      "far clusters (70 ms one-way WAN) on failure-1");

  const auto trace = workload::make_failure1();
  workload::RunnerConfig base;
  base.wan_one_way = 0.070;
  if (args.fast) base.duration = 180.0;

  mesh::OutlierDetectionConfig outlier;
  outlier.enabled = true;
  outlier.failure_threshold = 0.4;
  outlier.min_requests = 20;
  outlier.window = 10.0;
  outlier.ejection_duration = 30.0;

  struct Row {
    std::string name;
    workload::PolicyKind kind;
    bool with_outlier;
  };
  const std::vector<Row> rows = {
      {"round-robin", workload::PolicyKind::kRoundRobin, false},
      {"round-robin + outlier", workload::PolicyKind::kRoundRobin, true},
      {"L3", workload::PolicyKind::kL3, false},
      {"locality-failover", workload::PolicyKind::kLocalityFailover, false},
      {"locality + outlier", workload::PolicyKind::kLocalityFailover, true},
  };

  Table table({"strategy", "P50 (ms)", "P99 (ms)", "success (%)",
               "local traffic (%)"});
  for (const auto& row : rows) {
    workload::RunnerConfig config = base;
    if (row.with_outlier) config.outlier = outlier;
    const auto results =
        workload::run_scenario_repeated(trace, row.kind, config, reps);
    double p50 = 0.0, p99 = 0.0, local = 0.0;
    for (const auto& r : results) {
      p50 += r.summary.latency.p50;
      p99 += r.summary.latency.p99;
      local += r.traffic_share[0];
    }
    table.add_row({row.name, fmt_ms(p50 / reps), fmt_ms(p99 / reps),
                   fmt_percent(workload::mean_success_rate(results), 2),
                   fmt_percent(local / reps)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: with 140 ms RTT between clusters, anything that "
               "keeps traffic local wins the median; the outlier circuit "
               "breaker recovers the success rate that pure locality "
               "sacrifices during local failures — the trade-off §5.1 "
               "alludes to.\n";
  return 0;
}
