// Extension bench for §5.1's deployment remark: the paper chose nearby EU
// regions so service-latency variability dominates the network delay, and
// notes that for FAR clusters ("locations with a large network delay, e.g.
// from different continents ... a heavy bias for the local cluster") a
// circuit-breaker-based failover triggered by outlier detection could be
// more suitable than continuous re-weighting.
//
// Reproduce that regime: 70 ms one-way inter-cluster delay (≈ transatlantic)
// with failure-1's failure injection, comparing:
//   * round-robin (ignores distance — pays WAN RTT on 2/3 of requests)
//   * L3 (latency-aware: biases local, shifts on failures)
//   * locality-failover (all local until the local backend fails)
//   * round-robin + outlier-detection circuit breaker
//   * locality-failover + outlier detection (the paper's suggestion)
#include "bench_util.h"

#include "l3/exp/runner.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <iostream>
#include <memory>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.fast ? 1 : 2);

  bench::print_header("Extension",
                      "far clusters (70 ms one-way WAN) on failure-1");

  auto trace = std::make_shared<const workload::ScenarioTrace>(
      workload::make_failure1());
  workload::RunnerConfig base;
  base.profile = args.profile;
  base.dispatch_batch = static_cast<std::size_t>(args.batch);
  base.shards = static_cast<std::size_t>(args.shards);
  base.wan_one_way = 0.070;
  if (args.fast) base.duration = 180.0;

  mesh::OutlierDetectionConfig outlier;
  outlier.enabled = true;
  outlier.failure_threshold = 0.4;
  outlier.min_requests = 20;
  outlier.window = 10.0;
  outlier.ejection_duration = 30.0;

  struct Strategy {
    std::string name;
    workload::PolicyKind kind;
    bool with_outlier;
  };
  auto strategies = std::make_shared<const std::vector<Strategy>>(
      std::vector<Strategy>{
          {"round-robin", workload::PolicyKind::kRoundRobin, false},
          {"round-robin + outlier", workload::PolicyKind::kRoundRobin, true},
          {"L3", workload::PolicyKind::kL3, false},
          {"locality-failover", workload::PolicyKind::kLocalityFailover,
           false},
          {"locality + outlier", workload::PolicyKind::kLocalityFailover,
           true},
      });

  exp::ExperimentSpec spec;
  spec.name = "ablation-far-clusters";
  spec.scenarios = {trace->name()};
  spec.policies.clear();
  for (const auto& s : *strategies) spec.policies.push_back(s.name);
  spec.repetitions = reps;
  spec.seed = base.seed;
  spec.cell = [trace, base, outlier, strategies](
                  const exp::Cell& cell, std::uint64_t seed) -> exp::CellData {
    const auto& strategy = (*strategies)[cell.policy];
    workload::RunnerConfig config = base;
    config.seed = seed;
    if (strategy.with_outlier) config.outlier = outlier;
    return workload::run_scenario(*trace, strategy.kind, config);
  };
  const auto results = exp::run_experiment(spec, {.jobs = args.jobs});
  const exp::ResultGrid grid(spec, results);

  Table table({"strategy", "P50 (ms)", "P99 (ms)", "success (%)",
               "local traffic (%)"});
  for (std::size_t k = 0; k < spec.policies.size(); ++k) {
    const auto cells = grid.at(0, k);
    table.add_row({spec.policies[k], fmt_ms(exp::mean_p50(cells)),
                   fmt_ms(exp::mean_p99(cells)),
                   fmt_percent(exp::mean_success_rate(cells), 2),
                   fmt_percent(exp::mean_traffic_share(cells, 0))});
  }
  table.print(std::cout);
  std::cout << "\nexpected: with 140 ms RTT between clusters, anything that "
               "keeps traffic local wins the median; the outlier circuit "
               "breaker recovers the success rate that pure locality "
               "sacrifices during local failures — the trade-off §5.1 "
               "alludes to.\n";

  exp::Report report("Extension: far clusters");
  report.add_grid(spec, results);
  report.add_table("strategies under 70 ms one-way WAN", table);
  bench::finish_report(args, report);
  return 0;
}
