// Reproduces Figure 2: the request-volume (RPS) series of scenario-1 and
// scenario-2 over their 10-minute windows.
//
// Expected shape: scenario-1 stays near 300 RPS with slight variation;
// scenario-2 fluctuates between ~45 and ~200 RPS.
//
// No simulation grid: the RPS series are a pure function of the scenario
// seeds, so --jobs has nothing to parallelise here.
#include "bench_util.h"

#include "l3/workload/scenarios.h"

#include <algorithm>
#include <iostream>

int main(int argc, char** argv) {
  using namespace l3;
  const auto args = bench::parse_args(argc, argv);
  bench::print_header("Figure 2", "RPS variation of scenario-1 and scenario-2");

  const auto s1 = workload::make_scenario1();
  const auto s2 = workload::make_scenario2();
  exp::Report report("Figure 2");

  Table table({"t (min)", "scenario-1 RPS", "scenario-2 RPS"});
  for (std::size_t step = 0; step < s1.steps(); step += 30) {
    const double t = static_cast<double>(step);
    table.add_row({fmt_double(t / 60.0, 1), fmt_double(s1.rps_at(t), 0),
                   fmt_double(s2.rps_at(t), 0)});
  }
  table.print(std::cout);
  report.add_table("RPS series", table);

  Table ranges({"scenario", "RPS lo..hi", "mean RPS"});
  for (const auto* trace : {&s1, &s2}) {
    double lo = 1e9, hi = 0;
    for (std::size_t s = 0; s < trace->steps(); ++s) {
      const double r = trace->rps_at(static_cast<double>(s));
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    std::cout << trace->name() << ": RPS " << fmt_double(lo, 0) << ".."
              << fmt_double(hi, 0) << ", mean "
              << fmt_double(trace->mean_rps(), 0) << "\n";
    ranges.add_row({trace->name(),
                    fmt_double(lo, 0) + ".." + fmt_double(hi, 0),
                    fmt_double(trace->mean_rps(), 0)});
  }
  report.add_table("RPS bands", ranges);
  std::cout << "\npaper: s1 ≈ 300 RPS with slight variation; s2 fluctuates "
               "between ~45 and 200 RPS\n";
  bench::finish_report(args, report);
  return 0;
}
