// Tests for the lease-based leader election (§4 HA mode).
#include "l3/core/leader_election.h"

#include <gtest/gtest.h>

#include <vector>

namespace l3::core {
namespace {

TEST(LeaderElection, FirstCandidateWinsVacantLease) {
  sim::Simulator sim;
  LeaderElection election(sim, 15.0, 5.0);
  const auto a = election.add_candidate("a");
  const auto b = election.add_candidate("b");
  election.start();
  sim.run_until(6.0);
  EXPECT_TRUE(election.is_leader(a));
  EXPECT_FALSE(election.is_leader(b));
  EXPECT_EQ(election.transitions(), 1u);
}

TEST(LeaderElection, LeaderRenewsWhileAlive) {
  sim::Simulator sim;
  LeaderElection election(sim, 15.0, 5.0);
  const auto a = election.add_candidate("a");
  election.add_candidate("b");
  election.start();
  sim.run_until(300.0);
  EXPECT_TRUE(election.is_leader(a));
  EXPECT_EQ(election.transitions(), 1u);  // never changed hands
}

TEST(LeaderElection, FailoverAfterLeaseExpiry) {
  sim::Simulator sim;
  LeaderElection election(sim, 15.0, 5.0);
  const auto a = election.add_candidate("a");
  const auto b = election.add_candidate("b");
  election.start();
  sim.run_until(6.0);
  ASSERT_TRUE(election.is_leader(a));

  election.set_alive(a, false);  // crash the leader
  // Lease is valid for up to 15 s after the last renewal; b must NOT be
  // leader before it expires.
  sim.run_until(12.0);
  EXPECT_FALSE(election.is_leader(b));
  sim.run_until(40.0);
  EXPECT_TRUE(election.is_leader(b));
  EXPECT_EQ(election.transitions(), 2u);
}

TEST(LeaderElection, RecoveredCandidateDoesNotPreempt) {
  sim::Simulator sim;
  LeaderElection election(sim, 15.0, 5.0);
  const auto a = election.add_candidate("a");
  const auto b = election.add_candidate("b");
  election.start();
  sim.run_until(6.0);
  election.set_alive(a, false);
  sim.run_until(60.0);
  ASSERT_TRUE(election.is_leader(b));
  election.set_alive(a, true);  // a comes back
  sim.run_until(200.0);
  EXPECT_TRUE(election.is_leader(b));  // no preemption while b renews
}

TEST(LeaderElection, CallbacksFireOnTransitions) {
  sim::Simulator sim;
  LeaderElection election(sim, 15.0, 5.0);
  std::vector<std::string> events;
  const auto a = election.add_candidate(
      "a", {.on_elected = [&] { events.push_back("a+"); },
            .on_deposed = [&] { events.push_back("a-"); }});
  election.add_candidate(
      "b", {.on_elected = [&] { events.push_back("b+"); },
            .on_deposed = [&] { events.push_back("b-"); }});
  election.start();
  sim.run_until(6.0);
  election.set_alive(a, false);
  sim.run_until(60.0);
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0], "a+");
  EXPECT_EQ(events[1], "a-");
  EXPECT_EQ(events[2], "b+");
}

TEST(LeaderElection, NoCandidatesNoLeader) {
  sim::Simulator sim;
  LeaderElection election(sim);
  election.start();
  sim.run_until(60.0);
  EXPECT_EQ(election.leader(), LeaderElection::npos);
}

TEST(LeaderElection, AllDeadThenOneRecovers) {
  sim::Simulator sim;
  LeaderElection election(sim, 15.0, 5.0);
  const auto a = election.add_candidate("a");
  const auto b = election.add_candidate("b");
  election.start();
  sim.run_until(6.0);
  election.set_alive(a, false);
  election.set_alive(b, false);
  sim.run_until(60.0);
  EXPECT_EQ(election.leader(), LeaderElection::npos);
  election.set_alive(b, true);
  sim.run_until(70.0);
  EXPECT_TRUE(election.is_leader(b));
}

TEST(LeaderElection, RejectsBadConfig) {
  sim::Simulator sim;
  EXPECT_THROW(LeaderElection(sim, 5.0, 10.0), ContractViolation);
  EXPECT_THROW(LeaderElection(sim, 0.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace l3::core
