// l3::obs flight recorder: ring wraparound accounting, deterministic
// counter-shard merges (any bind/thread interleaving sums to the same
// snapshot), gauge last-writer-wins, exact scope counts with sampled
// timing, ProfileBlock merge semantics, and counter-track delta
// suppression. Everything here drives the always-compiled Recorder API
// directly, so the suite passes identically under L3_OBS=OFF builds.
#include "l3/obs/recorder.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace l3::obs {
namespace {

Shard* bound_shard() {
  Shard* shard = local_shard();
  EXPECT_NE(shard, nullptr);
  return shard;
}

TEST(ObsRecorder, UnboundThreadHasNoShard) {
  EXPECT_EQ(local_shard(), nullptr);
  // ScopedTimer on an unbound thread is a no-op, not a crash.
  { ScopedTimer timer(ScopeId::kP2cPick); }
}

TEST(ObsRecorder, BindRestoresPreviousShardOnExit) {
  Recorder recorder;
  EXPECT_EQ(local_shard(), nullptr);
  {
    ScopedRecorderBind outer(recorder);
    Shard* outer_shard = bound_shard();
    {
      ScopedRecorderBind inner(recorder);
      EXPECT_NE(local_shard(), outer_shard);  // fresh shard per bind
    }
    EXPECT_EQ(local_shard(), outer_shard);
  }
  EXPECT_EQ(local_shard(), nullptr);
}

TEST(ObsRecorder, RingKeepsAllEventsBelowCapacity) {
  RecorderConfig config;
  config.ring_capacity = 4;
  Recorder recorder(config);
  ScopedRecorderBind bind(recorder);
  Shard* shard = bound_shard();
  for (int i = 1; i <= 3; ++i) {
    shard->event(Domain::kMesh, static_cast<SimTime>(i),
                 EventCode::kPickerRebuild, static_cast<std::uint32_t>(i),
                 i * 10.0);
  }
  const Snapshot snapshot = recorder.snapshot();
  const auto& ring = snapshot.rings[static_cast<std::size_t>(Domain::kMesh)];
  EXPECT_EQ(ring.domain, "mesh");
  EXPECT_EQ(ring.recorded, 3u);
  EXPECT_EQ(ring.dropped, 0u);
  ASSERT_EQ(ring.events.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(ring.events[i].time, static_cast<double>(i + 1));
    EXPECT_EQ(ring.events[i].arg, i + 1);
  }
}

TEST(ObsRecorder, RingWraparoundKeepsNewestDropsOldest) {
  RecorderConfig config;
  config.ring_capacity = 4;
  Recorder recorder(config);
  ScopedRecorderBind bind(recorder);
  Shard* shard = bound_shard();
  for (int i = 1; i <= 7; ++i) {
    shard->event(Domain::kMesh, static_cast<SimTime>(i),
                 EventCode::kTimeoutFired, static_cast<std::uint32_t>(i),
                 i * 10.0);
  }
  const Snapshot snapshot = recorder.snapshot();
  const auto& ring = snapshot.rings[static_cast<std::size_t>(Domain::kMesh)];
  EXPECT_EQ(ring.recorded, 7u);
  EXPECT_EQ(ring.dropped, 3u);
  ASSERT_EQ(ring.events.size(), 4u);
  // Oldest-to-newest survivors: events 4..7.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ring.events[i].time, static_cast<double>(i + 4));
    EXPECT_EQ(ring.events[i].arg, i + 4);
    EXPECT_DOUBLE_EQ(ring.events[i].value, (i + 4) * 10.0);
  }
  // Other domains untouched.
  EXPECT_EQ(snapshot.rings[static_cast<std::size_t>(Domain::kSim)].recorded,
            0u);
}

TEST(ObsRecorder, ZeroCapacityDisablesRings) {
  RecorderConfig config;
  config.ring_capacity = 0;
  Recorder recorder(config);
  ScopedRecorderBind bind(recorder);
  bound_shard()->event(Domain::kChaos, 1.0, EventCode::kFaultBegin, 1, 0.0);
  const Snapshot snapshot = recorder.snapshot();
  EXPECT_EQ(snapshot.rings[static_cast<std::size_t>(Domain::kChaos)].recorded,
            0u);
}

TEST(ObsRecorder, CounterMergeSumsAcrossSequentialBinds) {
  Recorder recorder;
  {
    ScopedRecorderBind bind(recorder);
    bound_shard()->add(CounterId::kMeshRequests, 3);
  }
  {
    ScopedRecorderBind bind(recorder);
    bound_shard()->add(CounterId::kMeshRequests, 4);
    bound_shard()->add(CounterId::kSimEvents, 1);
  }
  const Snapshot snapshot = recorder.snapshot();
  EXPECT_EQ(
      snapshot.counters[static_cast<std::size_t>(CounterId::kMeshRequests)]
          .value,
      7u);
  EXPECT_EQ(
      snapshot.counters[static_cast<std::size_t>(CounterId::kSimEvents)].value,
      1u);
  EXPECT_EQ(
      snapshot.counters[static_cast<std::size_t>(CounterId::kMeshRequests)]
          .name,
      "rt.counter.mesh.requests");
}

// The determinism contract the Report JSON `profile` block leans on: the
// merged counters depend only on what was recorded, not on which thread
// recorded it or in what interleaving. Run the same workload twice with
// opposite thread launch orders and require identical profiles.
TEST(ObsRecorder, CounterMergeDeterministicAcrossThreadInterleavings) {
  auto run = [](bool reversed) {
    Recorder recorder;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      const int worker = reversed ? 3 - t : t;
      threads.emplace_back([&recorder, worker] {
        ScopedRecorderBind bind(recorder);
        Shard* shard = local_shard();
        for (int i = 0; i < 1000 * (worker + 1); ++i) {
          shard->add(CounterId::kTsdbSamples, 1);
        }
        shard->add(CounterId::kControllerTicks,
                   static_cast<std::uint64_t>(worker));
      });
    }
    for (auto& thread : threads) thread.join();
    return recorder.profile();
  };
  const ProfileBlock a = run(false);
  const ProfileBlock b = run(true);
  EXPECT_EQ(a.counters[static_cast<std::size_t>(CounterId::kTsdbSamples)],
            10000u);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.scope_count, b.scope_count);
  EXPECT_EQ(a.ring_recorded, b.ring_recorded);
}

TEST(ObsRecorder, GaugeLastWriterWins) {
  Recorder recorder;
  {
    ScopedRecorderBind bind(recorder);
    bound_shard()->set_gauge(GaugeId::kMeshInflight, 5.0);
  }
  {
    ScopedRecorderBind bind(recorder);
    bound_shard()->set_gauge(GaugeId::kMeshInflight, 7.0);
  }
  const Snapshot snapshot = recorder.snapshot();
  EXPECT_DOUBLE_EQ(
      snapshot.gauges[static_cast<std::size_t>(GaugeId::kMeshInflight)].value,
      7.0);
}

TEST(ObsRecorder, ScopeCountsExactTimingSampled) {
  Recorder recorder;
  ScopedRecorderBind bind(recorder);
  for (int i = 0; i < 130; ++i) {
    ScopedTimer timer(ScopeId::kP2cPick, 6);  // time every 64th entry
  }
  const ProfileBlock profile = recorder.profile();
  const auto scope = static_cast<std::size_t>(ScopeId::kP2cPick);
  EXPECT_EQ(profile.scope_count[scope], 130u);   // counts always exact
  EXPECT_EQ(profile.scope_timed[scope], 3u);     // entries 0, 64, 128
  const Snapshot snapshot = recorder.snapshot();
  EXPECT_EQ(snapshot.scopes[scope].count, 130u);
  EXPECT_EQ(snapshot.scopes[scope].timed, 3u);
  EXPECT_GE(snapshot.scopes[scope].wall_ns_total, 0.0);
}

TEST(ObsRecorder, ProfileBlockMergeSumsElementWise) {
  Recorder first;
  {
    ScopedRecorderBind bind(first);
    bound_shard()->add(CounterId::kMeshRequests, 10);
    bound_shard()->event(Domain::kSim, 1.0, EventCode::kControllerTick, 0,
                         0.0);
    ScopedTimer timer(ScopeId::kControllerManage);
  }
  Recorder second;
  {
    ScopedRecorderBind bind(second);
    bound_shard()->add(CounterId::kMeshRequests, 32);
  }
  ProfileBlock merged = first.profile();
  EXPECT_EQ(merged.cells, 1u);
  merged.merge(second.profile());
  EXPECT_EQ(merged.cells, 2u);
  EXPECT_EQ(
      merged.counters[static_cast<std::size_t>(CounterId::kMeshRequests)],
      42u);
  EXPECT_EQ(merged.ring_recorded[static_cast<std::size_t>(Domain::kSim)], 1u);
  EXPECT_EQ(merged.scope_count[static_cast<std::size_t>(
                ScopeId::kControllerManage)],
            1u);
  EXPECT_EQ(merged.active_subsystems(), 1u);
  EXPECT_FALSE(merged.empty());
  EXPECT_TRUE(ProfileBlock{}.empty());
}

TEST(ObsRecorder, TrackSamplingDeltaSuppresses) {
  Recorder recorder;
  ScopedRecorderBind bind(recorder);
  bound_shard()->add(CounterId::kSimEvents, 5);
  recorder.sample_tracks(1.0);
  recorder.sample_tracks(2.0);  // nothing changed: no new samples
  bound_shard()->add(CounterId::kSimEvents, 3);
  recorder.sample_tracks(3.0);
  const Snapshot snapshot = recorder.snapshot();
  ASSERT_EQ(snapshot.tracks.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.tracks[0].time, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.tracks[0].value, 5.0);
  EXPECT_FALSE(snapshot.tracks[0].is_gauge);
  EXPECT_DOUBLE_EQ(snapshot.tracks[1].time, 3.0);
  EXPECT_DOUBLE_EQ(snapshot.tracks[1].value, 8.0);
  EXPECT_EQ(snapshot.tracks_dropped, 0u);
}

TEST(ObsRecorder, TrackSamplingBoundedByConfig) {
  RecorderConfig config;
  config.max_track_samples = 2;
  Recorder recorder(config);
  ScopedRecorderBind bind(recorder);
  for (int i = 1; i <= 4; ++i) {
    bound_shard()->add(CounterId::kSimEvents, 1);
    recorder.sample_tracks(static_cast<SimTime>(i));
  }
  const Snapshot snapshot = recorder.snapshot();
  EXPECT_EQ(snapshot.tracks.size(), 2u);
  EXPECT_EQ(snapshot.tracks_dropped, 2u);
}

// The macro surface: with L3_OBS=ON these must reach the bound shard; with
// L3_OBS=OFF they expand to ((void)0) and the recorder stays empty either
// way when nothing is bound.
TEST(ObsRecorder, MacrosReachBoundShardWhenEnabled) {
  Recorder recorder;
  {
    ScopedRecorderBind bind(recorder);
    L3_OBS_COUNT(kMeshTimeouts, 2);
    L3_OBS_GAUGE(kTsdbSeries, 9.0);
    L3_OBS_EVENT(kChaos, kFaultBegin, 1.5, 3, 0.25);
  }
  const ProfileBlock profile = recorder.profile();
  const auto timeouts =
      profile.counters[static_cast<std::size_t>(CounterId::kMeshTimeouts)];
  const auto chaos_events =
      profile.ring_recorded[static_cast<std::size_t>(Domain::kChaos)];
#if L3_OBS_ENABLED
  EXPECT_EQ(timeouts, 2u);
  EXPECT_EQ(chaos_events, 1u);
#else
  EXPECT_EQ(timeouts, 0u);
  EXPECT_EQ(chaos_events, 0u);
#endif
}

}  // namespace
}  // namespace l3::obs
