// Tests for Algorithm 2 — the rate controller — anchored to the exact
// values visible in Figure 4 of the paper.
#include "l3/lb/rate_control.h"

#include "l3/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace l3::lb {
namespace {

TEST(RelativeChange, Definition) {
  EXPECT_DOUBLE_EQ(relative_change(100.0, 150.0), 0.5);
  EXPECT_DOUBLE_EQ(relative_change(100.0, 50.0), -0.5);
  EXPECT_DOUBLE_EQ(relative_change(100.0, 100.0), 0.0);
}

TEST(RelativeChange, ZeroEwmaGuard) {
  EXPECT_DOUBLE_EQ(relative_change(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_change(-5.0, 100.0), 0.0);
}

TEST(RateControlWeight, IdentityAtZeroChange) {
  EXPECT_DOUBLE_EQ(rate_control_weight(2000.0, 1000.0, 0.0), 2000.0);
  EXPECT_DOUBLE_EQ(rate_control_weight(500.0, 1000.0, 0.0), 500.0);
}

TEST(RateControlWeight, Fig4aAnchorHalvedRps) {
  // Fig. 4a's prose says c = −0.5 lifts w_b = 2000 "to over 2800", but
  // Algorithm 2's own formula gives 2w_b − w_µ − (w_b−w_µ)/(1+3c²)^{3/2}
  // = 3000 − 1000/(1.75)^{3/2} ≈ 2568 (the figure was apparently produced
  // with a different exponent). We implement the published pseudocode
  // exactly and pin its value; the qualitative anchor — a strong
  // opportunistic increase above w_b — still holds.
  const double w = rate_control_weight(2000.0, 1000.0, -0.5);
  EXPECT_GT(w, 2500.0);
  EXPECT_LT(w, 3000.0);
  EXPECT_NEAR(w, 3000.0 - 1000.0 / std::pow(1.75, 1.5), 1e-9);
}

TEST(RateControlWeight, ConvergesToAverageForLargePositiveChange) {
  // Eq. 5: as c → ∞ every weight → w_µ (asymptotically).
  for (double w_b : {2000.0, 500.0}) {
    EXPECT_NEAR(rate_control_weight(w_b, 1000.0, 50.0), 1000.0, 5.0);
  }
}

TEST(RateControlWeight, Eq5ExactValue) {
  // c > 0: w = w_µ − w_µ/(1+c²)^1.5 + w_b/(1+c²)^1.5.
  const double c = 0.8;
  const double damp = std::pow(1.0 + c * c, 1.5);
  EXPECT_NEAR(rate_control_weight(2000.0, 1000.0, c),
              1000.0 - 1000.0 / damp + 2000.0 / damp, 1e-9);
}

TEST(RateControlWeight, BelowAverageShrinksOnRpsDecrease) {
  // Algorithm 2 line 8: w_b ≤ w_µ and c < 0 → w_b / (1+2c²)^1.5.
  const double c = -0.5;
  const double w = rate_control_weight(500.0, 1000.0, c);
  EXPECT_NEAR(w, 500.0 / std::pow(1.5, 1.5), 1e-9);
  EXPECT_LT(w, 500.0);
}

TEST(RateControlWeight, AboveAverageGrowsOnRpsDecrease) {
  const double w = rate_control_weight(2000.0, 1000.0, -0.25);
  EXPECT_GT(w, 2000.0);
}

TEST(RateControlWeight, FloorAtOne) {
  // Algorithm 2 lines 13–15.
  EXPECT_GE(rate_control_weight(1.0, 1000.0, -3.0), 1.0);
  EXPECT_GE(rate_control_weight(0.5, 0.5, -1.0), 1.0);
}

TEST(RateControl, UnchangedRpsPassesWeightsThrough) {
  const std::vector<double> weights{2000.0, 1000.0, 500.0};
  const auto out = rate_control(weights, 100.0, 100.0);
  EXPECT_EQ(out, weights);
}

TEST(RateControl, RpsIncreaseFlattensDistribution) {
  const std::vector<double> weights{3000.0, 1000.0, 500.0};
  const auto out = rate_control(weights, 100.0, 200.0);  // c = 1
  // Spread (max − min) must shrink; ordering must be preserved.
  EXPECT_LT(out[0] - out[2], weights[0] - weights[2]);
  EXPECT_GT(out[0], out[1]);
  EXPECT_GT(out[1], out[2]);
}

TEST(RateControl, RpsDecreaseSharpensDistribution) {
  const std::vector<double> weights{3000.0, 1000.0, 500.0};
  const auto out = rate_control(weights, 100.0, 50.0);  // c = −0.5
  EXPECT_GT(out[0], weights[0]);  // above-average grows
  EXPECT_LT(out[2], weights[2]);  // below-average shrinks
}

TEST(RateControl, EmptyInputOk) {
  const std::vector<double> weights;
  EXPECT_TRUE(rate_control(weights, 100.0, 120.0).empty());
}

TEST(RateControl, MeanIsFixedPointOfEq5) {
  // A backend exactly at the mean stays at the mean for any c > 0.
  for (double c : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(rate_control_weight(1000.0, 1000.0, c), 1000.0, 1e-9);
  }
}

/// Property sweep: output weights are always finite and >= 1, and for
/// positive c the output stays between w_b and w_µ.
class RateControlProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateControlProperty, OutputBounded) {
  SplitRng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double w_b = rng.uniform(1.0, 10000.0);
    const double w_mu = rng.uniform(1.0, 10000.0);
    const double c = rng.uniform(-1.0, 5.0);
    const double w = rate_control_weight(w_b, w_mu, c);
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GE(w, 1.0);
    if (c > 0.0) {
      const double lo = std::min(w_b, w_mu) - 1e-9;
      const double hi = std::max(w_b, w_mu) + 1e-9;
      EXPECT_GE(w, std::max(1.0, lo));
      EXPECT_LE(w, hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateControlProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace l3::lb
