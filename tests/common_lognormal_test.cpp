// Tests for log-normal parameter fitting and the normal-quantile helper.
#include "l3/common/lognormal.h"

#include "l3/common/assert.h"
#include "l3/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace l3 {
namespace {

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.99), 2.326348, 1e-5);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
}

TEST(NormalQuantile, Symmetry) {
  for (double q : {0.6, 0.75, 0.9, 0.99, 0.9999}) {
    EXPECT_NEAR(normal_quantile(q), -normal_quantile(1.0 - q), 1e-7);
  }
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), ContractViolation);
  EXPECT_THROW(normal_quantile(1.0), ContractViolation);
}

TEST(FitLognormal, RecoversMedianAndQuantile) {
  const LogNormalParams p = fit_lognormal(0.050, 0.400, 0.99);
  EXPECT_NEAR(std::exp(p.mu), 0.050, 1e-12);
  EXPECT_NEAR(lognormal_quantile(p, 0.99), 0.400, 1e-9);
  EXPECT_NEAR(lognormal_quantile(p, 0.50), 0.050, 1e-9);
}

TEST(FitLognormal, SampledDistributionMatchesTargets) {
  const LogNormalParams p = fit_lognormal(0.050, 0.300, 0.99);
  SplitRng rng(5);
  std::vector<double> samples;
  const int n = 200000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(rng.lognormal(p.mu, p.sigma));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[n / 2], 0.050, 0.002);
  EXPECT_NEAR(samples[static_cast<std::size_t>(n * 0.99)], 0.300, 0.02);
}

TEST(FitLognormal, MeanExceedsMedian) {
  const LogNormalParams p = fit_lognormal(0.050, 0.500, 0.99);
  EXPECT_GT(lognormal_mean(p), 0.050);  // right-skew
}

TEST(FitLognormal, RejectsInvalidInputs) {
  EXPECT_THROW(fit_lognormal(0.0, 0.1, 0.99), ContractViolation);
  EXPECT_THROW(fit_lognormal(0.1, 0.05, 0.99), ContractViolation);  // q < med
  EXPECT_THROW(fit_lognormal(0.1, 0.2, 0.4), ContractViolation);    // q <= .5
}

/// Property sweep over (median, ratio): the fit always reproduces both
/// anchors analytically.
class FitSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FitSweep, RoundTrips) {
  const auto [median, ratio] = GetParam();
  const double p99 = median * ratio;
  const LogNormalParams p = fit_lognormal(median, p99, 0.99);
  EXPECT_NEAR(lognormal_quantile(p, 0.50) / median, 1.0, 1e-9);
  EXPECT_NEAR(lognormal_quantile(p, 0.99) / p99, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FitSweep,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05, 0.5, 2.0),
                       ::testing::Values(1.5, 3.0, 10.0, 50.0)));

}  // namespace
}  // namespace l3
