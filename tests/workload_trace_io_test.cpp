// Tests for scenario-trace CSV import/export.
#include "l3/workload/trace_io.h"

#include "l3/common/assert.h"
#include "l3/workload/scenarios.h"

#include <gtest/gtest.h>

#include <sstream>

namespace l3::workload {
namespace {

TEST(TraceIo, RoundTripsGeneratedScenario) {
  const auto original = make_scenario2(7);
  std::stringstream buffer;
  save_trace_csv(original, buffer);
  const auto loaded = load_trace_csv(buffer);

  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_EQ(loaded.cluster_count(), original.cluster_count());
  EXPECT_DOUBLE_EQ(loaded.duration(), original.duration());
  EXPECT_EQ(loaded.steps(), original.steps());
  for (std::size_t c = 0; c < original.cluster_count(); ++c) {
    for (std::size_t s = 0; s < original.steps(); ++s) {
      EXPECT_NEAR(loaded.at(c, s).median, original.at(c, s).median, 1e-9);
      EXPECT_NEAR(loaded.at(c, s).p99, original.at(c, s).p99, 1e-9);
      EXPECT_NEAR(loaded.at(c, s).success_rate,
                  original.at(c, s).success_rate, 1e-9);
    }
  }
  for (std::size_t s = 0; s < original.steps(); ++s) {
    const double t = static_cast<double>(s);
    EXPECT_NEAR(loaded.rps_at(t), original.rps_at(t), 1e-6);
  }
}

TEST(TraceIo, HeaderContainsMetadata) {
  const auto trace = make_scenario5(1);
  std::stringstream buffer;
  save_trace_csv(trace, buffer);
  std::string first;
  std::getline(buffer, first);
  EXPECT_NE(first.find("scenario-5"), std::string::npos);
  EXPECT_NE(first.find("clusters=3"), std::string::npos);
  EXPECT_NE(first.find("duration=600"), std::string::npos);
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream garbage("not a trace\n1,2,3\n");
  EXPECT_THROW(load_trace_csv(garbage), ContractViolation);
}

TEST(TraceIo, RejectsWrongColumnCount) {
  std::stringstream bad(
      "# scenario x clusters=2 duration=2 dt=1\n"
      "t,rps,c0_median,c0_p99,c0_success,c1_median,c1_p99,c1_success\n"
      "0,100,0.01,0.05,1.0\n");  // missing cluster-1 columns
  EXPECT_THROW(load_trace_csv(bad), ContractViolation);
}

TEST(TraceIo, RejectsTruncatedFile) {
  const auto trace = make_scenario5(1);
  std::stringstream buffer;
  save_trace_csv(trace, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  // Cut mid-file: either a malformed row or too few steps must throw.
  std::stringstream truncated(text);
  EXPECT_THROW(load_trace_csv(truncated), ContractViolation);
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = make_failure2(3);
  const std::string path = "/tmp/l3_trace_io_test.csv";
  save_trace_csv(original, path);
  const auto loaded = load_trace_csv(path);
  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_NEAR(loaded.at(2, 599).success_rate,
              original.at(2, 599).success_rate, 1e-9);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv(std::string("/nonexistent/path.csv")),
               ContractViolation);
}

}  // namespace
}  // namespace l3::workload
