// Integration tests: the headline behaviours of the whole system, end to
// end — L3 vs round-robin on heterogeneous scenarios, failure steering,
// rate-control protection, scrape-gap resilience, and seed sweeps of the
// core invariant.
#include "l3/core/controller.h"
#include "l3/lb/l3_policy.h"
#include "l3/lb/policy.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"
#include "l3/workload/trace_behavior.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace l3 {
namespace {

using workload::PolicyKind;
using workload::RunnerConfig;
using workload::ScenarioTrace;
using workload::TracePoint;

/// A scenario with one persistently slow cluster — the cleanest exploitable
/// heterogeneity.
ScenarioTrace one_slow_cluster(double slow_median = 0.300,
                               double fast_median = 0.040,
                               SimDuration duration = 300.0) {
  ScenarioTrace trace("one-slow", 3, duration);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{fast_median, fast_median * 4, 1.0};
    trace.at(1, s) = TracePoint{slow_median, slow_median * 4, 1.0};
    trace.at(2, s) = TracePoint{fast_median, fast_median * 4, 1.0};
    trace.set_rps(s, 150.0);
  }
  return trace;
}

TEST(Integration, L3BeatsRoundRobinOnPersistentSlowCluster) {
  const auto trace = one_slow_cluster();
  RunnerConfig config;
  config.warmup = 60.0;
  const auto rr = run_scenario(trace, PolicyKind::kRoundRobin, config);
  const auto l3 = run_scenario(trace, PolicyKind::kL3, config);
  // The headline invariant: tail AND median improve, and the slow cluster
  // is starved of traffic.
  EXPECT_LT(l3.summary.latency.p99, rr.summary.latency.p99 * 0.8);
  EXPECT_LT(l3.summary.latency.p50, rr.summary.latency.p50);
  EXPECT_LT(l3.traffic_share[1], 0.10);
  EXPECT_NEAR(rr.traffic_share[1], 1.0 / 3.0, 0.05);
}

TEST(Integration, L3AdaptsWhenSlowClusterMoves) {
  // The slow cluster rotates mid-run; L3 must follow.
  ScenarioTrace trace("moving-slow", 3, 400.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    const bool first_half = s < 200;
    trace.at(0, s) = TracePoint{first_half ? 0.300 : 0.040,
                                first_half ? 1.2 : 0.16, 1.0};
    trace.at(1, s) = TracePoint{first_half ? 0.040 : 0.300,
                                first_half ? 0.16 : 1.2, 1.0};
    trace.at(2, s) = TracePoint{0.040, 0.16, 1.0};
    trace.set_rps(s, 150.0);
  }
  RunnerConfig config;
  config.warmup = 60.0;
  const auto r = run_scenario(trace, PolicyKind::kL3, config);
  // Compare traffic to cluster 0 in the two halves via the timeline of
  // backend shares — approximate through overall share bounds: cluster 0
  // must get meaningfully less than a third overall (slow half) but more
  // than the persistent-slow case (fast half).
  EXPECT_GT(r.traffic_share[0], 0.08);
  EXPECT_LT(r.traffic_share[0], 0.35);
  // And cluster 2, always fast, gets at least its fair share.
  EXPECT_GT(r.traffic_share[2], 0.30);
}

TEST(Integration, L3SteersAwayFromFailingCluster) {
  ScenarioTrace trace("one-failing", 3, 300.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{0.050, 0.200, 1.0};
    trace.at(1, s) = TracePoint{0.050, 0.200, 0.5};  // coin-flip failures
    trace.at(2, s) = TracePoint{0.050, 0.200, 1.0};
    trace.set_rps(s, 150.0);
  }
  RunnerConfig config;
  config.warmup = 60.0;
  const auto rr = run_scenario(trace, PolicyKind::kRoundRobin, config);
  const auto l3 = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_GT(l3.summary.success_rate, rr.summary.success_rate + 0.08);
  EXPECT_LT(l3.traffic_share[1], 0.15);
}

TEST(Integration, RateControllerFlattensWeightsDuringRpsSurge) {
  // End-to-end check of Algorithm 2 in the live control loop: when the
  // measured RPS jumps well above its EWMA, the applied TrafficSplit
  // weights must move toward uniform relative to the no-rate-control
  // variant, so the surge is spread across backends (giving autoscalers
  // time to react, per §3.2).
  ScenarioTrace trace("surge", 3, 240.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{0.020, 0.060, 1.0};  // clear favourite
    trace.at(1, s) = TracePoint{0.120, 0.400, 1.0};
    trace.at(2, s) = TracePoint{0.120, 0.400, 1.0};
    trace.set_rps(s, s < 120 ? 60.0 : 360.0);  // 6x surge at t=120
  }

  auto max_min_ratio_after_surge = [&](bool rate_control) {
    sim::Simulator sim;
    SplitRng root(3);
    mesh::Mesh mesh(sim, root.split("mesh"));
    const auto c1 = mesh.add_cluster("c1");
    const auto c2 = mesh.add_cluster("c2");
    const auto c3 = mesh.add_cluster("c3");
    auto shared = std::make_shared<const ScenarioTrace>(trace);
    for (auto c : {c1, c2, c3}) {
      mesh.deploy("svc", c, {},
                  std::make_unique<workload::TraceReplayBehavior>(shared, c));
    }
    mesh.proxy(c1, "svc");
    metrics::TimeSeriesDb tsdb;
    metrics::Scraper scraper(sim, tsdb);
    scraper.add_target("c1", mesh.registry(c1));
    scraper.start(5.0);
    lb::L3PolicyConfig policy_config;
    policy_config.rate_control_enabled = rate_control;
    core::L3Controller controller(
        mesh, tsdb, c1, std::make_unique<lb::L3Policy>(policy_config));
    controller.manage_all();
    controller.start();
    workload::OpenLoopClient client(
        mesh, c1, "svc",
        [&trace](SimTime t) { return trace.rps_at(t); }, root.split("cl"));
    client.start(0.0, 200.0);
    // Sample the weights shortly after the surge begins, while the RPS
    // sample runs far above its EWMA.
    sim.run_until(132.0);
    const auto weights = mesh.find_split(c1, "svc")->weights();
    const auto [lo, hi] = std::minmax_element(weights.begin(), weights.end());
    return static_cast<double>(*hi) / static_cast<double>(*lo);
  };

  const double with_rc = max_min_ratio_after_surge(true);
  const double without_rc = max_min_ratio_after_surge(false);
  EXPECT_LT(with_rc, without_rc * 0.7);  // clearly flatter under Algorithm 2
  EXPECT_GT(with_rc, 1.0);               // but not fully uniform
}

TEST(Integration, SurvivesScrapeOutage) {
  // Stop scraping mid-run: the controller must converge its filters toward
  // the defaults and keep serving (no crash, sane weights), then recover.
  sim::Simulator sim;
  SplitRng rng(5);
  mesh::Mesh mesh(sim, rng);
  const auto c1 = mesh.add_cluster("c1");
  const auto c2 = mesh.add_cluster("c2");
  for (auto c : {c1, c2}) {
    mesh.deploy("svc", c, {},
                std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.080));
  }
  mesh.proxy(c1, "svc");
  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("c1", mesh.registry(c1));
  scraper.start(5.0);
  core::L3Controller controller(mesh, tsdb, c1,
                                std::make_unique<lb::L3Policy>());
  controller.manage_all();
  controller.start();
  workload::OpenLoopClient client(mesh, c1, "svc",
                                  [](SimTime) { return 100.0; },
                                  rng.split("client"));
  client.start(0.0, 300.0);

  sim.run_until(60.0);
  scraper.set_target_enabled("c1", false);  // outage
  sim.run_until(150.0);
  const auto during = controller.snapshot();
  // Filters drifted back toward the 5 s latency default.
  EXPECT_GT(during[0].backends[0].latency_p99, 1.0);
  for (const auto w : mesh.find_split(c1, "svc")->weights()) {
    EXPECT_GE(w, 1u);  // still sane
  }
  scraper.set_target_enabled("c1", true);  // recovery
  sim.run_until(250.0);
  const auto after = controller.snapshot();
  EXPECT_LT(after[0].backends[0].latency_p99, 1.0);  // re-learned reality
}

TEST(Integration, ReplicaOutageHandledByHealthAndPolicy) {
  ScenarioTrace trace = one_slow_cluster(0.050, 0.050, 240.0);  // all equal
  RunnerConfig config;
  config.warmup = 30.0;
  // Run manually so we can kill a deployment mid-flight.
  sim::Simulator sim;
  SplitRng root(config.seed);
  mesh::Mesh mesh(sim, root.split("mesh"));
  const auto c1 = mesh.add_cluster("c1");
  const auto c2 = mesh.add_cluster("c2");
  const auto c3 = mesh.add_cluster("c3");
  for (auto c : {c1, c2, c3}) {
    mesh.deploy("svc", c, {},
                std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.060));
  }
  mesh.proxy(c1, "svc");
  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("c1", mesh.registry(c1));
  scraper.start(5.0);
  core::L3Controller controller(mesh, tsdb, c1,
                                std::make_unique<lb::L3Policy>());
  controller.manage_all();
  controller.start();
  workload::OpenLoopClient client(mesh, c1, "svc",
                                  [](SimTime) { return 100.0; },
                                  root.split("client"));
  client.start(0.0, 240.0);

  sim.schedule_at(100.0, [&mesh, c2] {
    mesh.find_deployment("svc", c2)->set_down(true);
  });
  sim.run_until(270.0);

  // After the outage, traffic to c2 must collapse (health checker excludes
  // it within its 10 s probe interval) and overall success stays high.
  const auto records = client.records_after(130.0);
  int to_c2 = 0, failures = 0;
  for (const auto& r : records) {
    if (r.backend_cluster == c2) ++to_c2;
    if (!r.success) ++failures;
  }
  EXPECT_EQ(to_c2, 0);
  EXPECT_LT(static_cast<double>(failures) / records.size(), 0.01);
}

/// Seed sweep of the headline invariant: L3's P99 never loses badly to
/// round-robin on a strongly heterogeneous scenario.
class HeadlineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeadlineSweep, L3AtLeastMatchesRoundRobin) {
  const auto trace = one_slow_cluster(0.250, 0.040, 240.0);
  RunnerConfig config;
  config.warmup = 60.0;
  config.seed = GetParam();
  const auto rr = run_scenario(trace, PolicyKind::kRoundRobin, config);
  const auto l3 = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_LT(l3.summary.latency.p99, rr.summary.latency.p99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeadlineSweep,
                         ::testing::Values(1, 17, 23, 99, 424242));

}  // namespace
}  // namespace l3
