// Tests for the WAN delay model: base delays, jitter, route flaps,
// disturbances, and determinism.
#include "l3/mesh/wan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace l3::mesh {
namespace {

TEST(Wan, DefaultLinksHaveZeroDelay) {
  WanModel wan;
  wan.resize(2);
  SplitRng rng(1);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 0.0, rng), 0.0);
}

TEST(Wan, BaseDelayWithoutJitterIsExact) {
  WanModel wan;
  wan.resize(2);
  wan.set_link(0, 1, {.base = 0.005, .jitter_frac = 0.0});
  SplitRng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(wan.sample(0, 1, static_cast<double>(i), rng), 0.005);
  }
}

TEST(Wan, JitterOnlyAddsDelay) {
  WanModel wan;
  wan.resize(2);
  wan.set_link(0, 1, {.base = 0.010, .jitter_frac = 0.2});
  SplitRng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = wan.sample(0, 1, 0.0, rng);
    EXPECT_GE(d, 0.010);          // half-normal jitter is non-negative
    EXPECT_LT(d, 0.010 * 2.0);    // 5 sigma would be needed to reach 2x
  }
}

TEST(Wan, SymmetricSetsBothDirections) {
  WanModel wan;
  wan.resize(3);
  wan.set_symmetric(0, 2, {.base = 0.007, .jitter_frac = 0.0});
  SplitRng rng(3);
  EXPECT_DOUBLE_EQ(wan.sample(0, 2, 0.0, rng), 0.007);
  EXPECT_DOUBLE_EQ(wan.sample(2, 0, 0.0, rng), 0.007);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 0.0, rng), 0.0);  // untouched
}

TEST(Wan, LocalDelayOnDiagonal) {
  WanModel wan;
  wan.resize(3);
  wan.set_local_delay(0.0005, 0.0);
  SplitRng rng(4);
  for (ClusterId c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(wan.sample(c, c, 0.0, rng), 0.0005);
  }
}

TEST(Wan, DisturbanceAppliesOnlyInWindowAndDirection) {
  WanModel wan;
  wan.resize(2);
  wan.set_link(0, 1, {.base = 0.005, .jitter_frac = 0.0});
  wan.set_link(1, 0, {.base = 0.005, .jitter_frac = 0.0});
  wan.add_disturbance({.from = 0, .to = 1, .start = 10.0, .end = 20.0,
                       .extra = 0.050});
  SplitRng rng(5);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 9.9, rng), 0.005);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 10.0, rng), 0.055);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 19.9, rng), 0.055);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 20.0, rng), 0.005);
  EXPECT_DOUBLE_EQ(wan.sample(1, 0, 15.0, rng), 0.005);  // other direction
}

TEST(Wan, RouteFlapIsPiecewiseConstantAndBounded) {
  WanModel wan;
  wan.resize(2);
  wan.set_link(0, 1,
               {.base = 0.005, .jitter_frac = 0.0, .flap_amp = 0.002,
                .flap_period = 4.0});
  SplitRng rng(6);
  // Within one epoch the flap offset is constant.
  const double a = wan.sample(0, 1, 0.1, rng);
  const double b = wan.sample(0, 1, 3.9, rng);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 0.005);
  EXPECT_LE(a, 0.007);
  // Across epochs it (almost surely) changes.
  bool changed = false;
  for (int e = 1; e < 10; ++e) {
    if (wan.sample(0, 1, 4.0 * e + 0.1, rng) != a) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Wan, ResizePreservesExistingLinks) {
  WanModel wan;
  wan.resize(2);
  wan.set_link(0, 1, {.base = 0.003, .jitter_frac = 0.0});
  wan.resize(4);
  SplitRng rng(7);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 0.0, rng), 0.003);
  EXPECT_DOUBLE_EQ(wan.sample(0, 3, 0.0, rng), 0.0);
}

TEST(Wan, RejectsOutOfRangeClusters) {
  WanModel wan;
  wan.resize(2);
  EXPECT_THROW(wan.set_link(0, 5, {}), ContractViolation);
  SplitRng rng(8);
  EXPECT_THROW(wan.sample(5, 0, 0.0, rng), ContractViolation);
}

TEST(Wan, MinBaseRecordsRegisteredFloors) {
  WanModel wan;
  wan.resize(3);
  wan.set_link(0, 1, {.base = 0.005, .jitter_frac = 0.1});
  // Unregistered pairs float at +inf: no coupling for the shard barrier.
  EXPECT_FALSE(std::isfinite(wan.min_base(1, 0)));
  EXPECT_FALSE(std::isfinite(wan.min_base(0, 2)));
  EXPECT_EQ(wan.min_base(0, 1), 0.005);
  // Samples never dip below the registered floor.
  SplitRng rng(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(wan.sample(0, 1, 0.01 * i, rng), 0.005);
  }
}

TEST(Wan, UpdateLinkKeepsTheFloorAndBumpsVersion) {
  WanModel wan;
  wan.resize(2);
  wan.set_link(0, 1, {.base = 0.005, .jitter_frac = 0.0});
  const std::uint64_t v0 = wan.version();
  wan.update_link(0, 1, {.base = 0.009, .jitter_frac = 0.0});
  EXPECT_GT(wan.version(), v0);
  EXPECT_EQ(wan.min_base(0, 1), 0.005);  // floor stays at registration
  SplitRng rng(10);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 0.0, rng), 0.009);
  // Dropping the base below the registered floor would let a shard observe
  // a delay under its lookahead — rejected.
  EXPECT_THROW(wan.update_link(0, 1, {.base = 0.001, .jitter_frac = 0.0}),
               ContractViolation);
}

TEST(Wan, FreezeForbidsTopologyChangesButAllowsFaults) {
  WanModel wan;
  wan.resize(2);
  wan.set_link(0, 1, {.base = 0.004, .jitter_frac = 0.0});
  wan.freeze();
  EXPECT_TRUE(wan.frozen());
  EXPECT_THROW(wan.set_link(1, 0, {.base = 0.004}), ContractViolation);
  EXPECT_THROW(wan.set_local_delay(0.001), ContractViolation);
  // Faults only ADD delay, so they stay legal after freeze — and each bumps
  // the version so cached views revalidate.
  const std::uint64_t v0 = wan.version();
  wan.add_disturbance({.from = 0, .to = 1, .start = 1.0, .end = 2.0,
                       .extra = 0.010});
  EXPECT_GT(wan.version(), v0);
  wan.add_partition({.a = 0, .b = 1, .start = 3.0, .end = 4.0});
  EXPECT_GT(wan.version(), v0 + 1);
  SplitRng rng(11);
  EXPECT_DOUBLE_EQ(wan.sample(0, 1, 1.5, rng), 0.014);
}

}  // namespace
}  // namespace l3::mesh
