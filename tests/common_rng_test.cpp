// Unit + property tests for the deterministic splittable RNG.
#include "l3/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace l3 {
namespace {

TEST(SplitRng, SameSeedSameSequence) {
  SplitRng a(42);
  SplitRng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(SplitRng, DifferentSeedsDiverge) {
  SplitRng a(1);
  SplitRng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitRng, SplitByTagIsDeterministic) {
  SplitRng root(7);
  SplitRng a = root.split("client");
  SplitRng b = SplitRng(7).split("client");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitRng, SplitIsIndependentOfParentDraws) {
  SplitRng root1(9);
  SplitRng root2(9);
  // Draw from root1 before splitting; the child must be unaffected.
  for (int i = 0; i < 50; ++i) root1.next_u64();
  SplitRng a = root1.split("x");
  SplitRng b = root2.split("x");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitRng, DifferentTagsGiveDifferentStreams) {
  SplitRng root(3);
  SplitRng a = root.split("alpha");
  SplitRng b = root.split("beta");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(SplitRng, IndexSplitsDiffer) {
  SplitRng root(5);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 32; ++i) {
    firsts.insert(root.split(i).next_u64());
  }
  EXPECT_EQ(firsts.size(), 32u);
}

TEST(SplitRng, UniformInRange) {
  SplitRng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(SplitRng, BernoulliEdgeCases) {
  SplitRng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(SplitRng, BernoulliFrequency) {
  SplitRng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(SplitRng, ExponentialMean) {
  SplitRng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(SplitRng, LognormalMedian) {
  SplitRng rng(23);
  std::vector<double> samples;
  const int n = 20001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(rng.lognormal(std::log(0.05), 0.5));
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 0.05, 0.005);
}

TEST(SplitRng, UniformIntBoundsInclusive) {
  SplitRng rng(29);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    if (v == 0) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

/// Property sweep: split streams stay deterministic across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, SplitReproducible) {
  const std::uint64_t seed = GetParam();
  SplitRng a = SplitRng(seed).split("svc").split(3);
  SplitRng b = SplitRng(seed).split("svc").split(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST_P(RngSeedSweep, NormalSymmetry) {
  SplitRng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.normal(0.0, 1.0);
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 42, 1000, 99999));

}  // namespace
}  // namespace l3
