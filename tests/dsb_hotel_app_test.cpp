// Tests for the DeathStarBench hotel-reservation model: topology, call
// graph reachability, disturbance model, and the end-to-end DSB runner.
#include "l3/dsb/hotel_app.h"

#include "l3/dsb/runner.h"
#include "l3/mesh/metric_names.h"
#include "l3/metrics/scraper.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace l3::dsb {
namespace {

TEST(ClusterLoadModel, DefaultsToNominal) {
  ClusterLoadModel model(3);
  for (mesh::ClusterId c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(model.factors(c).median, 1.0);
    EXPECT_DOUBLE_EQ(model.factors(c).tail, 1.0);
  }
}

TEST(ClusterLoadModel, RejectsSubNominalFactors) {
  ClusterLoadModel model(2);
  EXPECT_THROW(model.set_factors(0, {.median = 0.5, .tail = 1.0}),
               ContractViolation);
  EXPECT_THROW(model.set_factors(5, {}), ContractViolation);
}

TEST(PerformanceDisturber, RotatesAcrossClustersAndRecovers) {
  sim::Simulator sim;
  ClusterLoadModel model(3);
  PerformanceDisturber::Config config;
  config.period = 50.0;
  config.duration = 20.0;
  config.skip_prob = 0.0;
  PerformanceDisturber disturber(sim, model, config, SplitRng(1));
  disturber.start();

  sim.run_until(10.0);  // first window targets cluster 0
  EXPECT_GT(model.factors(0).tail, 1.0);
  EXPECT_DOUBLE_EQ(model.factors(1).tail, 1.0);

  sim.run_until(35.0);  // window over, recovery
  EXPECT_DOUBLE_EQ(model.factors(0).tail, 1.0);

  sim.run_until(60.0);  // second window targets cluster 1
  EXPECT_GT(model.factors(1).tail, 1.0);
  EXPECT_DOUBLE_EQ(model.factors(0).tail, 1.0);
  EXPECT_EQ(disturber.disturbances_started(), 2u);
}

TEST(PerformanceDisturber, TailFactorDominatesMedianFactor) {
  sim::Simulator sim;
  ClusterLoadModel model(3);
  PerformanceDisturber::Config config;
  config.skip_prob = 0.0;
  PerformanceDisturber disturber(sim, model, config, SplitRng(2));
  disturber.start();
  sim.run_until(100.0);
  bool saw = false;
  for (mesh::ClusterId c = 0; c < 3; ++c) {
    if (model.factors(c).tail > 1.0) {
      EXPECT_GT(model.factors(c).tail, model.factors(c).median);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

class HotelAppTest : public ::testing::Test {
 protected:
  HotelAppTest() : rng(9), mesh(sim, rng) {
    clusters = {mesh.add_cluster("c1"), mesh.add_cluster("c2"),
                mesh.add_cluster("c3")};
  }

  sim::Simulator sim;
  SplitRng rng;
  mesh::Mesh mesh;
  std::vector<mesh::ClusterId> clusters;
};

TEST_F(HotelAppTest, DeploysEveryServiceEverywhere) {
  HotelReservationApp app(mesh, clusters, {}, rng.split("app"));
  app.deploy();
  for (const auto& service : HotelReservationApp::service_names()) {
    for (mesh::ClusterId c : clusters) {
      EXPECT_NE(mesh.find_deployment(service, c), nullptr)
          << service << "@" << c;
    }
  }
  // Eight application microservices + caches and databases.
  EXPECT_EQ(HotelReservationApp::service_names().size(), 17u);
}

TEST_F(HotelAppTest, WarmRoutesCreatesSplitsForMeshCallees) {
  HotelReservationApp app(mesh, clusters, {}, rng.split("app"));
  app.deploy();
  app.warm_routes();
  for (mesh::ClusterId c : clusters) {
    for (const auto& callee : HotelReservationApp::callee_names()) {
      EXPECT_NE(mesh.find_split(c, callee), nullptr) << callee;
    }
    // Stateful tiers are NOT mesh-routed.
    EXPECT_EQ(mesh.find_split(c, "mongodb-user"), nullptr);
    EXPECT_EQ(mesh.find_split(c, "memcached-rate"), nullptr);
  }
}

TEST_F(HotelAppTest, FrontendRequestTraversesCallGraph) {
  HotelReservationApp app(mesh, clusters, {}, rng.split("app"));
  app.deploy();
  app.warm_routes();
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    mesh.find_deployment("frontend", clusters[0])
        ->handle(0, [&](const mesh::Outcome& o) {
          EXPECT_TRUE(o.success);
          ++completed;
        });
  }
  sim.run_until(60.0);
  EXPECT_EQ(completed, 200);
  // The mix must have reached both the search path and the user path.
  std::uint64_t search_handled = 0;
  std::uint64_t user_handled = 0;
  for (mesh::ClusterId c : clusters) {
    search_handled += mesh.find_deployment("search", c)->completed();
    user_handled += mesh.find_deployment("user", c)->completed();
  }
  EXPECT_GT(search_handled, 50u);  // ~60 % of 200
  EXPECT_GT(user_handled, 5u);     // login + reserve ≈ 11 %
  // And the stateful tiers got local traffic.
  std::uint64_t mongo = 0;
  for (mesh::ClusterId c : clusters) {
    mongo += mesh.find_deployment("mongodb-geo", c)->completed();
  }
  EXPECT_GT(mongo, 0u);
}

TEST_F(HotelAppTest, FailuresPropagateUpTheGraph) {
  HotelAppConfig config;
  config.success_rate = 0.95;  // every hop can fail
  HotelReservationApp app(mesh, clusters, config, rng.split("app"));
  app.deploy();
  app.warm_routes();
  int failures = 0;
  const int total = 500;
  for (int i = 0; i < total; ++i) {
    mesh.find_deployment("frontend", clusters[0])
        ->handle(0, [&](const mesh::Outcome& o) {
          if (!o.success) ++failures;
        });
  }
  sim.run_until(120.0);
  // A search request touches ≥4 sampling points; end-to-end success is
  // well below 95 %.
  EXPECT_GT(failures, total / 20);
}

TEST(DsbRunner, ProducesPlausibleLatencies) {
  DsbRunnerConfig config;
  config.warmup = 20.0;
  config.duration = 60.0;
  config.rps = 50.0;
  const auto r = run_hotel_reservation(workload::PolicyKind::kRoundRobin,
                                       config);
  EXPECT_NEAR(static_cast<double>(r.requests), 3000.0, 60.0);
  EXPECT_GT(r.summary.latency.p50, 0.005);  // several hops of compute + net
  EXPECT_LT(r.summary.latency.p50, 0.200);
  EXPECT_GT(r.summary.latency.p99, r.summary.latency.p50);
  EXPECT_DOUBLE_EQ(r.summary.success_rate, 1.0);
  EXPECT_EQ(r.scenario, "hotel-reservation");
}

TEST(DsbRunner, DeterministicForSameSeed) {
  DsbRunnerConfig config;
  config.warmup = 10.0;
  config.duration = 30.0;
  config.rps = 30.0;
  const auto a = run_hotel_reservation(workload::PolicyKind::kL3, config);
  const auto b = run_hotel_reservation(workload::PolicyKind::kL3, config);
  EXPECT_DOUBLE_EQ(a.summary.latency.p99, b.summary.latency.p99);
  EXPECT_EQ(a.requests, b.requests);
}

}  // namespace
}  // namespace l3::dsb
