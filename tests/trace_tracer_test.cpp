// Tests for the Tracer: sampling modes (off / ratio / tail-triggered),
// buffer bounding, the per-trace span cap, and span parent/child integrity
// across a DeathStarBench-style fan-out over a multi-cluster mesh.
#include "l3/trace/tracer.h"

#include "l3/dsb/behaviors.h"
#include "l3/dsb/disturbance.h"
#include "l3/mesh/mesh.h"
#include "l3/sim/simulator.h"
#include "l3/workload/client.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

namespace l3::trace {
namespace {

TEST(Tracer, OffModeRecordsNothingAfterOneBranch) {
  sim::Simulator sim;
  Tracer tracer(sim, TracerConfig{});  // sampling = kOff
  EXPECT_FALSE(tracer.enabled());
  const SpanContext root = tracer.start_trace("req", "c1", "api");
  EXPECT_FALSE(root.sampled());
  // Child operations on an unsampled context are no-ops.
  const SpanContext child =
      tracer.start_span(root, SpanKind::kProxy, "p", "c1", "api");
  EXPECT_FALSE(child.sampled());
  tracer.add_span(root, SpanKind::kWan, "w", "c1", "api", 0.0, 1.0);
  tracer.end_span(child);
  tracer.end_trace(root);
  EXPECT_EQ(tracer.started(), 0u);
  EXPECT_EQ(tracer.kept(), 0u);
  EXPECT_EQ(tracer.pending_count(), 0u);
  EXPECT_TRUE(tracer.traces().empty());
}

TEST(Tracer, RatioSamplingKeepsApproximatelyTheConfiguredFraction) {
  sim::Simulator sim;
  TracerConfig config;
  config.sampling = SamplingMode::kRatio;
  config.ratio = 0.25;
  config.max_traces = 2000;
  Tracer tracer(sim, config, /*seed=*/3);
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const SpanContext root = tracer.start_trace("req", "c1", "api");
    if (root.sampled()) tracer.end_trace(root);
  }
  EXPECT_EQ(tracer.started(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(tracer.kept() + tracer.sampled_out(),
            static_cast<std::uint64_t>(n));
  // ~250 expected; allow a generous band for the fixed seed.
  EXPECT_GT(tracer.kept(), 150u);
  EXPECT_LT(tracer.kept(), 350u);
  EXPECT_EQ(tracer.traces().size(), tracer.kept());
  EXPECT_EQ(tracer.pending_count(), 0u);
}

TEST(Tracer, TailModeKeepsOnlySlowTraces) {
  sim::Simulator sim;
  TracerConfig config;
  config.sampling = SamplingMode::kTail;
  config.tail_threshold = 0.100;
  Tracer tracer(sim, config);

  // Fast trace: 50 ms < threshold → dropped.
  const SpanContext fast = tracer.start_trace("fast", "c1", "api");
  ASSERT_TRUE(fast.sampled());
  sim.schedule_at(0.050, [&] { tracer.end_trace(fast); });
  // Slow trace: 150 ms >= threshold → kept.
  SpanContext slow;
  sim.schedule_at(0.060, [&] { slow = tracer.start_trace("slow", "c1", "api"); });
  sim.schedule_at(0.210, [&] { tracer.end_trace(slow); });
  // Boundary: exactly the threshold → kept (>=).
  SpanContext edge;
  sim.schedule_at(0.300, [&] { edge = tracer.start_trace("edge", "c1", "api"); });
  sim.schedule_at(0.400, [&] { tracer.end_trace(edge); });
  sim.run_until(1.0);

  EXPECT_EQ(tracer.dropped_fast(), 1u);
  EXPECT_EQ(tracer.kept(), 2u);
  ASSERT_EQ(tracer.traces().size(), 2u);
  EXPECT_EQ(tracer.traces()[0].root_name, "slow");
  EXPECT_EQ(tracer.traces()[1].root_name, "edge");
  EXPECT_DOUBLE_EQ(tracer.traces()[0].latency, 0.150);
}

TEST(Tracer, CompletedBufferIsBounded) {
  sim::Simulator sim;
  TracerConfig config;
  config.sampling = SamplingMode::kRatio;
  config.max_traces = 4;
  Tracer tracer(sim, config);
  for (int i = 0; i < 10; ++i) {
    const SpanContext root = tracer.start_trace("req", "c1", "api");
    tracer.end_trace(root);
  }
  EXPECT_EQ(tracer.traces().size(), 4u);
  EXPECT_EQ(tracer.kept(), 10u);
  EXPECT_EQ(tracer.evicted(), 6u);
  // The survivors are the newest four.
  EXPECT_EQ(tracer.traces().front().trace_id, 7u);
  EXPECT_EQ(tracer.traces().back().trace_id, 10u);
}

TEST(Tracer, SpanCapDropsExcessChildren) {
  sim::Simulator sim;
  TracerConfig config;
  config.sampling = SamplingMode::kRatio;
  config.max_spans_per_trace = 3;  // root + 2 children
  Tracer tracer(sim, config);
  const SpanContext root = tracer.start_trace("req", "c1", "api");
  const SpanContext a =
      tracer.start_span(root, SpanKind::kProxy, "a", "c1", "api");
  EXPECT_TRUE(a.sampled());
  tracer.add_span(root, SpanKind::kWan, "b", "c1", "api", 0.0, 0.0);
  // Cap reached: further children are dropped, not recorded.
  const SpanContext c =
      tracer.start_span(root, SpanKind::kService, "c", "c1", "api");
  EXPECT_FALSE(c.sampled());
  tracer.add_span(root, SpanKind::kWan, "d", "c1", "api", 0.0, 0.0);
  EXPECT_EQ(tracer.dropped_spans(), 2u);
  tracer.end_span(a);
  tracer.end_trace(root);
  ASSERT_EQ(tracer.traces().size(), 1u);
  EXPECT_EQ(tracer.traces()[0].spans.size(), 3u);
}

TEST(Tracer, ClientTimeoutTruncatesOpenSpans) {
  sim::Simulator sim;
  TracerConfig config;
  config.sampling = SamplingMode::kRatio;
  Tracer tracer(sim, config);
  const SpanContext root = tracer.start_trace("req", "c1", "api");
  const SpanContext server =
      tracer.start_span(root, SpanKind::kService, "server", "c2", "api");
  // The client gives up at t=1 while the server span is still open.
  sim.schedule_at(1.0, [&] { tracer.end_trace(root, SpanStatus::kTimeout); });
  // A late end_span must not resurrect or corrupt the finalised trace.
  sim.schedule_at(2.0, [&] { tracer.end_span(server, SpanStatus::kOk); });
  sim.run_until(3.0);

  ASSERT_EQ(tracer.traces().size(), 1u);
  const TraceRecord& trace = tracer.traces()[0];
  EXPECT_EQ(trace.status, SpanStatus::kTimeout);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_TRUE(trace.spans[1].truncated);
  EXPECT_DOUBLE_EQ(trace.spans[1].end, 1.0);
  EXPECT_EQ(tracer.pending_count(), 0u);
}

// --- fan-out integration --------------------------------------------------

/// Builds a two-cluster mesh with a DSB-style call graph:
/// frontend → {search, profile} in parallel, search → geo (local).
/// The client calls `frontend` through the mesh, so the trace must contain
/// proxy/WAN/server spans across both clusters.
class FanOutTrace : public ::testing::Test {
 protected:
  void run(SamplingMode mode) {
    sim::Simulator sim;
    SplitRng rng(11);
    mesh::MeshConfig mc;
    mc.request_timeout = 5.0;
    mesh::Mesh mesh(sim, rng.split("mesh"), mc);
    const auto c1 = mesh.add_cluster("c1");
    const auto c2 = mesh.add_cluster("c2");
    mesh.wan().set_symmetric(c1, c2, {.base = 0.005, .jitter_frac = 0.1});

    dsb::ClusterLoadModel load(2);
    const dsb::ServiceProfile profile;
    for (const auto c : {c1, c2}) {
      mesh.deploy("geo", c, {},
                  std::make_unique<dsb::StagedBehavior>(
                      profile, load, 1.0, std::vector<dsb::Stage>{}));
      mesh.deploy("search", c, {},
                  std::make_unique<dsb::StagedBehavior>(
                      profile, load, 1.0,
                      std::vector<dsb::Stage>{{{.service = "geo",
                                                .local = true}}}));
      mesh.deploy("profile", c, {},
                  std::make_unique<dsb::StagedBehavior>(
                      profile, load, 1.0, std::vector<dsb::Stage>{}));
      mesh.deploy("frontend", c, {},
                  std::make_unique<dsb::StagedBehavior>(
                      profile, load, 1.0,
                      std::vector<dsb::Stage>{{{.service = "search"},
                                               {.service = "profile"}}}));
    }
    for (const auto c : {c1, c2}) {
      for (const char* svc : {"frontend", "search", "profile"}) {
        mesh.proxy(c, svc);
      }
    }

    TracerConfig config;
    config.sampling = mode;
    config.max_traces = 512;
    tracer_ = std::make_unique<Tracer>(sim, config);
    mesh.set_tracer(tracer_.get());

    workload::OpenLoopClient client(
        mesh, c1, "frontend", [](SimTime) { return 50.0; }, rng.split("cl"));
    client.start(0.0, 2.0);
    sim.run_until(10.0);
    completed_ = client.completed();
  }

  std::unique_ptr<Tracer> tracer_;
  std::uint64_t completed_ = 0;
};

TEST_F(FanOutTrace, SpanTreesAreWellFormedAcrossTheFanOut) {
  run(SamplingMode::kRatio);
  ASSERT_GT(completed_, 0u);
  EXPECT_EQ(tracer_->traces().size(), completed_);
  EXPECT_EQ(tracer_->pending_count(), 0u);

  bool saw_multi_cluster = false;
  for (const TraceRecord& trace : tracer_->traces()) {
    ASSERT_FALSE(trace.spans.empty());
    // Root first, parented to nothing.
    EXPECT_EQ(trace.spans[0].parent_id, 0u);
    EXPECT_EQ(trace.spans[0].kind, SpanKind::kClient);

    std::set<std::uint64_t> ids;
    for (const Span& span : trace.spans) ids.insert(span.span_id);
    EXPECT_EQ(ids.size(), trace.spans.size());  // unique ids

    std::set<std::string> clusters;
    std::map<SpanKind, int> kinds;
    for (std::size_t i = 1; i < trace.spans.size(); ++i) {
      const Span& span = trace.spans[i];
      // Every child's parent is a span of the same record.
      EXPECT_TRUE(ids.count(span.parent_id) != 0)
          << "orphan span " << span.name;
      // Children start no earlier than the root.
      EXPECT_GE(span.start, trace.spans[0].start - 1e-12);
      EXPECT_FALSE(span.truncated) << span.name;
      clusters.insert(span.cluster);
      kinds[span.kind] += 1;
    }
    // The frontend call itself plus 2 fan-out mesh calls → >= 3 proxy
    // spans, each with 2 WAN transits and a server span; geo adds a local
    // (non-proxy) server span.
    EXPECT_GE(kinds[SpanKind::kProxy], 3);
    EXPECT_GE(kinds[SpanKind::kWan], 6);
    EXPECT_GE(kinds[SpanKind::kService], 4);
    if (clusters.size() > 1) saw_multi_cluster = true;
  }
  // With equal initial weights, some requests must have crossed clusters.
  EXPECT_TRUE(saw_multi_cluster);
}

TEST_F(FanOutTrace, OffModeLeavesNoTraces) {
  run(SamplingMode::kOff);
  ASSERT_GT(completed_, 0u);
  EXPECT_TRUE(tracer_->traces().empty());
  EXPECT_EQ(tracer_->started(), 0u);
  EXPECT_EQ(tracer_->pending_count(), 0u);
}

}  // namespace
}  // namespace l3::trace
