// Tests for the Prometheus text exposition of a Registry.
#include "l3/metrics/exposition.h"

#include <gtest/gtest.h>

namespace l3::metrics {
namespace {

TEST(Exposition, CountersAndGauges) {
  Registry registry;
  registry.counter("requests_total", {{"dst", "c1"}}).add(42.0);
  registry.gauge("inflight", {}).set(7.0);
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("requests_total{dst=\"c1\"} 42"), std::string::npos);
  EXPECT_NE(text.find("inflight 7"), std::string::npos);
}

TEST(Exposition, HistogramBucketsAreCumulativeWithInf) {
  Registry registry;
  const std::vector<double> bounds = {0.1, 0.2};
  auto& h = registry.histogram("latency", {{"svc", "api"}}, &bounds);
  h.record(0.05);
  h.record(0.15);
  h.record(5.0);
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("latency_bucket{svc=\"api\",le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_bucket{svc=\"api\",le=\"0.2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("latency_bucket{svc=\"api\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_count{svc=\"api\"} 3"), std::string::npos);
}

TEST(Exposition, MultipleLabelsQuoted) {
  Registry registry;
  registry.counter("m", {{"b", "2"}, {"a", "1"}}).increment();
  const std::string text = exposition_text(registry);
  // Labels come out sorted (series-key order) and quoted.
  EXPECT_NE(text.find("m{a=\"1\",b=\"2\"} 1"), std::string::npos);
}

TEST(Exposition, EmptyRegistryEmptyOutput) {
  Registry registry;
  EXPECT_TRUE(exposition_text(registry).empty());
}

namespace {
std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}
}  // namespace

TEST(Exposition, TypeCommentOncePerFamily) {
  Registry registry;
  registry.counter("requests_total", {{"dst", "c1"}}).increment();
  registry.counter("requests_total", {{"dst", "c2"}}).increment();
  registry.gauge("inflight", {}).set(1.0);
  const std::vector<double> bounds = {0.1};
  registry.histogram("latency", {}, &bounds).record(0.05);
  const std::string text = exposition_text(registry);
  EXPECT_EQ(count_occurrences(text, "# TYPE requests_total counter"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE inflight gauge"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE latency histogram"), 1u);
  // The TYPE comment precedes the family's first sample line.
  EXPECT_LT(text.find("# TYPE requests_total counter"),
            text.find("requests_total{dst=\"c1\"}"));
}

TEST(Exposition, HistogramSumComesFromThePairedCounter) {
  Registry registry;
  const std::vector<double> bounds = {0.1, 0.2};
  auto& h = registry.histogram("latency", {{"svc", "api"}}, &bounds);
  h.record(0.05);
  h.record(0.15);
  registry.counter("latency_sum", {{"svc", "api"}}).add(0.2);
  const std::string text = exposition_text(registry);
  // Exactly one _sum line, emitted as part of the histogram family (between
  // the +Inf bucket and _count), not as a standalone counter.
  EXPECT_EQ(count_occurrences(text, "latency_sum{svc=\"api\"} 0.2"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE latency_sum counter"), 0u);
  EXPECT_LT(text.find("latency_bucket{svc=\"api\",le=\"+Inf\"}"),
            text.find("latency_sum{svc=\"api\"}"));
  EXPECT_LT(text.find("latency_sum{svc=\"api\"}"),
            text.find("latency_count{svc=\"api\"}"));
}

TEST(Exposition, SumCounterWithoutAHistogramStaysACounter) {
  Registry registry;
  registry.counter("bytes_sum", {}).add(9.0);
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("# TYPE bytes_sum counter"), std::string::npos);
  EXPECT_NE(text.find("bytes_sum 9"), std::string::npos);
}

TEST(Exposition, SumFoldingRespectsLabels) {
  Registry registry;
  const std::vector<double> bounds = {0.1};
  registry.histogram("latency", {{"svc", "api"}}, &bounds).record(0.05);
  // Different labels → no matching histogram series → ordinary counter.
  registry.counter("latency_sum", {{"svc", "auth"}}).add(3.0);
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("# TYPE latency_sum counter"), std::string::npos);
  EXPECT_NE(text.find("latency_sum{svc=\"auth\"} 3"), std::string::npos);
}

// Prometheus text format requires backslash, double-quote and newline in
// label values to be escaped (\\, \", \n). Regression: values used to be
// emitted raw, producing unparseable exposition for values containing any
// of the three.
TEST(Exposition, LabelValuesEscaped) {
  Registry registry;
  registry.counter("m", {{"path", "a\\b"}}).increment();
  registry.counter("m", {{"quote", "say \"hi\""}}).increment();
  registry.counter("m", {{"line", "top\nbottom"}}).increment();
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("m{path=\"a\\\\b\"} 1"), std::string::npos);
  EXPECT_NE(text.find("m{quote=\"say \\\"hi\\\"\"} 1"), std::string::npos);
  EXPECT_NE(text.find("m{line=\"top\\nbottom\"} 1"), std::string::npos);
  // No raw newline may survive inside a sample line: every '\n' in the
  // output must terminate a line that ends in a value, not split a label.
  EXPECT_EQ(text.find("top\nbottom"), std::string::npos);
}

TEST(Exposition, LabelValuesWithoutSpecialsUntouched) {
  Registry registry;
  registry.counter("m", {{"dst", "cluster-1"}}).increment();
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("m{dst=\"cluster-1\"} 1"), std::string::npos);
  EXPECT_EQ(text.find("\\\\"), std::string::npos);
}

TEST(Exposition, DeterministicOrder) {
  Registry a, b;
  a.counter("x", {{"i", "1"}}).increment();
  a.counter("x", {{"i", "2"}}).increment();
  b.counter("x", {{"i", "2"}}).increment();
  b.counter("x", {{"i", "1"}}).increment();
  EXPECT_EQ(exposition_text(a), exposition_text(b));
}

}  // namespace
}  // namespace l3::metrics
