// Tests for the Prometheus text exposition of a Registry.
#include "l3/metrics/exposition.h"

#include <gtest/gtest.h>

namespace l3::metrics {
namespace {

TEST(Exposition, CountersAndGauges) {
  Registry registry;
  registry.counter("requests_total", {{"dst", "c1"}}).add(42.0);
  registry.gauge("inflight", {}).set(7.0);
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("requests_total{dst=\"c1\"} 42"), std::string::npos);
  EXPECT_NE(text.find("inflight 7"), std::string::npos);
}

TEST(Exposition, HistogramBucketsAreCumulativeWithInf) {
  Registry registry;
  const std::vector<double> bounds = {0.1, 0.2};
  auto& h = registry.histogram("latency", {{"svc", "api"}}, &bounds);
  h.record(0.05);
  h.record(0.15);
  h.record(5.0);
  const std::string text = exposition_text(registry);
  EXPECT_NE(text.find("latency_bucket{svc=\"api\",le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_bucket{svc=\"api\",le=\"0.2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("latency_bucket{svc=\"api\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_count{svc=\"api\"} 3"), std::string::npos);
}

TEST(Exposition, MultipleLabelsQuoted) {
  Registry registry;
  registry.counter("m", {{"b", "2"}, {"a", "1"}}).increment();
  const std::string text = exposition_text(registry);
  // Labels come out sorted (series-key order) and quoted.
  EXPECT_NE(text.find("m{a=\"1\",b=\"2\"} 1"), std::string::npos);
}

TEST(Exposition, EmptyRegistryEmptyOutput) {
  Registry registry;
  EXPECT_TRUE(exposition_text(registry).empty());
}

TEST(Exposition, DeterministicOrder) {
  Registry a, b;
  a.counter("x", {{"i", "1"}}).increment();
  a.counter("x", {{"i", "2"}}).increment();
  b.counter("x", {{"i", "2"}}).increment();
  b.counter("x", {{"i", "1"}}).increment();
  EXPECT_EQ(exposition_text(a), exposition_text(b));
}

}  // namespace
}  // namespace l3::metrics
