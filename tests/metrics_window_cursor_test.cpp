// Property tests for the TSDB's incremental window folds. Every query the
// WindowCursor answers by advancing a cached span must be bit-identical to
// the binary-search reseed path it replaces — across randomized schedules
// of scrape-like appends, retention compactions, >10 s scrape gaps and
// non-monotone query times. The oracle is a second TimeSeriesDb fed the
// identical sample stream whose cursor is deliberately clobbered (queried
// with a different window) before every real query, forcing it down the
// binary-search path each time.
#include "l3/metrics/tsdb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace l3::metrics {
namespace {

/// Deterministic 64-bit LCG (MMIX constants) so failures reproduce.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  double uniform() {
    return static_cast<double>(next() % 1000000) / 1000000.0;
  }

 private:
  std::uint64_t state_;
};

/// Exact (bitwise-value) equality of two optional query results.
void ExpectSame(const std::optional<double>& cursor_path,
                const std::optional<double>& oracle_path, const char* what,
                double now) {
  ASSERT_EQ(cursor_path.has_value(), oracle_path.has_value())
      << what << " presence diverged at now=" << now;
  if (cursor_path.has_value()) {
    EXPECT_EQ(*cursor_path, *oracle_path)
        << what << " value diverged at now=" << now;
  }
}

TEST(WindowCursorTest, ScalarQueriesMatchBinarySearchOracle) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Lcg rng(seed);
    TimeSeriesDb live(30.0);    // queried monotonically: cursor advances
    TimeSeriesDb oracle(30.0);  // cursor clobbered: always binary search
    const SeriesId lc = live.series("c");
    const SeriesId oc = oracle.series("c");
    const SimDuration window = 10.0;
    double t = 0.0;
    double value = 0.0;
    double last_now = 0.0;
    int queries = 0;
    for (int step = 0; step < 500; ++step) {
      switch (rng.below(8)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // scrape-like append (counter pattern: monotone value)
          t += 0.5 + 5.0 * rng.uniform();
          value += 10.0 * rng.uniform();
          live.append(lc, t, value);
          oracle.append(oc, t, value);
          break;
        }
        case 4: {  // scrape gap longer than the 10 s staleness window
          t += 10.0 + 10.0 * rng.uniform();
          break;
        }
        case 5: {  // retention sweep on both stores
          live.compact(t);
          oracle.compact(t);
          break;
        }
        default: {  // query batch
          double now = t + rng.uniform();
          if (rng.below(8) == 0) {
            // Non-monotone now: both sides must take the reseed path and
            // still agree.
            now = std::max(0.0, last_now - 2.0);
          }
          last_now = std::max(last_now, now);
          // Clobber the oracle's cursor so its next same-window query
          // rebuilds from binary search.
          (void)oracle.last(oc, 2.0 * window, now);
          ExpectSame(live.rate(lc, window, now), oracle.rate(oc, window, now),
                     "rate", now);
          (void)oracle.last(oc, 2.0 * window, now);
          ExpectSame(live.increase(lc, window, now),
                     oracle.increase(oc, window, now), "increase", now);
          (void)oracle.last(oc, 2.0 * window, now);
          ExpectSame(live.avg(lc, window, now), oracle.avg(oc, window, now),
                     "avg", now);
          (void)oracle.last(oc, 2.0 * window, now);
          ExpectSame(live.last(lc, window, now), oracle.last(oc, window, now),
                     "last", now);
          ++queries;
        }
      }
    }
    EXPECT_GT(queries, 50);
    // The live store must actually have exercised the cursor fast path.
    EXPECT_GT(live.cursor_hits(), 0u);
  }
}

TEST(WindowCursorTest, QuantileMatchesBinarySearchOracle) {
  const std::vector<double> bounds = {0.1, 0.5, 1.0};
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    Lcg rng(seed);
    TimeSeriesDb live(30.0);
    TimeSeriesDb oracle(30.0);
    const HistogramId lh = live.histogram_series("h");
    const HistogramId oh = oracle.histogram_series("h");
    const SimDuration window = 10.0;
    double t = 0.0;
    std::vector<double> cum(bounds.size() + 1, 0.0);
    double last_now = 0.0;
    for (int step = 0; step < 400; ++step) {
      switch (rng.below(8)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // cumulative bucket row grows monotonically
          t += 0.5 + 5.0 * rng.uniform();
          for (std::size_t b = 0; b < cum.size(); ++b) {
            cum[b] += static_cast<double>(rng.below(5));
          }
          for (std::size_t b = 1; b < cum.size(); ++b) {
            cum[b] = std::max(cum[b], cum[b - 1]);
          }
          live.append_histogram(lh, t, bounds, cum);
          oracle.append_histogram(oh, t, bounds, cum);
          break;
        }
        case 4: {
          t += 10.0 + 10.0 * rng.uniform();
          break;
        }
        case 5: {
          live.compact(t);
          oracle.compact(t);
          break;
        }
        default: {
          double now = t + rng.uniform();
          if (rng.below(8) == 0) now = std::max(0.0, last_now - 2.0);
          last_now = std::max(last_now, now);
          for (const double q : {0.5, 0.99}) {
            (void)oracle.quantile(oh, q, 2.0 * window, now);
            ExpectSame(live.quantile(lh, q, window, now),
                       oracle.quantile(oh, q, window, now), "quantile", now);
          }
        }
      }
    }
    EXPECT_GT(live.cursor_hits(), 0u);
  }
}

TEST(WindowCursorTest, StalenessBoundaryIsInclusive) {
  // A sample at exactly now - window is inside the window — on both the
  // reseed path (first query) and the cursor-advance path (second query).
  TimeSeriesDb db;
  const SeriesId id = db.series("s");
  db.append(id, 5.0, 42.0);
  ASSERT_TRUE(db.last(id, 10.0, 14.0).has_value());  // reseed
  const auto boundary = db.last(id, 10.0, 15.0);     // cursor advance
  ASSERT_TRUE(boundary.has_value());
  EXPECT_EQ(*boundary, 42.0);
  // One step past the boundary the sample has aged out.
  EXPECT_FALSE(db.last(id, 10.0, 15.0 + 1e-9).has_value());
}

TEST(WindowCursorTest, HitAndRebuildCounters) {
  TimeSeriesDb db;
  const SeriesId id = db.series("s");
  for (int i = 0; i < 5; ++i) db.append(id, 5.0 * (i + 1), double(i));

  EXPECT_EQ(db.cursor_hits(), 0u);
  EXPECT_EQ(db.cursor_rebuilds(), 0u);

  (void)db.last(id, 10.0, 26.0);  // first query: reseed
  EXPECT_EQ(db.cursor_rebuilds(), 1u);
  EXPECT_EQ(db.cursor_hits(), 0u);

  (void)db.last(id, 10.0, 26.0);  // same now: hit
  (void)db.last(id, 10.0, 31.0);  // monotone advance: hit
  EXPECT_EQ(db.cursor_hits(), 2u);
  EXPECT_EQ(db.cursor_rebuilds(), 1u);

  (void)db.last(id, 20.0, 31.0);  // window change: rebuild
  EXPECT_EQ(db.cursor_rebuilds(), 2u);

  (void)db.last(id, 20.0, 28.0);  // now went backwards: rebuild
  EXPECT_EQ(db.cursor_rebuilds(), 3u);

  (void)db.last(id, 20.0, 28.0);  // steady again: hit
  EXPECT_EQ(db.cursor_hits(), 3u);
}

TEST(WindowCursorTest, CursorSurvivesRetentionTrim) {
  // Cursors hold absolute sequence numbers, so dropping old samples (which
  // shifts ring indices) must not re-point an established cursor.
  TimeSeriesDb db(20.0);
  const SeriesId id = db.series("s");
  TimeSeriesDb oracle(20.0);
  const SeriesId oid = oracle.series("s");
  for (int i = 1; i <= 40; ++i) {
    const double t = 2.5 * i;
    db.append(id, t, double(i));
    oracle.append(oid, t, double(i));
    const auto got = db.avg(id, 10.0, t);  // keeps the cursor warm
    (void)oracle.last(oid, 5.0, t);        // clobber
    const auto want = oracle.avg(oid, 10.0, t);
    ASSERT_EQ(got.has_value(), want.has_value()) << "t=" << t;
    if (got) {
      EXPECT_EQ(*got, *want) << "t=" << t;
    }
    if (i % 7 == 0) {
      db.compact(t);
      oracle.compact(t);
    }
  }
  EXPECT_GT(db.cursor_hits(), 0u);
}

}  // namespace
}  // namespace l3::metrics
