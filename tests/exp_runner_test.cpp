// Tests for the experiment harness: grid indexing, coordinate-derived
// seeds, the jobs-invariance guarantee (identical serialized output for any
// worker count) and error propagation out of worker threads.
#include "l3/exp/report.h"
#include "l3/exp/runner.h"
#include "l3/exp/spec.h"
#include "l3/workload/scenarios.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

namespace l3::exp {
namespace {

ExperimentSpec small_grid() {
  workload::RunnerConfig config;
  config.duration = 30.0;
  return scenario_grid(
      "test-grid", {workload::make_scenario1()},
      {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kL3}, config,
      2);
}

std::string serialize(const ExperimentSpec& spec,
                      const std::vector<CellResult>& results) {
  Report report("test");
  report.add_grid(spec, results);
  std::ostringstream out;
  report.write(out);
  return out.str();
}

TEST(ExperimentSpecTest, IndexOfAndCellAtRoundTrip) {
  ExperimentSpec spec;
  spec.scenarios = {"a", "b", "c"};
  spec.policies = {"x", "y"};
  spec.variants = {"u", "v"};
  spec.repetitions = 3;
  std::set<std::size_t> seen;
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t p = 0; p < 2; ++p) {
      for (std::size_t v = 0; v < 2; ++v) {
        for (int r = 0; r < 3; ++r) {
          const Cell cell{s, p, v, r};
          const std::size_t index = spec.index_of(cell);
          EXPECT_LT(index, spec.cell_count());
          EXPECT_TRUE(seen.insert(index).second) << "index collision";
          const Cell back = spec.cell_at(index);
          EXPECT_EQ(back.scenario, s);
          EXPECT_EQ(back.policy, p);
          EXPECT_EQ(back.variant, v);
          EXPECT_EQ(back.rep, r);
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), spec.cell_count());
}

TEST(ExperimentSpecTest, RepetitionsOfOneCoordinateAreContiguous) {
  ExperimentSpec spec;
  spec.scenarios = {"a", "b"};
  spec.policies = {"x", "y"};
  spec.repetitions = 4;
  const std::size_t first = spec.index_of(Cell{1, 1, 0, 0});
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(spec.index_of(Cell{1, 1, 0, r}),
              first + static_cast<std::size_t>(r));
  }
}

TEST(CellSeedTest, DistinctCoordinatesGetDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t p = 0; p < 4; ++p) {
      for (std::size_t v = 0; v < 3; ++v) {
        for (int r = 0; r < 3; ++r) {
          seeds.insert(cell_seed(42, Cell{s, p, v, r}));
        }
      }
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 4u * 3u * 3u);
  // Transposed coordinates must not collide (the single-tag encoding is
  // order-sensitive, unlike chained XOR-based splits).
  EXPECT_NE(cell_seed(42, Cell{1, 2, 0, 0}), cell_seed(42, Cell{2, 1, 0, 0}));
}

TEST(CellSeedTest, DependsOnExperimentSeed) {
  const Cell cell{1, 1, 0, 1};
  EXPECT_NE(cell_seed(42, cell), cell_seed(43, cell));
}

TEST(ExperimentRunnerTest, ResultsArriveInGridOrderWithDerivedSeeds) {
  ExperimentSpec spec;
  spec.name = "order";
  spec.scenarios = {"s0", "s1"};
  spec.policies = {"p0", "p1", "p2"};
  spec.repetitions = 2;
  spec.seed = 7;
  spec.cell = [](const Cell& cell, std::uint64_t seed) -> CellData {
    CellData data;
    data.metrics = {{"seed_lo", static_cast<double>(seed & 0xffff)},
                    {"scenario", static_cast<double>(cell.scenario)}};
    return data;
  };
  const auto results = run_experiment(spec, {.jobs = 3});
  ASSERT_EQ(results.size(), spec.cell_count());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Cell expected = spec.cell_at(i);
    EXPECT_EQ(results[i].cell.scenario, expected.scenario);
    EXPECT_EQ(results[i].cell.policy, expected.policy);
    EXPECT_EQ(results[i].cell.rep, expected.rep);
    EXPECT_EQ(results[i].seed, cell_seed(7, expected));
  }
}

TEST(ExperimentRunnerTest, JobsCountDoesNotChangeSerializedResults) {
  const auto spec = small_grid();
  const auto serial = serialize(spec, run_experiment(spec, {.jobs = 1}));
  const auto parallel = serialize(spec, run_experiment(spec, {.jobs = 4}));
  EXPECT_EQ(serial, parallel);
}

TEST(ExperimentRunnerTest, MoreJobsThanCellsWorks) {
  ExperimentSpec spec;
  spec.name = "tiny";
  spec.repetitions = 2;  // 2 cells, 16 workers
  std::atomic<int> calls{0};
  spec.cell = [&calls](const Cell&, std::uint64_t) -> CellData {
    calls.fetch_add(1);
    return {};
  };
  const auto results = run_experiment(spec, {.jobs = 16});
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(calls.load(), 2);
}

TEST(ExperimentRunnerTest, CellExceptionPropagatesFromWorkers) {
  ExperimentSpec spec;
  spec.name = "boom";
  spec.scenarios = {"a", "b", "c", "d"};
  spec.repetitions = 2;
  spec.cell = [](const Cell& cell, std::uint64_t) -> CellData {
    if (cell.scenario == 2 && cell.rep == 1) {
      throw std::runtime_error("cell failed");
    }
    return {};
  };
  EXPECT_THROW(run_experiment(spec, {.jobs = 4}), std::runtime_error);
  EXPECT_THROW(run_experiment(spec, {.jobs = 1}), std::runtime_error);
}

TEST(ExperimentRunnerTest, EffectiveJobsResolvesNonPositiveToHardware) {
  EXPECT_GE(effective_jobs(0), 1);
  EXPECT_GE(effective_jobs(-3), 1);
  EXPECT_EQ(effective_jobs(5), 5);
}

TEST(ResultGridTest, AtReturnsTheRepetitionsOfOneCoordinate) {
  ExperimentSpec spec;
  spec.scenarios = {"s0", "s1"};
  spec.policies = {"p0", "p1"};
  spec.repetitions = 3;
  spec.cell = [](const Cell& cell, std::uint64_t) -> CellData {
    CellData data;
    data.metrics = {
        {"tag", static_cast<double>(cell.scenario * 100 + cell.policy * 10 +
                                    static_cast<std::size_t>(cell.rep))}};
    return data;
  };
  const auto results = run_experiment(spec, {.jobs = 2});
  const ResultGrid grid(spec, results);
  const auto cells = grid.at(1, 0);
  ASSERT_EQ(cells.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cells[static_cast<std::size_t>(r)].data.metrics[0].second,
              100.0 + r);
  }
  EXPECT_DOUBLE_EQ(mean_metric(cells, "tag"), 101.0);
  EXPECT_DOUBLE_EQ(mean_metric(cells, "absent"), 0.0);
}

}  // namespace
}  // namespace l3::exp
