// Tests for deployment elasticity and the HPA-style autoscaler.
#include "l3/mesh/autoscaler.h"

#include "l3/mesh/mesh.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::mesh {
namespace {

class AutoscalerTest : public ::testing::Test {
 protected:
  AutoscalerTest() : rng(41), mesh(sim, rng) {
    cluster = mesh.add_cluster("c1");
  }

  /// Deploys a slow service with 1 replica × 4 slots.
  ServiceDeployment& deploy_slow() {
    return mesh.deploy(
        "svc", cluster,
        {.replicas = 1, .concurrency = 4, .queue_capacity = 4096},
        std::make_unique<FixedLatencyBehavior>(0.500, 0.501));
  }

  /// Keeps `inflight` requests outstanding by re-issuing on completion.
  void sustain_load(ServiceDeployment& d, int inflight) {
    for (int i = 0; i < inflight; ++i) {
      issue(d);
    }
  }

  void issue(ServiceDeployment& d) {
    d.handle(0, [this, &d](const Outcome& outcome) {
      if (!keep_going) return;
      if (outcome.rejected) {
        // All replicas crashed/down: rejections complete synchronously, so
        // re-issuing inline would recurse without bound. Back off instead.
        sim.schedule_after(0.050, [this, &d] {
          if (keep_going) issue(d);
        });
      } else {
        issue(d);
      }
    });
  }

  sim::Simulator sim;
  SplitRng rng;
  Mesh mesh;
  ClusterId cluster = 0;
  bool keep_going = true;
};

TEST_F(AutoscalerTest, DeploymentAddAndRemoveReplica) {
  auto& d = deploy_slow();
  EXPECT_EQ(d.replica_count(), 1u);
  EXPECT_EQ(d.total_concurrency(), 4u);
  d.add_replica();
  EXPECT_EQ(d.replica_count(), 2u);
  EXPECT_EQ(d.total_concurrency(), 8u);
  EXPECT_TRUE(d.remove_idle_replica());
  EXPECT_EQ(d.replica_count(), 1u);
  EXPECT_FALSE(d.remove_idle_replica());  // never below one replica
}

TEST_F(AutoscalerTest, BusyReplicaIsNotRemoved) {
  auto& d = deploy_slow();
  d.add_replica();
  sustain_load(d, 8);  // both replicas busy
  EXPECT_FALSE(d.remove_idle_replica());
  keep_going = false;
  sim.run_until(5.0);
}

TEST_F(AutoscalerTest, ScalesUpUnderOverloadAfterProvisioningDelay) {
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 5.0;
  config.provisioning_delay = 20.0;
  config.cooldown = 10.0;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();

  sustain_load(d, 16);  // 4 slots, 16 outstanding → utilisation 4x
  sim.run_until(6.0);   // first evaluation decided to scale
  EXPECT_EQ(scaler.scale_ups(), 1u);
  EXPECT_EQ(d.replica_count(), 1u);  // still provisioning
  sim.run_until(30.0);
  EXPECT_GE(d.replica_count(), 2u);  // replica came up
  keep_going = false;
  sim.run_until(40.0);
}

TEST_F(AutoscalerTest, CooldownLimitsActionRate) {
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 1.0;
  config.cooldown = 30.0;
  config.provisioning_delay = 1.0;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 64);
  sim.run_until(25.0);
  EXPECT_EQ(scaler.scale_ups(), 1u);  // one action per cooldown window
  keep_going = false;
  sim.run_until(35.0);
}

TEST_F(AutoscalerTest, ScalesDownWhenIdle) {
  auto& d = deploy_slow();
  d.add_replica();
  d.add_replica();
  Autoscaler::Config config;
  config.interval = 5.0;
  config.cooldown = 5.0;
  config.min_replicas = 1;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sim.run_until(60.0);  // no load at all
  EXPECT_EQ(d.replica_count(), 1u);
  EXPECT_GE(scaler.scale_downs(), 2u);
}

TEST_F(AutoscalerTest, RespectsMaxReplicas) {
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 1.0;
  config.cooldown = 1.0;
  config.provisioning_delay = 0.5;
  config.max_replicas = 3;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 256);
  sim.run_until(120.0);
  EXPECT_LE(d.replica_count(), 3u);
  keep_going = false;
  sim.run_until(130.0);
}

TEST_F(AutoscalerTest, ScaleUpRestoresThroughput) {
  // Demand of ~16 concurrent requests against 4 slots: queueing dominates
  // until the autoscaler grows the deployment.
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 5.0;
  config.cooldown = 5.0;
  config.provisioning_delay = 10.0;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 16);
  sim.run_until(200.0);
  EXPECT_GE(d.replica_count(), 4u);  // grew to fit the demand
  EXPECT_LE(static_cast<double>(d.load()) /
                static_cast<double>(d.total_concurrency()),
            1.1);
  keep_going = false;
  sim.run_until(210.0);
}

TEST_F(AutoscalerTest, ProvisioningEventOutlivingAutoscalerIsAbandoned) {
  // Regression: the provisioning callback used to capture a reference into
  // watched_ (plus the autoscaler itself) and schedule_after events cannot
  // be cancelled — destroying the autoscaler before the event fired made it
  // dereference freed memory (heap-use-after-free under ASan) and still
  // grow the deployment. The callback now holds a liveness token and
  // abandons the orphaned provisioning.
  auto& d = deploy_slow();
  {
    Autoscaler::Config config;
    config.interval = 1.0;
    config.cooldown = 30.0;
    config.provisioning_delay = 20.0;
    Autoscaler scaler(sim, config);
    scaler.watch(d);
    scaler.start();
    sustain_load(d, 16);
    sim.run_until(2.0);
    EXPECT_EQ(scaler.scale_ups(), 1u);
    EXPECT_EQ(d.replica_count(), 1u);  // still provisioning
  }  // scaler destroyed; its provisioning event is still queued
  keep_going = false;
  sim.run_until(60.0);
  EXPECT_EQ(d.replica_count(), 1u);  // orphaned provisioning abandoned
}

TEST_F(AutoscalerTest, WatchDuringPendingProvisioningKeepsAccounting) {
  // watch() after start() may reallocate the watch list while a
  // provisioning callback is outstanding; the callback re-resolves its
  // entry by deployment, so the pending_up accounting must survive.
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 1.0;
  config.cooldown = 5.0;
  config.provisioning_delay = 10.0;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 32);
  sim.run_until(2.0);  // scale-up decided; provisioning in flight
  EXPECT_EQ(scaler.scale_ups(), 1u);
  for (int i = 0; i < 16; ++i) {
    auto& extra = mesh.deploy(
        "extra" + std::to_string(i), cluster,
        {.replicas = 1, .concurrency = 4, .queue_capacity = 4096},
        std::make_unique<FixedLatencyBehavior>(0.500, 0.501));
    scaler.watch(extra);
  }
  sim.run_until(15.0);
  EXPECT_GE(d.replica_count(), 2u);  // the in-flight provisioning landed
  // pending_up drained correctly: sustained overload keeps scaling.
  sim.run_until(40.0);
  EXPECT_GE(scaler.scale_ups(), 2u);
  EXPECT_GE(d.replica_count(), 3u);
  keep_going = false;
  sim.run_until(50.0);
}

TEST_F(AutoscalerTest, CrashDuringProvisioningKeepsPendingAccounting) {
  // Chaos-crash interaction: the only live replica crashes while a new one
  // is provisioning. The provisioning event fires after the crash and must
  // still add its replica and drain pending_up (capacity extrapolation
  // divides by replica_count, which includes the crashed replica).
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 1.0;
  config.cooldown = 3.0;
  // Mid-interval landing: were the replica to come up exactly on an
  // evaluation tick, the evaluator would see it idle (the crashed loop's
  // retries have not re-queued yet) and immediately scale it back down —
  // that timing artefact is not what this test is about.
  config.provisioning_delay = 10.5;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 32);
  sim.run_until(2.0);  // pending_up == 1
  EXPECT_EQ(scaler.scale_ups(), 1u);
  d.crash_replica(0);
  EXPECT_EQ(d.alive_replicas(), 0u);
  sim.run_until(13.0);  // provisioning fired after the crash
  EXPECT_EQ(d.replica_count(), 2u);  // crashed replica retained + new one
  EXPECT_EQ(d.alive_replicas(), 1u);
  d.restart_replica(0);
  // Accounting intact: continued overload can still scale further.
  sustain_load(d, 32);
  sim.run_until(40.0);
  EXPECT_GE(scaler.scale_ups(), 2u);
  keep_going = false;
  sim.run_until(50.0);
}

TEST_F(AutoscalerTest, RejectsBadConfig) {
  Autoscaler::Config config;
  config.scale_up_utilisation = 0.2;
  config.scale_down_utilisation = 0.5;
  EXPECT_THROW(Autoscaler(sim, config), ContractViolation);
}

}  // namespace
}  // namespace l3::mesh
