// Tests for deployment elasticity and the HPA-style autoscaler.
#include "l3/mesh/autoscaler.h"

#include "l3/mesh/mesh.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::mesh {
namespace {

class AutoscalerTest : public ::testing::Test {
 protected:
  AutoscalerTest() : rng(41), mesh(sim, rng) {
    cluster = mesh.add_cluster("c1");
  }

  /// Deploys a slow service with 1 replica × 4 slots.
  ServiceDeployment& deploy_slow() {
    return mesh.deploy(
        "svc", cluster,
        {.replicas = 1, .concurrency = 4, .queue_capacity = 4096},
        std::make_unique<FixedLatencyBehavior>(0.500, 0.501));
  }

  /// Keeps `inflight` requests outstanding by re-issuing on completion.
  void sustain_load(ServiceDeployment& d, int inflight) {
    for (int i = 0; i < inflight; ++i) {
      issue(d);
    }
  }

  void issue(ServiceDeployment& d) {
    d.handle(0, [this, &d](const Outcome&) {
      if (keep_going) issue(d);
    });
  }

  sim::Simulator sim;
  SplitRng rng;
  Mesh mesh;
  ClusterId cluster = 0;
  bool keep_going = true;
};

TEST_F(AutoscalerTest, DeploymentAddAndRemoveReplica) {
  auto& d = deploy_slow();
  EXPECT_EQ(d.replica_count(), 1u);
  EXPECT_EQ(d.total_concurrency(), 4u);
  d.add_replica();
  EXPECT_EQ(d.replica_count(), 2u);
  EXPECT_EQ(d.total_concurrency(), 8u);
  EXPECT_TRUE(d.remove_idle_replica());
  EXPECT_EQ(d.replica_count(), 1u);
  EXPECT_FALSE(d.remove_idle_replica());  // never below one replica
}

TEST_F(AutoscalerTest, BusyReplicaIsNotRemoved) {
  auto& d = deploy_slow();
  d.add_replica();
  sustain_load(d, 8);  // both replicas busy
  EXPECT_FALSE(d.remove_idle_replica());
  keep_going = false;
  sim.run_until(5.0);
}

TEST_F(AutoscalerTest, ScalesUpUnderOverloadAfterProvisioningDelay) {
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 5.0;
  config.provisioning_delay = 20.0;
  config.cooldown = 10.0;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();

  sustain_load(d, 16);  // 4 slots, 16 outstanding → utilisation 4x
  sim.run_until(6.0);   // first evaluation decided to scale
  EXPECT_EQ(scaler.scale_ups(), 1u);
  EXPECT_EQ(d.replica_count(), 1u);  // still provisioning
  sim.run_until(30.0);
  EXPECT_GE(d.replica_count(), 2u);  // replica came up
  keep_going = false;
  sim.run_until(40.0);
}

TEST_F(AutoscalerTest, CooldownLimitsActionRate) {
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 1.0;
  config.cooldown = 30.0;
  config.provisioning_delay = 1.0;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 64);
  sim.run_until(25.0);
  EXPECT_EQ(scaler.scale_ups(), 1u);  // one action per cooldown window
  keep_going = false;
  sim.run_until(35.0);
}

TEST_F(AutoscalerTest, ScalesDownWhenIdle) {
  auto& d = deploy_slow();
  d.add_replica();
  d.add_replica();
  Autoscaler::Config config;
  config.interval = 5.0;
  config.cooldown = 5.0;
  config.min_replicas = 1;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sim.run_until(60.0);  // no load at all
  EXPECT_EQ(d.replica_count(), 1u);
  EXPECT_GE(scaler.scale_downs(), 2u);
}

TEST_F(AutoscalerTest, RespectsMaxReplicas) {
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 1.0;
  config.cooldown = 1.0;
  config.provisioning_delay = 0.5;
  config.max_replicas = 3;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 256);
  sim.run_until(120.0);
  EXPECT_LE(d.replica_count(), 3u);
  keep_going = false;
  sim.run_until(130.0);
}

TEST_F(AutoscalerTest, ScaleUpRestoresThroughput) {
  // Demand of ~16 concurrent requests against 4 slots: queueing dominates
  // until the autoscaler grows the deployment.
  auto& d = deploy_slow();
  Autoscaler::Config config;
  config.interval = 5.0;
  config.cooldown = 5.0;
  config.provisioning_delay = 10.0;
  Autoscaler scaler(sim, config);
  scaler.watch(d);
  scaler.start();
  sustain_load(d, 16);
  sim.run_until(200.0);
  EXPECT_GE(d.replica_count(), 4u);  // grew to fit the demand
  EXPECT_LE(static_cast<double>(d.load()) /
                static_cast<double>(d.total_concurrency()),
            1.1);
  keep_going = false;
  sim.run_until(210.0);
}

TEST_F(AutoscalerTest, RejectsBadConfig) {
  Autoscaler::Config config;
  config.scale_up_utilisation = 0.2;
  config.scale_down_utilisation = 0.5;
  EXPECT_THROW(Autoscaler(sim, config), ContractViolation);
}

}  // namespace
}  // namespace l3::mesh
