// Cross-cutting property sweeps: invariants that must hold for EVERY
// scenario in the library, across seeds, and for the full pipeline.
#include "l3/common/stats.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"
#include "l3/workload/trace_behavior.h"

#include <gtest/gtest.h>

#include <cmath>

namespace l3::workload {
namespace {

ScenarioTrace make_by_index(int index, std::uint64_t seed) {
  switch (index) {
    case 0:
      return make_scenario1(seed);
    case 1:
      return make_scenario2(seed);
    case 2:
      return make_scenario3(seed);
    case 3:
      return make_scenario4(seed);
    case 4:
      return make_scenario5(seed);
    case 5:
      return make_failure1(seed);
    default:
      return make_failure2(seed);
  }
}

/// (scenario index, seed) grid.
class ScenarioSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ScenarioSweep, GeneratorInvariants) {
  const auto [index, seed] = GetParam();
  const auto trace = make_by_index(index, seed);
  EXPECT_EQ(trace.cluster_count(), 3u);
  EXPECT_EQ(trace.steps(), 600u);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      const auto& p = trace.at(c, s);
      EXPECT_GT(p.median, 0.0);
      EXPECT_GT(p.p99, p.median);
      EXPECT_LE(p.p99, 6.0);  // every scenario is capped at/below 5 s
      EXPECT_GE(p.success_rate, 0.0);
      EXPECT_LE(p.success_rate, 1.0);
      EXPECT_TRUE(std::isfinite(p.median) && std::isfinite(p.p99));
    }
  }
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    EXPECT_GE(trace.rps_at(static_cast<double>(s)), 1.0);
  }
}

TEST_P(ScenarioSweep, SameSeedIsBitwiseReproducible) {
  const auto [index, seed] = GetParam();
  const auto a = make_by_index(index, seed);
  const auto b = make_by_index(index, seed);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < a.steps(); s += 7) {
      EXPECT_EQ(a.at(c, s).median, b.at(c, s).median);
      EXPECT_EQ(a.at(c, s).p99, b.at(c, s).p99);
      EXPECT_EQ(a.at(c, s).success_rate, b.at(c, s).success_rate);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioSweep,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values<std::uint64_t>(1, 99, 31337)));

/// Mixture-sampler invariants over a parameter grid.
class MixtureSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MixtureSweep, RealisesMedianAndP99) {
  const auto [median, ratio] = GetParam();
  const TracePoint point{median, median * ratio, 1.0};
  SplitRng rng(77);
  std::vector<double> samples;
  const int n = 60000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double v = TraceReplayBehavior::sample_latency(point, rng);
    EXPECT_GT(v, 0.0);
    samples.push_back(v);
  }
  EXPECT_NEAR(percentile(samples, 0.50) / median, 1.0, 0.08);
  // The P99 lands within the slow component's spread of the target.
  EXPECT_NEAR(percentile(samples, 0.99) / point.p99, 1.0, 0.35);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MixtureSweep,
    ::testing::Combine(::testing::Values(0.003, 0.050, 0.500),
                       ::testing::Values(2.0, 5.0, 20.0)));

/// Full-pipeline invariants for every policy on a short heterogeneous run.
class PolicyPipelineSweep : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyPipelineSweep, SaneEndToEnd) {
  ScenarioTrace trace("sweep", 3, 90.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{0.020, 0.080, 1.0};
    trace.at(1, s) = TracePoint{0.080, 0.320, 0.95};
    trace.at(2, s) = TracePoint{0.040, 0.160, 1.0};
    trace.set_rps(s, 120.0);
  }
  RunnerConfig config;
  config.warmup = 30.0;
  const auto r = run_scenario(trace, GetParam(), config);
  EXPECT_EQ(r.policy, policy_name(GetParam()));
  EXPECT_GT(r.requests, 6000u);
  EXPECT_GT(r.summary.latency.p50, 0.0);
  EXPECT_GE(r.summary.latency.p99, r.summary.latency.p50);
  EXPECT_GT(r.summary.success_rate, 0.90);
  double share = 0.0;
  for (double s : r.traffic_share) {
    EXPECT_GE(s, 0.0);
    share += s;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_GT(r.weight_updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPipelineSweep,
                         ::testing::Values(PolicyKind::kRoundRobin,
                                           PolicyKind::kC3, PolicyKind::kL3,
                                           PolicyKind::kLocalityFailover));

/// The headline comparison holds across WAN delay settings: L3 never does
/// materially worse than round-robin, from co-located to far clusters.
class WanSweep : public ::testing::TestWithParam<double> {};

TEST_P(WanSweep, L3NeverMateriallyWorseThanRoundRobin) {
  ScenarioTrace trace("wan-sweep", 3, 180.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{0.030, 0.120, 1.0};
    trace.at(1, s) = TracePoint{0.150, 0.600, 1.0};
    trace.at(2, s) = TracePoint{0.030, 0.120, 1.0};
    trace.set_rps(s, 120.0);
  }
  RunnerConfig config;
  config.warmup = 50.0;
  config.wan_one_way = GetParam();
  const auto rr = run_scenario(trace, PolicyKind::kRoundRobin, config);
  const auto l3 = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_LT(l3.summary.latency.p99, rr.summary.latency.p99 * 1.05)
      << "wan=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(WanDelays, WanSweep,
                         ::testing::Values(0.0005, 0.005, 0.020, 0.070));

}  // namespace
}  // namespace l3::workload
