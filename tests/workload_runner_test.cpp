// Tests for the scenario runner (benchmark coordinator): determinism,
// warm-up handling, policy dispatch, and the trace behavior's sampling.
#include "l3/workload/runner.h"

#include "l3/workload/scenarios.h"
#include "l3/workload/trace_behavior.h"

#include <gtest/gtest.h>

namespace l3::workload {
namespace {

ScenarioTrace tiny_uniform_trace(double median, double p99, double rps) {
  ScenarioTrace trace("tiny", 3, 60.0);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      trace.at(c, s) = TracePoint{median, p99, 1.0};
    }
  }
  for (std::size_t s = 0; s < trace.steps(); ++s) trace.set_rps(s, rps);
  return trace;
}

RunnerConfig fast_config() {
  RunnerConfig config;
  config.warmup = 20.0;
  config.duration = 40.0;
  return config;
}

TEST(TraceBehavior, MixtureRealisesMedianAndP99) {
  const TracePoint point{0.050, 0.500, 1.0};
  SplitRng rng(3);
  std::vector<double> samples;
  const int n = 100000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(TraceReplayBehavior::sample_latency(point, rng));
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[n / 2], 0.050, 0.005);
  EXPECT_NEAR(samples[static_cast<int>(n * 0.99)], 0.500, 0.10);
}

TEST(TraceBehavior, MeanInsensitiveToTailMovement) {
  // The property separating tail-aware L3 from mean-based C3: multiplying
  // the P99 by 4 moves the mean by far less than 4x.
  SplitRng rng(4);
  auto mean_of = [&rng](const TracePoint& p) {
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      sum += TraceReplayBehavior::sample_latency(p, rng);
    }
    return sum / n;
  };
  const double base = mean_of({0.050, 0.250, 1.0});
  const double spiked = mean_of({0.050, 1.000, 1.0});
  EXPECT_LT(spiked / base, 1.6);
  EXPECT_GT(spiked / base, 1.05);
}

TEST(Runner, DeterministicForSameSeed) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 50.0);
  const auto a = run_scenario(trace, PolicyKind::kL3, fast_config());
  const auto b = run_scenario(trace, PolicyKind::kL3, fast_config());
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.summary.latency.p99, b.summary.latency.p99);
  EXPECT_DOUBLE_EQ(a.summary.success_rate, b.summary.success_rate);
}

// The fig topologies are RNG-coupled, so the runner keeps every cluster on
// shard 0 and extra shards idle at a +inf horizon: --shards=N must be
// byte-identical to the plain loop for every N.
TEST(Runner, ShardCountDoesNotChangeResults) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 50.0);
  const auto oracle = run_scenario(trace, PolicyKind::kL3, fast_config());
  for (const std::size_t shards : {2ul, 4ul}) {
    RunnerConfig config = fast_config();
    config.shards = shards;
    const auto got = run_scenario(trace, PolicyKind::kL3, config);
    EXPECT_EQ(got.requests, oracle.requests) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(got.summary.latency.p99, oracle.summary.latency.p99)
        << "shards=" << shards;
    EXPECT_DOUBLE_EQ(got.summary.latency.p50, oracle.summary.latency.p50);
    EXPECT_DOUBLE_EQ(got.summary.success_rate, oracle.summary.success_rate);
    EXPECT_EQ(got.traffic_share, oracle.traffic_share);
    EXPECT_EQ(got.weight_updates, oracle.weight_updates);
  }
}

// The obs contract: binding the flight recorder must not perturb the
// simulation. Identical results with profiling on and off, and the profile
// itself is deterministic across runs.
TEST(Runner, ProfilingDoesNotPerturbResults) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 50.0);
  RunnerConfig profiled = fast_config();
  profiled.profile = true;
  const auto plain = run_scenario(trace, PolicyKind::kL3, fast_config());
  const auto a = run_scenario(trace, PolicyKind::kL3, profiled);
  const auto b = run_scenario(trace, PolicyKind::kL3, profiled);

  EXPECT_EQ(plain.requests, a.requests);
  EXPECT_DOUBLE_EQ(plain.summary.latency.p99, a.summary.latency.p99);
  EXPECT_DOUBLE_EQ(plain.summary.success_rate, a.summary.success_rate);
  EXPECT_TRUE(plain.profile.empty());  // off by default

  // Deterministic digest: identical counts for identical runs.
  EXPECT_EQ(a.profile.cells, b.profile.cells);
  EXPECT_EQ(a.profile.scope_count, b.profile.scope_count);
  EXPECT_EQ(a.profile.counters, b.profile.counters);
  EXPECT_EQ(a.profile.ring_recorded, b.profile.ring_recorded);
#if L3_OBS_ENABLED
  EXPECT_FALSE(a.profile.empty());
  // The full scenario path touches at least 6 instrumented subsystems
  // (dispatch, picker rebuild, picks, tsdb, scraper, controller).
  EXPECT_GE(a.profile.active_subsystems(), 6u);
  EXPECT_GT(
      a.profile.counters[static_cast<std::size_t>(obs::CounterId::kSimEvents)],
      0u);
#endif
}

TEST(Runner, DifferentSeedsDiffer) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 50.0);
  RunnerConfig c2 = fast_config();
  c2.seed = 777;
  const auto a = run_scenario(trace, PolicyKind::kL3, fast_config());
  const auto b = run_scenario(trace, PolicyKind::kL3, c2);
  EXPECT_NE(a.summary.latency.p99, b.summary.latency.p99);
}

TEST(Runner, RequestCountMatchesRateAndDuration) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 100.0);
  const auto r = run_scenario(trace, PolicyKind::kRoundRobin, fast_config());
  // 100 RPS over the 40 s measured window (warm-up excluded).
  EXPECT_NEAR(static_cast<double>(r.requests), 4000.0, 50.0);
  EXPECT_EQ(r.policy, "round-robin");
}

TEST(Runner, TrafficSharesSumToOne) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 100.0);
  const auto r = run_scenario(trace, PolicyKind::kL3, fast_config());
  double total = 0.0;
  for (double s : r.traffic_share) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Runner, RoundRobinSplitsEvenly) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 150.0);
  const auto r = run_scenario(trace, PolicyKind::kRoundRobin, fast_config());
  for (double s : r.traffic_share) EXPECT_NEAR(s, 1.0 / 3.0, 0.05);
}

TEST(Runner, TimelineCoversMeasuredWindow) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 50.0);
  const auto r = run_scenario(trace, PolicyKind::kL3, fast_config());
  EXPECT_EQ(r.timeline.size(), 40u);  // one bucket per second
  for (const auto& b : r.timeline) EXPECT_GT(b.count, 0u);
}

TEST(Runner, WeightUpdatesHappen) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 50.0);
  const auto r = run_scenario(trace, PolicyKind::kL3, fast_config());
  // 60 s total at a 5 s control interval ≈ 12 updates.
  EXPECT_GE(r.weight_updates, 8u);
}

TEST(Runner, RepeatedRunsUseDistinctSeeds) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 50.0);
  const auto results =
      run_scenario_repeated(trace, PolicyKind::kL3, fast_config(), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].summary.latency.p99, results[1].summary.latency.p99);
}

TEST(Runner, PolicyFactoryCoversAllKinds) {
  for (const auto kind :
       {PolicyKind::kRoundRobin, PolicyKind::kC3, PolicyKind::kL3,
        PolicyKind::kLocalityFailover}) {
    const auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), policy_name(kind));
  }
}

TEST(Runner, LocalityPolicyKeepsTrafficLocal) {
  const auto trace = tiny_uniform_trace(0.020, 0.100, 100.0);
  const auto r =
      run_scenario(trace, PolicyKind::kLocalityFailover, fast_config());
  EXPECT_GT(r.traffic_share[0], 0.95);  // cluster-1 is local to the client
}

TEST(Runner, HeterogeneousLatencyFavoursFastClusterUnderL3) {
  // Cluster 1 is 5x slower than the others: L3 must send it less traffic
  // than round-robin's third.
  ScenarioTrace trace("hetero", 3, 120.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{0.250, 1.000, 1.0};
    trace.at(1, s) = TracePoint{0.050, 0.200, 1.0};
    trace.at(2, s) = TracePoint{0.050, 0.200, 1.0};
    trace.set_rps(s, 100.0);
  }
  RunnerConfig config;
  config.warmup = 40.0;
  const auto r = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_LT(r.traffic_share[0], 0.20);
}

}  // namespace
}  // namespace l3::workload
