// Tests for the L3 controller: the metrics→EWMA→policy→control-plane loop,
// §4 defaults, staleness convergence, introspection, and follower mode.
#include "l3/core/controller.h"

#include "l3/lb/l3_policy.h"
#include "l3/lb/policy.h"
#include "l3/mesh/mesh.h"
#include "l3/mesh/metric_names.h"
#include "l3/metrics/scraper.h"
#include "l3/workload/client.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::core {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : rng(21), mesh(sim, rng, make_mesh_config()) {
    c1 = mesh.add_cluster("c1");
    c2 = mesh.add_cluster("c2");
    c3 = mesh.add_cluster("c3");
  }

  static mesh::MeshConfig make_mesh_config() {
    mesh::MeshConfig config;
    config.local_delay = 0.0002;
    return config;
  }

  /// Deploys "svc" with the given per-cluster latencies and starts a
  /// scraper, controller and client.
  void start_stack(std::vector<SimDuration> medians,
                   std::unique_ptr<lb::LoadBalancingPolicy> policy,
                   ControllerConfig config = {}, double rps = 200.0,
                   double success = 1.0) {
    for (std::size_t i = 0; i < 3; ++i) {
      mesh.deploy("svc", static_cast<mesh::ClusterId>(i), {},
                  std::make_unique<mesh::FixedLatencyBehavior>(
                      medians[i], medians[i] * 4.0, success));
    }
    mesh.proxy(c1, "svc");
    scraper = std::make_unique<metrics::Scraper>(sim, tsdb);
    scraper->add_target("c1", mesh.registry(c1));
    scraper->start(5.0);
    controller = std::make_unique<L3Controller>(mesh, tsdb, c1,
                                                std::move(policy), config);
    controller->manage_all();
    controller->start();
    client = std::make_unique<workload::OpenLoopClient>(
        mesh, c1, "svc", [rps](SimTime) { return rps; }, rng.split("client"));
    client->start(0.0, 1e9);
  }

  sim::Simulator sim;
  SplitRng rng;
  mesh::Mesh mesh;
  metrics::TimeSeriesDb tsdb;
  std::unique_ptr<metrics::Scraper> scraper;
  std::unique_ptr<L3Controller> controller;
  std::unique_ptr<workload::OpenLoopClient> client;
  mesh::ClusterId c1 = 0, c2 = 0, c3 = 0;
};

TEST_F(ControllerTest, ShiftsWeightTowardFastBackend) {
  start_stack({0.020, 0.200, 0.200}, std::make_unique<lb::L3Policy>());
  sim.run_until(120.0);
  const auto weights = mesh.find_split(c1, "svc")->weights();
  EXPECT_GT(weights[0], weights[1] * 2);
  EXPECT_GT(weights[0], weights[2] * 2);
}

TEST_F(ControllerTest, RoundRobinPolicyKeepsEqualWeights) {
  start_stack({0.020, 0.200, 0.200}, std::make_unique<lb::RoundRobinPolicy>());
  sim.run_until(60.0);
  const auto weights = mesh.find_split(c1, "svc")->weights();
  EXPECT_EQ(weights[0], weights[1]);
  EXPECT_EQ(weights[1], weights[2]);
}

TEST_F(ControllerTest, EwmaDefaultsBeforeTraffic) {
  // §4: latency default 5 s, success 100 %, RPS 0.
  start_stack({0.020, 0.020, 0.020}, std::make_unique<lb::L3Policy>());
  const auto snapshot = controller->snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  ASSERT_EQ(snapshot[0].backends.size(), 3u);
  for (const auto& b : snapshot[0].backends) {
    EXPECT_DOUBLE_EQ(b.latency_p99, 5.0);
    EXPECT_DOUBLE_EQ(b.success_rate, 1.0);
    EXPECT_DOUBLE_EQ(b.rps, 0.0);
  }
}

TEST_F(ControllerTest, FiltersTrackObservedSignals) {
  start_stack({0.050, 0.050, 0.050}, std::make_unique<lb::L3Policy>());
  sim.run_until(90.0);
  const auto snapshot = controller->snapshot();
  for (const auto& b : snapshot[0].backends) {
    EXPECT_LT(b.latency_p99, 1.0);   // converged from 5 s default
    EXPECT_GT(b.latency_p99, 0.02);  // to something near the true ~0.2 s P99
    EXPECT_GT(b.rps, 20.0);          // ~200/3 per backend
    EXPECT_NEAR(b.success_rate, 1.0, 0.01);
  }
  EXPECT_NEAR(snapshot[0].total_rps_last, 200.0, 30.0);
}

TEST_F(ControllerTest, StaleBackendConvergesTowardDefault) {
  ControllerConfig config;
  start_stack({0.020, 0.020, 0.020}, std::make_unique<lb::L3Policy>(),
              config);
  sim.run_until(60.0);
  // Cut all traffic: stop the client by running a fresh controller-only
  // phase — simplest is to stop scraping new per-backend data by stopping
  // the client. OpenLoopClient has no stop; emulate by disabling scrapes.
  // Instead: verify the converge path via a backend that gets no traffic
  // because its weight is zero.
  auto* split = mesh.find_split(c1, "svc");
  controller->set_active(false);  // freeze weights
  split->set_weights(std::vector<std::uint64_t>{1, 1, 0});  // starve backend 3
  sim.run_until(160.0);
  const auto snapshot = controller->snapshot();
  // Backend 3 has seen no traffic for ~100 s: its latency filter must have
  // converged back toward the 5 s default.
  EXPECT_GT(snapshot[0].backends[2].latency_p99, 2.0);
  // The others still track reality.
  EXPECT_LT(snapshot[0].backends[0].latency_p99, 1.0);
}

TEST_F(ControllerTest, StalenessBoundaryFreezesThenConverges) {
  // §4 degraded-metrics semantics, regression for the boundary: during a
  // scrape gap SHORTER than the staleness threshold (10 s) the filtered
  // signals freeze at their last value; from the threshold onward —
  // inclusive — they converge toward the defaults. The old `>` comparison
  // silently granted one extra frozen control tick (a 10 s gap on a 5 s
  // cadence only started converging at 15 s).
  start_stack({0.020, 0.020, 0.020}, std::make_unique<lb::L3Policy>());
  sim.run_until(62.0);  // past the tick + scrape at t = 60

  // Total scrape outage: the registry keeps counting, the TSDB goes dark.
  scraper->set_all_targets_enabled(false);

  // Tick at 65 still sees data (the 10 s query window reaches the t = 60
  // scrape); the gap starts there: frozen at 70 (gap 5), converging at 75
  // (gap 10, the inclusive boundary).
  sim.run_until(67.0);
  const double with_data = controller->snapshot()[0].backends[0].latency_p99;
  sim.run_until(72.0);
  const double frozen = controller->snapshot()[0].backends[0].latency_p99;
  EXPECT_DOUBLE_EQ(frozen, with_data) << "gap below threshold must freeze";
  sim.run_until(77.0);
  const double converging = controller->snapshot()[0].backends[0].latency_p99;
  EXPECT_GT(converging, frozen)
      << "gap at exactly the threshold must start converging to the 5 s "
         "default";

  // And with the outage lifted the filters track reality again.
  scraper->set_all_targets_enabled(true);
  sim.run_until(140.0);
  EXPECT_LT(controller->snapshot()[0].backends[0].latency_p99, 1.0);
}

TEST_F(ControllerTest, NeverScrapedBackendHoldsDefaultsWithoutSampleNoise) {
  // A split managed with no traffic at all: the staleness clock starts at
  // manage() time (last_data == 0 used to trip the threshold on the very
  // first tick) and converge-to-default must hold the filters exactly at
  // the §4 defaults without ever inventing samples.
  for (std::size_t i = 0; i < 3; ++i) {
    mesh.deploy("svc", static_cast<mesh::ClusterId>(i), {},
                std::make_unique<mesh::FixedLatencyBehavior>(0.02, 0.08));
  }
  mesh.proxy(c1, "svc");
  scraper = std::make_unique<metrics::Scraper>(sim, tsdb);
  scraper->add_target("c1", mesh.registry(c1));
  scraper->start(5.0);
  sim.run_until(50.0);
  controller = std::make_unique<L3Controller>(
      mesh, tsdb, c1, std::make_unique<lb::L3Policy>(), ControllerConfig{});
  controller->manage_all();
  controller->start();
  sim.run_until(120.0);
  const auto snapshot = controller->snapshot();
  for (const auto& backend : snapshot[0].backends) {
    EXPECT_DOUBLE_EQ(backend.latency_p99, 5.0);  // §4 defaults, untouched
    EXPECT_DOUBLE_EQ(backend.success_rate, 1.0);
    EXPECT_DOUBLE_EQ(backend.rps, 0.0);
  }
  EXPECT_GT(controller->ticks(), 0u);
}

TEST_F(ControllerTest, InactiveControllerDoesNotTouchWeights) {
  start_stack({0.020, 0.200, 0.200}, std::make_unique<lb::L3Policy>());
  controller->set_active(false);
  const auto before = mesh.find_split(c1, "svc")->generation();
  sim.run_until(60.0);
  EXPECT_EQ(mesh.find_split(c1, "svc")->generation(), before);
  EXPECT_GT(controller->ticks(), 0u);  // still filtering
}

TEST_F(ControllerTest, IntrospectionGaugesExported) {
  start_stack({0.020, 0.100, 0.100}, std::make_unique<lb::L3Policy>());
  sim.run_until(30.0);
  auto& registry = mesh.registry(c1);
  const auto labels = mesh::metric_names::backend_labels("svc", "c1", "c1");
  EXPECT_GT(registry.gauge("l3_backend_weight", labels).value(), 0.0);
  EXPECT_GT(registry.gauge("l3_backend_latency_p99_ewma", labels).value(),
            0.0);
}

TEST_F(ControllerTest, QuantileChoiceConfigurable) {
  // §3.1: other percentiles (98th, 99.9th) are supported configurations.
  ControllerConfig config;
  config.quantile = 0.98;
  start_stack({0.020, 0.200, 0.200}, std::make_unique<lb::L3Policy>(),
              config);
  sim.run_until(90.0);
  const auto weights = mesh.find_split(c1, "svc")->weights();
  EXPECT_GT(weights[0], weights[1]);
}

TEST_F(ControllerTest, DynamicPenaltyHookReceivesFailureLatency) {
  ControllerConfig config;
  config.dynamic_penalty = true;
  double observed = -1.0;
  start_stack({0.050, 0.050, 0.050}, std::make_unique<lb::L3Policy>(),
              config, 200.0, /*success=*/0.7);
  controller->set_penalty_hook([&](double p) { observed = p; });
  sim.run_until(60.0);
  EXPECT_GT(observed, 0.0);  // failures exist → filtered failure RTT flows
  EXPECT_LT(observed, 5.0);
}

TEST_F(ControllerTest, ManageRejectsForeignSplit) {
  start_stack({0.020, 0.020, 0.020}, std::make_unique<lb::L3Policy>());
  mesh.proxy(c2, "svc");  // a cluster-2 split
  auto* foreign = mesh.find_split(c2, "svc");
  ASSERT_NE(foreign, nullptr);
  EXPECT_THROW(controller->manage(*foreign), ContractViolation);
}

TEST_F(ControllerTest, ManageAllIsIdempotent) {
  start_stack({0.020, 0.020, 0.020}, std::make_unique<lb::L3Policy>());
  controller->manage_all();
  controller->manage_all();
  EXPECT_EQ(controller->snapshot().size(), 1u);
}

}  // namespace
}  // namespace l3::core
