// Tests for the conservative-lookahead shard engine: ownership + lookahead
// tables, barrier progress, deterministic cross-shard ping-pong, the
// lookahead-violation contract, abort propagation through sync(), and the
// zero-lookahead deadlock guard.
#include "l3/sim/shard_engine.h"

#include "l3/common/assert.h"
#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace l3::sim {
namespace {

TEST(ShardEngine, OwnershipAndLookaheadTables) {
  ShardEngine engine(2);
  engine.set_cluster_owners({0, 1, 1});
  EXPECT_EQ(engine.cluster_count(), 3u);
  EXPECT_EQ(engine.owner(0), 0u);
  EXPECT_EQ(engine.owner(2), 1u);

  // Unregistered pairs are uncoupled (+inf).
  EXPECT_FALSE(std::isfinite(engine.cluster_lookahead(0, 1)));

  engine.set_cluster_lookahead(0, 1, 0.010);
  engine.set_cluster_lookahead(0, 2, 0.004);
  EXPECT_EQ(engine.cluster_lookahead(0, 1), 0.010);
  // Shard lookahead is the min over the owned cluster pairs.
  EXPECT_EQ(engine.shard_lookahead(0, 1), 0.004);
  EXPECT_FALSE(std::isfinite(engine.shard_lookahead(1, 0)));
}

TEST(ShardEngine, PostFromForeignClusterThrows) {
  ShardEngine engine(2);
  engine.set_cluster_owners({0, 1});
  Simulator sim;
  ShardRouter& router = engine.router(0);
  router.attach(sim);
  // Cluster 1 is owned by shard 1; shard 0's router must refuse to forge
  // its origin key.
  EXPECT_THROW(router.post(1, 0, 1.0, [] {}), ContractViolation);
}

TEST(ShardEngine, ZeroCrossShardLookaheadIsRejected) {
  ShardEngine engine(2);
  engine.set_cluster_owners({0, 1});
  engine.set_cluster_lookahead(0, 1, 0.0);  // would deadlock the barrier
  EXPECT_THROW(engine.run([](std::size_t) {}), ContractViolation);
}

TEST(ShardEngine, LookaheadViolatingPostThrows) {
  ShardEngine engine(2);
  engine.set_cluster_owners({0, 1});
  engine.set_cluster_lookahead(0, 1, 0.010);
  engine.set_cluster_lookahead(1, 0, 0.010);
  EXPECT_THROW(
      engine.run([&](std::size_t shard) {
        Simulator sim;
        ShardRouter& router = engine.router(shard);
        router.attach(sim);
        if (shard == 0) {
          sim.schedule_at(0.0, [&router] {
            router.post(0, 1, 0.005, [] {});  // below the 10 ms floor
          });
        }
        router.run_until(0.1);
      }),
      ContractViolation);
}

TEST(ShardEngine, BodyExceptionPropagatesThroughSync) {
  ShardEngine engine(2);
  engine.set_cluster_owners({0, 1});
  std::atomic<bool> peer_unblocked{false};
  EXPECT_ANY_THROW(engine.run([&](std::size_t shard) {
    if (shard == 0) throw std::runtime_error("boom");
    engine.sync();  // must throw instead of deadlocking
    peer_unblocked = true;
  }));
  EXPECT_FALSE(peer_unblocked.load());
}

TEST(ShardEngine, UncoupledShardsRunToCompletionIndependently) {
  ShardEngine engine(3);
  engine.set_cluster_owners({0, 1, 2});  // no lookaheads: fully uncoupled
  std::vector<int> counts(3, 0);
  engine.run([&](std::size_t shard) {
    Simulator sim;
    ShardRouter& router = engine.router(shard);
    router.attach(sim);
    for (int i = 0; i < 5; ++i) {
      sim.schedule_at(0.1 * i, [&counts, shard] { ++counts[shard]; });
    }
    router.run_until(1.0);
    EXPECT_EQ(sim.now(), 1.0);
  });
  for (int c : counts) EXPECT_EQ(c, 5);
}

// Two clusters ping-ponging a token with data attached: the receive order
// (and the token's mutation history) must match the single-shard run
// exactly, including the tie at the end where both sides deliver at the
// same instant.
struct PingState {
  std::vector<std::pair<SimTime, std::uint64_t>> received;
};

std::vector<PingState> run_pingpong(std::size_t shards) {
  ShardEngine engine(shards);
  std::vector<std::size_t> owners = {0, shards > 1 ? 1ul : 0ul};
  engine.set_cluster_owners(owners);
  engine.set_cluster_lookahead(0, 1, 0.010);
  engine.set_cluster_lookahead(1, 0, 0.010);
  std::vector<PingState> states(2);
  engine.run([&](std::size_t shard) {
    Simulator sim;
    ShardRouter& router = engine.router(shard);
    router.attach(sim);
    struct Bouncer {
      ShardEngine* eng;
      std::vector<PingState>* states;
      std::uint32_t cluster;
      std::uint64_t token;
      void operator()() {
        ShardRouter& rt = eng->router_for_cluster(cluster);
        (*states)[cluster].received.emplace_back(rt.sim().now(), token);
        if (token >= 20) return;
        const std::uint32_t dest = 1 - cluster;
        rt.post(cluster, dest, rt.sim().now() + 0.010,
                Bouncer{eng, states, dest, token * 3 + cluster + 1});
      }
    };
    if (owners[0] == shard) {
      sim.schedule_at(0.0, Bouncer{&engine, &states, 0, 1});
      // A deliberate same-time tie against the bounced token's arrival:
      // delivered keys must order it identically at every shard count.
      sim.schedule_at(0.0, [&engine, st = &states] {
        ShardRouter& rt = engine.router_for_cluster(0);
        rt.post(0, 1, 0.010, [st, eng = &rt.engine()] {
          (*st)[1].received.emplace_back(
              eng->router_for_cluster(1).sim().now(), 999);
        });
      });
    }
    router.run_until(1.0);
  });
  return states;
}

TEST(ShardEngine, PingPongMatchesSingleShardRun) {
  const auto oracle = run_pingpong(1);
  EXPECT_FALSE(oracle[0].received.empty());
  EXPECT_FALSE(oracle[1].received.empty());
  const auto sharded = run_pingpong(2);
  EXPECT_EQ(sharded[0].received, oracle[0].received);
  EXPECT_EQ(sharded[1].received, oracle[1].received);
}

}  // namespace
}  // namespace l3::sim
