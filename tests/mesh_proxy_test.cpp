// Tests for the proxy hot path: weighted routing shares, metric export,
// in-flight accounting, timeouts, and health-based exclusion.
#include "l3/mesh/mesh.h"

#include "l3/mesh/metric_names.h"
#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::mesh {
namespace {

namespace mn = metric_names;

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : rng(11), mesh(sim, rng, make_config()) {
    c1 = mesh.add_cluster("c1");
    c2 = mesh.add_cluster("c2");
    c3 = mesh.add_cluster("c3");
  }

  static MeshConfig make_config() {
    MeshConfig config;
    config.local_delay = 0.0;
    config.local_jitter_frac = 0.0;
    config.health_probe_interval = 0.0;  // disabled unless a test enables it
    return config;
  }

  void deploy_everywhere(SimDuration median = 0.010,
                         SimDuration p99 = 0.030) {
    for (ClusterId c : {c1, c2, c3}) {
      mesh.deploy("svc", c, {},
                  std::make_unique<FixedLatencyBehavior>(median, p99));
    }
  }

  /// Sends n requests from c1 and returns the per-cluster response counts.
  std::vector<int> send_and_count(int n) {
    std::vector<int> counts(3, 0);
    for (int i = 0; i < n; ++i) {
      mesh.call(c1, "svc", 0, [&](const Response& r) {
        counts[r.backend_cluster] += 1;
      });
    }
    sim.run_until(sim.now() + 30.0);
    return counts;
  }

  sim::Simulator sim;
  SplitRng rng;
  Mesh mesh;
  ClusterId c1 = 0, c2 = 0, c3 = 0;
};

TEST_F(ProxyTest, EqualWeightsGiveRoughlyEqualShares) {
  deploy_everywhere();
  const auto counts = send_and_count(3000);
  for (int c : counts) EXPECT_NEAR(c, 1000, 120);
}

TEST_F(ProxyTest, TrafficFollowsWeightRatios) {
  deploy_everywhere();
  Proxy& proxy = mesh.proxy(c1, "svc");
  TrafficSplit* split = mesh.find_split(c1, "svc");
  ASSERT_NE(split, nullptr);
  const std::vector<std::uint64_t> w{6000, 3000, 1000};
  split->set_weights(w);
  const auto counts = send_and_count(5000);
  EXPECT_NEAR(counts[0] / 5000.0, 0.6, 0.03);
  EXPECT_NEAR(counts[1] / 5000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[2] / 5000.0, 0.1, 0.03);
  EXPECT_EQ(proxy.sent(), 5000u);
}

TEST_F(ProxyTest, ZeroWeightBackendGetsNoTraffic) {
  deploy_everywhere();
  mesh.proxy(c1, "svc");
  mesh.find_split(c1, "svc")->set_weights(std::vector<std::uint64_t>{1, 0, 1});
  const auto counts = send_and_count(2000);
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[2], 0);
}

TEST_F(ProxyTest, LatencyIncludesWanRtt) {
  deploy_everywhere(0.010, 0.0101);
  mesh.wan().set_symmetric(c1, c2, {.base = 0.050, .jitter_frac = 0.0});
  mesh.proxy(c1, "svc");
  mesh.find_split(c1, "svc")->set_weights(std::vector<std::uint64_t>{0, 1, 0});
  double latency = 0.0;
  mesh.call(c1, "svc", 0, [&](const Response& r) { latency = r.latency; });
  sim.run_until(10.0);
  EXPECT_GT(latency, 0.100);  // 2 × 50 ms WAN + exec
  EXPECT_LT(latency, 0.200);
}

TEST_F(ProxyTest, MetricsExportedPerBackend) {
  deploy_everywhere();
  send_and_count(300);
  auto& registry = mesh.registry(c1);
  double total = 0.0;
  for (const char* dst : {"c1", "c2", "c3"}) {
    total += registry
                 .counter(mn::kRequestTotal,
                          mn::backend_labels("svc", "c1", dst))
                 .value();
  }
  EXPECT_DOUBLE_EQ(total, 300.0);
  // All succeeded; failure counters stay zero; in-flight drained to zero.
  for (const char* dst : {"c1", "c2", "c3"}) {
    const auto labels = mn::backend_labels("svc", "c1", dst);
    EXPECT_DOUBLE_EQ(registry.counter(mn::kFailureTotal, labels).value(), 0.0);
    EXPECT_DOUBLE_EQ(registry.gauge(mn::kInflight, labels).value(), 0.0);
  }
}

TEST_F(ProxyTest, LatencySumCounterAccumulates) {
  deploy_everywhere();
  send_and_count(100);
  auto& registry = mesh.registry(c1);
  double sum = 0.0;
  for (const char* dst : {"c1", "c2", "c3"}) {
    sum += registry
               .counter(mn::kLatencySuccessSum,
                        mn::backend_labels("svc", "c1", dst))
               .value();
  }
  EXPECT_GT(sum, 100 * 0.005);  // 100 requests at ≥ ~10 ms median
}

TEST_F(ProxyTest, InflightTracksOutstandingRequests) {
  deploy_everywhere(1.0, 1.001);  // 1 s execution
  Proxy& proxy = mesh.proxy(c1, "svc");
  for (int i = 0; i < 10; ++i) {
    mesh.call(c1, "svc", 0, [](const Response&) {});
  }
  sim.run_until(0.5);  // mid-flight
  EXPECT_EQ(proxy.inflight(), 10u);
  sim.run_until(5.0);
  EXPECT_EQ(proxy.inflight(), 0u);
}

TEST_F(ProxyTest, TimeoutProducesFailureWithTimeoutLatency) {
  MeshConfig config = make_config();
  config.request_timeout = 0.5;
  Mesh m(sim, SplitRng(3), config);
  const auto a = m.add_cluster("a");
  m.deploy("svc", a, {},
           std::make_unique<FixedLatencyBehavior>(2.0, 2.001));  // way > 0.5 s
  Response response;
  bool got = false;
  m.call(a, "svc", 0, [&](const Response& r) {
    response = r;
    got = true;
  });
  sim.run_until(10.0);
  ASSERT_TRUE(got);
  EXPECT_FALSE(response.success);
  EXPECT_TRUE(response.timed_out);
  EXPECT_DOUBLE_EQ(response.latency, 0.5);
}

TEST_F(ProxyTest, LateResponseAfterTimeoutIsIgnored) {
  MeshConfig config = make_config();
  config.request_timeout = 0.5;
  Mesh m(sim, SplitRng(4), config);
  const auto a = m.add_cluster("a");
  m.deploy("svc", a, {}, std::make_unique<FixedLatencyBehavior>(2.0, 2.001));
  int callbacks = 0;
  m.call(a, "svc", 0, [&](const Response&) { ++callbacks; });
  sim.run_until(10.0);  // behavior completes at ~2 s, after the timeout
  EXPECT_EQ(callbacks, 1);
}

TEST_F(ProxyTest, HealthExclusionReroutesAfterProbe) {
  MeshConfig config = make_config();
  config.health_probe_interval = 1.0;
  Mesh m(sim, SplitRng(5), config);
  const auto a = m.add_cluster("a");
  const auto b = m.add_cluster("b");
  auto& da = m.deploy("svc", a, {},
                      std::make_unique<FixedLatencyBehavior>(0.01, 0.02));
  m.deploy("svc", b, {}, std::make_unique<FixedLatencyBehavior>(0.01, 0.02));
  m.proxy(a, "svc");

  da.set_down(true);
  sim.run_until(2.0);  // health probe notices
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 200; ++i) {
    m.call(a, "svc", 0,
           [&](const Response& r) { counts[r.backend_cluster] += 1; });
  }
  sim.run_until(10.0);
  EXPECT_EQ(counts[0], 0);  // excluded by the health view
  EXPECT_EQ(counts[1], 200);
}

TEST_F(ProxyTest, DepthLimitFailsFast) {
  deploy_everywhere();
  bool got = false;
  mesh.call(c1, "svc", 100, [&](const Response& r) {
    got = true;
    EXPECT_FALSE(r.success);
  });
  EXPECT_TRUE(got);  // synchronous failure, no recursion
}

// --- weighted-picker distribution (chi-square) ----------------------------

/// Pearson chi-square statistic over observed counts vs expected counts;
/// zero-expectation cells are excluded (the matching count is asserted to
/// be zero separately).
double chi_square(const std::vector<int>& counts,
                  const std::vector<double>& expected) {
  double chi = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double d = static_cast<double>(counts[i]) - expected[i];
    chi += d * d / expected[i];
  }
  return chi;
}

class PickerDistribution : public ProxyTest {
 protected:
  std::vector<int> count_picks(Proxy& proxy, int n) {
    std::vector<int> counts(3, 0);
    for (int i = 0; i < n; ++i) counts[proxy.pick_backend()] += 1;
    return counts;
  }
};

TEST_F(PickerDistribution, WeightedSharesPassChiSquare) {
  deploy_everywhere();
  Proxy& proxy = mesh.proxy(c1, "svc");
  mesh.find_split(c1, "svc")
      ->set_weights(std::vector<std::uint64_t>{6000, 3000, 1000});
  const auto counts = count_picks(proxy, 9000);
  // df = 2; 13.82 is the p = 0.001 critical value. Deterministic seed, so
  // this is a regression bound, not a flaky statistical test.
  EXPECT_LT(chi_square(counts, {5400.0, 2700.0, 900.0}), 13.82);
}

TEST_F(PickerDistribution, ZeroWeightBackendNeverPicked) {
  deploy_everywhere();
  Proxy& proxy = mesh.proxy(c1, "svc");
  mesh.find_split(c1, "svc")
      ->set_weights(std::vector<std::uint64_t>{2, 0, 1});
  const auto counts = count_picks(proxy, 3000);
  // The fallback path must never leak a zero-weight backend (the old
  // open-coded walk could return the last backend regardless of weight).
  EXPECT_EQ(counts[1], 0);
  EXPECT_LT(chi_square(counts, {2000.0, 0.0, 1000.0}), 10.83);  // df = 1
}

TEST_F(PickerDistribution, EjectedBackendExcludedAndRemainderReweighted) {
  OutlierDetectionConfig outlier;
  outlier.enabled = true;
  outlier.failure_threshold = 0.5;
  outlier.min_requests = 10;
  outlier.window = 10.0;
  outlier.ejection_duration = 60.0;
  outlier.max_ejected_fraction = 0.67;
  MeshConfig config = make_config();
  config.outlier_detection = outlier;
  Mesh m(sim, SplitRng(17), config);
  const auto a = m.add_cluster("a");
  const auto b = m.add_cluster("b");
  const auto c = m.add_cluster("c");
  m.deploy("svc", a, {},
           std::make_unique<FixedLatencyBehavior>(0.010, 0.020, 0.0));
  for (ClusterId cl : {b, c}) {
    m.deploy("svc", cl, {},
             std::make_unique<FixedLatencyBehavior>(0.010, 0.020, 1.0));
  }
  Proxy& proxy = m.proxy(a, "svc");
  m.find_split(a, "svc")
      ->set_weights(std::vector<std::uint64_t>{3000, 2000, 1000});
  for (int i = 0; i < 100; ++i) {
    m.call(a, "svc", 0, [](const Response&) {});
  }
  sim.run_until(sim.now() + 5.0);
  ASSERT_GT(proxy.outlier_detector().ejections(), 0u);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 6000; ++i) counts[proxy.pick_backend()] += 1;
  // Backend a is ejected: the picker must renormalize over {b, c} at their
  // 2:1 weight ratio, not fall back to the full set.
  EXPECT_EQ(counts[0], 0);
  EXPECT_LT(chi_square(counts, {0.0, 4000.0, 2000.0}), 10.83);  // df = 1
}

// --- pooled call-state lifecycle ------------------------------------------

TEST(ProxyCallPool, FinishedCallRecyclesBeforeItsDeadline) {
  sim::Simulator sim;
  MeshConfig config;
  config.local_delay = 0.0;
  config.local_jitter_frac = 0.0;
  config.health_probe_interval = 0.0;
  config.request_timeout = 0.5;
  Mesh m(sim, SplitRng(9), config);
  const auto a = m.add_cluster("a");
  m.deploy("svc", a, {},
           std::make_unique<FixedLatencyBehavior>(0.010, 0.0101));
  Proxy& proxy = m.proxy(a, "svc");
  int callbacks = 0;
  m.call(a, "svc", 0, [&](const Response& r) {
    ++callbacks;
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(r.timed_out);
  });
  sim.run_until(0.1);  // response delivered; deadline (0.5) still ahead
  EXPECT_EQ(callbacks, 1);
  // The finished call's deadline entry is drained as the response settles,
  // so the slot recycles ~0.49 s before the shared timer would reach it —
  // it does not idle until the deadline the way a per-call timeout event
  // held it.
  EXPECT_EQ(proxy.live_calls(), 0u);
  sim.run_until(1.0);  // the armed timer fires; must be a harmless no-op
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(proxy.live_calls(), 0u);
}

TEST(ProxyCallPool, SlotReuseUnderTimeoutResponseRacesIsExactlyOnce) {
  // Latency distribution straddles the timeout, so responses and timeouts
  // interleave in both orders while slots are continuously recycled. Every
  // request must get exactly one callback and the pool must drain to zero.
  sim::Simulator sim;
  MeshConfig config;
  config.local_delay = 0.0;
  config.local_jitter_frac = 0.0;
  config.health_probe_interval = 0.0;
  config.request_timeout = 0.05;
  Mesh m(sim, SplitRng(21), config);
  const auto a = m.add_cluster("a");
  m.deploy("svc", a, {.replicas = 3, .concurrency = 50, .queue_capacity = 256},
           std::make_unique<FixedLatencyBehavior>(0.040, 0.120));
  Proxy& proxy = m.proxy(a, "svc");
  int callbacks = 0;
  int timeouts = 0;
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 10; ++i) {
      m.call(a, "svc", 0, [&](const Response& r) {
        ++callbacks;
        if (r.timed_out) ++timeouts;
      });
    }
    sim.run_until(sim.now() + 0.030);  // overlap the waves
  }
  sim.run_until(sim.now() + 30.0);  // drain behaviors and timeout events
  EXPECT_EQ(callbacks, 200);
  EXPECT_GT(timeouts, 0);      // both orders actually exercised
  EXPECT_LT(timeouts, 200);
  EXPECT_EQ(proxy.live_calls(), 0u);
}

TEST_F(ProxyTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator s;
    Mesh m(s, SplitRng(seed), make_config());
    const auto a = m.add_cluster("a");
    const auto b = m.add_cluster("b");
    for (ClusterId c : {a, b}) {
      m.deploy("svc", c, {},
               std::make_unique<FixedLatencyBehavior>(0.01, 0.05));
    }
    double sum = 0.0;
    for (int i = 0; i < 100; ++i) {
      m.call(a, "svc", 0, [&](const Response& r) { sum += r.latency; });
    }
    s.run_until(30.0);
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

}  // namespace
}  // namespace l3::mesh
