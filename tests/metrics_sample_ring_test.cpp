// Tests for the power-of-two ring buffer behind the TSDB sample storage:
// FIFO semantics across growth and wrap-around, O(1) random access, and
// eager release of element-owned memory on pop_front.
#include "l3/metrics/sample_ring.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <memory>
#include <random>

namespace l3::metrics {
namespace {

TEST(SampleRing, StartsEmpty) {
  SampleRing<int> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SampleRing, PushBackThenIndexInFifoOrder) {
  SampleRing<int> ring;
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  ASSERT_EQ(ring.size(), 100u);
  EXPECT_EQ(ring.front(), 0);
  EXPECT_EQ(ring.back(), 99);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i));
  }
}

TEST(SampleRing, PopFrontAdvancesWindow) {
  SampleRing<int> ring;
  for (int i = 0; i < 10; ++i) ring.push_back(i);
  ring.pop_front();
  ring.pop_front();
  ASSERT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.front(), 2);
  EXPECT_EQ(ring[0], 2);
  EXPECT_EQ(ring.back(), 9);
}

TEST(SampleRing, WrapsAroundWithoutGrowingWhenDrained) {
  SampleRing<int> ring;
  // Interleaved push/pop keeps the size tiny while head_ laps the storage
  // repeatedly — the indexing must stay FIFO across every wrap.
  int next = 0;
  int expect_front = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    ring.push_back(next++);
    ring.push_back(next++);
    EXPECT_EQ(ring.front(), expect_front);
    ring.pop_front();
    ring.pop_front();
    expect_front += 2;
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SampleRing, RandomOpsMatchDequeReference) {
  std::mt19937 rng(42u);
  SampleRing<int> ring;
  std::deque<int> reference;
  int next = 0;
  for (int op = 0; op < 20000; ++op) {
    if (reference.empty() || rng() % 3 != 0) {
      ring.push_back(next);
      reference.push_back(next);
      ++next;
    } else {
      EXPECT_EQ(ring.front(), reference.front());
      ring.pop_front();
      reference.pop_front();
    }
    ASSERT_EQ(ring.size(), reference.size());
    if (!reference.empty()) {
      EXPECT_EQ(ring.front(), reference.front());
      EXPECT_EQ(ring.back(), reference.back());
      const std::size_t mid = reference.size() / 2;
      EXPECT_EQ(ring[mid], reference[mid]);
    }
  }
}

TEST(SampleRing, PopFrontReleasesOwnedMemoryEagerly) {
  SampleRing<std::shared_ptr<int>> ring;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  ring.push_back(std::move(token));
  ring.push_back(std::make_shared<int>(2));
  EXPECT_FALSE(alive.expired());
  ring.pop_front();
  // The slot must be reset on pop, not when it is next overwritten.
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(ring.size(), 1u);
}

TEST(SampleRing, ClearEmptiesAndAllowsReuse) {
  SampleRing<int> ring;
  for (int i = 0; i < 37; ++i) ring.push_back(i);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(5);
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.front(), 5);
}

}  // namespace
}  // namespace l3::metrics
