// Tests for Algorithm 1 — the L3 weight assigner — including the exact
// formulas of Eq. 3 and Eq. 4 and their monotonicity properties.
#include "l3/lb/weighting.h"

#include "l3/common/assert.h"
#include "l3/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace l3::lb {
namespace {

BackendSignals healthy(double latency = 0.100, double rps = 100.0,
                       double inflight = 0.0, double success = 1.0) {
  BackendSignals s;
  s.latency_p99 = latency;
  s.success_rate = success;
  s.rps = rps;
  s.inflight = inflight;
  return s;
}

TEST(EstimatedLatency, Eq3Formula) {
  // L_est = L_s + P × (1/R_s − 1).
  EXPECT_DOUBLE_EQ(estimated_latency(0.1, 1.0, 0.6), 0.1);
  EXPECT_NEAR(estimated_latency(0.1, 0.5, 0.6), 0.1 + 0.6 * 1.0, 1e-12);
  EXPECT_NEAR(estimated_latency(0.1, 0.9, 0.6),
              0.1 + 0.6 * (1.0 / 0.9 - 1.0), 1e-12);
}

TEST(EstimatedLatency, ZeroSuccessRateGuard) {
  // Algorithm 1 line 11: prevent division by zero.
  EXPECT_DOUBLE_EQ(estimated_latency(0.25, 0.0, 0.6), 0.25);
}

TEST(EstimatedLatency, MonotoneDecreasingInSuccessRate) {
  double prev = estimated_latency(0.1, 0.05, 0.6);
  for (double rs : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double est = estimated_latency(0.1, rs, 0.6);
    EXPECT_LT(est, prev);
    prev = est;
  }
}

TEST(AssignWeights, Eq4Formula) {
  // w = S / ((R_i + 1)² · L_est); R_i = inflight / rps.
  WeightingConfig config;
  config.scale = 100.0;
  config.penalty = 0.6;
  BackendSignals s = healthy(0.100, 100.0, 50.0);  // R_i = 0.5
  const auto w = assign_weights(std::vector<BackendSignals>{s}, config);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NEAR(w[0], 100.0 / (1.5 * 1.5 * 0.100), 1e-9);
}

TEST(AssignWeights, ZeroRpsMeansZeroNormalizedInflight) {
  // Algorithm 1 lines 6–9: R_i = 0 when RPS = 0.
  WeightingConfig config;
  BackendSignals s = healthy(0.100, 0.0, 500.0);
  const auto w = assign_weights(std::vector<BackendSignals>{s}, config);
  EXPECT_NEAR(w[0], config.scale / 0.100, 1e-9);
}

TEST(AssignWeights, FasterBackendGetsHigherWeight) {
  const std::vector<BackendSignals> signals{healthy(0.050), healthy(0.200)};
  const auto w = assign_weights(signals);
  EXPECT_GT(w[0], w[1]);
  EXPECT_NEAR(w[0] / w[1], 4.0, 1e-9);  // reciprocal in latency
}

TEST(AssignWeights, LowerSuccessRateLowersWeight) {
  const std::vector<BackendSignals> signals{healthy(0.100, 100, 0, 1.0),
                                            healthy(0.100, 100, 0, 0.8)};
  const auto w = assign_weights(signals);
  EXPECT_GT(w[0], w[1]);
}

TEST(AssignWeights, MoreInflightLowersWeight) {
  const std::vector<BackendSignals> signals{healthy(0.100, 100, 10),
                                            healthy(0.100, 100, 80)};
  const auto w = assign_weights(signals);
  EXPECT_GT(w[0], w[1]);
}

TEST(AssignWeights, FloorAtMinWeight) {
  // Algorithm 1 lines 16–18: w ≥ 1 even for terrible backends.
  WeightingConfig config;
  config.scale = 1.0;
  const std::vector<BackendSignals> signals{healthy(30.0)};  // 30 s latency
  const auto w = assign_weights(signals, config);
  EXPECT_GE(w[0], 1.0);
}

TEST(AssignWeights, InflightExponentConfigurable) {
  // The ablation knob: exponent 1 vs the paper's 2.
  WeightingConfig squared;
  WeightingConfig linear;
  linear.inflight_exponent = 1.0;
  BackendSignals s = healthy(0.100, 100.0, 100.0);  // R_i = 1
  const auto w2 = assign_weights(std::vector<BackendSignals>{s}, squared);
  const auto w1 = assign_weights(std::vector<BackendSignals>{s}, linear);
  EXPECT_NEAR(w1[0] / w2[0], 2.0, 1e-9);  // (R_i+1)² vs (R_i+1)
}

TEST(AssignWeights, MinLatencyGuardsZeroSignal) {
  const std::vector<BackendSignals> signals{healthy(0.0)};
  const auto w = assign_weights(signals);
  EXPECT_TRUE(std::isfinite(w[0]));
  EXPECT_GT(w[0], 0.0);
}

TEST(FinalizeWeights, RoundsAndFloorsToOne) {
  const std::vector<double> weights{0.2, 1.6, 1000.0};
  const auto out = finalize_weights(weights, 0.0);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_EQ(out[2], 1000u);
}

TEST(FinalizeWeights, MinShareFloorKeepsMetricsAlive) {
  // §3.1: a starved backend keeps enough weight for metric collection.
  const std::vector<double> weights{10000.0, 10000.0, 1.0};
  const auto out = finalize_weights(weights, 0.01);
  const double total = 20001.0;
  EXPECT_GE(out[2], static_cast<std::uint64_t>(total * 0.01));
}

TEST(FinalizeWeights, RejectsNonFiniteWeights) {
  const std::vector<double> bad{1.0, std::nan("")};
  EXPECT_THROW(finalize_weights(bad, 0.01), ContractViolation);
}

TEST(WeightSkew, EmptyAndUniformAreOne) {
  EXPECT_DOUBLE_EQ(weight_skew({}), 1.0);
  const std::vector<double> uniform{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(weight_skew(uniform), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(weight_skew(zeros), 1.0);
}

TEST(WeightSkew, ConcentrationRaisesSkew) {
  const std::vector<double> mild{2.0, 1.0, 1.0};
  const std::vector<double> sharp{10.0, 1.0, 1.0};
  EXPECT_GT(weight_skew(sharp), weight_skew(mild));
  EXPECT_GT(weight_skew(mild), 1.0);
  // max/mean: {10,1,1} → 10/4.
  EXPECT_NEAR(weight_skew(sharp), 10.0 / 4.0, 1e-12);
}

TEST(WeightSkew, UniformAddedLatencyCompressesSkew) {
  // DESIGN.md §16: a saturating proxy tier adds the same queueing delay to
  // every backend's observed latency. Algorithm 1's weights are reciprocal
  // in latency, so a common additive term compresses their ratios — the
  // weight distribution flattens toward uniform.
  const std::vector<BackendSignals> crisp{healthy(0.010), healthy(0.020),
                                          healthy(0.040)};
  std::vector<BackendSignals> queued = crisp;
  for (auto& s : queued) s.latency_p99 += 0.200;  // shared proxy queue delay
  const double skew_crisp = weight_skew(assign_weights(crisp));
  const double skew_queued = weight_skew(assign_weights(queued));
  EXPECT_GT(skew_crisp, skew_queued);
  EXPECT_GT(skew_queued, 1.0);  // still not perfectly uniform…
  // …but the excess over uniform collapsed (≈1.71 → ≈1.06 here).
  EXPECT_LT(skew_queued - 1.0, (skew_crisp - 1.0) / 2.0);
}

/// Property sweep: weights are always finite and >= 1 for arbitrary inputs.
class WeightingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightingProperty, AlwaysPositiveFinite) {
  SplitRng rng(GetParam());
  std::vector<BackendSignals> signals(3);
  for (auto& s : signals) {
    s.latency_p99 = rng.uniform(0.0, 10.0);
    s.success_rate = rng.uniform(0.0, 1.0);
    s.rps = rng.uniform(0.0, 1000.0);
    s.inflight = rng.uniform(0.0, 500.0);
  }
  const auto weights = assign_weights(signals);
  const auto final = finalize_weights(weights);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(weights[i]));
    EXPECT_GE(weights[i], 1.0);
    EXPECT_GE(final[i], 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightingProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace l3::lb
