// Tests for the cross-shard mailboxes: staging flush/capacity counters,
// inbox batch hand-off, and the keyed-delivery property test — a synthetic
// multi-cluster cascade executed at several shard counts, checked for exact
// per-cluster log equality against the single-shard run (which IS the
// single-queue oracle: with one shard every post commits straight into one
// Simulator via schedule_delivered).
#include "l3/sim/mailbox.h"

#include "l3/common/rng.h"
#include "l3/sim/shard_engine.h"
#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace l3::sim {
namespace {

ShardMessage make_msg(SimTime t, std::uint32_t cluster, std::uint32_t seq) {
  ShardMessage m;
  m.time = t;
  m.origin_cluster = cluster;
  m.origin_seq = seq;
  m.fn = [] {};
  return m;
}

TEST(Mailbox, StagingFlushesWhenFullAndCountsTraffic) {
  MailboxInbox inbox;
  MailboxStaging staging;
  staging.bind(&inbox, 3);

  for (std::uint32_t i = 0; i < 7; ++i) {
    staging.post(make_msg(1.0 + i, 0, i));
  }
  // Posts 4 and 7 found a full buffer: two forced flushes so far.
  EXPECT_EQ(staging.stats().messages, 7u);
  EXPECT_EQ(staging.stats().capacity_flushes, 2u);
  EXPECT_EQ(staging.stats().flushes, 2u);
  EXPECT_FALSE(staging.empty());

  staging.flush();  // window-boundary flush
  EXPECT_TRUE(staging.empty());
  EXPECT_EQ(staging.stats().flushes, 3u);
  EXPECT_EQ(staging.stats().capacity_flushes, 2u);

  staging.flush();  // empty flush is a no-op, not counted
  EXPECT_EQ(staging.stats().flushes, 3u);

  std::vector<ShardMessage> out;
  EXPECT_EQ(inbox.drain(out), 7u);
  ASSERT_EQ(out.size(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(out[i].origin_seq, i);  // batch order = post order
  }
  EXPECT_EQ(inbox.drain(out), 0u);  // drained clean
  EXPECT_EQ(out.size(), 7u);        // drain appends, never clears `out`
}

TEST(Mailbox, DeliverLeavesBatchEmptyAndReusable) {
  MailboxInbox inbox;
  std::vector<ShardMessage> batch;
  batch.push_back(make_msg(1.0, 2, 0));
  batch.push_back(make_msg(2.0, 2, 1));
  inbox.deliver(batch);
  EXPECT_TRUE(batch.empty());

  batch.push_back(make_msg(3.0, 2, 2));
  inbox.deliver(batch);

  std::vector<ShardMessage> out;
  EXPECT_EQ(inbox.drain(out), 3u);
  EXPECT_EQ(out[2].time, 3.0);
  EXPECT_EQ(out[2].origin_seq, 2u);
}

// --- keyed-delivery property test -----------------------------------------
//
// A random cascade over C clusters: every firing appends (time, counter) to
// its cluster's log and, while hops remain, draws a destination + delay from
// the CLUSTER's own rng stream and posts the next hop through the router.
// All cross-cluster state flows through keyed posts, so each cluster's log
// must be byte-identical for every shard count.

constexpr double kLa = 0.001;  // registered lookahead for every pair

struct ClusterState {
  explicit ClusterState(std::uint64_t seed) : rng(seed) {}
  SplitRng rng;
  std::vector<std::pair<SimTime, std::uint32_t>> log;
  std::uint32_t emitted = 0;
};

void fire(ShardEngine* eng, std::vector<ClusterState>* states,
          std::uint32_t cluster, int hops) {
  ClusterState& st = (*states)[cluster];
  ShardRouter& rt = eng->router_for_cluster(cluster);
  const SimTime now = rt.sim().now();
  st.log.emplace_back(now, st.emitted++);
  if (hops <= 0) return;
  const auto n = static_cast<std::uint32_t>(states->size());
  const auto dest = std::min(
      n - 1, static_cast<std::uint32_t>(st.rng.uniform() * n));
  const double delay = kLa + st.rng.uniform() * 0.003;
  rt.post(cluster, dest, now + delay, [eng, states, dest, hops] {
    fire(eng, states, dest, hops - 1);
  });
}

std::vector<ClusterState> run_cascade(std::size_t clusters,
                                      std::size_t shards) {
  std::vector<ClusterState> states;
  for (std::size_t c = 0; c < clusters; ++c) {
    states.emplace_back(1000 + c);
  }
  ShardEngine::Config cfg;
  cfg.shards = shards;
  cfg.mailbox_capacity = 4;  // small: force plenty of capacity flushes
  ShardEngine engine(cfg);
  std::vector<std::size_t> owners(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    owners[c] = c * shards / clusters;
  }
  engine.set_cluster_owners(owners);
  for (std::uint32_t i = 0; i < clusters; ++i) {
    for (std::uint32_t j = 0; j < clusters; ++j) {
      if (i != j) engine.set_cluster_lookahead(i, j, kLa);
    }
  }
  engine.run([&](std::size_t shard) {
    Simulator sim;  // constructed, run and destroyed on the shard's thread
    ShardRouter& router = engine.router(shard);
    router.attach(sim);
    for (std::uint32_t c = 0; c < clusters; ++c) {
      if (owners[c] != shard) continue;
      for (int k = 0; k < 8; ++k) {
        sim.schedule_at(
            0.0005 * c + 0.001 * k,
            [eng = &engine, st = &states, c] { fire(eng, st, c, 40); });
      }
    }
    router.run_until(0.5);
  });
  return states;
}

TEST(Mailbox, CascadeLogsAreShardCountInvariant) {
  const std::size_t clusters = 6;
  const auto oracle = run_cascade(clusters, 1);  // single-queue oracle
  std::uint64_t total = 0;
  for (const auto& st : oracle) total += st.log.size();
  EXPECT_GT(total, 6u * 8u * 30u);  // the cascade actually cascaded

  for (const std::size_t shards : {2ul, 3ul, 6ul}) {
    const auto got = run_cascade(clusters, shards);
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t c = 0; c < clusters; ++c) {
      EXPECT_EQ(got[c].log, oracle[c].log)
          << "cluster " << c << " diverged at shards=" << shards;
    }
  }
}

TEST(Mailbox, CrossShardTrafficUsesTheMailboxes) {
  ShardEngine::Config cfg;
  cfg.shards = 2;
  cfg.mailbox_capacity = 4;
  ShardEngine engine(cfg);
  engine.set_cluster_owners({0, 1});
  engine.set_cluster_lookahead(0, 1, kLa);
  engine.set_cluster_lookahead(1, 0, kLa);
  std::vector<int> hits(2, 0);
  engine.run([&](std::size_t shard) {
    Simulator sim;
    ShardRouter& router = engine.router(shard);
    router.attach(sim);
    const auto origin = static_cast<std::uint32_t>(shard);
    const std::uint32_t target = 1 - origin;
    sim.schedule_at(0.0, [&hits, &router, origin, target] {
      for (std::uint32_t i = 0; i < 10; ++i) {
        router.post(origin, target, 0.002 + 0.001 * i,
                    [&hits, target] { ++hits[target]; });
      }
    });
    router.run_until(0.05);
  });
  EXPECT_EQ(hits[0], 10);
  EXPECT_EQ(hits[1], 10);
  const MailboxStats stats = engine.mailbox_stats();
  EXPECT_EQ(stats.messages, 20u);
  EXPECT_GE(stats.flushes, 2u);
  EXPECT_GE(stats.capacity_flushes, 2u);  // 10 > capacity 4, both directions
}

}  // namespace
}  // namespace l3::sim
