// Tests for the open-loop client, timeline aggregation and summaries.
#include "l3/workload/client.h"

#include "l3/mesh/mesh.h"
#include "l3/workload/trace_behavior.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::workload {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : rng(31), mesh(sim, rng) {
    c1 = mesh.add_cluster("c1");
    mesh.deploy("svc", c1, {},
                std::make_unique<mesh::FixedLatencyBehavior>(0.010, 0.030));
  }

  sim::Simulator sim;
  SplitRng rng;
  mesh::Mesh mesh;
  mesh::ClusterId c1 = 0;
};

TEST_F(ClientTest, ConstantRateSendsExpectedCount) {
  OpenLoopClient client(mesh, c1, "svc", [](SimTime) { return 100.0; },
                        rng.split("c"));
  client.start(0.0, 10.0);
  sim.run_until(15.0);
  EXPECT_NEAR(static_cast<double>(client.sent()), 1000.0, 2.0);
  EXPECT_EQ(client.completed(), client.sent());
}

TEST_F(ClientTest, OpenLoopDoesNotWaitForResponses) {
  // Slow service (1 s) at 100 RPS: an open-loop client keeps firing.
  mesh::Mesh slow_mesh(sim, SplitRng(1));
  const auto a = slow_mesh.add_cluster("a");
  slow_mesh.deploy(
      "svc", a, {.replicas = 1, .concurrency = 4096, .queue_capacity = 1},
      std::make_unique<mesh::FixedLatencyBehavior>(1.0, 1.001));
  OpenLoopClient client(slow_mesh, a, "svc", [](SimTime) { return 100.0; },
                        SplitRng(2));
  client.start(0.0, 2.0);
  sim.run_until(1.5);
  EXPECT_GT(client.sent(), 100u);  // far more than completed
}

TEST_F(ClientTest, RateFunctionFollowedOverTime) {
  OpenLoopClient client(
      mesh, c1, "svc",
      [](SimTime t) { return t < 5.0 ? 50.0 : 200.0; }, rng.split("c"));
  client.start(0.0, 10.0);
  sim.run_until(15.0);
  const auto timeline = aggregate_timeline(client.records(), 0.0, 10.0, 5.0);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_NEAR(timeline[0].rps, 50.0, 5.0);
  EXPECT_NEAR(timeline[1].rps, 200.0, 10.0);
}

TEST_F(ClientTest, PoissonArrivalsApproximateRate) {
  OpenLoopClient::Config config;
  config.poisson = true;
  OpenLoopClient client(mesh, c1, "svc", [](SimTime) { return 100.0; },
                        rng.split("p"), config);
  client.start(0.0, 20.0);
  sim.run_until(25.0);
  EXPECT_NEAR(static_cast<double>(client.sent()), 2000.0, 150.0);
}

TEST_F(ClientTest, RecordsAfterDropsWarmup) {
  OpenLoopClient client(mesh, c1, "svc", [](SimTime) { return 100.0; },
                        rng.split("c"));
  client.start(0.0, 10.0);
  sim.run_until(15.0);
  const auto post = client.records_after(5.0);
  EXPECT_NEAR(static_cast<double>(post.size()), 500.0, 5.0);
  for (const auto& r : post) EXPECT_GE(r.sent, 5.0);
}

TEST_F(ClientTest, LocalDirectModeBypassesSplit) {
  OpenLoopClient::Config config;
  config.mode = CallMode::kLocalDirect;
  OpenLoopClient client(mesh, c1, "svc", [](SimTime) { return 50.0; },
                        rng.split("d"), config);
  client.start(0.0, 4.0);
  sim.run_until(10.0);
  EXPECT_GT(client.completed(), 150u);
  EXPECT_EQ(mesh.find_split(c1, "svc"), nullptr);  // no split was created
  for (const auto& r : client.records()) {
    EXPECT_EQ(r.backend_cluster, c1);
    EXPECT_TRUE(r.success);
    EXPECT_GT(r.latency, 0.0);
  }
}

TEST_F(ClientTest, RetriesTurnFailuresIntoSuccesses) {
  mesh::Mesh failing_mesh(sim, SplitRng(8));
  const auto a = failing_mesh.add_cluster("a");
  failing_mesh.deploy(
      "svc", a, {},
      std::make_unique<mesh::FixedLatencyBehavior>(0.010, 0.030, 0.5));
  OpenLoopClient::Config config;
  config.max_retries = 5;
  config.retry_backoff = 0.01;
  OpenLoopClient client(failing_mesh, a, "svc", [](SimTime) { return 50.0; },
                        SplitRng(9), config);
  client.start(0.0, 20.0);
  sim.run_until(40.0);
  const auto s = summarize_records(client.records());
  // 5 retries against a 50 % success rate: ~98.4 % end up successful.
  EXPECT_GT(s.success_rate, 0.95);
  // Retried requests accumulate latency: mean latency of all requests must
  // exceed a single attempt's ~10 ms median noticeably.
  int multi_attempt = 0;
  for (const auto& r : client.records()) {
    EXPECT_GE(r.attempts, 1);
    EXPECT_LE(r.attempts, 6);
    if (r.attempts > 1) ++multi_attempt;
  }
  EXPECT_GT(multi_attempt, 300);  // ~half of 1000 requests needed a retry
}

TEST_F(ClientTest, NoRetriesByDefault) {
  mesh::Mesh failing_mesh(sim, SplitRng(10));
  const auto a = failing_mesh.add_cluster("a");
  failing_mesh.deploy(
      "svc", a, {},
      std::make_unique<mesh::FixedLatencyBehavior>(0.010, 0.030, 0.5));
  OpenLoopClient client(failing_mesh, a, "svc", [](SimTime) { return 50.0; },
                        SplitRng(11));
  client.start(0.0, 20.0);
  sim.run_until(40.0);
  const auto s = summarize_records(client.records());
  EXPECT_NEAR(s.success_rate, 0.5, 0.06);
  for (const auto& r : client.records()) EXPECT_EQ(r.attempts, 1);
}

TEST(Timeline, AggregatesPerBucket) {
  std::vector<RequestRecord> records;
  records.push_back({0.5, 0.100, true, false, 0});
  records.push_back({0.6, 0.300, false, false, 1});
  records.push_back({1.5, 0.200, true, false, 0});
  const auto timeline = aggregate_timeline(records, 0.0, 2.0, 1.0);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].count, 2u);
  EXPECT_DOUBLE_EQ(timeline[0].success_rate, 0.5);
  EXPECT_DOUBLE_EQ(timeline[0].rps, 2.0);
  EXPECT_EQ(timeline[1].count, 1u);
  EXPECT_DOUBLE_EQ(timeline[1].p50, 0.200);
}

TEST(Timeline, EmptyBucketsAreZeroed) {
  std::vector<RequestRecord> records;
  records.push_back({2.5, 0.1, true, false, 0});
  const auto timeline = aggregate_timeline(records, 0.0, 4.0, 1.0);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0].count, 0u);
  EXPECT_EQ(timeline[2].count, 1u);
}

TEST(Timeline, RecordsOutsideRangeIgnored) {
  std::vector<RequestRecord> records;
  records.push_back({-1.0, 0.1, true, false, 0});
  records.push_back({10.0, 0.1, true, false, 0});
  const auto timeline = aggregate_timeline(records, 0.0, 5.0, 1.0);
  for (const auto& b : timeline) EXPECT_EQ(b.count, 0u);
}

TEST(Summaries, SeparateSuccessLatency) {
  std::vector<RequestRecord> records;
  records.push_back({0.0, 0.100, true, false, 0});
  records.push_back({0.1, 0.900, false, false, 0});
  const auto s = summarize_records(records);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.success_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.success_latency.max, 0.100);
  EXPECT_DOUBLE_EQ(s.latency.max, 0.900);
}

TEST(Summaries, EmptyRecords) {
  const auto s = summarize_records(std::vector<RequestRecord>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.success_rate, 1.0);
}

}  // namespace
}  // namespace l3::workload
