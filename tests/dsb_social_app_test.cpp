// Tests for the social-network application model and the generic staged
// behaviors it is built from.
#include "l3/dsb/social_app.h"

#include "l3/dsb/behaviors.h"
#include "l3/dsb/runner.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::dsb {
namespace {

class SocialAppTest : public ::testing::Test {
 protected:
  SocialAppTest() : rng(51), mesh(sim, rng) {
    clusters = {mesh.add_cluster("c1"), mesh.add_cluster("c2"),
                mesh.add_cluster("c3")};
  }

  sim::Simulator sim;
  SplitRng rng;
  mesh::Mesh mesh;
  std::vector<mesh::ClusterId> clusters;
};

TEST_F(SocialAppTest, DeploysEveryServiceEverywhere) {
  SocialNetworkApp app(mesh, clusters, {}, rng.split("app"));
  app.deploy();
  for (const auto& service : SocialNetworkApp::service_names()) {
    for (mesh::ClusterId c : clusters) {
      EXPECT_NE(mesh.find_deployment(service, c), nullptr)
          << service << "@" << c;
    }
  }
  EXPECT_EQ(SocialNetworkApp::service_names().size(), 18u);
}

TEST_F(SocialAppTest, StatefulTiersNotMeshRouted) {
  SocialNetworkApp app(mesh, clusters, {}, rng.split("app"));
  app.deploy();
  app.warm_routes();
  for (mesh::ClusterId c : clusters) {
    for (const auto& callee : SocialNetworkApp::callee_names()) {
      EXPECT_NE(mesh.find_split(c, callee), nullptr) << callee;
    }
    EXPECT_EQ(mesh.find_split(c, "redis-home-timeline"), nullptr);
    EXPECT_EQ(mesh.find_split(c, "mongodb-post"), nullptr);
  }
}

TEST_F(SocialAppTest, ComposePostTraversesDeepGraph) {
  SocialNetworkApp app(mesh, clusters, {}, rng.split("app"));
  app.deploy();
  app.warm_routes();
  // Drive compose-post directly so the whole write path fires.
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    mesh.find_deployment("compose-post", clusters[0])
        ->handle(0, [&](const mesh::Outcome& o) {
          EXPECT_TRUE(o.success);
          ++completed;
        });
  }
  sim.run_until(60.0);
  EXPECT_EQ(completed, 100);
  std::uint64_t text = 0, post_storage = 0, shorten = 0, redis_ht = 0;
  for (mesh::ClusterId c : clusters) {
    text += mesh.find_deployment("text", c)->completed();
    post_storage += mesh.find_deployment("post-storage", c)->completed();
    shorten += mesh.find_deployment("url-shorten", c)->completed();
    redis_ht += mesh.find_deployment("redis-home-timeline", c)->completed();
  }
  EXPECT_EQ(text, 100u);          // every compose touches text
  EXPECT_EQ(shorten, 100u);       // text fans out to url-shorten
  EXPECT_GE(post_storage, 100u);  // compose + home-timeline reads
  EXPECT_EQ(redis_ht, 100u);      // home-timeline stage of every compose
}

TEST_F(SocialAppTest, ReadPathsAreShallowerThanCompose) {
  SocialNetworkApp app(mesh, clusters, {}, rng.split("app"));
  app.deploy();
  app.warm_routes();
  SimTime read_done = 0.0, compose_done = 0.0;
  const SimTime start = sim.now();
  mesh.find_deployment("home-timeline", clusters[0])
      ->handle(0, [&](const mesh::Outcome&) { read_done = sim.now(); });
  mesh.find_deployment("compose-post", clusters[0])
      ->handle(0, [&](const mesh::Outcome&) { compose_done = sim.now(); });
  sim.run_until(30.0);
  EXPECT_GT(read_done, start);
  EXPECT_GT(compose_done, read_done);  // compose is the deep path
}

TEST(StagedBehavior, ProbabilityGatesCalls) {
  sim::Simulator sim;
  SplitRng rng(3);
  mesh::Mesh mesh(sim, rng);
  const auto c = mesh.add_cluster("c");
  ClusterLoadModel load(1);
  // Leaf + a behavior that calls it locally with probability 0.5.
  mesh.deploy("leaf", c, {},
              std::make_unique<StagedBehavior>(ServiceProfile{0.001, 0.002},
                                               load, 1.0,
                                               std::vector<Stage>{}));
  mesh.deploy("caller", c, {},
              std::make_unique<StagedBehavior>(
                  ServiceProfile{0.001, 0.002}, load, 1.0,
                  std::vector<Stage>{{Call{"leaf", true, 0.5}}}));
  for (int i = 0; i < 1000; ++i) {
    mesh.find_deployment("caller", c)->handle(0, [](const mesh::Outcome&) {});
  }
  sim.run_until(60.0);
  const auto leaf_calls = mesh.find_deployment("leaf", c)->completed();
  EXPECT_NEAR(static_cast<double>(leaf_calls), 500.0, 60.0);
}

TEST(MixBehavior, WeightsRespectedStatistically) {
  sim::Simulator sim;
  SplitRng rng(4);
  mesh::Mesh mesh(sim, rng);
  const auto c = mesh.add_cluster("c");
  ClusterLoadModel load(1);
  mesh.deploy("a", c, {},
              std::make_unique<StagedBehavior>(ServiceProfile{0.001, 0.002},
                                               load, 1.0,
                                               std::vector<Stage>{}));
  mesh.deploy("b", c, {},
              std::make_unique<StagedBehavior>(ServiceProfile{0.001, 0.002},
                                               load, 1.0,
                                               std::vector<Stage>{}));
  std::vector<Operation> ops;
  ops.push_back({0.8, {{Call{"a", true}}}});
  ops.push_back({0.2, {{Call{"b", true}}}});
  mesh.deploy("mix", c, {},
              std::make_unique<MixBehavior>(ServiceProfile{0.001, 0.002},
                                            load, 1.0, std::move(ops)));
  for (int i = 0; i < 2000; ++i) {
    mesh.find_deployment("mix", c)->handle(0, [](const mesh::Outcome&) {});
  }
  sim.run_until(120.0);
  // Denominator: operations that actually ran (a burst of 2000 overflows
  // the mix deployment's queues; rejected requests never pick an op).
  const double a_done =
      static_cast<double>(mesh.find_deployment("a", c)->completed());
  const double b_done =
      static_cast<double>(mesh.find_deployment("b", c)->completed());
  ASSERT_GT(a_done + b_done, 1500.0);
  EXPECT_NEAR(a_done / (a_done + b_done), 0.8, 0.04);
}

TEST(SocialRunner, EndToEndUnderAllPolicies) {
  DsbRunnerConfig config;
  config.warmup = 20.0;
  config.duration = 60.0;
  config.rps = 50.0;
  for (const auto kind :
       {workload::PolicyKind::kRoundRobin, workload::PolicyKind::kL3}) {
    const auto r = run_social_network(kind, config);
    EXPECT_NEAR(static_cast<double>(r.requests), 3000.0, 60.0);
    EXPECT_GT(r.summary.latency.p50, 0.003);
    EXPECT_LT(r.summary.latency.p50, 0.300);
    EXPECT_DOUBLE_EQ(r.summary.success_rate, 1.0);
    EXPECT_EQ(r.scenario, "social-network");
  }
}

}  // namespace
}  // namespace l3::dsb
