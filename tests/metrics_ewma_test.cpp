// Tests for Eq. 1 (EWMA) and Eq. 2 (PeakEWMA), including exact decay values
// and the §4 defaults / converge-to-default behaviour.
#include "l3/metrics/ewma.h"

#include <gtest/gtest.h>

#include <cmath>

namespace l3::metrics {
namespace {

TEST(Ewma, ReportsDefaultBeforeSamples) {
  Ewma e(5.0, 5.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);  // §4: latency default 5 s
  EXPECT_FALSE(e.has_samples());
}

TEST(Ewma, ExactBlendAfterOneHalfLife) {
  // After exactly one half-life, the decay factor e^(−Δt/β) with
  // β = h/ln2 equals 1/2 — the defining property.
  Ewma e(1.0, 5.0, /*start_time=*/0.0);
  e.observe(3.0, 5.0);
  EXPECT_NEAR(e.value(), 3.0 * 0.5 + 1.0 * 0.5, 1e-12);
  EXPECT_TRUE(e.has_samples());
}

TEST(Ewma, ExactBlendArbitraryDt) {
  const double half_life = 5.0;
  const double beta = beta_from_half_life(half_life);
  Ewma e(2.0, half_life, 0.0);
  e.observe(10.0, 3.0);
  const double decay = std::exp(-3.0 / beta);
  EXPECT_NEAR(e.value(), 10.0 * (1.0 - decay) + 2.0 * decay, 1e-12);
}

TEST(Ewma, ZeroDtLeavesValueUnchanged) {
  Ewma e(1.0, 5.0, 0.0);
  e.observe(4.0, 5.0);
  const double before = e.value();
  e.observe(100.0, 5.0);  // Δt = 0 → decay = 1 → no effect
  EXPECT_DOUBLE_EQ(e.value(), before);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(5.0, 5.0, 0.0);
  for (int i = 1; i <= 40; ++i) e.observe(0.1, static_cast<double>(i) * 5.0);
  EXPECT_NEAR(e.value(), 0.1, 1e-3);
}

TEST(Ewma, BoundedBySampleRange) {
  Ewma e(0.5, 5.0, 0.0);
  for (int i = 1; i <= 100; ++i) {
    e.observe((i % 2 == 0) ? 0.2 : 0.8, static_cast<double>(i));
    EXPECT_GE(e.value(), 0.2 - 1e-12);
    EXPECT_LE(e.value(), 0.8 + 1e-12);
  }
}

TEST(Ewma, ConvergeToDefaultMovesBack) {
  Ewma e(5.0, 5.0, 0.0);
  e.observe(0.1, 5.0);
  const double after_sample = e.value();
  e.converge_to_default(10.0);
  EXPECT_GT(e.value(), after_sample);  // heading back toward 5.0
  for (int i = 3; i < 30; ++i) e.converge_to_default(static_cast<double>(i) * 5.0);
  EXPECT_NEAR(e.value(), 5.0, 0.01);  // §4: reaches the initial state
}

TEST(Ewma, ConvergeToDefaultDoesNotMarkSamples) {
  // Regression: converge_to_default used to route through observe(), which
  // set has_samples_ — so a backend that had NEVER reported data looked
  // like one with fresh samples after its first staleness tick, and the
  // controller's have-data bookkeeping lied upstream.
  Ewma e(5.0, 5.0, 0.0);
  e.converge_to_default(10.0);
  EXPECT_FALSE(e.has_samples());
  // The numeric trajectory is the same blend observe(default) produced.
  EXPECT_DOUBLE_EQ(e.value(), 5.0);

  // And converging after real samples keeps the flag set.
  e.observe(0.1, 15.0);
  e.converge_to_default(20.0);
  EXPECT_TRUE(e.has_samples());
}

TEST(PeakEwma, ConvergeToDefaultDoesNotMarkSamples) {
  PeakEwma p(0.1, 5.0, 0.0);
  p.converge_to_default(10.0);
  EXPECT_FALSE(p.has_samples());
  p.observe(3.0, 15.0);
  EXPECT_TRUE(p.has_samples());
  p.converge_to_default(20.0);
  EXPECT_TRUE(p.has_samples());
}

TEST(PeakEwma, ConvergeToDefaultRejectsTimeTravel) {
  PeakEwma p(0.1, 5.0, 10.0);
  EXPECT_THROW(p.converge_to_default(5.0), ContractViolation);
}

TEST(Ewma, ResetRestoresDefault) {
  Ewma e(5.0, 5.0, 0.0);
  e.observe(0.1, 5.0);
  e.reset(6.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  EXPECT_FALSE(e.has_samples());
}

TEST(Ewma, RejectsTimeTravel) {
  Ewma e(1.0, 5.0, 10.0);
  EXPECT_THROW(e.observe(1.0, 5.0), ContractViolation);
}

TEST(PeakEwma, JumpsToPeakInstantly) {
  // Eq. 2 middle case: a sample above the current value replaces it.
  PeakEwma p(0.1, 5.0, 0.0);
  p.observe(2.0, 1.0);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

TEST(PeakEwma, DecaysCautiouslyBelowPeak) {
  PeakEwma p(0.1, 5.0, 0.0);
  p.observe(2.0, 1.0);
  p.observe(0.1, 6.0);  // one half-life later
  EXPECT_NEAR(p.value(), 0.1 * 0.5 + 2.0 * 0.5, 1e-12);
  EXPECT_GT(p.value(), 0.1);  // still remembers the peak
}

TEST(PeakEwma, MatchesEwmaOnMonotoneDecreasingInput) {
  // When samples never exceed the current value, PeakEWMA == EWMA.
  Ewma e(5.0, 5.0, 0.0);
  PeakEwma p(5.0, 5.0, 0.0);
  double v = 4.0;
  for (int i = 1; i < 20; ++i) {
    e.observe(v, static_cast<double>(i));
    p.observe(v, static_cast<double>(i));
    v *= 0.8;
  }
  EXPECT_NEAR(e.value(), p.value(), 1e-12);
}

TEST(PeakEwma, ReactsFasterThanEwmaToSpikes) {
  Ewma e(0.1, 5.0, 0.0);
  PeakEwma p(0.1, 5.0, 0.0);
  e.observe(3.0, 1.0);
  p.observe(3.0, 1.0);
  EXPECT_GT(p.value(), e.value());  // the defining behavioural difference
}

TEST(PeakEwma, ConvergeToDefaultDecaysPeak) {
  PeakEwma p(0.1, 5.0, 0.0);
  p.observe(3.0, 1.0);
  for (int i = 2; i < 20; ++i) p.converge_to_default(static_cast<double>(i) * 5.0);
  EXPECT_NEAR(p.value(), 0.1, 0.01);
}

TEST(LatencyFilter, DispatchesByKind) {
  LatencyFilter ewma(FilterKind::kEwma, 0.1, 5.0, 0.0);
  LatencyFilter peak(FilterKind::kPeakEwma, 0.1, 5.0, 0.0);
  ewma.observe(3.0, 1.0);
  peak.observe(3.0, 1.0);
  EXPECT_DOUBLE_EQ(peak.value(), 3.0);
  EXPECT_LT(ewma.value(), 3.0);
  EXPECT_EQ(ewma.kind(), FilterKind::kEwma);
  EXPECT_EQ(peak.kind(), FilterKind::kPeakEwma);
  EXPECT_TRUE(ewma.has_samples());
}

TEST(BetaFromHalfLife, Definition) {
  // β = h / ln2 ⇒ e^(−h/β) = 1/2.
  const double beta = beta_from_half_life(10.0);
  EXPECT_NEAR(std::exp(-10.0 / beta), 0.5, 1e-12);
}

/// Property sweep over half-lives: after n half-lives the initial value's
/// weight is 2^−n.
class HalfLifeSweep : public ::testing::TestWithParam<double> {};

TEST_P(HalfLifeSweep, GeometricDecay) {
  const double h = GetParam();
  Ewma e(1.0, h, 0.0);
  // Observe zero at each half-life boundary; value should halve each time.
  double expected = 1.0;
  for (int n = 1; n <= 6; ++n) {
    e.observe(0.0, static_cast<double>(n) * h);
    expected *= 0.5;
    EXPECT_NEAR(e.value(), expected, 1e-9) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(HalfLives, HalfLifeSweep,
                         ::testing::Values(0.5, 1.0, 5.0, 10.0, 60.0));

}  // namespace
}  // namespace l3::metrics
