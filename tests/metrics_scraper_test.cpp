// Tests for the scrape loop: periodic snapshots, multiple targets, scrape
// gaps (disabled targets), and end-to-end registry→TSDB flow.
#include "l3/metrics/scraper.h"

#include <gtest/gtest.h>

namespace l3::metrics {
namespace {

class ScraperTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TimeSeriesDb tsdb;
  Registry registry;
};

TEST_F(ScraperTest, ScrapesOnInterval) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  Counter& c = registry.counter("req", {});
  scraper.start(5.0);

  c.add(10.0);
  sim.run_until(12.0);  // scrapes at t=5, t=10
  EXPECT_EQ(scraper.scrape_count(), 2u);
  const auto rate = tsdb.rate("req{}", 10.0, 12.0);
  ASSERT_TRUE(rate.has_value());
  EXPECT_DOUBLE_EQ(*rate, 0.0);  // counter static between the two scrapes

  c.add(25.0);
  sim.run_until(16.0);  // scrape at t=15 sees 35
  const auto rate2 = tsdb.rate("req{}", 10.0, 16.0);
  ASSERT_TRUE(rate2.has_value());
  EXPECT_DOUBLE_EQ(*rate2, 25.0 / 5.0);
}

TEST_F(ScraperTest, ScrapeOnceIsImmediate) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  registry.gauge("g", {}).set(3.0);
  scraper.scrape_once();
  EXPECT_EQ(scraper.scrape_count(), 1u);
  EXPECT_DOUBLE_EQ(*tsdb.last("g{}", 1.0, 0.0), 3.0);
}

TEST_F(ScraperTest, DisabledTargetLeavesGap) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  Counter& c = registry.counter("req", {});
  scraper.start(5.0);
  c.add(5.0);
  sim.run_until(11.0);
  ASSERT_TRUE(tsdb.rate("req{}", 10.0, 11.0).has_value());

  // Inject a scrape outage (the §4 ">10 s without data" path).
  EXPECT_TRUE(scraper.set_target_enabled("t", false));
  sim.run_until(40.0);
  EXPECT_FALSE(tsdb.rate("req{}", 10.0, 40.0).has_value());

  // Recovery.
  EXPECT_TRUE(scraper.set_target_enabled("t", true));
  sim.run_until(55.0);
  EXPECT_TRUE(tsdb.rate("req{}", 10.0, 55.0).has_value());
}

TEST_F(ScraperTest, UnknownTargetNameReturnsFalse) {
  Scraper scraper(sim, tsdb);
  EXPECT_FALSE(scraper.set_target_enabled("missing", false));
}

TEST_F(ScraperTest, MultipleTargetsAllScraped) {
  Registry r2;
  Scraper scraper(sim, tsdb);
  scraper.add_target("a", registry);
  scraper.add_target("b", r2);
  registry.counter("m", {{"t", "a"}}).add(1.0);
  r2.counter("m", {{"t", "b"}}).add(2.0);
  scraper.scrape_once();
  EXPECT_DOUBLE_EQ(*tsdb.last("m{t=a}", 1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*tsdb.last("m{t=b}", 1.0, 0.0), 2.0);
}

TEST_F(ScraperTest, HistogramsFlowThrough) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  HistogramSeries& h = registry.histogram("lat", {});
  scraper.start(5.0);
  sim.run_until(6.0);  // baseline scrape with no data
  for (int i = 0; i < 100; ++i) h.record(0.050);
  sim.run_until(11.0);
  const auto p99 = tsdb.quantile("lat{}", 0.99, 10.0, 11.0);
  ASSERT_TRUE(p99.has_value());
  // All observations are in the (40 ms, 50 ms] Linkerd bucket.
  EXPECT_GT(*p99, 0.040);
  EXPECT_LE(*p99, 0.050 + 1e-12);
}

TEST_F(ScraperTest, StopHaltsScraping) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  scraper.start(5.0);
  sim.run_until(11.0);
  const auto count = scraper.scrape_count();
  scraper.stop();
  sim.run_until(100.0);
  EXPECT_EQ(scraper.scrape_count(), count);
}

TEST_F(ScraperTest, PicksUpSeriesCreatedMidRun) {
  // The snapshot plan is cached per target and rebuilt only on registry
  // version bumps — a series created between scrapes must still appear.
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  registry.counter("a", {}).add(1.0);
  scraper.start(5.0);
  sim.run_until(6.0);  // scrape at t=5 plans only "a"
  EXPECT_FALSE(tsdb.last("b{}", 100.0, sim.now()).has_value());

  registry.counter("b", {}).add(3.0);
  sim.run_until(11.0);  // scrape at t=10 must rebuild the plan
  const auto b = tsdb.last("b{}", 100.0, sim.now());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(*b, 3.0);
  const auto a = tsdb.last("a{}", 100.0, sim.now());
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(*a, 1.0);
}

}  // namespace
}  // namespace l3::metrics
