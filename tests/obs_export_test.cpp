// Chrome trace export of obs snapshots: a golden byte-for-byte trace with
// counter tracks ("C" events), gauge tracks, and flight-recorder ring
// instants, plus the combined l3::trace overload that appends the obs
// process after the span/fault processes. The golden works under any
// L3_OBS setting because it drives the always-compiled Shard API directly.
#include "l3/obs/export.h"

#include "l3/obs/recorder.h"
#include "l3/trace/export.h"

#include <gtest/gtest.h>

#include <deque>
#include <sstream>

namespace l3::obs {
namespace {

Recorder make_golden_recorder() {
  RecorderConfig config;
  config.ring_capacity = 4;
  return Recorder(config);
}

void populate_golden(Recorder& recorder) {
  ScopedRecorderBind bind(recorder);
  Shard* shard = local_shard();
  ASSERT_NE(shard, nullptr);
  shard->add(CounterId::kSimEvents, 3);
  shard->set_gauge(GaugeId::kMeshInflight, 2.0);
  recorder.sample_tracks(1.0);
  shard->event(Domain::kMesh, 2.5, EventCode::kPickerRebuild, 7, 3.0);
}

TEST(ObsExport, GoldenChromeTraceWithCounterTracks) {
  Recorder recorder = make_golden_recorder();
  populate_golden(recorder);
  std::ostringstream os;
  write_chrome_trace(recorder.snapshot(), os);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"obs\"}},\n"
      "{\"name\":\"rt.counter.sim.events\",\"ph\":\"C\",\"ts\":1000000.000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"value\":3}},\n"
      "{\"name\":\"rt.gauge.mesh.inflight\",\"ph\":\"C\",\"ts\":1000000.000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"value\":2}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2,"
      "\"args\":{\"name\":\"ring:mesh\"}},\n"
      "{\"name\":\"rt.event.mesh.picker_rebuild\",\"cat\":\"obs\","
      "\"ph\":\"i\",\"s\":\"t\",\"ts\":2500000.000,\"pid\":0,\"tid\":2,"
      "\"args\":{\"arg\":7,\"value\":3}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ObsExport, GoldenTraceIsReproducible) {
  std::string renders[2];
  for (std::string& render : renders) {
    Recorder recorder = make_golden_recorder();
    populate_golden(recorder);
    std::ostringstream os;
    write_chrome_trace(recorder.snapshot(), os);
    render = os.str();
  }
  EXPECT_EQ(renders[0], renders[1]);
}

TEST(ObsExport, EmptySnapshotStillNamesTheProcess) {
  Recorder recorder;
  std::ostringstream os;
  write_chrome_trace(recorder.snapshot(), os);
  EXPECT_EQ(os.str(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"obs\"}}\n"
            "]}\n");
}

TEST(ObsExport, CombinedTraceOverloadAppendsObsProcess) {
  Recorder recorder = make_golden_recorder();
  populate_golden(recorder);
  const Snapshot snapshot = recorder.snapshot();

  const std::deque<trace::TraceRecord> traces;
  std::ostringstream with_obs;
  trace::write_chrome_trace(traces, {}, &snapshot, with_obs);
  const std::string combined = with_obs.str();
  EXPECT_NE(combined.find("\"name\":\"obs\""), std::string::npos);
  EXPECT_NE(combined.find("rt.counter.sim.events"), std::string::npos);
  EXPECT_NE(combined.find("rt.event.mesh.picker_rebuild"), std::string::npos);

  // Null snapshot degrades to the plain overload byte-for-byte.
  std::ostringstream without_obs, two_arg;
  trace::write_chrome_trace(traces, {}, nullptr, without_obs);
  trace::write_chrome_trace(traces, {}, two_arg);
  EXPECT_EQ(without_obs.str(), two_arg.str());
  EXPECT_EQ(without_obs.str().find("\"name\":\"obs\""), std::string::npos);
}

}  // namespace
}  // namespace l3::obs
