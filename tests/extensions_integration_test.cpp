// End-to-end tests for the extension features running through the full
// benchmark pipeline: cost-aware weighting, outlier-detection circuit
// breaking, per-request P2C routing, and client retries.
#include "l3/lb/cost_aware.h"
#include "l3/lb/l3_policy.h"
#include "l3/workload/runner.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::workload {
namespace {

ScenarioTrace uniform_trace(double median, double success, double rps,
                            SimDuration duration = 180.0) {
  ScenarioTrace trace("ext", 3, duration);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      trace.at(c, s) = TracePoint{median, median * 4.0, success};
    }
  }
  for (std::size_t s = 0; s < trace.steps(); ++s) trace.set_rps(s, rps);
  return trace;
}

RunnerConfig fast_config() {
  RunnerConfig config;
  config.warmup = 40.0;
  return config;
}

TEST(CostAwareIntegration, ShiftsTrafficLocalUnderEqualLatency) {
  const auto trace = uniform_trace(0.040, 1.0, 120.0);
  const auto plain = run_scenario(trace, PolicyKind::kL3, fast_config());

  lb::TransferCostMatrix costs(3);
  for (mesh::ClusterId from = 0; from < 3; ++from) {
    for (mesh::ClusterId to = 0; to < 3; ++to) {
      if (from != to) costs.set(from, to, 1.0);
    }
  }
  auto policy = std::make_unique<lb::CostAwareAdjuster>(
      std::make_unique<lb::L3Policy>(), costs, lb::CostAwareConfig{4.0});
  const auto aware =
      run_scenario_with(trace, std::move(policy), fast_config());

  EXPECT_GT(aware.traffic_share[0], plain.traffic_share[0] + 0.15);
  EXPECT_EQ(aware.policy, "cost-aware");
}

TEST(OutlierIntegration, CircuitBreakerLiftsSuccessRate) {
  // One cluster fails half its requests; round-robin with outlier
  // detection must eject it and recover most of the success rate.
  ScenarioTrace trace("one-bad", 3, 180.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{0.040, 0.160, 1.0};
    trace.at(1, s) = TracePoint{0.040, 0.160, 0.5};
    trace.at(2, s) = TracePoint{0.040, 0.160, 1.0};
    trace.set_rps(s, 120.0);
  }
  RunnerConfig plain = fast_config();
  RunnerConfig with_outlier = fast_config();
  with_outlier.outlier.enabled = true;
  with_outlier.outlier.failure_threshold = 0.4;
  with_outlier.outlier.min_requests = 20;

  const auto rr = run_scenario(trace, PolicyKind::kRoundRobin, plain);
  const auto breaker =
      run_scenario(trace, PolicyKind::kRoundRobin, with_outlier);
  EXPECT_NEAR(rr.summary.success_rate, 0.83, 0.03);  // 1/3 at 50 %
  EXPECT_GT(breaker.summary.success_rate, rr.summary.success_rate + 0.08);
  EXPECT_LT(breaker.traffic_share[1], 0.15);
}

TEST(P2CIntegration, PerRequestRoutingBeatsRoundRobinOnHeterogeneity) {
  ScenarioTrace trace("hetero", 3, 180.0);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    trace.at(0, s) = TracePoint{0.030, 0.120, 1.0};
    trace.at(1, s) = TracePoint{0.200, 0.800, 1.0};
    trace.at(2, s) = TracePoint{0.030, 0.120, 1.0};
    trace.set_rps(s, 120.0);
  }
  RunnerConfig p2c = fast_config();
  p2c.routing = mesh::RoutingMode::kPeakEwmaP2C;
  const auto rr = run_scenario(trace, PolicyKind::kRoundRobin, fast_config());
  const auto per_request =
      run_scenario(trace, PolicyKind::kRoundRobin, p2c);
  EXPECT_LT(per_request.summary.latency.p99,
            rr.summary.latency.p99 * 0.85);
  EXPECT_LT(per_request.traffic_share[1], 0.25);
}

TEST(RetryIntegration, RunnerRetriesImproveSuccess) {
  const auto trace = uniform_trace(0.030, 0.8, 100.0);
  RunnerConfig with_retries = fast_config();
  with_retries.client_retries = 3;
  with_retries.retry_backoff = 0.02;
  const auto base = run_scenario(trace, PolicyKind::kL3, fast_config());
  const auto retried = run_scenario(trace, PolicyKind::kL3, with_retries);
  EXPECT_NEAR(base.summary.success_rate, 0.8, 0.03);
  EXPECT_GT(retried.summary.success_rate, 0.985);  // 1 − 0.2⁴
  EXPECT_GT(retried.mean_attempts, 1.15);
  EXPECT_GT(retried.summary.latency.mean, base.summary.latency.mean);
}

TEST(DynamicPenaltyIntegration, TracksFailureLatency) {
  // Dynamic penalty (§7): the runner wires the controller's failed-request
  // latency feedback into the policy; the run must complete with sane
  // output and a penalty that moved away from its initial value.
  const auto trace = uniform_trace(0.030, 0.85, 100.0);
  RunnerConfig config = fast_config();
  config.controller.dynamic_penalty = true;
  config.l3.weighting.penalty = 0.6;
  const auto r = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_GT(r.requests, 10000u);
  EXPECT_NEAR(r.summary.success_rate, 0.85, 0.03);
}

}  // namespace
}  // namespace l3::workload
