// Tests for the controller decision journal: bounded recording, latest()
// lookup, JSON export, and the integration guarantee that a journal entry's
// applied weights are the weights actually on the TrafficSplit.
#include "l3/trace/journal.h"

#include "l3/core/controller.h"
#include "l3/lb/l3_policy.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/simulator.h"
#include "l3/workload/client.h"
#include "test_json.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

namespace l3::trace {
namespace {

using l3::testing::JsonValidator;

DecisionEvent make_event(std::uint64_t tick, const std::string& service) {
  DecisionEvent event;
  event.time = static_cast<double>(tick) * 5.0;
  event.tick = tick;
  event.source_cluster = "c1";
  event.service = service;
  event.policy = "L3";
  BackendDecision backend;
  backend.dst_cluster = "c2";
  backend.raw_weight = 12.5;
  backend.rate_controlled_weight = 10.0;
  backend.applied_weight = 10;
  event.backends.push_back(backend);
  return event;
}

TEST(DecisionJournal, BoundedWithEviction) {
  DecisionJournal journal(3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    journal.record(make_event(i, "api"));
  }
  EXPECT_EQ(journal.events().size(), 3u);
  EXPECT_EQ(journal.recorded(), 5u);
  EXPECT_EQ(journal.evicted(), 2u);
  EXPECT_EQ(journal.events().front().tick, 3u);
  EXPECT_EQ(journal.events().back().tick, 5u);
}

TEST(DecisionJournal, LatestFindsNewestPerService) {
  DecisionJournal journal;
  journal.record(make_event(1, "api"));
  journal.record(make_event(2, "auth"));
  journal.record(make_event(3, "api"));
  const DecisionEvent* latest = journal.latest("api");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->tick, 3u);
  EXPECT_EQ(journal.latest("nope"), nullptr);
}

TEST(DecisionJournal, JsonExportIsValid) {
  DecisionJournal journal;
  journal.record(make_event(1, "api \"quoted\""));
  journal.record(make_event(2, "auth"));
  std::ostringstream os;
  journal.write_json(os);
  EXPECT_TRUE(JsonValidator::valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"raw_weight\":12.500000"), std::string::npos);
  EXPECT_NE(os.str().find("\"applied_weight\":10"), std::string::npos);
}

TEST(DecisionJournal, EmptyJournalExportsEmptyArray) {
  DecisionJournal journal;
  std::ostringstream os;
  journal.write_json(os);
  EXPECT_TRUE(JsonValidator::valid(os.str()));
}

// --- controller integration ----------------------------------------------

TEST(ControllerJournal, EntriesMatchTheAppliedTrafficSplitWeights) {
  sim::Simulator sim;
  SplitRng rng(5);
  mesh::Mesh mesh(sim, rng.split("mesh"));
  const auto c1 = mesh.add_cluster("c1");
  const auto c2 = mesh.add_cluster("c2");
  mesh.wan().set_symmetric(c1, c2, {.base = 0.005, .jitter_frac = 0.1});
  mesh::DeploymentConfig dc;
  mesh.deploy("api", c1, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(0.060, 0.250));
  mesh.deploy("api", c2, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.080));
  mesh.proxy(c1, "api");

  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("c1", mesh.registry(c1));
  scraper.start(5.0);

  core::L3Controller controller(mesh, tsdb, c1,
                                std::make_unique<lb::L3Policy>());
  controller.manage_all();
  controller.start();

  workload::OpenLoopClient client(
      mesh, c1, "api", [](SimTime) { return 50.0; }, rng.split("client"));
  client.start(0.0, 60.0);
  sim.run_until(70.0);

  const DecisionJournal& journal = controller.journal();
  ASSERT_GT(journal.events().size(), 5u);
  const DecisionEvent* last = journal.latest("api");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->policy, "L3");
  EXPECT_TRUE(last->applied);
  EXPECT_EQ(last->source_cluster, "c1");

  // The journal's applied weights are the ones on the TrafficSplit.
  mesh::TrafficSplit* split = mesh.find_split(c1, "api");
  ASSERT_NE(split, nullptr);
  const auto weights = split->weights();
  ASSERT_EQ(last->backends.size(), weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(last->backends[i].applied_weight, weights[i]);
  }
  // L3's intermediate stages are populated (raw != 0) and the faster c2
  // backend carries at least as much applied weight as slow c1.
  EXPECT_GT(last->backends[0].raw_weight, 0.0);
  EXPECT_GT(last->backends[1].raw_weight, 0.0);
  EXPECT_GE(last->backends[1].applied_weight,
            last->backends[0].applied_weight);

  // One event per managed split per tick.
  EXPECT_EQ(journal.recorded(), controller.ticks());
}

TEST(ControllerJournal, ZeroCapacityDisablesJournaling) {
  sim::Simulator sim;
  SplitRng rng(5);
  mesh::Mesh mesh(sim, rng.split("mesh"));
  const auto c1 = mesh.add_cluster("c1");
  mesh::DeploymentConfig dc;
  mesh.deploy("api", c1, dc,
              std::make_unique<mesh::FixedLatencyBehavior>(0.020, 0.080));
  mesh.proxy(c1, "api");
  metrics::TimeSeriesDb tsdb;
  core::ControllerConfig config;
  config.journal_capacity = 0;
  core::L3Controller controller(mesh, tsdb, c1,
                                std::make_unique<lb::L3Policy>(), config);
  controller.manage_all();
  controller.tick();
  controller.tick();
  EXPECT_EQ(controller.ticks(), 2u);
  EXPECT_TRUE(controller.journal().events().empty());
}

}  // namespace
}  // namespace l3::trace
