// Determinism regression tests for the event core and metrics pipeline.
//
// The simulator contract is that a fixed (topology, scenario, seed) triple
// reproduces the identical request trace — event order, routing decisions,
// recorded latencies, weight updates, everything. These tests digest a full
// end-to-end scenario run into a single FNV-1a hash and pin it against a
// golden value recorded before the allocation-free event-core / interned-
// series TSDB refactor, proving the hot-path rewrite preserved the trace
// bit-for-bit. They also run each configuration twice in-process to verify
// run-to-run reproducibility independently of the golden constants.
//
// If an INTENTIONAL behaviour change shifts the trace (e.g. a new event in
// the pipeline), re-record the constants from the failure output — but never
// to paper over an unintended divergence.
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace l3::workload {
namespace {

/// FNV-1a over raw bytes.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t mix_f64(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix_u64(h, bits);
}

/// Digests everything a RunResult exposes about the request trace: the
/// per-second timeline (count, percentiles, success rate, RPS), the overall
/// latency summary, per-cluster traffic shares and control-plane activity.
/// Any reordering of events, any changed routing decision and any shifted
/// timestamp in the pipeline perturbs at least one of these.
std::uint64_t trace_hash(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  h = mix_u64(h, r.requests);
  h = mix_u64(h, r.weight_updates);
  h = mix_f64(h, r.mean_attempts);
  h = mix_u64(h, r.summary.count);
  h = mix_f64(h, r.summary.success_rate);
  h = mix_f64(h, r.summary.latency.mean);
  h = mix_f64(h, r.summary.latency.p50);
  h = mix_f64(h, r.summary.latency.p99);
  h = mix_f64(h, r.summary.latency.max);
  h = mix_f64(h, r.summary.success_latency.mean);
  h = mix_f64(h, r.summary.success_latency.p99);
  for (const double share : r.traffic_share) h = mix_f64(h, share);
  for (const auto& bucket : r.timeline) {
    h = mix_f64(h, bucket.start);
    h = mix_u64(h, bucket.count);
    h = mix_f64(h, bucket.p50);
    h = mix_f64(h, bucket.p99);
    h = mix_f64(h, bucket.success_rate);
    h = mix_f64(h, bucket.rps);
  }
  return h;
}

RunnerConfig short_config() {
  RunnerConfig config;
  config.seed = 42;
  config.warmup = 20.0;
  config.duration = 40.0;
  return config;
}

// Golden hashes recorded from the pre-refactor (seed) build of this test on
// the reference toolchain. See the file comment before re-recording.
constexpr std::uint64_t kGoldenScenario1L3 = 0x1c6a1a5fa2809b1bull;
constexpr std::uint64_t kGoldenFailure1C3 = 0xfa4d7b14c44fe850ull;
// Recorded immediately before the pooled-call-state / cached-picker request-
// path overhaul; covers the routing paths the goldens above do not (PeakEWMA
// P2C picks and outlier-detection ejections).
constexpr std::uint64_t kGoldenFailure1P2cOutlier = 0x6a79e1052ef3ac06ull;
// Recorded when the l3::chaos fault injector landed; pin the full chaos
// event set (crash/restart, brownout, partition, scrape outage, controller
// pause) composed with the workload.
constexpr std::uint64_t kGoldenScenario1L3Chaos = 0xd6b24b589efecf56ull;
constexpr std::uint64_t kGoldenFailure1ChaosC3 = 0x0c5a4f23cdad9553ull;

/// A fault timeline dense enough that every fault kind fires inside the
/// 40 s measured window of short_config().
chaos::FaultPlan golden_chaos_plan() {
  chaos::FaultPlan plan;
  plan.crash("api", 1, 5.0, 10.0)
      .brownout(0, 2, 8.0, 10.0, 0.050)
      .partition(0, 1, 18.0, 6.0)
      .scrape_outage(25.0, 10.0)
      .controller_pause(30.0, 5.0);
  return plan;
}

TEST(Determinism, Scenario1L3MatchesGoldenTrace) {
  const ScenarioTrace trace = make_scenario1(1);
  const RunResult result = run_scenario(trace, PolicyKind::kL3,
                                        short_config());
  EXPECT_EQ(trace_hash(result), kGoldenScenario1L3)
      << "trace hash: 0x" << std::hex << trace_hash(result);
}

TEST(Determinism, Failure1C3WithRetriesMatchesGoldenTrace) {
  const ScenarioTrace trace = make_failure1(6);
  RunnerConfig config = short_config();
  config.poisson_arrivals = true;
  config.client_retries = 1;
  const RunResult result = run_scenario(trace, PolicyKind::kC3, config);
  EXPECT_EQ(trace_hash(result), kGoldenFailure1C3)
      << "trace hash: 0x" << std::hex << trace_hash(result);
}

TEST(Determinism, Failure1P2cOutlierMatchesGoldenTrace) {
  const ScenarioTrace trace = make_failure1(6);
  RunnerConfig config = short_config();
  config.routing = mesh::RoutingMode::kPeakEwmaP2C;
  config.outlier.enabled = true;
  config.outlier.min_requests = 20;
  config.outlier.ejection_duration = 5.0;
  const RunResult result = run_scenario(trace, PolicyKind::kRoundRobin,
                                        config);
  EXPECT_EQ(trace_hash(result), kGoldenFailure1P2cOutlier)
      << "trace hash: 0x" << std::hex << trace_hash(result);
}

TEST(Determinism, Scenario1L3ChaosMatchesGoldenTrace) {
  const ScenarioTrace trace = make_scenario1(1);
  RunnerConfig config = short_config();
  config.health_probe_interval = 0.0;
  config.faults = golden_chaos_plan();
  const RunResult result = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_EQ(trace_hash(result), kGoldenScenario1L3Chaos)
      << "trace hash: 0x" << std::hex << trace_hash(result);
}

TEST(Determinism, Failure1ChaosC3WithHealthMatchesGoldenTrace) {
  // Same fault timeline, different policy + routing surface: health probes
  // on (crash detection via probing) and retries exercising the
  // failure-retry path against crash-failed requests.
  const ScenarioTrace trace = make_failure1_chaos(6);
  RunnerConfig config = short_config();
  config.poisson_arrivals = true;
  config.client_retries = 1;
  config.faults = golden_chaos_plan();
  const RunResult result = run_scenario(trace, PolicyKind::kC3, config);
  EXPECT_EQ(trace_hash(result), kGoldenFailure1ChaosC3)
      << "trace hash: 0x" << std::hex << trace_hash(result);
}

TEST(Determinism, ChaosRunsReproduceIdenticalTraces) {
  const ScenarioTrace trace = make_failure1_chaos(6);
  RunnerConfig config = short_config();
  config.health_probe_interval = 0.0;
  config.faults = golden_chaos_plan();
  const RunResult a = run_scenario(trace, PolicyKind::kL3, config);
  const RunResult b = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_EQ(trace_hash(a), trace_hash(b));
  EXPECT_EQ(a.requests, b.requests);
  // The faults actually bite: some requests fail in the fault windows.
  EXPECT_LT(a.summary.success_rate, 1.0);
  EXPECT_GT(a.summary.success_rate, 0.5);
}

TEST(Determinism, RepeatedRunsReproduceIdenticalTraces) {
  const ScenarioTrace trace = make_scenario2(2);
  RunnerConfig config = short_config();
  config.poisson_arrivals = true;
  const RunResult a = run_scenario(trace, PolicyKind::kL3, config);
  const RunResult b = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_EQ(trace_hash(a), trace_hash(b));
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.weight_updates, b.weight_updates);
}

TEST(Determinism, DifferentSeedsProduceDifferentTraces) {
  const ScenarioTrace trace = make_scenario1(1);
  RunnerConfig config = short_config();
  const RunResult a = run_scenario(trace, PolicyKind::kL3, config);
  config.seed = 43;
  const RunResult b = run_scenario(trace, PolicyKind::kL3, config);
  EXPECT_NE(trace_hash(a), trace_hash(b));
}

}  // namespace
}  // namespace l3::workload
