// Tests for the shared bench argument parser: strict numeric validation
// (no raw atoi), the --jobs/--json flags, and error reporting.
#include "l3/exp/args.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace l3::exp {
namespace {

std::optional<BenchArgs> parse(std::vector<std::string> tokens,
                               std::string* error = nullptr) {
  std::vector<char*> argv;
  static std::string prog = "bench";
  argv.push_back(prog.data());
  for (auto& token : tokens) argv.push_back(token.data());
  std::string local;
  return try_parse_bench_args(static_cast<int>(argv.size()), argv.data(),
                              error ? error : &local);
}

TEST(ParseUintTest, AcceptsPlainDigits) {
  EXPECT_EQ(parse_uint("0"), 0u);
  EXPECT_EQ(parse_uint("42"), 42u);
  EXPECT_EQ(parse_uint("1000000"), 1000000u);
}

TEST(ParseUintTest, RejectsGarbage) {
  EXPECT_FALSE(parse_uint("").has_value());
  EXPECT_FALSE(parse_uint("-3").has_value());
  EXPECT_FALSE(parse_uint("3.5").has_value());
  EXPECT_FALSE(parse_uint("12abc").has_value());
  EXPECT_FALSE(parse_uint("abc").has_value());
  EXPECT_FALSE(parse_uint(" 7").has_value());
  EXPECT_FALSE(parse_uint("99999999999999999999999").has_value());
}

TEST(BenchArgsTest, Defaults) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->reps, -1);
  EXPECT_FALSE(args->fast);
  EXPECT_EQ(args->jobs, 0);
  EXPECT_TRUE(args->json.empty());
  EXPECT_FALSE(args->profile);
}

TEST(BenchArgsTest, ParsesProfile) {
  const auto args = parse({"--profile"});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->profile);
}

TEST(BenchArgsTest, ProfileComposesWithOtherFlags) {
  const auto args = parse({"--fast", "--profile", "--jobs", "2"});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->fast);
  EXPECT_TRUE(args->profile);
  EXPECT_EQ(args->jobs, 2);
}

TEST(BenchArgsTest, RejectsProfileMisspellings) {
  // The strict parser must not silently accept near-misses: a typo'd
  // --profile would otherwise run the bench unprofiled and waste the run.
  for (const char* typo :
       {"--profil", "--profiles", "--Profile", "-profile", "--prof"}) {
    std::string error;
    EXPECT_FALSE(parse({typo}, &error).has_value()) << typo;
    EXPECT_NE(error.find(typo), std::string::npos) << typo;
  }
}

TEST(BenchArgsTest, ProfileTakesNoValue) {
  // "--profile 1" leaves "1" as a stray positional → rejected.
  EXPECT_FALSE(parse({"--profile", "1"}).has_value());
}

TEST(BenchArgsTest, ParsesAllFlags) {
  const auto args =
      parse({"--fast", "--reps", "3", "--jobs", "8", "--json", "out.json"});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->fast);
  EXPECT_EQ(args->reps, 3);
  EXPECT_EQ(args->jobs, 8);
  EXPECT_EQ(args->json, "out.json");
}

TEST(BenchArgsTest, RejectsNonNumericReps) {
  std::string error;
  EXPECT_FALSE(parse({"--reps", "foo"}, &error).has_value());
  EXPECT_NE(error.find("--reps"), std::string::npos);
}

TEST(BenchArgsTest, RejectsNegativeAndZeroReps) {
  EXPECT_FALSE(parse({"--reps", "-2"}).has_value());
  EXPECT_FALSE(parse({"--reps", "0"}).has_value());
}

TEST(BenchArgsTest, RejectsMissingValues) {
  EXPECT_FALSE(parse({"--reps"}).has_value());
  EXPECT_FALSE(parse({"--jobs"}).has_value());
  EXPECT_FALSE(parse({"--json"}).has_value());
}

TEST(BenchArgsTest, RejectsInvalidJobs) {
  EXPECT_FALSE(parse({"--jobs", "zero"}).has_value());
  EXPECT_FALSE(parse({"--jobs", "0"}).has_value());
  EXPECT_FALSE(parse({"--jobs", "-1"}).has_value());
}

TEST(BenchArgsTest, RejectsUnknownFlags) {
  std::string error;
  EXPECT_FALSE(parse({"--frobnicate"}, &error).has_value());
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
}

TEST(BenchArgsTest, BatchDefaultsToDispatchBatch) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->batch, 64);
}

TEST(BenchArgsTest, ParsesBatchValue) {
  const auto args = parse({"--batch=16"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->batch, 16);
}

TEST(BenchArgsTest, NoBatchRestoresPerEventLoop) {
  const auto args = parse({"--no-batch"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->batch, 1);
}

TEST(BenchArgsTest, BatchComposesWithOtherFlags) {
  const auto args = parse({"--fast", "--batch=8", "--jobs", "2"});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->fast);
  EXPECT_EQ(args->batch, 8);
  EXPECT_EQ(args->jobs, 2);
}

TEST(BenchArgsTest, RejectsInvalidBatchValues) {
  for (const char* bad : {"--batch=0", "--batch=", "--batch=abc",
                          "--batch=-4", "--batch=3.5",
                          "--batch=99999999999999999999"}) {
    std::string error;
    EXPECT_FALSE(parse({bad}, &error).has_value()) << bad;
    EXPECT_NE(error.find("--batch"), std::string::npos) << bad;
  }
}

TEST(BenchArgsTest, RejectsDetachedBatchValue) {
  // Strict form is --batch=N; a bare --batch (with or without a following
  // token) must not silently parse.
  std::string error;
  EXPECT_FALSE(parse({"--batch"}, &error).has_value());
  EXPECT_NE(error.find("--batch"), std::string::npos);
  EXPECT_FALSE(parse({"--batch", "16"}).has_value());
}

TEST(BenchArgsTest, UsageMentionsEveryFlag) {
  const std::string usage = bench_usage("bench");
  EXPECT_NE(usage.find("--reps"), std::string::npos);
  EXPECT_NE(usage.find("--fast"), std::string::npos);
  EXPECT_NE(usage.find("--jobs"), std::string::npos);
  EXPECT_NE(usage.find("--json"), std::string::npos);
  EXPECT_NE(usage.find("--profile"), std::string::npos);
  EXPECT_NE(usage.find("--batch=N"), std::string::npos);
  EXPECT_NE(usage.find("--no-batch"), std::string::npos);
  EXPECT_NE(usage.find("--shards=N"), std::string::npos);
  EXPECT_NE(usage.find("--proxy-cost=US"), std::string::npos);
}

TEST(BenchArgsTest, ProxyCostDefaultsToZero) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->proxy_cost_us, 0);
}

TEST(BenchArgsTest, ParsesProxyCostValue) {
  const auto args = parse({"--proxy-cost=250"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->proxy_cost_us, 250);
}

TEST(BenchArgsTest, ProxyCostZeroIsExplicitlyAllowed) {
  // --proxy-cost=0 is the byte-identity baseline check.sh diffs against.
  const auto args = parse({"--proxy-cost=0"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->proxy_cost_us, 0);
}

TEST(BenchArgsTest, ProxyCostComposesWithOtherFlags) {
  const auto args =
      parse({"--fast", "--proxy-cost=100", "--shards=2", "--jobs", "3"});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->fast);
  EXPECT_EQ(args->proxy_cost_us, 100);
  EXPECT_EQ(args->shards, 2);
  EXPECT_EQ(args->jobs, 3);
}

TEST(BenchArgsTest, RejectsInvalidProxyCostValues) {
  for (const char* bad : {"--proxy-cost=", "--proxy-cost=abc",
                          "--proxy-cost=-50", "--proxy-cost=2.5",
                          "--proxy-cost=99999999999999999999"}) {
    std::string error;
    EXPECT_FALSE(parse({bad}, &error).has_value()) << bad;
    EXPECT_NE(error.find("--proxy-cost"), std::string::npos) << bad;
  }
}

TEST(BenchArgsTest, RejectsDetachedProxyCostValue) {
  std::string error;
  EXPECT_FALSE(parse({"--proxy-cost"}, &error).has_value());
  EXPECT_NE(error.find("--proxy-cost"), std::string::npos);
  EXPECT_FALSE(parse({"--proxy-cost", "100"}).has_value());
}

TEST(BenchArgsTest, ShardsDefaultsToOne) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->shards, 1);
}

TEST(BenchArgsTest, ParsesShardsValue) {
  const auto args = parse({"--shards=4"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->shards, 4);
}

TEST(BenchArgsTest, ShardsComposesWithOtherFlags) {
  const auto args =
      parse({"--fast", "--shards=2", "--jobs", "3", "--batch=8"});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->fast);
  EXPECT_EQ(args->shards, 2);
  EXPECT_EQ(args->jobs, 3);
  EXPECT_EQ(args->batch, 8);
}

TEST(BenchArgsTest, RejectsInvalidShardsValues) {
  std::string error;
  EXPECT_FALSE(parse({"--shards=0"}, &error).has_value());
  EXPECT_NE(error.find("--shards"), std::string::npos);
  EXPECT_FALSE(parse({"--shards=abc"}).has_value());
  EXPECT_FALSE(parse({"--shards=-2"}).has_value());
  EXPECT_FALSE(parse({"--shards=2.5"}).has_value());
  EXPECT_FALSE(parse({"--shards="}).has_value());
}

TEST(BenchArgsTest, RejectsDetachedShardsValue) {
  std::string error;
  EXPECT_FALSE(parse({"--shards"}, &error).has_value());
  EXPECT_NE(error.find("--shards"), std::string::npos);
  EXPECT_FALSE(parse({"--shards", "4"}).has_value());
}

}  // namespace
}  // namespace l3::exp
