// Tests for the data-plane proxy cost model (DESIGN.md §16): the per-edge
// connection pool (handshake / reuse / idle expiry / churn), the bounded-
// concurrency CPU service stage, the proxy integration (cost delay folded
// into the outbound leg, exactly-once connection release), and the
// zero-cost byte-identity contract through the scenario runner.
#include "l3/mesh/proxy_cost.h"

#include "l3/mesh/mesh.h"
#include "l3/workload/runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace l3::mesh {
namespace {

ProxyCostConfig small_pool_config() {
  ProxyCostConfig config;
  config.cpu_per_request = 0.001;
  config.handshake_cost = 0.005;
  config.concurrency = 2;
  config.pool_size = 2;
  config.idle_timeout = 10.0;
  return config;
}

TEST(ConnectionPool, FirstCheckoutPaysHandshakeReuseIsFree) {
  const ProxyCostConfig config = small_pool_config();
  EdgeConnectionPool pool;
  auto first = pool.checkout(0.0);
  EXPECT_TRUE(first.handshake);
  EXPECT_EQ(first.expired, 0u);
  EXPECT_FALSE(pool.release(1.0, /*close=*/false, config));
  EXPECT_EQ(pool.idle(), 1u);
  auto second = pool.checkout(2.0);
  EXPECT_FALSE(second.handshake);  // warm connection reused
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(ConnectionPool, IdleConnectionsExpire) {
  const ProxyCostConfig config = small_pool_config();  // idle_timeout 10
  EdgeConnectionPool pool;
  pool.checkout(0.0);
  pool.release(1.0, false, config);  // idle until 11
  auto hit = pool.checkout(10.9);
  EXPECT_FALSE(hit.handshake);
  pool.release(10.9, false, config);  // idle until 20.9
  auto miss = pool.checkout(21.0);
  EXPECT_TRUE(miss.handshake);  // the parked connection expired
  EXPECT_EQ(miss.expired, 1u);
}

TEST(ConnectionPool, PoolSizeBoundsIdleListAndOverflowCloses) {
  const ProxyCostConfig config = small_pool_config();  // pool_size 2
  EdgeConnectionPool pool;
  for (int i = 0; i < 3; ++i) pool.checkout(0.0);
  EXPECT_FALSE(pool.release(1.0, false, config));
  EXPECT_FALSE(pool.release(1.0, false, config));
  EXPECT_TRUE(pool.release(1.0, false, config));  // idle list full → closed
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(ConnectionPool, TimeoutClosesInsteadOfParking) {
  const ProxyCostConfig config = small_pool_config();
  EdgeConnectionPool pool;
  pool.checkout(0.0);
  EXPECT_TRUE(pool.release(1.0, /*close=*/true, config));  // churn
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_TRUE(pool.checkout(2.0).handshake);  // next request pays again
}

TEST(ConnectionPool, ReuseIsMostRecentlyReleasedFirst) {
  const ProxyCostConfig config = small_pool_config();  // idle_timeout 10
  EdgeConnectionPool pool;
  pool.checkout(0.0);
  pool.checkout(0.0);
  pool.release(1.0, false, config);  // expires at 11
  pool.release(5.0, false, config);  // expires at 15
  // At t=12 the older idle connection has expired; the MRU one is live.
  auto checkout = pool.checkout(12.0);
  EXPECT_FALSE(checkout.handshake);
  EXPECT_EQ(checkout.expired, 1u);
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(ConnectionPool, CpuStageQueuesBeyondConcurrency) {
  ProxyCpuStage stage;
  stage.configure(2);
  // Three admissions at t=0, 1 s service each: two run, the third waits.
  EXPECT_DOUBLE_EQ(stage.admit(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(stage.admit(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(stage.admit(0.0, 1.0), 2.0);
  EXPECT_EQ(stage.busy(0.5), 2u);
  // After the backlog drains, admission is immediate again.
  EXPECT_DOUBLE_EQ(stage.admit(5.0, 1.0), 6.0);
}

TEST(ConnectionPool, CostStatsHitRate) {
  ProxyCostStats stats;
  EXPECT_DOUBLE_EQ(stats.pool_hit_rate(), 1.0);
  stats.handshakes = 1;
  stats.pool_hits = 3;
  EXPECT_DOUBLE_EQ(stats.pool_hit_rate(), 0.75);
}

// ---------------------------------------------------------------------------
// Proxy integration.

/// Deterministic service behavior: exactly `latency` seconds, always
/// succeeds, draws no RNG — so response latencies are exact sums of the
/// behavior time and the cost-model delay.
class ConstLatencyBehavior final : public ServiceBehavior {
 public:
  explicit ConstLatencyBehavior(SimDuration latency) : latency_(latency) {}
  void invoke(const BehaviorContext& ctx, OutcomeFn done) override {
    ctx.sim.schedule_after(
        latency_, [done = std::move(done)]() mutable { done(Outcome{true}); });
  }

 private:
  SimDuration latency_;
};

class ProxyCostTest : public ::testing::Test {
 protected:
  /// Single-cluster mesh config with zero network delay so the response
  /// latency is exactly behavior latency + cost-model delay.
  static MeshConfig cost_mesh_config(ProxyCostConfig cost,
                                     SimDuration timeout = 30.0) {
    MeshConfig config;
    config.local_delay = 0.0;
    config.local_jitter_frac = 0.0;
    config.health_probe_interval = 0.0;
    config.request_timeout = timeout;
    config.proxy_cost = cost;
    return config;
  }

  sim::Simulator sim;
};

TEST_F(ProxyCostTest, ProxyCostAddsHandshakeAndCpuToLatency) {
  ProxyCostConfig cost;
  cost.cpu_per_request = 0.002;
  cost.handshake_cost = 0.010;
  cost.concurrency = 4;
  Mesh mesh(sim, SplitRng(7), cost_mesh_config(cost));
  const auto c = mesh.add_cluster("c1");
  mesh.deploy("svc", c, {}, std::make_unique<ConstLatencyBehavior>(0.100));
  Proxy& proxy = mesh.proxy(c, "svc");

  std::vector<double> latencies;
  auto call_once = [&] {
    mesh.call(c, "svc", 0,
              [&](const Response& r) { latencies.push_back(r.latency); });
    sim.run_until(sim.now() + 1.0);
  };
  call_once();  // cold edge: handshake + cpu + behavior
  call_once();  // warm edge: cpu + behavior
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_NEAR(latencies[0], 0.100 + 0.002 + 0.010, 1e-9);
  EXPECT_NEAR(latencies[1], 0.100 + 0.002, 1e-9);
  EXPECT_EQ(proxy.cost_stats().handshakes, 1u);
  EXPECT_EQ(proxy.cost_stats().pool_hits, 1u);
  EXPECT_EQ(proxy.idle_connections(0), 1u);
}

TEST_F(ProxyCostTest, ProxyCostSaturationQueuesAndIsVisibleInLatency) {
  ProxyCostConfig cost;
  cost.cpu_per_request = 0.010;
  cost.concurrency = 1;
  cost.pool_size = 64;
  Mesh mesh(sim, SplitRng(7), cost_mesh_config(cost));
  const auto c = mesh.add_cluster("c1");
  mesh.deploy("svc", c, {.replicas = 4, .concurrency = 64},
              std::make_unique<ConstLatencyBehavior>(0.001));
  Proxy& proxy = mesh.proxy(c, "svc");

  // A burst of 10 requests at t=0 through a 1-worker 10 ms stage: request
  // k starts its CPU service at k×10 ms — the proxy tier, not the backend,
  // sets the latency.
  std::vector<double> latencies(10, 0.0);
  for (int i = 0; i < 10; ++i) {
    mesh.call(c, "svc", 0,
              [&latencies, i](const Response& r) { latencies[i] = r.latency; });
  }
  sim.run_until(5.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(latencies[i], 0.010 * (i + 1) + 0.001, 1e-9) << "req " << i;
  }
  EXPECT_EQ(proxy.cost_stats().queued, 9u);
  EXPECT_NEAR(proxy.cost_stats().queue_delay_max, 0.090, 1e-9);
  EXPECT_NEAR(proxy.cost_stats().cpu_busy_total, 0.100, 1e-9);
}

TEST_F(ProxyCostTest, ProxyCostIdleExpiryCausesHandshakeStorm) {
  ProxyCostConfig cost;
  cost.cpu_per_request = 0.001;
  cost.handshake_cost = 0.005;
  cost.concurrency = 8;
  cost.pool_size = 8;
  cost.idle_timeout = 2.0;
  Mesh mesh(sim, SplitRng(7), cost_mesh_config(cost));
  const auto c = mesh.add_cluster("c1");
  mesh.deploy("svc", c, {.replicas = 2, .concurrency = 16},
              std::make_unique<ConstLatencyBehavior>(0.010));
  Proxy& proxy = mesh.proxy(c, "svc");

  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      mesh.call(c, "svc", 0, [](const Response&) {});
    }
    sim.run_until(sim.now() + 1.0);
  };
  burst(6);  // six overlapping requests → six handshakes, six parked conns
  const std::uint64_t first_wave = proxy.cost_stats().handshakes;
  EXPECT_EQ(first_wave, 6u);
  burst(6);  // warm pool → no new handshakes
  EXPECT_EQ(proxy.cost_stats().handshakes, first_wave);
  EXPECT_GE(proxy.cost_stats().pool_hits, 6u);
  // Traffic moves away for longer than idle_timeout, then returns: the
  // warm pool expired, so the returning burst pays handshakes again.
  sim.run_until(sim.now() + 5.0);
  burst(6);
  EXPECT_EQ(proxy.cost_stats().handshakes, first_wave + 6);
  EXPECT_GE(proxy.cost_stats().expired, 6u);
}

TEST_F(ProxyCostTest, ProxyCostTimeoutChurnsConnection) {
  ProxyCostConfig cost;
  cost.cpu_per_request = 0.001;
  cost.handshake_cost = 0.005;
  Mesh mesh(sim, SplitRng(7), cost_mesh_config(cost, /*timeout=*/1.0));
  const auto c = mesh.add_cluster("c1");
  // Behavior latency far beyond the 1 s client timeout.
  mesh.deploy("svc", c, {}, std::make_unique<ConstLatencyBehavior>(5.0));
  Proxy& proxy = mesh.proxy(c, "svc");

  bool timed_out = false;
  mesh.call(c, "svc", 0, [&](const Response& r) { timed_out = r.timed_out; });
  sim.run_until(10.0);  // timeout at 1 s; the late response lands at ~5 s
  EXPECT_TRUE(timed_out);
  // The timed-out call tore its connection down instead of parking it.
  EXPECT_EQ(proxy.cost_stats().closed, 1u);
  EXPECT_EQ(proxy.idle_connections(0), 0u);
  EXPECT_EQ(proxy.cost_stats().handshakes, 1u);
}

TEST_F(ProxyCostTest, ProxyCostDisabledKeepsNoState) {
  ProxyCostConfig cost;  // zero-cost defaults
  ASSERT_FALSE(cost.enabled());
  Mesh mesh(sim, SplitRng(7), cost_mesh_config(cost));
  const auto c = mesh.add_cluster("c1");
  mesh.deploy("svc", c, {}, std::make_unique<ConstLatencyBehavior>(0.010));
  Proxy& proxy = mesh.proxy(c, "svc");
  for (int i = 0; i < 20; ++i) {
    mesh.call(c, "svc", 0, [](const Response&) {});
  }
  sim.run_until(5.0);
  EXPECT_EQ(proxy.cost_stats().handshakes, 0u);
  EXPECT_EQ(proxy.cost_stats().pool_hits, 0u);
  EXPECT_EQ(proxy.cost_stats().cpu_busy_total, 0.0);
  EXPECT_EQ(proxy.idle_connections(0), 0u);
}

TEST_F(ProxyCostTest, AuditFamiliesRegisteredOnlyWhenEnabled) {
  // The audit surface is low-cardinality Prometheus families per proxy
  // ({split, src}); per-request detail stays in the obs RT rings. A
  // zero-cost mesh must not register the families at all (the registry —
  // and every scrape derived from it — is part of the byte-identity
  // contract).
  auto count_family = [](metrics::Registry& registry, const char* name) {
    std::size_t n = 0;
    registry.for_each(
        [&](const std::string& key, double) {
          if (key.find(name) != std::string::npos) ++n;
        },
        [](const std::string&, double) {},
        [](const std::string&, const metrics::HistogramSeries&) {});
    return n;
  };

  ProxyCostConfig cost;
  cost.cpu_per_request = 0.001;
  cost.handshake_cost = 0.005;
  Mesh costed(sim, SplitRng(7), cost_mesh_config(cost));
  const auto c = costed.add_cluster("c1");
  costed.deploy("svc", c, {}, std::make_unique<ConstLatencyBehavior>(0.010));
  costed.call(c, "svc", 0, [](const Response&) {});
  sim.run_until(1.0);
  EXPECT_EQ(count_family(costed.registry(c), "proxy_handshake_total"), 1u);
  EXPECT_EQ(count_family(costed.registry(c), "proxy_pool_hit_total"), 1u);
  EXPECT_EQ(count_family(costed.registry(c), "proxy_conn_close_total"), 1u);

  sim::Simulator sim2;
  Mesh plain(sim2, SplitRng(7), cost_mesh_config(ProxyCostConfig{}));
  const auto c2 = plain.add_cluster("c1");
  plain.deploy("svc", c2, {}, std::make_unique<ConstLatencyBehavior>(0.010));
  plain.call(c2, "svc", 0, [](const Response&) {});
  sim2.run_until(1.0);
  EXPECT_EQ(count_family(plain.registry(c2), "proxy_handshake_total"), 0u);
  EXPECT_EQ(count_family(plain.registry(c2), "proxy_pool_hit_total"), 0u);
  EXPECT_EQ(count_family(plain.registry(c2), "proxy_conn_close_total"), 0u);
}

// ---------------------------------------------------------------------------
// Runner-level contracts.

workload::ScenarioTrace uniform_trace(double median, double rps,
                                      SimDuration duration) {
  workload::ScenarioTrace trace("cost", 3, duration);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      trace.at(c, s) = workload::TracePoint{median, median * 4.0, 1.0};
    }
  }
  for (std::size_t s = 0; s < trace.steps(); ++s) trace.set_rps(s, rps);
  return trace;
}

TEST(ProxyCostRunner, ZeroCostDefaultsAreByteIdentical) {
  // Non-zero pool knobs with zero cpu/handshake keep the model disabled:
  // the run must be bit-for-bit the run without any cost config.
  const auto trace = uniform_trace(0.040, 80.0, 120.0);
  workload::RunnerConfig base;
  base.warmup = 30.0;
  const auto plain = run_scenario(trace, workload::PolicyKind::kL3, base);

  workload::RunnerConfig zero = base;
  zero.proxy_cost.pool_size = 64;      // non-default, but still zero-cost
  zero.proxy_cost.idle_timeout = 1.0;  // ditto
  zero.proxy_cost.concurrency = 1;     // ditto
  ASSERT_FALSE(zero.proxy_cost.enabled());
  const auto same = run_scenario(trace, workload::PolicyKind::kL3, zero);

  EXPECT_EQ(plain.requests, same.requests);
  EXPECT_EQ(plain.summary.latency.p50, same.summary.latency.p50);
  EXPECT_EQ(plain.summary.latency.p99, same.summary.latency.p99);
  EXPECT_EQ(plain.summary.success_rate, same.summary.success_rate);
  EXPECT_EQ(plain.weight_updates, same.weight_updates);
  EXPECT_EQ(plain.traffic_share, same.traffic_share);
  EXPECT_EQ(same.proxy_cost_stats.handshakes, 0u);
}

TEST(ProxyCostRunner, CostedRunPaysHandshakesAndCpu) {
  const auto trace = uniform_trace(0.040, 80.0, 120.0);
  workload::RunnerConfig config;
  config.warmup = 30.0;
  config.proxy_cost.cpu_per_request = 0.0005;
  config.proxy_cost.handshake_cost = 0.002;
  config.proxy_cost.concurrency = 8;
  config.proxy_cost.pool_size = 16;
  const auto result = run_scenario(trace, workload::PolicyKind::kL3, config);
  EXPECT_GT(result.requests, 0u);
  EXPECT_GT(result.proxy_cost_stats.handshakes, 0u);
  EXPECT_GT(result.proxy_cost_stats.pool_hits, 0u);
  EXPECT_GT(result.proxy_cost_stats.cpu_busy_total, 0.0);
  // Pooling works: the vast majority of requests reuse warm connections.
  EXPECT_GT(result.proxy_cost_stats.pool_hit_rate(), 0.9);
}

}  // namespace
}  // namespace l3::mesh
