// Tests for the TSDB queries: rate/increase windows, gauge averaging,
// histogram quantiles over bucket rates, retention, and the >=2-samples
// rule that motivates the paper's 10 s query window.
#include "l3/metrics/tsdb.h"

#include "l3/common/assert.h"

#include <gtest/gtest.h>

namespace l3::metrics {
namespace {

TEST(Tsdb, RateNeedsTwoSamples) {
  TimeSeriesDb db;
  db.append("c", 5.0, 10.0);
  EXPECT_FALSE(db.rate("c", 10.0, 10.0).has_value());
  db.append("c", 10.0, 30.0);
  const auto r = db.rate("c", 10.0, 10.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, (30.0 - 10.0) / 5.0);  // 4 per second
}

TEST(Tsdb, RateUsesOnlyWindowSamples) {
  TimeSeriesDb db;
  db.append("c", 0.0, 0.0);
  db.append("c", 5.0, 100.0);
  db.append("c", 10.0, 100.0);
  db.append("c", 15.0, 100.0);
  // Window [5, 15]: first = (5, 100), last = (15, 100) → rate 0.
  const auto r = db.rate("c", 10.0, 15.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(Tsdb, UnknownSeriesReturnsNullopt) {
  TimeSeriesDb db;
  EXPECT_FALSE(db.rate("nope", 10.0, 100.0).has_value());
  EXPECT_FALSE(db.avg("nope", 10.0, 100.0).has_value());
  EXPECT_FALSE(db.last("nope", 10.0, 100.0).has_value());
  EXPECT_FALSE(db.quantile("nope", 0.99, 10.0, 100.0).has_value());
}

TEST(Tsdb, IncreaseScalesRateByWindow) {
  TimeSeriesDb db;
  db.append("c", 0.0, 0.0);
  db.append("c", 10.0, 50.0);
  const auto inc = db.increase("c", 10.0, 10.0);
  ASSERT_TRUE(inc.has_value());
  EXPECT_DOUBLE_EQ(*inc, 50.0);
}

TEST(Tsdb, AvgOfGaugeSamples) {
  TimeSeriesDb db;
  db.append("g", 0.0, 2.0);
  db.append("g", 5.0, 4.0);
  db.append("g", 10.0, 6.0);
  const auto a = db.avg("g", 10.0, 10.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(*a, 4.0);
  // One sample is enough for avg (unlike rate).
  const auto single = db.avg("g", 2.0, 10.0);
  ASSERT_TRUE(single.has_value());
  EXPECT_DOUBLE_EQ(*single, 6.0);
}

TEST(Tsdb, LastReturnsMostRecentInWindow) {
  TimeSeriesDb db;
  db.append("g", 0.0, 1.0);
  db.append("g", 5.0, 2.0);
  db.append("g", 10.0, 3.0);
  EXPECT_DOUBLE_EQ(*db.last("g", 20.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(*db.last("g", 20.0, 7.0), 2.0);
}

TEST(Tsdb, HistogramQuantileFromBucketDeltas) {
  TimeSeriesDb db;
  const std::vector<double> bounds = {0.1, 0.2};
  // At t=0: 0 observations. At t=10: 100 observations, all in (0.1, 0.2].
  db.append_histogram("h", 0.0, bounds, {0.0, 0.0, 0.0});
  db.append_histogram("h", 10.0, bounds, {0.0, 100.0, 100.0});
  const auto q = db.quantile("h", 0.5, 10.0, 10.0);
  ASSERT_TRUE(q.has_value());
  EXPECT_NEAR(*q, 0.15, 1e-12);
}

TEST(Tsdb, HistogramQuantileIgnoresHistoryBeforeWindow) {
  TimeSeriesDb db;
  const std::vector<double> bounds = {0.1, 0.2};
  // Old traffic in bucket 0; recent traffic in bucket 1. The windowed
  // quantile must only see the recent delta.
  db.append_histogram("h", 0.0, bounds, {1000.0, 1000.0, 1000.0});
  db.append_histogram("h", 50.0, bounds, {1000.0, 1000.0, 1000.0});
  db.append_histogram("h", 60.0, bounds, {1000.0, 1100.0, 1100.0});
  const auto q = db.quantile("h", 0.5, 10.0, 60.0);
  ASSERT_TRUE(q.has_value());
  EXPECT_GT(*q, 0.1);
}

TEST(Tsdb, HistogramQuantileNulloptOnNoTraffic) {
  TimeSeriesDb db;
  const std::vector<double> bounds = {0.1};
  db.append_histogram("h", 0.0, bounds, {5.0, 5.0});
  db.append_histogram("h", 10.0, bounds, {5.0, 5.0});
  EXPECT_FALSE(db.quantile("h", 0.99, 10.0, 10.0).has_value());
}

TEST(Tsdb, RetentionDropsOldSamples) {
  TimeSeriesDb db(/*retention=*/30.0);
  for (int t = 0; t <= 100; t += 5) {
    db.append("c", static_cast<double>(t), static_cast<double>(t));
  }
  // Samples older than 70 are gone; a window over them returns nothing.
  EXPECT_FALSE(db.rate("c", 10.0, 40.0).has_value());
  EXPECT_TRUE(db.rate("c", 10.0, 100.0).has_value());
}

TEST(Tsdb, RejectsOutOfOrderAppends) {
  TimeSeriesDb db;
  db.append("c", 10.0, 1.0);
  EXPECT_THROW(db.append("c", 5.0, 2.0), ContractViolation);
}

TEST(Tsdb, RejectsMismatchedHistogramBounds) {
  TimeSeriesDb db;
  db.append_histogram("h", 0.0, {0.1}, {0.0, 0.0});
  EXPECT_THROW(db.append_histogram("h", 1.0, {0.2}, {0.0, 0.0}),
               ContractViolation);
}

TEST(Tsdb, CompactDropsStaleSamplesOfIdleSeries) {
  TimeSeriesDb db(/*retention=*/30.0);
  // "idle" receives one early batch and then goes quiet — per-series trim
  // only runs on append, so without compact() its samples would live forever.
  db.append("idle", 0.0, 1.0);
  db.append("idle", 5.0, 2.0);
  db.append("live", 0.0, 1.0);
  EXPECT_EQ(db.sample_count("idle"), 2u);
  db.append("live", 100.0, 2.0);
  EXPECT_EQ(db.sample_count("idle"), 2u);  // untouched by other appends

  db.compact(100.0);
  EXPECT_EQ(db.sample_count("idle"), 0u);
  EXPECT_EQ(db.series_count(), 1u);  // empty series erased entirely
  EXPECT_EQ(db.sample_count("live"), 1u);
}

TEST(Tsdb, CompactErasesEmptyHistogramSeries) {
  TimeSeriesDb db(/*retention=*/30.0);
  const std::vector<double> bounds = {0.1};
  db.append_histogram("idle_h", 0.0, bounds, {1.0, 2.0});
  db.append_histogram("live_h", 100.0, bounds, {1.0, 2.0});
  EXPECT_EQ(db.histogram_series_count(), 2u);
  db.compact(100.0);
  EXPECT_EQ(db.histogram_series_count(), 1u);
  EXPECT_EQ(db.histogram_sample_count("idle_h"), 0u);
  EXPECT_EQ(db.histogram_sample_count("live_h"), 1u);
}

TEST(Tsdb, CompactKeepsSamplesInsideRetention) {
  TimeSeriesDb db(/*retention=*/30.0);
  db.append("c", 80.0, 1.0);
  db.append("c", 90.0, 2.0);
  db.compact(100.0);
  EXPECT_EQ(db.sample_count("c"), 2u);
  ASSERT_TRUE(db.rate("c", 30.0, 100.0).has_value());
}

TEST(Tsdb, FiveSecondScrapeTenSecondWindowAlwaysHasTwoSamples) {
  // The paper's §4 choice: scrape every 5 s, query 10 s windows — verify
  // the invariant it exists for.
  TimeSeriesDb db;
  for (int i = 0; i <= 20; ++i) {
    db.append("c", 5.0 * i, static_cast<double>(i));
  }
  for (double now = 10.0; now <= 100.0; now += 1.7) {
    EXPECT_TRUE(db.rate("c", 10.0, now).has_value()) << "now=" << now;
  }
}

TEST(Tsdb, SeriesIdInterningIsStable) {
  TimeSeriesDb db;
  const SeriesId a = db.series("req{dst=\"c1\"}");
  const SeriesId a2 = db.series("req{dst=\"c1\"}");
  const SeriesId b = db.series("req{dst=\"c2\"}");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, a2);
  EXPECT_FALSE(a == b);
  // Scalar and histogram namespaces are independent.
  const HistogramId h = db.histogram_series("req{dst=\"c1\"}");
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h, db.histogram_series("req{dst=\"c1\"}"));
}

TEST(Tsdb, FindSeriesDoesNotCreate) {
  TimeSeriesDb db;
  EXPECT_FALSE(db.find_series("missing{}").valid());
  EXPECT_EQ(db.series_count(), 0u);
  const SeriesId id = db.series("present{}");
  EXPECT_EQ(db.find_series("present{}"), id);
}

TEST(Tsdb, IdAndStringQueriesAgree) {
  TimeSeriesDb db;
  const SeriesId id = db.series("lat{}");
  db.append(id, 5.0, 1.0);
  db.append(id, 10.0, 4.0);
  ASSERT_TRUE(db.rate(id, 10.0, 10.0).has_value());
  EXPECT_EQ(db.rate(id, 10.0, 10.0), db.rate("lat{}", 10.0, 10.0));
  EXPECT_EQ(db.avg(id, 10.0, 10.0), db.avg("lat{}", 10.0, 10.0));
  EXPECT_EQ(db.last(id, 10.0, 10.0), db.last("lat{}", 10.0, 10.0));
  EXPECT_EQ(db.sample_count(id), db.sample_count("lat{}"));
}

TEST(Tsdb, InternedIdStaysUsableAfterCompactEmptiesSeries) {
  TimeSeriesDb db(/*retention=*/30.0);
  const SeriesId id = db.series("c{}");
  db.append(id, 0.0, 1.0);
  EXPECT_EQ(db.series_count(), 1u);
  db.compact(100.0);  // all samples aged out
  EXPECT_EQ(db.series_count(), 0u);
  EXPECT_EQ(db.sample_count(id), 0u);
  db.append(id, 100.0, 2.0);  // the handle survives the compact
  EXPECT_EQ(db.series_count(), 1u);
  const auto v = db.last(id, 10.0, 100.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 2.0);
}

}  // namespace
}  // namespace l3::metrics
