// Tests for the per-simulation LogContext: scoped thread binding, level
// filtering (including the short-circuit before operand evaluation), time
// stamping, and isolation between contexts bound on different threads.
#include "l3/common/logging.h"

#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace l3 {
namespace {

struct Captured {
  LogLevel level;
  double time;
  bool has_time;
  std::string component;
  std::string message;
};

LogContext::Sink capture_into(std::vector<Captured>& out) {
  return [&out](const LogRecord& record) {
    out.push_back({record.level, record.time, record.has_time,
                   std::string(record.component),
                   std::string(record.message)});
  };
}

TEST(LogContextTest, SinkCapturesRecords) {
  LogContext context;
  ScopedLogBind bind(context);
  std::vector<Captured> captured;
  context.set_level(LogLevel::kInfo);
  context.set_sink(capture_into(captured));
  L3_LOG(kInfo, "test") << "hello " << 42;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured[0].component, "test");
  EXPECT_EQ(captured[0].message, "hello 42");
  EXPECT_FALSE(captured[0].has_time);
}

TEST(LogContextTest, LevelFilterAppliesBeforeTheSink) {
  LogContext context;
  ScopedLogBind bind(context);
  int calls = 0;
  context.set_level(LogLevel::kWarn);
  context.set_sink([&](const LogRecord&) { ++calls; });
  L3_LOG(kDebug, "test") << "filtered";
  L3_LOG(kInfo, "test") << "filtered";
  L3_LOG(kWarn, "test") << "passes";
  L3_LOG(kError, "test") << "passes";
  EXPECT_EQ(calls, 2);
  context.set_level(LogLevel::kOff);
  L3_LOG(kError, "test") << "off";
  EXPECT_EQ(calls, 2);
}

TEST(LogContextTest, DisabledLevelShortCircuitsOperandEvaluation) {
  LogContext context;
  ScopedLogBind bind(context);
  context.set_level(LogLevel::kWarn);
  context.set_sink([](const LogRecord&) {});
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string(1024, 'x');
  };
  L3_LOG(kDebug, "test") << expensive();
  L3_LOG(kInfo, "test") << expensive();
  EXPECT_EQ(evaluations, 0);  // operands of dropped lines never run
  L3_LOG(kWarn, "test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogContextTest, TimeProviderStampsRecords) {
  LogContext context;
  ScopedLogBind bind(context);
  std::vector<Captured> captured;
  double now = 12.5;
  context.set_level(LogLevel::kInfo);
  context.set_time_provider([&now] { return now; });
  context.set_sink(capture_into(captured));
  L3_LOG(kInfo, "sim") << "tick";
  now = 20.0;
  L3_LOG(kInfo, "sim") << "tock";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_TRUE(captured[0].has_time);
  EXPECT_DOUBLE_EQ(captured[0].time, 12.5);
  EXPECT_DOUBLE_EQ(captured[1].time, 20.0);
}

TEST(LogContextTest, UnboundThreadFallsBackToProcessDefault) {
  // No binding active in this scope beyond what gtest set up: current()
  // must be the process-wide default context.
  EXPECT_EQ(&LogContext::current(), &LogContext::process_default());
  {
    LogContext context;
    ScopedLogBind bind(context);
    EXPECT_EQ(&LogContext::current(), &context);
  }
  EXPECT_EQ(&LogContext::current(), &LogContext::process_default());
}

TEST(LogContextTest, BindingsNestAndRestore) {
  LogContext outer;
  LogContext inner;
  ScopedLogBind bind_outer(outer);
  EXPECT_EQ(&LogContext::current(), &outer);
  {
    ScopedLogBind bind_inner(inner);
    EXPECT_EQ(&LogContext::current(), &inner);
  }
  EXPECT_EQ(&LogContext::current(), &outer);
}

TEST(LogContextTest, SimulatorOwnsAndBindsItsContext) {
  std::vector<Captured> captured;
  {
    sim::Simulator sim;
    EXPECT_EQ(&LogContext::current(), &sim.log());
    sim.log().set_level(LogLevel::kInfo);
    sim.log().set_sink(capture_into(captured));
    sim.schedule_at(3.5, [] { L3_LOG(kInfo, "event") << "fired"; });
    sim.run_until(10.0);
  }
  // Destruction restored the previous (default) binding.
  EXPECT_EQ(&LogContext::current(), &LogContext::process_default());
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].message, "fired");
  EXPECT_TRUE(captured[0].has_time);  // the sim clock is the time provider
  EXPECT_DOUBLE_EQ(captured[0].time, 3.5);
}

TEST(LogContextTest, ConcurrentSimulatorsAreIsolated) {
  // Two simulators on two threads, each logging through its own context:
  // every record must land in its own sink, tagged with its own sim time.
  constexpr int kLines = 500;
  auto worker = [](const std::string& tag, std::vector<Captured>& out) {
    sim::Simulator sim;
    sim.log().set_level(LogLevel::kInfo);
    sim.log().set_sink(capture_into(out));
    for (int i = 0; i < kLines; ++i) {
      sim.schedule_at(static_cast<SimTime>(i), [&tag, i] {
        L3_LOG(kInfo, "worker") << tag << ":" << i;
      });
    }
    sim.run_until(1e9);
  };
  std::vector<Captured> a_records;
  std::vector<Captured> b_records;
  std::thread a([&] { worker("a", a_records); });
  std::thread b([&] { worker("b", b_records); });
  a.join();
  b.join();
  ASSERT_EQ(a_records.size(), static_cast<std::size_t>(kLines));
  ASSERT_EQ(b_records.size(), static_cast<std::size_t>(kLines));
  for (int i = 0; i < kLines; ++i) {
    EXPECT_EQ(a_records[i].message, "a:" + std::to_string(i));
    EXPECT_EQ(b_records[i].message, "b:" + std::to_string(i));
    EXPECT_DOUBLE_EQ(a_records[i].time, static_cast<double>(i));
  }
}

}  // namespace
}  // namespace l3
