// Tests for the Logger's sim-time context and pluggable sink. The logger is
// a process-wide singleton, so every test restores level / sink / time
// provider on exit.
#include "l3/common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace l3 {
namespace {

/// Restores global logger state after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = Logger::instance().level(); }
  void TearDown() override {
    Logger::instance().set_level(saved_level_);
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_time_provider(nullptr);
  }

  LogLevel saved_level_ = LogLevel::kWarn;
};

struct Captured {
  LogLevel level;
  double time;
  bool has_time;
  std::string component;
  std::string message;
};

TEST_F(LoggingTest, SinkCapturesRecords) {
  std::vector<Captured> captured;
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().set_sink([&](const LogRecord& record) {
    captured.push_back({record.level, record.time, record.has_time,
                        std::string(record.component),
                        std::string(record.message)});
  });
  L3_LOG(kInfo, "test") << "hello " << 42;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured[0].component, "test");
  EXPECT_EQ(captured[0].message, "hello 42");
  EXPECT_FALSE(captured[0].has_time);
}

TEST_F(LoggingTest, LevelFilterAppliesBeforeTheSink) {
  int calls = 0;
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_sink([&](const LogRecord&) { ++calls; });
  L3_LOG(kDebug, "test") << "filtered";
  L3_LOG(kInfo, "test") << "filtered";
  L3_LOG(kWarn, "test") << "passes";
  L3_LOG(kError, "test") << "passes";
  EXPECT_EQ(calls, 2);
  Logger::instance().set_level(LogLevel::kOff);
  L3_LOG(kError, "test") << "off";
  EXPECT_EQ(calls, 2);
}

TEST_F(LoggingTest, TimeProviderStampsRecords) {
  std::vector<Captured> captured;
  double now = 12.5;
  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().set_time_provider([&now] { return now; });
  Logger::instance().set_sink([&](const LogRecord& record) {
    captured.push_back({record.level, record.time, record.has_time,
                        std::string(record.component),
                        std::string(record.message)});
  });
  L3_LOG(kInfo, "sim") << "tick";
  now = 20.0;
  L3_LOG(kInfo, "sim") << "tock";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_TRUE(captured[0].has_time);
  EXPECT_DOUBLE_EQ(captured[0].time, 12.5);
  EXPECT_DOUBLE_EQ(captured[1].time, 20.0);
}

TEST_F(LoggingTest, NullSinkRestoresDefaultOutput) {
  int calls = 0;
  Logger::instance().set_level(LogLevel::kOff);  // keep stderr quiet
  Logger::instance().set_sink([&](const LogRecord&) { ++calls; });
  Logger::instance().set_sink(nullptr);
  L3_LOG(kError, "test") << "to stderr (filtered by kOff)";
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace l3
