// Tests for percentile/mean/stddev helpers and the latency summary.
#include "l3/common/stats.h"

#include "l3/common/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace l3 {
namespace {

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile(std::vector<double>{}, 0.5), 0.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{3.5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 3.5);
}

TEST(Percentile, InterpolatesLikeNumpy) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 2.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);  // classic example
}

TEST(Stats, StddevDegenerateCases) {
  EXPECT_EQ(stddev(std::vector<double>{}), 0.0);
  EXPECT_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Summarize, OrdersPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  const LatencySummary s = summarize(v);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p99, 990.0, 1.5);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const LatencySummary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_ms(0.1234, 1), "123.4");
  EXPECT_EQ(fmt_percent(0.915, 1), "91.5");
}

}  // namespace
}  // namespace l3
