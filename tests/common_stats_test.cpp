// Tests for percentile/mean/stddev helpers and the latency summary.
#include "l3/common/stats.h"

#include "l3/common/table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

namespace l3 {
namespace {

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile(std::vector<double>{}, 0.5), 0.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{3.5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 3.5);
}

TEST(Percentile, InterpolatesLikeNumpy) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 2.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);  // classic example
}

TEST(Stats, StddevDegenerateCases) {
  EXPECT_EQ(stddev(std::vector<double>{}), 0.0);
  EXPECT_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Summarize, OrdersPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  const LatencySummary s = summarize(v);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p99, 990.0, 1.5);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const LatencySummary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(Percentile, SortedVariantMatchesUnsorted) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q), percentile(values, q));
  }
}

TEST(Percentile, LargeSampleMatchesComparisonSort) {
  // Above the internal radix-sort threshold the quantiles must still be
  // bit-identical to what a comparison sort produces — the scenario golden
  // traces hash them. Mix magnitudes across several octaves and exact
  // duplicates so every digit pass and tie path is exercised.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<double> values;
  values.reserve(60000);
  for (int i = 0; i < 60000; ++i) {
    const double magnitude =
        static_cast<double>(1ull << (next() % 20)) / 1024.0;
    values.push_back(magnitude *
                     (static_cast<double>(next() % 10000) + 1.0) / 10000.0);
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile(values, q), percentile_sorted(sorted, q));
  }
  const LatencySummary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.p50, percentile_sorted(sorted, 0.50));
  EXPECT_DOUBLE_EQ(s.p999, percentile_sorted(sorted, 0.999));
  EXPECT_DOUBLE_EQ(s.max, sorted.back());
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_ms(0.1234, 1), "123.4");
  EXPECT_EQ(fmt_percent(0.915, 1), "91.5");
}

}  // namespace
}  // namespace l3
