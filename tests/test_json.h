// Minimal recursive-descent JSON syntax validator for tests: checks that a
// string is one well-formed JSON value (objects, arrays, strings, numbers,
// true/false/null). No DOM — just accept/reject, enough to assert that
// exported trace/journal files parse.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace l3::testing {

class JsonValidator {
 public:
  /// True iff `text` is exactly one valid JSON value (plus whitespace).
  static bool valid(std::string_view text) {
    JsonValidator v(text);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    eat('-');
    if (!digits()) return false;
    if (eat('.') && !digits()) return false;
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
      skip_ws();
    }
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
      skip_ws();
    }
  }

  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace l3::testing
