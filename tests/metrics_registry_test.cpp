// Tests for the Prometheus-style registry: series identity, counter/gauge
// semantics, cumulative histogram export.
#include "l3/metrics/registry.h"

#include <gtest/gtest.h>

namespace l3::metrics {
namespace {

TEST(SeriesKey, SortsLabels) {
  const auto a = series_key("m", {{"b", "2"}, {"a", "1"}});
  const auto b = series_key("m", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "m{a=1,b=2}");
}

TEST(SeriesKey, EmptyLabels) {
  EXPECT_EQ(series_key("requests", {}), "requests{}");
}

TEST(Counter, MonotoneAndRejectsNegative) {
  Counter c;
  c.increment();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.add(-1.0), ContractViolation);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(5.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(Registry, SameNameLabelsReturnsSameSeries) {
  Registry r;
  Counter& a = r.counter("req", {{"dst", "c1"}});
  Counter& b = r.counter("req", {{"dst", "c1"}});
  EXPECT_EQ(&a, &b);
  a.increment();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(Registry, DifferentLabelsAreDistinct) {
  Registry r;
  Counter& a = r.counter("req", {{"dst", "c1"}});
  Counter& b = r.counter("req", {{"dst", "c2"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(r.series_count(), 2u);
}

TEST(Registry, ReferencesStableAcrossInserts) {
  Registry r;
  Counter& first = r.counter("m", {{"i", "0"}});
  first.increment();
  for (int i = 1; i < 100; ++i) {
    r.counter("m", {{"i", std::to_string(i)}});
  }
  EXPECT_DOUBLE_EQ(first.value(), 1.0);  // no reallocation invalidation
}

TEST(Registry, HistogramCumulativeCounts) {
  Registry r;
  const std::vector<double> bounds = {0.1, 0.2};
  HistogramSeries& h = r.histogram("lat", {}, &bounds);
  h.record(0.05);
  h.record(0.15);
  h.record(5.0);
  const auto cum = h.cumulative_counts();
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_DOUBLE_EQ(cum[0], 1.0);
  EXPECT_DOUBLE_EQ(cum[1], 2.0);
  EXPECT_DOUBLE_EQ(cum[2], 3.0);  // +Inf == total
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(Registry, ForEachVisitsEverySeries) {
  Registry r;
  r.counter("c", {{"x", "1"}}).increment();
  r.gauge("g", {}).set(7.0);
  r.histogram("h", {}).record(0.05);
  int counters = 0, gauges = 0, histos = 0;
  r.for_each([&](const std::string&, double v) {
    ++counters;
    EXPECT_DOUBLE_EQ(v, 1.0);
  },
             [&](const std::string&, double v) {
               ++gauges;
               EXPECT_DOUBLE_EQ(v, 7.0);
             },
             [&](const std::string&, const HistogramSeries& h) {
               ++histos;
               EXPECT_EQ(h.total_count(), 1u);
             });
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(gauges, 1);
  EXPECT_EQ(histos, 1);
}

}  // namespace
}  // namespace l3::metrics
