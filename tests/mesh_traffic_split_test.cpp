// Tests for TrafficSplit weight semantics and ControlPlane propagation.
#include "l3/mesh/traffic_split.h"

#include <gtest/gtest.h>

namespace l3::mesh {
namespace {

std::vector<BackendRef> three_backends() {
  return {{"svc", 0}, {"svc", 1}, {"svc", 2}};
}

TEST(TrafficSplit, StartsWithEqualWeights) {
  TrafficSplit split("svc", 0, three_backends(), 1000);
  EXPECT_EQ(split.backend_count(), 3u);
  EXPECT_EQ(split.weights(), (std::vector<std::uint64_t>{1000, 1000, 1000}));
  EXPECT_EQ(split.generation(), 0u);
  EXPECT_EQ(split.service(), "svc");
  EXPECT_EQ(split.source(), 0u);
}

TEST(TrafficSplit, SetWeightsBumpsGeneration) {
  TrafficSplit split("svc", 0, three_backends(), 1000);
  const std::vector<std::uint64_t> w{10, 20, 30};
  split.set_weights(w);
  EXPECT_EQ(split.weights(), w);
  EXPECT_EQ(split.generation(), 1u);
}

TEST(TrafficSplit, NoOpSetWeightsKeepsGeneration) {
  TrafficSplit split("svc", 0, three_backends(), 1000);
  // Re-publication of the current weights must not look like a change to
  // generation observers (the proxies' cached pickers).
  split.set_weights(std::vector<std::uint64_t>{1000, 1000, 1000});
  EXPECT_EQ(split.generation(), 0u);
  const std::vector<std::uint64_t> w{10, 20, 30};
  split.set_weights(w);
  EXPECT_EQ(split.generation(), 1u);
  split.set_weights(w);
  EXPECT_EQ(split.generation(), 1u);
}

TEST(TrafficSplit, ZeroWeightsAllowed) {
  TrafficSplit split("svc", 0, three_backends(), 1000);
  const std::vector<std::uint64_t> w{0, 5, 0};
  split.set_weights(w);
  EXPECT_EQ(split.weights(), w);
}

TEST(TrafficSplit, RejectsSizeMismatch) {
  TrafficSplit split("svc", 0, three_backends(), 1000);
  const std::vector<std::uint64_t> w{1, 2};
  EXPECT_THROW(split.set_weights(w), ContractViolation);
}

TEST(TrafficSplit, RejectsEmptyBackends) {
  EXPECT_THROW(TrafficSplit("svc", 0, {}, 1000), ContractViolation);
}

TEST(ControlPlane, ZeroDelayAppliesImmediately) {
  sim::Simulator sim;
  ControlPlane cp(sim, 0.0);
  TrafficSplit split("svc", 0, three_backends(), 1000);
  cp.apply(split, {1, 2, 3});
  EXPECT_EQ(split.weights(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(cp.updates_applied(), 1u);
}

TEST(ControlPlane, PropagationDelayDefersApplication) {
  sim::Simulator sim;
  ControlPlane cp(sim, 2.0);
  TrafficSplit split("svc", 0, three_backends(), 1000);
  cp.apply(split, {1, 2, 3});
  EXPECT_EQ(split.weights(), (std::vector<std::uint64_t>{1000, 1000, 1000}));
  sim.run_until(1.9);
  EXPECT_EQ(split.generation(), 0u);
  sim.run_until(2.1);
  EXPECT_EQ(split.weights(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ControlPlane, InFlightUpdatesApplyInOrder) {
  sim::Simulator sim;
  ControlPlane cp(sim, 1.0);
  TrafficSplit split("svc", 0, three_backends(), 1000);
  cp.apply(split, {1, 1, 1});
  sim.run_until(0.5);
  cp.apply(split, {2, 2, 2});
  sim.run_until(10.0);
  EXPECT_EQ(split.weights(), (std::vector<std::uint64_t>{2, 2, 2}));
  EXPECT_EQ(split.generation(), 2u);
}

}  // namespace
}  // namespace l3::mesh
