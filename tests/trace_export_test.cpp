// Tests for the trace exporters and the latency-breakdown analysis: JSON
// escaping, Chrome trace-event output (validity + a golden check), the
// critical-path walk and its per-kind attribution.
#include "l3/trace/breakdown.h"
#include "l3/trace/export.h"

#include "l3/sim/simulator.h"
#include "test_json.h"

#include <gtest/gtest.h>

#include <deque>

namespace l3::trace {
namespace {

using l3::testing::JsonValidator;

Span make_span(std::uint64_t id, std::uint64_t parent, SpanKind kind,
               const char* name, const char* cluster, SimTime start,
               SimTime end) {
  Span span;
  span.span_id = id;
  span.parent_id = parent;
  span.kind = kind;
  span.status = SpanStatus::kOk;
  span.name = name;
  span.cluster = cluster;
  span.service = "api";
  span.start = start;
  span.end = end;
  return span;
}

/// root [0, 0.100]
///   ├ proxy [0.001, 0.099]
///   │   ├ wan out [0.001, 0.006]
///   │   ├ server [0.006, 0.094]
///   │   │   └ queue [0.006, 0.010]
///   │   └ wan back [0.094, 0.099]
TraceRecord make_trace() {
  TraceRecord trace;
  trace.trace_id = 1;
  trace.root_name = "req";
  trace.start = 0.0;
  trace.end = 0.100;
  trace.latency = 0.100;
  trace.status = SpanStatus::kOk;
  trace.spans.push_back(
      make_span(1, 0, SpanKind::kClient, "req", "c1", 0.0, 0.100));
  trace.spans.push_back(
      make_span(2, 1, SpanKind::kProxy, "proxy:api", "c1", 0.001, 0.099));
  trace.spans.push_back(
      make_span(3, 2, SpanKind::kWan, "wan:c1->c2", "c1", 0.001, 0.006));
  trace.spans.push_back(
      make_span(4, 2, SpanKind::kService, "server:api", "c2", 0.006, 0.094));
  trace.spans.push_back(
      make_span(5, 4, SpanKind::kQueue, "queue", "c2", 0.006, 0.010));
  trace.spans.push_back(
      make_span(6, 2, SpanKind::kWan, "wan:c2->c1", "c1", 0.094, 0.099));
  return trace;
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(ChromeTrace, OutputIsValidJson) {
  std::deque<TraceRecord> traces{make_trace(), make_trace()};
  traces[1].trace_id = 2;
  traces[1].root_name = "odd \"name\"\n";
  traces[1].spans[0].name = traces[1].root_name;
  std::ostringstream os;
  write_chrome_trace(traces, os);
  EXPECT_TRUE(JsonValidator::valid(os.str())) << os.str();
}

TEST(ChromeTrace, EmptyBufferIsValidJson) {
  std::ostringstream os;
  write_chrome_trace(std::deque<TraceRecord>{}, os);
  EXPECT_TRUE(JsonValidator::valid(os.str())) << os.str();
}

TEST(ChromeTrace, GoldenSingleSpan) {
  TraceRecord trace;
  trace.trace_id = 1;
  trace.root_name = "req";
  trace.start = 0.0;
  trace.end = 0.001;
  trace.latency = 0.001;
  trace.status = SpanStatus::kOk;
  Span root = make_span(1, 0, SpanKind::kClient, "req", "c1", 0.0, 0.001);
  trace.spans.push_back(root);
  std::ostringstream os;
  write_chrome_trace({trace}, os);
  EXPECT_EQ(os.str(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"trace 1: req (1.000 ms, ok)\"}},\n"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"req\"}},\n"
            "{\"name\":\"req\",\"cat\":\"client\",\"ph\":\"X\",\"ts\":0.000,"
            "\"dur\":1000.000,\"pid\":0,\"tid\":0,\"args\":{\"trace_id\":1,"
            "\"span_id\":1,\"parent_id\":0,\"cluster\":\"c1\",\"service\":"
            "\"api\",\"status\":\"ok\"}}\n"
            "]}\n");
}

TEST(ChromeTrace, FaultMarkersRenderAsGlobalInstants) {
  std::deque<TraceRecord> traces{make_trace()};
  const std::vector<FaultMarker> markers = {
      {0.050, "crash:api@c2", "begin"},
      {0.090, "crash:api@c2", "end"},
  };
  std::ostringstream os;
  write_chrome_trace(traces, markers, os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonValidator::valid(text)) << text;
  // Markers land in a dedicated "faults" process one pid past the traces,
  // as global-scope instant events.
  EXPECT_NE(text.find("\"name\":\"faults\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"crash:api@c2\",\"cat\":\"fault\","
                      "\"ph\":\"i\",\"s\":\"g\",\"ts\":50000.000,\"pid\":1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"phase\":\"begin\""), std::string::npos);
  EXPECT_NE(text.find("\"phase\":\"end\""), std::string::npos);

  // Without markers the overload is byte-identical to the plain exporter.
  std::ostringstream plain, empty_markers;
  write_chrome_trace(traces, plain);
  write_chrome_trace(traces, std::span<const FaultMarker>{}, empty_markers);
  EXPECT_EQ(plain.str(), empty_markers.str());
}

TEST(ChromeTrace, EventsCarrySpanArgs) {
  std::deque<TraceRecord> traces{make_trace()};
  std::ostringstream os;
  write_chrome_trace(traces, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"cat\":\"wan\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"queue\""), std::string::npos);
  EXPECT_NE(text.find("\"parent_id\":2"), std::string::npos);
  EXPECT_NE(text.find("\"cluster\":\"c2\""), std::string::npos);
}

TEST(CriticalPath, VisitsTheGatingChain) {
  const TraceRecord trace = make_trace();
  const auto path = critical_path(trace);
  // root → proxy → wan back → server → queue → wan out: every span here
  // gates the completion except none is skipped in this simple chain.
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path[0], 0u);  // root first
  EXPECT_EQ(path[1], 1u);  // the proxy span
}

TEST(CriticalPath, SkipsSpansThatDidNotGateCompletion) {
  // Two parallel children; only the slower one is on the critical path.
  TraceRecord trace;
  trace.trace_id = 1;
  trace.latency = 0.100;
  trace.spans.push_back(
      make_span(1, 0, SpanKind::kClient, "root", "c1", 0.0, 0.100));
  trace.spans.push_back(
      make_span(2, 1, SpanKind::kService, "fast", "c1", 0.0, 0.030));
  trace.spans.push_back(
      make_span(3, 1, SpanKind::kService, "slow", "c1", 0.0, 0.100));
  const auto path = critical_path(trace);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 2u);  // index of "slow"
}

TEST(Attribution, BucketsSumToRootLatency) {
  const TraceRecord trace = make_trace();
  const TraceAttribution a = attribute_critical_path(trace);
  EXPECT_DOUBLE_EQ(a.total, 0.100);
  // WAN: two transits of 5 ms each.
  EXPECT_NEAR(a.wan, 0.010, 1e-9);
  // Queue: 4 ms inside the server span.
  EXPECT_NEAR(a.queue, 0.004, 1e-9);
  // Service: server span minus queue child = 88 - 4 = 84 ms.
  EXPECT_NEAR(a.service, 0.084, 1e-9);
  // Client self-time: 1 ms before the proxy + 1 ms after.
  EXPECT_NEAR(a.client, 0.002, 1e-9);
  const double sum = a.wan + a.queue + a.service + a.proxy + a.client + a.other;
  EXPECT_NEAR(sum, a.total, 1e-9);
}

TEST(Breakdown, SummaryRowsAndShares) {
  std::deque<TraceRecord> traces{make_trace()};
  const BreakdownSummary summary = summarize_breakdown(traces);
  EXPECT_EQ(summary.trace_count, 1u);
  ASSERT_EQ(summary.rows.size(), 7u);
  EXPECT_EQ(summary.rows[0].category, "wan");
  EXPECT_EQ(summary.rows[6].category, "total");
  EXPECT_NEAR(summary.rows[0].share, 0.10, 1e-6);   // 10 ms of 100
  EXPECT_NEAR(summary.rows[2].share, 0.84, 1e-6);   // service
  EXPECT_NEAR(summary.rows[6].p50, 0.100, 1e-9);
}

}  // namespace
}  // namespace l3::trace
