// Tests for the event-core building blocks: EventFn small-buffer semantics
// and the tiered EventQueue's (time, seq) pop order — including a
// randomized interleaving checked against a reference model, which is what
// exercises the heap/run/staging promotion paths.
#include "l3/sim/event.h"

#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <utility>
#include <vector>

namespace l3::sim {
namespace {

struct SmallCapture {
  int* target;
  std::uint64_t a;
  std::uint64_t b;
  void operator()() { ++*target; }
};
static_assert(sizeof(SmallCapture) <= EventFn::kInlineCapacity);

struct BigCapture {
  int* target;
  double pad[8];
  void operator()() { *target += 2; }
};
static_assert(sizeof(BigCapture) > EventFn::kInlineCapacity);

TEST(EventFn, SmallCapturesAreStoredInline) {
  int fired = 0;
  EventFn fn(SmallCapture{&fired, 1, 2});
  EXPECT_TRUE(fn.stored_inline());
  fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventFn, OversizedCapturesFallBackToHeap) {
  int fired = 0;
  EventFn fn(BigCapture{&fired, {}});
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.stored_inline());
  fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventFn, FitsInlinePredicateMatchesStorage) {
  EXPECT_TRUE(EventFn::fits_inline<SmallCapture>());
  EXPECT_FALSE(EventFn::fits_inline<BigCapture>());
}

TEST(EventFn, DefaultConstructedIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.stored_inline());
}

TEST(EventFn, MoveTransfersCallableAndEmptiesSource) {
  int fired = 0;
  EventFn a(SmallCapture{&fired, 0, 0});
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
}

TEST(EventFn, MoveAssignDestroysPreviousCallable) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  EventFn fn([token] { (void)token; });
  token.reset();
  EXPECT_FALSE(alive.expired());
  int fired = 0;
  fn = EventFn(SmallCapture{&fired, 0, 0});
  EXPECT_TRUE(alive.expired());
  fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventFn, NonTrivialCaptureSurvivesMoveChain) {
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> alive = token;
  EventFn a([token] { ++*token; });
  token.reset();
  EventFn b(std::move(a));
  EventFn c(std::move(b));
  c();
  ASSERT_FALSE(alive.expired());
  EXPECT_EQ(*alive.lock(), 1);
  c.reset();
  EXPECT_TRUE(alive.expired());
}

TEST(EventFn, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> alive = token;
  {
    EventFn fn([token] { (void)token; });
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(3.0, 0, [] {});
  q.push(1.0, 1, [] {});
  q.push(2.0, 2, [] {});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop_min().time, 1.0);
  EXPECT_EQ(q.pop_min().time, 2.0);
  EXPECT_EQ(q.pop_min().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesPopFifoBySeq) {
  EventQueue q;
  for (std::uint64_t s = 0; s < 64; ++s) q.push(1.0, s, [] {});
  for (std::uint64_t s = 0; s < 64; ++s) {
    const Event ev = q.pop_min();
    EXPECT_EQ(ev.time, 1.0);
    EXPECT_EQ(ev.seq, s);
  }
}

TEST(EventQueue, PopMovesCallableOut) {
  EventQueue q;
  int fired = 0;
  q.push(1.0, 0, SmallCapture{&fired, 0, 0});
  Event ev = q.pop_min();
  EXPECT_TRUE(q.empty());
  ev.fn();
  EXPECT_EQ(fired, 1);
}

// Randomized interleaving against a reference model. The push bursts and
// full drains force events through every tier of the queue — the direct
// heap path (times below the horizon), the staging buffer, staging→run
// flushes, and batched run→heap refills.
TEST(EventQueue, RandomInterleavingMatchesReferenceModel) {
  std::mt19937 rng(20260806u);
  std::uniform_real_distribution<double> jitter(0.0, 10.0);

  EventQueue q;
  std::set<std::pair<double, std::uint64_t>> reference;
  std::uint64_t next_seq = 0;
  std::uint64_t invoked_seq = 0;
  double cursor = 0.0;

  const auto push_one = [&](double time) {
    const std::uint64_t seq = next_seq++;
    q.push(time, seq, [&invoked_seq, seq] { invoked_seq = seq; });
    reference.emplace(time, seq);
  };
  const auto pop_and_check = [&] {
    ASSERT_FALSE(reference.empty());
    const auto expected = *reference.begin();
    reference.erase(reference.begin());
    ASSERT_EQ(q.min_time(), expected.first);
    Event ev = q.pop_min();
    EXPECT_EQ(ev.time, expected.first);
    EXPECT_EQ(ev.seq, expected.second);
    ev.fn();
    EXPECT_EQ(invoked_seq, expected.second);
    cursor = ev.time;
  };

  for (int phase = 0; phase < 4; ++phase) {
    // Burst: plenty of far-future events so refills and flushes happen.
    for (int i = 0; i < 3000; ++i) push_one(cursor + jitter(rng));
    // Interleave pushes (some at/near the current minimum, some far out,
    // some tied — seq must break the tie FIFO) with pops.
    for (int i = 0; i < 6000; ++i) {
      const int action = static_cast<int>(rng() % 4);
      if (action == 0) {
        push_one(cursor + jitter(rng));
      } else if (action == 1 && !reference.empty()) {
        push_one(reference.begin()->first);  // tie with the current min
      } else if (!reference.empty()) {
        pop_and_check();
      }
    }
    // Drain so the next phase restarts the horizon from an empty queue.
    while (!reference.empty()) pop_and_check();
    EXPECT_TRUE(q.empty());
  }
  EXPECT_EQ(q.size(), 0u);
}

// The same property through the public Simulator API, with periodic tasks
// cancelled at random: no callback may observe a clock that moved
// backwards, and no cancelled task may fire after its cancellation time.
TEST(Simulator, RandomScheduleAndCancelKeepsClockMonotonic) {
  std::mt19937 rng(97u);
  std::uniform_real_distribution<double> delay(0.0, 5.0);

  Simulator sim;
  double last_seen = 0.0;
  std::uint64_t fired = 0;
  struct Task {
    PeriodicHandle handle;
    double cancelled_at = -1.0;
  };
  std::vector<Task> tasks;
  auto observe = [&] {
    EXPECT_GE(sim.now(), last_seen);
    last_seen = sim.now();
    ++fired;
  };

  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) sim.schedule_after(delay(rng), observe);
    Task task;
    task.handle = sim.schedule_every(0.25 + delay(rng) * 0.1, [&, idx = tasks.size()] {
      observe();
      ASSERT_LT(idx, tasks.size());
      EXPECT_LT(tasks[idx].cancelled_at, 0.0)
          << "cancelled task fired after cancellation";
    });
    tasks.push_back(std::move(task));
    if (!tasks.empty() && rng() % 2 == 0) {
      Task& victim = tasks[rng() % tasks.size()];
      if (victim.cancelled_at < 0.0) {
        victim.handle.cancel();
        victim.cancelled_at = sim.now();
      }
    }
    sim.run_for(1.0);
  }
  for (Task& task : tasks) task.handle.cancel();
  sim.run_for(10.0);
  EXPECT_GT(fired, 1000u);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace l3::sim
