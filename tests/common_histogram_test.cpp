// Unit + property tests for both histogram implementations and the
// Prometheus-style histogram_quantile.
#include "l3/common/histogram.h"

#include "l3/common/assert.h"
#include "l3/common/rng.h"
#include "l3/common/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace l3 {
namespace {

TEST(LogHistogram, EmptyReportsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, SingleValueQuantilesAreExact) {
  LogHistogram h;
  h.record(0.123);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.123);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.123);
  EXPECT_DOUBLE_EQ(h.min(), 0.123);
  EXPECT_DOUBLE_EQ(h.max(), 0.123);
}

TEST(LogHistogram, QuantileWithinRelativeErrorBound) {
  LogHistogram h(1e-6, 1e4, 0.01);
  SplitRng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.lognormal(-3.0, 1.0);
    values.push_back(v);
    h.record(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = percentile(values, q);
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.02) << "q=" << q;
  }
}

TEST(LogHistogram, MeanTracksExactMean) {
  LogHistogram h;
  SplitRng rng(2);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(0.01, 0.5);
    sum += v;
    h.record(v);
  }
  EXPECT_NEAR(h.mean(), sum / n, 1e-9);  // mean uses the exact sum
}

TEST(LogHistogram, ClampsOutOfRangeValues) {
  LogHistogram h(1e-3, 10.0, 0.01);
  h.record(1e-9);   // below range
  h.record(1e6);    // above range
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST(LogHistogram, MergeCombinesCounts) {
  LogHistogram a, b;
  a.record(0.1);
  b.record(0.2);
  b.record(0.3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 0.3);
  EXPECT_DOUBLE_EQ(a.min(), 0.1);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.record(0.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, RecordNWeightsValues) {
  LogHistogram h;
  h.record_n(0.1, 99);
  h.record_n(10.0, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.quantile(0.5), 0.2);
  EXPECT_GT(h.quantile(1.0), 5.0);
}

TEST(FixedBucketHistogram, DefaultBoundsAreLinkerdLike) {
  const auto& bounds = FixedBucketHistogram::default_latency_bounds();
  EXPECT_EQ(bounds.front(), 0.001);
  EXPECT_EQ(bounds.back(), 60.0);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(FixedBucketHistogram, CountsLandInCorrectBuckets) {
  FixedBucketHistogram h({0.010, 0.100, 1.0});
  h.record(0.005);   // bucket 0 (<= 10ms)
  h.record(0.010);   // bucket 0 (boundary inclusive per lower_bound)
  h.record(0.050);   // bucket 1
  h.record(0.500);   // bucket 2
  h.record(5.0);     // +Inf bucket
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total_count(), 5u);
}

TEST(FixedBucketHistogram, ResetZeroes) {
  FixedBucketHistogram h;
  h.record(0.05);
  h.reset();
  EXPECT_EQ(h.total_count(), 0u);
}

TEST(HistogramQuantile, InterpolatesLinearlyWithinBucket) {
  // Buckets: (0, 100ms], (100ms, 200ms], +Inf. 100 observations uniformly
  // in the second bucket → P50 should interpolate to ~150 ms.
  const std::vector<double> bounds = {0.1, 0.2};
  const std::vector<double> cumulative = {0.0, 100.0, 100.0};
  EXPECT_NEAR(histogram_quantile(bounds, cumulative, 0.5), 0.15, 1e-12);
  EXPECT_NEAR(histogram_quantile(bounds, cumulative, 0.25), 0.125, 1e-12);
}

TEST(HistogramQuantile, FirstBucketInterpolatesFromZero) {
  const std::vector<double> bounds = {0.1, 0.2};
  const std::vector<double> cumulative = {10.0, 10.0, 10.0};
  EXPECT_NEAR(histogram_quantile(bounds, cumulative, 0.5), 0.05, 1e-12);
}

TEST(HistogramQuantile, InfBucketReturnsHighestFiniteBound) {
  const std::vector<double> bounds = {0.1, 0.2};
  const std::vector<double> cumulative = {0.0, 0.0, 50.0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, cumulative, 0.99), 0.2);
}

TEST(HistogramQuantile, ZeroTotalReturnsZero) {
  const std::vector<double> bounds = {0.1, 0.2};
  const std::vector<double> cumulative = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, cumulative, 0.99), 0.0);
}

TEST(HistogramQuantile, MatchesExactQuantileOnDenseData) {
  // End-to-end: record a log-normal through FixedBucketHistogram and check
  // the estimated P99 is within a bucket of the exact value.
  FixedBucketHistogram h;
  SplitRng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.lognormal(-2.5, 0.7);  // median ~82 ms
    values.push_back(v);
    h.record(v);
  }
  std::vector<double> cumulative(h.counts().size());
  double running = 0.0;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    running += static_cast<double>(h.counts()[i]);
    cumulative[i] = running;
  }
  const double exact = percentile(values, 0.99);
  const double approx = histogram_quantile(h.bounds(), cumulative, 0.99);
  // Bucket resolution around 400-500 ms is coarse (100 ms buckets).
  EXPECT_NEAR(approx, exact, 0.1);
}

TEST(HistogramQuantile, RejectsBadArgs) {
  const std::vector<double> bounds = {0.1};
  const std::vector<double> wrong_size = {1.0};
  EXPECT_THROW(histogram_quantile(bounds, wrong_size, 0.5), ContractViolation);
  const std::vector<double> ok = {1.0, 1.0};
  EXPECT_THROW(histogram_quantile(bounds, ok, 0.0), ContractViolation);
  EXPECT_THROW(histogram_quantile(bounds, ok, 1.5), ContractViolation);
}

/// Property sweep: quantile estimates are monotone in q.
class QuantileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  LogHistogram h;
  SplitRng rng(GetParam());
  for (int i = 0; i < 5000; ++i) h.record(rng.lognormal(-3.0, 1.2));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(1, 7, 13, 99, 12345));

}  // namespace
}  // namespace l3
