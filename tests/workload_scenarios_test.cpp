// Tests for the scenario library: every generated trace must exhibit the
// quantitative features the paper publishes for it (Figures 1, 2, 6, 7a).
#include "l3/workload/scenarios.h"

#include "l3/common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace l3::workload {
namespace {

struct TraceStats {
  double med_lo = 1e18, med_hi = 0.0;
  double p99_lo = 1e18, p99_hi = 0.0;
  double rps_lo = 1e18, rps_hi = 0.0;
  double success_avg = 0.0;
  double success_min = 1.0;
};

TraceStats stats_of(const ScenarioTrace& trace) {
  TraceStats st;
  double success_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t c = 0; c < trace.cluster_count(); ++c) {
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      const auto& p = trace.at(c, s);
      st.med_lo = std::min(st.med_lo, p.median);
      st.med_hi = std::max(st.med_hi, p.median);
      st.p99_lo = std::min(st.p99_lo, p.p99);
      st.p99_hi = std::max(st.p99_hi, p.p99);
      st.success_min = std::min(st.success_min, p.success_rate);
      success_sum += p.success_rate;
      ++n;
    }
  }
  st.success_avg = success_sum / static_cast<double>(n);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    const double r = trace.rps_at(static_cast<double>(s));
    st.rps_lo = std::min(st.rps_lo, r);
    st.rps_hi = std::max(st.rps_hi, r);
  }
  return st;
}

TEST(Scenarios, AllHaveTenMinutesThreeClusters) {
  for (const auto& t : all_latency_scenarios()) {
    EXPECT_EQ(t.cluster_count(), 3u);
    EXPECT_DOUBLE_EQ(t.duration(), 600.0);
    EXPECT_EQ(t.steps(), 600u);
  }
}

TEST(Scenarios, P99AlwaysAboveMedian) {
  for (const auto& t : all_latency_scenarios()) {
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t s = 0; s < t.steps(); ++s) {
        EXPECT_GT(t.at(c, s).p99, t.at(c, s).median) << t.name();
      }
    }
  }
}

TEST(Scenarios, Scenario1MatchesPaperBands) {
  const auto st = stats_of(make_scenario1());
  // Fig 1a: median 50–100 ms most of the time, cluster-2 spikes ~350 ms;
  // P99 into the several-hundred-ms band; ~300 RPS stable.
  EXPECT_GT(st.med_lo, 0.020);
  EXPECT_LT(st.med_hi, 0.600);
  EXPECT_GT(st.p99_hi, 0.500);
  EXPECT_LT(st.p99_hi, 6.0);
  EXPECT_GT(st.rps_lo, 250.0);
  EXPECT_LT(st.rps_hi, 350.0);
}

TEST(Scenarios, Scenario2MatchesPaperBands) {
  const auto st = stats_of(make_scenario2());
  // Fig 1b: median 3–9 ms nominally (slow windows push one cluster up);
  // P99 spikes beyond 2 s; RPS fluctuating 45–200.
  EXPECT_LT(st.med_lo, 0.010);
  EXPECT_GT(st.p99_hi, 1.0);
  EXPECT_GE(st.rps_lo, 45.0 - 1.0);
  EXPECT_LE(st.rps_hi, 200.0 + 1.0);
  EXPECT_GT(st.rps_hi - st.rps_lo, 60.0);  // it really fluctuates
}

TEST(Scenarios, Scenario4HasTheWildestTail) {
  const auto s3 = stats_of(make_scenario3());
  const auto s4 = stats_of(make_scenario4());
  const auto s5 = stats_of(make_scenario5());
  EXPECT_GT(s4.p99_hi, s5.p99_hi);  // §5.2.2: s4 fluctuates the most
  EXPECT_GT(s3.p99_hi, s5.p99_hi);  // s5 is the calmest
}

TEST(Scenarios, Scenario5MedianIsStable) {
  // §5.3.1: σ of the median ≈ 6.3 ms — ours must be of that order.
  const auto trace = make_scenario5();
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<double> medians;
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      medians.push_back(trace.at(c, s).median);
    }
    EXPECT_LT(stddev(medians), 0.020) << "cluster " << c;
  }
}

TEST(Scenarios, LatencyScenariosHaveFullSuccess) {
  for (const auto& t : all_latency_scenarios()) {
    const auto st = stats_of(t);
    EXPECT_DOUBLE_EQ(st.success_avg, 1.0) << t.name();
  }
}

TEST(Scenarios, Failure1MatchesPaperSuccessProfile) {
  const auto st = stats_of(make_failure1());
  // §5.3.2: average ≈ 91.4 %, intermittent drops down to ~30 %.
  EXPECT_NEAR(st.success_avg, 0.914, 0.03);
  EXPECT_LT(st.success_min, 0.5);
  EXPECT_GE(st.success_min, 0.25);
}

TEST(Scenarios, Failure2MatchesPaperSuccessProfile) {
  const auto st = stats_of(make_failure2());
  // §5.3.2: average ≈ 98.5 %, short drops by at most ~5–10 %.
  EXPECT_NEAR(st.success_avg, 0.985, 0.008);
  EXPECT_GE(st.success_min, 0.85);
}

TEST(Scenarios, Failure2HasAConsistentlyBestBackend) {
  // §5.2.1: the best backend averages ~99.8 % — the success-rate ceiling.
  const auto trace = make_failure2();
  double best_avg = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (std::size_t s = 0; s < trace.steps(); ++s) {
      sum += trace.at(c, s).success_rate;
    }
    best_avg = std::max(best_avg, sum / static_cast<double>(trace.steps()));
  }
  EXPECT_GT(best_avg, 0.985);
}

TEST(Scenarios, DeterministicInSeed) {
  const auto a = make_scenario3(77);
  const auto b = make_scenario3(77);
  const auto c = make_scenario3(78);
  bool any_diff = false;
  for (std::size_t s = 0; s < a.steps(); ++s) {
    EXPECT_DOUBLE_EQ(a.at(0, s).p99, b.at(0, s).p99);
    if (a.at(0, s).p99 != c.at(0, s).p99) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenarios, GeneratorRespectsClusterMultipliers) {
  ScenarioShape shape;
  shape.name = "custom";
  shape.med_lo = shape.med_hi = 0.050;  // pin the walk start
  shape.med_sigma = 0.0;
  shape.ratio_lo = shape.ratio_hi = 3.0;
  shape.ratio_sigma = 0.0;
  shape.cluster_med_mult = {1.0, 2.0, 4.0};
  const auto trace = generate_scenario(shape, 1);
  EXPECT_NEAR(trace.at(1, 0).median / trace.at(0, 0).median, 2.0, 1e-9);
  EXPECT_NEAR(trace.at(2, 0).median / trace.at(0, 0).median, 4.0, 1e-9);
}

TEST(Scenarios, RotatingSlowWindowHitsEachClusterInTurn) {
  ScenarioShape shape;
  shape.name = "rot";
  shape.med_lo = shape.med_hi = 0.050;
  shape.med_sigma = 0.0;
  shape.ratio_lo = shape.ratio_hi = 3.0;
  shape.ratio_sigma = 0.0;
  shape.slow_period = 100.0;
  shape.slow_duration = 50.0;
  shape.slow_med_mult = 3.0;
  shape.slow_ratio_mult = 1.0;
  const auto trace = generate_scenario(shape, 1);
  // Epoch 0 (t in [0, 50)) slows cluster 0, epoch 1 slows cluster 1, ...
  EXPECT_NEAR(trace.at(0, 10).median, 0.150, 1e-9);
  EXPECT_NEAR(trace.at(1, 10).median, 0.050, 1e-9);
  EXPECT_NEAR(trace.at(1, 110).median, 0.150, 1e-9);
  EXPECT_NEAR(trace.at(2, 210).median, 0.150, 1e-9);
  EXPECT_NEAR(trace.at(0, 60).median, 0.050, 1e-9);  // window over
}

TEST(ScenarioTrace, PointClampsTime) {
  const auto trace = make_scenario1();
  EXPECT_NO_THROW(trace.point(0, -5.0));
  EXPECT_NO_THROW(trace.point(0, 1e9));
  EXPECT_DOUBLE_EQ(trace.point(0, -5.0).median, trace.at(0, 0).median);
  EXPECT_DOUBLE_EQ(trace.point(0, 1e9).median,
                   trace.at(0, trace.steps() - 1).median);
}

}  // namespace
}  // namespace l3::workload
