// Tests for the outlier detector and its integration with the proxy
// (circuit-breaker failover, §5.1) plus the per-request PeakEWMA-P2C
// routing mode (§6, Linkerd's in-proxy balancer).
#include "l3/mesh/outlier.h"

#include "l3/mesh/mesh.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::mesh {
namespace {

OutlierDetectionConfig enabled_config() {
  OutlierDetectionConfig config;
  config.enabled = true;
  config.failure_threshold = 0.5;
  config.min_requests = 10;
  config.window = 10.0;
  config.ejection_duration = 30.0;
  config.max_ejected_fraction = 0.67;
  return config;
}

TEST(OutlierDetector, DisabledNeverEjects) {
  OutlierDetectionConfig config = enabled_config();
  config.enabled = false;
  OutlierDetector detector(3, config);
  for (int i = 0; i < 100; ++i) detector.record(0, false, 1.0);
  EXPECT_FALSE(detector.is_ejected(0, 1.0));
  EXPECT_EQ(detector.ejections(), 0u);
}

TEST(OutlierDetector, EjectsAfterThresholdFailures) {
  OutlierDetector detector(3, enabled_config());
  // 5 successes + 5 failures = 50 % at min_requests → eject on the 10th.
  for (int i = 0; i < 5; ++i) detector.record(0, true, 1.0);
  for (int i = 0; i < 4; ++i) detector.record(0, false, 1.0);
  EXPECT_FALSE(detector.is_ejected(0, 1.0));
  detector.record(0, false, 1.0);
  EXPECT_TRUE(detector.is_ejected(0, 1.0));
  EXPECT_EQ(detector.ejections(), 1u);
}

TEST(OutlierDetector, NoEjectionBelowMinRequests) {
  OutlierDetector detector(3, enabled_config());
  for (int i = 0; i < 9; ++i) detector.record(0, false, 1.0);
  EXPECT_FALSE(detector.is_ejected(0, 1.0));
}

TEST(OutlierDetector, EjectionExpires) {
  OutlierDetector detector(3, enabled_config());
  for (int i = 0; i < 10; ++i) detector.record(0, false, 1.0);
  EXPECT_TRUE(detector.is_ejected(0, 10.0));
  EXPECT_TRUE(detector.is_ejected(0, 30.9));
  EXPECT_FALSE(detector.is_ejected(0, 31.1));  // 1.0 + 30 s elapsed
}

TEST(OutlierDetector, WindowRollsForgetOldFailures) {
  OutlierDetector detector(3, enabled_config());
  for (int i = 0; i < 9; ++i) detector.record(0, false, 1.0);
  // Window rolls at t >= 11; old failures are forgotten.
  detector.record(0, false, 12.0);
  EXPECT_FALSE(detector.is_ejected(0, 12.0));
}

TEST(OutlierDetector, EjectionBudgetRespected) {
  // With 3 backends and max 0.67, at most 2 may be ejected at once.
  OutlierDetector detector(3, enabled_config());
  for (std::size_t b = 0; b < 3; ++b) {
    for (int i = 0; i < 10; ++i) detector.record(b, false, 1.0);
  }
  EXPECT_EQ(detector.ejected_count(1.0), 2u);
  EXPECT_FALSE(detector.is_ejected(2, 1.0));  // the third stays in rotation
}

TEST(OutlierDetector, SmallClusterBudgetAllowsOneEjection) {
  // Regression: floor(0.15 × 5) == 0 used to zero the ejection budget, so
  // on small backend sets no backend could ever be ejected and outlier
  // detection was silently disabled. A positive fraction must always admit
  // at least one ejection.
  OutlierDetectionConfig config = enabled_config();
  config.max_ejected_fraction = 0.15;
  OutlierDetector detector(5, config);
  for (int i = 0; i < 10; ++i) detector.record(1, false, 1.0);
  EXPECT_TRUE(detector.is_ejected(1, 1.0));
  EXPECT_EQ(detector.ejections(), 1u);
  // The budget is still a cap: a second failing backend stays in rotation.
  for (int i = 0; i < 10; ++i) detector.record(3, false, 1.0);
  EXPECT_FALSE(detector.is_ejected(3, 1.0));
  EXPECT_EQ(detector.ejected_count(1.0), 1u);
}

TEST(OutlierDetector, ZeroFractionNeverEjects) {
  // max_ejected_fraction == 0 means "never eject"; the at-least-one rule
  // must not apply there.
  OutlierDetectionConfig config = enabled_config();
  config.max_ejected_fraction = 0.0;
  OutlierDetector detector(5, config);
  for (int i = 0; i < 50; ++i) detector.record(0, false, 1.0);
  EXPECT_FALSE(detector.is_ejected(0, 1.0));
  EXPECT_EQ(detector.ejections(), 0u);
}

TEST(OutlierDetector, SuccessesKeepBackendIn) {
  OutlierDetector detector(2, enabled_config());
  for (int i = 0; i < 100; ++i) {
    detector.record(0, i % 4 != 0, 1.0);  // 25 % failures < threshold
  }
  EXPECT_FALSE(detector.is_ejected(0, 1.0));
}

class ProxyOutlierTest : public ::testing::Test {
 protected:
  static MeshConfig config_with_outlier() {
    MeshConfig config;
    config.local_delay = 0.0;
    config.local_jitter_frac = 0.0;
    config.health_probe_interval = 0.0;
    config.outlier_detection = enabled_config();
    return config;
  }

  sim::Simulator sim;
};

TEST_F(ProxyOutlierTest, FailingBackendGetsEjectedAndTrafficMoves) {
  Mesh mesh(sim, SplitRng(3), config_with_outlier());
  const auto a = mesh.add_cluster("a");
  const auto b = mesh.add_cluster("b");
  mesh.deploy("svc", a, {},
              std::make_unique<FixedLatencyBehavior>(0.010, 0.020, 0.05));
  mesh.deploy("svc", b, {},
              std::make_unique<FixedLatencyBehavior>(0.010, 0.020, 1.0));
  Proxy& proxy = mesh.proxy(a, "svc");

  int to_failing = 0;
  auto burst = [&](int n) {
    to_failing = 0;
    for (int i = 0; i < n; ++i) {
      mesh.call(a, "svc", 0, [&](const Response& r) {
        if (r.backend_cluster == a) ++to_failing;
      });
    }
    sim.run_until(sim.now() + 5.0);
  };
  burst(100);  // enough to trip the detector
  EXPECT_GT(proxy.outlier_detector().ejections(), 0u);
  burst(100);  // while ejected, (almost) everything goes to b
  EXPECT_LT(to_failing, 5);
}

TEST_F(ProxyOutlierTest, P2CModePrefersFastBackend) {
  MeshConfig config;
  config.local_delay = 0.0;
  config.local_jitter_frac = 0.0;
  config.health_probe_interval = 0.0;
  config.routing = RoutingMode::kPeakEwmaP2C;
  Mesh mesh(sim, SplitRng(5), config);
  const auto a = mesh.add_cluster("a");
  const auto b = mesh.add_cluster("b");
  mesh.deploy("svc", a, {},
              std::make_unique<FixedLatencyBehavior>(0.010, 0.020));
  mesh.deploy("svc", b, {},
              std::make_unique<FixedLatencyBehavior>(0.200, 0.400));
  Proxy& proxy = mesh.proxy(a, "svc");
  EXPECT_EQ(proxy.routing_mode(), RoutingMode::kPeakEwmaP2C);

  int to_fast = 0, total = 0;
  // Sequential-ish stream so the PeakEWMA has feedback to learn from.
  for (int wave = 0; wave < 40; ++wave) {
    for (int i = 0; i < 10; ++i) {
      mesh.call(a, "svc", 0, [&](const Response& r) {
        ++total;
        if (r.backend_cluster == a) ++to_fast;
      });
    }
    sim.run_until(sim.now() + 1.0);
  }
  sim.run_until(sim.now() + 5.0);
  EXPECT_EQ(total, 400);
  // P2C with a 20x latency gap must send the clear majority to the fast
  // backend (it still probes the slow one occasionally by design).
  EXPECT_GT(static_cast<double>(to_fast) / total, 0.75);
}

TEST_F(ProxyOutlierTest, P2CIgnoresTrafficSplitWeights) {
  MeshConfig config;
  config.local_delay = 0.0;
  config.health_probe_interval = 0.0;
  config.routing = RoutingMode::kPeakEwmaP2C;
  Mesh mesh(sim, SplitRng(6), config);
  const auto a = mesh.add_cluster("a");
  const auto b = mesh.add_cluster("b");
  for (auto c : {a, b}) {
    mesh.deploy("svc", c, {},
                std::make_unique<FixedLatencyBehavior>(0.010, 0.020));
  }
  mesh.proxy(a, "svc");
  // Zero out backend b in the split: P2C routing must still use it (it
  // decides per request from client-side signals, not from weights).
  mesh.find_split(a, "svc")->set_weights(std::vector<std::uint64_t>{1, 0});
  int to_b = 0;
  for (int i = 0; i < 400; ++i) {
    mesh.call(a, "svc", 0, [&](const Response& r) {
      if (r.backend_cluster == b) ++to_b;
    });
  }
  sim.run_until(sim.now() + 10.0);
  EXPECT_GT(to_b, 100);
}

}  // namespace
}  // namespace l3::mesh
