// Tests for l3::chaos: the FaultPlan builder/generator, the FaultInjector's
// transitions, and the failure semantics they drive through the mesh —
// exactly-once completion and slot recycling when replicas crash with calls
// in flight, partition/crash exclusion in the picker, and the controller's
// staleness path under a scrape outage.
#include "l3/chaos/injector.h"

#include "l3/chaos/fault_plan.h"
#include "l3/core/controller.h"
#include "l3/lb/l3_policy.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/simulator.h"
#include "l3/workload/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace l3::chaos {
namespace {

mesh::MeshConfig quiet_config() {
  mesh::MeshConfig config;
  config.local_delay = 0.0;
  config.local_jitter_frac = 0.0;
  config.health_probe_interval = 0.0;
  return config;
}

// --- crash semantics: exactly-once completion and slot recycling ----------

TEST(ChaosCrash, CrashFailsInFlightAndQueuedExactlyOnce) {
  sim::Simulator sim;
  mesh::Mesh m(sim, SplitRng(3), quiet_config());
  const auto a = m.add_cluster("a");
  mesh::DeploymentConfig dc;
  dc.replicas = 2;
  dc.concurrency = 2;
  dc.queue_capacity = 2;
  // Slow behavior: everything submitted now is still in flight (or queued)
  // when the crash hits at t = 1.
  auto& d = m.deploy("svc", a, dc,
                     std::make_unique<mesh::FixedLatencyBehavior>(10.0, 10.1));

  // 2 replicas × (2 slots + 2 queue) = 8 accepted; the last 2 overflow.
  std::vector<int> fired(10, 0);
  std::vector<mesh::Outcome> outcomes(10);
  for (int i = 0; i < 10; ++i) {
    d.handle(0, [&fired, &outcomes, i](const mesh::Outcome& o) {
      fired[static_cast<std::size_t>(i)] += 1;
      outcomes[static_cast<std::size_t>(i)] = o;
    });
  }
  sim.run_until(1.0);
  int done_before = 0;
  for (int i = 0; i < 10; ++i) done_before += fired[static_cast<size_t>(i)];
  ASSERT_EQ(done_before, 2);  // only the overflow rejections fired
  ASSERT_EQ(d.live_calls(), 8u);

  d.crash_replica(0);
  d.crash_replica(1);

  // Every pending call failed through the normal path, exactly once each.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], 1) << "call " << i;
    EXPECT_FALSE(outcomes[static_cast<std::size_t>(i)].success);
  }
  EXPECT_EQ(d.live_calls(), 0u);     // no leaked pool entries
  EXPECT_EQ(d.crash_failed(), 8u);   // 4 in flight + 4 queued
  EXPECT_EQ(d.alive_replicas(), 0u);
  for (std::size_t r = 0; r < d.replica_count(); ++r) {
    EXPECT_EQ(d.replica(r).active(), 0u);  // slots released exactly once
    EXPECT_EQ(d.replica(r).queued(), 0u);
  }

  // The behaviors' own done continuations for the 4 in-flight calls fire
  // around t = 10 against stale handles; they must be absorbed silently.
  sim.run_until(20.0);
  EXPECT_EQ(d.live_calls(), 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], 1) << "late double-fire";
  }

  // Crashed replicas take no traffic; after restart, service resumes.
  int crashed_fired = 0;
  d.handle(0, [&crashed_fired](const mesh::Outcome& o) {
    ++crashed_fired;
    EXPECT_FALSE(o.success);
    EXPECT_TRUE(o.rejected);
  });
  EXPECT_EQ(crashed_fired, 1);
  d.restart_replica(0);
  d.restart_replica(1);
  EXPECT_EQ(d.alive_replicas(), 2u);
  bool ok = false;
  d.handle(0, [&ok](const mesh::Outcome& o) { ok = o.success; });
  sim.run_until(60.0);
  EXPECT_TRUE(ok);
}

TEST(ChaosCrash, RepeatedCrashRestartCyclesLeakNothing) {
  sim::Simulator sim;
  mesh::Mesh m(sim, SplitRng(4), quiet_config());
  const auto a = m.add_cluster("a");
  mesh::DeploymentConfig dc;
  dc.replicas = 2;
  dc.concurrency = 4;
  dc.queue_capacity = 4;
  auto& d = m.deploy("svc", a, dc,
                     std::make_unique<mesh::FixedLatencyBehavior>(0.5, 0.6));

  int fired = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 12; ++i) {
      d.handle(0, [&fired](const mesh::Outcome&) { ++fired; });
    }
    sim.run_until(sim.now() + 0.1);
    d.crash_replica(0);  // one replica dies mid-burst…
    sim.run_until(sim.now() + 2.0);
    d.crash_replica(0);  // …idempotent re-crash is a no-op
    d.restart_replica(0);
    sim.run_until(sim.now() + 2.0);
  }
  sim.run_until(sim.now() + 10.0);
  EXPECT_EQ(fired, 5 * 12);  // every call completed exactly once
  EXPECT_EQ(d.live_calls(), 0u);
  EXPECT_EQ(d.load(), 0u);
  EXPECT_EQ(d.alive_replicas(), 2u);
}

// --- injector transitions -------------------------------------------------

TEST(ChaosInjector, ArmsPlansAndEmitsSortedMarkers) {
  sim::Simulator sim;
  mesh::Mesh m(sim, SplitRng(5), quiet_config());
  const auto a = m.add_cluster("a");
  const auto b = m.add_cluster("b");
  m.deploy("svc", a, {}, std::make_unique<mesh::FixedLatencyBehavior>(0.01, 0.02));
  m.deploy("svc", b, {}, std::make_unique<mesh::FixedLatencyBehavior>(0.01, 0.02));

  FaultPlan plan;
  plan.crash("svc", b, 30.0, 10.0)
      .partition(a, b, 5.0, 10.0)
      .brownout(a, b, 20.0, 5.0, 0.050)
      .scrape_outage(40.0, 10.0)
      .controller_pause(50.0, 0.0);  // unbounded: lasts to end of run

  FaultInjector injector(sim, m);
  injector.arm(plan, /*time_offset=*/10.0);
  EXPECT_EQ(injector.armed(), 5u);

  // begin+end per bounded fault, begin only for the unbounded pause.
  const auto& markers = injector.markers();
  ASSERT_EQ(markers.size(), 9u);
  for (std::size_t i = 1; i < markers.size(); ++i) {
    EXPECT_LE(markers[i - 1].time, markers[i].time) << "markers sorted";
  }
  EXPECT_EQ(markers.front().name, "partition:a<->b");  // offset 10 + 5
  EXPECT_DOUBLE_EQ(markers.front().time, 15.0);
  bool saw_crash = false;
  for (const auto& marker : markers) {
    if (marker.name == "crash:svc@b") saw_crash = true;
  }
  EXPECT_TRUE(saw_crash);

  // WAN faults live inside the WanModel (no events); the other three kinds
  // execute begin/end transitions: crash 2 + outage 2 + pause 1.
  EXPECT_TRUE(m.wan().has_partitions());
  sim.run_until(200.0);
  EXPECT_EQ(injector.transitions(), 5u);
  EXPECT_EQ(m.deployments_of("svc")[1]->alive_replicas(),
            m.deployments_of("svc")[1]->replica_count());  // restarted
}

// --- picker exclusion under partitions and crashes ------------------------

/// Pearson chi-square; zero-expectation cells are asserted separately.
double chi_square(const std::vector<int>& counts,
                  const std::vector<double>& expected) {
  double chi = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double d = static_cast<double>(counts[i]) - expected[i];
    chi += d * d / expected[i];
  }
  return chi;
}

TEST(ChaosInjector, PartitionedBackendNeverPickedWhileWindowActive) {
  sim::Simulator sim;
  mesh::Mesh m(sim, SplitRng(6), quiet_config());
  const auto a = m.add_cluster("a");
  const auto b = m.add_cluster("b");
  const auto c = m.add_cluster("c");
  for (auto cl : {a, b, c}) {
    m.deploy("svc", cl, {},
             std::make_unique<mesh::FixedLatencyBehavior>(0.01, 0.02));
  }
  mesh::Proxy& proxy = m.proxy(a, "svc");

  FaultPlan plan;
  plan.partition(a, b, 10.0, 50.0);
  FaultInjector injector(sim, m);
  injector.arm(plan);

  sim.run_until(20.0);  // inside the window
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) counts[proxy.pick_backend()] += 1;
  // The fallback must never leak the partitioned backend, and the survivors
  // keep their (equal) relative shares. df = 1; 10.83 is p = 0.001.
  EXPECT_EQ(counts[1], 0);
  EXPECT_LT(chi_square(counts, {1500.0, 0.0, 1500.0}), 10.83);

  sim.run_until(70.0);  // window over: full set again
  counts.assign(3, 0);
  for (int i = 0; i < 3000; ++i) counts[proxy.pick_backend()] += 1;
  EXPECT_GT(counts[1], 0);
  EXPECT_LT(chi_square(counts, {1000.0, 1000.0, 1000.0}), 13.82);  // df = 2
}

TEST(ChaosCrash, CrashedClusterExcludedOnceHealthProbesNotice) {
  sim::Simulator sim;
  mesh::MeshConfig config = quiet_config();
  config.health_probe_interval = 1.0;
  mesh::Mesh m(sim, SplitRng(7), config);
  const auto a = m.add_cluster("a");
  const auto b = m.add_cluster("b");
  const auto c = m.add_cluster("c");
  for (auto cl : {a, b, c}) {
    m.deploy("svc", cl, {},
             std::make_unique<mesh::FixedLatencyBehavior>(0.01, 0.02));
  }
  mesh::Proxy& proxy = m.proxy(a, "svc");

  FaultPlan plan;
  plan.crash("svc", b, 5.0, 30.0);
  FaultInjector injector(sim, m);
  injector.arm(plan);

  sim.run_until(10.0);  // crash at 5, probe notices by 6
  EXPECT_EQ(m.deployments_of("svc")[1]->alive_replicas(), 0u);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) counts[proxy.pick_backend()] += 1;
  EXPECT_EQ(counts[1], 0);  // health view excludes the dead cluster
  EXPECT_LT(chi_square(counts, {1500.0, 0.0, 1500.0}), 10.83);

  sim.run_until(60.0);  // restart at 35, probe confirms recovery
  counts.assign(3, 0);
  for (int i = 0; i < 3000; ++i) counts[proxy.pick_backend()] += 1;
  EXPECT_GT(counts[1], 0);
}

// --- scrape outage drives the controller's staleness path -----------------

TEST(ChaosInjector, ScrapeOutageStarvesControllerThenRecovers) {
  sim::Simulator sim;
  SplitRng rng(8);
  mesh::MeshConfig config;
  config.local_delay = 0.0002;
  config.health_probe_interval = 0.0;
  mesh::Mesh m(sim, rng, config);
  const auto a = m.add_cluster("a");
  const auto b = m.add_cluster("b");
  const auto c = m.add_cluster("c");
  for (auto cl : {a, b, c}) {
    m.deploy("svc", cl, {},
             std::make_unique<mesh::FixedLatencyBehavior>(0.02, 0.08));
  }
  m.proxy(a, "svc");
  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("a", m.registry(a));
  scraper.start(5.0);
  core::L3Controller controller(m, tsdb, a,
                                std::make_unique<lb::L3Policy>(), {});
  controller.manage_all();
  controller.start();
  workload::OpenLoopClient client(m, a, "svc",
                                  [](SimTime) { return 200.0; },
                                  rng.split("client"));
  client.start(0.0, 1e9);

  FaultPlan plan;
  plan.scrape_outage(70.0, 40.0);
  FaultInjector injector(sim, m);
  injector.set_scraper(&scraper);
  injector.arm(plan);

  sim.run_until(65.0);
  const double rps_live = controller.snapshot()[0].backends[0].rps;
  ASSERT_GT(rps_live, 10.0);  // tracking real traffic before the outage

  // Outage [70, 110): after the 10 s staleness threshold the controller
  // converges the starved signals toward the §4 defaults (rps → 0), even
  // though the backends are still serving traffic the whole time.
  sim.run_until(108.0);
  const double rps_starved = controller.snapshot()[0].backends[0].rps;
  EXPECT_LT(rps_starved, rps_live * 0.5);
  EXPECT_EQ(injector.transitions(), 1u);  // end transition still pending

  // Scrapes resume at 110; the filters re-learn the real signal.
  sim.run_until(160.0);
  EXPECT_EQ(injector.transitions(), 2u);
  EXPECT_GT(controller.snapshot()[0].backends[0].rps, rps_starved);
}

TEST(ChaosInjector, ControllerPauseFreezesWeightsThenResumes) {
  sim::Simulator sim;
  SplitRng rng(9);
  mesh::MeshConfig config;
  config.local_delay = 0.0002;
  config.health_probe_interval = 0.0;
  mesh::Mesh m(sim, rng, config);
  const auto a = m.add_cluster("a");
  const auto b = m.add_cluster("b");
  const auto c = m.add_cluster("c");
  const std::vector<SimDuration> medians = {0.02, 0.2, 0.2};
  for (std::size_t i = 0; i < 3; ++i) {
    m.deploy("svc", static_cast<mesh::ClusterId>(i), {},
             std::make_unique<mesh::FixedLatencyBehavior>(medians[i],
                                                          medians[i] * 4.0));
  }
  m.proxy(a, "svc");
  metrics::TimeSeriesDb tsdb;
  metrics::Scraper scraper(sim, tsdb);
  scraper.add_target("a", m.registry(a));
  scraper.start(5.0);
  core::L3Controller controller(m, tsdb, a,
                                std::make_unique<lb::L3Policy>(), {});
  controller.manage_all();
  controller.start();
  workload::OpenLoopClient client(m, a, "svc",
                                  [](SimTime) { return 200.0; },
                                  rng.split("client"));
  client.start(0.0, 1e9);

  FaultPlan plan;
  plan.controller_pause(40.0, 30.0);
  FaultInjector injector(sim, m);
  injector.add_controller(&controller);
  injector.arm(plan);

  sim.run_until(42.0);
  const auto frozen_gen = m.find_split(a, "svc")->generation();
  const auto ticks_at_pause = controller.ticks();
  sim.run_until(68.0);
  EXPECT_EQ(m.find_split(a, "svc")->generation(), frozen_gen)
      << "paused controller must not push weights";
  EXPECT_GT(controller.ticks(), ticks_at_pause) << "filtering continues";
  sim.run_until(100.0);
  EXPECT_GT(m.find_split(a, "svc")->generation(), frozen_gen)
      << "resumed controller pushes weights again";
}

// --- plan builder / generator ---------------------------------------------

TEST(ChaosPlan, RandomPlanIsDeterministicAndScalesWithIntensity) {
  const RandomPlanConfig config{.horizon = 600.0, .intensity = 1.0};
  const FaultPlan p1 = make_random_plan(config, 99);
  const FaultPlan p2 = make_random_plan(config, 99);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1.faults()[i].kind, p2.faults()[i].kind);
    EXPECT_DOUBLE_EQ(p1.faults()[i].start, p2.faults()[i].start);
    EXPECT_DOUBLE_EQ(p1.faults()[i].duration, p2.faults()[i].duration);
  }
  EXPECT_NE(make_random_plan(config, 100).faults()[0].start,
            p1.faults()[0].start);

  EXPECT_TRUE(make_random_plan({.intensity = 0.0}, 99).empty());
  const FaultPlan heavy = make_random_plan({.intensity = 2.0}, 99);
  EXPECT_GT(heavy.size(), p1.size());
  for (const Fault& f : heavy.faults()) {
    EXPECT_GE(f.start, 0.0);
    EXPECT_LT(f.start, 600.0 * 0.8);
    EXPECT_GT(f.duration, 0.0);
    if (f.kind == FaultKind::kWanPartition ||
        f.kind == FaultKind::kWanBrownout) {
      EXPECT_NE(f.a, f.b);  // a self-link fault would be invisible
    }
  }
}

TEST(ChaosPlan, ToStringCoversTaxonomy) {
  EXPECT_STREQ(to_string(FaultKind::kReplicaCrash), "crash");
  EXPECT_STREQ(to_string(FaultKind::kWanPartition), "partition");
  EXPECT_STREQ(to_string(FaultKind::kWanBrownout), "brownout");
  EXPECT_STREQ(to_string(FaultKind::kScrapeOutage), "scrape-outage");
  EXPECT_STREQ(to_string(FaultKind::kControllerPause), "controller-pause");
}

}  // namespace
}  // namespace l3::chaos
