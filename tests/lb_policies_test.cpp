// Tests for the remaining policies: round-robin, static weights, the L3
// composite, locality failover, and the cost-aware decorator.
#include "l3/common/assert.h"
#include "l3/lb/cost_aware.h"
#include "l3/lb/l3_policy.h"
#include "l3/lb/locality_policy.h"
#include "l3/lb/policy.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::lb {
namespace {

BackendSignals sig(double latency = 0.100, double success = 1.0) {
  BackendSignals s;
  s.latency_p99 = latency;
  s.latency_mean = latency / 3.0;
  s.success_rate = success;
  s.rps = 100.0;
  return s;
}

PolicyInput make_input(const std::vector<BackendSignals>& signals,
                       const std::vector<mesh::BackendRef>& backends,
                       mesh::ClusterId source = 0, double rps_ewma = 100.0,
                       double rps_last = 100.0) {
  PolicyInput input;
  input.source = source;
  input.backends = backends;
  input.signals = signals;
  input.total_rps_ewma = rps_ewma;
  input.total_rps_last = rps_last;
  return input;
}

const std::vector<mesh::BackendRef> kBackends{{"svc", 0}, {"svc", 1},
                                              {"svc", 2}};

TEST(RoundRobinPolicy, EqualWeightsAlways) {
  RoundRobinPolicy policy;
  const std::vector<BackendSignals> signals{sig(0.01), sig(5.0), sig(0.2)};
  const auto w = policy.compute(make_input(signals, kBackends));
  EXPECT_EQ(w, (std::vector<std::uint64_t>{1000, 1000, 1000}));
  EXPECT_EQ(policy.name(), "round-robin");
}

TEST(StaticWeightsPolicy, ReturnsConfiguredWeights) {
  StaticWeightsPolicy policy({10, 20, 30});
  const std::vector<BackendSignals> signals{sig(), sig(), sig()};
  EXPECT_EQ(policy.compute(make_input(signals, kBackends)),
            (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(StaticWeightsPolicy, PadsWhenTopologyGrows) {
  StaticWeightsPolicy policy({10});
  const std::vector<BackendSignals> signals{sig(), sig(), sig()};
  EXPECT_EQ(policy.compute(make_input(signals, kBackends)),
            (std::vector<std::uint64_t>{10, 10, 10}));
}

TEST(L3Policy, PrefersFastHealthyBackends) {
  L3Policy policy;
  const std::vector<BackendSignals> signals{sig(0.050), sig(0.500),
                                            sig(0.050, 0.5)};
  const auto w = policy.compute(make_input(signals, kBackends));
  EXPECT_GT(w[0], w[1]);  // faster beats slower
  EXPECT_GT(w[0], w[2]);  // healthy beats failing at equal latency
  EXPECT_EQ(policy.name(), "L3");
}

TEST(L3Policy, RateControlFlattensOnRpsSpike) {
  L3PolicyConfig with_rc;
  L3PolicyConfig without_rc;
  without_rc.rate_control_enabled = false;
  L3Policy a(with_rc), b(without_rc);
  const std::vector<BackendSignals> signals{sig(0.020), sig(0.500), sig(0.300)};
  // RPS doubled relative to its EWMA (c = 1).
  const auto spiked = make_input(signals, kBackends, 0, 100.0, 200.0);
  const auto wa = a.compute(spiked);
  const auto wb = b.compute(spiked);
  const double spread_a = static_cast<double>(wa[0]) - static_cast<double>(wa[1]);
  const double spread_b = static_cast<double>(wb[0]) - static_cast<double>(wb[1]);
  EXPECT_LT(spread_a, spread_b);  // Algorithm 2 flattened the distribution
}

TEST(L3Policy, MinShareFloorApplied) {
  L3PolicyConfig config;
  config.min_share = 0.01;
  L3Policy policy(config);
  const std::vector<BackendSignals> signals{sig(0.001), sig(0.001), sig(9.0)};
  const auto w = policy.compute(make_input(signals, kBackends));
  double total = 0.0;
  for (auto x : w) total += static_cast<double>(x);
  EXPECT_GE(static_cast<double>(w[2]), total * 0.009);
}

TEST(LocalityFailoverPolicy, AllLocalWhenHealthy) {
  LocalityFailoverPolicy policy;
  const std::vector<BackendSignals> signals{sig(), sig(), sig()};
  const auto w = policy.compute(make_input(signals, kBackends, /*source=*/1));
  EXPECT_EQ(w[1], 1000u);
  EXPECT_EQ(w[0], 1u);
  EXPECT_EQ(w[2], 1u);
}

TEST(LocalityFailoverPolicy, FailsOverWhenLocalUnhealthy) {
  LocalityFailoverPolicy policy;
  const std::vector<BackendSignals> signals{sig(), sig(0.1, 0.5), sig()};
  const auto w = policy.compute(make_input(signals, kBackends, /*source=*/1));
  EXPECT_EQ(w[1], 1u);     // local demoted
  EXPECT_EQ(w[0], 1000u);  // healthy remotes promoted
  EXPECT_EQ(w[2], 1000u);
}

TEST(LocalityFailoverPolicy, AllUnhealthySpreadsEverywhere) {
  LocalityFailoverPolicy policy;
  const std::vector<BackendSignals> signals{sig(0.1, 0.2), sig(0.1, 0.2),
                                            sig(0.1, 0.2)};
  const auto w = policy.compute(make_input(signals, kBackends, 1));
  EXPECT_EQ(w, (std::vector<std::uint64_t>{1000, 1000, 1000}));
}

TEST(LocalityFailoverPolicy, NoLocalBackendFailsOverToHealthy) {
  LocalityFailoverPolicy policy;
  const std::vector<mesh::BackendRef> remote_only{{"svc", 1}, {"svc", 2}};
  const std::vector<BackendSignals> signals{sig(), sig()};
  const auto w = policy.compute(make_input(signals, remote_only, /*source=*/0));
  EXPECT_EQ(w[0], 1000u);
  EXPECT_EQ(w[1], 1000u);
}

TEST(CostAwareAdjuster, DiscountsByTransferCost) {
  TransferCostMatrix costs(3);
  costs.set(0, 1, 1.0);  // remote transfer costs 1 unit
  costs.set(0, 2, 1.0);
  CostAwareAdjuster policy(std::make_unique<RoundRobinPolicy>(), costs,
                           {.lambda = 1.0});
  const std::vector<BackendSignals> signals{sig(), sig(), sig()};
  const auto w = policy.compute(make_input(signals, kBackends, /*source=*/0));
  EXPECT_EQ(w[0], 1000u);  // local: free
  EXPECT_EQ(w[1], 500u);   // 1000 / (1 + 1·1)
  EXPECT_EQ(w[2], 500u);
}

TEST(CostAwareAdjuster, LambdaZeroIsInnerPolicy) {
  TransferCostMatrix costs(3);
  costs.set(0, 1, 5.0);
  CostAwareAdjuster policy(std::make_unique<RoundRobinPolicy>(), costs,
                           {.lambda = 0.0});
  const std::vector<BackendSignals> signals{sig(), sig(), sig()};
  const auto w = policy.compute(make_input(signals, kBackends));
  EXPECT_EQ(w, (std::vector<std::uint64_t>{1000, 1000, 1000}));
}

TEST(CostAwareAdjuster, NeverBelowOne) {
  TransferCostMatrix costs(3);
  costs.set(0, 1, 1e9);
  CostAwareAdjuster policy(std::make_unique<RoundRobinPolicy>(), costs, {});
  const std::vector<BackendSignals> signals{sig(), sig(), sig()};
  const auto w = policy.compute(make_input(signals, kBackends));
  EXPECT_GE(w[1], 1u);
}

TEST(TransferCostMatrix, Bounds) {
  TransferCostMatrix costs(2);
  costs.set(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(costs.get(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(costs.get(1, 0), 0.0);
  EXPECT_THROW(costs.set(0, 5, 1.0), ContractViolation);
  EXPECT_THROW(costs.set(0, 1, -1.0), ContractViolation);
}

}  // namespace
}  // namespace l3::lb
