// Tests for the adapted C3 policy (cubic replica ranking, mean-latency
// based, no success-rate term — §5.1's adaptation).
#include "l3/lb/c3_policy.h"

#include <gtest/gtest.h>

namespace l3::lb {
namespace {

BackendSignals sig(double mean_latency, double inflight = 0.0,
                   double success = 1.0) {
  BackendSignals s;
  s.latency_mean = mean_latency;
  s.latency_p99 = mean_latency * 4.0;
  s.success_rate = success;
  s.rps = 100.0;
  s.inflight = inflight;
  return s;
}

PolicyInput make_input(const std::vector<BackendSignals>& signals,
                       const std::vector<mesh::BackendRef>& backends) {
  PolicyInput input;
  input.source = 0;
  input.backends = backends;
  input.signals = signals;
  input.total_rps_ewma = 100.0;
  input.total_rps_last = 100.0;
  return input;
}

class C3PolicyTest : public ::testing::Test {
 protected:
  std::vector<mesh::BackendRef> backends{{"svc", 0}, {"svc", 1}};
};

TEST_F(C3PolicyTest, PrefersLowerMeanLatency) {
  C3Policy policy;
  const std::vector<BackendSignals> signals{sig(0.050), sig(0.200)};
  const auto w = policy.compute(make_input(signals, backends));
  EXPECT_GT(w[0], w[1]);
  EXPECT_NEAR(static_cast<double>(w[0]) / static_cast<double>(w[1]), 4.0,
              0.15);
}

TEST_F(C3PolicyTest, CubicQueuePenalty) {
  C3Policy policy;
  // Same latency; backend 1 has 1 extra in-flight → q̂ = 2 → 8× penalty.
  const std::vector<BackendSignals> signals{sig(0.100, 0.0),
                                            sig(0.100, 1.0)};
  const auto w = policy.compute(make_input(signals, backends));
  EXPECT_NEAR(static_cast<double>(w[0]) / static_cast<double>(w[1]), 8.0,
              0.5);
}

TEST_F(C3PolicyTest, IgnoresSuccessRate) {
  // §5.1 / §5.3.2: C3 performs no success-rate optimisation.
  C3Policy policy;
  const std::vector<BackendSignals> a{sig(0.100, 0.0, 1.0),
                                      sig(0.100, 0.0, 1.0)};
  const std::vector<BackendSignals> b{sig(0.100, 0.0, 1.0),
                                      sig(0.100, 0.0, 0.3)};
  const auto wa = policy.compute(make_input(a, backends));
  const auto wb = policy.compute(make_input(b, backends));
  EXPECT_EQ(wa, wb);
}

TEST_F(C3PolicyTest, FallsBackToP99WithoutMeanSignal) {
  C3Policy policy;
  std::vector<BackendSignals> signals{sig(0.0), sig(0.0)};
  signals[0].latency_mean = 0.0;
  signals[1].latency_mean = 0.0;
  signals[0].latency_p99 = 0.050;
  signals[1].latency_p99 = 0.500;
  const auto w = policy.compute(make_input(signals, backends));
  EXPECT_GT(w[0], w[1]);
}

TEST_F(C3PolicyTest, NoMetricCollectionFloorByDefault) {
  // The floor is an L3 contribution; the adapted C3 only has w >= 1.
  C3Policy policy;
  const std::vector<BackendSignals> signals{sig(0.001), sig(300.0)};
  const auto w = policy.compute(make_input(signals, backends));
  EXPECT_EQ(w[1], 1u);  // 100/300 rounds below 1 → SMI floor only
}

TEST_F(C3PolicyTest, ConfigurableExponent) {
  C3PolicyConfig config;
  config.queue_exponent = 1.0;
  C3Policy policy(config);
  const std::vector<BackendSignals> signals{sig(0.100, 0.0),
                                            sig(0.100, 1.0)};
  const auto w = policy.compute(make_input(signals, backends));
  EXPECT_NEAR(static_cast<double>(w[0]) / static_cast<double>(w[1]), 2.0,
              0.1);
}

TEST_F(C3PolicyTest, Name) {
  C3Policy policy;
  EXPECT_EQ(policy.name(), "C3");
}

}  // namespace
}  // namespace l3::lb
