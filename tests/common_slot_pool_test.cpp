// Tests for SlotPool: handle validity, generation-based staleness, LIFO
// reuse, chunked growth with pointer stability, and the live-slot counter —
// the safety contract the proxy/deployment hot paths rely on when timeout
// and response callbacks race on a pooled CallState.
#include "l3/common/slot_pool.h"

#include "l3/common/assert.h"

#include <gtest/gtest.h>

#include <vector>

namespace l3::common {
namespace {

struct Payload {
  int value = 0;
};

TEST(SlotPool, DefaultHandleNeverResolves) {
  SlotPool<Payload> pool;
  EXPECT_EQ(pool.get(SlotPool<Payload>::Handle{}), nullptr);
  // Even once the slot at index 0 is live: its generation starts at 1,
  // a default handle carries generation 0.
  const auto h = pool.acquire();
  EXPECT_EQ(h.index, 0u);
  EXPECT_EQ(pool.get(SlotPool<Payload>::Handle{}), nullptr);
  EXPECT_NE(pool.get(h), nullptr);
}

TEST(SlotPool, ReleaseMakesHandleStale) {
  SlotPool<Payload> pool;
  const auto h = pool.acquire();
  pool.get(h)->value = 42;
  pool.release(h);
  EXPECT_EQ(pool.get(h), nullptr);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlotPool, ReusedSlotInvalidatesOldHandleOnly) {
  SlotPool<Payload> pool;
  const auto old = pool.acquire();
  pool.get(old)->value = 1;
  pool.release(old);
  // LIFO free list: the next acquire reuses the same index with a bumped
  // generation — exactly the timeout-after-recycle race shape.
  const auto fresh = pool.acquire();
  EXPECT_EQ(fresh.index, old.index);
  EXPECT_NE(fresh.generation, old.generation);
  pool.get(fresh)->value = 2;
  EXPECT_EQ(pool.get(old), nullptr);
  ASSERT_NE(pool.get(fresh), nullptr);
  EXPECT_EQ(pool.get(fresh)->value, 2);
}

TEST(SlotPool, DoubleReleaseIsContractViolation) {
  SlotPool<Payload> pool;
  const auto h = pool.acquire();
  pool.release(h);
  EXPECT_THROW(pool.release(h), ContractViolation);
}

TEST(SlotPool, PointersStableAcrossChunkGrowth) {
  SlotPool<Payload> pool;
  // Fill well past one 256-slot chunk while holding every handle, checking
  // that early pointers survive the growth (re-entrant acquire during
  // callback dispatch depends on this).
  std::vector<SlotPool<Payload>::Handle> handles;
  const auto first = pool.acquire();
  Payload* first_ptr = pool.get(first);
  first_ptr->value = 7;
  for (int i = 0; i < 1000; ++i) handles.push_back(pool.acquire());
  EXPECT_EQ(pool.get(first), first_ptr);
  EXPECT_EQ(first_ptr->value, 7);
  EXPECT_EQ(pool.live(), 1001u);
  EXPECT_GE(pool.capacity(), 1001u);
  for (const auto& h : handles) pool.release(h);
  pool.release(first);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlotPool, SteadyStateReusesCapacity) {
  SlotPool<Payload> pool;
  for (int round = 0; round < 100; ++round) {
    const auto a = pool.acquire();
    const auto b = pool.acquire();
    pool.release(a);
    pool.release(b);
  }
  // Two slots ever created: the churn above runs entirely off the free list.
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace l3::common
