// Tests for the mega scale scenario: shard-count invariance of the full
// digest (fault-free and chaos runs), the 10k-backend smoke, and the
// mailbox/audit plumbing it exercises.
#include "l3/workload/mega.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace l3::workload {
namespace {

MegaConfig small_config() {
  MegaConfig config;
  config.regions = 8;
  config.replicas_per_region = 4;
  config.duration = 1.5;
  config.rps_per_region = 40.0;
  config.scrape_interval = 0.5;
  config.audit_interval = 0.5;
  return config;
}

TEST(Mega, DigestIsShardCountInvariant) {
  MegaConfig config = small_config();
  config.shards = 1;
  const MegaResult oracle = run_mega(config);
  EXPECT_GT(oracle.total_requests, 0u);
  EXPECT_GT(oracle.total_events, 0u);
  EXPECT_FALSE(oracle.audit.empty());
  EXPECT_EQ(oracle.mailbox.messages, 0u);  // one shard: no mailbox traffic

  for (const std::size_t shards : {2ul, 4ul, 8ul}) {
    MegaConfig sharded = small_config();
    sharded.shards = shards;
    const MegaResult got = run_mega(sharded);
    EXPECT_EQ(got.digest(), oracle.digest()) << "shards=" << shards;
    EXPECT_GT(got.mailbox.messages, 0u) << "shards=" << shards;
  }
}

TEST(Mega, ProxyCostDigestIsShardCountInvariant) {
  // The data-plane cost model (DESIGN.md §16) is pure arithmetic on the
  // outbound leg — no extra events, no RNG draws — so a costed mega run
  // must stay shard-count invariant like the cost-free one.
  MegaConfig config = small_config();
  config.proxy_cost.cpu_per_request = 0.0005;
  config.proxy_cost.handshake_cost = 0.002;
  config.proxy_cost.concurrency = 4;
  config.proxy_cost.pool_size = 8;
  config.proxy_cost.idle_timeout = 1.0;
  config.shards = 1;
  const MegaResult oracle = run_mega(config);
  EXPECT_GT(oracle.total_requests, 0u);

  for (const std::size_t shards : {2ul, 4ul}) {
    MegaConfig sharded = config;
    sharded.shards = shards;
    const MegaResult got = run_mega(sharded);
    EXPECT_EQ(got.digest(), oracle.digest()) << "shards=" << shards;
  }
}

TEST(Mega, ChaosDigestIsShardCountInvariant) {
  MegaConfig config = small_config();
  config.chaos = true;  // region 3 crashes + brownout 0<->1 + partition 1<->2
  config.shards = 1;
  const MegaResult oracle = run_mega(config);
  EXPECT_GT(oracle.total_requests, 0u);

  // The faults actually bit: at least one region saw failures.
  bool any_failures = false;
  for (const MegaRegionResult& r : oracle.regions) {
    if (r.success_rate < 1.0) any_failures = true;
  }
  EXPECT_TRUE(any_failures);

  for (const std::size_t shards : {2ul, 4ul}) {
    MegaConfig sharded = small_config();
    sharded.chaos = true;
    sharded.shards = shards;
    const MegaResult got = run_mega(sharded);
    EXPECT_EQ(got.digest(), oracle.digest()) << "shards=" << shards;
  }
}

TEST(Mega, MailboxCapacityOnlyAffectsFlushTiming) {
  MegaConfig base = small_config();
  base.shards = 4;
  const MegaResult loose = run_mega(base);
  MegaConfig tight = small_config();
  tight.shards = 4;
  tight.mailbox_capacity = 1;  // flush on every second post
  const MegaResult got = run_mega(tight);
  EXPECT_EQ(got.digest(), loose.digest());
  EXPECT_EQ(got.mailbox.messages, loose.mailbox.messages);
  EXPECT_GE(got.mailbox.capacity_flushes, loose.mailbox.capacity_flushes);
}

TEST(Mega, AuditHandledCountsAreMonotonePerRegion) {
  MegaConfig config = small_config();
  config.shards = 2;
  const MegaResult result = run_mega(config);
  ASSERT_FALSE(result.audit.empty());
  std::map<std::uint32_t, std::uint64_t> last;
  SimTime last_time = 0.0;
  for (const MegaAuditEntry& a : result.audit) {
    EXPECT_GE(a.time, last_time);  // delivery order
    last_time = a.time;
    const auto it = last.find(a.region);
    if (it != last.end()) EXPECT_GE(a.handled, it->second);
    last[a.region] = a.handled;
  }
  EXPECT_EQ(last.size(), config.regions);  // every region replied
}

TEST(Mega, TenThousandBackendSmoke) {
  MegaConfig config;  // the real topology: 24 x 420 = 10 080 backends
  config.shards = 4;
  config.duration = 1.0;
  config.rps_per_region = 50.0;
  config.scrape_interval = 0.5;
  const MegaResult result = run_mega(config);
  ASSERT_EQ(result.regions.size(), 24u);
  EXPECT_GT(result.total_requests, 24u * 30u);
  EXPECT_GT(result.mailbox.messages, 0u);
  for (const MegaRegionResult& r : result.regions) {
    EXPECT_GT(r.requests, 0u);
    EXPECT_GT(r.handled, 0u);
  }
}

}  // namespace
}  // namespace l3::workload
