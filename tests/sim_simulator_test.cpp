// Unit tests for the discrete-event simulation core.
#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace l3::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EqualTimestampsFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_until(2.0);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run_until(10.0);
  EXPECT_EQ(seen, 5.5);
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndKeepsLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(9.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(3.0, [&] { seen = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_EQ(seen, 5.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), l3::ContractViolation);
}

TEST(Simulator, ReentrantSchedulingFromEvent) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicTaskFiresAtInterval) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_every(5.0, [&] { times.push_back(sim.now()); });
  sim.run_until(21.0);
  ASSERT_EQ(times.size(), 5u);  // t = 0, 5, 10, 15, 20
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[4], 20.0);
}

TEST(Simulator, PeriodicTaskInitialDelay) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_every(5.0, [&] { times.push_back(sim.now()); }, 5.0);
  sim.run_until(12.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
  EXPECT_DOUBLE_EQ(times[1], 10.0);
}

TEST(Simulator, PeriodicTaskCancel) {
  Simulator sim;
  int count = 0;
  auto handle = sim.schedule_every(1.0, [&] { ++count; }, 1.0);
  sim.schedule_at(3.5, [&] { handle.cancel(); });
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);  // t = 1, 2, 3
  EXPECT_FALSE(handle.active());
}

TEST(Simulator, PeriodicTaskCancelFromWithinCallback) {
  Simulator sim;
  int count = 0;
  PeriodicHandle handle;
  handle = sim.schedule_every(1.0, [&] {
    ++count;
    if (count == 2) handle.cancel();
  }, 1.0);
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ExecutedCountsAllEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(static_cast<double>(i), [] {});
  sim.run_until(100.0);
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PeriodicFiringsAreDriftFree) {
  // 0.1 is not exactly representable in binary; an accumulating
  // `t += interval` drifts off the n*interval grid after enough firings.
  // The nth firing must land at exactly first + n*interval.
  Simulator sim;
  std::vector<double> times;
  const double interval = 0.1;
  sim.schedule_every(interval, [&] { times.push_back(sim.now()); }, interval);
  sim.run_until(100.0);
  ASSERT_GE(times.size(), 990u);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_EQ(times[k], interval + static_cast<double>(k) * interval)
        << "firing " << k << " drifted";
  }
}

}  // namespace
}  // namespace l3::sim
