// Tests for the Scraper's columnar snapshot plans (ColumnBlock): plans are
// rebuilt only when the registry version changes, target lookup is by name
// map (first add wins on duplicates, matching the old linear scan), and the
// columnar scrape writes byte-identical data to a straightforward
// per-series copy through the string-keyed TSDB API.
#include "l3/metrics/scraper.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace l3::metrics {
namespace {

class ColumnBlockTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  TimeSeriesDb tsdb;
  Registry registry;
};

TEST_F(ColumnBlockTest, PlanRebuiltOnlyOnRegistryVersionChange) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  registry.counter("a", {}).add(1.0);
  registry.gauge("g", {}).set(2.0);
  registry.histogram("h", {}).record(0.05);
  EXPECT_EQ(scraper.plan_rebuilds(), 0u);

  scraper.scrape_once();
  EXPECT_EQ(scraper.plan_rebuilds(), 1u);

  // Steady state: mutating existing series never rebuilds the plan.
  for (int i = 0; i < 10; ++i) {
    registry.counter("a", {}).add(1.0);
    registry.histogram("h", {}).record(0.2);
    scraper.scrape_once();
  }
  EXPECT_EQ(scraper.plan_rebuilds(), 1u);

  // A new series bumps the registry version: exactly one more rebuild.
  registry.counter("b", {}).add(3.0);
  scraper.scrape_once();
  scraper.scrape_once();
  EXPECT_EQ(scraper.plan_rebuilds(), 2u);
}

TEST_F(ColumnBlockTest, ColumnarScrapeMatchesPerSeriesCopy) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  registry.counter("req", {{"dst", "a"}}).add(7.0);
  registry.counter("req", {{"dst", "b"}}).add(11.0);
  registry.gauge("inflight", {}).set(4.0);
  HistogramSeries& h = registry.histogram("lat", {});
  for (int i = 0; i < 50; ++i) h.record(0.030 + 0.001 * i);

  // Two scrapes 5 s apart so windowed queries have rate data.
  scraper.scrape_once();
  registry.counter("req", {{"dst", "a"}}).add(5.0);
  for (int i = 0; i < 20; ++i) h.record(0.120);
  sim.run_until(5.0);
  scraper.scrape_once();

  // Oracle: the same two snapshots written through the string-keyed API in
  // registry enumeration order.
  TimeSeriesDb oracle;
  Registry shadow;
  shadow.counter("req", {{"dst", "a"}}).add(7.0);
  shadow.counter("req", {{"dst", "b"}}).add(11.0);
  shadow.gauge("inflight", {}).set(4.0);
  HistogramSeries& sh = shadow.histogram("lat", {});
  for (int i = 0; i < 50; ++i) sh.record(0.030 + 0.001 * i);
  auto copy_all = [&](SimTime at) {
    shadow.for_each(
        [&](const std::string& key, double v) { oracle.append(key, at, v); },
        [&](const std::string& key, double v) { oracle.append(key, at, v); },
        [&](const std::string& key, const HistogramSeries& hs) {
          oracle.append_histogram(key, at, hs.bounds(),
                                  hs.cumulative_counts());
        });
  };
  copy_all(0.0);
  shadow.counter("req", {{"dst", "a"}}).add(5.0);
  for (int i = 0; i < 20; ++i) sh.record(0.120);
  copy_all(5.0);

  for (const std::string key : {"req{dst=a}", "req{dst=b}", "inflight{}"}) {
    const auto got = tsdb.rate(key, 10.0, 5.0);
    const auto want = oracle.rate(key, 10.0, 5.0);
    ASSERT_EQ(got.has_value(), want.has_value()) << key;
    if (got) {
      EXPECT_EQ(*got, *want) << key;
    }
    EXPECT_EQ(*tsdb.last(key, 10.0, 5.0), *oracle.last(key, 10.0, 5.0))
        << key;
  }
  for (const double q : {0.5, 0.99}) {
    const auto got = tsdb.quantile("lat{}", q, 10.0, 5.0);
    const auto want = oracle.quantile("lat{}", q, 10.0, 5.0);
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(*got, *want) << "q=" << q;
  }
}

TEST_F(ColumnBlockTest, HistogramRowWidthFollowsCustomBounds) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  const std::vector<double> narrow = {0.1};
  const std::vector<double> wide = {0.01, 0.1, 1.0, 10.0};
  registry.histogram("narrow", {}, &narrow).record(0.05);
  registry.histogram("wide", {}, &wide).record(5.0);
  scraper.scrape_once();
  sim.run_until(5.0);
  registry.histogram("narrow", {}, &narrow).record(0.5);
  registry.histogram("wide", {}, &wide).record(0.005);
  scraper.scrape_once();

  const auto narrow_q = tsdb.quantile("narrow{}", 0.5, 10.0, 5.0);
  ASSERT_TRUE(narrow_q.has_value());
  // The second observation lands in the +Inf bucket; the quantile clamps
  // to the highest finite bound.
  EXPECT_DOUBLE_EQ(*narrow_q, 0.1);
  const auto wide_q = tsdb.quantile("wide{}", 0.5, 10.0, 5.0);
  ASSERT_TRUE(wide_q.has_value());
  EXPECT_LE(*wide_q, 0.01 + 1e-12);
}

TEST_F(ColumnBlockTest, TargetLookupIsByNameFirstAddWins) {
  Registry second;
  Scraper scraper(sim, tsdb);
  scraper.add_target("dup", registry);
  scraper.add_target("dup", second);
  registry.counter("a", {}).add(1.0);
  second.counter("b", {}).add(2.0);

  // Disabling "dup" hits the FIRST registered target (the old linear
  // scan's first-match semantics); the second keeps scraping.
  EXPECT_TRUE(scraper.set_target_enabled("dup", false));
  scraper.scrape_once();
  EXPECT_FALSE(tsdb.last("a{}", 1.0, 0.0).has_value());
  EXPECT_TRUE(tsdb.last("b{}", 1.0, 0.0).has_value());

  EXPECT_TRUE(scraper.set_target_enabled("dup", true));
  scraper.scrape_once();
  EXPECT_TRUE(tsdb.last("a{}", 1.0, 0.0).has_value());

  EXPECT_FALSE(scraper.set_target_enabled("missing", false));
}

TEST_F(ColumnBlockTest, DisabledTargetSkipsWithoutPlanChurn) {
  Scraper scraper(sim, tsdb);
  scraper.add_target("t", registry);
  registry.counter("a", {}).add(1.0);
  scraper.scrape_once();
  EXPECT_EQ(scraper.plan_rebuilds(), 1u);

  scraper.set_target_enabled("t", false);
  scraper.scrape_once();
  scraper.set_target_enabled("t", true);
  scraper.scrape_once();
  // Enable/disable cycles never invalidate the plan.
  EXPECT_EQ(scraper.plan_rebuilds(), 1u);
}

}  // namespace
}  // namespace l3::metrics
