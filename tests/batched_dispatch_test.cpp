// Batched dispatch equivalence tests.
//
// The dispatch-batch contract is that batching is a pure caller-overhead
// optimization: EventQueue::dispatch_batch pops events in exactly the order
// the per-event loop would, and a full scenario run produces a
// byte-identical request trace at every batch size. These tests pin that at
// both layers — the queue primitive directly, and end-to-end trace hashes
// across scenarios 1-5 plus a chaos plan at batch sizes 1 (the unbatched
// baseline), 7 (misaligned with everything) and 64 (the default).
#include "l3/sim/event.h"
#include "l3/workload/runner.h"
#include "l3/workload/scenarios.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace l3 {
namespace {

// --- EventQueue::dispatch_batch against the per-event loop ---------------

TEST(DispatchBatch, PopsInSameOrderAsDispatchMin) {
  sim::EventQueue batched;
  sim::EventQueue serial;
  std::vector<int> batched_order;
  std::vector<int> serial_order;
  std::uint64_t seq = 0;
  // Deliberate tie pile-up at t=2.0: FIFO-by-seq must hold in both modes.
  const double times[] = {5.0, 2.0, 2.0, 9.0, 2.0, 1.0, 7.0, 2.0};
  for (double t : times) {
    const int id = static_cast<int>(seq);
    batched.push(t, seq, [&batched_order, id] { batched_order.push_back(id); });
    serial.push(t, seq, [&serial_order, id] { serial_order.push_back(id); });
    ++seq;
  }
  while (!serial.empty()) {
    serial.dispatch_min([](SimTime, sim::EventFn& fn) { fn(); });
  }
  while (!batched.empty()) {
    batched.dispatch_batch(std::numeric_limits<SimTime>::infinity(), 3,
                           [](SimTime, sim::EventFn& fn) {
                             fn();
                             return true;
                           });
  }
  EXPECT_EQ(batched_order, serial_order);
}

TEST(DispatchBatch, ReentrantPushAtCurrentTimeRunsWithinBatch) {
  sim::EventQueue queue;
  std::vector<int> order;
  std::uint64_t seq = 0;
  queue.push(1.0, seq++, [&] {
    order.push_back(0);
    // Same-timestamp push from inside a batch: must be popped by this very
    // batch (it is the earliest pending event once the current one ends).
    queue.push(1.0, 99, [&order] { order.push_back(99); });
  });
  queue.push(2.0, seq++, [&] { order.push_back(1); });
  const std::size_t n = queue.dispatch_batch(
      10.0, 16, [](SimTime, sim::EventFn& fn) {
        fn();
        return true;
      });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 99, 1}));
}

TEST(DispatchBatch, RespectsEndTimeAndMaxN) {
  sim::EventQueue queue;
  int fired = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    queue.push(static_cast<double>(s), s, [&fired] { ++fired; });
  }
  auto run_all = [](SimTime, sim::EventFn& fn) {
    fn();
    return true;
  };
  // max_n caps the batch even with due events remaining.
  EXPECT_EQ(queue.dispatch_batch(100.0, 4, run_all), 4u);
  EXPECT_EQ(fired, 4);
  // end stops before events scheduled past it (t=8, t=9 stay queued).
  EXPECT_EQ(queue.dispatch_batch(7.5, 100, run_all), 4u);
  EXPECT_EQ(fired, 8);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(DispatchBatch, SinkReturningFalseEndsBatchAfterThatEvent) {
  sim::EventQueue queue;
  int fired = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    queue.push(1.0, s, [&fired] { ++fired; });
  }
  const std::size_t n =
      queue.dispatch_batch(10.0, 100, [&fired](SimTime, sim::EventFn& fn) {
        fn();
        return fired < 3;  // stop request, as run_until's stop() path does
      });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(queue.size(), 3u);
}

// --- End-to-end: batch size never changes the trace ----------------------

namespace w = workload;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t mix_f64(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix_u64(h, bits);
}

/// Same digest as sim_determinism_test: any reordered event, shifted
/// timestamp or changed routing decision perturbs it.
std::uint64_t trace_hash(const w::RunResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  h = mix_u64(h, r.requests);
  h = mix_u64(h, r.weight_updates);
  h = mix_f64(h, r.mean_attempts);
  h = mix_u64(h, r.summary.count);
  h = mix_f64(h, r.summary.success_rate);
  h = mix_f64(h, r.summary.latency.mean);
  h = mix_f64(h, r.summary.latency.p50);
  h = mix_f64(h, r.summary.latency.p99);
  h = mix_f64(h, r.summary.latency.max);
  h = mix_f64(h, r.summary.success_latency.mean);
  h = mix_f64(h, r.summary.success_latency.p99);
  for (const double share : r.traffic_share) h = mix_f64(h, share);
  for (const auto& bucket : r.timeline) {
    h = mix_f64(h, bucket.start);
    h = mix_u64(h, bucket.count);
    h = mix_f64(h, bucket.p50);
    h = mix_f64(h, bucket.p99);
    h = mix_f64(h, bucket.success_rate);
    h = mix_f64(h, bucket.rps);
  }
  return h;
}

w::RunnerConfig batch_config(std::size_t dispatch_batch) {
  w::RunnerConfig config;
  config.seed = 42;
  config.warmup = 10.0;
  config.duration = 20.0;
  config.dispatch_batch = dispatch_batch;
  return config;
}

/// Runs `trace` at batch sizes 1, 7 and 64 and requires identical hashes.
void expect_batch_invariant(const w::ScenarioTrace& trace,
                            w::PolicyKind policy,
                            w::RunnerConfig (*make)(std::size_t)) {
  const auto unbatched = w::run_scenario(trace, policy, make(1));
  const std::uint64_t expected = trace_hash(unbatched);
  ASSERT_GT(unbatched.requests, 100u) << "scenario produced no real load";
  for (std::size_t batch : {7u, 64u}) {
    const auto batched = w::run_scenario(trace, policy, make(batch));
    EXPECT_EQ(trace_hash(batched), expected) << "batch=" << batch;
  }
}

TEST(BatchedTraceIdentity, Scenario1) {
  expect_batch_invariant(w::make_scenario1(1), w::PolicyKind::kL3,
                         &batch_config);
}

TEST(BatchedTraceIdentity, Scenario2) {
  expect_batch_invariant(w::make_scenario2(2), w::PolicyKind::kL3,
                         &batch_config);
}

TEST(BatchedTraceIdentity, Scenario3) {
  expect_batch_invariant(w::make_scenario3(3), w::PolicyKind::kL3,
                         &batch_config);
}

TEST(BatchedTraceIdentity, Scenario4) {
  expect_batch_invariant(w::make_scenario4(4), w::PolicyKind::kL3,
                         &batch_config);
}

TEST(BatchedTraceIdentity, Scenario5) {
  expect_batch_invariant(w::make_scenario5(5), w::PolicyKind::kL3,
                         &batch_config);
}

TEST(BatchedTraceIdentity, PoissonArrivalsWithRetries) {
  // Poisson + kViaSplit: the arrival pregeneration path with real gap draws
  // on the client stream, plus the retry path.
  auto make = [](std::size_t batch) {
    auto config = batch_config(batch);
    config.poisson_arrivals = true;
    config.client_retries = 1;
    return config;
  };
  const auto trace = w::make_failure1(6);
  const auto unbatched = w::run_scenario(trace, w::PolicyKind::kC3, make(1));
  const auto batched = w::run_scenario(trace, w::PolicyKind::kC3, make(64));
  EXPECT_EQ(trace_hash(batched), trace_hash(unbatched));
}

TEST(BatchedTraceIdentity, ChaosPlan) {
  // Every fault kind active: crash/restart, brownout, partition, scrape
  // outage, controller pause — batching must not shift a single transition.
  auto make = [](std::size_t batch) {
    auto config = batch_config(batch);
    config.health_probe_interval = 0.0;
    config.faults.crash("api", 1, 5.0, 10.0)
        .brownout(0, 2, 8.0, 10.0, 0.050)
        .partition(0, 1, 18.0, 6.0)
        .scrape_outage(22.0, 5.0)
        .controller_pause(25.0, 4.0);
    return config;
  };
  const auto trace = w::make_scenario1(1);
  const auto unbatched = w::run_scenario(trace, w::PolicyKind::kL3, make(1));
  const auto batched = w::run_scenario(trace, w::PolicyKind::kL3, make(64));
  EXPECT_EQ(trace_hash(batched), trace_hash(unbatched));
}

}  // namespace
}  // namespace l3
