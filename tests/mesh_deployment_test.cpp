// Tests for Replica (slots + FIFO queue) and ServiceDeployment (replica
// selection, outage handling, behavior invocation).
#include "l3/mesh/deployment.h"

#include "l3/mesh/mesh.h"
#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>

namespace l3::mesh {
namespace {

TEST(Replica, RunsImmediatelyWhenSlotFree) {
  Replica r(2, 10);
  bool ran = false;
  EXPECT_TRUE(r.submit([&](ReleaseToken release) {
    ran = true;
    release();
  }));
  EXPECT_TRUE(ran);
  EXPECT_EQ(r.active(), 0u);
  EXPECT_EQ(r.completed(), 1u);
}

TEST(Replica, QueuesBeyondConcurrency) {
  Replica r(1, 10);
  ReleaseToken release_first;
  EXPECT_TRUE(r.submit([&](ReleaseToken release) {
    release_first = std::move(release);
  }));
  bool second_ran = false;
  EXPECT_TRUE(r.submit([&](ReleaseToken release) {
    second_ran = true;
    release();
  }));
  EXPECT_EQ(r.active(), 1u);
  EXPECT_EQ(r.queued(), 1u);
  EXPECT_FALSE(second_ran);
  release_first();  // frees the slot → queued job runs
  EXPECT_TRUE(second_ran);
  EXPECT_EQ(r.load(), 0u);
  EXPECT_EQ(r.completed(), 2u);
}

TEST(Replica, RejectsWhenQueueFull) {
  Replica r(1, 1);
  ReleaseToken hold;
  r.submit([&](ReleaseToken release) { hold = std::move(release); });
  EXPECT_TRUE(r.submit([](ReleaseToken release) { release(); }));
  EXPECT_FALSE(r.submit([](ReleaseToken release) { release(); }));
  EXPECT_EQ(r.rejected(), 1u);
  hold();
}

TEST(Replica, DoubleReleaseIsContractViolation) {
  Replica r(1, 1);
  ReleaseToken saved;
  r.submit([&](ReleaseToken release) { saved = std::move(release); });
  saved();
  EXPECT_FALSE(saved);  // consumed: the slot proof is gone
  EXPECT_THROW(saved(), ContractViolation);
}

TEST(Replica, FifoOrderForQueuedJobs) {
  Replica r(1, 10);
  ReleaseToken release0;
  std::vector<int> order;
  r.submit([&](ReleaseToken release) { release0 = std::move(release); });
  for (int i = 1; i <= 3; ++i) {
    r.submit([&order, i](ReleaseToken release) {
      order.push_back(i);
      release();
    });
  }
  release0();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest() : rng(1), mesh(sim, rng) {
    cluster = mesh.add_cluster("c1");
  }

  ServiceDeployment& deploy(DeploymentConfig config,
                            SimDuration median = 0.010,
                            SimDuration p99 = 0.050, double success = 1.0) {
    return mesh.deploy("svc", cluster, config,
                       std::make_unique<FixedLatencyBehavior>(median, p99,
                                                              success));
  }

  sim::Simulator sim;
  SplitRng rng;
  Mesh mesh;
  ClusterId cluster = 0;
};

TEST_F(DeploymentTest, HandlesRequestThroughBehavior) {
  auto& d = deploy({.replicas = 2, .concurrency = 4, .queue_capacity = 8});
  bool done = false;
  Outcome outcome;
  d.handle(0, [&](const Outcome& o) {
    done = true;
    outcome = o;
  });
  EXPECT_FALSE(done);  // asynchronous: needs the execution delay to elapse
  sim.run_until(10.0);
  EXPECT_TRUE(done);
  EXPECT_TRUE(outcome.success);
  EXPECT_FALSE(outcome.rejected);
  EXPECT_EQ(d.completed(), 1u);
}

TEST_F(DeploymentTest, DownDeploymentRejectsImmediately) {
  auto& d = deploy({});
  d.set_down(true);
  bool done = false;
  d.handle(0, [&](const Outcome& o) {
    done = true;
    EXPECT_FALSE(o.success);
    EXPECT_TRUE(o.rejected);
  });
  EXPECT_TRUE(done);  // rejection is synchronous
  EXPECT_EQ(d.rejected(), 1u);
}

TEST_F(DeploymentTest, SpreadsLoadAcrossReplicas) {
  auto& d = deploy({.replicas = 3, .concurrency = 100, .queue_capacity = 100});
  for (int i = 0; i < 30; ++i) {
    d.handle(0, [](const Outcome&) {});
  }
  // With least-loaded + rotation, 30 in-flight requests spread 10/10/10.
  EXPECT_EQ(d.replica(0).load(), 10u);
  EXPECT_EQ(d.replica(1).load(), 10u);
  EXPECT_EQ(d.replica(2).load(), 10u);
  sim.run_until(10.0);
  EXPECT_EQ(d.completed(), 30u);
}

TEST_F(DeploymentTest, FailureRateRoughlyHonoured) {
  auto& d = deploy({.replicas = 3, .concurrency = 1000,
                    .queue_capacity = 1000},
                   0.010, 0.050, 0.7);
  int ok = 0, total = 2000;
  for (int i = 0; i < total; ++i) {
    d.handle(0, [&](const Outcome& o) {
      if (o.success) ++ok;
    });
  }
  sim.run_until(60.0);
  EXPECT_NEAR(static_cast<double>(ok) / total, 0.7, 0.05);
}

TEST_F(DeploymentTest, SaturationBuildsQueueingDelay) {
  // 1 replica × 1 slot; behavior takes ~10 ms; submit 20 at once → the
  // last completion should be near 20 × exec time, far beyond a single
  // exec time.
  auto& d = deploy({.replicas = 1, .concurrency = 1, .queue_capacity = 64},
                   0.010, 0.0101);
  int completed = 0;
  SimTime last_done = 0.0;
  for (int i = 0; i < 20; ++i) {
    d.handle(0, [&](const Outcome&) {
      ++completed;
      last_done = sim.now();
    });
  }
  sim.run_until(10.0);
  EXPECT_EQ(completed, 20);
  EXPECT_GT(last_done, 0.15);  // ≈ 20 × 10 ms serialized
}

}  // namespace
}  // namespace l3::mesh
