// Tests for the specialized cumulative-weight search kernels: exact
// agreement with std::upper_bound (the reference semantics the scalar
// picker always had), batch/scalar equivalence, selector thresholds, and a
// chi-square distribution check per kernel — both directly against the
// kernels and end-to-end through a proxy with the test-only override
// forcing each kernel in turn.
#include "l3/mesh/pick_kernels.h"

#include "l3/common/rng.h"
#include "l3/mesh/mesh.h"
#include "l3/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace l3::mesh::pick {
namespace {

/// Restores production size-based selection no matter how a test exits —
/// the override is a global and must never leak into other tests.
struct KernelOverrideGuard {
  explicit KernelOverrideGuard(WeightedKernel k) {
    set_weighted_kernel_override(static_cast<int>(k));
  }
  ~KernelOverrideGuard() { set_weighted_kernel_override(-1); }
};

/// Reference implementation: first index whose cumulative weight exceeds r.
std::size_t reference_search(const std::vector<std::uint64_t>& cum,
                             std::uint64_t r) {
  return static_cast<std::size_t>(
      std::upper_bound(cum.begin(), cum.end(), r) - cum.begin());
}

/// A non-decreasing cumulative table with occasional plateaus (zero-weight
/// entries), the shape the picker builds when some backends carry weight 0.
std::vector<std::uint64_t> make_table(std::size_t n, SplitRng& rng) {
  std::vector<std::uint64_t> cum(n);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // ~1 in 4 entries weightless; upper_bound semantics must skip them.
    const bool zero = rng.bernoulli(0.25) && i + 1 < n;
    total += zero ? 0 : 1 + static_cast<std::uint64_t>(rng.uniform() * 997.0);
    cum[i] = total;
  }
  if (cum.back() == 0) cum.back() = 1;  // keep at least one pickable entry
  return cum;
}

constexpr WeightedKernel kAllKernels[] = {
    WeightedKernel::kLinear, WeightedKernel::kMultiLane,
    WeightedKernel::kBinary};

TEST(PickKernels, AllKernelsAgreeWithUpperBound) {
  SplitRng rng(101);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 31u, 32u, 33u,
                        64u, 100u, 128u}) {
    const auto cum = make_table(n, rng);
    const std::uint64_t total = cum.back();
    std::vector<std::uint64_t> draws;
    // Edges: 0, each boundary and its predecessor, plus random draws.
    draws.push_back(0);
    for (std::size_t i = 0; i < n; ++i) {
      if (cum[i] > 0) draws.push_back(cum[i] - 1);
      if (cum[i] < total) draws.push_back(cum[i]);
    }
    for (int k = 0; k < 200; ++k) {
      draws.push_back(
          static_cast<std::uint64_t>(rng.uniform() * static_cast<double>(total)));
    }
    for (std::uint64_t r : draws) {
      if (r >= total) r = total - 1;
      const std::size_t expected = reference_search(cum, r);
      for (const auto k : kAllKernels) {
        EXPECT_EQ(search(k, cum.data(), n, r), expected)
            << kernel_name(k) << " n=" << n << " r=" << r;
      }
    }
  }
}

TEST(PickKernels, SearchBatchMatchesScalarCalls) {
  SplitRng rng(202);
  for (std::size_t n : {3u, 8u, 32u, 128u}) {
    const auto cum = make_table(n, rng);
    const std::uint64_t total = cum.back();
    std::vector<std::uint64_t> draws(257);
    for (auto& d : draws) {
      d = static_cast<std::uint64_t>(rng.uniform() *
                                     static_cast<double>(total));
      if (d >= total) d = total - 1;
    }
    for (const auto k : kAllKernels) {
      std::vector<std::uint32_t> out(draws.size());
      search_batch(k, cum.data(), n, draws.data(), draws.size(), out.data());
      for (std::size_t j = 0; j < draws.size(); ++j) {
        EXPECT_EQ(out[j], search(k, cum.data(), n, draws[j]))
            << kernel_name(k) << " n=" << n << " j=" << j;
      }
    }
  }
}

TEST(PickKernels, SelectorPicksBySizeThresholds) {
  EXPECT_EQ(select_weighted_kernel(1), WeightedKernel::kLinear);
  EXPECT_EQ(select_weighted_kernel(kLinearMax), WeightedKernel::kLinear);
  EXPECT_EQ(select_weighted_kernel(kLinearMax + 1), WeightedKernel::kMultiLane);
  EXPECT_EQ(select_weighted_kernel(kMultiLaneMax), WeightedKernel::kMultiLane);
  EXPECT_EQ(select_weighted_kernel(kMultiLaneMax + 1), WeightedKernel::kBinary);
  EXPECT_EQ(select_weighted_kernel(64), WeightedKernel::kBinary);
}

TEST(PickKernels, OverrideForcesKernelRegardlessOfSize) {
  for (const auto k : kAllKernels) {
    KernelOverrideGuard guard(k);
    EXPECT_EQ(select_weighted_kernel(3), k);
    EXPECT_EQ(select_weighted_kernel(200), k);
  }
  EXPECT_EQ(select_weighted_kernel(3), WeightedKernel::kLinear);
}

/// Chi-square statistic of observed counts against expected proportions.
double chi_square(const std::vector<std::uint64_t>& observed,
                  const std::vector<double>& expected_share,
                  std::uint64_t total) {
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_share[i] * static_cast<double>(total);
    if (expected <= 0.0) {
      EXPECT_EQ(observed[i], 0u) << "weightless bin " << i << " got picks";
      continue;
    }
    const double d = static_cast<double>(observed[i]) - expected;
    stat += d * d / expected;
  }
  return stat;
}

TEST(PickKernels, ChiSquareDirectDrawsMatchWeightsPerKernel) {
  // 16-entry table (the multilane selector's natural regime) with a skewed
  // weight vector including a zero. df = 14 pickable - 1 = 13; the 99.9th
  // percentile of chi2(13) is 34.5 — use 40 for slack. The draw mapping is
  // deterministic, so this never flakes; the margin is pure chi-square.
  constexpr std::size_t kN = 16;
  std::vector<std::uint64_t> weights(kN);
  for (std::size_t i = 0; i < kN; ++i) weights[i] = 10 + 25 * (i % 5);
  weights[5] = 0;
  std::vector<std::uint64_t> cum(kN);
  std::uint64_t total_weight = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    total_weight += weights[i];
    cum[i] = total_weight;
  }
  std::vector<double> share(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    share[i] = static_cast<double>(weights[i]) /
               static_cast<double>(total_weight);
  }
  constexpr std::uint64_t kDraws = 200000;
  for (const auto k : kAllKernels) {
    SplitRng rng(303);  // same draw sequence against every kernel
    std::vector<std::uint64_t> counts(kN, 0);
    for (std::uint64_t d = 0; d < kDraws; ++d) {
      auto r = static_cast<std::uint64_t>(
          rng.uniform() * static_cast<double>(total_weight));
      if (r >= total_weight) r = total_weight - 1;
      counts[search(k, cum.data(), kN, r)]++;
    }
    EXPECT_LT(chi_square(counts, share, kDraws), 40.0) << kernel_name(k);
  }
}

/// End-to-end: a proxy with a 6/3/1 weight split must reproduce those
/// shares through every kernel, via both the scalar picker and the batch
/// path. Exercises the fused linear loop and the staged search_batch path
/// inside Proxy::pick_backend_batch.
class ProxyKernelChiSquareTest : public ::testing::Test {
 protected:
  ProxyKernelChiSquareTest() : rng(17), mesh(sim, rng, make_config()) {
    c1 = mesh.add_cluster("c1");
    c2 = mesh.add_cluster("c2");
    c3 = mesh.add_cluster("c3");
    for (ClusterId c : {c1, c2, c3}) {
      mesh.deploy("svc", c, {},
                  std::make_unique<FixedLatencyBehavior>(0.010, 0.030));
    }
    mesh.proxy(c1, "svc");
    mesh.find_split(c1, "svc")->set_weights(
        std::vector<std::uint64_t>{6000, 3000, 1000});
  }

  static MeshConfig make_config() {
    MeshConfig config;
    config.local_delay = 0.0;
    config.local_jitter_frac = 0.0;
    config.health_probe_interval = 0.0;
    return config;
  }

  sim::Simulator sim;
  SplitRng rng;
  Mesh mesh;
  ClusterId c1 = 0, c2 = 0, c3 = 0;
};

TEST_F(ProxyKernelChiSquareTest, ScalarPickMatchesWeightsPerKernel) {
  const std::vector<double> share{0.6, 0.3, 0.1};
  constexpr int kPicks = 60000;
  // df = 2; chi2(2) 99.9th percentile is 13.8 — use 20 for slack.
  for (const auto k : kAllKernels) {
    KernelOverrideGuard guard(k);
    Proxy& proxy = mesh.proxy(c1, "svc");
    std::vector<std::uint64_t> counts(3, 0);
    for (int i = 0; i < kPicks; ++i) counts[proxy.pick_backend()]++;
    EXPECT_LT(chi_square(counts, share, kPicks), 20.0) << kernel_name(k);
  }
}

TEST_F(ProxyKernelChiSquareTest, BatchPickMatchesWeightsPerKernel) {
  const std::vector<double> share{0.6, 0.3, 0.1};
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kBlocks = 1000;
  for (const auto k : kAllKernels) {
    KernelOverrideGuard guard(k);
    Proxy& proxy = mesh.proxy(c1, "svc");
    std::vector<std::uint64_t> counts(3, 0);
    std::uint32_t out[kBlock];
    for (std::size_t b = 0; b < kBlocks; ++b) {
      proxy.pick_backend_batch(out, kBlock);
      for (std::size_t j = 0; j < kBlock; ++j) counts[out[j]]++;
    }
    EXPECT_LT(chi_square(counts, share, kBlock * kBlocks), 20.0)
        << kernel_name(k);
  }
}

}  // namespace
}  // namespace l3::mesh::pick
