// Scenario traces: the per-second description of a workload's behaviour the
// way the paper's TIER Mobility captures describe theirs — for each cluster
// a latency distribution (median + P99 of service-execution time, network
// spans excluded per §5.1) and a success rate, plus a global request volume
// (RPS). Traces drive both the API workloads (artificial response delays,
// the RabbitMQ-coordinated role) and the load generator (request volume).
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"

#include <cstddef>
#include <string>
#include <vector>

namespace l3::workload {

/// One second of one cluster's behaviour.
struct TracePoint {
  double median = 0.050;      ///< median service-execution latency (s)
  double p99 = 0.200;         ///< 99th-percentile latency (s), > median
  double success_rate = 1.0;  ///< fraction of requests that succeed
};

/// A complete multi-cluster scenario over a fixed duration.
class ScenarioTrace {
 public:
  /// @param dt  time step of the series (1 s, the granularity the paper's
  ///            coordinator retrieves metrics at).
  ScenarioTrace(std::string name, std::size_t clusters, SimDuration duration,
                SimDuration dt = 1.0);

  const std::string& name() const { return name_; }
  std::size_t cluster_count() const { return clusters_; }
  SimDuration duration() const { return duration_; }
  SimDuration dt() const { return dt_; }
  std::size_t steps() const { return steps_; }

  /// Mutable access for generators.
  TracePoint& at(std::size_t cluster, std::size_t step);
  const TracePoint& at(std::size_t cluster, std::size_t step) const;

  /// The trace point governing cluster behaviour at scenario time t
  /// (clamped to [0, duration)).
  const TracePoint& point(std::size_t cluster, SimTime t) const;

  /// Global request volume series.
  void set_rps(std::size_t step, double rps);
  double rps_at(SimTime t) const;

  /// Mean RPS over the whole trace.
  double mean_rps() const;

 private:
  std::size_t index(SimTime t) const;

  std::string name_;
  std::size_t clusters_;
  SimDuration duration_;
  SimDuration dt_;
  std::size_t steps_;
  std::vector<std::vector<TracePoint>> points_;  // [cluster][step]
  std::vector<double> rps_;                      // [step]
};

}  // namespace l3::workload
