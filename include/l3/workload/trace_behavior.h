// The trace-replay API workload: a ServiceBehavior that delays each response
// by a latency drawn from the scenario's per-cluster log-normal distribution
// at the current scenario time and fails requests per the scenario's success
// rate — the role the RabbitMQ-instructed HTTP/2 REST API workloads play in
// the paper's benchmark setup (§5.1).
#pragma once

#include "l3/common/time.h"
#include "l3/mesh/deployment.h"
#include "l3/workload/scenario.h"

#include <memory>

namespace l3::workload {

/// Replays one cluster's column of a scenario trace.
class TraceReplayBehavior final : public mesh::ServiceBehavior {
 public:
  /// @param trace         shared scenario (outlives via shared_ptr)
  /// @param trace_cluster which cluster's series to replay
  /// @param start_offset  sim time at which scenario time 0 begins (time
  ///                      before that — the warm-up — replays step 0)
  /// @param failure_latency_factor  failed responses return after
  ///                      factor × the sampled execution time (failures are
  ///                      typically faster than successes)
  TraceReplayBehavior(std::shared_ptr<const ScenarioTrace> trace,
                      std::size_t trace_cluster, SimTime start_offset = 0.0,
                      double failure_latency_factor = 0.5);

  void invoke(const mesh::BehaviorContext& ctx, mesh::OutcomeFn done) override;

  /// Samples one execution latency for the given trace point — a
  /// two-component mixture matching real microservice latency: with
  /// probability (1 − kTailWeight) a fast path around the median, with
  /// probability kTailWeight a slow path around the P99 (GC pauses, cache
  /// misses, slow database queries). The mixture realises the trace's
  /// median and P99 while keeping the MEAN nearly insensitive to tail
  /// movement — the property that separates tail-aware L3 from mean-based
  /// rankers.
  static SimDuration sample_latency(const TracePoint& point, SplitRng& rng);

  /// Fraction of requests taking the slow path. 2 % puts the 99th
  /// percentile in the middle of the slow component.
  static constexpr double kTailWeight = 0.02;
  /// Log-sigma of each mixture component (≈ ×2 spread at 99 %).
  static constexpr double kComponentSigma = 0.30;

 private:
  std::shared_ptr<const ScenarioTrace> trace_;
  std::size_t trace_cluster_;
  SimTime start_offset_;
  double failure_latency_factor_;
};

}  // namespace l3::workload
