// The benchmark coordinator for the trace scenarios (§5.1 "TIER Mobility"):
// builds the three-cluster test environment (Frankfurt / Paris / Milan, ≈
// 10 ms RTT between clusters), deploys the trace-replay API workload with
// three replicas per cluster, wires Prometheus scraping and an L3 controller
// in cluster-1, warms up, drives the load generator with the scenario's
// request volume, and reports latency percentiles and success rate.
#pragma once

#include "l3/chaos/fault_plan.h"
#include "l3/common/time.h"
#include "l3/core/controller.h"
#include "l3/lb/c3_policy.h"
#include "l3/lb/l3_policy.h"
#include "l3/obs/recorder.h"
#include "l3/workload/client.h"
#include "l3/workload/scenario.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace l3::workload {

/// Which load-balancing algorithm a run uses (§5.1 comparison algorithms
/// plus the extra baselines).
enum class PolicyKind {
  kRoundRobin,
  kC3,
  kL3,
  kLocalityFailover,
};

/// Human-readable policy name, matching the paper's figure labels.
std::string_view policy_name(PolicyKind kind);

/// Builds a policy instance from the run options.
std::unique_ptr<lb::LoadBalancingPolicy> make_policy(
    PolicyKind kind, const lb::L3PolicyConfig& l3_config = {},
    const lb::C3PolicyConfig& c3_config = {});

/// Configuration of one trace-scenario run.
struct RunnerConfig {
  std::uint64_t seed = 42;
  /// Warm-up before measurement starts (§5.1: "a short warm-up period to
  /// populate caches and establish baselines for all the internal EWMAs").
  SimDuration warmup = 60.0;
  /// Measured duration; 0 = the scenario's full length.
  SimDuration duration = 0.0;

  // Test environment (§5.1).
  std::size_t replicas_per_cluster = 3;
  std::size_t replica_concurrency = 256;
  std::size_t replica_queue_capacity = 2048;
  SimDuration wan_one_way = 0.005;  ///< ≈10 ms RTT between clusters
  double wan_jitter_frac = 0.10;
  SimDuration wan_flap_amp = 0.001;
  SimDuration local_one_way = 0.0005;
  SimDuration scrape_interval = 5.0;
  SimDuration propagation_delay = 0.0;
  bool poisson_arrivals = false;
  /// Client-side retries on failed requests (0 = the paper's setup).
  int client_retries = 0;
  SimDuration retry_backoff = 0.050;
  /// Proxy routing mode (weighted TrafficSplit vs per-request P2C).
  mesh::RoutingMode routing = mesh::RoutingMode::kWeighted;
  /// Envoy-style outlier detection in every proxy (§5.1's circuit breaker).
  mesh::OutlierDetectionConfig outlier;
  /// Data-plane proxy cost model (DESIGN.md §16): per-request sidecar CPU
  /// through a bounded-concurrency service stage plus per-edge connection
  /// pools with mTLS handshake costs. The zero-cost defaults reproduce the
  /// cost-free runner byte-for-byte.
  mesh::ProxyCostConfig proxy_cost;
  /// Client-side request timeout for every proxy (0 disables).
  SimDuration request_timeout = 30.0;
  /// Health-probe interval (0 disables health checking). Chaos benches set
  /// 0 so failures are only visible through metrics, as in the paper.
  SimDuration health_probe_interval = 10.0;
  /// Fault timeline armed against the run, with times relative to
  /// measurement start (the warm-up is applied as the arm offset). Empty =
  /// no faults, reproducing the fault-free runner exactly.
  chaos::FaultPlan faults;
  /// Bind an obs::Recorder for the run: the flight recorder and self-
  /// profiler capture the run and RunResult::profile carries the
  /// deterministic digest. Instrumentation reads thread-local state only —
  /// simulation results are identical with this on or off (and the macros
  /// compile out entirely with L3_OBS=OFF).
  bool profile = false;
  /// Hot-path batching knob: events drained per EventQueue batch and
  /// arrival times pre-generated per client block. 1 = fully unbatched
  /// (per-event dispatch, the pre-batching code path). Simulation results
  /// are byte-identical for every value — this is a throughput knob only,
  /// which the batched-vs-unbatched golden-trace tests pin down.
  std::size_t dispatch_batch = 64;
  /// Simulator shards for the conservative-lookahead parallel engine
  /// (l3/sim/shard_engine.h). The fig topologies couple the clusters
  /// through the legacy WAN discipline (the return delay is drawn
  /// dest-side on the proxy's stream), so the runner keeps every cluster
  /// on shard 0 and extra shards idle — results are byte-identical for
  /// every value, which the shard-invariance diffs in check.sh pin down.
  /// Real parallel speedup comes from the presampled mega scenario
  /// (l3/workload/mega.h).
  std::size_t shards = 1;

  // Algorithm configuration.
  core::ControllerConfig controller;
  lb::L3PolicyConfig l3;
  lb::C3PolicyConfig c3;
};

/// Result of one run.
struct RunResult {
  std::string policy;
  std::string scenario;
  ClientSummary summary;  ///< post-warm-up
  std::vector<TimelineBucket> timeline;
  std::uint64_t requests = 0;
  std::uint64_t weight_updates = 0;
  /// Mean client attempts per request (1.0 when retries are off).
  double mean_attempts = 1.0;
  /// Post-warm-up traffic share per backend cluster (fraction of requests).
  std::vector<double> traffic_share;
  /// Data-plane cost-model accounting of the cluster-1 proxy (handshakes,
  /// pool hits, CPU-stage queueing); all zeros when the model is disabled.
  mesh::ProxyCostStats proxy_cost_stats;
  /// Deterministic self-profile digest (empty unless RunnerConfig::profile).
  obs::ProfileBlock profile;
};

/// Runs one scenario under one policy. Deterministic in (trace, kind, cfg).
RunResult run_scenario(const ScenarioTrace& trace, PolicyKind kind,
                       const RunnerConfig& config = {});

/// Runs one scenario under an arbitrary policy instance (for decorated or
/// custom policies such as the cost-aware adjuster). When
/// `config.controller.dynamic_penalty` is set and the policy is (or wraps)
/// an L3Policy, the controller's failed-request-latency feedback drives the
/// penalty factor P (§7 future work).
RunResult run_scenario_with(const ScenarioTrace& trace,
                            std::unique_ptr<lb::LoadBalancingPolicy> policy,
                            const RunnerConfig& config = {});

/// Runs `repetitions` times with derived seeds and returns all results
/// (the paper repeats each benchmark 2–3 times).
std::vector<RunResult> run_scenario_repeated(const ScenarioTrace& trace,
                                             PolicyKind kind,
                                             const RunnerConfig& config,
                                             int repetitions);

/// Mean P99 (seconds) across repetitions, over all requests.
double mean_p99(const std::vector<RunResult>& results);

/// Mean success rate across repetitions.
double mean_success_rate(const std::vector<RunResult>& results);

/// Mean of an arbitrary percentile accessor across repetitions.
double mean_of(const std::vector<RunResult>& results,
               double (*accessor)(const RunResult&));

}  // namespace l3::workload
