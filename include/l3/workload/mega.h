// The "mega" scale scenario: a 10k-backend mesh sharded across the
// conservative-lookahead parallel engine (l3/sim/shard_engine.h). Unlike
// the three-cluster fig topologies — which are RNG-coupled through the
// legacy WAN discipline and therefore pinned to shard 0 — mega uses the
// presampled WAN discipline (Proxy::enable_presampled): both WAN legs are
// drawn source-side at send time, so the regions decouple and can be
// partitioned across shards with real parallel speedup.
//
// Topology: `regions` single-cluster regions, each deploying
// `replicas_per_region` replicas of one "api" service (the default
// 24 × 420 = 10 080 backends). Every region runs its own open-loop client,
// Prometheus-style scraper + TSDB, and L3 controller — the paper's
// production layout (§3) scaled out. Regions are assigned to shards in
// contiguous blocks (owner(r) = r·shards/regions); all cross-region
// traffic rides the epoch-flushed mailboxes.
//
// Determinism: MegaResult::digest() is byte-identical for every shard
// count (pinned by the workload_mega tests and check.sh). The digest
// excludes the mailbox counters and wall-clock throughput, which are
// shard-count-dependent by construction.
#pragma once

#include "l3/common/time.h"
#include "l3/mesh/proxy_cost.h"
#include "l3/sim/mailbox.h"

#include <cstdint>
#include <string>
#include <vector>

namespace l3::workload {

/// Configuration of one mega run. The defaults build the 10k-backend
/// scenario; tests shrink regions/replicas/duration for speed.
struct MegaConfig {
  /// Single-cluster regions (= clusters = proxies = controllers).
  std::size_t regions = 24;
  /// Replicas of the "api" service per region (24 × 420 = 10 080).
  std::size_t replicas_per_region = 420;
  /// Simulator shards; must satisfy 1 <= shards <= regions.
  std::size_t shards = 1;
  /// Pin each shard thread to a CPU (bench mode; tests leave this off).
  bool pin_threads = false;
  std::uint64_t seed = 42;
  /// Measured duration; the run drains 5 s past this for in-flight
  /// responses.
  SimDuration duration = 10.0;
  double rps_per_region = 200.0;

  // Network. `wan_base` doubles as the cross-region lookahead, so it must
  // stay the registered link floor (the WanModel is frozen after setup).
  SimDuration wan_base = 0.005;
  double wan_jitter_frac = 0.10;
  SimDuration local_delay = 0.0005;

  SimDuration scrape_interval = 2.0;
  /// Cadence of the shard-0 audit coordinator, which round-trips a keyed
  /// mailbox message to every region and merges the replies into one
  /// cross-shard snapshot (0 disables).
  SimDuration audit_interval = 1.0;

  /// Arm the chaos timeline: replica crashes in every region where
  /// r % 7 == 3, one WAN brownout and one partition window. Crash events
  /// are injected on the owning shard; WAN faults are installed into every
  /// shard's WanModel copy identically (they are pure functions of time).
  bool chaos = false;

  /// Data-plane proxy cost model applied in every region's mesh
  /// (DESIGN.md §16). Entirely source-side deterministic state, so the
  /// digest stays byte-identical for every shard count. Zero-cost defaults
  /// reproduce the cost-free mega run exactly.
  mesh::ProxyCostConfig proxy_cost;

  /// Cross-shard mailbox flush threshold (ShardEngine::Config).
  std::size_t mailbox_capacity = 256;
  std::size_t dispatch_batch = 64;
};

/// Per-region outcome (client-side view of that region's proxy).
struct MegaRegionResult {
  std::uint64_t requests = 0;  ///< completed client requests
  double success_rate = 1.0;
  double p50 = 0.0;
  double p99 = 0.0;
  /// Requests the region's deployment handled (local + remote callers).
  std::uint64_t handled = 0;
};

/// One audit reply merged on shard 0: region `region` had handled
/// `handled` requests when the coordinator's probe arrived; `time` is the
/// reply's delivery time on shard 0.
struct MegaAuditEntry {
  SimTime time = 0.0;
  std::uint32_t region = 0;
  std::uint64_t handled = 0;
};

/// Result of one mega run.
struct MegaResult {
  std::vector<MegaRegionResult> regions;
  /// The shard-0 audit coordinator's merged cross-shard snapshots, in
  /// delivery order (deterministic: the mailbox drain is keyed).
  std::vector<MegaAuditEntry> audit;
  std::uint64_t total_requests = 0;
  /// Events executed across all shards. Shard-count-invariant: windowing
  /// and mailbox flushes create no events of their own.
  std::uint64_t total_events = 0;
  std::size_t shards = 1;
  /// Cross-shard mailbox traffic (shard-count-DEPENDENT; excluded from
  /// the digest).
  sim::MailboxStats mailbox;
  /// Wall-clock seconds spent inside the engine run (not deterministic;
  /// excluded from the digest).
  double wall_seconds = 0.0;

  /// Deterministic run fingerprint: per-region counts and latency
  /// percentiles (full precision), the audit log, and the global event
  /// count. Byte-identical for every shard count.
  std::string digest() const;
};

/// Runs the mega scenario. Deterministic in (config minus shards /
/// pin_threads / mailbox_capacity / dispatch_batch): those four knobs
/// change scheduling, not results.
MegaResult run_mega(const MegaConfig& config = {});

}  // namespace l3::workload
