// The load generator: an open-loop (arrival-rate-driven) HTTP client in the
// style of wrk2 — arrivals are scheduled from the target rate alone, never
// from response completions, so the recorded latencies are free of
// coordinated omission. Requests can be sent either through the mesh's
// TrafficSplit routing (the trace benchmarks) or directly to the
// cluster-local deployment (the DeathStarBench client, which always talks
// to its local frontend, §5.1).
#pragma once

#include "l3/common/rng.h"
#include "l3/common/stats.h"
#include "l3/common/time.h"
#include "l3/mesh/mesh.h"
#include "l3/trace/span.h"

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace l3::workload {

/// One completed (or timed-out) request as the client saw it. When client
/// retries are enabled, `latency` spans first send to final response and
/// `success`/`backend_cluster` describe the last attempt.
struct RequestRecord {
  SimTime sent = 0.0;
  SimDuration latency = 0.0;
  bool success = true;
  bool timed_out = false;
  mesh::ClusterId backend_cluster = 0;
  /// Number of attempts made (1 = no retry needed).
  int attempts = 1;
};

/// How the client reaches the target service.
enum class CallMode {
  kViaSplit,     ///< through the source cluster's proxy + TrafficSplit
  kLocalDirect,  ///< straight to the local deployment (DSB frontend style)
};

/// OpenLoopClient configuration.
struct ClientConfig {
  CallMode mode = CallMode::kViaSplit;
  /// Poisson arrivals instead of deterministic equal spacing.
  bool poisson = false;
  /// Client-side retries on failure (§5.2.1: L3's latency estimate assumes
  /// clients retry failed requests). 0 reproduces the paper's benchmark
  /// setup, which did not retry.
  int max_retries = 0;
  /// Pause before a retry is issued (the client's failure-detection +
  /// backoff time).
  SimDuration retry_backoff = 0.0;
  /// Arrival times are pre-generated in blocks of up to this many (>= 1),
  /// so the gap recurrence (rate lookup + exponential draw) runs as a tight
  /// loop instead of being re-entered once per dispatched event. Byte-
  /// identical for any value: the recurrence consumes exactly the same
  /// draws in the same stream order, and in the one mode where other draws
  /// interleave on this client's stream (poisson + kLocalDirect, where
  /// fire draws WAN samples from the same SplitRng) the effective block
  /// size is forced to 1.
  std::size_t arrival_batch = 16;
};

/// Open-loop constant-throughput client.
class OpenLoopClient {
 public:
  /// Target request rate (RPS) as a function of sim time.
  using RpsFn = std::function<double(SimTime)>;

  /// Kept as a nested alias for readability at call sites.
  using Config = ClientConfig;

  OpenLoopClient(mesh::Mesh& mesh, mesh::ClusterId source,
                 std::string service, RpsFn rps, SplitRng rng,
                 Config config = {});

  /// Schedules request arrivals over [begin, end) of sim time. Responses
  /// arriving after `end` are still recorded (the run loop must extend a
  /// little past `end` to drain them).
  void start(SimTime begin, SimTime end);

  const std::vector<RequestRecord>& records() const { return records_; }

  /// Records sent at or after `t` (e.g. to drop the warm-up).
  std::vector<RequestRecord> records_after(SimTime t) const;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t completed() const { return records_.size(); }

 private:
  void schedule_next();
  /// Runs the gap recurrence forward from `from`, filling arrival_block_
  /// with up to one block of future arrival times (stops at end_).
  void refill_arrivals(SimTime from);
  void fire();
  void fire_local_direct();
  void send_attempt(SimTime first_sent, int attempt, trace::SpanContext root);
  /// Finalizes the root span of a traced request (no-op when unsampled).
  void end_trace(trace::SpanContext root, bool success, bool timed_out);

  mesh::Mesh& mesh_;
  mesh::ClusterId source_;
  std::string service_;
  RpsFn rps_;
  SplitRng rng_;
  Config config_;
  SimTime end_ = 0.0;
  std::uint64_t sent_ = 0;
  std::vector<SimTime> arrival_block_;  ///< pre-generated arrival times
  std::size_t arrival_next_ = 0;        ///< next unscheduled block entry
  bool arrivals_done_ = false;          ///< recurrence crossed end_; stop
  std::vector<RequestRecord> records_;
  /// Resolved on first use (the mesh's routing tables are map lookups; the
  /// client sends every request to the same target).
  mesh::Proxy* proxy_ = nullptr;
  mesh::ServiceDeployment* local_deployment_ = nullptr;
};

/// One-second (by default) aggregation bucket of client records — the
/// "percentile latencies with one-second granularity" the paper's
/// coordinator retrieves (§5.1).
struct TimelineBucket {
  SimTime start = 0.0;
  std::size_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double success_rate = 1.0;
  double rps = 0.0;
};

/// Buckets records into fixed windows over [t0, t1).
std::vector<TimelineBucket> aggregate_timeline(
    std::span<const RequestRecord> records, SimTime t0, SimTime t1,
    SimDuration bucket = 1.0);

/// Latency summary plus success rate over a record span.
struct ClientSummary {
  LatencySummary latency;  ///< over ALL requests (success + failure)
  LatencySummary success_latency;
  double success_rate = 1.0;
  std::size_t count = 0;
};

ClientSummary summarize_records(std::span<const RequestRecord> records);

}  // namespace l3::workload
