// CSV import/export for scenario traces, so users can replay their own
// production captures (the TIER Mobility role) instead of the synthetic
// library, and inspect generated scenarios in external tools.
//
// Format (one row per time step):
//   # scenario <name> clusters=<C> duration=<D> dt=<dt>
//   t,rps,c0_median,c0_p99,c0_success,c1_median,c1_p99,c1_success,...
// Latencies in seconds, success rates in [0,1].
#pragma once

#include "l3/workload/scenario.h"

#include <iosfwd>
#include <string>

namespace l3::workload {

/// Writes a trace as CSV.
void save_trace_csv(const ScenarioTrace& trace, std::ostream& os);

/// Writes a trace to a file; throws ContractViolation on I/O failure.
void save_trace_csv(const ScenarioTrace& trace, const std::string& path);

/// Parses a trace from CSV (the exact format save_trace_csv emits).
/// Throws ContractViolation on malformed input.
ScenarioTrace load_trace_csv(std::istream& is);

/// Reads a trace from a file; throws ContractViolation on I/O failure.
ScenarioTrace load_trace_csv(const std::string& path);

}  // namespace l3::workload
