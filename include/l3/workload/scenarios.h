// The scenario library: synthetic reconstructions of the paper's seven
// evaluation workloads. The TIER Mobility production traces are proprietary,
// so each scenario is generated from the quantitative features the paper
// publishes (Figures 1, 2, 6, 7a and the §2/§5 prose):
//
//   scenario-1  median 50–100 ms with spikes to ~350 ms on cluster-2;
//               P99 fluctuating 100–950 ms; stable ~300 RPS.
//   scenario-2  median 3–9 ms; P99 10–100 ms with intermittent spikes to
//               ~2400 ms; RPS fluctuating 45–200.
//   scenario-3  stable median, irregular P99 peaks up to ~2000 ms.
//   scenario-4  stable median, the highest P99 fluctuation (peaks ~5000 ms).
//   scenario-5  very stable median (σ ≈ 6.3 ms), P99 ~100–300 ms.
//   failure-1   scenario-1 latencies + injected failures: average success
//               rate 91.4 %, intermittent per-cluster drops to ~30 %.
//   failure-2   scenario-2 latencies + injected failures: average success
//               rate 98.5 %, mostly ~99 % with short ≤5 % drops; the best
//               backend averages ~99.8 % (the §5.2.1 ceiling).
//
// All scenarios are deterministic functions of (shape, seed).
#pragma once

#include "l3/chaos/fault_plan.h"
#include "l3/common/rng.h"
#include "l3/workload/scenario.h"

#include <cstdint>
#include <vector>

namespace l3::workload {

/// Parameter set of the generic scenario generator. All latencies are in
/// seconds, probabilities are per second per cluster.
struct ScenarioShape {
  std::string name = "scenario";
  SimDuration duration = 600.0;  ///< 10-minute captures, like the paper's
  std::size_t clusters = 3;

  // Request volume: bounded random walk.
  double rps_base = 100.0;
  double rps_lo = 50.0;
  double rps_hi = 200.0;
  double rps_sigma = 0.0;  ///< walk step stddev per second (0 = constant)

  // Median service latency: bounded random walk per cluster.
  double med_lo = 0.040;
  double med_hi = 0.110;
  double med_sigma = 0.003;

  // Tail ratio (P99 / median): bounded random walk per cluster.
  double ratio_lo = 2.0;
  double ratio_hi = 8.0;
  double ratio_sigma = 0.3;

  // Transient P99 spikes (multiplier on the tail ratio, linear decay).
  double spike_prob = 0.0;
  double spike_mult_lo = 2.0;
  double spike_mult_hi = 4.0;
  SimDuration spike_duration = 8.0;

  // Rotating slow windows: every `slow_period` seconds the next cluster in
  // turn runs degraded for `slow_duration` seconds — the exploitable
  // heterogeneity ("the closest replica may often not be the best", §1).
  SimDuration slow_period = 0.0;  ///< 0 disables
  SimDuration slow_duration = 30.0;
  double slow_med_mult = 1.5;
  double slow_ratio_mult = 2.5;

  // Success rate: bounded random walk plus transient drops.
  double succ_lo = 1.0;
  double succ_hi = 1.0;
  double succ_sigma = 0.0;
  double drop_prob = 0.0;  ///< per second per cluster
  double drop_lo = 0.3;    ///< success rate during a drop (lower bound)
  double drop_hi = 0.7;
  SimDuration drop_dur_lo = 10.0;
  SimDuration drop_dur_hi = 30.0;

  /// Hard cap on any cluster's instantaneous P99 (seconds) — overlapping
  /// slow windows and spikes multiply, and real systems saturate; the cap
  /// anchors each scenario's published peak (e.g. ~2.4 s for scenario-2,
  /// ~5 s for scenario-4).
  double max_p99 = 1e9;

  // Static per-cluster multipliers/offsets (size == clusters or empty).
  std::vector<double> cluster_med_mult;    ///< default: all 1.0
  std::vector<double> cluster_succ_bonus;  ///< additive on success rate
};

/// Runs the generator; deterministic in (shape, seed).
ScenarioTrace generate_scenario(const ScenarioShape& shape,
                                std::uint64_t seed);

// --- the paper's seven scenarios -----------------------------------------

ScenarioTrace make_scenario1(std::uint64_t seed = 1);
ScenarioTrace make_scenario2(std::uint64_t seed = 2);
ScenarioTrace make_scenario3(std::uint64_t seed = 3);
ScenarioTrace make_scenario4(std::uint64_t seed = 4);
ScenarioTrace make_scenario5(std::uint64_t seed = 5);
ScenarioTrace make_failure1(std::uint64_t seed = 6);
ScenarioTrace make_failure2(std::uint64_t seed = 7);

/// All five latency scenarios in paper order (for Fig. 10 sweeps).
std::vector<ScenarioTrace> all_latency_scenarios(std::uint64_t seed_base = 1);

// --- chaos-based failure scenarios ---------------------------------------
//
// The originals above bake the failure behaviour into the trace's
// success-rate channel. The chaos variants instead keep the trace nearly
// failure-free and push the failures into an explicit l3::chaos::FaultPlan
// (crashes, partitions, brownouts, scrape outages, controller pauses) armed
// through RunnerConfig::faults — so failures are first-class simulator
// events the mesh actually experiences, not sampled server outcomes.

/// failure-1's latency profile (scenario-1) with only light background
/// noise in the success channel; pair with failure1_faults().
ScenarioTrace make_failure1_chaos(std::uint64_t seed = 6);

/// failure-2's latency profile (scenario-2), near-perfect success channel
/// with cluster-3 the slightly-best backend; pair with failure2_faults().
ScenarioTrace make_failure2_chaos(std::uint64_t seed = 7);

/// The heavy fault timeline behind figure 11/12's failure-1: repeated
/// whole-cluster crashes plus WAN brownouts/partition, a scrape outage and
/// a controller pause. Times relative to measurement start; spans 600 s.
chaos::FaultPlan failure1_faults();

/// The lighter failure-2 timeline: short partial crashes and brief WAN /
/// control-plane disturbances.
chaos::FaultPlan failure2_faults();

}  // namespace l3::workload
