// Algorithm 1 of the paper — the L3 weight assigner.
//
// Per backend b (symbols per Table 1):
//   L_s   := EWMA of the backend's P99 latency of successful requests
//   R_s   := EWMA of the backend's success rate
//   R_rps := EWMA of the backend's requests per second
//   R_i   := EWMA(in-flight) / R_rps      (normalised in-flight; 0 if no RPS)
//   L_est := L_s                          if R_s = 0      (guard, line 11)
//          | L_s + P · (1/R_s − 1)        otherwise       (Eq. 3, Spotify ELS)
//   w_b   := S / ((R_i + 1)² · L_est)                      (Eq. 4, scaled)
//   w_b   := max(w_b, 1)                                   (floor, line 17)
//
// P is the constant penalty factor — the client-perceived round-trip cost of
// one failed request (§5.2.1 selects P = 0.6 s). S is a pure display scale
// (weights are relative; S = 100 puts a healthy 100 ms backend near 1000,
// the magnitude used in Fig. 4).
#pragma once

#include "l3/lb/signals.h"

#include <cstdint>
#include <span>
#include <vector>

namespace l3::lb {

/// Tunables of Algorithm 1.
struct WeightingConfig {
  /// P — latency penalty for failed requests, in seconds (§5.2.1: 0.6 s).
  double penalty = 0.6;
  /// S — scale of the reciprocal weight function (relative weights only).
  double scale = 100.0;
  /// Lower bound applied per backend (Algorithm 1 line 17).
  double min_weight = 1.0;
  /// Exponent on (R_i + 1); the paper squares (§3.1) — exposed for the
  /// ablation study.
  double inflight_exponent = 2.0;
  /// Guard for backends with no latency signal yet (L_s == 0).
  double min_latency = 0.001;
};

/// Estimated latency L_est (Eq. 3): the success latency inflated by the
/// expected number of retries 1/R_s, each costing the penalty P.
double estimated_latency(double latency_success, double success_rate,
                         double penalty);

/// Runs Algorithm 1 over all backends, producing unrounded weights.
std::vector<double> assign_weights(std::span<const BackendSignals> signals,
                                   const WeightingConfig& config = {});

/// Converts real-valued weights to the non-negative integers a TrafficSplit
/// carries, enforcing (a) w >= 1 and (b) the metric-collection floor of
/// §3.1: every backend keeps at least `min_share` of the total weight so it
/// keeps receiving enough traffic for its metrics to stay observable.
std::vector<std::uint64_t> finalize_weights(std::span<const double> weights,
                                            double min_share = 0.002);

/// Saturation diagnostic: max(w) / mean(w) over a weight (or traffic-share)
/// vector; 1.0 = perfectly uniform, larger = more concentrated. When a
/// shared upstream stage dominates latency — e.g. the proxy tier's CPU
/// stage saturating (DESIGN.md §16) — every backend's L_est converges to
/// the common queueing delay, Algorithm 1's ratios compress, and the skew
/// trends toward 1. Returns 1.0 for empty or all-zero input.
double weight_skew(std::span<const double> weights);

}  // namespace l3::lb
