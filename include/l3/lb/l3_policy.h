// The L3 policy: Algorithm 1 (weight assigner) composed with Algorithm 2
// (rate controller) and the weight-finalisation floors of §3.1.
#pragma once

#include "l3/lb/policy.h"
#include "l3/lb/weighting.h"

namespace l3::lb {

/// Configuration of the complete L3 policy.
struct L3PolicyConfig {
  WeightingConfig weighting;
  /// Disables Algorithm 2 (ablation: weight assigner only).
  bool rate_control_enabled = true;
  /// Metric-collection floor: minimum share of total weight per backend
  /// (§3.1). Kept below the P99 tail mass so probe traffic to a degraded
  /// backend shows up in P99.x metrics but not in the headline P99.
  double min_share = 0.002;
};

/// Latency-aware multi-cluster load balancing per the paper's §3.
class L3Policy final : public LoadBalancingPolicy {
 public:
  explicit L3Policy(L3PolicyConfig config = {}) : config_(config) {}

  std::vector<std::uint64_t> compute(const PolicyInput& input) override;

  /// Exposes Algorithm 1's raw weights and Algorithm 2's rate-controlled
  /// weights (identical when rate control is disabled) for the journal.
  std::vector<std::uint64_t> compute_explained(const PolicyInput& input,
                                               PolicyExplain& explain) override;

  std::string_view name() const override { return "L3"; }

  const L3PolicyConfig& config() const { return config_; }
  L3PolicyConfig& config() { return config_; }

 private:
  L3PolicyConfig config_;
};

}  // namespace l3::lb
