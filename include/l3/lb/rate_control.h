// Algorithm 2 of the paper — the L3 rate controller.
//
// Reacts to the relative change c between the EWMA of total RPS and the
// latest total-RPS sample:
//   c > 0 (traffic rising): every weight is pulled toward the average
//       weight w_µ (Eq. 5), flattening the distribution so no single fast
//       backend gets overwhelmed before autoscaling catches up:
//         w(c) = w_µ − w_µ/(1+c²)^{3/2} + w_b/(1+c²)^{3/2}
//   c < 0 (traffic falling): capacity freed up, so traffic is shifted
//       opportunistically toward the faster (above-average) backends:
//         w_b ≤ w_µ:  w_b / (1+2c²)^{3/2}          (below-average shrink)
//         w_b > w_µ:  2w_b − w_µ − (w_b−w_µ)/(1+3c²)^{3/2}   (grow)
//   c = 0: weights pass through unchanged.
// A final floor keeps every weight ≥ 1 for metric collection.
#pragma once

#include <span>
#include <vector>

namespace l3::lb {

/// Relative change from the EWMA to the latest sample:
/// (last − ewma) / ewma, or 0 when the EWMA is not yet meaningful.
double relative_change(double rps_ewma, double rps_last);

/// Applies Algorithm 2 to one weight, given the average weight and the
/// relative change. Exposed for the Fig. 4 curve bench and direct tests.
double rate_control_weight(double w_b, double w_mu, double c);

/// Applies Algorithm 2 to a full weight set.
/// @param weights    weights from the weight assigner (Algorithm 1)
/// @param rps_ewma   EWMA of total RPS across all backends
/// @param rps_last   latest raw total-RPS sample
std::vector<double> rate_control(std::span<const double> weights,
                                 double rps_ewma, double rps_last);

}  // namespace l3::lb
