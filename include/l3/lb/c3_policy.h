// C3 [Suresh et al., NSDI'15] adapted to service-mesh TrafficSplits exactly
// the way the paper's §5.1 describes its comparison implementation:
//
//  * decisions are made on aggregated per-backend metrics (not per request),
//  * the replica-ranking function is kept: with response time R̄, service
//    rate µ̄ and queue estimate q̂ the score is Ψ = (R̄ − 1/µ̄) + q̂^b/µ̄ with
//    the cubic exponent b = 3. Using the filtered latency L as both R̄ and
//    1/µ̄ (the aggregated metrics cannot separate them) this reduces to
//    Ψ = q̂³ · L with q̂ = 1 + in-flight (RAW in-flight, unlike L3's
//    normalised R_i — C3 ranks by absolute queue depth),
//  * NO success-rate optimisation (C3 targets data stores; §5.3.2 relies on
//    this difference), and
//  * NO congestion-inspired backpressure/backlog queue (dropped by the
//    paper because service meshes lack server capacity self-awareness).
//
// Weights are the reciprocal of the score, floored for metric collection.
#pragma once

#include "l3/lb/policy.h"

namespace l3::lb {

/// Configuration of the adapted C3 policy.
struct C3PolicyConfig {
  /// b — the queue-size exponent of the ranking function (C3 paper: 3).
  double queue_exponent = 3.0;
  /// Scale of the reciprocal weight (relative weights only).
  double scale = 100.0;
  /// Guard for backends with no latency signal yet.
  double min_latency = 0.001;
  /// Minimum share of total weight per backend. The metric-collection floor
  /// is an L3 design contribution (§3.1); C3 as adapted by the paper only
  /// has the SMI integer floor (w >= 1), so the default is 0 — a starved
  /// backend's metrics go stale and C3 reacts late when its favourite
  /// degrades. Raise it to study a floored C3.
  double min_share = 0.0;
};

/// Cubic replica-ranking load balancing, success-rate-agnostic.
class C3Policy final : public LoadBalancingPolicy {
 public:
  explicit C3Policy(C3PolicyConfig config = {}) : config_(config) {}

  std::vector<std::uint64_t> compute(const PolicyInput& input) override;

  std::string_view name() const override { return "C3"; }

  const C3PolicyConfig& config() const { return config_; }

 private:
  C3PolicyConfig config_;
};

}  // namespace l3::lb
