// Transfer-cost-aware weighting — the future-work extension §7 of the paper
// sketches: cloud vendors charge for cross-zone/region traffic (§6
// "Optimizing for network transfer cost"), so weights can be discounted by
// the monetary cost of sending a request to a backend. Implemented as a
// decorator over any inner policy.
#pragma once

#include "l3/lb/policy.h"

#include <memory>
#include <vector>

namespace l3::lb {

/// Per-(source, destination) transfer cost matrix, in arbitrary cost units
/// per request (e.g. $ per GB times mean request size).
class TransferCostMatrix {
 public:
  explicit TransferCostMatrix(std::size_t clusters)
      : n_(clusters), costs_(clusters * clusters, 0.0) {}

  void set(mesh::ClusterId from, mesh::ClusterId to, double cost);
  double get(mesh::ClusterId from, mesh::ClusterId to) const;
  std::size_t cluster_count() const { return n_; }

 private:
  std::size_t n_;
  std::vector<double> costs_;
};

/// Configuration of the cost-aware adjustment.
struct CostAwareConfig {
  /// Trade-off coefficient: weight is divided by (1 + lambda · cost).
  /// 0 reduces to the inner policy exactly.
  double lambda = 1.0;
};

/// Discounts an inner policy's weights by transfer cost.
class CostAwareAdjuster final : public LoadBalancingPolicy {
 public:
  CostAwareAdjuster(std::unique_ptr<LoadBalancingPolicy> inner,
                    TransferCostMatrix costs, CostAwareConfig config = {});

  std::vector<std::uint64_t> compute(const PolicyInput& input) override;

  std::string_view name() const override { return "cost-aware"; }

  const LoadBalancingPolicy& inner() const { return *inner_; }

 private:
  std::unique_ptr<LoadBalancingPolicy> inner_;
  TransferCostMatrix costs_;
  CostAwareConfig config_;
};

}  // namespace l3::lb
