// Locality-first load balancing with failover — the strategy Istio's
// locality load balancing, Linkerd's failover extension and GCP Traffic
// Director implement (§6 "Optimizing for availability"): keep all traffic in
// the local cluster and move it elsewhere only when the local backend looks
// unhealthy. Included as an additional baseline beyond the paper's two.
#pragma once

#include "l3/lb/policy.h"

namespace l3::lb {

/// Configuration of the locality-failover baseline.
struct LocalityFailoverConfig {
  /// Success rate below which the local backend is considered failed.
  double failover_success_threshold = 0.8;
  /// Weight given to the preferred backend(s).
  std::uint64_t active_weight = 1000;
  /// Weight given to standby backends (1 keeps their metrics alive).
  std::uint64_t standby_weight = 1;
};

/// All traffic local; spill to remote clusters only on local failure.
class LocalityFailoverPolicy final : public LoadBalancingPolicy {
 public:
  explicit LocalityFailoverPolicy(LocalityFailoverConfig config = {})
      : config_(config) {}

  std::vector<std::uint64_t> compute(const PolicyInput& input) override;

  std::string_view name() const override { return "locality-failover"; }

 private:
  LocalityFailoverConfig config_;
};

}  // namespace l3::lb
