// The load-balancing policy interface plus the trivial baselines. A policy
// is a pure function from the controller's filtered signals to TrafficSplit
// weights, invoked once per control-loop tick (§4: every 5 s).
#pragma once

#include "l3/lb/signals.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace l3::lb {

/// Intermediate weight stages a policy can expose for the controller's
/// decision journal: the raw weights its scoring assigned and the weights
/// after rate control, both before integer finalisation. Policies without
/// internal stages report the final weights for both.
struct PolicyExplain {
  std::vector<double> raw_weights;
  std::vector<double> rate_controlled;
};

/// Computes TrafficSplit weights from filtered backend signals.
class LoadBalancingPolicy {
 public:
  virtual ~LoadBalancingPolicy() = default;

  /// Weights in backend order; all entries >= 1 unless a backend is meant
  /// to receive no traffic at all.
  virtual std::vector<std::uint64_t> compute(const PolicyInput& input) = 0;

  /// As compute(), additionally filling `explain` with the intermediate
  /// weight stages. The default mirrors the final weights into both stages.
  virtual std::vector<std::uint64_t> compute_explained(const PolicyInput& input,
                                                       PolicyExplain& explain) {
    std::vector<std::uint64_t> out = compute(input);
    explain.raw_weights.assign(out.begin(), out.end());
    explain.rate_controlled = explain.raw_weights;
    return out;
  }

  /// Short policy name for reports ("round-robin", "C3", "L3", ...).
  virtual std::string_view name() const = 0;
};

/// Linkerd's default across TrafficSplit backends: equal weights — each
/// backend receives the same share regardless of performance.
class RoundRobinPolicy final : public LoadBalancingPolicy {
 public:
  explicit RoundRobinPolicy(std::uint64_t weight = 1000) : weight_(weight) {}

  std::vector<std::uint64_t> compute(const PolicyInput& input) override {
    return std::vector<std::uint64_t>(input.backends.size(), weight_);
  }

  std::string_view name() const override { return "round-robin"; }

 private:
  std::uint64_t weight_;
};

/// Fixed operator-chosen weights (SMI's plain TrafficSplit usage).
class StaticWeightsPolicy final : public LoadBalancingPolicy {
 public:
  explicit StaticWeightsPolicy(std::vector<std::uint64_t> weights)
      : weights_(std::move(weights)) {}

  std::vector<std::uint64_t> compute(const PolicyInput& input) override {
    // Tolerate topology growth by padding with the last weight.
    std::vector<std::uint64_t> out = weights_;
    while (out.size() < input.backends.size()) {
      out.push_back(out.empty() ? 1 : out.back());
    }
    out.resize(input.backends.size());
    return out;
  }

  std::string_view name() const override { return "static"; }

 private:
  std::vector<std::uint64_t> weights_;
};

}  // namespace l3::lb
