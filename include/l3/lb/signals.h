// Inputs to load-balancing policies: the filtered per-backend signals the
// controller's metric pipeline produces each control-loop tick, plus the
// aggregate traffic signals the rate controller (Algorithm 2) consumes.
#pragma once

#include "l3/mesh/types.h"

#include <span>

namespace l3::lb {

/// Filtered (EWMA / PeakEWMA) signals for one backend, in backend order of
/// the TrafficSplit. Symbols follow Table 1 of the paper.
struct BackendSignals {
  /// L_s — filtered 99th-percentile latency of successful requests (s).
  double latency_p99 = 0.0;
  /// Filtered MEAN latency of successful requests (s) — the signal
  /// mean-based policies (C3's R̄) rank on; L3 ignores it.
  double latency_mean = 0.0;
  /// R_s — filtered success rate in [0, 1].
  double success_rate = 1.0;
  /// R_rps — filtered requests per second towards this backend.
  double rps = 0.0;
  /// Filtered raw in-flight request count (NOT yet normalised; Algorithm 1
  /// divides by R_rps itself to obtain R_i).
  double inflight = 0.0;
};

/// Everything a policy sees when computing weights for one TrafficSplit.
struct PolicyInput {
  /// The cluster whose outbound traffic is being split.
  mesh::ClusterId source = 0;
  /// Backend identities, aligned with `signals`.
  std::span<const mesh::BackendRef> backends;
  /// Filtered per-backend signals, aligned with `backends`.
  std::span<const BackendSignals> signals;
  /// RPS_EWMA — filtered total RPS across all backends (Algorithm 2 input).
  double total_rps_ewma = 0.0;
  /// RPS_last — the latest raw total-RPS sample (Algorithm 2 input).
  double total_rps_last = 0.0;
};

}  // namespace l3::lb
