// Benchmark coordinator for the DeathStarBench hotel-reservation experiment
// (Fig. 9): three clusters, the full application deployed in each, a
// constant-throughput client at the cluster-1 frontend, one L3 controller
// per cluster (production layout, §3), and rotating per-cluster performance
// disturbances supplying the heterogeneity the algorithms compete on.
#pragma once

#include "l3/dsb/hotel_app.h"
#include "l3/dsb/social_app.h"
#include "l3/workload/runner.h"

#include <cstdint>

namespace l3::dsb {

/// Configuration of one hotel-reservation run.
struct DsbRunnerConfig {
  std::uint64_t seed = 42;
  SimDuration warmup = 60.0;
  SimDuration duration = 600.0;  ///< paper: 20 min; default 10 for speed
  double rps = 200.0;            ///< §5.3.1: experiments run at 200 RPS

  // Test environment (same three-region setup as the trace runner).
  SimDuration wan_one_way = 0.005;
  double wan_jitter_frac = 0.10;
  SimDuration wan_flap_amp = 0.001;
  SimDuration local_one_way = 0.0005;
  SimDuration scrape_interval = 5.0;
  SimDuration propagation_delay = 0.0;
  /// Bind an obs::Recorder for the run (see workload::RunnerConfig::profile).
  bool profile = false;
  /// Hot-path batching knob (see workload::RunnerConfig::dispatch_batch);
  /// 1 = per-event dispatch, results byte-identical for every value.
  std::size_t dispatch_batch = 64;
  /// Simulator shards (see workload::RunnerConfig::shards): the DSB
  /// topology is RNG-coupled, so all clusters stay on shard 0 and results
  /// are byte-identical for every value.
  std::size_t shards = 1;

  HotelAppConfig app;
  PerformanceDisturber::Config disturbance;

  core::ControllerConfig controller;
  lb::L3PolicyConfig l3;
  lb::C3PolicyConfig c3;
};

/// Runs the hotel-reservation application under one policy.
workload::RunResult run_hotel_reservation(workload::PolicyKind kind,
                                          const DsbRunnerConfig& config = {});

/// Repeats with derived seeds (the paper alternates 3 repetitions).
std::vector<workload::RunResult> run_hotel_reservation_repeated(
    workload::PolicyKind kind, const DsbRunnerConfig& config,
    int repetitions);

/// Runs the social-network application under one policy — the extension
/// workload; `config.app` is ignored, `social` configures the application.
workload::RunResult run_social_network(workload::PolicyKind kind,
                                       const DsbRunnerConfig& config = {},
                                       const SocialAppConfig& social = {});

}  // namespace l3::dsb
