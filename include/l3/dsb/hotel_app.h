// The DeathStarBench hotel-reservation application (§5.1), modelled as a
// call graph of service behaviors over the mesh substrate:
//
//   client → frontend ─┬─ search ──┬─ geo ── mongodb-geo
//                      │           └─ rate ──┬─ memcached-rate
//                      │                     └─ mongodb-rate      (on miss)
//                      ├─ profile ──┬─ memcached-profile
//                      │            └─ mongodb-profile            (on miss)
//                      ├─ recommendation ── mongodb-recommendation
//                      ├─ user ── mongodb-user
//                      └─ reservation ──┬─ memcached-reserve
//                                       └─ mongodb-reservation
//
// The frontend executes one of four operations per request (the wrk2 mixed
// workload): search (search + profile), recommend (recommendation +
// profile), login (user) and reserve (user + reservation). The whole
// application is deployed in every cluster; all inter-service hops are
// routed through TrafficSplits, so they are subject to multi-cluster load
// balancing — the paper's measurement target.
#pragma once

#include "l3/common/rng.h"
#include "l3/dsb/behaviors.h"
#include "l3/dsb/disturbance.h"
#include "l3/mesh/mesh.h"

#include <string>
#include <vector>

namespace l3::dsb {

/// Configuration of the hotel-reservation deployment.
struct HotelAppConfig {
  // Operation mix (fractions; normalised internally) — the DSB wrk2
  // mixed workload is dominated by searches.
  double search_ratio = 0.60;
  double recommend_ratio = 0.29;
  double login_ratio = 0.05;
  double reserve_ratio = 0.06;

  /// Probability a cache lookup misses and falls through to the database.
  double cache_miss_rate = 0.30;

  /// Per-request success probability of every service (Fig. 9 runs at
  /// 100 % success).
  double success_rate = 1.0;

  // Deployment shape per service per cluster.
  std::size_t replicas = 3;
  std::size_t concurrency = 64;
  std::size_t queue_capacity = 512;

  // Execution profiles.
  ServiceProfile frontend{0.0010, 0.005, 1.0};
  ServiceProfile search{0.0015, 0.008, 1.0};
  ServiceProfile geo{0.0020, 0.010, 1.0};
  ServiceProfile rate{0.0015, 0.008, 1.0};
  ServiceProfile profile{0.0015, 0.008, 1.0};
  ServiceProfile recommendation{0.0020, 0.010, 1.0};
  ServiceProfile user{0.0010, 0.005, 1.0};
  ServiceProfile reservation{0.0020, 0.010, 1.0};
  ServiceProfile memcached{0.0005, 0.002, 1.0};
  ServiceProfile mongodb{0.0030, 0.018, 1.5};
};

/// Builder/owner of the hotel-reservation deployment across clusters.
class HotelReservationApp {
 public:
  static constexpr const char* kFrontend = "frontend";

  /// @param clusters  the clusters to deploy into (all of them, per §5.1).
  HotelReservationApp(mesh::Mesh& mesh, std::vector<mesh::ClusterId> clusters,
                      HotelAppConfig config, SplitRng rng);

  /// Deploys every service of the call graph into every cluster.
  void deploy();

  /// Pre-creates the proxy/TrafficSplit for every (cluster, callee) edge of
  /// the call graph, so controllers created afterwards can manage_all().
  void warm_routes();

  /// All service names of the application, callees first.
  static const std::vector<std::string>& service_names();

  /// The call-graph edges as (callee service) names — every cluster needs a
  /// split for each.
  static const std::vector<std::string>& callee_names();

  ClusterLoadModel& load_model() { return load_model_; }
  const HotelAppConfig& config() const { return config_; }
  const std::vector<mesh::ClusterId>& clusters() const { return clusters_; }

 private:
  mesh::Mesh& mesh_;
  std::vector<mesh::ClusterId> clusters_;
  HotelAppConfig config_;
  SplitRng rng_;
  ClusterLoadModel load_model_;
  bool deployed_ = false;
};

}  // namespace l3::dsb
