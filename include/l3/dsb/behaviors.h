// Generic microservice behaviors for application call graphs.
//
// Every DeathStarBench-style service does the same three things: burn some
// execution time (two-component mixture: fast path around the median, slow
// path around the P99, scaled by the cluster's current load factors), call
// downstream dependencies, and report success. These classes capture that
// shape declaratively:
//
//  * StagedBehavior — compute, then a sequence of STAGES; within a stage,
//    calls run in parallel; across stages, sequentially. Each call is
//    either mesh-routed (stateless services, subject to the TrafficSplit
//    under test) or cluster-local (stateful tiers), and can be gated by a
//    probability (cache-miss fall-through).
//  * MixBehavior — a frontend: picks one operation per request from a
//    weighted mix, each operation being its own stage list.
//
// Both hotel-reservation and social-network are built from these.
#pragma once

#include "l3/common/time.h"
#include "l3/dsb/disturbance.h"
#include "l3/mesh/deployment.h"

#include <memory>
#include <string>
#include <vector>

namespace l3::dsb {

/// Execution-time parameters of one service (seconds; mixture model).
struct ServiceProfile {
  double median = 0.0015;
  double p99 = 0.008;
  /// Exponent on the cluster slowdown factors; databases are hit harder
  /// (>1) per §1's slow-database observation.
  double load_sensitivity = 1.0;
};

/// One downstream call within a stage.
struct Call {
  std::string service;
  /// Cluster-local (stateful tier) instead of mesh-routed.
  bool local = false;
  /// Probability the call happens at all (1.0 = always; <1 models
  /// cache-miss fall-through or optional paths).
  double probability = 1.0;
};

/// Calls within a stage run in parallel; stages run sequentially.
using Stage = std::vector<Call>;

/// A weighted operation of a frontend service.
struct Operation {
  double weight = 1.0;
  std::vector<Stage> stages;
};

/// Shared compute/success mechanics (see file comment).
class DsbBehavior : public mesh::ServiceBehavior {
 public:
  /// Fraction of requests taking the slow path.
  static constexpr double kTailWeight = 0.02;
  /// Log-sigma of each mixture component.
  static constexpr double kComponentSigma = 0.30;

 protected:
  DsbBehavior(const ServiceProfile& profile, const ClusterLoadModel& load,
              double success_rate);

  /// One execution-time draw under the cluster's current load factors.
  SimDuration sample_exec(const mesh::BehaviorContext& ctx) const;

  bool sample_success(const mesh::BehaviorContext& ctx) const;

  /// Runs the stage list (parallel within, sequential across), then
  /// `done(Outcome{all_calls_succeeded})`.
  static void run_stages(const mesh::BehaviorContext& ctx,
                         std::shared_ptr<const std::vector<Stage>> stages,
                         std::size_t index, bool ok_so_far,
                         mesh::OutcomeFn done);

 private:
  const ClusterLoadModel& load_;
  double median_;
  double tail_level_;
  double sensitivity_;
  double success_rate_;
};

/// Compute, then a fixed stage list (most services).
class StagedBehavior final : public DsbBehavior {
 public:
  StagedBehavior(const ServiceProfile& profile, const ClusterLoadModel& load,
                 double success_rate, std::vector<Stage> stages);

  void invoke(const mesh::BehaviorContext& ctx, mesh::OutcomeFn done) override;

 private:
  std::shared_ptr<const std::vector<Stage>> stages_;
};

/// Compute, then one operation drawn from a weighted mix (frontends).
class MixBehavior final : public DsbBehavior {
 public:
  MixBehavior(const ServiceProfile& profile, const ClusterLoadModel& load,
              double success_rate, std::vector<Operation> operations);

  void invoke(const mesh::BehaviorContext& ctx, mesh::OutcomeFn done) override;

 private:
  std::vector<double> cumulative_;  // normalised cumulative weights
  std::vector<std::shared_ptr<const std::vector<Stage>>> stages_;
};

}  // namespace l3::dsb
