// Per-cluster performance disturbance. Real clusters are heterogeneous and
// noisy — CPU throttling, noisy neighbours, slow databases (§1: "the latency
// penalty from a slow database can often be an order of magnitude higher
// than the network delay"). The ClusterLoadModel holds time-varying slowdown
// factors per cluster that service behaviors multiply into their execution
// times; the PerformanceDisturber rotates degradation across clusters so the
// load balancers have real performance differences to react to, as the
// paper's EC2 environment did naturally.
//
// Degradation is split into a median factor and a tail factor: real
// contention (GC pauses, lock convoys, slow queries) inflates the tail far
// more than the median, which is exactly the regime that separates
// tail-aware load balancing (L3) from mean-based ranking (C3).
#pragma once

#include "l3/common/assert.h"
#include "l3/common/rng.h"
#include "l3/common/time.h"
#include "l3/mesh/types.h"
#include "l3/sim/simulator.h"

#include <vector>

namespace l3::dsb {

/// Current slowdown factors per cluster (1.0 = nominal).
class ClusterLoadModel {
 public:
  struct Factors {
    double median = 1.0;  ///< multiplier on fast-path execution time
    double tail = 1.0;    ///< multiplier on slow-path (tail) execution time
  };

  explicit ClusterLoadModel(std::size_t clusters) : factors_(clusters) {}

  const Factors& factors(mesh::ClusterId cluster) const {
    L3_EXPECTS(cluster < factors_.size());
    return factors_[cluster];
  }

  void set_factors(mesh::ClusterId cluster, Factors f) {
    L3_EXPECTS(cluster < factors_.size());
    L3_EXPECTS(f.median >= 1.0 && f.tail >= 1.0);
    factors_[cluster] = f;
  }

  std::size_t cluster_count() const { return factors_.size(); }

 private:
  std::vector<Factors> factors_;
};

/// Rotating degradation: every `period`, the next cluster in turn runs
/// degraded for `duration` (tail-heavy, median mildly affected).
class PerformanceDisturber {
 public:
  struct Config {
    SimDuration period = 90.0;    ///< time between disturbance starts
    SimDuration duration = 40.0;  ///< how long a disturbance lasts
    double med_mult_lo = 1.1;     ///< median slowdown range
    double med_mult_hi = 1.5;
    double tail_mult_lo = 3.0;    ///< tail slowdown range
    double tail_mult_hi = 8.0;
    double skip_prob = 0.2;       ///< chance a window stays calm
  };

  PerformanceDisturber(sim::Simulator& sim, ClusterLoadModel& model,
                       Config config, SplitRng rng);
  ~PerformanceDisturber() { stop(); }
  PerformanceDisturber(const PerformanceDisturber&) = delete;
  PerformanceDisturber& operator=(const PerformanceDisturber&) = delete;

  void start();
  void stop() { task_.cancel(); }

  std::uint64_t disturbances_started() const { return started_; }

 private:
  void window();

  sim::Simulator& sim_;
  ClusterLoadModel& model_;
  Config config_;
  SplitRng rng_;
  sim::PeriodicHandle task_;
  std::size_t next_cluster_ = 0;
  std::uint64_t started_ = 0;
};

}  // namespace l3::dsb
