// The DeathStarBench social-network application — a second, larger call
// graph on the same substrate (the suite's other flagship; the paper
// evaluates hotel-reservation, this one is provided as an extension to
// exercise the mesh at higher fan-out):
//
//   client → frontend ─┬─ home-timeline ──┬─ redis-home-timeline (local)
//                      │    (read 60 %)   ├─ post-storage  ──┬─ memcached-post (local)
//                      │                  └─ social-graph    └─ mongodb-post  (miss)
//                      │                        └─ mongodb-social-graph (local)
//                      ├─ user-timeline ──┬─ redis-user-timeline (local)
//                      │    (read 25 %)   ├─ mongodb-user-timeline (miss)
//                      │                  └─ post-storage
//                      └─ compose-post (15 %)
//                           stage 1 ∥: text ──┬─ url-shorten
//                                             └─ user-mention
//                                    unique-id, media, user
//                           stage 2 ∥: post-storage, user-timeline,
//                                      home-timeline
//
// Stateless services are mesh-routed (TrafficSplit targets); redis/mongo/
// memcached tiers are cluster-local.
#pragma once

#include "l3/common/rng.h"
#include "l3/dsb/behaviors.h"
#include "l3/dsb/disturbance.h"
#include "l3/mesh/mesh.h"

#include <string>
#include <vector>

namespace l3::dsb {

/// Configuration of the social-network deployment.
struct SocialAppConfig {
  // Operation mix.
  double read_home_ratio = 0.60;
  double read_user_ratio = 0.25;
  double compose_ratio = 0.15;

  /// Cache/redis miss probability (fall-through to mongodb).
  double cache_miss_rate = 0.25;

  /// Per-request success probability of every service.
  double success_rate = 1.0;

  // Deployment shape per service per cluster.
  std::size_t replicas = 3;
  std::size_t concurrency = 64;
  std::size_t queue_capacity = 512;

  // Execution profiles.
  ServiceProfile frontend{0.0010, 0.005, 1.0};
  ServiceProfile midtier{0.0015, 0.008, 1.0};   ///< timelines, post-storage…
  ServiceProfile textsvc{0.0020, 0.010, 1.0};   ///< text processing
  ServiceProfile leaf{0.0008, 0.004, 1.0};      ///< url-shorten, media, …
  ServiceProfile redis{0.0004, 0.002, 1.0};
  ServiceProfile memcached{0.0005, 0.002, 1.0};
  ServiceProfile mongodb{0.0030, 0.018, 1.5};
};

/// Builder/owner of the social-network deployment across clusters.
class SocialNetworkApp {
 public:
  static constexpr const char* kFrontend = "frontend";

  SocialNetworkApp(mesh::Mesh& mesh, std::vector<mesh::ClusterId> clusters,
                   SocialAppConfig config, SplitRng rng);

  /// Deploys every service into every cluster.
  void deploy();

  /// Pre-creates the proxy/TrafficSplit for every (cluster, callee) edge.
  void warm_routes();

  static const std::vector<std::string>& service_names();
  static const std::vector<std::string>& callee_names();

  ClusterLoadModel& load_model() { return load_model_; }
  const SocialAppConfig& config() const { return config_; }

 private:
  mesh::Mesh& mesh_;
  std::vector<mesh::ClusterId> clusters_;
  SocialAppConfig config_;
  SplitRng rng_;
  ClusterLoadModel load_model_;
  bool deployed_ = false;
};

}  // namespace l3::dsb
