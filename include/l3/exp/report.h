// The unified machine-readable report every bench binary writes with
// --json PATH: the experiment grids with their per-cell results, plus the
// printed tables (the figure reproduction) in structured form. Everything
// serialized is a deterministic function of the experiment specs and seeds
// — no timestamps, no wall-clock, no thread counts — so a report is
// byte-identical for every --jobs value.
#pragma once

#include "l3/common/table.h"
#include "l3/exp/runner.h"
#include "l3/exp/spec.h"
#include "l3/obs/recorder.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace l3::exp {

/// Accumulates the grids and tables of one bench invocation.
class Report {
 public:
  explicit Report(std::string experiment) : experiment_(std::move(experiment)) {}

  /// Records a completed grid (axis labels, seeds, per-cell summaries).
  void add_grid(const ExperimentSpec& spec,
                const std::vector<CellResult>& results);

  /// Records one printed table under an optional section title.
  void add_table(std::string title, const Table& table);

  /// Serializes the report as JSON.
  void write(std::ostream& os) const;

  /// Writes to `path`; returns false (with no partial file guarantee) on
  /// I/O failure.
  bool write_file(const std::string& path) const;

  /// ProfileBlocks of every recorded cell merged in grid order (element-wise
  /// sums — identical for any cell execution order). Empty when no cell was
  /// run with profiling enabled.
  obs::ProfileBlock merged_profile() const;

 private:
  struct Grid {
    ExperimentSpec spec;  ///< cell function cleared; labels/seed kept
    std::vector<CellResult> results;
  };
  struct TableSection {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string experiment_;
  std::vector<Grid> grids_;
  std::vector<TableSection> tables_;
};

}  // namespace l3::exp
