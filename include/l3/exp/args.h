// The shared command-line surface of every bench binary:
//
//   [--reps N] [--fast] [--jobs N] [--json PATH] [--profile]
//   [--batch=N] [--no-batch] [--shards=N] [--proxy-cost=US]
//
// Parsing is strict: numeric flags reject non-numeric, negative, trailing-
// garbage and overflowing values instead of silently mapping them to 0 the
// way raw atoi did.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace l3::exp {

/// Parsed bench options.
struct BenchArgs {
  int reps = -1;     ///< -1: use the bench's default
  bool fast = false; ///< shrink durations/repetitions for smoke runs
  int jobs = 0;      ///< parallel cells; 0 = hardware concurrency
  std::string json;  ///< write the unified JSON report here; empty = off
  /// Bind a flight recorder / self-profiler to every cell: the Report JSON
  /// gains a deterministic `profile` block and a wall-time table goes to
  /// stderr. Simulation results are unchanged.
  bool profile = false;
  /// Hot-path batching: events per dispatch batch and arrivals per
  /// pre-generated client block (RunnerConfig::dispatch_batch). 1 (set by
  /// --no-batch) runs the per-event path; results are byte-identical for
  /// every value.
  int batch = 64;
  /// Simulator shards for the conservative-lookahead parallel engine
  /// (RunnerConfig::shards). Results are byte-identical for every value,
  /// including 1 (the legacy single-simulator loop).
  int shards = 1;
  /// Per-request sidecar CPU cost in microseconds for the data-plane cost
  /// model (RunnerConfig::proxy_cost.cpu_per_request; DESIGN.md §16). 0
  /// (default) disables the model and reproduces the cost-free run
  /// byte-for-byte.
  int proxy_cost_us = 0;
};

/// Strict base-10 integer parse of the whole string; nullopt on empty
/// input, any non-digit (including sign), or overflow.
std::optional<long long> parse_uint(std::string_view text);

/// Parses the shared flags. On success returns the args; on any error
/// returns nullopt and sets `error` to a one-line description.
std::optional<BenchArgs> try_parse_bench_args(int argc, char** argv,
                                              std::string* error);

/// The usage string printed on parse errors.
std::string bench_usage(std::string_view argv0);

/// try_parse_bench_args, but prints usage to stderr and exits 2 on error.
BenchArgs parse_bench_args(int argc, char** argv);

}  // namespace l3::exp
