// Declarative experiment grids. An ExperimentSpec names the axes of a
// sweep — scenarios × policies × config-variants × repetitions — and a cell
// function that runs one coordinate. Every figure/ablation bench is one (or
// two) such grids.
//
// Determinism contract: the seed of a cell is derived from the experiment
// seed and the cell's grid coordinates alone (via SplitRng), never from
// execution order — so results are identical no matter how many worker
// threads run the grid, and adding an axis value never perturbs the seeds
// of existing coordinates' tags.
#pragma once

#include "l3/workload/runner.h"
#include "l3/workload/scenario.h"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace l3::exp {

/// Grid coordinates of one simulation cell.
struct Cell {
  std::size_t scenario = 0;
  std::size_t policy = 0;
  std::size_t variant = 0;
  int rep = 0;
};

/// What one cell run produces: the standard run summary plus optional
/// bench-specific named metrics (for cells that measure something the
/// RunResult shape doesn't cover, e.g. surge-window percentiles).
struct CellData {
  workload::RunResult run;
  std::vector<std::pair<std::string, double>> metrics;

  CellData() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): cells usually just return
  // the RunResult of run_scenario and friends.
  CellData(workload::RunResult r) : run(std::move(r)) {}
};

/// Runs one cell. Must be thread-safe: it is called concurrently from
/// worker threads, so it must only read shared state and derive all
/// randomness from `seed` (build the Simulator, mesh, registry and tracer
/// inside — never share them between cells).
using CellFn = std::function<CellData(const Cell&, std::uint64_t seed)>;

/// A labelled RunnerConfig mutation (one value of the variant axis).
struct ConfigVariant {
  std::string label;
  std::function<void(workload::RunnerConfig&)> apply;  ///< may be null
};

/// One experiment: axis labels, repetition count, root seed, cell function.
struct ExperimentSpec {
  std::string name;
  std::vector<std::string> scenarios = {""};
  std::vector<std::string> policies = {""};
  std::vector<std::string> variants = {""};
  int repetitions = 1;
  std::uint64_t seed = 42;
  CellFn cell;

  /// Total number of cells in the grid.
  std::size_t cell_count() const {
    return scenarios.size() * policies.size() * variants.size() *
           static_cast<std::size_t>(repetitions);
  }

  /// Flat index of a coordinate. Grid order: scenario-major, then policy,
  /// then variant, with repetitions innermost (so all reps of a coordinate
  /// are contiguous).
  std::size_t index_of(const Cell& cell) const {
    return ((cell.scenario * policies.size() + cell.policy) * variants.size() +
            cell.variant) *
               static_cast<std::size_t>(repetitions) +
           static_cast<std::size_t>(cell.rep);
  }

  /// Inverse of index_of.
  Cell cell_at(std::size_t index) const;
};

/// Derives the seed of a cell from the experiment seed and the cell's grid
/// coordinates (stable under any execution order or thread count).
std::uint64_t cell_seed(std::uint64_t experiment_seed, const Cell& cell);

/// A per-scenario RunnerConfig mutation applied after the variant's —
/// e.g. attaching each scenario's chaos FaultPlan so the plan is part of
/// the cell's configuration (and thus identical for every policy/variant/
/// rep of that scenario).
using PerScenarioFn =
    std::function<void(std::size_t scenario_index, workload::RunnerConfig&)>;

/// Builds the standard trace-scenario grid: run_scenario() over
/// scenarios × policies × variants × reps with per-cell derived seeds.
/// `variants` may be empty (a single unlabelled identity variant is used).
ExperimentSpec scenario_grid(std::string name,
                             std::vector<workload::ScenarioTrace> scenarios,
                             std::vector<workload::PolicyKind> policies,
                             workload::RunnerConfig base, int repetitions,
                             std::vector<ConfigVariant> variants = {},
                             PerScenarioFn per_scenario = nullptr);

}  // namespace l3::exp
