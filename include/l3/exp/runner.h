// Shared-nothing parallel execution of an ExperimentSpec. Each cell builds
// its own Simulator / mesh / registry / tracer inside the cell function;
// the runner only distributes cell indices over a work-stealing thread pool
// and writes results into their grid-order slots — so the collected vector
// (and anything serialized from it) is byte-identical for every `jobs`
// value, including 1.
#pragma once

#include "l3/exp/spec.h"

#include <cstdint>
#include <span>
#include <vector>

namespace l3::exp {

/// One completed cell: coordinates, the seed it ran with, and its data.
struct CellResult {
  Cell cell;
  std::uint64_t seed = 0;
  CellData data;
};

struct RunnerOptions {
  /// Worker threads; <= 0 means hardware concurrency.
  int jobs = 0;
};

/// Resolves a --jobs value: <= 0 becomes hardware concurrency (at least 1).
int effective_jobs(int jobs);

/// Runs every cell of the grid and returns results in grid order
/// (spec.index_of). Cells run concurrently on `opts.jobs` workers; with
/// jobs = 1 everything runs inline on the calling thread. An exception
/// thrown by a cell is rethrown here after the pool drains.
std::vector<CellResult> run_experiment(const ExperimentSpec& spec,
                                       const RunnerOptions& opts = {});

/// Grid-shaped view over run_experiment() results: the repetitions of one
/// (scenario, policy, variant) coordinate as a contiguous span.
class ResultGrid {
 public:
  ResultGrid(const ExperimentSpec& spec, std::span<const CellResult> results)
      : spec_(spec), results_(results) {}

  std::span<const CellResult> at(std::size_t scenario, std::size_t policy,
                                 std::size_t variant = 0) const {
    const std::size_t first =
        spec_.index_of(Cell{scenario, policy, variant, 0});
    return results_.subspan(first,
                            static_cast<std::size_t>(spec_.repetitions));
  }

 private:
  const ExperimentSpec& spec_;
  std::span<const CellResult> results_;
};

// Mean-over-repetitions helpers (the aggregations the figure tables print).
double mean_of(std::span<const CellResult> cells,
               double (*accessor)(const workload::RunResult&));
double mean_p50(std::span<const CellResult> cells);
double mean_p90(std::span<const CellResult> cells);
double mean_p99(std::span<const CellResult> cells);
double mean_latency(std::span<const CellResult> cells);
double mean_success_rate(std::span<const CellResult> cells);
double mean_attempts(std::span<const CellResult> cells);
/// Mean traffic share of one backend cluster.
double mean_traffic_share(std::span<const CellResult> cells,
                          std::size_t cluster);
/// Mean of a named cell metric (0.0 when absent).
double mean_metric(std::span<const CellResult> cells, std::string_view name);

}  // namespace l3::exp
