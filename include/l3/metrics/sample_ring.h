// Power-of-two ring buffer for time-ordered metric samples. Replaces
// std::deque in the TSDB hot path: contiguous storage (one cache-friendly
// slab instead of deque's chunk map), O(1) amortized push_back, O(1)
// pop_front, and O(1) random access — which is what lets the window queries
// binary-search instead of scanning.
#pragma once

#include "l3/common/assert.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace l3::metrics {

/// FIFO ring with random access. Samples enter at the back (append) and
/// leave at the front (retention trimming).
template <typename T>
class SampleRing {
 public:
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// i-th oldest element, 0 <= i < size().
  const T& operator[](std::size_t i) const {
    L3_EXPECTS(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    L3_EXPECTS(size_ > 0);
    // Reset the slot so element-owned memory (e.g. histogram bucket
    // vectors) is released now, not when the slot is next overwritten.
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() noexcept {
    slots_.clear();
    head_ = 0;
    size_ = 0;
    mask_ = 0;
  }

  /// Capacity currently reserved (always zero or a power of two).
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? kInitialCapacity
                                           : slots_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace l3::metrics
