// Power-of-two ring buffer for time-ordered metric samples. Replaces
// std::deque in the TSDB hot path: contiguous storage (one cache-friendly
// slab instead of deque's chunk map), O(1) amortized push_back, O(1)
// pop_front, and O(1) random access — which is what lets the window queries
// binary-search instead of scanning.
#pragma once

#include "l3/common/assert.h"

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace l3::metrics {

/// FIFO ring with random access. Samples enter at the back (append) and
/// leave at the front (retention trimming).
///
/// Elements also carry an absolute sequence number: the i-th oldest element
/// is sequence `popped() + i`, and sequences never repeat or shift as the
/// ring trims. Window cursors cache sequences rather than indices so a
/// pop_front (retention trimming, compact) cannot silently re-point them at
/// a different sample.
template <typename T>
class SampleRing {
 public:
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Number of elements ever removed from the front — the absolute sequence
  /// number of the current front element.
  std::uint64_t popped() const noexcept { return popped_; }

  /// i-th oldest element, 0 <= i < size().
  const T& operator[](std::size_t i) const {
    L3_EXPECTS(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    L3_EXPECTS(size_ > 0);
    // Reset the slot so element-owned memory (e.g. histogram bucket
    // vectors) is released now, not when the slot is next overwritten.
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --size_;
    ++popped_;
  }

  void clear() noexcept {
    slots_.clear();
    head_ = 0;
    size_ = 0;
    mask_ = 0;
    popped_ = 0;
  }

  /// Capacity currently reserved (always zero or a power of two).
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? kInitialCapacity
                                           : slots_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t popped_ = 0;
};

/// FIFO ring of fixed-width double rows, stored in ONE contiguous slab
/// (row i occupies width() consecutive doubles). This is the columnar
/// histogram-sample store: where a SampleRing<vector<double>> pays one heap
/// allocation + pointer chase per sample, a RowRing append is a memcpy into
/// the slab and a window query walks contiguous memory.
///
/// The row width is fixed by the first push and every later row must match —
/// the same invariant Prometheus histograms have (immutable bucket layout
/// per series).
class RowRing {
 public:
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t width() const noexcept { return width_; }

  /// Rows ever removed from the front (absolute sequence of the front row).
  std::uint64_t popped() const noexcept { return popped_; }

  /// i-th oldest row, 0 <= i < size().
  std::span<const double> operator[](std::size_t i) const {
    L3_EXPECTS(i < size_);
    return {slots_.data() + ((head_ + i) & mask_) * width_, width_};
  }

  std::span<const double> front() const { return (*this)[0]; }
  std::span<const double> back() const { return (*this)[size_ - 1]; }

  void push_back(std::span<const double> row) {
    L3_EXPECTS(!row.empty());
    if (width_ == 0) width_ = row.size();
    L3_EXPECTS(row.size() == width_);
    if (size_ * width_ == slots_.size()) grow();
    double* dst = slots_.data() + ((head_ + size_) & mask_) * width_;
    for (std::size_t i = 0; i < width_; ++i) dst[i] = row[i];
    ++size_;
  }

  void pop_front() {
    L3_EXPECTS(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
    ++popped_;
  }

  /// Row capacity currently reserved (zero or a power of two).
  std::size_t capacity() const noexcept {
    return width_ == 0 ? 0 : slots_.size() / width_;
  }

 private:
  void grow() {
    const std::size_t rows =
        slots_.empty() ? kInitialRows : slots_.size() / width_ * 2;
    std::vector<double> next(rows * width_);
    for (std::size_t i = 0; i < size_; ++i) {
      const double* src = slots_.data() + ((head_ + i) & mask_) * width_;
      double* dst = next.data() + i * width_;
      for (std::size_t j = 0; j < width_; ++j) dst[j] = src[j];
    }
    slots_ = std::move(next);
    head_ = 0;
    mask_ = rows - 1;
  }

  static constexpr std::size_t kInitialRows = 8;

  std::vector<double> slots_;
  std::size_t width_ = 0;
  std::size_t head_ = 0;  ///< front row index (in rows, not doubles)
  std::size_t size_ = 0;  ///< rows stored
  std::size_t mask_ = 0;  ///< row-capacity - 1
  std::uint64_t popped_ = 0;
};

}  // namespace l3::metrics
