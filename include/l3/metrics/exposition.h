// Prometheus text exposition format for a Registry — what a real scrape
// endpoint would serve, and the paper's observability story (§4: internal
// state "exposed through Prometheus or OpenTelemetry metrics ... enabling
// human operators ... to infer the internal state at any point in time").
#pragma once

#include "l3/metrics/registry.h"

#include <iosfwd>
#include <string>

namespace l3::metrics {

/// Renders every series of `registry` in Prometheus text format (0.0.4):
/// counters and gauges as `name{labels} value`, histograms as cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`, each family preceded
/// by a `# TYPE` comment. A counter named `<hist>_sum` with the same labels
/// as histogram `<hist>` is folded into that histogram's `_sum` line rather
/// than emitted standalone. Series appear in deterministic (sorted-key)
/// order within each section (counters, gauges, histograms).
void write_exposition(const Registry& registry, std::ostream& os);

/// Convenience: exposition as a string.
std::string exposition_text(const Registry& registry);

}  // namespace l3::metrics
