// EWMA and PeakEWMA filters, Equations 1 and 2 of the paper.
//
// Both filters are time-decayed: the blend factor depends on the wall-clock
// gap Δt between samples, E_now = Y·(1 − e^(−Δt/β)) + E_prev·e^(−Δt/β),
// where β is derived from a configured half-life (β = h / ln 2). A fresh
// filter reports the default value λ (§4: 5 s for latency, 100 % for success
// rate, 0 for RPS) so that a new backend is not flooded before a meaningful
// baseline exists.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"

#include <cmath>

namespace l3::metrics {

/// Converts a half-life (seconds) into the decay coefficient β of Eq. 1.
inline double beta_from_half_life(SimDuration half_life) {
  L3_EXPECTS(half_life > 0.0);
  return half_life / std::log(2.0);
}

/// Exponentially weighted moving average with time-aware decay (Eq. 1).
class Ewma {
 public:
  /// @param default_value  λ — the value reported before any sample arrives
  ///                       and the attractor of converge_to_default().
  /// @param half_life      time for an old sample's weight to halve.
  /// @param start_time     timestamp the filter is initialised at; the first
  ///                       sample's Δt is measured from here.
  Ewma(double default_value, SimDuration half_life, SimTime start_time = 0.0)
      : default_(default_value),
        beta_(beta_from_half_life(half_life)),
        value_(default_value),
        last_time_(start_time) {}

  /// Feeds a sample observed at time `t` (monotonically non-decreasing).
  void observe(double sample, SimTime t) {
    L3_EXPECTS(t >= last_time_);
    const double decay = std::exp(-(t - last_time_) / beta_);
    value_ = sample * (1.0 - decay) + value_ * decay;
    last_time_ = t;
    has_samples_ = true;
  }

  /// §4: when no metrics can be retrieved, the filter converges toward its
  /// default value in small increments — the same time-decayed blend as
  /// observe(λ), but WITHOUT marking the filter as having samples: a
  /// backend that only ever converged must still report has_samples() ==
  /// false, as no real metric has arrived.
  void converge_to_default(SimTime t) {
    L3_EXPECTS(t >= last_time_);
    const double decay = std::exp(-(t - last_time_) / beta_);
    value_ = default_ * (1.0 - decay) + value_ * decay;
    last_time_ = t;
  }

  /// Current filtered value (λ until the first sample).
  double value() const { return value_; }

  /// Whether any real sample has been observed.
  bool has_samples() const { return has_samples_; }

  double default_value() const { return default_; }
  SimTime last_update() const { return last_time_; }

  /// Forgets all samples and returns to λ.
  void reset(SimTime t) {
    value_ = default_;
    last_time_ = t;
    has_samples_ = false;
  }

 private:
  double default_;
  double beta_;
  double value_;
  SimTime last_time_;
  bool has_samples_ = false;
};

/// PeakEWMA (Eq. 2, after Finagle): like Ewma, but when a sample exceeds the
/// current value the filter jumps to the sample instantly, then decays
/// cautiously. Reacts fast to latency spikes at the cost of overweighting
/// outliers.
class PeakEwma {
 public:
  PeakEwma(double default_value, SimDuration half_life,
           SimTime start_time = 0.0)
      : default_(default_value),
        beta_(beta_from_half_life(half_life)),
        value_(default_value),
        last_time_(start_time) {}

  void observe(double sample, SimTime t) {
    L3_EXPECTS(t >= last_time_);
    if (sample > value_) {
      value_ = sample;  // Eq. 2 middle case: jump to the peak.
    } else {
      const double decay = std::exp(-(t - last_time_) / beta_);
      value_ = sample * (1.0 - decay) + value_ * decay;
    }
    last_time_ = t;
    has_samples_ = true;
  }

  void converge_to_default(SimTime t) {
    // Peaks must decay during quiet periods too, so the default is blended
    // in without the jump rule. Like Ewma::converge_to_default, this never
    // sets has_samples_ (audited together: converging is not observing).
    L3_EXPECTS(t >= last_time_);
    const double decay = std::exp(-(t - last_time_) / beta_);
    value_ = default_ * (1.0 - decay) + value_ * decay;
    last_time_ = t;
  }

  double value() const { return value_; }
  bool has_samples() const { return has_samples_; }
  double default_value() const { return default_; }
  SimTime last_update() const { return last_time_; }

  void reset(SimTime t) {
    value_ = default_;
    last_time_ = t;
    has_samples_ = false;
  }

 private:
  double default_;
  double beta_;
  double value_;
  SimTime last_time_;
  bool has_samples_ = false;
};

/// Which latency filter the L3 controller uses (§5.2.2 compares both).
enum class FilterKind { kEwma, kPeakEwma };

/// A runtime-selectable latency filter wrapping Ewma or PeakEwma, so the
/// controller can be configured per §5.2.2 without templating its state.
class LatencyFilter {
 public:
  LatencyFilter(FilterKind kind, double default_value, SimDuration half_life,
                SimTime start_time = 0.0)
      : kind_(kind),
        ewma_(default_value, half_life, start_time),
        peak_(default_value, half_life, start_time) {}

  void observe(double sample, SimTime t) {
    if (kind_ == FilterKind::kEwma) {
      ewma_.observe(sample, t);
    } else {
      peak_.observe(sample, t);
    }
  }

  void converge_to_default(SimTime t) {
    if (kind_ == FilterKind::kEwma) {
      ewma_.converge_to_default(t);
    } else {
      peak_.converge_to_default(t);
    }
  }

  double value() const {
    return kind_ == FilterKind::kEwma ? ewma_.value() : peak_.value();
  }

  bool has_samples() const {
    return kind_ == FilterKind::kEwma ? ewma_.has_samples()
                                      : peak_.has_samples();
  }

  FilterKind kind() const { return kind_; }

 private:
  FilterKind kind_;
  Ewma ewma_;
  PeakEwma peak_;
};

}  // namespace l3::metrics
