// Audit-tier export of obs snapshots: publishes the flight recorder's
// merged state into a metrics::Registry as LOW-CARDINALITY Prometheus
// families. This is the human/dashboard tier of the RT-vs-audit split
// (DESIGN.md §12): label values are drawn only from the fixed obs enums
// (`subsystem`, `name`, `domain`) plus the caller-supplied `cluster` and
// `policy` — never per-request, per-trace, or per-backend-instance.
//
// Lives in metrics/ (not obs/) because obs sits below metrics in the module
// layering and must not depend on it.
#pragma once

#include "l3/metrics/registry.h"
#include "l3/obs/recorder.h"

#include <string_view>

namespace l3::metrics {

/// Publishes `snapshot` into `registry` under the `l3_obs_*` families:
///   l3_obs_scope_invocations_total{subsystem,cluster,policy}  counter
///   l3_obs_scope_wall_seconds_total{subsystem,cluster,policy} counter
///   l3_obs_scope_wall_p99_seconds{subsystem,cluster,policy}   gauge
///   l3_obs_rt_counter_total{name,cluster,policy}              counter
///   l3_obs_rt_gauge{name,cluster,policy}                      gauge
///   l3_obs_ring_events_total{domain,cluster,policy}           counter
///   l3_obs_ring_dropped_total{domain,cluster,policy}          counter
/// Publish-once contract: counters are additive, so call this once per
/// snapshot per registry (e.g. at end of run), not per scrape.
/// Scopes/counters/rings with zero activity are skipped to keep the audit
/// surface small.
void publish_audit(const obs::Snapshot& snapshot, Registry& registry,
                   std::string_view cluster, std::string_view policy);

}  // namespace l3::metrics
