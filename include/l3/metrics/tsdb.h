// A miniature Prometheus: timestamped sample storage plus the query
// functions L3 uses — `rate()`/`increase()` over a trailing window, gauge
// averaging, and `histogram_quantile()` over bucket-rate vectors. The L3
// controller reads ONLY from here (never from live registries), reproducing
// the 5 s scrape / 10 s window staleness the paper discusses in §4.
//
// Hot-path design: series names are interned once into SeriesId /
// HistogramId handles (TimeSeriesDb::series / histogram_series); the
// scraper and controller cache those ids, so steady-state appends and
// queries do zero string hashing or comparison. Samples live in
// power-of-two ring buffers (SampleRing); histogram bucket rows live in a
// contiguous columnar slab (RowRing) so an append is a row memcpy, not a
// per-sample vector allocation. The string-keyed API is kept as a thin
// compatibility layer over the interned one.
//
// Window folds are incremental: each series carries a WindowCursor caching
// the [first, end) sample span of the last query as ABSOLUTE sequence
// numbers (SampleRing::popped()-based, so retention trims can't re-point
// it). The controller always asks with the same window and monotonically
// increasing `now`, so steady-state queries advance the cursor a step or
// two instead of re-running two binary searches per query; a different
// window or a backwards `now` falls back to the binary search and reseeds
// the cursor. The fold only locates window boundaries — the arithmetic on
// the samples inside (rate endpoints, avg summation order, quantile bucket
// deltas) is unchanged, which is what keeps every output byte identical.
#pragma once

#include "l3/common/time.h"
#include "l3/metrics/sample_ring.h"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace l3::metrics {

/// Interned handle to one scalar (counter/gauge) series. Cheap to copy;
/// valid for the lifetime of the TimeSeriesDb that issued it.
class SeriesId {
 public:
  SeriesId() = default;
  bool valid() const { return index_ != kInvalid; }
  friend bool operator==(SeriesId a, SeriesId b) {
    return a.index_ == b.index_;
  }

 private:
  friend class TimeSeriesDb;
  explicit SeriesId(std::uint32_t index) : index_(index) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t index_ = kInvalid;
};

/// Interned handle to one histogram series.
class HistogramId {
 public:
  HistogramId() = default;
  bool valid() const { return index_ != kInvalid; }
  friend bool operator==(HistogramId a, HistogramId b) {
    return a.index_ == b.index_;
  }

 private:
  friend class TimeSeriesDb;
  explicit HistogramId(std::uint32_t index) : index_(index) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t index_ = kInvalid;
};

/// Time-series database with per-series retention trimming.
class TimeSeriesDb {
 public:
  /// @param retention  samples older than now − retention are dropped on
  ///                   append (default generous enough for 10 s windows
  ///                   while bounding memory over 20-minute runs).
  explicit TimeSeriesDb(SimDuration retention = 120.0)
      : retention_(retention) {}

  // ---- Series interning -------------------------------------------------

  /// Interns `name` as a scalar series and returns its stable handle.
  /// Idempotent: the same name always yields the same id.
  SeriesId series(std::string_view name);

  /// Interns `name` as a histogram series.
  HistogramId histogram_series(std::string_view name);

  /// Looks up a scalar series without creating it.
  SeriesId find_series(std::string_view name) const;

  /// Looks up a histogram series without creating it.
  HistogramId find_histogram_series(std::string_view name) const;

  // ---- Appends ----------------------------------------------------------

  /// Appends a scalar (counter or gauge) sample.
  void append(SeriesId id, SimTime t, double value);
  void append(const std::string& key, SimTime t, double value) {
    append(series(key), t, value);
  }

  /// Declares the bucket bounds of a histogram series: stored on first
  /// call, verified to match on every later one. Idempotent; the scraper
  /// calls this once per plan rebuild so steady-state appends don't carry
  /// (or compare) the bounds vector at all.
  void set_histogram_bounds(HistogramId id, std::span<const double> bounds);

  /// Bounds previously declared for the series (empty if none yet).
  std::span<const double> histogram_bounds(HistogramId id) const;

  /// Appends a histogram sample: the cumulative bucket counts at time t,
  /// one contiguous row of `histogram_bounds(id).size() + 1` values (the
  /// last being the +Inf total). Bounds must have been declared first.
  void append_histogram(HistogramId id, SimTime t,
                        std::span<const double> cumulative_counts);

  /// Compatibility form carrying bounds on every call (verified against the
  /// stored ones, declaring them on first use).
  void append_histogram(HistogramId id, SimTime t,
                        const std::vector<double>& bounds,
                        const std::vector<double>& cumulative_counts) {
    set_histogram_bounds(id, bounds);
    append_histogram(id, t, std::span<const double>(cumulative_counts));
  }
  void append_histogram(const std::string& key, SimTime t,
                        const std::vector<double>& bounds,
                        const std::vector<double>& cumulative_counts) {
    append_histogram(histogram_series(key), t, bounds, cumulative_counts);
  }

  // ---- Queries ----------------------------------------------------------

  /// Per-second rate of increase of a counter over [now − window, now].
  /// Needs at least two samples in the window (the paper's reason for the
  /// 10 s window at a 5 s scrape interval); std::nullopt otherwise.
  std::optional<double> rate(SeriesId id, SimDuration window,
                             SimTime now) const;
  std::optional<double> rate(const std::string& key, SimDuration window,
                             SimTime now) const {
    return rate(find_series(key), window, now);
  }

  /// Absolute increase of a counter over the window (rate × elapsed).
  std::optional<double> increase(SeriesId id, SimDuration window,
                                 SimTime now) const;
  std::optional<double> increase(const std::string& key, SimDuration window,
                                 SimTime now) const {
    return increase(find_series(key), window, now);
  }

  /// Mean of gauge samples in the window; std::nullopt if none.
  std::optional<double> avg(SeriesId id, SimDuration window,
                            SimTime now) const;
  std::optional<double> avg(const std::string& key, SimDuration window,
                            SimTime now) const {
    return avg(find_series(key), window, now);
  }

  /// Most recent sample value within the window; std::nullopt if none.
  std::optional<double> last(SeriesId id, SimDuration window,
                             SimTime now) const;
  std::optional<double> last(const std::string& key, SimDuration window,
                             SimTime now) const {
    return last(find_series(key), window, now);
  }

  /// Prometheus-style `histogram_quantile(q, rate(buckets[window]))`.
  /// std::nullopt when fewer than two samples exist or no requests were
  /// observed in the window.
  std::optional<double> quantile(HistogramId id, double q, SimDuration window,
                                 SimTime now) const;
  std::optional<double> quantile(const std::string& key, double q,
                                 SimDuration window, SimTime now) const {
    return quantile(find_histogram_series(key), q, window, now);
  }

  // ---- Maintenance / introspection --------------------------------------

  /// Drops every sample older than now − retention. Series only trim
  /// themselves on append, so a series that stops receiving samples
  /// (disabled scrape target, removed backend) would otherwise pin its
  /// stale samples forever; the scraper calls this once per scrape.
  ///
  /// Amortized: a global oldest-sample watermark makes the call O(1) when
  /// nothing can be stale, and the sweep skips already-fresh series with a
  /// single timestamp comparison each.
  void compact(SimTime now);

  /// Number of scalar series holding at least one sample. (Interned ids
  /// stay valid forever; a series whose samples all age out no longer
  /// counts here, matching the old erase-on-empty semantics.)
  std::size_t series_count() const { return nonempty_scalars_; }

  /// Number of histogram series holding at least one sample.
  std::size_t histogram_series_count() const { return nonempty_histograms_; }

  /// Stored sample count of one scalar series (0 when absent).
  std::size_t sample_count(SeriesId id) const;
  std::size_t sample_count(const std::string& key) const {
    return sample_count(find_series(key));
  }

  /// Stored sample count of one histogram series (0 when absent).
  std::size_t histogram_sample_count(HistogramId id) const;
  std::size_t histogram_sample_count(const std::string& key) const {
    return histogram_sample_count(find_histogram_series(key));
  }

  SimDuration retention() const { return retention_; }

  /// Window-fold cursor statistics, for tests and the control_plane bench:
  /// a "hit" is a query answered by advancing a cached cursor, a "rebuild"
  /// is a query that had to fall back to the two binary searches (first
  /// query of a series, window change, or non-monotone `now`).
  std::uint64_t cursor_hits() const { return cursor_hits_; }
  std::uint64_t cursor_rebuilds() const { return cursor_rebuilds_; }

 private:
  struct ScalarSample {
    SimTime t = 0.0;
    double v = 0.0;
  };
  /// Cached window span of the most recent query against one series, in
  /// absolute sample sequences (see SampleRing::popped()). Valid for a new
  /// query iff the window matches and `now` did not go backwards; then the
  /// span only needs advancing forward past newly-expired / newly-appended
  /// samples.
  struct WindowCursor {
    SimDuration window = -1.0;  ///< -1 never matches a real (positive) window
    SimTime last_now = 0.0;
    std::uint64_t first = 0;  ///< seq of first sample with t >= now - window
    std::uint64_t end = 0;    ///< seq one past the last sample with t <= now
  };
  struct ScalarSeries {
    std::string name;
    SampleRing<ScalarSample> samples;
    mutable WindowCursor cursor;
  };
  /// Columnar histogram series: timestamps in one ring, cumulative bucket
  /// rows in a parallel fixed-width slab ring (kept in lockstep).
  struct HistoSeries {
    std::string name;
    std::vector<double> bounds;
    bool bounds_set = false;
    SampleRing<SimTime> times;
    RowRing rows;
    mutable WindowCursor cursor;
  };

  /// Heterogeneous hashing so string_view lookups don't allocate.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using NameIndex =
      std::unordered_map<std::string, std::uint32_t, StringHash,
                         std::equal_to<>>;

  /// Lowers the global oldest-sample watermark for a series whose first
  /// sample just landed at time t.
  void note_new_front(SimTime t) {
    if (t < oldest_sample_) oldest_sample_ = t;
  }

  /// Locates the window [now - window, now] in a time-ordered sequence via
  /// the series' cursor (advance) or binary search (reseed). Returns the
  /// logical [first, last] index pair, or nullopt if fewer than
  /// `min_samples` samples fall inside.
  template <typename GetTime>
  std::optional<std::pair<std::size_t, std::size_t>> fold_window(
      WindowCursor& cursor, std::size_t count, std::uint64_t base,
      GetTime time_at, SimDuration window, SimTime now,
      std::size_t min_samples) const;

  std::vector<ScalarSeries> scalars_;
  std::vector<HistoSeries> histograms_;
  NameIndex scalar_index_;
  NameIndex histogram_index_;
  /// Reused scratch for quantile bucket deltas (sized to the widest row
  /// queried); avoids a vector allocation per quantile query.
  mutable std::vector<double> delta_scratch_;
  mutable std::uint64_t cursor_hits_ = 0;
  mutable std::uint64_t cursor_rebuilds_ = 0;
  std::size_t nonempty_scalars_ = 0;
  std::size_t nonempty_histograms_ = 0;
  /// Lower bound on the oldest sample timestamp across ALL series; compact
  /// is a no-op while `oldest_sample_ >= now - retention`. Refreshed to the
  /// exact minimum by each sweep.
  SimTime oldest_sample_ = kNoSamples;
  static constexpr SimTime kNoSamples = 1e300;
  SimDuration retention_;
};

}  // namespace l3::metrics
