// A miniature Prometheus: timestamped sample storage plus the query
// functions L3 uses — `rate()`/`increase()` over a trailing window, gauge
// averaging, and `histogram_quantile()` over bucket-rate vectors. The L3
// controller reads ONLY from here (never from live registries), reproducing
// the 5 s scrape / 10 s window staleness the paper discusses in §4.
#pragma once

#include "l3/common/time.h"

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace l3::metrics {

/// Time-series database with per-series retention trimming.
class TimeSeriesDb {
 public:
  /// @param retention  samples older than now − retention are dropped on
  ///                   append (default generous enough for 10 s windows
  ///                   while bounding memory over 20-minute runs).
  explicit TimeSeriesDb(SimDuration retention = 120.0)
      : retention_(retention) {}

  /// Appends a scalar (counter or gauge) sample.
  void append(const std::string& key, SimTime t, double value);

  /// Appends a histogram sample: the cumulative bucket counts at time t.
  /// `bounds` is stored on first append and must match thereafter.
  void append_histogram(const std::string& key, SimTime t,
                        const std::vector<double>& bounds,
                        std::vector<double> cumulative_counts);

  /// Per-second rate of increase of a counter over [now − window, now].
  /// Needs at least two samples in the window (the paper's reason for the
  /// 10 s window at a 5 s scrape interval); std::nullopt otherwise.
  std::optional<double> rate(const std::string& key, SimDuration window,
                             SimTime now) const;

  /// Absolute increase of a counter over the window (rate × elapsed).
  std::optional<double> increase(const std::string& key, SimDuration window,
                                 SimTime now) const;

  /// Mean of gauge samples in the window; std::nullopt if none.
  std::optional<double> avg(const std::string& key, SimDuration window,
                            SimTime now) const;

  /// Most recent sample value within the window; std::nullopt if none.
  std::optional<double> last(const std::string& key, SimDuration window,
                             SimTime now) const;

  /// Prometheus-style `histogram_quantile(q, rate(buckets[window]))`.
  /// std::nullopt when fewer than two samples exist or no requests were
  /// observed in the window.
  std::optional<double> quantile(const std::string& key, double q,
                                 SimDuration window, SimTime now) const;

  /// Drops every sample older than now − retention across ALL series and
  /// erases series left empty. Series only trim themselves on append, so a
  /// series that stops receiving samples (disabled scrape target, removed
  /// backend) would otherwise pin its stale samples forever; the scraper
  /// calls this once per scrape to bound memory.
  void compact(SimTime now);

  /// Number of scalar series stored.
  std::size_t series_count() const { return scalars_.size(); }

  /// Number of histogram series stored.
  std::size_t histogram_series_count() const { return histograms_.size(); }

  /// Stored sample count of one scalar series (0 when absent).
  std::size_t sample_count(const std::string& key) const;

  /// Stored sample count of one histogram series (0 when absent).
  std::size_t histogram_sample_count(const std::string& key) const;

  SimDuration retention() const { return retention_; }

 private:
  struct ScalarSample {
    SimTime t;
    double v;
  };
  struct HistoSample {
    SimTime t;
    std::vector<double> cumulative;
  };
  struct HistoSeries {
    std::vector<double> bounds;
    std::deque<HistoSample> samples;
  };

  std::map<std::string, std::deque<ScalarSample>> scalars_;
  std::map<std::string, HistoSeries> histograms_;
  SimDuration retention_;
};

}  // namespace l3::metrics
