// The Prometheus scrape loop: copies every series of the registered targets
// into the TimeSeriesDb on a fixed interval (5 s by default, as in §4).
// Targets can be disabled at runtime to inject scrape gaps — the ">10 s
// without data" path that makes L3 converge its EWMAs back to defaults.
//
// Each target keeps a snapshot plan — (series pointer, interned TSDB id)
// pairs — rebuilt only when the registry's version changes (i.e. a series
// was created). Steady-state scrapes therefore do zero string hashing,
// key building or map lookups: they walk two flat vectors and append
// through interned ids.
#pragma once

#include "l3/common/time.h"
#include "l3/metrics/registry.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/simulator.h"

#include <string>
#include <vector>

namespace l3::metrics {

/// Periodically snapshots registries into a TimeSeriesDb.
class Scraper {
 public:
  /// @param sim   event loop driving the scrape schedule.
  /// @param tsdb  destination store (must outlive the scraper).
  Scraper(sim::Simulator& sim, TimeSeriesDb& tsdb) : sim_(sim), tsdb_(tsdb) {}
  ~Scraper() { stop(); }
  Scraper(const Scraper&) = delete;
  Scraper& operator=(const Scraper&) = delete;

  /// Registers a scrape target. The registry must outlive the scraper.
  void add_target(std::string name, const Registry& registry);

  /// Enables/disables scraping of a target (failure injection). Returns
  /// false if no such target exists.
  bool set_target_enabled(const std::string& name, bool enabled);

  /// Enables/disables every registered target at once (a full scrape
  /// outage, e.g. the Prometheus instance itself going away).
  void set_all_targets_enabled(bool enabled);

  /// Starts the periodic scrape, first firing after one interval.
  void start(SimDuration interval = 5.0);

  /// Stops the periodic scrape.
  void stop() { task_.cancel(); }

  /// Performs a single scrape of all enabled targets right now (also used
  /// to seed the TSDB before the first interval elapses).
  void scrape_once();

  SimDuration interval() const { return interval_; }
  std::size_t scrape_count() const { return scrapes_; }

 private:
  struct Target {
    std::string name;
    const Registry* registry = nullptr;
    bool enabled = true;
    /// Registry version the plan below was built against (~0 = never).
    std::uint64_t planned_version = ~std::uint64_t{0};
    std::vector<std::pair<const Counter*, SeriesId>> counters;
    std::vector<std::pair<const Gauge*, SeriesId>> gauges;
    std::vector<std::pair<const HistogramSeries*, HistogramId>> histograms;
  };

  /// (Re)builds `target`'s snapshot plan, interning any new series names.
  void build_plan(Target& target);

  sim::Simulator& sim_;
  TimeSeriesDb& tsdb_;
  std::vector<Target> targets_;
  sim::PeriodicHandle task_;
  SimDuration interval_ = 5.0;
  std::size_t scrapes_ = 0;
};

}  // namespace l3::metrics
